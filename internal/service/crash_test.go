package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestHelperJournalDaemon is not a test: it is the child process of
// TestJournalCrashRecovery. Re-executed from the test binary with
// ADIFO_JOURNAL_DAEMON=1, it serves a journal-backed service on a
// loopback port, publishes the address in the journal directory, and
// runs until killed — with SIGKILL, which is the point.
func TestHelperJournalDaemon(t *testing.T) {
	if os.Getenv("ADIFO_JOURNAL_DAEMON") != "1" {
		t.Skip("not a test; the crash-recovery child process")
	}
	dir := os.Getenv("ADIFO_JOURNAL_DIR")
	s, err := Open(Config{JournalDir: dir, MaxConcurrentJobs: 1, SimWorkers: 2})
	if err != nil {
		fmt.Fprintf(os.Stderr, "daemon: %v\n", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "daemon: %v\n", err)
		os.Exit(1)
	}
	// Publish the address atomically: the parent polls for this file.
	tmp := filepath.Join(dir, "addr.tmp")
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "daemon: %v\n", err)
		os.Exit(1)
	}
	if err := os.Rename(tmp, filepath.Join(dir, "addr")); err != nil {
		fmt.Fprintf(os.Stderr, "daemon: %v\n", err)
		os.Exit(1)
	}
	http.Serve(ln, s.Handler())
}

// daemon wraps the child process and its HTTP endpoint.
type daemon struct {
	cmd  *exec.Cmd
	base string
}

func startDaemon(t *testing.T, dir string) *daemon {
	t.Helper()
	os.Remove(filepath.Join(dir, "addr"))
	cmd := exec.Command(os.Args[0], "-test.run=^TestHelperJournalDaemon$")
	cmd.Env = append(os.Environ(),
		"ADIFO_JOURNAL_DAEMON=1", "ADIFO_JOURNAL_DIR="+dir)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting daemon: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if b, err := os.ReadFile(filepath.Join(dir, "addr")); err == nil && len(b) > 0 {
			return &daemon{cmd: cmd, base: "http://" + string(b)}
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("daemon did not publish its address")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// kill delivers SIGKILL — no drain, no journal close, a real crash.
func (d *daemon) kill() {
	d.cmd.Process.Kill()
	d.cmd.Wait()
}

func (d *daemon) submit(t *testing.T, spec JobSpec) string {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(d.base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, raw)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(raw, &out); err != nil || out.ID == "" {
		t.Fatalf("submit: bad response %s", raw)
	}
	return out.ID
}

func (d *daemon) status(t *testing.T, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(d.base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("status %s: %v", id, err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("status %s: %v", id, err)
	}
	return st
}

func (d *daemon) waitFor(t *testing.T, id, want string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := d.status(t, id)
		if st.State == want {
			return st
		}
		if terminal(st.State) && terminal(want) {
			t.Fatalf("job %s reached %s (%s), want %s", id, st.State, st.Error, want)
		}
		if terminal(st.State) {
			t.Fatalf("job %s terminal %s (%s) while waiting for %s", id, st.State, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return JobStatus{}
}

func (d *daemon) resultBytes(t *testing.T, id string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(d.base + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatalf("result %s: %v", id, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestJournalCrashRecovery is the end-to-end durability check: a real
// child process is SIGKILLed mid-workload and restarted on the same
// journal. The finished job's result must come back byte-identical,
// and the jobs that were running or queued at the kill — one of each
// kind — must rerun to completion with their original ids.
func TestJournalCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("re-executes the test binary; skipped in -short")
	}
	dir := t.TempDir()
	d := startDaemon(t, dir)
	defer d.kill()

	pat := PatternSpec{Random: &RandomSpec{N: 128, Seed: 21}}
	fastSpec := JobSpec{Circuit: "c17", Mode: "drop", Patterns: pat,
		Tenant: "acme", IdempotencyKey: "fast-1"}
	fastID := d.submit(t, fastSpec)
	d.waitFor(t, fastID, StateDone)
	preCode, preBytes := d.resultBytes(t, fastID)
	if preCode != http.StatusOK {
		t.Fatalf("pre-crash result: HTTP %d", preCode)
	}

	// One running and two queued jobs (the daemon runs one at a time),
	// covering all three kinds at the moment of death. A quarter-length
	// slowSpec: still hundreds of blocks (reliably running when the
	// SIGKILL lands), but a cheaper rerun after the restart.
	slow := slowSpec()
	slow.Patterns.Random.N = 1 << 14
	slowID := d.submit(t, slow)
	d.waitFor(t, slowID, StateRunning)
	genID := d.submit(t, JobSpec{Kind: KindAtpg, Circuit: "c17", Patterns: pat,
		Order: &OrderSpec{Kind: "dynm"}, IdempotencyKey: "gen-1"})
	ordID := d.submit(t, JobSpec{Kind: KindADIOrder, Circuit: "c17", Patterns: pat,
		Order: &OrderSpec{Kind: "decr"}})

	d.kill()
	d = startDaemon(t, dir)
	defer d.kill()

	// The finished job answers byte-identically across the crash.
	postCode, postBytes := d.resultBytes(t, fastID)
	if postCode != http.StatusOK {
		t.Fatalf("post-crash result: HTTP %d: %s", postCode, postBytes)
	}
	if !bytes.Equal(preBytes, postBytes) {
		t.Errorf("result bytes changed across crash\n pre: %s\npost: %s", preBytes, postBytes)
	}

	// Interrupted jobs rerun to completion under their original ids.
	for _, id := range []string{slowID, genID, ordID} {
		if st := d.waitFor(t, id, StateDone); st.ID != id {
			t.Errorf("replayed job answered as %s, want %s", st.ID, id)
		}
	}

	// The idempotency key survives the crash: resubmitting the fast
	// spec dedupes into the pre-crash job instead of running again.
	if again := d.submit(t, fastSpec); again != fastID {
		t.Errorf("post-crash dedupe returned %s, want %s", again, fastID)
	}
}
