package fsim

import (
	"fmt"
	"testing"

	"github.com/eda-go/adifo/internal/circuit"
	"github.com/eda-go/adifo/internal/fault"
	"github.com/eda-go/adifo/internal/gen"
	"github.com/eda-go/adifo/internal/logic"
	"github.com/eda-go/adifo/internal/prng"
)

// TestRunParallelWidthBitIdentity is the property the whole wide-block
// design rests on: every kernel block width produces results
// bit-identical to the sequential scalar reference, in every mode, at
// every worker count. 130 patterns exercise superblocks that are
// ragged from the start (3 blocks at width 256, 3 at width 512);
// 600 patterns exercise full superblocks plus partial tails.
func TestRunParallelWidthBitIdentity(t *testing.T) {
	modes := []Options{{Mode: NoDrop}, {Mode: Drop}, {Mode: NDetect, N: 2}}
	for _, nvec := range []int{130, 600} {
		for seed := uint64(1); seed <= 2; seed++ {
			c := gen.Generate(gen.Config{Name: "wb", Inputs: 10, Gates: 150, Seed: seed})
			fl := fault.CollapsedUniverse(c)
			ps := logic.RandomPatterns(c.NumInputs(), nvec, prng.New(seed))
			for _, opts := range modes {
				seq := Run(fl, ps, opts)
				for _, width := range []int{64, 256, 512} {
					for _, workers := range []int{1, 3, 8} {
						par := RunParallelWith(fl, ps, ParallelOptions{
							Options: opts, Workers: workers, BlockWidth: width,
						})
						requireEqualResults(t,
							fmt.Sprintf("%s/n=%d/seed=%d/bw=%d/workers=%d",
								opts.Mode.String(), nvec, seed, width, workers),
							seq, par)
					}
				}
			}
		}
	}
}

// TestRunParallelWidthEdgeCases re-runs the 1-fault and workers>faults
// edge cases (covered for the scalar path in parallel_test.go) at the
// wide widths.
func TestRunParallelWidthEdgeCases(t *testing.T) {
	c := gen.Generate(gen.Config{Name: "we", Inputs: 8, Gates: 60, Seed: 7})
	full := fault.CollapsedUniverse(c)
	ps := logic.RandomPatterns(c.NumInputs(), 330, prng.New(7))
	for _, nf := range []int{1, 5} {
		fl := &fault.List{Circuit: c, Faults: full.Faults[:nf]}
		for _, opts := range []Options{{Mode: NoDrop}, {Mode: Drop}, {Mode: NDetect, N: 2}} {
			seq := Run(fl, ps, opts)
			for _, width := range []int{256, 512} {
				par := RunParallelWith(fl, ps, ParallelOptions{
					Options: opts, Workers: 64, BlockWidth: width,
				})
				requireEqualResults(t,
					fmt.Sprintf("%s/faults=%d/bw=%d/workers=64", opts.Mode.String(), nf, width),
					seq, par)
			}
		}
	}
}

// TestRunParallelWideWithGood checks the cached-good path at wide
// widths: lanes gathered from the 64-wide Good storage must match the
// on-the-fly wide good simulation.
func TestRunParallelWideWithGood(t *testing.T) {
	c := gen.Generate(gen.Config{Name: "wg", Inputs: 10, Gates: 120, Seed: 9})
	fl := fault.CollapsedUniverse(c)
	ps := logic.RandomPatterns(c.NumInputs(), 600, prng.New(9))
	good := ComputeGood(c, ps)
	for _, opts := range []Options{{Mode: NoDrop}, {Mode: Drop}} {
		seq := Run(fl, ps, opts)
		for _, width := range []int{256, 512} {
			par := RunParallelWith(fl, ps, ParallelOptions{
				Options: opts, Workers: 4, BlockWidth: width, Good: good,
			})
			requireEqualResults(t,
				fmt.Sprintf("%s/bw=%d/good-cache", opts.Mode.String(), width), seq, par)
		}
	}
}

// TestRunParallelCompiledOption checks that supplying a pre-compiled
// circuit changes nothing, and that a compiled form of a structurally
// identical circuit under a different pointer is accepted (the
// fingerprint-keyed registry cache shares compiled forms that way)
// while a genuinely different circuit panics.
func TestRunParallelCompiledOption(t *testing.T) {
	cfg := gen.Config{Name: "wc", Inputs: 10, Gates: 120, Seed: 4}
	c := gen.Generate(cfg)
	fl := fault.CollapsedUniverse(c)
	ps := logic.RandomPatterns(c.NumInputs(), 300, prng.New(4))
	seq := Run(fl, ps, Options{Mode: NoDrop})

	cc := circuit.Compile(c)
	par := RunParallelWith(fl, ps, ParallelOptions{Workers: 3, Compiled: cc})
	requireEqualResults(t, "compiled/same-pointer", seq, par)

	twin := gen.Generate(cfg) // same structure, different pointer
	par = RunParallelWith(fl, ps, ParallelOptions{Workers: 3, Compiled: circuit.Compile(twin)})
	requireEqualResults(t, "compiled/structural-twin", seq, par)

	other := gen.Generate(gen.Config{Name: "other", Inputs: 10, Gates: 120, Seed: 5})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for a compiled form of a different circuit")
		}
	}()
	RunParallelWith(fl, ps, ParallelOptions{Workers: 3, Compiled: circuit.Compile(other)})
}

func TestRunParallelPanicsOnBadBlockWidth(t *testing.T) {
	c := gen.Generate(gen.Config{Name: "wb", Inputs: 4, Gates: 10, Seed: 1})
	fl := fault.CollapsedUniverse(c)
	ps := logic.RandomPatterns(4, 64, prng.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RunParallelWith(fl, ps, ParallelOptions{BlockWidth: 128})
}

// FuzzWideKernels is the differential fuzz target for the wide-block
// kernels: on a random small netlist and pattern set, the 256- and
// 512-wide paths must produce detection words, counts, first
// detections and ndet profiles identical to the scalar 64-pattern
// reference, in whichever mode the input selects.
func FuzzWideKernels(f *testing.F) {
	f.Add(uint64(1), uint8(6), uint8(40), uint16(200), uint8(0), uint8(3))
	f.Add(uint64(2), uint8(10), uint8(90), uint16(513), uint8(1), uint8(1))
	f.Add(uint64(3), uint8(3), uint8(12), uint16(64), uint8(2), uint8(8))
	f.Add(uint64(4), uint8(12), uint8(120), uint16(300), uint8(5), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, inputs, gates uint8, nvec uint16, modeSel, workers uint8) {
		ni := 2 + int(inputs)%13 // 2..14
		ng := 1 + int(gates)%140 // 1..140
		nv := 1 + int(nvec)%700  // 1..700: ragged and multi-superblock
		c := gen.Generate(gen.Config{Name: "fz", Inputs: ni, Gates: ng, Seed: seed})
		fl := fault.CollapsedUniverse(c)
		if fl.Len() == 0 {
			return
		}
		ps := logic.RandomPatterns(c.NumInputs(), nv, prng.New(seed+0x9e3779b97f4a7c15))
		var opts Options
		switch modeSel % 3 {
		case 0:
			opts = Options{Mode: NoDrop}
		case 1:
			opts = Options{Mode: Drop}
		case 2:
			opts = Options{Mode: NDetect, N: 1 + int(modeSel/3)%4}
		}
		ref := RunParallelWith(fl, ps, ParallelOptions{Options: opts, Workers: 1, BlockWidth: 64})
		w := 1 + int(workers)%8
		for _, width := range []int{256, 512} {
			wide := RunParallelWith(fl, ps, ParallelOptions{Options: opts, Workers: w, BlockWidth: width})
			requireEqualResults(t,
				fmt.Sprintf("fuzz/%s/bw=%d/workers=%d", opts.Mode.String(), width, w),
				ref, wide)
		}
	})
}
