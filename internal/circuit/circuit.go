package circuit

import (
	"fmt"
	"sort"
)

// Circuit is an immutable (after Freeze) combinational netlist. Build
// one with a Builder or by parsing a .bench description, then treat it
// as read-only: the simulators share Circuit values freely across
// goroutines.
type Circuit struct {
	Name string

	// Gates indexed by gate id. Gates[i].Fanin holds gate ids.
	Gates []Gate

	// Inputs lists the primary-input gate ids (including pseudo-PIs
	// from scan conversion) in declaration order.
	Inputs []int

	// Outputs lists the observed gate ids (primary outputs plus
	// pseudo-POs from scan conversion) in declaration order. An
	// output entry is a gate id whose value is observed; a gate may
	// be observed and still drive other gates.
	Outputs []int

	// Derived structure, populated by Freeze.

	// Fanout[i] lists, for every gate j that has gate i as a fanin,
	// one entry (j, pin) per connection.
	Fanout [][]Conn

	// Level[i] is the logic depth of gate i: 0 for PIs, otherwise
	// 1 + max(level of fanins).
	Level []int

	// Topo is a topological order of all gate ids (PIs first,
	// non-decreasing level).
	Topo []int

	// MaxLevel is the largest entry of Level.
	MaxLevel int

	// InputIndex maps a PI gate id to its position in Inputs.
	InputIndex map[int]int

	// isOutput[i] reports whether gate i is observed.
	isOutput []bool

	byName map[string]int
}

// Conn identifies one fanout connection: input pin Pin of gate Gate.
type Conn struct {
	Gate int
	Pin  int
}

// NumGates returns the number of gates including PI pseudo-gates.
func (c *Circuit) NumGates() int { return len(c.Gates) }

// NumInputs returns the number of primary inputs.
func (c *Circuit) NumInputs() int { return len(c.Inputs) }

// NumOutputs returns the number of observed outputs.
func (c *Circuit) NumOutputs() int { return len(c.Outputs) }

// IsOutput reports whether gate g is observed (a PO or scan pseudo-PO).
func (c *Circuit) IsOutput(g int) bool { return c.isOutput[g] }

// GateByName returns the gate id for a signal name.
func (c *Circuit) GateByName(name string) (int, bool) {
	id, ok := c.byName[name]
	return id, ok
}

// Builder incrementally constructs a Circuit. It is append-only; call
// Freeze once at the end to validate and derive structure.
type Builder struct {
	c    Circuit
	errs []error
}

// NewBuilder returns a Builder for a circuit with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{c: Circuit{Name: name, byName: map[string]int{}}}
}

// AddInput declares a primary input and returns its gate id.
func (b *Builder) AddInput(name string) int {
	id := b.addGate(name, PI, nil)
	b.c.Inputs = append(b.c.Inputs, id)
	return id
}

// AddGate declares a logic gate and returns its gate id. fanin holds
// previously declared gate ids in pin order.
func (b *Builder) AddGate(name string, t GateType, fanin ...int) int {
	if t == PI {
		b.errs = append(b.errs, fmt.Errorf("gate %q: use AddInput for primary inputs", name))
		return b.addGate(name, t, nil)
	}
	return b.addGate(name, t, fanin)
}

// MarkOutput marks a previously declared gate as observed.
func (b *Builder) MarkOutput(id int) {
	if id < 0 || id >= len(b.c.Gates) {
		b.errs = append(b.errs, fmt.Errorf("MarkOutput: gate id %d out of range", id))
		return
	}
	b.c.Outputs = append(b.c.Outputs, id)
}

func (b *Builder) addGate(name string, t GateType, fanin []int) int {
	if _, dup := b.c.byName[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("duplicate signal name %q", name))
	}
	id := len(b.c.Gates)
	b.c.Gates = append(b.c.Gates, Gate{Name: name, Type: t, Fanin: append([]int(nil), fanin...)})
	b.c.byName[name] = id
	return id
}

// Freeze validates the netlist, derives fanout lists, levels and a
// topological order, and returns the finished Circuit. The Builder
// must not be used afterwards.
func (b *Builder) Freeze() (*Circuit, error) {
	c := &b.c
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if len(c.Inputs) == 0 {
		return nil, fmt.Errorf("circuit %q has no primary inputs", c.Name)
	}
	if len(c.Outputs) == 0 {
		return nil, fmt.Errorf("circuit %q has no outputs", c.Name)
	}
	for i, g := range c.Gates {
		if min := g.Type.MinFanin(); len(g.Fanin) < min {
			return nil, fmt.Errorf("gate %q (%v) has %d fanins, needs at least %d", g.Name, g.Type, len(g.Fanin), min)
		}
		if max := g.Type.MaxFanin(); max > 0 && len(g.Fanin) > max {
			return nil, fmt.Errorf("gate %q (%v) has %d fanins, allows at most %d", g.Name, g.Type, len(g.Fanin), max)
		}
		for _, f := range g.Fanin {
			if f < 0 || f >= len(c.Gates) {
				return nil, fmt.Errorf("gate %q references undefined fanin id %d", g.Name, f)
			}
			if f == i {
				return nil, fmt.Errorf("gate %q feeds itself", g.Name)
			}
		}
	}
	if err := c.derive(); err != nil {
		return nil, err
	}
	return c, nil
}

// derive computes fanout lists, levels and the topological order. It
// returns an error when the netlist contains a combinational cycle.
func (c *Circuit) derive() error {
	n := len(c.Gates)
	c.Fanout = make([][]Conn, n)
	indeg := make([]int, n)
	for gi, g := range c.Gates {
		indeg[gi] = len(g.Fanin)
		for pin, f := range g.Fanin {
			c.Fanout[f] = append(c.Fanout[f], Conn{Gate: gi, Pin: pin})
		}
	}

	// Kahn's algorithm; process lowest id first for a deterministic
	// order.
	c.Level = make([]int, n)
	c.Topo = make([]int, 0, n)
	ready := make([]int, 0, n)
	for gi, d := range indeg {
		if d == 0 {
			ready = append(ready, gi)
		}
	}
	sort.Ints(ready)
	for len(ready) > 0 {
		gi := ready[0]
		ready = ready[1:]
		c.Topo = append(c.Topo, gi)
		for _, fo := range c.Fanout[gi] {
			if lvl := c.Level[gi] + 1; lvl > c.Level[fo.Gate] {
				c.Level[fo.Gate] = lvl
			}
			indeg[fo.Gate]--
			if indeg[fo.Gate] == 0 {
				ready = append(ready, fo.Gate)
			}
		}
	}
	if len(c.Topo) != n {
		return fmt.Errorf("circuit %q contains a combinational cycle", c.Name)
	}
	c.MaxLevel = 0
	for _, l := range c.Level {
		if l > c.MaxLevel {
			c.MaxLevel = l
		}
	}
	c.InputIndex = make(map[int]int, len(c.Inputs))
	for i, id := range c.Inputs {
		c.InputIndex[id] = i
	}
	c.isOutput = make([]bool, n)
	for _, id := range c.Outputs {
		c.isOutput[id] = true
	}
	return nil
}

// Stats summarizes the structural properties of a circuit; the CLIs
// print it and the generator's tuning tests assert on it.
type Stats struct {
	Gates      int // logic gates, excluding PI pseudo-gates
	Inputs     int
	Outputs    int
	Levels     int // MaxLevel
	Lines      int // fault sites before collapsing: stems + branch pins
	MaxFanin   int
	MaxFanout  int
	FanoutStem int // gates with fanout > 1
}

// ComputeStats derives Stats from the frozen circuit.
func (c *Circuit) ComputeStats() Stats {
	s := Stats{
		Inputs:  len(c.Inputs),
		Outputs: len(c.Outputs),
		Levels:  c.MaxLevel,
	}
	for gi, g := range c.Gates {
		if g.Type != PI {
			s.Gates++
		}
		if len(g.Fanin) > s.MaxFanin {
			s.MaxFanin = len(g.Fanin)
		}
		fo := len(c.Fanout[gi])
		if fo > s.MaxFanout {
			s.MaxFanout = fo
		}
		if fo > 1 {
			s.FanoutStem++
			s.Lines += fo // one line per branch
		}
		s.Lines++ // the stem itself
	}
	return s
}

// FanoutCone returns the set of gates reachable from gate g (including
// g itself), as a sorted slice of gate ids. The fault simulator uses
// cones to bound event-driven re-simulation; exposing it here also
// makes it testable in isolation.
func (c *Circuit) FanoutCone(g int) []int {
	seen := make(map[int]bool)
	stack := []int{g}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[x] {
			continue
		}
		seen[x] = true
		for _, fo := range c.Fanout[x] {
			if !seen[fo.Gate] {
				stack = append(stack, fo.Gate)
			}
		}
	}
	out := make([]int, 0, len(seen))
	for x := range seen {
		out = append(out, x)
	}
	sort.Ints(out)
	return out
}

// InputCone returns the set of gates in the transitive fanin of g
// (including g), sorted by gate id.
func (c *Circuit) InputCone(g int) []int {
	seen := make(map[int]bool)
	stack := []int{g}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[x] {
			continue
		}
		seen[x] = true
		for _, f := range c.Gates[x].Fanin {
			if !seen[f] {
				stack = append(stack, f)
			}
		}
	}
	out := make([]int, 0, len(seen))
	for x := range seen {
		out = append(out, x)
	}
	sort.Ints(out)
	return out
}

// Controllability holds SCOAP-style combinational controllability
// measures: CC0[i]/CC1[i] estimate the effort to set gate i to 0/1.
// PODEM's backtrace uses them to pick easy/hard inputs.
type Controllability struct {
	CC0, CC1 []int
}

// ComputeControllability computes SCOAP combinational controllability
// in one topological pass.
func (c *Circuit) ComputeControllability() *Controllability {
	n := len(c.Gates)
	cc := &Controllability{CC0: make([]int, n), CC1: make([]int, n)}
	const inf = 1 << 30
	for _, gi := range c.Topo {
		g := &c.Gates[gi]
		switch g.Type {
		case PI:
			cc.CC0[gi], cc.CC1[gi] = 1, 1
		case Buf:
			cc.CC0[gi] = cc.CC0[g.Fanin[0]] + 1
			cc.CC1[gi] = cc.CC1[g.Fanin[0]] + 1
		case Not:
			cc.CC0[gi] = cc.CC1[g.Fanin[0]] + 1
			cc.CC1[gi] = cc.CC0[g.Fanin[0]] + 1
		case And, Nand:
			sum1, min0 := 0, inf
			for _, f := range g.Fanin {
				sum1 += cc.CC1[f]
				if cc.CC0[f] < min0 {
					min0 = cc.CC0[f]
				}
			}
			if g.Type == And {
				cc.CC1[gi], cc.CC0[gi] = sum1+1, min0+1
			} else {
				cc.CC0[gi], cc.CC1[gi] = sum1+1, min0+1
			}
		case Or, Nor:
			sum0, min1 := 0, inf
			for _, f := range g.Fanin {
				sum0 += cc.CC0[f]
				if cc.CC1[f] < min1 {
					min1 = cc.CC1[f]
				}
			}
			if g.Type == Or {
				cc.CC0[gi], cc.CC1[gi] = sum0+1, min1+1
			} else {
				cc.CC1[gi], cc.CC0[gi] = sum0+1, min1+1
			}
		case Xor, Xnor:
			// For XOR trees the exact SCOAP recursion enumerates
			// parity assignments; the standard approximation below
			// (cheapest mixed assignment) is accurate enough for
			// backtrace ordering.
			c0, c1 := 0, inf
			for _, f := range g.Fanin {
				c0 += min(cc.CC0[f], cc.CC1[f])
				alt := c0 - min(cc.CC0[f], cc.CC1[f]) + max(cc.CC0[f], cc.CC1[f])
				if alt < c1 {
					c1 = alt
				}
			}
			if g.Type == Xor {
				cc.CC0[gi], cc.CC1[gi] = c0+1, c1+1
			} else {
				cc.CC1[gi], cc.CC0[gi] = c0+1, c1+1
			}
		}
	}
	return cc
}

// Observability holds SCOAP-style combinational observability
// measures: CO[i] estimates the effort to propagate a value change on
// gate i's output to some observed output. Observed gates have CO 0.
type Observability struct {
	CO []int
}

// ComputeObservability computes SCOAP combinational observability in
// one reverse-topological pass, given the controllability measures.
// For a gate g driving gate y through pin p, observing g through y
// costs CO(y) + (cost of setting y's other inputs non-controlling)
// + 1; the cheapest fanout path wins. Observed gates cost 0
// regardless of their fanout.
func (c *Circuit) ComputeObservability(cc *Controllability) *Observability {
	const inf = 1 << 30
	n := len(c.Gates)
	ob := &Observability{CO: make([]int, n)}
	for i := range ob.CO {
		ob.CO[i] = inf
	}
	// Reverse topological order: consumers before producers.
	for i := n - 1; i >= 0; i-- {
		gi := c.Topo[i]
		if c.isOutput[gi] {
			ob.CO[gi] = 0
		}
		for _, fo := range c.Fanout[gi] {
			y := fo.Gate
			if ob.CO[y] >= inf {
				continue
			}
			yg := &c.Gates[y]
			side := 0
			switch yg.Type {
			case Buf, Not:
				// No side inputs.
			case And, Nand:
				for pin, f := range yg.Fanin {
					if pin != fo.Pin {
						side += cc.CC1[f]
					}
				}
			case Or, Nor:
				for pin, f := range yg.Fanin {
					if pin != fo.Pin {
						side += cc.CC0[f]
					}
				}
			case Xor, Xnor:
				// Any binary values on the side inputs propagate;
				// charge the cheaper value of each.
				for pin, f := range yg.Fanin {
					if pin != fo.Pin {
						side += min(cc.CC0[f], cc.CC1[f])
					}
				}
			}
			if cost := ob.CO[y] + side + 1; cost < ob.CO[gi] {
				ob.CO[gi] = cost
			}
		}
	}
	return ob
}

// Observable reports whether gate g structurally reaches an observed
// output (CO below the internal infinity).
func (o *Observability) Observable(g int) bool { return o.CO[g] < 1<<30 }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
