// Package prng provides a small, fast, explicitly seeded pseudo-random
// number generator used by every stochastic component of the library
// (circuit generation, random test vectors, PODEM random fill).
//
// All experiments in the repository are reproducible bit-for-bit because
// every randomized step threads one of these generators with a fixed
// seed. We deliberately do not use math/rand: its global state and
// version-dependent stream would make the published tables unstable
// across Go releases.
//
// The generator is xorshift64* (Vigna, 2014): a 64-bit xorshift engine
// with a multiplicative output scrambler. It passes BigCrush for the
// output sizes we draw and is far stronger than needed for workload
// generation.
package prng

// Source is a deterministic xorshift64* generator. The zero value is
// not usable; construct with New. Source is not safe for concurrent
// use; give each goroutine its own Source (see Split).
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because the xorshift state must never be
// zero.
func New(seed uint64) *Source {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15 // golden-ratio constant
	}
	s := &Source{state: seed}
	// Warm up so that low-entropy seeds (1, 2, 3...) decorrelate.
	for i := 0; i < 4; i++ {
		s.Uint64()
	}
	return s
}

// Split derives an independent child generator from s. The child's
// stream is decorrelated from the parent's by mixing a fresh draw with
// an odd constant. Use it to hand sub-components their own generators
// without sharing state.
func (s *Source) Split() *Source {
	return New(s.Uint64() ^ 0xd1342543de82ef95)
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	x := s.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	s.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a uniform pseudo-random int in [0, n). It panics if
// n <= 0. The modulo bias is negligible for the n used here (n is
// always far below 2^32), but we still use Lemire's multiply-shift
// reduction which is both faster and unbiased enough for workloads.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn called with non-positive n")
	}
	// 128-bit multiply-high via two 64x64->64 halves.
	x := s.Uint64()
	hi, _ := mul64(x, uint64(n))
	return int(hi)
}

// Float64 returns a uniform pseudo-random float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns a pseudo-random boolean with probability p of being
// true.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// Word returns a 64-bit word with each bit independently set with
// probability 1/2. It is an alias of Uint64 with a name that reads
// well at bit-parallel pattern-generation call sites.
func (s *Source) Word() uint64 { return s.Uint64() }

// Perm returns a pseudo-random permutation of [0, n) using the
// Fisher-Yates shuffle.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly permutes the first n elements using the
// provided swap function, mirroring the math/rand API shape.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return
}
