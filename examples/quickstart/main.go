// Quickstart: compute the accidental detection index of a small
// circuit, order its faults, and generate a compact test set — using
// only the public adifo package, the way an external consumer would.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/eda-go/adifo"
)

func main() {
	ctx := context.Background()

	// 1. Load a circuit. LoadCircuit accepts an embedded benchmark
	//    name, a synthetic suite name, or a path to an ISCAS-89 style
	//    .bench netlist; sequential designs are converted to their
	//    full-scan combinational core automatically. Here we use the
	//    embedded c17.
	c, err := adifo.LoadCircuit("c17")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit %s: %d inputs, %d outputs\n", c.Name, c.NumInputs(), c.NumOutputs())

	// 2. Build the target fault set: the equivalence-collapsed single
	//    stuck-at universe.
	faults := adifo.Faults(c)
	fmt.Printf("target faults: %d\n", faults.Len())

	// 3. Compute the accidental detection index from a vector set U.
	//    c17 has 5 inputs, so we can afford the exhaustive set; on
	//    real designs U is a few hundred random vectors (see the
	//    compaction example).
	u := adifo.ExhaustivePatterns(c.NumInputs())
	index, err := adifo.ComputeADI(ctx, faults, u)
	if err != nil {
		log.Fatal(err)
	}
	mn, mx := index.MinMax()
	fmt.Printf("ADI: min=%d max=%d ratio=%.2f\n", mn, mx, index.Ratio())

	// 4. Order the faults. Dynm places faults with high accidental
	//    detection first and updates the index as faults are placed —
	//    the order the paper recommends for steep coverage curves;
	//    Dynm0 is the variant for minimum test-set size.
	order := index.Order(adifo.Dynm)
	fmt.Printf("first 5 targets: ")
	for _, fi := range order[:5] {
		fmt.Printf("[%s ADI=%d] ", faults.Faults[fi].Name(c), index.ADI[fi])
	}
	fmt.Println()

	// 5. Generate tests in that order: PODEM per fault, random fill,
	//    fault dropping by simulation.
	res, err := adifo.GenerateTests(ctx, faults, order,
		adifo.WithFillSeed(1), adifo.WithValidate(true))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test set: %d vectors, %.1f%% fault coverage, AVE=%.2f\n",
		len(res.Tests), 100*res.Coverage(), res.AVE())
	for i, v := range res.Tests {
		fmt.Printf("  t%d = %s (targets %s, cumulative %d faults)\n",
			i+1, v, faults.Faults[res.TargetOf[i]].Name(c), res.Curve[i])
	}
}
