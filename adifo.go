package adifo

import (
	"io"

	"github.com/eda-go/adifo/internal/benchdata"
	"github.com/eda-go/adifo/internal/circuit"
	"github.com/eda-go/adifo/internal/cli"
	"github.com/eda-go/adifo/internal/experiments"
	"github.com/eda-go/adifo/internal/fault"
	"github.com/eda-go/adifo/internal/gen"
	"github.com/eda-go/adifo/internal/logic"
	"github.com/eda-go/adifo/internal/prng"
)

// Core domain types, aliased from the internal packages so external
// consumers can name them (and everything internal stays internal —
// the aliases are the only door).
type (
	// Circuit is a levelized combinational gate-level netlist.
	Circuit = circuit.Circuit
	// CircuitStats summarizes a circuit's structure (gates, levels,
	// fanin/fanout); see Circuit.ComputeStats.
	CircuitStats = circuit.Stats
	// Fault is one single stuck-at fault site.
	Fault = fault.Fault
	// FaultList is an ordered fault set over one circuit.
	FaultList = fault.List
	// Vector is one input vector, one byte (0 or 1) per primary input.
	Vector = logic.Vector
	// PatternSet is a bit-parallel set of input vectors, simulated 64
	// at a time.
	PatternSet = logic.PatternSet
	// Bitset is a fixed-width bitset; detection sets D(f) are Bitsets
	// over vector indices.
	Bitset = logic.Bitset
)

// Fixed experiment parameters of the paper's evaluation (Section 4),
// exported so external consumers can reproduce the published setup.
const (
	// DefaultUSeed draws the candidate random vector set U.
	DefaultUSeed uint64 = experiments.USeed
	// DefaultFillSeed drives the ATPG's random fill of unspecified
	// inputs.
	DefaultFillSeed uint64 = experiments.FillSeed
	// DefaultUBudget is the initial size of U before truncation ("We
	// initially include in U 10,000 random input vectors").
	DefaultUBudget = experiments.MaxRandomVectors
	// DefaultTargetCoverage is the truncation threshold for U ("until
	// approximately 90% of the circuit faults are detected").
	DefaultTargetCoverage = experiments.TargetCoverage
)

// LoadCircuit resolves a circuit reference, trying in order: an
// embedded benchmark name (c17, s27, lion), a synthetic suite name
// (irs208 … irs13207, generated and made irredundant exactly as the
// paper's experiments do), and finally a path to an ISCAS-89 style
// .bench file.
func LoadCircuit(ref string) (*Circuit, error) { return cli.LoadCircuit(ref) }

// IsNamedCircuit reports whether ref names an embedded benchmark or a
// synthetic suite circuit — i.e. whether LoadCircuit would resolve it
// without touching the filesystem. Cheap: no circuit is built.
func IsNamedCircuit(ref string) bool {
	if _, err := benchdata.Source(ref); err == nil {
		return true
	}
	_, ok := gen.SuiteByName(ref)
	return ok
}

// CircuitNames lists the embedded benchmark names LoadCircuit accepts.
func CircuitNames() []string { return benchdata.Names() }

// ParseBench parses an ISCAS-89 style .bench netlist; sequential
// designs are converted to their full-scan combinational core
// (flip-flops become pseudo inputs/outputs).
func ParseBench(name string, r io.Reader) (*Circuit, error) {
	return circuit.ParseBench(name, r)
}

// ParseBenchString is ParseBench over in-memory netlist text.
func ParseBenchString(name, src string) (*Circuit, error) {
	return circuit.ParseBenchString(name, src)
}

// BenchString renders a circuit back to .bench text.
func BenchString(c *Circuit) string { return circuit.BenchString(c) }

// Faults returns the equivalence-collapsed single stuck-at fault
// universe of c — the paper's target fault set F.
func Faults(c *Circuit) *FaultList { return fault.CollapsedUniverse(c) }

// AllFaults returns the uncollapsed stuck-at universe (two faults per
// line); Faults is the collapsed set actually targeted.
func AllFaults(c *Circuit) *FaultList { return fault.Universe(c) }

// RandomPatterns returns n uniformly random vectors for a circuit with
// the given input count, drawn from the library PRNG: equal seeds give
// bit-identical sets on every host.
func RandomPatterns(inputs, n int, seed uint64) *PatternSet {
	return logic.RandomPatterns(inputs, n, prng.New(seed))
}

// ExhaustivePatterns returns all 2^inputs vectors (inputs <= 20).
func ExhaustivePatterns(inputs int) *PatternSet {
	return logic.ExhaustivePatterns(inputs)
}

// NewPatternSet returns an empty pattern set for a circuit with the
// given input count; use Append to add vectors (e.g. a generated test
// set to re-grade or reorder).
func NewPatternSet(inputs int) *PatternSet { return logic.NewPatternSet(inputs) }
