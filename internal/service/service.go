// Package service turns the batch library into a long-running,
// concurrent multi-kind job engine: a registry caches the artifacts
// that are expensive to derive and safe to share (parsed circuits,
// collapsed fault lists, good-machine simulations), a bounded pool
// runs jobs, and a small job API — submit, status, result, cancel,
// streaming progress — is exposed over HTTP by cmd/adifod and consumed
// by the client package. Every job carries a cancellable context:
// Cancel aborts a queued job immediately and a running job at its next
// barrier (a 64-pattern simulation block, or one ATPG target).
//
// Jobs come in kinds, dispatched through the jobKind registry: grade
// (fault grading through the sharded simulator, the original
// workload), atpg (ADI-ordered test generation) and adi_order (the
// fault order alone). All kinds share the queue, worker pool,
// cancellation, progress streaming and LRU registry machinery; each
// kind supplies validate/run/result hooks.
//
// Everything a job shares is read-only: circuits and fault lists are
// immutable after construction, good values are written once under the
// registry lock, and per-job drop state lives in a private
// fault.ActiveSet inside the simulator. Results are therefore
// bit-identical to a direct library run with equal inputs.
package service

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"github.com/eda-go/adifo/internal/fsim"
	"github.com/eda-go/adifo/internal/logic"
	"github.com/eda-go/adifo/internal/obs"
	"github.com/eda-go/adifo/internal/prng"
	"github.com/eda-go/adifo/internal/tgen"
)

// Config sizes the service; zero values select sensible defaults.
type Config struct {
	// SimWorkers is the default per-job shard worker count
	// (GOMAXPROCS when 0); a job spec may override it downward.
	SimWorkers int
	// MaxConcurrentJobs bounds how many jobs simulate at once; further
	// jobs queue (default 2).
	MaxConcurrentJobs int
	// CircuitCache and GoodCache are the registry LRU capacities
	// (defaults 32 and 64 entries).
	CircuitCache int
	GoodCache    int
	// MaxRetainedJobs bounds how many finished jobs (and their
	// results) are kept for status/result queries; the oldest
	// finished jobs are evicted first, queued and running jobs are
	// never evicted (default 1024).
	MaxRetainedJobs int
	// Kinds restricts which job kinds this service accepts (nil or
	// empty = all). Submissions of other kinds are rejected with
	// ErrUnsupportedKind, so a deployment can dedicate servers to one
	// workload (e.g. grade-only backends behind a cluster
	// coordinator).
	Kinds []string
	// Logger receives diagnostics the service cannot surface to any
	// caller, such as response-encoding failures after the status line
	// was sent. Records carry structured fields ("job", "kind") rather
	// than formatted strings. Nil selects the stack default (Info-level
	// text on stderr); tests and benchmarks pass obs.Nop() for quiet
	// runs.
	Logger *slog.Logger
}

// JobSpec is a job request. Exactly one of Circuit (a named embedded
// or synthetic circuit) and Bench (an inline .bench netlist) must be
// set. Kind selects the workload; the grade-specific fields (Mode, N,
// StopAtCoverage, FaultShard) and the order/gen sub-specs are only
// meaningful for their kinds and rejected elsewhere.
type JobSpec struct {
	// Kind is the job kind: "grade", "atpg" or "adi_order". Empty
	// means grade — the only kind the v1 wire knew originally, so old
	// specs keep their meaning unchanged.
	Kind    string `json:"kind,omitempty"`
	Circuit string `json:"circuit,omitempty"`
	Bench   string `json:"bench,omitempty"`
	// Name labels an inline netlist (cosmetic; named circuits keep
	// their own name).
	Name string `json:"name,omitempty"`
	// Patterns is the vector set: the graded vectors for grade jobs,
	// the ADI vector set U for atpg and adi_order jobs.
	Patterns PatternSpec `json:"patterns"`
	// Mode is the dropping policy: "nodrop", "drop" or "ndetect".
	// Required on grade jobs — the wire contract has no silent
	// default; requests with an empty mode are rejected. Forbidden on
	// other kinds, which simulate without dropping by definition.
	Mode string `json:"mode,omitempty"`
	// N is the drop threshold for ndetect mode.
	N int `json:"n,omitempty"`
	// Order selects the fault order for atpg and adi_order jobs.
	// Required on those kinds, forbidden on grade.
	Order *OrderSpec `json:"order,omitempty"`
	// Gen tunes an atpg job's generator; optional, atpg only.
	Gen *GenSpec `json:"gen,omitempty"`
	// Workers overrides the service's shard worker count for this job
	// (0 = service default). Results never depend on it. Out-of-range
	// values (negative, or above the service's SimWorkers) are rejected
	// at submit time rather than silently clamped.
	Workers int `json:"workers,omitempty"`
	// StopAtCoverage, when positive, stops after the first block
	// reaching that fault coverage.
	StopAtCoverage float64 `json:"stop_at_coverage,omitempty"`
	// FaultShard, when set, restricts the job to one deterministic
	// index-range shard of the collapsed fault universe, graded against
	// the full pattern set. Dropping decisions are per-fault, so
	// disjoint shards have no cross-fault control dependence and a set
	// of shard results merges bit-identically to an unsharded run (the
	// internal/cluster coordinator relies on this). Incompatible with
	// StopAtCoverage, whose cut-off depends on global coverage. Grade
	// jobs only: the other kinds are sequential over shared state and
	// reject it.
	FaultShard *FaultShard `json:"fault_shard,omitempty"`
}

// FaultShard selects shard Index of Count over the collapsed fault
// universe: the half-open index range ShardRange(faults, Index, Count).
type FaultShard struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

// ShardRange returns the half-open collapsed-fault index range
// [lo, hi) of shard index of count over n faults. The count ranges
// partition [0, n) exactly, each of size n/count or n/count+1, so the
// partition is a pure function of (n, count) — every party (service,
// cluster coordinator, tests) derives the same shards.
func ShardRange(n, index, count int) (lo, hi int) {
	return index * n / count, (index + 1) * n / count
}

// PatternSpec selects the vector set: exactly one of Random,
// Exhaustive and Vectors must be set.
type PatternSpec struct {
	Random     *RandomSpec `json:"random,omitempty"`
	Exhaustive bool        `json:"exhaustive,omitempty"`
	// Vectors are explicit input vectors as bit strings ("0110"), one
	// character per primary input.
	Vectors []string `json:"vectors,omitempty"`
}

// RandomSpec requests N uniformly random vectors from the library
// PRNG seeded with Seed, reproducible across runs and hosts.
type RandomSpec struct {
	N    int    `json:"n"`
	Seed uint64 `json:"seed"`
}

// Job states. Queued and running jobs may still change state; done,
// failed and cancelled are terminal.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// terminal reports whether a job state is final.
func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

// JobStatus is the pollable view of a job. Progress fields update at
// every barrier: a 64-pattern simulation block, or one ATPG target for
// the generation phase of atpg jobs.
type JobStatus struct {
	ID string `json:"id"`
	// Kind is the job's canonical kind name ("grade", "atpg",
	// "adi_order").
	Kind    string `json:"kind,omitempty"`
	State   string `json:"state"`
	Circuit string `json:"circuit,omitempty"`
	Faults  int    `json:"faults,omitempty"`
	Vectors int    `json:"vectors,omitempty"`
	Blocks  int    `json:"blocks,omitempty"`

	BlocksDone  int `json:"blocks_done"`
	VectorsUsed int `json:"vectors_used"`
	Detected    int `json:"detected"`
	Active      int `json:"active"`

	// ATPG-phase progress of atpg jobs: targets attempted of the total
	// order, and tests generated so far.
	Targets     int `json:"targets,omitempty"`
	TargetsDone int `json:"targets_done,omitempty"`
	Tests       int `json:"tests,omitempty"`

	// FaultShard echoes the spec's shard selector for shard jobs;
	// Faults then counts only the shard's faults.
	FaultShard *FaultShard `json:"fault_shard,omitempty"`

	// Timing is the job's wall-clock record: submit/start/finish
	// timestamps, queue wait, and per-phase durations. Additive to the
	// v1 wire — servers predating it simply omit the field.
	Timing *Timing `json:"timing,omitempty"`

	Error string `json:"error,omitempty"`
}

// ProgressEvent is one entry of a job's streaming progress feed: one
// per 64-pattern simulation block (all kinds), and one per ATPG target
// during the generation phase of atpg jobs (Target/Targets/Tests set,
// block fields zero).
type ProgressEvent struct {
	JobID       string `json:"job_id"`
	Kind        string `json:"kind,omitempty"`
	State       string `json:"state"`
	Block       int    `json:"block"`
	Blocks      int    `json:"blocks"`
	VectorsUsed int    `json:"vectors_used"`
	Detected    int    `json:"detected"`
	Active      int    `json:"active"`

	// ATPG-phase fields: Target counts order positions attempted so
	// far, Targets is the order length, Tests the vectors generated.
	Target  int `json:"target,omitempty"`
	Targets int `json:"targets,omitempty"`
	Tests   int `json:"tests,omitempty"`
}

// JobResult is the full outcome of a grade job, matching what a
// direct library run returns. The other kinds have their own result
// payloads (AtpgResult, OrderResult), served by the same result
// endpoint and told apart by the Kind field.
type JobResult struct {
	ID          string `json:"id"`
	Kind        string `json:"kind,omitempty"`
	Circuit     string `json:"circuit"`
	Fingerprint string `json:"fingerprint"`
	Mode        string `json:"mode"`
	// Faults counts the faults this job graded (the shard size for
	// shard jobs); TotalFaults is the full collapsed universe, so shard
	// results carry everything a merge needs to validate completeness.
	Faults      int `json:"faults"`
	TotalFaults int `json:"total_faults"`
	// FaultShard echoes the spec's shard selector; nil on unsharded
	// jobs and on merged cluster results.
	FaultShard  *FaultShard `json:"fault_shard,omitempty"`
	Vectors     int         `json:"vectors"`
	VectorsUsed int         `json:"vectors_used"`
	Detected    int         `json:"detected"`
	Coverage    float64     `json:"coverage"`
	// Ndet[u] is the number of faults detected by vector u under the
	// job's dropping policy.
	Ndet []int `json:"ndet"`
	// PerFault is indexed by collapsed fault index.
	PerFault []FaultResult `json:"per_fault"`
	// Timing is the job's wall-clock record, attached by the engine at
	// the terminal transition (merged cluster results carry the merge
	// phase instead of a single server's run).
	Timing *Timing `json:"timing,omitempty"`
}

// FaultResult is the per-fault grading outcome.
type FaultResult struct {
	F        int    `json:"f"`
	Name     string `json:"name"`
	DetCount int    `json:"det_count"`
	FirstDet int    `json:"first_det"`
	// Det lists the detecting vector indices (the detection set D(f)),
	// present in nodrop and ndetect modes.
	Det []int `json:"det,omitempty"`
}

// Stats is the service-level counter snapshot.
type Stats struct {
	Registry      RegistryStats `json:"registry"`
	JobsSubmitted uint64        `json:"jobs_submitted"`
	JobsDone      uint64        `json:"jobs_done"`
	JobsFailed    uint64        `json:"jobs_failed"`
	JobsCancelled uint64        `json:"jobs_cancelled"`
	JobsRunning   int           `json:"jobs_running"`
	JobsQueued    int           `json:"jobs_queued"`
	// UptimeSeconds is the service's age; Version the build version —
	// the same values the adifo_uptime_seconds and adifo_build_info
	// metrics expose.
	UptimeSeconds float64 `json:"uptime_seconds"`
	Version       string  `json:"version"`
}

// Errors returned by Submit, Result and Cancel.
var (
	ErrNotFound  = errors.New("service: job not found")
	ErrNotDone   = errors.New("service: job not finished")
	ErrCancelled = errors.New("service: job cancelled")
	ErrFinished  = errors.New("service: job already finished")
	// ErrDraining is returned by Submit once Drain has been called:
	// the service is shutting down and accepts no new jobs.
	ErrDraining = errors.New("service: draining, not accepting new jobs")
)

// Service is the concurrent fault-grading engine.
type Service struct {
	cfg    Config
	reg    *Registry
	sem    chan struct{}
	wg     sync.WaitGroup
	logger *slog.Logger

	// met holds the engine's instruments, registered on metrics; start
	// anchors the uptime gauge. now is the clock, swappable by tests
	// that pin timing values.
	metrics *obs.Registry
	met     *serviceMetrics
	start   time.Time
	now     func() time.Time

	mu        sync.Mutex
	jobs      map[string]*job
	order     []string // job ids in submission order
	seq       uint64
	submitted uint64
	done      uint64
	failed    uint64
	cancelled uint64
	draining  bool
}

type job struct {
	id   string
	spec JobSpec
	kind jobKind

	// ctx governs the job's work; cancel is invoked by Service.Cancel
	// and aborts the run at the next barrier (simulation block or ATPG
	// target).
	ctx    context.Context
	cancel context.CancelFunc

	// now and met are the owning service's clock and instruments,
	// copied in at submit so the hot paths (phase stopwatches, block
	// counters) never reach back through the service.
	now func() time.Time
	met *serviceMetrics

	mu     sync.Mutex
	status JobStatus
	timing Timing
	// result is the kind-specific payload: *JobResult for grade,
	// *AtpgResult for atpg, *OrderResult for adi_order.
	result any
	subs   []chan ProgressEvent
}

// New returns a ready service.
func New(cfg Config) *Service {
	if cfg.SimWorkers <= 0 {
		cfg.SimWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxConcurrentJobs <= 0 {
		cfg.MaxConcurrentJobs = 2
	}
	if cfg.CircuitCache <= 0 {
		cfg.CircuitCache = 32
	}
	if cfg.GoodCache <= 0 {
		cfg.GoodCache = 64
	}
	if cfg.MaxRetainedJobs <= 0 {
		cfg.MaxRetainedJobs = 1024
	}
	s := &Service{
		cfg:     cfg,
		reg:     NewRegistry(cfg.CircuitCache, cfg.GoodCache),
		sem:     make(chan struct{}, cfg.MaxConcurrentJobs),
		jobs:    make(map[string]*job),
		logger:  obs.Or(cfg.Logger),
		metrics: obs.NewRegistry(),
		now:     time.Now,
	}
	s.start = s.now()
	s.met = newServiceMetrics(s.metrics, s)
	return s
}

// Registry exposes the cache (stats and pre-warming).
func (s *Service) Registry() *Registry { return s.reg }

// Metrics exposes the service's metric registry, so embedders (the
// adifod debug listener, the facade) can mount its exposition handler
// elsewhere or register their own instruments alongside the engine's.
func (s *Service) Metrics() *obs.Registry { return s.metrics }

// Logger returns the service's structured logger.
func (s *Service) Logger() *slog.Logger { return s.logger }

// validateSpec performs everything Submit checks before enqueueing —
// the common validation (circuit reference, kind dispatch, worker
// bound, pattern spec, shardability) followed by the kind's own hook —
// and resolves the spec's kind. It spawns nothing, so it is also the
// surface the wire fuzz tests drive with arbitrary decoded specs.
func (s *Service) validateSpec(spec JobSpec) (jobKind, error) {
	if _, err := CircuitKey(spec); err != nil {
		return nil, err
	}
	kindName := NormalizeKind(spec.Kind)
	k, ok := jobKinds[kindName]
	if !ok {
		return nil, unsupportedKindError(kindName, KindNames())
	}
	if !s.kindAllowed(kindName) {
		return nil, unsupportedKindError(kindName, s.cfg.Kinds)
	}
	if spec.Workers < 0 || spec.Workers > s.cfg.SimWorkers {
		return nil, fmt.Errorf("workers %d out of range [0, %d] (0 = service default)",
			spec.Workers, s.cfg.SimWorkers)
	}
	if err := validatePatterns(spec.Patterns); err != nil {
		return nil, err
	}
	if spec.FaultShard != nil && !k.shardable() {
		return nil, fmt.Errorf("fault_shard applies only to grade jobs, not %q", kindName)
	}
	if err := k.validate(spec); err != nil {
		return nil, err
	}
	return k, nil
}

// kindAllowed reports whether this server serves the given canonical
// kind name (Config.Kinds empty = all).
func (s *Service) kindAllowed(kindName string) bool {
	if len(s.cfg.Kinds) == 0 {
		return true
	}
	for _, k := range s.cfg.Kinds {
		if NormalizeKind(k) == kindName {
			return true
		}
	}
	return false
}

// Submit validates spec, enqueues a job and returns its id. The job
// runs asynchronously on the bounded pool; resolution errors (bad
// netlist, unknown name) surface as a failed job status.
func (s *Service) Submit(spec JobSpec) (string, error) {
	k, err := s.validateSpec(spec)
	if err != nil {
		return "", err
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return "", ErrDraining
	}
	s.seq++
	s.submitted++
	id := fmt.Sprintf("j%d", s.seq)
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:     id,
		spec:   spec,
		kind:   k,
		ctx:    ctx,
		cancel: cancel,
		now:    s.now,
		met:    s.met,
		timing: Timing{SubmittedAt: s.now()},
		status: JobStatus{
			ID:         id,
			Kind:       NormalizeKind(spec.Kind),
			State:      StateQueued,
			FaultShard: spec.FaultShard,
		},
	}
	j.status.Timing = j.timing.Snapshot()
	s.met.jobsSubmitted.With(j.status.Kind).Inc()
	s.met.jobsQueued.Inc()
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.evictOldJobsLocked()
	// Registered under the lock: a concurrent Drain either sees the
	// draining flag before this Submit passed the check above, or its
	// wg.Wait observes this job — never neither.
	s.wg.Add(1)
	s.mu.Unlock()

	go s.run(j)
	return id, nil
}

// Status returns the current status of a job.
func (s *Service) Status(id string) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status, true
}

// Jobs returns the status of every known job in submission order.
func (s *Service) Jobs() []JobStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if st, ok := s.Status(id); ok {
			out = append(out, st)
		}
	}
	return out
}

// ResultAny returns the kind-specific outcome of a finished job —
// *JobResult for grade, *AtpgResult for atpg, *OrderResult for
// adi_order. It returns ErrNotFound for unknown ids, ErrNotDone while
// the job is queued or running, ErrCancelled for cancelled jobs, and
// the job's failure for failed jobs.
func (s *Service) ResultAny(id string) (any, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.status.State {
	case StateDone:
		return j.result, nil
	case StateFailed:
		return nil, fmt.Errorf("service: job %s failed: %s", id, j.status.Error)
	case StateCancelled:
		return nil, fmt.Errorf("%w (job %s)", ErrCancelled, id)
	}
	return nil, ErrNotDone
}

// Result is ResultAny for grade jobs, the dominant workload; it errors
// on jobs of other kinds instead of guessing at a conversion.
func (s *Service) Result(id string) (*JobResult, error) {
	v, err := s.ResultAny(id)
	if err != nil {
		return nil, err
	}
	r, ok := v.(*JobResult)
	if !ok {
		return nil, fmt.Errorf("service: job %s is not a grade job (its result is %T); fetch it with ResultAny", id, v)
	}
	return r, nil
}

// Cancel aborts a job. A queued job transitions to cancelled
// immediately; a running job is interrupted at its next block barrier
// and transitions shortly after (poll Status or consume Subscribe to
// observe the terminal state). Cancel is idempotent on already
// cancelled jobs. It returns ErrNotFound for unknown ids and
// ErrFinished for jobs that already completed or failed; the returned
// status is the job's state as of the call.
func (s *Service) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, ErrNotFound
	}
	// Signal first: if the run goroutine is between barriers it will
	// observe the cancellation at the next one.
	j.cancel()

	j.mu.Lock()
	switch j.status.State {
	case StateDone, StateFailed:
		st := j.status
		j.mu.Unlock()
		return st, ErrFinished
	case StateCancelled:
		st := j.status
		j.mu.Unlock()
		return st, nil
	case StateQueued:
		// The run goroutine has not claimed the job yet; finalize here
		// so the slot it would have used is never consumed. run()
		// observes the terminal state and returns without working.
		j.status.State = StateCancelled
		started := j.finalizeLocked()
		subs := j.subs
		j.subs = nil
		st := j.status
		j.mu.Unlock()
		for _, ch := range subs {
			close(ch)
		}
		s.countTerminal(st.Kind, StateCancelled, started)
		s.mu.Lock()
		s.cancelled++
		s.mu.Unlock()
		return st, nil
	}
	// Running: the simulation stops within one block; the run
	// goroutine performs the terminal transition.
	st := j.status
	j.mu.Unlock()
	return st, nil
}

// Subscribe returns a channel of per-block progress events for a job
// and a cancel function. The channel closes when the job reaches a
// terminal state (immediately for already-finished jobs). Events are
// advisory: a slow consumer may miss intermediate blocks but the
// channel close is always delivered.
func (s *Service) Subscribe(id string) (<-chan ProgressEvent, func(), bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, nil, false
	}
	ch := make(chan ProgressEvent, 16)
	j.mu.Lock()
	if terminal(j.status.State) {
		close(ch)
	} else {
		j.subs = append(j.subs, ch)
	}
	j.mu.Unlock()
	cancel := func() {
		j.mu.Lock()
		for i, c := range j.subs {
			if c == ch {
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				break
			}
		}
		j.mu.Unlock()
	}
	return ch, cancel, true
}

// Stats returns the service counters, including the registry cache
// hit/miss counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Registry:      s.reg.Stats(),
		JobsSubmitted: s.submitted,
		JobsDone:      s.done,
		JobsFailed:    s.failed,
		JobsCancelled: s.cancelled,
		UptimeSeconds: s.now().Sub(s.start).Seconds(),
		Version:       obs.Version,
	}
	for _, j := range s.jobs {
		j.mu.Lock()
		switch j.status.State {
		case StateRunning:
			st.JobsRunning++
		case StateQueued:
			st.JobsQueued++
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	return st
}

// Close waits for all submitted jobs to finish.
func (s *Service) Close() { s.wg.Wait() }

// Drain shuts the service down gracefully: Submit rejects new jobs
// with ErrDraining from the moment Drain is called, every queued job
// is cancelled immediately, every running job is cancelled at its next
// 64-pattern block barrier (their streams end with the cancelled
// status), and Drain returns once all job goroutines have finished.
// Idempotent: concurrent and repeated calls all wait for the same
// quiescent state.
func (s *Service) Drain() {
	s.mu.Lock()
	s.draining = true
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	s.met.draining.Set(1)
	for _, id := range ids {
		// ErrFinished and ErrNotFound (evicted) are fine: the job is
		// already out of the way.
		s.Cancel(id)
	}
	s.wg.Wait()
}

// evictOldJobsLocked drops the oldest finished jobs once the retained
// set exceeds the configured bound, so a long-running server's memory
// stays proportional to MaxRetainedJobs rather than to its lifetime
// request count. Queued and running jobs are always kept. Caller
// holds s.mu.
func (s *Service) evictOldJobsLocked() {
	excess := len(s.order) - s.cfg.MaxRetainedJobs
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		done := terminal(j.status.State)
		j.mu.Unlock()
		if excess > 0 && done {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// run executes one job on the bounded pool: it claims the running
// state, hands the body to the job's kind, and performs the terminal
// transition the kind's outcome calls for. A context error from the
// kind means the job was cancelled at a barrier; any other error fails
// the job. The body runs under pprof labels (kind, job), so CPU
// profiles attribute simulator and generator samples to the job that
// spent them — worker goroutines spawned inside inherit the labels.
func (s *Service) run(j *job) {
	defer s.wg.Done()
	defer func() {
		if p := recover(); p != nil {
			s.fail(j, fmt.Errorf("internal error: %v", p))
		}
	}()
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	// Running covers circuit resolution too: generating a synthetic
	// suite circuit can take seconds and must not look queued. A job
	// cancelled while queued was already finalized by Cancel; do not
	// resurrect it.
	j.mu.Lock()
	if terminal(j.status.State) {
		j.mu.Unlock()
		return
	}
	j.status.State = StateRunning
	j.timing.StartedAt = s.now()
	j.timing.QueueWaitSeconds = j.timing.StartedAt.Sub(j.timing.SubmittedAt).Seconds()
	j.status.Timing = j.timing.Snapshot()
	kind, wait := j.status.Kind, j.timing.QueueWaitSeconds
	j.mu.Unlock()
	s.met.jobsQueued.Dec()
	s.met.jobsRunning.Inc()
	s.met.queueWait.With(kind).Observe(wait)

	var result any
	var err error
	pprof.Do(j.ctx, pprof.Labels("kind", kind, "job", j.id), func(context.Context) {
		result, err = j.kind.run(s, j)
	})
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			s.finishCancelled(j)
		} else {
			s.fail(j, err)
		}
		return
	}

	j.mu.Lock()
	j.status.State = StateDone
	j.result = result
	j.finalizeLocked()
	run := j.timing.RunSeconds
	subs := j.subs
	j.subs = nil
	j.mu.Unlock()
	for _, ch := range subs {
		close(ch)
	}
	s.countTerminal(kind, StateDone, true)
	s.met.duration.With(kind).Observe(run)
	s.mu.Lock()
	s.done++
	s.mu.Unlock()
}

func (s *Service) fail(j *job, err error) {
	j.mu.Lock()
	if terminal(j.status.State) {
		// Already terminal (e.g. the recover path after fail).
		j.mu.Unlock()
		return
	}
	j.status.State = StateFailed
	j.status.Error = err.Error()
	started := j.finalizeLocked()
	kind := j.status.Kind
	subs := j.subs
	j.subs = nil
	j.mu.Unlock()
	for _, ch := range subs {
		close(ch)
	}
	s.countTerminal(kind, StateFailed, started)
	s.logger.Error("job failed", "job", j.id, "kind", kind, "err", err)
	s.mu.Lock()
	s.failed++
	s.mu.Unlock()
}

// finishCancelled performs the terminal transition of a running job
// whose context was cancelled: subscribers see their channel close and
// the final status reads cancelled.
func (s *Service) finishCancelled(j *job) {
	j.mu.Lock()
	if terminal(j.status.State) {
		j.mu.Unlock()
		return
	}
	j.status.State = StateCancelled
	started := j.finalizeLocked()
	kind := j.status.Kind
	subs := j.subs
	j.subs = nil
	j.mu.Unlock()
	for _, ch := range subs {
		close(ch)
	}
	s.countTerminal(kind, StateCancelled, started)
	s.mu.Lock()
	s.cancelled++
	s.mu.Unlock()
}

// finalizeLocked stamps the terminal timing on the job and mirrors it
// to the status and the result payload (when one exists). It reports
// whether the job had started — the caller uses that to settle the
// right occupancy gauge. Called with j.mu held, terminal state set.
func (j *job) finalizeLocked() (started bool) {
	j.timing.FinishedAt = j.now()
	started = !j.timing.StartedAt.IsZero()
	if started {
		j.timing.RunSeconds = j.timing.FinishedAt.Sub(j.timing.StartedAt).Seconds()
	}
	t := j.timing.Snapshot()
	j.status.Timing = t
	if r, ok := j.result.(timed); ok {
		r.setTiming(t)
	}
	return started
}

// countTerminal settles the metrics of a job reaching terminal state:
// the per-kind outcome counter, and whichever occupancy gauge (running
// or queued) the job leaves.
func (s *Service) countTerminal(kind, state string, started bool) {
	s.met.jobsTotal.With(kind, state).Inc()
	if started {
		s.met.jobsRunning.Dec()
	} else {
		s.met.jobsQueued.Dec()
	}
}

// publish pushes one block-barrier progress snapshot to the status and
// to every subscriber. Sends never block: progress is advisory.
func (j *job) publish(p fsim.Progress) {
	j.met.simBlocks.Inc()
	j.mu.Lock()
	j.status.BlocksDone = p.Block + 1
	j.status.VectorsUsed = p.VectorsUsed
	j.status.Detected = p.Detected
	j.status.Active = p.Active
	ev := ProgressEvent{
		JobID:       j.id,
		Kind:        j.status.Kind,
		State:       StateRunning,
		Block:       p.Block,
		Blocks:      p.Blocks,
		VectorsUsed: p.VectorsUsed,
		Detected:    p.Detected,
		Active:      p.Active,
	}
	j.send(ev)
}

// publishGen pushes one per-target ATPG progress snapshot — the
// generation-phase analogue of publish, fired after every PODEM
// attempt.
func (j *job) publishGen(p tgen.Progress) {
	j.mu.Lock()
	j.status.TargetsDone = p.Done
	j.status.Targets = p.Targets
	j.status.Tests = p.Tests
	j.status.Detected = p.Detected
	j.status.Active = p.Active
	ev := ProgressEvent{
		JobID:    j.id,
		Kind:     j.status.Kind,
		State:    StateRunning,
		Target:   p.Done,
		Targets:  p.Targets,
		Tests:    p.Tests,
		Detected: p.Detected,
		Active:   p.Active,
	}
	j.send(ev)
}

// send delivers one event to every subscriber without blocking (a slow
// consumer misses intermediate events, never the channel close).
// Called with j.mu held; unlocks it.
func (j *job) send(ev ProgressEvent) {
	subs := append([]chan ProgressEvent(nil), j.subs...)
	j.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

func validatePatterns(spec PatternSpec) error {
	n := 0
	if spec.Random != nil {
		n++
		if spec.Random.N <= 0 {
			return fmt.Errorf("random pattern spec requires n > 0")
		}
	}
	if spec.Exhaustive {
		n++
	}
	if len(spec.Vectors) > 0 {
		n++
	}
	if n != 1 {
		return fmt.Errorf("pattern spec must set exactly one of random, exhaustive, vectors")
	}
	return nil
}

// buildPatterns materializes the vector set of a spec for a circuit
// with the given input count and returns a deterministic content key
// for the good-machine cache.
func buildPatterns(inputs int, spec PatternSpec) (*logic.PatternSet, string, error) {
	switch {
	case spec.Random != nil:
		ps := logic.RandomPatterns(inputs, spec.Random.N, prng.New(spec.Random.Seed))
		return ps, fmt.Sprintf("r:%d:%d", spec.Random.N, spec.Random.Seed), nil
	case spec.Exhaustive:
		if inputs > 20 {
			return nil, "", fmt.Errorf("exhaustive patterns limited to 20 inputs, circuit has %d", inputs)
		}
		return logic.ExhaustivePatterns(inputs), "x", nil
	case len(spec.Vectors) > 0:
		ps := logic.NewPatternSet(inputs)
		h := fnv.New64a()
		for i, s := range spec.Vectors {
			if len(s) != inputs {
				return nil, "", fmt.Errorf("vector %d has %d bits, circuit has %d inputs", i, len(s), inputs)
			}
			v := make(logic.Vector, inputs)
			for k := 0; k < len(s); k++ {
				switch s[k] {
				case '0':
				case '1':
					v[k] = 1
				default:
					return nil, "", fmt.Errorf("vector %d: invalid character %q", i, s[k])
				}
			}
			ps.Append(v)
			h.Write([]byte(s))
			h.Write([]byte{'\n'})
		}
		return ps, fmt.Sprintf("v:%016x", h.Sum64()), nil
	}
	return nil, "", fmt.Errorf("empty pattern spec")
}
