// Package obs is the observability core of the serving stack: a
// dependency-free metrics registry (atomic counters, gauges and
// fixed-bucket histograms with a hand-rolled Prometheus text-format
// exposition writer) and a leveled structured logger over the standard
// library's slog. Everything the stack measures — job latency
// histograms, queue depth, cache hit rates, cluster shard retries —
// flows through this package, so the service, the cluster coordinator
// and both binaries share one metric vocabulary and one log shape
// without pulling a client library into the module.
//
// The metrics core is deliberately small. Instruments are created once
// at wiring time and updated on hot paths with a single atomic
// operation (counters, gauges) or one atomic add per histogram bucket,
// so instrumenting the simulator's block barrier costs nanoseconds.
// Exposition walks the registry under its lock — scrapes are rare and
// cheap relative to the work being measured.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default histogram bucket upper bounds for
// latencies, in seconds. They stretch from 100µs (a cache-hit submit)
// to 10s (a large ATPG job), matching the dynamic range of the job
// engine's phases.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing counter. The zero value is not
// usable; obtain counters from a Registry.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down, stored as a float64.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (negative to subtract) with a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one. Dec subtracts one.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Buckets are upper
// bounds in ascending order; an implicit +Inf bucket catches the rest.
type Histogram struct {
	upper   []float64
	buckets []atomic.Uint64 // per-bucket (non-cumulative), +1 for +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(upper []float64) *Histogram {
	return &Histogram{upper: upper, buckets: make([]atomic.Uint64, len(upper)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations; Sum their total.
func (h *Histogram) Count() uint64 { return h.count.Load() }
func (h *Histogram) Sum() float64  { return math.Float64frombits(h.sumBits.Load()) }

// metric kinds, also the TYPE line of the exposition.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// family is one named metric with all its labeled series.
type family struct {
	name    string
	help    string
	kind    string
	labels  []string
	buckets []float64 // histograms only

	// fn-backed families compute their single value at scrape time
	// (uptime, cache counters owned elsewhere). fn families have no
	// labels.
	counterFn func() uint64
	gaugeFn   func() float64

	mu     sync.Mutex
	series map[string]any // label-values key -> *Counter/*Gauge/*Histogram
	order  []string
}

// seriesKeySep joins label values into a map key; label values never
// contain it.
const seriesKeySep = "\x1f"

func (f *family) get(values []string, make func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s has %d labels, got %d values", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, seriesKeySep)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		return m
	}
	m := make()
	f.series[key] = m
	f.order = append(f.order, key)
	return m
}

// delete drops the series for the given label values; a no-op when the
// series was never created. The next With for the same values starts a
// fresh series from zero, so deletion is only sound for label sets
// whose zero restart is meaningful (gauges tracking live state, or
// counters whose consumers tolerate resets, as Prometheus ones do).
func (f *family) delete(values []string) {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s has %d labels, got %d values", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, seriesKeySep)
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.series[key]; !ok {
		return
	}
	delete(f.series, key)
	for i, k := range f.order {
		if k == key {
			copy(f.order[i:], f.order[i+1:])
			f.order[len(f.order)-1] = ""
			f.order = f.order[:len(f.order)-1]
			break
		}
	}
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct{ f *family }

// With returns the counter for the given label values, creating it on
// first use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.get(values, func() any { return &Counter{} }).(*Counter)
}

// Delete drops the series for the given label values from the
// exposition, bounding label cardinality when a label value (a tenant,
// a backend) leaves the system for good.
func (v *CounterVec) Delete(values ...string) { v.f.delete(values) }

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct{ f *family }

func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.get(values, func() any { return &Gauge{} }).(*Gauge)
}

// Delete drops the series for the given label values from the
// exposition.
func (v *GaugeVec) Delete(values ...string) { v.f.delete(values) }

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct{ f *family }

func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.get(values, func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}

// Delete drops the series for the given label values from the
// exposition.
func (v *HistogramVec) Delete(values ...string) { v.f.delete(values) }

// Registry holds named metrics and renders them in Prometheus text
// exposition format. Families expose in registration order; series
// within a family in creation order. Registering the same name twice
// panics — a registry belongs to exactly one component.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) register(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[f.name]; dup {
		panic("obs: duplicate metric registration: " + f.name)
	}
	if f.series == nil {
		f.series = make(map[string]any)
	}
	r.byName[f.name] = f
	r.fams = append(r.fams, f)
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := &family{name: name, help: help, kind: kindCounter}
	r.register(f)
	return f.get(nil, func() any { return &Counter{} }).(*Counter)
}

// CounterVec registers a counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	f := &family{name: name, help: help, kind: kindCounter, labels: labels}
	r.register(f)
	return &CounterVec{f}
}

// CounterFunc registers a counter whose value is computed at scrape
// time — for counts owned by another subsystem (cache hit counters).
// fn must be monotonic for the exposition to be honest.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(&family{name: name, help: help, kind: kindCounter, counterFn: fn})
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := &family{name: name, help: help, kind: kindGauge}
	r.register(f)
	return f.get(nil, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeVec registers a gauge family with the given label names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	f := &family{name: name, help: help, kind: kindGauge, labels: labels}
	r.register(f)
	return &GaugeVec{f}
}

// GaugeFunc registers a gauge computed at scrape time (uptime, pool
// sizes owned elsewhere).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, kind: kindGauge, gaugeFn: fn})
}

// Histogram registers and returns an unlabeled histogram with the
// given bucket upper bounds (nil = DefBuckets). Bounds must be sorted
// ascending.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := &family{name: name, help: help, kind: kindHistogram, buckets: checkBuckets(name, buckets)}
	r.register(f)
	return f.get(nil, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// HistogramVec registers a histogram family with the given buckets
// (nil = DefBuckets) and label names.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	f := &family{name: name, help: help, kind: kindHistogram, buckets: checkBuckets(name, buckets), labels: labels}
	r.register(f)
	return &HistogramVec{f}
}

func checkBuckets(name string, buckets []float64) []float64 {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("obs: histogram " + name + " buckets not strictly ascending")
		}
	}
	return append([]float64(nil), buckets...)
}

// WriteText renders every registered metric in Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		f.write(&b)
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the registry as a Prometheus scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}

func (f *family) write(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	switch {
	case f.counterFn != nil:
		fmt.Fprintf(b, "%s %d\n", f.name, f.counterFn())
		return
	case f.gaugeFn != nil:
		fmt.Fprintf(b, "%s %s\n", f.name, formatFloat(f.gaugeFn()))
		return
	}
	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	series := make([]any, len(keys))
	for i, k := range keys {
		series[i] = f.series[k]
	}
	f.mu.Unlock()
	for i, key := range keys {
		var values []string
		if len(f.labels) > 0 {
			values = strings.Split(key, seriesKeySep)
		}
		switch m := series[i].(type) {
		case *Counter:
			fmt.Fprintf(b, "%s%s %d\n", f.name, renderLabels(f.labels, values, "", ""), m.Value())
		case *Gauge:
			fmt.Fprintf(b, "%s%s %s\n", f.name, renderLabels(f.labels, values, "", ""), formatFloat(m.Value()))
		case *Histogram:
			cum := uint64(0)
			for bi, upper := range m.upper {
				cum += m.buckets[bi].Load()
				fmt.Fprintf(b, "%s_bucket%s %d\n",
					f.name, renderLabels(f.labels, values, "le", formatFloat(upper)), cum)
			}
			cum += m.buckets[len(m.upper)].Load()
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, renderLabels(f.labels, values, "le", "+Inf"), cum)
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, renderLabels(f.labels, values, "", ""), formatFloat(m.Sum()))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, renderLabels(f.labels, values, "", ""), m.count.Load())
		}
	}
}

// renderLabels renders {k="v",...}, appending the extra pair (the
// histogram's le) when extraKey is non-empty; empty label sets render
// as nothing.
func renderLabels(names, values []string, extraKey, extraVal string) string {
	if len(names) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(extraVal)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a sample value the way Prometheus does: shortest
// representation that round-trips, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
