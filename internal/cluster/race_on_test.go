//go:build race

package cluster

// raceEnabled lets timing-sensitive chaos tests widen their margins:
// the race detector slows simulation roughly an order of magnitude,
// which would otherwise invert the fast-duplicate-vs-held-original
// ordering the tests assert.
const raceEnabled = true
