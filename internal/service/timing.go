package service

import (
	"time"

	"github.com/eda-go/adifo/internal/obs/trace"
)

// Phase names of Timing.Phases. Each kind records the subset it runs:
// grade records registry_build and simulate; adi_order adds order;
// atpg adds order and generate; a cluster-merged result carries merge.
// The engine owns the job lifecycle (submitted/started/finished), the
// kinds own the phases — the same single-ownership split the JobKind
// registry uses for state transitions, so a phase is timed exactly
// once no matter which kind runs it.
const (
	PhaseRegistryBuild = "registry_build" // circuit resolution + pattern materialization
	PhaseSimulate      = "simulate"       // PPSFP block simulation
	PhaseOrder         = "order"          // ADI derivation + fault-order construction
	PhaseGenerate      = "generate"       // PODEM test generation
	PhaseMerge         = "merge"          // cluster-side shard result merge
)

// Timing is the per-job wall-clock record, surfaced (additively — old
// clients never see the field absent a server that records it) on
// status and result wire responses. Timestamps locate the job on the
// server's clock; the durations are what capacity planning consumes:
// queue wait separates "the pool was busy" from "the job was slow",
// and the phase map says where the run time actually went.
type Timing struct {
	SubmittedAt time.Time `json:"submitted_at,omitzero"`
	StartedAt   time.Time `json:"started_at,omitzero"`
	FinishedAt  time.Time `json:"finished_at,omitzero"`
	// QueueWaitSeconds is StartedAt-SubmittedAt: time spent waiting for
	// a pool slot. RunSeconds is FinishedAt-StartedAt (zero while the
	// job runs; absent phases mean the job never reached them).
	QueueWaitSeconds float64 `json:"queue_wait_seconds"`
	RunSeconds       float64 `json:"run_seconds,omitempty"`
	// Phases maps phase names (registry_build, simulate, order,
	// generate, merge) to seconds spent in them.
	Phases map[string]float64 `json:"phases,omitempty"`
}

// Snapshot returns an independent copy, safe to hand to wire encoders
// after the owning job's lock is released.
func (t *Timing) Snapshot() *Timing {
	cp := *t
	if t.Phases != nil {
		cp.Phases = make(map[string]float64, len(t.Phases))
		for k, v := range t.Phases {
			cp.Phases[k] = v
		}
	}
	return &cp
}

// AddPhase accumulates d into phase name. The cluster coordinator uses
// it to record the merge phase on its own jobs; in-process jobs record
// phases through the engine's stopwatches instead.
func (t *Timing) AddPhase(name string, d time.Duration) {
	if t.Phases == nil {
		t.Phases = make(map[string]float64, 4)
	}
	t.Phases[name] += d.Seconds()
}

// phase starts a stopwatch for one named phase of j; the returned stop
// function records the elapsed time into the job's timing and mirrors
// it to the status. Kinds call it around each pipeline stage:
//
//	stop := j.phase(PhaseSimulate)
//	... run the simulator ...
//	stop()
//
// Each phase is also a child span of the job's root span, so the trace
// tree mirrors the Timing.Phases map. Bare test jobs with no trace
// context time phases without spans.
func (j *job) phase(name string) (stop func()) {
	start := j.now()
	j.mu.Lock()
	tctx := j.tctx
	j.mu.Unlock()
	var span *trace.Span
	if tctx != nil {
		_, span = trace.Start(tctx, name)
	}
	return func() {
		span.End()
		d := j.now().Sub(start)
		j.mu.Lock()
		j.timing.AddPhase(name, d)
		j.status.Timing = j.timing.Snapshot()
		j.mu.Unlock()
	}
}

// timed is implemented by every kind's result payload so the engine
// can attach the final Timing at the terminal transition without
// knowing the payload's concrete type.
type timed interface{ setTiming(*Timing) }

func (r *JobResult) setTiming(t *Timing)   { r.Timing = t }
func (r *AtpgResult) setTiming(t *Timing)  { r.Timing = t }
func (r *OrderResult) setTiming(t *Timing) { r.Timing = t }

// traced is the same single-ownership pattern for the trace id: the
// engine stamps the job's trace id on the result payload at the
// terminal transition, whatever its concrete kind.
type traced interface{ setTraceID(id string) }

func (r *JobResult) setTraceID(id string)   { r.TraceID = id }
func (r *AtpgResult) setTraceID(id string)  { r.TraceID = id }
func (r *OrderResult) setTraceID(id string) { r.TraceID = id }
