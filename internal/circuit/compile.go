package circuit

// Compiled is the flat, structure-of-arrays form of a frozen Circuit
// that the simulators execute. Where Circuit stores one Gate struct
// per node (name, type, fanin slice), Compiled lays the same netlist
// out as parallel CSR arrays indexed by gate id, plus a levelized
// evaluation order, so the simulation inner loops touch nothing but
// dense int32/uint8 arrays: no per-gate pointer chasing, no interface
// values, and fanin/fanout walks that are contiguous in memory.
//
// Gate ids are unchanged from the source circuit — fault sites, value
// arrays and results stay indexable by the same integers — only the
// evaluation *order* is re-derived (level-major, ascending id within a
// level). A Compiled is immutable and safe to share across goroutines;
// one compiled form serves any number of concurrent simulations, which
// is why the service registry caches it per netlist fingerprint.
type Compiled struct {
	// Circuit is the source netlist the form was compiled from.
	Circuit *Circuit

	// Fingerprint is Circuit.Fingerprint(), captured at compile time so
	// consumers can cheaply verify a compiled form against a circuit
	// without rehashing.
	Fingerprint uint64

	// Type[g] is the gate type of gate g.
	Type []GateType

	// Fanin CSR: the fanin gate ids of gate g, in pin order, are
	// Fanin[FaninStart[g]:FaninStart[g+1]]. len(FaninStart) == n+1.
	FaninStart []int32
	Fanin      []int32

	// Fanout CSR: the gate ids fed by gate g (one entry per connection,
	// so a gate feeding two pins of one sink appears twice) are
	// Fanout[FanoutStart[g]:FanoutStart[g+1]].
	FanoutStart []int32
	Fanout      []int32

	// Level[g] is the logic depth of gate g (0 for PIs).
	Level []int32

	// Order lists every gate id in levelized topological order:
	// level-major, ascending id within a level. The gates of level l
	// are Order[LevelStart[l]:LevelStart[l+1]]; len(LevelStart) ==
	// MaxLevel+2. Level 0 is exactly the PIs, so a full evaluation pass
	// walks Order[LevelStart[1]:].
	Order      []int32
	LevelStart []int32

	// Output[g] reports whether gate g is observed (a PO or scan
	// pseudo-PO).
	Output []bool

	// Inputs and Outputs are the PI and observed gate ids in
	// declaration order (the same order as Circuit.Inputs/Outputs).
	Inputs  []int32
	Outputs []int32

	// MaxLevel is the largest entry of Level; MaxFanin the widest gate.
	MaxLevel int
	MaxFanin int
}

// NumGates returns the number of gates including PI pseudo-gates.
func (cc *Compiled) NumGates() int { return len(cc.Type) }

// NumInputs returns the number of primary inputs.
func (cc *Compiled) NumInputs() int { return len(cc.Inputs) }

// GateFanin returns the fanin gate ids of gate g in pin order. The
// slice aliases the CSR storage and must be treated as read-only.
func (cc *Compiled) GateFanin(g int) []int32 {
	return cc.Fanin[cc.FaninStart[g]:cc.FaninStart[g+1]]
}

// Compile lowers a frozen circuit into its flat simulation form. It is
// a pure derivation — O(gates + edges), no validation beyond what
// Freeze already guaranteed — and may be called concurrently.
func Compile(c *Circuit) *Compiled {
	n := len(c.Gates)
	cc := &Compiled{
		Circuit:     c,
		Fingerprint: c.Fingerprint(),
		Type:        make([]GateType, n),
		FaninStart:  make([]int32, n+1),
		FanoutStart: make([]int32, n+1),
		Level:       make([]int32, n),
		Order:       make([]int32, n),
		LevelStart:  make([]int32, c.MaxLevel+2),
		Output:      make([]bool, n),
		Inputs:      make([]int32, len(c.Inputs)),
		Outputs:     make([]int32, len(c.Outputs)),
		MaxLevel:    c.MaxLevel,
	}

	edges, fanouts := 0, 0
	for gi, g := range c.Gates {
		cc.Type[gi] = g.Type
		cc.Level[gi] = int32(c.Level[gi])
		cc.Output[gi] = c.isOutput[gi]
		edges += len(g.Fanin)
		fanouts += len(c.Fanout[gi])
		if len(g.Fanin) > cc.MaxFanin {
			cc.MaxFanin = len(g.Fanin)
		}
	}
	cc.Fanin = make([]int32, 0, edges)
	for gi, g := range c.Gates {
		cc.FaninStart[gi] = int32(len(cc.Fanin))
		for _, f := range g.Fanin {
			cc.Fanin = append(cc.Fanin, int32(f))
		}
	}
	cc.FaninStart[n] = int32(len(cc.Fanin))

	cc.Fanout = make([]int32, 0, fanouts)
	for gi := 0; gi < n; gi++ {
		cc.FanoutStart[gi] = int32(len(cc.Fanout))
		for _, fo := range c.Fanout[gi] {
			cc.Fanout = append(cc.Fanout, int32(fo.Gate))
		}
	}
	cc.FanoutStart[n] = int32(len(cc.Fanout))

	// Levelized order by counting sort: level-major, ascending id
	// within a level (gi iterates ascending). LevelStart doubles as the
	// insertion cursor during the fill and is rebuilt afterwards.
	for gi := 0; gi < n; gi++ {
		cc.LevelStart[cc.Level[gi]+1]++
	}
	for l := 1; l < len(cc.LevelStart); l++ {
		cc.LevelStart[l] += cc.LevelStart[l-1]
	}
	cursor := make([]int32, c.MaxLevel+1)
	copy(cursor, cc.LevelStart)
	for gi := 0; gi < n; gi++ {
		lvl := cc.Level[gi]
		cc.Order[cursor[lvl]] = int32(gi)
		cursor[lvl]++
	}

	for i, g := range c.Inputs {
		cc.Inputs[i] = int32(g)
	}
	for i, g := range c.Outputs {
		cc.Outputs[i] = int32(g)
	}
	return cc
}
