// Package adifo reproduces Pomeranz & Reddy, "The Accidental Detection
// Index as a Fault Ordering Heuristic for Full-Scan Circuits" (DATE
// 2005), as a complete Go library: gate-level netlists, stuck-at fault
// modelling with equivalence collapsing, bit-parallel fault
// simulation, a PODEM test generator, the accidental detection index
// with its six fault orders, an irredundancy pass, a synthetic
// benchmark suite, and a harness that regenerates every table and
// figure of the paper's evaluation.
//
// The implementation lives under internal/; see README.md for the
// architecture overview, cmd/ for the command-line tools, and
// examples/ for runnable walk-throughs of the public API. The
// top-level bench_test.go regenerates the paper's tables and figure
// via `go test -bench`.
package adifo
