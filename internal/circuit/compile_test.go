package circuit_test

import (
	"testing"

	"github.com/eda-go/adifo/internal/benchdata"
	"github.com/eda-go/adifo/internal/circuit"
	"github.com/eda-go/adifo/internal/gen"
)

// verifyCompiled cross-checks every array of a compiled form against
// the source circuit's per-gate representation.
func verifyCompiled(t *testing.T, c *circuit.Circuit) {
	t.Helper()
	cc := circuit.Compile(c)
	n := c.NumGates()
	if cc.Circuit != c {
		t.Fatal("Compiled.Circuit does not point at the source netlist")
	}
	if cc.Fingerprint != c.Fingerprint() {
		t.Fatal("Fingerprint not captured at compile time")
	}
	if cc.NumGates() != n || cc.NumInputs() != c.NumInputs() {
		t.Fatalf("size mismatch: %d/%d gates, %d/%d inputs",
			cc.NumGates(), n, cc.NumInputs(), c.NumInputs())
	}
	if cc.MaxLevel != c.MaxLevel {
		t.Fatalf("MaxLevel = %d, circuit has %d", cc.MaxLevel, c.MaxLevel)
	}

	maxFanin := 0
	for g := 0; g < n; g++ {
		gate := c.Gates[g]
		if cc.Type[g] != gate.Type {
			t.Fatalf("gate %d: type %v, want %v", g, cc.Type[g], gate.Type)
		}
		if int(cc.Level[g]) != c.Level[g] {
			t.Fatalf("gate %d: level %d, want %d", g, cc.Level[g], c.Level[g])
		}
		if cc.Output[g] != c.IsOutput(g) {
			t.Fatalf("gate %d: output flag %v, want %v", g, cc.Output[g], c.IsOutput(g))
		}
		fanin := cc.GateFanin(g)
		if len(fanin) != len(gate.Fanin) {
			t.Fatalf("gate %d: %d fanins, want %d", g, len(fanin), len(gate.Fanin))
		}
		for k, f := range gate.Fanin {
			if int(fanin[k]) != f {
				t.Fatalf("gate %d pin %d: fanin %d, want %d", g, k, fanin[k], f)
			}
		}
		if len(gate.Fanin) > maxFanin {
			maxFanin = len(gate.Fanin)
		}
		fanout := cc.Fanout[cc.FanoutStart[g]:cc.FanoutStart[g+1]]
		if len(fanout) != len(c.Fanout[g]) {
			t.Fatalf("gate %d: %d fanouts, want %d", g, len(fanout), len(c.Fanout[g]))
		}
		for k, fo := range c.Fanout[g] {
			if int(fanout[k]) != fo.Gate {
				t.Fatalf("gate %d fanout %d: %d, want %d", g, k, fanout[k], fo.Gate)
			}
		}
	}
	if cc.MaxFanin != maxFanin {
		t.Fatalf("MaxFanin = %d, want %d", cc.MaxFanin, maxFanin)
	}

	// Order must be a permutation of all gate ids, level-major with
	// ascending ids inside each level, delimited exactly by LevelStart.
	if len(cc.Order) != n || len(cc.LevelStart) != cc.MaxLevel+2 {
		t.Fatalf("Order/LevelStart sized %d/%d, want %d/%d",
			len(cc.Order), len(cc.LevelStart), n, cc.MaxLevel+2)
	}
	seen := make([]bool, n)
	for l := 0; l <= cc.MaxLevel; l++ {
		lo, hi := cc.LevelStart[l], cc.LevelStart[l+1]
		for i := lo; i < hi; i++ {
			g := cc.Order[i]
			if int(cc.Level[g]) != l {
				t.Fatalf("Order[%d] = gate %d at level %d inside bucket %d", i, g, cc.Level[g], l)
			}
			if seen[g] {
				t.Fatalf("gate %d appears twice in Order", g)
			}
			seen[g] = true
			if i > lo && cc.Order[i-1] >= g {
				t.Fatalf("Order not ascending within level %d: %d then %d", l, cc.Order[i-1], g)
			}
		}
	}
	if int(cc.LevelStart[cc.MaxLevel+1]) != n {
		t.Fatalf("LevelStart does not cover all %d gates", n)
	}

	// Level 0 is exactly the PIs, in ascending id order — the property
	// that lets evaluation start at Order[LevelStart[1]:].
	if int(cc.LevelStart[1]) != c.NumInputs() {
		t.Fatalf("level-0 bucket holds %d gates, want %d PIs", cc.LevelStart[1], c.NumInputs())
	}
	for i := 0; i < int(cc.LevelStart[1]); i++ {
		if cc.Type[cc.Order[i]] != circuit.PI {
			t.Fatalf("level-0 gate %d is %v, not PI", cc.Order[i], cc.Type[cc.Order[i]])
		}
	}

	for i, g := range c.Inputs {
		if int(cc.Inputs[i]) != g {
			t.Fatalf("Inputs[%d] = %d, want %d", i, cc.Inputs[i], g)
		}
	}
	for i, g := range c.Outputs {
		if int(cc.Outputs[i]) != g {
			t.Fatalf("Outputs[%d] = %d, want %d", i, cc.Outputs[i], g)
		}
	}
}

func TestCompileBenchCircuits(t *testing.T) {
	for _, name := range []string{"c17", "lion", "s27"} {
		c, err := benchdata.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) { verifyCompiled(t, c) })
	}
}

func TestCompileGeneratedCircuits(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		c := gen.Generate(gen.Config{Name: "cmp", Inputs: 12, Gates: 400, Seed: seed})
		verifyCompiled(t, c)
	}
}

// BenchmarkCompile measures the one-time lowering cost per netlist —
// the price the registry pays on a compiled-cache miss.
func BenchmarkCompile(b *testing.B) {
	for _, name := range []string{"irs5378", "irs13207"} {
		sc, ok := gen.SuiteByName(name)
		if !ok {
			b.Fatalf("suite circuit %s missing", name)
		}
		c := sc.Build()
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = circuit.Compile(c)
			}
		})
	}
}
