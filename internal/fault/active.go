package fault

// ActiveSet is the ordered index list of not-yet-dropped faults used
// by the dropping simulation modes. It exists so that jobs sharing one
// cached (read-only) List each carry their own drop state: the List is
// never mutated, the ActiveSet is private to a run, and resetting or
// snapshotting it costs O(active) instead of re-collapsing the fault
// universe.
//
// The zero value is not useful; construct with NewActiveSet or
// NewActiveSetOrdered.
type ActiveSet struct {
	n   int
	idx []int
	// orig is the full iteration order Reset restores; nil means the
	// identity order (NewActiveSet).
	orig []int
}

// NewActiveSet returns an active set over faults 0..n-1, all active,
// iterated in increasing index order.
func NewActiveSet(n int) *ActiveSet {
	a := &ActiveSet{n: n, idx: make([]int, n)}
	for i := range a.idx {
		a.idx[i] = i
	}
	return a
}

// NewActiveSetOrdered returns an active set over faults 0..n-1, all
// active, iterated in the given order. order must be a permutation of
// 0..n-1; the slice is retained (Reset restores it) and must not be
// modified by the caller afterwards. Iteration order never changes
// which faults drop — per-fault accounting is order-independent — it
// is a scheduling lever: the parallel simulator orders faults by site
// level so shards get cones of similar depth.
func NewActiveSetOrdered(n int, order []int) *ActiveSet {
	if len(order) != n {
		panic("fault: iteration order length does not match universe size")
	}
	return &ActiveSet{n: n, idx: append([]int(nil), order...), orig: order}
}

// Len returns the number of currently active faults.
func (a *ActiveSet) Len() int { return len(a.idx) }

// Universe returns the size of the underlying fault universe (the
// value passed to NewActiveSet), independent of how many faults have
// been dropped.
func (a *ActiveSet) Universe() int { return a.n }

// Indices returns the active fault indices in iteration order
// (increasing for NewActiveSet, the given order for
// NewActiveSetOrdered). The slice is a view into the set's storage: it
// is valid until the next Compact or Reset and must not be modified by
// the caller.
func (a *ActiveSet) Indices() []int { return a.idx }

// Compact drops every active fault whose position p (an index into
// Indices, not a fault index) has keep[p] == false, preserving the
// relative order of the survivors. It returns the number of faults
// dropped. keep must cover at least Len() positions.
func (a *ActiveSet) Compact(keep []bool) int {
	w := 0
	for p, fi := range a.idx {
		if keep[p] {
			a.idx[w] = fi
			w++
		}
	}
	dropped := len(a.idx) - w
	a.idx = a.idx[:w]
	return dropped
}

// Reset restores all faults of the universe to active, in the set's
// original iteration order, reusing the existing storage.
func (a *ActiveSet) Reset() {
	if cap(a.idx) < a.n {
		a.idx = make([]int, a.n)
	}
	a.idx = a.idx[:a.n]
	if a.orig != nil {
		copy(a.idx, a.orig)
		return
	}
	for i := range a.idx {
		a.idx[i] = i
	}
}

// Snapshot returns an independent copy of the set; compacting or
// resetting one does not affect the other. Sharded runs use it to
// branch drop state without re-enumerating faults.
func (a *ActiveSet) Snapshot() *ActiveSet {
	return &ActiveSet{n: a.n, idx: append([]int(nil), a.idx...), orig: a.orig}
}
