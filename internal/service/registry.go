package service

import (
	"fmt"
	"hash/fnv"
	"strings"
	"sync"

	"github.com/eda-go/adifo/internal/circuit"
	"github.com/eda-go/adifo/internal/cli"
	"github.com/eda-go/adifo/internal/fault"
	"github.com/eda-go/adifo/internal/fsim"
	"github.com/eda-go/adifo/internal/logic"
)

// CircuitEntry is everything the service derives from one netlist and
// shares, read-only, across all jobs that grade it: the levelized
// circuit and the collapsed fault list. Deriving it is the expensive
// part of a small grading request (parse + levelize + collapse), which
// is why repeat submissions must hit the cache instead.
type CircuitEntry struct {
	Key         string
	Fingerprint uint64
	Circuit     *circuit.Circuit
	Faults      *fault.List
}

// RegistryStats is the registry's cache counter snapshot, exposed via
// the service stats endpoint so clients (and tests) can verify that
// repeat submissions hit the cache.
type RegistryStats struct {
	CircuitHits   uint64 `json:"circuit_hits"`
	CircuitMisses uint64 `json:"circuit_misses"`
	GoodHits      uint64 `json:"good_hits"`
	GoodMisses    uint64 `json:"good_misses"`
	// CircuitEvictions and GoodEvictions count entries pushed out by
	// the LRU — a rising rate means the cache capacity is undersized
	// for the working set and rebuild cost is being paid repeatedly.
	CircuitEvictions uint64 `json:"circuit_evictions"`
	GoodEvictions    uint64 `json:"good_evictions"`
	// Compiled-form counters: the SoA simulation form derived from a
	// cached circuit (keyed by netlist fingerprint, so structurally
	// identical submissions under different keys share one form). A
	// miss costs one circuit.Compile; hits hand every grading job the
	// same immutable arrays.
	CompiledHits      uint64 `json:"compiled_hits"`
	CompiledMisses    uint64 `json:"compiled_misses"`
	CompiledEvictions uint64 `json:"compiled_evictions"`
	Circuits          int    `json:"circuits"`
	Goods             int    `json:"goods"`
	Compiled          int    `json:"compiled"`
}

// Registry caches parsed circuits (with their collapsed fault lists)
// and precomputed good-machine simulations under LRU eviction. Keys
// are deterministic functions of the request content — a name for
// named circuits, a content hash for inline netlists, and the pattern
// spec for good values — so equal requests always share one entry.
//
// The registry lock only guards the maps and counters; builds run
// outside it behind a per-entry sync.Once, so a slow parse or good
// simulation never blocks unrelated lookups, while concurrent misses
// on one key still do the work exactly once (single-flight).
type Registry struct {
	mu       sync.Mutex
	circuits *lruCache[*circuitSlot]
	goods    *lruCache[*goodSlot]
	compiled *lruCache[*compiledSlot]
	stats    RegistryStats
}

// circuitSlot and goodSlot are the single-flight cells stored in the
// LRUs: the first goroutine to claim the slot builds, later ones wait
// on the Once.
type circuitSlot struct {
	once  sync.Once
	entry *CircuitEntry
	err   error
}

type goodSlot struct {
	once sync.Once
	g    *fsim.Good
}

type compiledSlot struct {
	once sync.Once
	cc   *circuit.Compiled
}

// NewRegistry returns a registry holding at most circuitCap circuit
// entries and goodCap good-machine simulations.
func NewRegistry(circuitCap, goodCap int) *Registry {
	return &Registry{
		circuits: newLRU[*circuitSlot](circuitCap),
		goods:    newLRU[*goodSlot](goodCap),
		// One compiled form per live circuit is the steady state, so
		// the compiled cache shares the circuit capacity.
		compiled: newLRU[*compiledSlot](circuitCap),
	}
}

// CircuitKey returns the cache key for a job's circuit request: the
// name for named circuits, a content hash for inline bench text.
// Hashing the raw text (rather than parsing and fingerprinting) keeps
// the cache-hit path free of parsing entirely.
func CircuitKey(spec JobSpec) (string, error) {
	switch {
	case spec.Circuit != "" && spec.Bench != "":
		return "", fmt.Errorf("request names a circuit and carries bench text; want exactly one")
	case spec.Circuit != "":
		return "n:" + spec.Circuit, nil
	case spec.Bench != "":
		h := fnv.New64a()
		h.Write([]byte(spec.Bench))
		return fmt.Sprintf("b:%016x", h.Sum64()), nil
	}
	return "", fmt.Errorf("request carries neither a circuit name nor bench text")
}

// Circuit returns the cached entry for key, building it on a miss
// (parse, levelize, collapse — outside the lock, single-flight per
// key). Failed builds are not cached.
func (r *Registry) Circuit(key string, build func() (*circuit.Circuit, error)) (*CircuitEntry, error) {
	r.mu.Lock()
	slot, ok := r.circuits.get(key)
	if ok {
		r.stats.CircuitHits++
	} else {
		r.stats.CircuitMisses++
		slot = &circuitSlot{}
		if r.circuits.put(key, slot) {
			r.stats.CircuitEvictions++
		}
	}
	r.mu.Unlock()

	slot.once.Do(func() {
		c, err := build()
		if err != nil {
			slot.err = err
			return
		}
		slot.entry = &CircuitEntry{
			Key:         key,
			Fingerprint: c.Fingerprint(),
			Circuit:     c,
			Faults:      fault.CollapsedUniverse(c),
		}
	})
	if slot.err != nil {
		r.mu.Lock()
		r.circuits.delete(key)
		r.mu.Unlock()
		return nil, slot.err
	}
	return slot.entry, nil
}

// CircuitFor resolves a job's circuit through the cache: named
// circuits load embedded or synthetic netlists, inline text is parsed
// as .bench.
func (r *Registry) CircuitFor(spec JobSpec) (*CircuitEntry, error) {
	key, err := CircuitKey(spec)
	if err != nil {
		return nil, err
	}
	return r.Circuit(key, func() (*circuit.Circuit, error) {
		if spec.Circuit != "" {
			return cli.LoadNamedCircuit(spec.Circuit)
		}
		name := spec.Name
		if name == "" {
			name = "submitted"
		}
		return circuit.ParseBench(name, strings.NewReader(spec.Bench))
	})
}

// Good returns the cached good-machine simulation for (entry,
// patternKey), computing it from ps on a miss (outside the lock,
// single-flight per key). patternKey must deterministically identify
// the content of ps.
func (r *Registry) Good(entry *CircuitEntry, patternKey string, ps *logic.PatternSet) *fsim.Good {
	key := entry.Key + "|" + patternKey
	r.mu.Lock()
	slot, ok := r.goods.get(key)
	if ok {
		r.stats.GoodHits++
	} else {
		r.stats.GoodMisses++
		slot = &goodSlot{}
		if r.goods.put(key, slot) {
			r.stats.GoodEvictions++
		}
	}
	r.mu.Unlock()

	slot.once.Do(func() { slot.g = fsim.ComputeGoodCompiled(r.Compiled(entry), ps) })
	return slot.g
}

// Compiled returns the cached SoA simulation form for entry's netlist,
// compiling it on a miss (outside the lock, single-flight per key).
// The key is the netlist fingerprint rather than the request key, so
// an inline submission of a named circuit's text shares the compiled
// form with jobs naming it — the simulator accepts any compiled form
// whose fingerprint matches the circuit it runs.
func (r *Registry) Compiled(entry *CircuitEntry) *circuit.Compiled {
	key := fmt.Sprintf("%016x", entry.Fingerprint)
	r.mu.Lock()
	slot, ok := r.compiled.get(key)
	if ok {
		r.stats.CompiledHits++
	} else {
		r.stats.CompiledMisses++
		slot = &compiledSlot{}
		if r.compiled.put(key, slot) {
			r.stats.CompiledEvictions++
		}
	}
	r.mu.Unlock()

	slot.once.Do(func() { slot.cc = circuit.Compile(entry.Circuit) })
	return slot.cc
}

// Stats returns a snapshot of the cache counters.
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.stats
	s.Circuits = r.circuits.len()
	s.Goods = r.goods.len()
	s.Compiled = r.compiled.len()
	return s
}
