// Command adifo is the Swiss-army tool of the library: circuit
// statistics, fault listing, ADI computation, fault-order inspection
// and fault grading (local or against an adifod server) on any
// circuit.
//
// Usage:
//
//	adifo stats  -circuit irs420
//	adifo faults -circuit c17
//	adifo adi    -circuit lion -exhaustive
//	adifo order  -circuit lion -exhaustive -order dynm
//	adifo grade  -circuit c17 -mode drop -n 256
//	adifo grade  -server http://localhost:8417 -circuit my.bench
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"github.com/eda-go/adifo/internal/adi"
	"github.com/eda-go/adifo/internal/benchdata"
	"github.com/eda-go/adifo/internal/cli"
	"github.com/eda-go/adifo/internal/experiments"
	"github.com/eda-go/adifo/internal/fault"
	"github.com/eda-go/adifo/internal/fsim"
	"github.com/eda-go/adifo/internal/gen"
	"github.com/eda-go/adifo/internal/logic"
	"github.com/eda-go/adifo/internal/prng"
	"github.com/eda-go/adifo/internal/service"
	"github.com/eda-go/adifo/internal/service/client"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: adifo <command> [flags]

commands:
  stats    structural statistics of a circuit
  faults   list the collapsed stuck-at fault set
  adi      compute accidental detection indices
  order    print a fault order
  grade    fault-grade a circuit via the grading service

common flags:
  -circuit ref   embedded name (c17, s27, lion), suite name, or .bench path
  -exhaustive    use all 2^inputs vectors for U (inputs <= 20)
  -n, -seed      random vector count / seed for U

grade flags:
  -server url    adifod server to grade on (default: in-process)
  -mode m        nodrop, drop or ndetect
  -ndet k        drop threshold for ndetect mode
  -quiet         suppress per-block progress lines
`)
	os.Exit(2)
}

// options collects every flag; each verb reads the subset it needs.
type options struct {
	circuit    string
	exhaustive bool
	n          int
	seed       uint64
	order      string
	limit      int

	server string
	mode   string
	ndet   int
	quiet  bool
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var o options
	fs.StringVar(&o.circuit, "circuit", "c17", "circuit reference")
	fs.BoolVar(&o.exhaustive, "exhaustive", false, "use all 2^inputs vectors")
	fs.IntVar(&o.n, "n", experiments.MaxRandomVectors, "random vector budget for U")
	fs.Uint64Var(&o.seed, "seed", experiments.USeed, "random vector seed")
	fs.StringVar(&o.order, "order", "dynm", "fault order to print")
	fs.IntVar(&o.limit, "limit", 0, "print at most this many rows (0 = all)")
	fs.StringVar(&o.server, "server", "", "adifod server URL (empty = grade in-process)")
	fs.StringVar(&o.mode, "mode", "nodrop", "grading mode: nodrop, drop or ndetect")
	fs.IntVar(&o.ndet, "ndet", 0, "drop threshold for ndetect mode")
	fs.BoolVar(&o.quiet, "quiet", false, "suppress per-block progress lines")
	fs.Parse(os.Args[2:])

	if err := run(cmd, o); err != nil {
		fmt.Fprintln(os.Stderr, "adifo:", err)
		os.Exit(1)
	}
}

func run(cmd string, o options) error {
	if cmd == "grade" {
		return grade(o, os.Stdout)
	}
	c, err := cli.LoadCircuit(o.circuit)
	if err != nil {
		return err
	}
	switch cmd {
	case "stats":
		st := c.ComputeStats()
		fmt.Printf("circuit   %s\n", c.Name)
		fmt.Printf("inputs    %d\n", st.Inputs)
		fmt.Printf("outputs   %d\n", st.Outputs)
		fmt.Printf("gates     %d\n", st.Gates)
		fmt.Printf("levels    %d\n", st.Levels)
		fmt.Printf("lines     %d\n", st.Lines)
		fmt.Printf("max fanin %d, max fanout %d, fanout stems %d\n",
			st.MaxFanin, st.MaxFanout, st.FanoutStem)
		fl := fault.CollapsedUniverse(c)
		fmt.Printf("faults    %d collapsed (%d uncollapsed)\n", fl.Len(), fault.Universe(c).Len())
		return nil

	case "faults":
		fl := fault.CollapsedUniverse(c)
		for i, f := range fl.Faults {
			if o.limit > 0 && i >= o.limit {
				fmt.Printf("... (%d more)\n", fl.Len()-i)
				break
			}
			fmt.Printf("f%-4d %s\n", i, f.Name(c))
		}
		return nil

	case "adi", "order":
		fl := fault.CollapsedUniverse(c)
		u := vectorSet(c, fl, o.exhaustive, o.n, o.seed)
		ix := adi.Compute(fl, u)
		mn, mx := ix.MinMax()
		fmt.Printf("U %d vectors; |F_U| = %d of %d faults; ADImin=%d ADImax=%d ratio=%.2f\n",
			u.Len(), ix.NumDetected(), fl.Len(), mn, mx, ix.Ratio())
		if cmd == "adi" {
			for i, f := range fl.Faults {
				if o.limit > 0 && i >= o.limit {
					fmt.Printf("... (%d more)\n", fl.Len()-i)
					break
				}
				fmt.Printf("f%-4d ADI=%-5d |D(f)|=%-5d %s\n", i, ix.ADI[i], ix.Det[i].Count(), f.Name(c))
			}
			return nil
		}
		kind, err := cli.ParseOrder(o.order)
		if err != nil {
			return err
		}
		ord := ix.Order(kind)
		fmt.Printf("order %v:\n", kind)
		for pos, fi := range ord {
			if o.limit > 0 && pos >= o.limit {
				fmt.Printf("... (%d more)\n", len(ord)-pos)
				break
			}
			fmt.Printf("%4d: f%-4d ADI=%-5d %s\n", pos, fi, ix.ADI[fi], fl.Faults[fi].Name(c))
		}
		return nil
	}
	usage()
	return nil
}

// grade submits the circuit to a grading service — a running adifod
// when -server is set, otherwise one spun up in-process on a loopback
// listener so the exact same client/server path is exercised — streams
// per-block progress and prints the result summary.
func grade(o options, out *os.File) error {
	ctx := context.Background()

	base := o.server
	if base == "" {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		defer ln.Close()
		svc := service.New(service.Config{})
		go http.Serve(ln, svc.Handler())
		base = "http://" + ln.Addr().String()
	}
	cl := client.New(base, nil)

	spec, err := gradeSpec(o)
	if err != nil {
		return err
	}
	id, err := cl.Submit(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "job %s submitted to %s\n", id, base)

	st, err := cl.Stream(ctx, id, func(ev service.ProgressEvent) {
		if !o.quiet {
			fmt.Fprintf(out, "block %d/%d: %d vectors, %d detected, %d active\n",
				ev.Block+1, ev.Blocks, ev.VectorsUsed, ev.Detected, ev.Active)
		}
	})
	if err != nil {
		return err
	}
	if st.State != service.StateDone {
		return fmt.Errorf("job %s %s: %s", id, st.State, st.Error)
	}
	res, err := cl.Result(ctx, id)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "circuit     %s (fingerprint %s)\n", res.Circuit, res.Fingerprint)
	fmt.Fprintf(out, "mode        %s\n", res.Mode)
	fmt.Fprintf(out, "vectors     %d (%d simulated)\n", res.Vectors, res.VectorsUsed)
	fmt.Fprintf(out, "faults      %d, detected %d, coverage %.2f%%\n",
		res.Faults, res.Detected, 100*res.Coverage)
	for i, fr := range res.PerFault {
		if o.limit > 0 && i >= o.limit {
			fmt.Fprintf(out, "... (%d more)\n", len(res.PerFault)-i)
			break
		}
		fmt.Fprintf(out, "f%-4d det=%-5d first=%-5d %s\n", fr.F, fr.DetCount, fr.FirstDet, fr.Name)
	}
	return nil
}

// gradeSpec builds the job spec. Precedence matches cli.LoadCircuit:
// an embedded or suite name wins over a same-named local file, so
// `grade -circuit c17` always means the embedded benchmark. A
// non-name reference is read as a .bench file and shipped as inline
// netlist text (the server never touches the client's filesystem);
// anything else is passed through for the server to reject.
func gradeSpec(o options) (service.JobSpec, error) {
	spec := service.JobSpec{Mode: o.mode, N: o.ndet}
	if data, err := os.ReadFile(o.circuit); err == nil && !isNamedCircuit(o.circuit) {
		spec.Bench = string(data)
		spec.Name = o.circuit
	} else {
		spec.Circuit = o.circuit
	}
	if o.exhaustive {
		spec.Patterns.Exhaustive = true
	} else {
		spec.Patterns.Random = &service.RandomSpec{N: o.n, Seed: o.seed}
	}
	return spec, nil
}

// isNamedCircuit reports whether ref is an embedded benchmark or
// synthetic suite name (cheap: no circuit is built).
func isNamedCircuit(ref string) bool {
	if _, err := benchdata.Source(ref); err == nil {
		return true
	}
	_, ok := gen.SuiteByName(ref)
	return ok
}

func vectorSet(c interface{ NumInputs() int }, fl *fault.List, exhaustive bool, n int, seed uint64) *logic.PatternSet {
	if exhaustive {
		return logic.ExhaustivePatterns(c.NumInputs())
	}
	candidates := logic.RandomPatterns(c.NumInputs(), n, prng.New(seed))
	sizing := fsim.Run(fl, candidates, fsim.Options{Mode: fsim.Drop, StopAtCoverage: experiments.TargetCoverage})
	return candidates.Slice(sizing.VectorsUsed)
}
