// Package tgen drives test generation over an ordered fault list,
// reproducing the experimental flow of Section 4 of the paper:
//
//	for each fault f in the given order:
//	    if f was already detected (dropped), skip it;
//	    run PODEM for f;
//	    on success, fill the unspecified inputs of the cube, append
//	    the vector to the test set, fault-simulate it against all
//	    remaining faults, and drop every fault it detects;
//	    on redundancy, remove f from the target set;
//	    on abort, leave f alive (a later test may still catch it).
//
// No dynamic compaction heuristic is used; the only lever is the fault
// order, which is exactly the experimental design the paper needs to
// isolate the effect of the accidental detection index.
//
// The driver records the fault coverage curve n(i) (faults detected by
// the first i tests) and derives the AVE steepness metric of the
// paper's Table 7.
package tgen

import (
	"context"
	"fmt"
	"time"

	"github.com/eda-go/adifo/internal/atpg"
	"github.com/eda-go/adifo/internal/circuit"
	"github.com/eda-go/adifo/internal/fault"
	"github.com/eda-go/adifo/internal/fsim"
	"github.com/eda-go/adifo/internal/logic"
	"github.com/eda-go/adifo/internal/prng"
)

// Options configures one generation run.
type Options struct {
	// BacktrackLimit is passed to the PODEM generator (0 = default).
	BacktrackLimit int
	// FillSeed seeds the pseudo-random completion of unspecified
	// inputs. Runs with equal seeds and equal orders are bit-for-bit
	// reproducible.
	FillSeed uint64
	// Validate cross-checks every generated vector against the fault
	// simulator: the targeted fault must be among the faults the
	// vector drops. The check is cheap relative to generation and on
	// by default in the experiment harness.
	Validate bool
	// Progress, when non-nil, is called after every PODEM attempt
	// (successful, redundant or aborted; already-dropped targets are
	// skipped silently) with the run's state — the generation
	// analogue of the simulator's per-block progress callback. It is
	// called from the generating goroutine, never concurrently, and
	// must not retain its argument.
	Progress func(Progress)
}

// Progress is a per-target snapshot of a running generation.
type Progress struct {
	// Done counts the order positions consumed so far (1-based).
	// Because already-dropped targets are skipped without an event,
	// the last event of a run whose order ends in dropped faults has
	// Done < Targets; only the terminal job status is authoritative
	// for completion. Targets is the order length.
	Done    int
	Targets int
	// Tests is the number of vectors generated so far; Detected the
	// faults they detect; Active the faults neither detected nor
	// proven redundant yet.
	Tests    int
	Detected int
	Active   int
	// AtpgCalls and Backtracks are the effort counters so far.
	AtpgCalls  int
	Backtracks int
}

// Result collects everything one run produced.
type Result struct {
	List *fault.List

	// Order is the fault order that was used.
	Order []int

	// Tests is the generated test set, in generation order.
	Tests []logic.Vector

	// TargetOf[i] is the fault index the i-th test was generated for.
	TargetOf []int

	// Curve[i] is n(i+1): the number of faults detected by the first
	// i+1 tests. len(Curve) == len(Tests).
	Curve []int

	// Redundant and Aborted list the fault indices classified as
	// undetectable / abandoned by the ATPG.
	Redundant []int
	Aborted   []int

	// AtpgCalls counts PODEM invocations; Backtracks sums their
	// backtrack counts.
	AtpgCalls  int
	Backtracks int

	// Elapsed is the wall-clock generation time (ATPG + fault
	// simulation), the quantity normalized in the paper's Table 6.
	Elapsed time.Duration
}

// Detected returns the total number of faults detected by the test
// set.
func (r *Result) Detected() int {
	if len(r.Curve) == 0 {
		return 0
	}
	return r.Curve[len(r.Curve)-1]
}

// Coverage returns the fraction of all faults detected by the test
// set.
func (r *Result) Coverage() float64 {
	if r.List.Len() == 0 {
		return 0
	}
	return float64(r.Detected()) / float64(r.List.Len())
}

// AVE returns the expected number of tests applied until a faulty
// chip is detected (the paper's steepness metric):
//
//	AVE = Σ_i i · [n(i) − n(i−1)] / n(k)
//
// with tests numbered from 1. Lower is steeper. It returns 0 for an
// empty test set.
func (r *Result) AVE() float64 {
	return AVE(r.Curve)
}

// AVE computes the steepness metric from a cumulative coverage curve
// (curve[i] = faults detected by the first i+1 tests).
func AVE(curve []int) float64 {
	if len(curve) == 0 || curve[len(curve)-1] == 0 {
		return 0
	}
	sum := 0.0
	prev := 0
	for i, n := range curve {
		sum += float64(i+1) * float64(n-prev)
		prev = n
	}
	return sum / float64(curve[len(curve)-1])
}

// Generate runs the flow over fl in the given fault order. The order
// must be a permutation of [0, fl.Len()). It is GenerateContext
// without cancellation.
func Generate(fl *fault.List, order []int, opts Options) *Result {
	r, _ := GenerateContext(context.Background(), fl, order, opts)
	return r
}

// GenerateContext is Generate with cooperative cancellation: ctx is
// polled before every ATPG target, so a cancelled run stops within one
// fault's worth of work (one PODEM call plus one incremental fault
// simulation). On cancellation it returns the partial result — every
// test generated so far, with a consistent coverage curve — together
// with ctx.Err(); the error is nil on a completed run.
func GenerateContext(ctx context.Context, fl *fault.List, order []int, opts Options) (*Result, error) {
	if err := checkPermutation(order, fl.Len()); err != nil {
		panic(fmt.Sprintf("tgen: %v", err))
	}
	start := time.Now()

	gen := atpg.New(fl.Circuit, atpg.Options{BacktrackLimit: opts.BacktrackLimit})
	cc := circuit.Compile(fl.Circuit)
	inc := fsim.NewIncrementalCompiled(fl, cc)
	var check *fsim.Checker
	if opts.Validate {
		check = fsim.NewCheckerCompiled(cc)
	}
	fill := prng.New(opts.FillSeed)

	r := &Result{List: fl, Order: order}
	detected := 0

	for pos, fi := range order {
		if err := ctx.Err(); err != nil {
			r.Elapsed = time.Since(start)
			return r, err
		}
		if !inc.Alive(fi) {
			continue
		}
		f := fl.Faults[fi]
		res := gen.Generate(f)
		r.AtpgCalls++
		r.Backtracks += res.Backtracks
		switch res.Status {
		case atpg.Success:
			v := atpg.FillRandom(res.Cube, fill)
			if check != nil && !check.Detects(f, v) {
				panic(fmt.Sprintf("tgen: vector generated for %v does not detect it", f.Name(fl.Circuit)))
			}
			dropped := inc.SimulateVector(v)
			detected += len(dropped)
			r.Tests = append(r.Tests, v)
			r.TargetOf = append(r.TargetOf, fi)
			r.Curve = append(r.Curve, detected)
		case atpg.Redundant:
			inc.Drop(fi)
			r.Redundant = append(r.Redundant, fi)
		case atpg.Aborted:
			r.Aborted = append(r.Aborted, fi)
		}
		if opts.Progress != nil {
			opts.Progress(Progress{
				Done:       pos + 1,
				Targets:    len(order),
				Tests:      len(r.Tests),
				Detected:   detected,
				Active:     fl.Len() - detected - len(r.Redundant),
				AtpgCalls:  r.AtpgCalls,
				Backtracks: r.Backtracks,
			})
		}
	}
	r.Elapsed = time.Since(start)
	return r, nil
}

func checkPermutation(order []int, n int) error {
	if len(order) != n {
		return fmt.Errorf("order has %d entries, fault list has %d", len(order), n)
	}
	seen := make([]bool, n)
	for _, fi := range order {
		if fi < 0 || fi >= n || seen[fi] {
			return fmt.Errorf("order is not a permutation of [0,%d)", n)
		}
		seen[fi] = true
	}
	return nil
}

// CoveragePoints converts a cumulative curve into (tests %, coverage
// %) pairs normalized the way Figure 1 of the paper plots them: the
// x-axis is the test index as a percentage of the test set size, the
// y-axis is fault coverage relative to the total detected by the full
// set.
func CoveragePoints(curve []int) (xs, ys []float64) {
	if len(curve) == 0 {
		return nil, nil
	}
	total := float64(curve[len(curve)-1])
	k := float64(len(curve))
	for i, n := range curve {
		xs = append(xs, 100*float64(i+1)/k)
		ys = append(ys, 100*float64(n)/total)
	}
	return xs, ys
}
