package circuit

import "testing"

func buildFP(name string, outType GateType) *Circuit {
	b := NewBuilder(name)
	a := b.AddInput("a")
	bb := b.AddInput("b")
	g := b.AddGate("g", outType, a, bb)
	b.MarkOutput(g)
	c, err := b.Freeze()
	if err != nil {
		panic(err)
	}
	return c
}

func TestFingerprintStable(t *testing.T) {
	c1 := buildFP("fp", And)
	c2 := buildFP("fp", And)
	if c1.Fingerprint() != c2.Fingerprint() {
		t.Fatal("identical circuits have different fingerprints")
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	base := buildFP("fp", And)
	if buildFP("fp", Or).Fingerprint() == base.Fingerprint() {
		t.Fatal("gate-type change not reflected in fingerprint")
	}
	if buildFP("fp2", And).Fingerprint() == base.Fingerprint() {
		t.Fatal("name change not reflected in fingerprint")
	}

	// Extra gate changes the structure.
	b := NewBuilder("fp")
	a := b.AddInput("a")
	bb := b.AddInput("b")
	g := b.AddGate("g", And, a, bb)
	h := b.AddGate("h", Not, g)
	b.MarkOutput(h)
	c, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint() == base.Fingerprint() {
		t.Fatal("structural change not reflected in fingerprint")
	}
}
