package irr

import (
	"testing"

	"github.com/eda-go/adifo/internal/circuit"
)

// simp runs simplifyGate and returns (isConst, constVal, type,
// faninCount) for compact assertions.
func simp(t *testing.T, ty circuit.GateType, live []int, consts []int8) (bool, int8, circuit.GateType, int) {
	t.Helper()
	s := simplifyGate(ty, live, consts)
	return s.isConst, s.val, s.typ, len(s.fanin)
}

func TestSimplifyAndFamily(t *testing.T) {
	live := []int{7, 8}
	// Controlling constant dominates.
	if c, v, _, _ := simp(t, circuit.And, live, []int8{0}); !c || v != 0 {
		t.Fatal("AND with const 0 must fold to 0")
	}
	if c, v, _, _ := simp(t, circuit.Nand, live, []int8{0}); !c || v != 1 {
		t.Fatal("NAND with const 0 must fold to 1")
	}
	if c, v, _, _ := simp(t, circuit.Or, live, []int8{1}); !c || v != 1 {
		t.Fatal("OR with const 1 must fold to 1")
	}
	if c, v, _, _ := simp(t, circuit.Nor, live, []int8{1}); !c || v != 0 {
		t.Fatal("NOR with const 1 must fold to 0")
	}
	// Non-controlling constants are dropped.
	if c, _, ty, n := simp(t, circuit.And, live, []int8{1, 1}); c || ty != circuit.And || n != 2 {
		t.Fatal("AND with const-1 inputs must keep both live fanins")
	}
	// Single live input degenerates to BUF/NOT.
	if c, _, ty, n := simp(t, circuit.And, live[:1], []int8{1}); c || ty != circuit.Buf || n != 1 {
		t.Fatal("AND(x, 1) must become BUF(x)")
	}
	if c, _, ty, _ := simp(t, circuit.Nand, live[:1], []int8{1}); c || ty != circuit.Not {
		t.Fatal("NAND(x, 1) must become NOT(x)")
	}
	if c, _, ty, _ := simp(t, circuit.Nor, live[:1], []int8{0}); c || ty != circuit.Not {
		t.Fatal("NOR(x, 0) must become NOT(x)")
	}
	// All inputs constant: identity element result.
	if c, v, _, _ := simp(t, circuit.And, nil, []int8{1, 1}); !c || v != 1 {
		t.Fatal("AND(1,1) must fold to 1")
	}
	if c, v, _, _ := simp(t, circuit.Nor, nil, []int8{0, 0}); !c || v != 1 {
		t.Fatal("NOR(0,0) must fold to 1")
	}
}

func TestSimplifyXorFamily(t *testing.T) {
	live := []int{3, 4}
	// Constant zero inputs vanish.
	if c, _, ty, n := simp(t, circuit.Xor, live, []int8{0}); c || ty != circuit.Xor || n != 2 {
		t.Fatal("XOR with const 0 keeps live fanins")
	}
	// Constant one flips polarity.
	if c, _, ty, _ := simp(t, circuit.Xor, live, []int8{1}); c || ty != circuit.Xnor {
		t.Fatal("XOR with const 1 must become XNOR")
	}
	if c, _, ty, _ := simp(t, circuit.Xnor, live, []int8{1}); c || ty != circuit.Xor {
		t.Fatal("XNOR with const 1 must become XOR")
	}
	// Two constant ones cancel.
	if c, _, ty, _ := simp(t, circuit.Xor, live, []int8{1, 1}); c || ty != circuit.Xor {
		t.Fatal("XOR with two const-1 inputs keeps polarity")
	}
	// Single live input: BUF or NOT by parity.
	if c, _, ty, _ := simp(t, circuit.Xor, live[:1], []int8{0}); c || ty != circuit.Buf {
		t.Fatal("XOR(x, 0) must become BUF(x)")
	}
	if c, _, ty, _ := simp(t, circuit.Xor, live[:1], []int8{1}); c || ty != circuit.Not {
		t.Fatal("XOR(x, 1) must become NOT(x)")
	}
	// Fully constant.
	if c, v, _, _ := simp(t, circuit.Xnor, nil, []int8{1, 1}); !c || v != 1 {
		t.Fatal("XNOR(1,1) must fold to 1")
	}
}

func TestSimplifyUnary(t *testing.T) {
	if c, v, _, _ := simp(t, circuit.Not, nil, []int8{0}); !c || v != 1 {
		t.Fatal("NOT(0) must fold to 1")
	}
	if c, v, _, _ := simp(t, circuit.Buf, nil, []int8{1}); !c || v != 1 {
		t.Fatal("BUF(1) must fold to 1")
	}
	if c, _, ty, n := simp(t, circuit.Not, []int{5}, nil); c || ty != circuit.Not || n != 1 {
		t.Fatal("NOT of a live signal stays a NOT")
	}
}
