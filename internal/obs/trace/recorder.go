package trace

import (
	"encoding/json"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// RecorderOptions sizes a flight recorder; zero values select sensible
// defaults.
type RecorderOptions struct {
	// Capacity is the recency ring: how many recently completed traces
	// are retained regardless of duration (default 128).
	Capacity int
	// SlowestPerKind additionally pins the N slowest completed traces
	// per kind — the flight-recorder part: a slow job stays inspectable
	// long after the ring has cycled past it (default 8).
	SlowestPerKind int
	// MaxActive bounds traces that have spans recorded but no finished
	// root yet; beyond it the oldest active trace is evicted and its
	// spans counted as dropped (default 256).
	MaxActive int
	// MaxSpansPerTrace bounds one trace's span buffer; further spans
	// are dropped, not buffered (default 512).
	MaxSpansPerTrace int
}

func (o RecorderOptions) withDefaults() RecorderOptions {
	if o.Capacity <= 0 {
		o.Capacity = 128
	}
	if o.SlowestPerKind <= 0 {
		o.SlowestPerKind = 8
	}
	if o.MaxActive <= 0 {
		o.MaxActive = 256
	}
	if o.MaxSpansPerTrace <= 0 {
		o.MaxSpansPerTrace = 512
	}
	return o
}

// SpanData is one finished span as the recorder retains and serves it.
type SpanData struct {
	SpanID       string    `json:"span_id"`
	ParentSpanID string    `json:"parent_span_id,omitempty"`
	Name         string    `json:"name"`
	Start        time.Time `json:"start"`
	End          time.Time `json:"end"`
	DurationSecs float64   `json:"duration_seconds"`
	Attrs        []Attr    `json:"attrs,omitempty"`
	Events       []Event   `json:"events,omitempty"`
	Status       string    `json:"status,omitempty"`
	StatusMsg    string    `json:"status_message,omitempty"`
}

// attr returns the value of the span's first attribute named key, "".
func (s *SpanData) attr(key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// TraceData is one completed trace: its root span's identity plus
// every local span, sorted by start time.
type TraceData struct {
	TraceID      string      `json:"trace_id"`
	Root         string      `json:"root"`
	Kind         string      `json:"kind,omitempty"`
	Start        time.Time   `json:"start"`
	DurationSecs float64     `json:"duration_seconds"`
	Status       string      `json:"status,omitempty"`
	Spans        []*SpanData `json:"spans"`

	// Retention membership; a trace is dropped only once it is in
	// neither the recency ring nor a slowest-per-kind set.
	inRing, inSlow bool
}

// TraceSummary is the list view of one retained trace.
type TraceSummary struct {
	TraceID      string    `json:"trace_id"`
	Root         string    `json:"root"`
	Kind         string    `json:"kind,omitempty"`
	Start        time.Time `json:"start"`
	DurationSecs float64   `json:"duration_seconds"`
	Status       string    `json:"status,omitempty"`
	Spans        int       `json:"spans"`
}

// Stats is the recorder's counter snapshot, lifted by the service
// into its metric registry (the same dependency direction the journal
// uses).
type Stats struct {
	// SpansStarted counts Start calls under this recorder;
	// SpansFinished counts spans that reached a retained or active
	// trace buffer; SpansDropped counts spans lost to capacity bounds
	// (buffer full, active-table eviction, span after trace
	// completion).
	SpansStarted  uint64
	SpansFinished uint64
	SpansDropped  uint64
	// Traces is the completed-trace retention occupancy (ring plus
	// slowest-per-kind pins).
	Traces int
}

// activeTrace buffers finished spans of a trace whose root has not
// ended yet.
type activeTrace struct {
	spans []*SpanData
	seq   uint64 // insertion order for oldest-first eviction
}

// Recorder is the bounded in-process trace store: spans accumulate
// per trace while it runs, a Root span's End finalizes the trace, and
// completed traces are retained in a recency ring plus a
// slowest-N-per-kind set. All methods are safe for concurrent use.
type Recorder struct {
	opts RecorderOptions

	mu       sync.Mutex
	active   map[TraceID]*activeTrace
	seq      uint64
	ring     []*TraceData            // recency ring, oldest first
	slow     map[string][]*TraceData // kind -> slowest-first ascending by duration
	byID     map[string]*TraceData
	started  uint64
	finished uint64
	dropped  uint64
}

// NewRecorder returns a ready flight recorder.
func NewRecorder(opts RecorderOptions) *Recorder {
	return &Recorder{
		opts:   opts.withDefaults(),
		active: make(map[TraceID]*activeTrace),
		slow:   make(map[string][]*TraceData),
		byID:   make(map[string]*TraceData),
	}
}

// startSpan counts one Start under this recorder.
func (r *Recorder) startSpan() {
	r.mu.Lock()
	r.started++
	r.mu.Unlock()
}

// endSpan files one finished span under its trace; root finalizes the
// trace.
func (r *Recorder) endSpan(id TraceID, data *SpanData, root bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	at, ok := r.active[id]
	if !ok {
		if done := r.byID[id.String()]; done != nil {
			// The trace already completed; a straggler span has no
			// home.
			r.dropped++
			return
		}
		if len(r.active) >= r.opts.MaxActive {
			r.evictOldestActiveLocked()
		}
		at = &activeTrace{seq: r.seq}
		r.seq++
		r.active[id] = at
	}
	if !root && len(at.spans) >= r.opts.MaxSpansPerTrace {
		// The root span is always kept (it carries the trace's
		// identity); only its children are subject to the buffer bound.
		r.dropped++
		return
	}
	at.spans = append(at.spans, data)
	r.finished++
	if root {
		r.completeLocked(id, at, data)
	}
}

// evictOldestActiveLocked drops the oldest active trace wholesale —
// the bound that keeps abandoned traces (a job cancelled before its
// root span ever opened) from pinning memory forever.
func (r *Recorder) evictOldestActiveLocked() {
	var oldest TraceID
	var oldestSeq uint64
	first := true
	for id, at := range r.active {
		if first || at.seq < oldestSeq {
			oldest, oldestSeq, first = id, at.seq, false
		}
	}
	if !first {
		r.dropped += uint64(len(r.active[oldest].spans))
		delete(r.active, oldest)
	}
}

// completeLocked turns an active trace into a retained TraceData and
// settles retention.
func (r *Recorder) completeLocked(id TraceID, at *activeTrace, root *SpanData) {
	delete(r.active, id)
	spans := at.spans
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	td := &TraceData{
		TraceID:      id.String(),
		Root:         root.Name,
		Kind:         root.attr("kind"),
		Start:        root.Start,
		DurationSecs: root.DurationSecs,
		Status:       root.Status,
		Spans:        spans,
	}
	r.byID[td.TraceID] = td

	// Recency ring.
	td.inRing = true
	r.ring = append(r.ring, td)
	if len(r.ring) > r.opts.Capacity {
		old := r.ring[0]
		r.ring = r.ring[1:]
		old.inRing = false
		r.releaseLocked(old)
	}

	// Slowest-per-kind pins, ascending by duration so index 0 is the
	// first to lose its seat.
	kind := td.Kind
	if kind == "" {
		kind = td.Root
	}
	set := r.slow[kind]
	i := sort.Search(len(set), func(i int) bool { return set[i].DurationSecs >= td.DurationSecs })
	if len(set) < r.opts.SlowestPerKind {
		set = append(set, nil)
		copy(set[i+1:], set[i:])
		set[i] = td
		td.inSlow = true
	} else if i > 0 {
		evicted := set[0]
		copy(set, set[1:i])
		set[i-1] = td
		td.inSlow = true
		evicted.inSlow = false
		r.releaseLocked(evicted)
	}
	r.slow[kind] = set
}

// releaseLocked drops a trace that lost its last retention seat.
func (r *Recorder) releaseLocked(td *TraceData) {
	if !td.inRing && !td.inSlow {
		delete(r.byID, td.TraceID)
	}
}

// Stats returns the recorder's counters.
func (r *Recorder) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{
		SpansStarted:  r.started,
		SpansFinished: r.finished,
		SpansDropped:  r.dropped,
		Traces:        len(r.byID),
	}
}

// Traces lists the retained traces, most recently completed first.
func (r *Recorder) Traces() []TraceSummary {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := make(map[string]bool, len(r.byID))
	out := make([]TraceSummary, 0, len(r.byID))
	add := func(td *TraceData) {
		if seen[td.TraceID] {
			return
		}
		seen[td.TraceID] = true
		out = append(out, TraceSummary{
			TraceID:      td.TraceID,
			Root:         td.Root,
			Kind:         td.Kind,
			Start:        td.Start,
			DurationSecs: td.DurationSecs,
			Status:       td.Status,
			Spans:        len(td.Spans),
		})
	}
	for i := len(r.ring) - 1; i >= 0; i-- {
		add(r.ring[i])
	}
	// Slowest pins that already cycled out of the ring, slowest first.
	kinds := make([]string, 0, len(r.slow))
	for kind := range r.slow {
		kinds = append(kinds, kind)
	}
	sort.Strings(kinds)
	for _, kind := range kinds {
		set := r.slow[kind]
		for i := len(set) - 1; i >= 0; i-- {
			add(set[i])
		}
	}
	return out
}

// Trace returns one retained trace by its hex id.
func (r *Recorder) Trace(id string) (*TraceData, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	td, ok := r.byID[id]
	return td, ok
}

// SpanNode is one span of the single-trace tree view, with its
// children nested.
type SpanNode struct {
	*SpanData
	Children []*SpanNode `json:"children,omitempty"`
}

// Tree renders a completed trace as a span tree: spans nest under
// their parents; spans whose parent is remote (or unknown — dropped
// by a capacity bound) surface as additional roots.
func (td *TraceData) Tree() []*SpanNode {
	nodes := make(map[string]*SpanNode, len(td.Spans))
	for _, sp := range td.Spans {
		nodes[sp.SpanID] = &SpanNode{SpanData: sp}
	}
	var roots []*SpanNode
	for _, sp := range td.Spans {
		n := nodes[sp.SpanID]
		if p, ok := nodes[sp.ParentSpanID]; ok && sp.ParentSpanID != sp.SpanID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	return roots
}

// traceTree is the JSON shape of the single-trace endpoint.
type traceTree struct {
	TraceID      string      `json:"trace_id"`
	Root         string      `json:"root"`
	Kind         string      `json:"kind,omitempty"`
	Start        time.Time   `json:"start"`
	DurationSecs float64     `json:"duration_seconds"`
	Status       string      `json:"status,omitempty"`
	Spans        int         `json:"spans"`
	Tree         []*SpanNode `json:"tree"`
}

// Handler serves the recorder over HTTP, mountable at /debug/traces:
//
//	GET /debug/traces       JSON list of retained traces (most recent
//	                        first, slowest-per-kind pins appended)
//	GET /debug/traces/{id}  one trace as a span tree
//
// The handler derives the trace id from the path suffix itself, so it
// works behind any mux.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		path := req.URL.Path
		if i := strings.Index(path, "/debug/traces"); i >= 0 {
			path = path[i+len("/debug/traces"):]
		}
		id := strings.Trim(path, "/")
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if id == "" {
			enc.Encode(struct {
				Traces []TraceSummary `json:"traces"`
			}{r.Traces()})
			return
		}
		td, ok := r.Trace(id)
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			enc.Encode(map[string]string{"error": "trace not found: " + id})
			return
		}
		enc.Encode(traceTree{
			TraceID:      td.TraceID,
			Root:         td.Root,
			Kind:         td.Kind,
			Start:        td.Start,
			DurationSecs: td.DurationSecs,
			Status:       td.Status,
			Spans:        len(td.Spans),
			Tree:         td.Tree(),
		})
	})
}
