// Benchmarks regenerating the paper's evaluation: one benchmark per
// table and figure. Run them with
//
//	go test -bench=. -benchmem
//
// By default the generation-heavy experiments (Tables 5-7, Figure 1)
// run on the paper's twelve small and medium circuits, skipping
// irs5378 and irs13207; set ADIFO_SUITE=full to include them, or
// ADIFO_SUITE=small for a three-circuit smoke run. Table text is
// printed once per benchmark so the run doubles as a report.
package adifo_test

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/eda-go/adifo"
	"github.com/eda-go/adifo/internal/experiments"
	"github.com/eda-go/adifo/internal/gen"
	"github.com/eda-go/adifo/internal/obs"
	"github.com/eda-go/adifo/internal/service"
)

// benchSuite resolves the circuit suite from ADIFO_SUITE.
func benchSuite() []gen.SuiteCircuit {
	switch os.Getenv("ADIFO_SUITE") {
	case "full":
		return gen.PaperSuite()
	case "small":
		return gen.SmallSuite()
	default:
		full := gen.PaperSuite()
		return full[:len(full)-2] // all but irs5378 and irs13207
	}
}

var (
	runsOnce sync.Once
	runsVal  []*experiments.CircuitRuns
	runsErr  error
)

// sharedRuns executes the Table 5/6/7 generation runs once per test
// binary; the three table benchmarks are projections of the same
// runs, exactly as in the paper.
func sharedRuns() ([]*experiments.CircuitRuns, error) {
	runsOnce.Do(func() {
		runsVal, runsErr = experiments.RunSuite(benchSuite())
	})
	return runsVal, runsErr
}

// BenchmarkTable1 regenerates the worked example: ndet(u) for every
// input vector of the lion-style circuit.
func BenchmarkTable1(b *testing.B) {
	var text string
	for i := 0; i < b.N; i++ {
		var err error
		_, text, err = experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fmt.Println(text)
}

// BenchmarkTable4 regenerates the ADI spread table: vector-set size,
// ADImin, ADImax and their ratio per circuit.
func BenchmarkTable4(b *testing.B) {
	suite := benchSuite()
	var text string
	for i := 0; i < b.N; i++ {
		var err error
		_, text, err = experiments.Table4(suite)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fmt.Println(text)
}

// BenchmarkTable5 regenerates the test-set size comparison across the
// orig, dynm, 0dynm and incr0 fault orders.
func BenchmarkTable5(b *testing.B) {
	runs, err := sharedRuns()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var text string
	for i := 0; i < b.N; i++ {
		_, text = experiments.Table5(runs)
	}
	b.StopTimer()
	fmt.Println(text)
}

// BenchmarkTable6 regenerates the relative run-time table.
func BenchmarkTable6(b *testing.B) {
	runs, err := sharedRuns()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var text string
	for i := 0; i < b.N; i++ {
		_, text = experiments.Table6(runs)
	}
	b.StopTimer()
	fmt.Println(text)
}

// BenchmarkTable7 regenerates the coverage-curve steepness (AVE)
// table.
func BenchmarkTable7(b *testing.B) {
	runs, err := sharedRuns()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var text string
	for i := 0; i < b.N; i++ {
		_, text = experiments.Table7(runs)
	}
	b.StopTimer()
	fmt.Println(text)
}

// BenchmarkFigure1 regenerates the fault coverage curve plot.
func BenchmarkFigure1(b *testing.B) {
	var text string
	for i := 0; i < b.N; i++ {
		var err error
		_, text, err = experiments.Figure1(experiments.Figure1Circuit)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fmt.Println(text)
}

// BenchmarkGenerationRuns measures the end-to-end generation runs
// themselves (prepare + four orders per circuit); Tables 5-7 above
// only project its output.
func BenchmarkGenerationRuns(b *testing.B) {
	suite := gen.SmallSuite()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSuite(suite); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceThroughput measures the fault-grading service end
// to end (library-level, no HTTP): repeated no-drop grading jobs over
// a mix of circuits and pattern seeds, flowing through the registry
// caches and the sharded parallel simulator. After the first pass the
// circuit and good-machine caches are warm, which is exactly the
// serving regime the service exists for; the per-op time is the
// steady-state cost of one grading request.
func BenchmarkServiceThroughput(b *testing.B) {
	svc := service.New(service.Config{MaxConcurrentJobs: 4})
	specs := []service.JobSpec{
		{Circuit: "c17", Mode: "nodrop", Patterns: service.PatternSpec{Random: &service.RandomSpec{N: 512, Seed: 1}}},
		{Circuit: "s27", Mode: "nodrop", Patterns: service.PatternSpec{Random: &service.RandomSpec{N: 512, Seed: 2}}},
		{Circuit: "lion", Mode: "nodrop", Patterns: service.PatternSpec{Exhaustive: true}},
		{Circuit: "irs208", Mode: "nodrop", Patterns: service.PatternSpec{Random: &service.RandomSpec{N: 512, Seed: 3}}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ids := make([]string, len(specs))
		for k, spec := range specs {
			id, err := svc.Submit(spec)
			if err != nil {
				b.Fatal(err)
			}
			ids[k] = id
		}
		for _, id := range ids {
			// Block on the progress channel close instead of polling, so
			// the harness does not steal CPU from the simulation workers
			// it is measuring.
			if ch, cancel, ok := svc.Subscribe(id); ok {
				for range ch {
				}
				cancel()
			}
			st, ok := svc.Status(id)
			if !ok {
				b.Fatalf("job %s vanished", id)
			}
			if st.State != service.StateDone {
				b.Fatalf("job %s %s: %s", id, st.State, st.Error)
			}
		}
	}
	b.StopTimer()
	st := svc.Stats()
	b.ReportMetric(float64(len(specs)), "jobs/op")
	fmt.Printf("service caches after %d jobs: %d/%d circuit hits, %d/%d good hits\n",
		st.JobsDone,
		st.Registry.CircuitHits, st.Registry.CircuitHits+st.Registry.CircuitMisses,
		st.Registry.GoodHits, st.Registry.GoodHits+st.Registry.GoodMisses)
	svc.Close()
}

// BenchmarkClusterGrade measures the fault-sharded cluster path end
// to end: three in-process adifod backends behind real HTTP servers, a
// ClusterGrader fanning each job out through the shard work queue
// (ShardsPerBackend shards per backend), and the merged result
// streamed back. The delta against
// BenchmarkServiceThroughput is the price of the wire plus the merge —
// the simulation work per job is identical by construction
// (bit-identical results), so this benchmark tracks coordination
// overhead over time.
func BenchmarkClusterGrade(b *testing.B) {
	quiet := obs.Nop()
	urls := make([]string, 3)
	for i := range urls {
		g := adifo.NewLocalGrader(adifo.GraderConfig{MaxConcurrentJobs: 4, Logger: quiet})
		srv := httptest.NewServer(g.Handler())
		defer srv.Close()
		defer g.Close()
		urls[i] = srv.URL
	}
	cg, err := adifo.NewClusterGrader(urls, adifo.ClusterOptions{Logger: quiet})
	if err != nil {
		b.Fatal(err)
	}
	defer cg.Close()

	ctx := context.Background()
	specs := []adifo.JobSpec{
		{Circuit: "c17", Mode: "nodrop", Patterns: adifo.PatternSpec{Random: &adifo.RandomSpec{N: 512, Seed: 1}}},
		{Circuit: "s27", Mode: "nodrop", Patterns: adifo.PatternSpec{Random: &adifo.RandomSpec{N: 512, Seed: 2}}},
		{Circuit: "lion", Mode: "nodrop", Patterns: adifo.PatternSpec{Exhaustive: true}},
		{Circuit: "irs208", Mode: "nodrop", Patterns: adifo.PatternSpec{Random: &adifo.RandomSpec{N: 512, Seed: 3}}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ids := make([]string, len(specs))
		for k, spec := range specs {
			id, err := cg.Submit(ctx, spec)
			if err != nil {
				b.Fatal(err)
			}
			ids[k] = id
		}
		for _, id := range ids {
			st, err := cg.Stream(ctx, id, nil)
			if err != nil {
				b.Fatal(err)
			}
			if st.State != adifo.JobDone {
				b.Fatalf("cluster job %s %s: %s", id, st.State, st.Error)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(specs)), "jobs/op")
}

// BenchmarkClusterGradeStraggler is BenchmarkClusterGrade with one of
// the three backends turned into a straggler: a proxy throttles its
// progress streams to a trickle while probes, submits and cancels stay
// fast, so the backend looks healthy and only its shard work drags.
// The coordinator's work stealing and speculative duplicates are what
// keep this number near BenchmarkClusterGrade instead of near the
// straggler's own pace — the gap between the two benchmarks tracks the
// tail-latency machinery over time.
func BenchmarkClusterGradeStraggler(b *testing.B) {
	quiet := obs.Nop()
	urls := make([]string, 3)
	for i := range urls {
		g := adifo.NewLocalGrader(adifo.GraderConfig{MaxConcurrentJobs: 4, Logger: quiet})
		srv := httptest.NewServer(g.Handler())
		defer srv.Close()
		defer g.Close()
		urls[i] = srv.URL
	}
	// Wrap the last backend in a trickling stream proxy: every line
	// after the first waits 10ms, roughly 10x a healthy block cadence.
	backend := urls[2]
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		out, err := http.NewRequestWithContext(r.Context(), r.Method, backend+r.URL.Path, r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		out.Header = r.Header.Clone()
		resp, err := http.DefaultClient.Do(out)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		if !strings.HasSuffix(r.URL.Path, "/stream") || resp.StatusCode != http.StatusOK {
			io.Copy(w, resp.Body) //nolint:errcheck
			return
		}
		fl, _ := w.(http.Flusher)
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
		first := true
		for sc.Scan() {
			if !first {
				select {
				case <-time.After(10 * time.Millisecond):
				case <-r.Context().Done():
					return
				}
			}
			first = false
			w.Write(sc.Bytes())   //nolint:errcheck
			w.Write([]byte{'\n'}) //nolint:errcheck
			if fl != nil {
				fl.Flush()
			}
		}
	}))
	defer proxy.Close()
	urls[2] = proxy.URL

	cg, err := adifo.NewClusterGrader(urls, adifo.ClusterOptions{
		Logger:         quiet,
		StragglerAfter: 50 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cg.Close()

	ctx := context.Background()
	specs := []adifo.JobSpec{
		{Circuit: "c17", Mode: "nodrop", Patterns: adifo.PatternSpec{Random: &adifo.RandomSpec{N: 512, Seed: 1}}},
		{Circuit: "s27", Mode: "nodrop", Patterns: adifo.PatternSpec{Random: &adifo.RandomSpec{N: 512, Seed: 2}}},
		{Circuit: "lion", Mode: "nodrop", Patterns: adifo.PatternSpec{Exhaustive: true}},
		{Circuit: "irs208", Mode: "nodrop", Patterns: adifo.PatternSpec{Random: &adifo.RandomSpec{N: 512, Seed: 3}}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ids := make([]string, len(specs))
		for k, spec := range specs {
			id, err := cg.Submit(ctx, spec)
			if err != nil {
				b.Fatal(err)
			}
			ids[k] = id
		}
		for _, id := range ids {
			st, err := cg.Stream(ctx, id, nil)
			if err != nil {
				b.Fatal(err)
			}
			if st.State != adifo.JobDone {
				b.Fatalf("cluster job %s %s: %s", id, st.State, st.Error)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(specs)), "jobs/op")
}

// BenchmarkAblation runs the design-choice ablations of DESIGN.md:
// static vs dynamic orders, n-detection ADI estimation, and a reduced
// vector budget, on the small suite.
func BenchmarkAblation(b *testing.B) {
	var text string
	for i := 0; i < b.N; i++ {
		var err error
		_, text, err = experiments.Ablation(gen.SmallSuite())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fmt.Println(text)
}
