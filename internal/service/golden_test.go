package service

import (
	"bytes"
	"encoding/json"
	"flag"
	"github.com/eda-go/adifo/internal/obs"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// The golden files under testdata/golden pin the v1 wire contract
// byte for byte: canonical JSON for job specs, statuses, stream
// events, results and error envelopes. A wire change — renamed field,
// changed default, new required key — fails these tests loudly
// instead of silently breaking old clients. Regenerate deliberately
// with:
//
//	go test ./internal/service -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name)
}

// checkGolden compares got against the named golden file, rewriting
// the file under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := goldenPath(name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: wire bytes changed\n got: %s\nwant: %s", name, got, want)
	}
}

// marshalCanonical renders v the way the test suite pins it: indented
// JSON with a trailing newline, so fixtures are diffable.
func marshalCanonical(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(b, '\n')
}

// decodeStrict decodes data into v rejecting unknown fields, exactly
// like the submit handler.
func decodeStrict(t *testing.T, data []byte, v any) {
	t.Helper()
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		t.Fatalf("decoding: %v", err)
	}
}

// TestGoldenKindlessSpecGradesAsBefore is the backward-compatibility
// contract: a JobSpec written against the original grade-only wire —
// no kind field — must still decode, run as a grade job, and produce
// the exact result bytes pinned before the engine became multi-kind.
func TestGoldenKindlessSpecGradesAsBefore(t *testing.T) {
	specBytes, err := os.ReadFile(goldenPath("jobspec_kindless_v1.json"))
	if err != nil {
		t.Fatalf("missing golden spec: %v", err)
	}
	var spec JobSpec
	decodeStrict(t, specBytes, &spec)
	if NormalizeKind(spec.Kind) != KindGrade {
		t.Fatalf("kind-less spec normalized to %q, want grade", NormalizeKind(spec.Kind))
	}

	s := New(Config{Logger: obs.Nop(), SimWorkers: 4})
	defer s.Close()
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit(kind-less v1 spec): %v", err)
	}
	st := waitTerminal(t, s, id)
	if st.State != StateDone || st.Kind != KindGrade {
		t.Fatalf("job ended %q kind %q (%s)", st.State, st.Kind, st.Error)
	}
	res, err := s.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	// Timing is wall-clock and the trace id is random per run; the
	// fixture pins the deterministic payload. omitempty makes the
	// nil'd fields vanish, so the pre-timing bytes still match — the
	// additive-wire guarantee.
	res.Timing = nil
	res.TraceID = ""
	checkGolden(t, "jobresult_grade_v1.json", marshalCanonical(t, res))
}

// TestGoldenSpecShapes: the kind-carrying spec fixtures decode to
// exactly the expected structs and re-encode to the same bytes, so
// both directions of the wire are pinned.
func TestGoldenSpecShapes(t *testing.T) {
	cases := []struct {
		file string
		want JobSpec
	}{
		{
			"jobspec_atpg_v1.json",
			JobSpec{
				Kind:     KindAtpg,
				Circuit:  "c17",
				Patterns: PatternSpec{Random: &RandomSpec{N: 96, Seed: 7}},
				Order:    &OrderSpec{Kind: "dynm"},
				Gen:      &GenSpec{FillSeed: 99, BacktrackLimit: 10},
			},
		},
		{
			"jobspec_adi_order_v1.json",
			JobSpec{
				Kind:     KindADIOrder,
				Bench:    "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n",
				Name:     "toy",
				Patterns: PatternSpec{Exhaustive: true},
				Order:    &OrderSpec{Kind: "0dynm"},
			},
		},
		{
			"jobspec_grade_shard_v1.json",
			JobSpec{
				Kind:       KindGrade,
				Circuit:    "irs1238",
				Patterns:   PatternSpec{Vectors: []string{"0101", "1111"}},
				Mode:       "ndetect",
				N:          3,
				Workers:    2,
				FaultShard: &FaultShard{Index: 1, Count: 4},
			},
		},
	}
	for _, c := range cases {
		checkGolden(t, c.file, marshalCanonical(t, c.want))
		data, err := os.ReadFile(goldenPath(c.file))
		if err != nil {
			t.Fatalf("%s: %v", c.file, err)
		}
		var got JobSpec
		decodeStrict(t, data, &got)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: decode mismatch\n got %+v\nwant %+v", c.file, got, c.want)
		}
	}
}

// TestGoldenStatusAndStreamShapes pins the JobStatus and ProgressEvent
// encodings, including the multi-kind additions.
func TestGoldenStatusAndStreamShapes(t *testing.T) {
	checkGolden(t, "jobstatus_grade_v1.json", marshalCanonical(t, JobStatus{
		ID: "j1", Kind: KindGrade, State: StateRunning, Circuit: "c17",
		Faults: 22, Vectors: 128, Blocks: 2,
		BlocksDone: 1, VectorsUsed: 64, Detected: 20, Active: 2,
		FaultShard: &FaultShard{Index: 0, Count: 2},
	}))
	checkGolden(t, "jobstatus_atpg_v1.json", marshalCanonical(t, JobStatus{
		ID: "j2", Kind: KindAtpg, State: StateDone, Circuit: "c17",
		Faults: 22, Vectors: 96, Blocks: 2,
		BlocksDone: 2, VectorsUsed: 96, Detected: 22,
		Targets: 22, TargetsDone: 22, Tests: 7,
		TraceID: "4bf92f3577b34da6a3ce929d0e0e4736",
	}))
	checkGolden(t, "progress_event_grade_v1.json", marshalCanonical(t, ProgressEvent{
		JobID: "j1", Kind: KindGrade, State: StateRunning,
		Block: 0, Blocks: 2, VectorsUsed: 64, Detected: 20, Active: 2,
	}))
	checkGolden(t, "progress_event_atpg_v1.json", marshalCanonical(t, ProgressEvent{
		JobID: "j2", Kind: KindAtpg, State: StateRunning,
		Detected: 18, Active: 4, Target: 5, Targets: 22, Tests: 4,
	}))
}

// TestGoldenErrorEnvelopes drives the real HTTP handler into every
// error code and pins status line + envelope bytes. The config is
// fixed (SimWorkers) so messages carrying server bounds are
// deterministic.
func TestGoldenErrorEnvelopes(t *testing.T) {
	s := New(Config{Logger: obs.Nop(), SimWorkers: 4, Kinds: []string{KindGrade}})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	do := func(method, path, body string) (int, []byte) {
		t.Helper()
		req, err := http.NewRequest(method, srv.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, b
	}

	// A done job to provoke "finished" and a cancelled one for
	// "cancelled".
	doneID, err := s.Submit(JobSpec{Circuit: "c17", Mode: "drop",
		Patterns: PatternSpec{Random: &RandomSpec{N: 64, Seed: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, doneID)
	cancelledID, err := s.Submit(JobSpec{Circuit: "c17", Mode: "drop",
		Patterns: PatternSpec{Random: &RandomSpec{N: 64, Seed: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	s.Cancel(cancelledID)
	waitTerminal(t, s, cancelledID)
	// A failed job (unknown circuit name resolves at run time).
	failedID, err := s.Submit(JobSpec{Circuit: "no_such_circuit", Mode: "drop",
		Patterns: PatternSpec{Random: &RandomSpec{N: 64, Seed: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, failedID)
	// A queued-forever job for "not_done": fill both default slots
	// first... simpler: submit and query result immediately on a big
	// enough job that it cannot have finished.
	slowID, err := s.Submit(JobSpec{Circuit: "irs1238", Mode: "nodrop",
		Patterns: PatternSpec{Random: &RandomSpec{N: 1 << 14, Seed: 1}}})
	if err != nil {
		t.Fatal(err)
	}

	type envelope struct {
		Name   string          `json:"name"`
		Status int             `json:"status"`
		Body   json.RawMessage `json:"body"`
	}
	var envelopes []envelope
	record := func(name, method, path, body string) {
		code, raw := do(method, path, body)
		envelopes = append(envelopes, envelope{Name: name, Status: code, Body: json.RawMessage(bytes.TrimSpace(raw))})
	}
	record("invalid_request", http.MethodPost, "/v1/jobs", `{"circuit":"c17","patterns":{"exhaustive":true}}`)
	record("unsupported_kind_unknown", http.MethodPost, "/v1/jobs",
		`{"kind":"mine_bitcoin","circuit":"c17","mode":"drop","patterns":{"exhaustive":true}}`)
	record("unsupported_kind_disabled", http.MethodPost, "/v1/jobs",
		`{"kind":"atpg","circuit":"c17","patterns":{"exhaustive":true},"order":{"kind":"dynm"}}`)
	record("not_found", http.MethodGet, "/v1/jobs/j999", "")
	record("not_done", http.MethodGet, "/v1/jobs/"+slowID+"/result", "")
	record("cancelled", http.MethodGet, "/v1/jobs/"+cancelledID+"/result", "")
	record("finished", http.MethodDelete, "/v1/jobs/"+doneID, "")
	record("job_failed", http.MethodGet, "/v1/jobs/"+failedID+"/result", "")

	// The overloaded envelope needs a deterministically full queue: a
	// dedicated one-slot, one-queued-job service whose slot is pinned
	// by a running job, so the bound in the message is fixed.
	tight := New(Config{Logger: obs.Nop(), SimWorkers: 1, MaxConcurrentJobs: 1,
		MaxQueuedJobs: 1, Kinds: []string{KindGrade}})
	defer tight.Close()
	tightSrv := httptest.NewServer(tight.Handler())
	defer tightSrv.Close()
	runningID, err := tight.Submit(slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, tight, runningID, StateRunning)
	queuedID, err := tight.Submit(JobSpec{Circuit: "c17", Mode: "drop",
		Patterns: PatternSpec{Random: &RandomSpec{N: 64, Seed: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	{
		req, err := http.NewRequest(http.MethodPost, tightSrv.URL+"/v1/jobs",
			strings.NewReader(`{"circuit":"c17","mode":"drop","patterns":{"random":{"n":64,"seed":4}}}`))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if got := resp.Header.Get("Retry-After"); got != "1" {
			t.Errorf("overloaded Retry-After = %q, want \"1\"", got)
		}
		envelopes = append(envelopes, envelope{Name: "overloaded", Status: resp.StatusCode,
			Body: json.RawMessage(bytes.TrimSpace(b))})
	}
	tight.Cancel(queuedID)
	tight.Cancel(runningID)

	checkGolden(t, "error_envelopes_v1.json", marshalCanonical(t, envelopes))

	s.Cancel(slowID)
}
