// Package logic defines the value systems shared by the simulators and
// the test generator:
//
//   - two-valued bit-parallel words (uint64, 64 patterns per word) used
//     by the good-machine and fault simulators;
//   - the three-valued system {0, 1, X} used by PODEM for implications
//     on partially specified input cubes;
//   - the five-valued composite view (0, 1, X, D, DBar) derived from a
//     good/faulty pair of three-valued values, used to reason about
//     fault-effect propagation;
//   - pattern sets: packed collections of input vectors addressed as
//     (vector index, input index).
//
// Keeping these in one leaf package lets the simulator, the ATPG and
// the ADI machinery agree on encodings without import cycles.
package logic

import "fmt"

// WordBits is the number of test patterns processed in parallel by the
// bit-parallel simulators.
const WordBits = 64

// V3 is a three-valued logic value: zero, one, or unknown/unassigned.
type V3 uint8

// The three values of V3. X is deliberately the zero value so that a
// freshly allocated value slice reads as "everything unassigned".
const (
	X    V3 = iota // unknown / unassigned
	Zero           // logic 0
	One            // logic 1
)

// String returns "X", "0" or "1".
func (v V3) String() string {
	switch v {
	case Zero:
		return "0"
	case One:
		return "1"
	case X:
		return "X"
	}
	return fmt.Sprintf("V3(%d)", uint8(v))
}

// IsBinary reports whether v is fully specified (0 or 1).
func (v V3) IsBinary() bool { return v == Zero || v == One }

// Not returns the three-valued complement: ¬0=1, ¬1=0, ¬X=X.
func (v V3) Not() V3 {
	switch v {
	case Zero:
		return One
	case One:
		return Zero
	}
	return X
}

// FromBit converts a binary digit (0 or 1) to a V3.
func FromBit(b uint8) V3 {
	if b != 0 {
		return One
	}
	return Zero
}

// Bit converts a binary V3 to 0 or 1. It panics on X: callers must
// check IsBinary first, which keeps silent mis-encodings out of the
// simulators.
func (v V3) Bit() uint8 {
	switch v {
	case Zero:
		return 0
	case One:
		return 1
	}
	panic("logic: Bit called on X")
}

// And3 returns the three-valued AND of a and b. A controlling 0 on
// either side forces 0 even if the other side is X.
func And3(a, b V3) V3 {
	if a == Zero || b == Zero {
		return Zero
	}
	if a == One && b == One {
		return One
	}
	return X
}

// Or3 returns the three-valued OR of a and b. A controlling 1 on
// either side forces 1 even if the other side is X.
func Or3(a, b V3) V3 {
	if a == One || b == One {
		return One
	}
	if a == Zero && b == Zero {
		return Zero
	}
	return X
}

// Xor3 returns the three-valued XOR of a and b; any X operand makes
// the result X.
func Xor3(a, b V3) V3 {
	if !a.IsBinary() || !b.IsBinary() {
		return X
	}
	if a == b {
		return Zero
	}
	return One
}

// V5 is the composite five-valued view of a (good, faulty) pair of
// binary values in the D-calculus sense: D means good=1/faulty=0,
// DBar means good=0/faulty=1.
type V5 uint8

// The five composite values.
const (
	C0   V5 = iota // good 0, faulty 0
	C1             // good 1, faulty 1
	CX             // at least one side unknown
	D              // good 1, faulty 0
	DBar           // good 0, faulty 1
)

// String returns the conventional D-calculus spelling.
func (v V5) String() string {
	switch v {
	case C0:
		return "0"
	case C1:
		return "1"
	case CX:
		return "X"
	case D:
		return "D"
	case DBar:
		return "D'"
	}
	return fmt.Sprintf("V5(%d)", uint8(v))
}

// Compose builds the five-valued view from a good and a faulty
// three-valued value.
func Compose(good, faulty V3) V5 {
	if !good.IsBinary() || !faulty.IsBinary() {
		return CX
	}
	switch {
	case good == faulty && good == Zero:
		return C0
	case good == faulty:
		return C1
	case good == One:
		return D
	default:
		return DBar
	}
}

// IsFaultEffect reports whether v carries a fault effect (D or DBar).
func (v V5) IsFaultEffect() bool { return v == D || v == DBar }
