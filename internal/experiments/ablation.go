package experiments

import (
	"fmt"

	"github.com/eda-go/adifo/internal/adi"
	"github.com/eda-go/adifo/internal/gen"
	"github.com/eda-go/adifo/internal/report"
	"github.com/eda-go/adifo/internal/tgen"
)

// AblationRow is one (circuit, variant) measurement.
type AblationRow struct {
	Circuit string
	Variant string
	Tests   int
	AVE     float64
}

// AblationVariant names one ordering strategy under ablation.
type AblationVariant struct {
	Name string
	// Order produces the fault order to run given a prepared setup.
	Order func(setup *Setup) []int
}

// AblationVariants returns the design-choice ablations DESIGN.md
// calls out:
//
//   - static vs dynamic ordering (Fdecr/F0decr vs Fdynm/F0dynm) — the
//     paper keeps only the dynamic variants in its tables because
//     "Fdynm and F0dynm proved to be better" (Section 4); the ablation
//     quantifies that choice;
//   - n-detection ADI estimation (n=4) vs full no-drop simulation —
//     the cheaper estimator mentioned in Section 2;
//   - a 64-vector U vs the paper-sized (~90% coverage) U — how
//     sensitive the heuristic is to the vector budget.
func AblationVariants() []AblationVariant {
	return []AblationVariant{
		{Name: "orig", Order: func(s *Setup) []int { return s.Index.Order(adi.Orig) }},
		{Name: "decr", Order: func(s *Setup) []int { return s.Index.Order(adi.Decr) }},
		{Name: "0decr", Order: func(s *Setup) []int { return s.Index.Order(adi.Decr0) }},
		{Name: "dynm", Order: func(s *Setup) []int { return s.Index.Order(adi.Dynm) }},
		{Name: "0dynm", Order: func(s *Setup) []int { return s.Index.Order(adi.Dynm0) }},
		{Name: "dynm/ndet4", Order: func(s *Setup) []int {
			ix := adi.ComputeNDetect(s.Faults, s.U, 4)
			return ix.Order(adi.Dynm)
		}},
		{Name: "dynm/u64", Order: func(s *Setup) []int {
			small := s.U.Slice(min(64, s.U.Len()))
			ix := adi.Compute(s.Faults, small)
			return ix.Order(adi.Dynm)
		}},
	}
}

// Ablation runs every variant over the suite and reports test-set
// size and AVE per (circuit, variant).
func Ablation(suite []gen.SuiteCircuit) ([]AblationRow, string, error) {
	var rows []AblationRow
	for _, sc := range suite {
		setup, err := Prepare(sc)
		if err != nil {
			return nil, "", err
		}
		for _, v := range AblationVariants() {
			res := tgen.Generate(setup.Faults, v.Order(setup), tgen.Options{
				FillSeed: FillSeed,
				Validate: true,
			})
			rows = append(rows, AblationRow{
				Circuit: sc.Name,
				Variant: v.Name,
				Tests:   len(res.Tests),
				AVE:     res.AVE(),
			})
		}
	}
	return rows, FormatAblation(rows), nil
}

// FormatAblation renders the ablation as one table per metric with a
// column per variant.
func FormatAblation(rows []AblationRow) string {
	variants := AblationVariants()
	headers := append([]string{"circuit"}, variantNames(variants)...)

	sizes := report.NewTable("Ablation: test-set size by ordering variant", headers...)
	aves := report.NewTable("Ablation: AVE by ordering variant", headers...)

	byCircuit := map[string]map[string]AblationRow{}
	var order []string
	for _, r := range rows {
		m, ok := byCircuit[r.Circuit]
		if !ok {
			m = map[string]AblationRow{}
			byCircuit[r.Circuit] = m
			order = append(order, r.Circuit)
		}
		m[r.Variant] = r
	}
	for _, name := range order {
		m := byCircuit[name]
		sizeCells := []string{name}
		aveCells := []string{name}
		for _, v := range variants {
			r, ok := m[v.Name]
			if !ok {
				sizeCells = append(sizeCells, "-")
				aveCells = append(aveCells, "-")
				continue
			}
			sizeCells = append(sizeCells, fmt.Sprint(r.Tests))
			aveCells = append(aveCells, fmt.Sprintf("%.2f", r.AVE))
		}
		sizes.AddRowCells(sizeCells)
		aves.AddRowCells(aveCells)
	}
	return sizes.String() + "\n" + aves.String()
}

func variantNames(vs []AblationVariant) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.Name
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
