package service

import (
	"fmt"

	"github.com/eda-go/adifo/internal/cli"
)

// adiOrderKind computes the accidental detection index over the job's
// vector set U and returns one of the paper's six fault orders — the
// ordering stage of the pipeline as a standalone remote job, so a
// client can derive an order once on a server that has the (circuit,
// U) simulation cached and drive its own generation locally.
type adiOrderKind struct{}

// shardable: the dynamic orders decrement shared ndet counters as
// faults are placed, so an order cannot be derived per fault range and
// concatenated.
func (adiOrderKind) shardable() bool { return false }

func (adiOrderKind) validate(spec JobSpec) error {
	if err := validateOrderedSpec(spec); err != nil {
		return err
	}
	if spec.Gen != nil {
		return fmt.Errorf("gen spec applies only to atpg jobs")
	}
	return nil
}

func (adiOrderKind) run(s *Service, j *job) (any, error) {
	entry, ix, err := s.computeIndex(j)
	if err != nil {
		return nil, err
	}
	// Validated at submit.
	kind, _ := cli.ParseOrder(j.spec.Order.Kind)
	stopOrder := j.phase(PhaseOrder)
	perm := ix.Order(kind)
	mn, mx := ix.MinMax()
	stopOrder()

	out := &OrderResult{
		ID:          j.id,
		Kind:        KindADIOrder,
		Circuit:     entry.Circuit.Name,
		Fingerprint: fmt.Sprintf("%016x", entry.Fingerprint),
		Order:       kind.String(),
		Faults:      entry.Faults.Len(),
		Vectors:     ix.U.Len(),
		NumDetected: ix.NumDetected(),
		ADIMin:      mn,
		ADIMax:      mx,
		Ratio:       ix.Ratio(),
		Perm:        perm,
		ADI:         append([]int(nil), ix.ADI...),
		Ndet:        append([]int(nil), ix.Ndet...),
		Names:       make([]string, entry.Faults.Len()),
	}
	for fi, f := range entry.Faults.Faults {
		out.Names[fi] = f.Name(entry.Circuit)
	}

	j.mu.Lock()
	j.status.VectorsUsed = ix.U.Len()
	j.status.Detected = ix.NumDetected()
	j.mu.Unlock()
	return out, nil
}

// OrderResult is the outcome of an adi_order job: the requested fault
// order together with the index data it was derived from, so a client
// can both drive generation and reproduce the paper's Table 4 spread
// statistics without re-simulating.
type OrderResult struct {
	ID          string `json:"id"`
	Kind        string `json:"kind"`
	Circuit     string `json:"circuit"`
	Fingerprint string `json:"fingerprint"`
	// Order is the canonical label of the computed order.
	Order string `json:"order"`
	// Faults is the collapsed fault universe size; Vectors is |U|.
	Faults  int `json:"faults"`
	Vectors int `json:"vectors"`
	// NumDetected is |F_U|, the number of faults U detects.
	NumDetected int `json:"num_detected"`
	// ADIMin and ADIMax are the paper's ADImin/ADImax over detected
	// faults; Ratio is ADImax/ADImin (0 when undefined).
	ADIMin int     `json:"adi_min"`
	ADIMax int     `json:"adi_max"`
	Ratio  float64 `json:"ratio"`
	// Perm is the fault order: Perm[pos] is the collapsed fault index
	// placed at position pos. Always a permutation of [0, Faults).
	Perm []int `json:"perm"`
	// ADI[f] is the accidental detection index of fault f (0 for
	// faults U misses); Ndet[u] is the number of faults vector u
	// detects.
	ADI  []int `json:"adi"`
	Ndet []int `json:"ndet"`
	// Names[f] is the display name of collapsed fault f.
	Names []string `json:"names,omitempty"`
	// Timing is the job's wall-clock record, attached by the engine at
	// the terminal transition.
	Timing *Timing `json:"timing,omitempty"`
	// TraceID is the job's distributed-trace id, identical to the one
	// on the status. Additive to the v1 wire.
	TraceID string `json:"trace_id,omitempty"`
}
