package circuit

import (
	"strings"
	"testing"
)

// FuzzParseBench throws arbitrary netlist text at the .bench parser.
// The parser is the service's trust boundary — inline bench text
// arrives from the network — so it must never panic, and every
// netlist it accepts must behave like a well-formed circuit:
// deterministic fingerprint, consistent structure, and a render that
// parses back.
func FuzzParseBench(f *testing.F) {
	f.Add("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")
	f.Add("# comment\nINPUT(a)\nOUTPUT(q)\nq = NOT(a)\n")
	f.Add("INPUT(a)\nINPUT(b)\nOUTPUT(s)\ns = DFF(d)\nd = XOR(a, b)\n")
	f.Add("INPUT(x)\nOUTPUT(y)\ny = BUF(x)\n")
	f.Add("INPUT(a)\ny = NAND(a, a)\nOUTPUT(y)\n") // forward declaration order
	f.Add("OUTPUT(y)\ny = OR(a)\n")                // undefined signal: must error
	f.Add("y = AND(y)\n")                          // self-loop: must error
	f.Add("INPUT(a)\nINPUT(a)\n")                  // duplicate input
	f.Add("")

	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseBenchString("fuzz", src)
		if err != nil {
			return
		}
		if c == nil {
			t.Fatal("nil circuit with nil error")
		}
		// Fingerprinting and structural statistics must hold on
		// anything the parser accepts.
		if c.Fingerprint() != c.Fingerprint() {
			t.Fatal("fingerprint is not deterministic")
		}
		st := c.ComputeStats()
		if st.Inputs != c.NumInputs() || st.Gates < 0 || st.Levels < 0 {
			t.Fatalf("inconsistent stats %+v for %d inputs", st, c.NumInputs())
		}
		// An accepted netlist renders back to text the parser accepts
		// again, with identical structure — the invariant the service
		// relies on when echoing circuits between processes.
		c2, err := ParseBenchString("fuzz2", BenchString(c))
		if err != nil {
			t.Fatalf("re-parsing rendered netlist failed: %v\nrendered:\n%s", err, BenchString(c))
		}
		if c2.NumInputs() != c.NumInputs() || c2.NumOutputs() != c.NumOutputs() || c2.NumGates() != c.NumGates() {
			t.Fatalf("round trip changed structure: (%d,%d,%d) -> (%d,%d,%d)",
				c.NumInputs(), c.NumOutputs(), c.NumGates(),
				c2.NumInputs(), c2.NumOutputs(), c2.NumGates())
		}
	})
}

// FuzzParseBenchLines narrows the search to line-structured inputs so
// the fuzzer spends its budget inside the interesting states (gate
// declarations, DFF conversion) instead of on the comment stripper.
func FuzzParseBenchLines(f *testing.F) {
	f.Add("INPUT(a)", "OUTPUT(y)", "y = NOR(a, a)")
	f.Add("INPUT(p)", "q = DFF(p)", "OUTPUT(q)")
	f.Add("INPUT(a)", "INPUT(b)", "c = XNOR(a, b)")
	f.Fuzz(func(t *testing.T, l1, l2, l3 string) {
		src := strings.Join([]string{l1, l2, l3}, "\n")
		c, err := ParseBenchString("fuzz", src)
		if err == nil && c == nil {
			t.Fatal("nil circuit with nil error")
		}
	})
}
