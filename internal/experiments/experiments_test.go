package experiments

import (
	"strings"
	"testing"

	"github.com/eda-go/adifo/internal/adi"
	"github.com/eda-go/adifo/internal/gen"
)

func TestTable1(t *testing.T) {
	rows, text, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	// The lion worked example enumerates all 16 input vectors.
	if len(rows) != 16 {
		t.Fatalf("rows = %d, want 16", len(rows))
	}
	for i, r := range rows {
		if r.U != uint64(i) {
			t.Fatalf("row %d: vector label %d", i, r.U)
		}
		// Every vector of a 4-input circuit with ~36 faults detects
		// something, and never more than the whole fault set.
		if r.Ndet <= 0 || r.Ndet > 60 {
			t.Fatalf("row %d: ndet = %d out of plausible range", i, r.Ndet)
		}
	}
	if !strings.Contains(text, "Table 1") || !strings.Contains(text, "ndet(u)") {
		t.Fatalf("text missing headers:\n%s", text)
	}
	// The spread must be non-trivial for the example to make the
	// paper's point.
	min, max := rows[0].Ndet, rows[0].Ndet
	for _, r := range rows {
		if r.Ndet < min {
			min = r.Ndet
		}
		if r.Ndet > max {
			max = r.Ndet
		}
	}
	if max == min {
		t.Fatal("ndet is constant; worked example degenerate")
	}
}

func TestPrepareSmallCircuit(t *testing.T) {
	sc, _ := gen.SuiteByName("irs208")
	setup, err := Prepare(sc)
	if err != nil {
		t.Fatal(err)
	}
	if setup.C.NumInputs() != sc.Inputs {
		t.Fatalf("inputs = %d, want %d", setup.C.NumInputs(), sc.Inputs)
	}
	if setup.U.Len() == 0 || setup.U.Len() > MaxRandomVectors {
		t.Fatalf("|U| = %d", setup.U.Len())
	}
	// U must reach roughly the target coverage (block granularity
	// means it can overshoot, never badly undershoot).
	detected := setup.Index.NumDetected()
	if frac := float64(detected) / float64(setup.Faults.Len()); frac < TargetCoverage-0.02 {
		t.Fatalf("U detects only %.1f%% of faults", 100*frac)
	}
	mn, mx := setup.Index.MinMax()
	if mn < 1 || mx < mn {
		t.Fatalf("ADI spread %d..%d", mn, mx)
	}
}

func TestTable4SmallSuite(t *testing.T) {
	rows, text, err := Table4(gen.SmallSuite())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(gen.SmallSuite()) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Ratio < 1 {
			t.Errorf("%s: ratio %.2f < 1", r.Circuit, r.Ratio)
		}
		if r.ADIMin < 1 || r.ADIMax < r.ADIMin {
			t.Errorf("%s: ADI spread %d..%d", r.Circuit, r.ADIMin, r.ADIMax)
		}
		if r.Vectors <= 0 {
			t.Errorf("%s: no vectors", r.Circuit)
		}
	}
	if !strings.Contains(text, "Table 4") {
		t.Fatalf("text:\n%s", text)
	}
}

// TestTables567QualitativeShape is the headline reproduction check on
// the small suite: the orderings the paper reports must hold in
// aggregate — dynm and 0dynm beat orig on test-set size, incr0 loses,
// dynm gives the steepest average coverage curve.
func TestTables567QualitativeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("generation runs take a few seconds")
	}
	runs, err := RunSuite(gen.SmallSuite())
	if err != nil {
		t.Fatal(err)
	}

	rows5, text5 := Table5(runs)
	var sumOrig, sumDynm, sumDynm0, sumIncr0, nIncr0 int
	for _, r := range rows5 {
		sumOrig += r.Orig
		sumDynm += r.Dynm
		sumDynm0 += r.Dynm0
		if r.Incr0 >= 0 {
			sumIncr0 += r.Incr0
			nIncr0++
		}
	}
	if sumDynm0 >= sumOrig {
		t.Errorf("0dynm average (%d) not smaller than orig (%d)\n%s", sumDynm0, sumOrig, text5)
	}
	if sumDynm >= sumOrig {
		t.Errorf("dynm average (%d) not smaller than orig (%d)\n%s", sumDynm, sumOrig, text5)
	}
	if nIncr0 > 0 && sumIncr0 <= sumOrig {
		t.Errorf("incr0 average (%d) not larger than orig (%d)\n%s", sumIncr0, sumOrig, text5)
	}

	_, text6 := Table6(runs)
	if !strings.Contains(text6, "average") {
		t.Fatalf("table 6 missing average row:\n%s", text6)
	}

	rows7, text7 := Table7(runs)
	var sumD, sumZ float64
	for _, r := range rows7 {
		sumD += r.Dynm
		sumZ += r.Dynm0
	}
	n := float64(len(rows7))
	if sumD/n >= 1.0 {
		t.Errorf("dynm average steepness %.3f not below 1\n%s", sumD/n, text7)
	}
	if sumZ/n >= 1.05 {
		t.Errorf("0dynm average steepness %.3f far above 1\n%s", sumZ/n, text7)
	}
	// Full coverage sanity: every run detects every fault (suite
	// circuits are irredundant) up to aborted stragglers.
	for _, cr := range runs {
		for kind, r := range cr.Runs {
			missed := cr.Setup.Faults.Len() - r.Detected() - len(r.Redundant)
			if missed > len(r.Aborted)+2 {
				t.Errorf("%s/%v: %d faults unexplained", cr.Setup.Suite.Name, kind, missed)
			}
		}
	}
}

func TestFigure1SmallCircuit(t *testing.T) {
	if testing.Short() {
		t.Skip("generation runs take a few seconds")
	}
	curves, text, err := Figure1("irs298")
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []adi.OrderKind{adi.Orig, adi.Dynm, adi.Dynm0} {
		if len(curves[kind]) == 0 {
			t.Fatalf("curve %v empty", kind)
		}
	}
	for _, marker := range []string{"o - orig", "d - dynm", "z - 0dynm"} {
		if !strings.Contains(text, marker) {
			t.Fatalf("legend entry %q missing:\n%s", marker, text)
		}
	}
}

func TestFigure1UnknownCircuit(t *testing.T) {
	if _, _, err := Figure1("nope"); err == nil {
		t.Fatal("unknown circuit accepted")
	}
}

func TestFormattersHandleEmpty(t *testing.T) {
	if s := FormatTable5(nil); !strings.Contains(s, "circuit") {
		t.Fatal("empty table 5 must still render headers")
	}
	if s := FormatTable6(nil); !strings.Contains(s, "circuit") {
		t.Fatal("empty table 6 must still render headers")
	}
	if s := FormatTable7(nil); !strings.Contains(s, "circuit") {
		t.Fatal("empty table 7 must still render headers")
	}
	if s := FormatTable4(nil); !strings.Contains(s, "circuit") {
		t.Fatal("empty table 4 must still render headers")
	}
}

func TestTable5SkipIncr0Rendering(t *testing.T) {
	rows := []Table5Row{{Circuit: "x", Orig: 10, Dynm: 9, Dynm0: 8, Incr0: -1}}
	s := FormatTable5(rows)
	if !strings.Contains(s, "-") {
		t.Fatalf("omitted incr0 must render as '-':\n%s", s)
	}
}

func TestAblationSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("generation runs take a few seconds")
	}
	rows, text, err := Ablation(gen.SmallSuite()[:1])
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(AblationVariants()) {
		t.Fatalf("rows = %d, want one per variant", len(rows))
	}
	for _, r := range rows {
		if r.Tests <= 0 || r.AVE <= 0 {
			t.Errorf("%s/%s: degenerate measurement %+v", r.Circuit, r.Variant, r)
		}
	}
	if !strings.Contains(text, "Ablation") {
		t.Fatalf("text:\n%s", text)
	}
}
