// Package trace is the stack's dependency-free distributed-tracing
// core: Dapper-style spans with W3C Trace Context (traceparent)
// propagation, and a bounded in-process flight recorder that retains
// recent and slowest-per-kind traces for the /debug/traces endpoint.
//
// The package deliberately depends on nothing but the standard
// library, mirroring internal/obs/metrics and internal/journal: the
// serving stack stays `go build`-able from a bare toolchain, and the
// engine lifts the recorder's Stats() snapshot into its own metric
// registry instead of the tracer pulling in an exporter. Span
// ownership follows the same split the JobKind registry uses for
// Timing: the engine owns the per-job root span (one per lifecycle,
// ended exactly once at the terminal transition), the kinds own the
// phase child spans under it.
//
// Usage:
//
//	ctx, span := trace.Start(ctx, "job.grade", trace.Root())
//	span.SetAttr("kind", "grade")
//	defer span.End()
//
// Start inherits the parent from the context — a local *Span, or a
// remote SpanContext extracted from a traceparent header — and the
// Recorder installed with WithRecorder. Ending a span started with
// the Root option finalizes its trace in the recorder.
package trace

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one distributed trace: 16 bytes, rendered as 32
// lowercase hex digits on the wire. The zero value is invalid.
type TraceID [16]byte

// IsValid reports whether the id is non-zero (the W3C contract: an
// all-zero trace-id is forbidden).
func (t TraceID) IsValid() bool { return t != TraceID{} }

// String renders the id in wire form (32 lowercase hex digits).
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID identifies one span within a trace: 8 bytes, 16 lowercase
// hex digits on the wire. The zero value is invalid.
type SpanID [8]byte

// IsValid reports whether the id is non-zero.
func (s SpanID) IsValid() bool { return s != SpanID{} }

// String renders the id in wire form (16 lowercase hex digits).
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// FlagSampled is the traceparent sampled flag bit.
const FlagSampled = 0x01

// SpanContext is the propagated identity of a span: what crosses
// process boundaries in the traceparent header.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Flags   byte
}

// IsValid reports whether the context carries a usable trace id. The
// span id may be zero on contexts that name a trace without a parent
// span (a pre-minted trace id for a queued job).
func (sc SpanContext) IsValid() bool { return sc.TraceID.IsValid() }

// Sampled reports the traceparent sampled flag.
func (sc SpanContext) Sampled() bool { return sc.Flags&FlagSampled != 0 }

// idSource fills new trace and span ids. crypto/rand never fails on
// the supported platforms; on the broken ones a monotonic counter
// keeps ids unique within the process, which is all the in-process
// recorder needs.
var idFallback atomic.Uint64

func randomBytes(b []byte) {
	if _, err := crand.Read(b); err != nil {
		n := idFallback.Add(1)
		for i := range b {
			b[i] = 0
		}
		binary.BigEndian.PutUint64(b[len(b)-8:], n)
	}
}

// NewTraceID mints a random trace id.
func NewTraceID() TraceID {
	var t TraceID
	for !t.IsValid() {
		randomBytes(t[:])
	}
	return t
}

// NewSpanID mints a random span id.
func NewSpanID() SpanID {
	var s SpanID
	for !s.IsValid() {
		randomBytes(s[:])
	}
	return s
}

// Attr is one key-value annotation on a span. Values are strings:
// the recorder serves JSON to humans and grep, not a typed exporter.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Event is one timestamped point annotation on a span.
type Event struct {
	Name string    `json:"name"`
	Time time.Time `json:"time"`
}

// Span status codes. Unset means the span ended without an explicit
// verdict.
const (
	StatusOK    = "ok"
	StatusError = "error"
)

// Span is one timed operation of a trace. A nil *Span is a valid
// no-op receiver for every method, so callers never guard their
// instrumentation. Spans are safe for concurrent use.
type Span struct {
	rec    *Recorder
	sc     SpanContext
	parent SpanID // zero for local roots
	name   string
	root   bool // ending this span finalizes the trace in the recorder
	start  time.Time

	mu        sync.Mutex
	attrs     []Attr
	events    []Event
	status    string
	statusMsg string
	ended     bool
}

// Context returns the span's propagated identity.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// SetAttr annotates the span with a key-value pair.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	}
	s.mu.Unlock()
}

// SetAttrInt is SetAttr for integer values.
func (s *Span) SetAttrInt(key string, value int) {
	s.SetAttr(key, fmt.Sprintf("%d", value))
}

// AddEvent records a timestamped point annotation.
func (s *Span) AddEvent(name string) {
	if s == nil {
		return
	}
	now := time.Now()
	s.mu.Lock()
	if !s.ended {
		s.events = append(s.events, Event{Name: name, Time: now})
	}
	s.mu.Unlock()
}

// SetStatus records the span's verdict (StatusOK or StatusError) and
// an optional message. The last call before End wins.
func (s *Span) SetStatus(code, msg string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.status, s.statusMsg = code, msg
	}
	s.mu.Unlock()
}

// End stops the span's clock and hands it to the recorder. Idempotent:
// only the first call records. Ending a Root span finalizes the trace.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	data := &SpanData{
		SpanID:       s.sc.SpanID.String(),
		Name:         s.name,
		Start:        s.start,
		End:          now,
		DurationSecs: now.Sub(s.start).Seconds(),
		Attrs:        s.attrs,
		Events:       s.events,
		Status:       s.status,
		StatusMsg:    s.statusMsg,
	}
	if s.parent.IsValid() {
		data.ParentSpanID = s.parent.String()
	}
	s.mu.Unlock()
	if s.rec != nil {
		s.rec.endSpan(s.sc.TraceID, data, s.root)
	}
}

// Context keys. Unexported types keep the namespace private to the
// package.
type ctxKey int

const (
	spanKey ctxKey = iota
	remoteKey
	recorderKey
)

// WithRecorder installs rec as the context's span recorder; Start
// registers every span it creates under that context with rec.
func WithRecorder(ctx context.Context, rec *Recorder) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, recorderKey, rec)
}

// RecorderFrom returns the recorder installed with WithRecorder, or
// nil.
func RecorderFrom(ctx context.Context) *Recorder {
	if ctx == nil {
		return nil
	}
	rec, _ := ctx.Value(recorderKey).(*Recorder)
	return rec
}

// ContextWithRemote installs a remote parent (a SpanContext extracted
// from an incoming traceparent header, or a pre-minted trace id) on
// the context. The next Start under it joins that trace.
func ContextWithRemote(ctx context.Context, sc SpanContext) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, remoteKey, sc)
}

// ContextWithSpan installs an existing local span as the context's
// current span, so Starts and outbound calls under it become its
// children.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, spanKey, s)
}

// SpanFromContext returns the context's current local span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// SpanContextFromContext returns the propagated identity visible on
// the context: the current local span's, or the remote parent's, or
// the zero SpanContext.
func SpanContextFromContext(ctx context.Context) SpanContext {
	if ctx == nil {
		return SpanContext{}
	}
	if s := SpanFromContext(ctx); s != nil {
		return s.Context()
	}
	sc, _ := ctx.Value(remoteKey).(SpanContext)
	return sc
}

// Option configures one Start call.
type Option func(*Span)

// Root marks the span as its trace's local root: when it ends, the
// recorder finalizes the trace and moves it into retention. Exactly
// one per trace per process — the engine's per-job span, the cluster
// coordinator's per-job span.
func Root() Option { return func(s *Span) { s.root = true } }

// Start begins a span named name under ctx and returns a derived
// context carrying it. The parent is the context's current local span
// when there is one, else the remote SpanContext installed with
// ContextWithRemote (joining the propagated trace), else a fresh
// trace. The recorder is inherited from the parent span or from
// WithRecorder; without one the span still carries valid ids (so
// propagation and log correlation work) but records nothing.
func Start(ctx context.Context, name string, opts ...Option) (context.Context, *Span) {
	if ctx == nil {
		ctx = context.Background()
	}
	s := &Span{name: name, start: time.Now()}
	if parent := SpanFromContext(ctx); parent != nil {
		s.sc = SpanContext{TraceID: parent.sc.TraceID, Flags: parent.sc.Flags}
		s.parent = parent.sc.SpanID
		s.rec = parent.rec
	} else if remote, ok := ctx.Value(remoteKey).(SpanContext); ok && remote.IsValid() {
		s.sc = SpanContext{TraceID: remote.TraceID, Flags: remote.Flags}
		s.parent = remote.SpanID
	} else {
		s.sc = SpanContext{TraceID: NewTraceID(), Flags: FlagSampled}
	}
	s.sc.SpanID = NewSpanID()
	if s.rec == nil {
		s.rec = RecorderFrom(ctx)
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.rec != nil {
		s.rec.startSpan()
	}
	return context.WithValue(ctx, spanKey, s), s
}

// Traceparent returns the W3C traceparent header value for the span
// context visible on ctx, or "" when there is none — what an outbound
// HTTP call injects.
func Traceparent(ctx context.Context) string {
	sc := SpanContextFromContext(ctx)
	if !sc.IsValid() || !sc.SpanID.IsValid() {
		// A trace id without a span id (a pre-minted trace on a queued
		// job) names a trace but is not a legal W3C parent.
		return ""
	}
	return sc.Traceparent()
}
