package sim

import (
	"testing"

	"github.com/eda-go/adifo/internal/circuit"
	"github.com/eda-go/adifo/internal/logic"
	"github.com/eda-go/adifo/internal/prng"
)

func buildMux(t *testing.T) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder("mux")
	a := b.AddInput("a")
	bb := b.AddInput("b")
	s := b.AddInput("s")
	ns := b.AddGate("ns", circuit.Not, s)
	t0 := b.AddGate("t0", circuit.And, a, ns)
	t1 := b.AddGate("t1", circuit.And, bb, s)
	y := b.AddGate("y", circuit.Or, t0, t1)
	b.MarkOutput(y)
	c, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMuxTruthTable(t *testing.T) {
	c := buildMux(t)
	s := New(c)
	for a := uint8(0); a <= 1; a++ {
		for b := uint8(0); b <= 1; b++ {
			for sel := uint8(0); sel <= 1; sel++ {
				out := s.SimulateVector(logic.Vector{a, b, sel})
				want := a
				if sel == 1 {
					want = b
				}
				if out[0] != want {
					t.Fatalf("mux(%d,%d,%d) = %d, want %d", a, b, sel, out[0], want)
				}
			}
		}
	}
}

// naiveEval recomputes one gate value recursively per pattern; it is
// the reference against which the word-parallel simulator is checked.
func naiveEval(c *circuit.Circuit, v logic.Vector, g int, memo map[int]uint8) uint8 {
	if val, ok := memo[g]; ok {
		return val
	}
	gate := c.Gates[g]
	var out uint8
	if gate.Type == circuit.PI {
		out = v[c.InputIndex[g]]
	} else {
		in := make([]uint64, len(gate.Fanin))
		for i, f := range gate.Fanin {
			in[i] = uint64(naiveEval(c, v, f, memo))
		}
		out = uint8(circuit.EvalWord(gate.Type, in) & 1)
	}
	memo[g] = out
	return out
}

func TestBlockSimMatchesNaive(t *testing.T) {
	c := buildMux(t)
	ps := logic.RandomPatterns(c.NumInputs(), 200, prng.New(11))
	s := New(c)
	for block := 0; block < ps.Blocks(); block++ {
		s.SimulateBlock(ps, block)
		mask := ps.BlockMask(block)
		for bit := 0; bit < logic.WordBits; bit++ {
			if mask>>uint(bit)&1 == 0 {
				continue
			}
			v := ps.Get(block*logic.WordBits + bit)
			memo := map[int]uint8{}
			for gi := range c.Gates {
				want := naiveEval(c, v, gi, memo)
				got := uint8(s.Value(gi) >> uint(bit) & 1)
				if got != want {
					t.Fatalf("block %d bit %d gate %d: got %d want %d", block, bit, gi, got, want)
				}
			}
		}
	}
}

func TestSimulateWords(t *testing.T) {
	c := buildMux(t)
	s := New(c)
	// a=all ones, b=all zeros, sel alternating.
	s.SimulateWords([]uint64{^uint64(0), 0, 0xAAAAAAAAAAAAAAAA})
	// With sel=0 -> y=a=1; sel=1 -> y=b=0. So y = ^sel pattern.
	want := ^uint64(0xAAAAAAAAAAAAAAAA)
	if got := s.OutputWords()[0]; got != want {
		t.Fatalf("y = %x, want %x", got, want)
	}
}

func TestEvalConvenience(t *testing.T) {
	c := buildMux(t)
	out := Eval(c, logic.Vector{1, 0, 0})
	if out[0] != 1 {
		t.Fatalf("Eval = %v", out)
	}
}

func TestSimulatorPanicsOnWidthMismatch(t *testing.T) {
	c := buildMux(t)
	s := New(c)
	for _, fn := range []func(){
		func() { s.SimulateVector(logic.Vector{0, 1}) },
		func() { s.SimulateWords([]uint64{0}) },
		func() { s.SimulateBlock(logic.NewPatternSet(1), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on width mismatch")
				}
			}()
			fn()
		}()
	}
}

func TestXorTreeParity(t *testing.T) {
	b := circuit.NewBuilder("parity")
	var ins []int
	for i := 0; i < 5; i++ {
		ins = append(ins, b.AddInput(string(rune('a'+i))))
	}
	x1 := b.AddGate("x1", circuit.Xor, ins[0], ins[1])
	x2 := b.AddGate("x2", circuit.Xor, x1, ins[2])
	x3 := b.AddGate("x3", circuit.Xor, x2, ins[3])
	x4 := b.AddGate("x4", circuit.Xor, x3, ins[4])
	b.MarkOutput(x4)
	c, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	s := New(c)
	for pat := 0; pat < 32; pat++ {
		v := logic.VectorFromDecimal(uint64(pat), 5)
		parity := uint8(0)
		for _, bit := range v {
			parity ^= bit
		}
		if got := s.SimulateVector(v)[0]; got != parity {
			t.Fatalf("parity(%05b) = %d, want %d", pat, got, parity)
		}
	}
}

func BenchmarkSimulateBlock(b *testing.B) {
	bl := circuit.NewBuilder("chain")
	prev := bl.AddInput("in")
	x := bl.AddInput("x")
	for i := 0; i < 1000; i++ {
		prev = bl.AddGate(benchName(i), circuit.Nand, prev, x)
	}
	bl.MarkOutput(prev)
	c, err := bl.Freeze()
	if err != nil {
		b.Fatal(err)
	}
	ps := logic.RandomPatterns(2, 64, prng.New(1))
	s := New(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SimulateBlock(ps, 0)
	}
}

func benchName(i int) string {
	return "g" + string(rune('0'+i/100%10)) + string(rune('0'+i/10%10)) + string(rune('0'+i%10))
}
