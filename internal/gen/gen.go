// Package gen generates deterministic pseudo-random combinational
// circuits that stand in for the irredundant ISCAS-89/ITC-99
// combinational cores used in the paper's evaluation.
//
// # Why synthetic circuits
//
// The paper evaluates on the combinational logic of named benchmark
// netlists that are not redistributable here. The ADI heuristic,
// however, depends only on generic structural statistics: fanout
// driven clustering of accidental detections, a spread of easy and
// hard faults, and random-pattern coverage around 90% for a modest
// vector budget. The generator below produces DAGs tuned to land in
// those regimes; the suite in suite.go mirrors the paper's circuit
// list (same primary-input counts, gate counts scaled to the
// benchmark's name). Every circuit is a pure function of its seed, so
// all experiments are reproducible bit-for-bit.
//
// # Construction
//
// The generator runs a FIFO combine process. A pool of live signals
// starts as the primary inputs; each new gate consumes signals drawn
// from a small window at the front of the pool (oldest first, which
// yields balanced, shallow logic like technology-mapped netlists
// rather than degenerate chains) and appends its output to the back.
// Fanout beyond one is introduced in two controlled ways: a fresh
// gate output is occasionally enqueued twice, and when the pool runs
// low an already-consumed signal is recycled. Keeping reconvergence
// moderate matters: reconvergent fanout is the source of structural
// redundancy, and the paper's benchmarks are explicitly irredundant.
// Residual redundancy is removed afterwards by package irr.
//
// Signals left in the pool when the gate budget is exhausted, plus a
// configurable fraction of random internal taps, become the primary
// outputs — the taps model the pseudo-outputs that scan flip-flops
// contribute in the real full-scan cores.
package gen

import (
	"fmt"

	"github.com/eda-go/adifo/internal/circuit"
	"github.com/eda-go/adifo/internal/prng"
)

// Config parametrizes one synthetic circuit.
type Config struct {
	// Name labels the circuit.
	Name string
	// Inputs is the number of primary inputs.
	Inputs int
	// Gates is the number of logic gates to emit.
	Gates int
	// Seed drives every random choice.
	Seed uint64

	// XorFrac is the probability of an XOR/XNOR gate (default 0.05).
	XorFrac float64
	// InvFrac is the probability of a NOT/BUFF gate (default 0.10).
	InvFrac float64
	// WideFrac is the probability that a 2-input gate is widened to
	// 3 or 4 inputs (default 0.15).
	WideFrac float64
	// DupFrac is the probability that a gate output is enqueued twice
	// (immediate fanout of 2; default 0.20).
	DupFrac float64
	// ObserveFrac is the probability that an internal gate is tapped
	// as an additional primary output (default 0.10). Real full-scan
	// cores observe every flip-flop input as a pseudo-PO, which makes
	// them far more observable than a DAG whose only outputs are its
	// sinks; the taps model that.
	ObserveFrac float64
	// GuardFrac is the probability that a region is gated by a guard:
	// a wide AND tree over 5-9 signals whose output is 1 with
	// probability ~2^-w. Gates in a guarded region take the guard as
	// an occasional extra fanin, which makes their faults
	// random-resistant — the hard-to-detect tail that real decoder
	// and comparator logic produces and that the ndet(u) spread
	// behind the ADI feeds on (default 0.5).
	GuardFrac float64
	// GuardGateFrac is the probability that a gate inside a guarded
	// region consumes the guard signal (default 0.35).
	GuardGateFrac float64
}

func (c Config) withDefaults() Config {
	if c.XorFrac == 0 {
		c.XorFrac = 0.12
	}
	if c.InvFrac == 0 {
		c.InvFrac = 0.10
	}
	if c.WideFrac == 0 {
		c.WideFrac = 0.25
	}
	if c.DupFrac == 0 {
		c.DupFrac = 0.15
	}
	if c.ObserveFrac == 0 {
		c.ObserveFrac = 0.02
	}
	if c.GuardFrac == 0 {
		c.GuardFrac = 0.3
	}
	if c.GuardGateFrac == 0 {
		c.GuardGateFrac = 0.35
	}
	return c
}

// frontWindow is the number of pool entries at the front among which
// fanins are drawn. A small window keeps consumption near-FIFO
// (balanced logic) while still decorrelating siblings.
const frontWindow = 16

// minPool returns the pool occupancy floor for a configuration. The
// floor is the effective width of the circuit: with a pool of P live
// signals, depth grows roughly as gates/P, so tying P to the gate
// count keeps the logic depth in the 15-40 range of the real
// benchmarks instead of growing linearly with size.
func minPool(cfg Config) int {
	p := cfg.Gates / 16
	if p < cfg.Inputs {
		p = cfg.Inputs
	}
	if p < 2*frontWindow {
		p = 2 * frontWindow
	}
	return p
}

// Generate builds the circuit described by cfg. It panics on
// structurally impossible configurations (fewer than 2 inputs or 1
// gate) and never fails otherwise.
func Generate(cfg Config) *circuit.Circuit {
	cfg = cfg.withDefaults()
	if cfg.Inputs < 2 || cfg.Gates < 1 {
		panic(fmt.Sprintf("gen: degenerate config %+v", cfg))
	}
	src := prng.New(cfg.Seed)
	b := circuit.NewBuilder(cfg.Name)

	all := make([]int, 0, cfg.Inputs+cfg.Gates)
	for i := 0; i < cfg.Inputs; i++ {
		all = append(all, b.AddInput(fmt.Sprintf("i%d", i)))
	}
	pool := append([]int(nil), all...)
	src.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })

	// draw removes and returns one signal from the front window,
	// avoiding the given ids; when the pool is empty it recycles an
	// old signal (re-use = extra fanout). Recycling prefers primary
	// inputs and early gates: reconverging on shallow, weakly
	// correlated signals adds realistic fanout without the deep
	// reconvergent loops that breed structural redundancy, and it
	// keeps the logic depth logarithmic instead of chaining off the
	// most recent gate.
	floor := minPool(cfg)
	draw := func(avoid []int) int {
		for tries := 0; ; tries++ {
			// Keep a minimum pool occupancy: draining the pool to its
			// most recent entries would chain gates one after another
			// (depth explosion). Below the threshold, recycle instead.
			if len(pool) <= floor {
				// Recycle uniformly over everything but the most
				// recent gates: reusing a just-created signal chains
				// gates into deep narrow logic, while spreading reuse
				// across the whole history gives diverse, weakly
				// correlated fanout like the real benchmarks.
				cap := len(all) - frontWindow
				if cap < cfg.Inputs {
					cap = cfg.Inputs
				}
				s := all[src.Intn(cap)]
				if !containsInt(avoid, s) || tries > 8 {
					return s
				}
				continue
			}
			i := src.Intn(frontWindow)
			s := pool[i]
			if containsInt(avoid, s) && tries <= 8 {
				continue
			}
			pool = append(pool[:i], pool[i+1:]...)
			return s
		}
	}

	prof := profileBalanced
	guard := -1 // guard signal of the current region, -1 = ungated
	gi := 0
	// buildGuard emits a chain of 2-input ANDs over w distinct
	// signals; the root is 1 with probability about 2^-w, so logic it
	// gates is excited only by a rare minority of random vectors.
	buildGuard := func() int {
		w := 5 + src.Intn(5)
		root := draw(nil)
		for k := 1; k < w && gi < cfg.Gates; k++ {
			other := draw([]int{root})
			id := b.AddGate(fmt.Sprintf("g%d", gi), circuit.And, root, other)
			gi++
			all = append(all, id)
			root = id
		}
		return root
	}
	// Reserve budget for the funnel stage below: roughly one combining
	// gate per surplus sink.
	sinkTarget := cfg.Inputs / 5
	if sinkTarget < 4 {
		sinkTarget = 4
	}
	reserve := floor - sinkTarget
	if reserve < 0 {
		reserve = 0
	}
	mainBudget := cfg.Gates - reserve
	if mainBudget < cfg.Gates/2 {
		mainBudget = cfg.Gates / 2
	}
	// The funnel reserve is sized for medium circuits and can swallow a
	// tiny gate budget whole (Gates below the pool floor), leaving an
	// output-less netlist; always build at least one gate.
	if mainBudget < 1 {
		mainBudget = 1
	}

	regionEnd := 0
	for gi < mainBudget {
		if gi >= regionEnd {
			regionEnd = gi + regionLen
			prof = typeProfile(src.Intn(int(numProfiles)))
			guard = -1
			if src.Float64() < cfg.GuardFrac && cfg.Gates-gi > 16 {
				guard = buildGuard()
			}
		}
		ty := chooseType(src, cfg, prof)
		arity := 1
		if ty != circuit.Not && ty != circuit.Buf {
			arity = 2
			if src.Float64() < cfg.WideFrac {
				arity = 3 + src.Intn(2)
			}
		}
		fanin := make([]int, 0, arity)
		for len(fanin) < arity {
			fanin = append(fanin, draw(fanin))
		}
		// Gate the region's logic with the guard: the rare guard
		// value makes every fault on and behind this gate
		// random-resistant.
		if guard >= 0 && arity >= 2 && src.Float64() < cfg.GuardGateFrac && !containsInt(fanin, guard) {
			fanin[0] = guard
		}
		id := b.AddGate(fmt.Sprintf("g%d", gi), ty, fanin...)
		gi++
		all = append(all, id)
		pool = append(pool, id)
		if src.Float64() < cfg.DupFrac {
			pool = append(pool, id)
		}
	}

	// Funnel: real combinational cores converge into a small set of
	// outputs; a DAG grown by the loop above instead leaves ~floor
	// sink gates. Spend the tail of the gate budget combining sinks
	// pairwise so that observability is concentrated the way it is in
	// the benchmarks — this is what pushes per-fault detectability
	// down from "every vector sees everything" toward the paper's
	// regime.
	for len(pool) > sinkTarget && gi < cfg.Gates {
		a := pool[0]
		pool = pool[1:]
		bIdx := src.Intn(len(pool))
		bSig := pool[bIdx]
		pool = append(pool[:bIdx], pool[bIdx+1:]...)
		if a == bSig {
			continue
		}
		var ty circuit.GateType
		switch src.Intn(5) {
		case 0:
			ty = circuit.And
		case 1:
			ty = circuit.Or
		case 2:
			ty = circuit.Nand
		case 3:
			ty = circuit.Nor
		default:
			ty = circuit.Xor
		}
		id := b.AddGate(fmt.Sprintf("g%d", gi), ty, a, bSig)
		gi++
		all = append(all, id)
		pool = append(pool, id)
	}

	// Observation taps, chosen from the same stream for determinism.
	taps := make(map[int]bool)
	for _, id := range all[cfg.Inputs:] {
		if src.Float64() < cfg.ObserveFrac {
			taps[id] = true
		}
	}

	c, err := freezeWithOutputs(b, all[cfg.Inputs:], taps)
	if err != nil {
		// The construction above cannot produce cycles or arity
		// violations; a failure here is a programming error.
		panic(fmt.Sprintf("gen: internal error: %v", err))
	}
	return c
}

// freezeWithOutputs marks every fanout-free gate plus the tapped
// gates as primary outputs and freezes. It needs a two-phase dance
// because fanout counts are only known at freeze time: we tentatively
// freeze with all gates observed, inspect the fanout lists, and
// rebuild with the true output set.
func freezeWithOutputs(b *circuit.Builder, gateIDs []int, taps map[int]bool) (*circuit.Circuit, error) {
	for _, id := range gateIDs {
		b.MarkOutput(id)
	}
	probe, err := b.Freeze()
	if err != nil {
		return nil, err
	}
	nb := circuit.NewBuilder(probe.Name)
	remap := make([]int, probe.NumGates())
	for _, gi := range probe.Topo {
		g := probe.Gates[gi]
		if g.Type == circuit.PI {
			remap[gi] = nb.AddInput(g.Name)
			continue
		}
		fanin := make([]int, len(g.Fanin))
		for k, f := range g.Fanin {
			fanin[k] = remap[f]
		}
		remap[gi] = nb.AddGate(g.Name, g.Type, fanin...)
	}
	for gi := range probe.Gates {
		if probe.Gates[gi].Type == circuit.PI {
			continue
		}
		if len(probe.Fanout[gi]) == 0 || taps[gi] {
			nb.MarkOutput(remap[gi])
		}
	}
	return nb.Freeze()
}

// typeProfile biases the gate-type mixture of one region of the
// circuit. Homogeneous random logic produces a flat detectability
// landscape — every vector detects a similar number of faults and the
// ADI carries little signal. Real designs mix datapath (parity-ish),
// control (conjunctive decode trees) and glue logic, giving some
// regions where faults are detected by almost every vector and others
// where detection is rare; cycling profiles across regions recreates
// that spread (the paper's Table 4 ratios).
type typeProfile int

const (
	profileBalanced typeProfile = iota
	profileConjunctive
	profileDisjunctive
	profileParity
	numProfiles
)

// regionLen is the number of consecutive gates sharing one profile.
const regionLen = 48

func chooseType(src *prng.Source, cfg Config, prof typeProfile) circuit.GateType {
	r := src.Float64()
	xor, inv := cfg.XorFrac, cfg.InvFrac
	if prof == profileParity {
		xor *= 4
	}
	switch {
	case r < xor/2:
		return circuit.Xor
	case r < xor:
		return circuit.Xnor
	case r < xor+inv*0.8:
		return circuit.Not
	case r < xor+inv:
		return circuit.Buf
	}
	switch prof {
	case profileConjunctive:
		// Decode-tree flavour: conjunction-heavy, signal
		// probabilities skew low, faults in the region are rarely
		// excited by random vectors.
		switch src.Intn(6) {
		case 0, 1, 2:
			return circuit.And
		case 3, 4:
			return circuit.Nand
		default:
			return circuit.Nor
		}
	case profileDisjunctive:
		switch src.Intn(6) {
		case 0, 1, 2:
			return circuit.Or
		case 3, 4:
			return circuit.Nor
		default:
			return circuit.Nand
		}
	default:
		// NAND/NOR twice as likely as AND/OR: inverting gates keep
		// signal probabilities balanced through depth, whereas AND/OR
		// chains drive lines toward constants (and constants breed
		// redundant faults).
		switch src.Intn(6) {
		case 0:
			return circuit.And
		case 1:
			return circuit.Or
		case 2, 3:
			return circuit.Nand
		default:
			return circuit.Nor
		}
	}
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
