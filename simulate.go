package adifo

import (
	"context"
	"fmt"

	"github.com/eda-go/adifo/internal/adi"
	"github.com/eda-go/adifo/internal/cli"
	"github.com/eda-go/adifo/internal/fsim"
)

// Mode selects the dropping policy of a batch simulation.
type Mode = fsim.Mode

// The three dropping policies.
const (
	// NoDrop simulates every fault against every vector and records
	// complete detection sets D(f) and per-vector counts ndet(u) —
	// the regime the ADI computation requires. This is the default
	// mode of Simulate.
	NoDrop = fsim.NoDrop
	// Drop removes a fault at its first detection.
	Drop = fsim.Drop
	// NDetect removes a fault after its n-th detection (see
	// WithNDetect).
	NDetect = fsim.NDetect
)

// ParseMode maps a mode name ("nodrop", "drop", "ndetect") to its Mode
// value; the empty string is rejected.
func ParseMode(name string) (Mode, error) { return fsim.ParseMode(name) }

// SimProgress is a per-block snapshot of a running simulation,
// delivered at each 64-pattern block barrier.
type SimProgress = fsim.Progress

// SimResult holds everything a batch simulation learned: per-fault
// detection counts, first-detection indices, detection sets (NoDrop
// and NDetect modes) and per-vector ndet counters.
type SimResult = fsim.Result

// simConfig collects the Simulate options; the zero value — NoDrop
// mode, GOMAXPROCS workers, no early stop — is the documented default,
// which is what makes the NoDrop default explicit rather than an
// accident of string parsing.
type simConfig struct {
	par fsim.ParallelOptions
}

// SimOption configures Simulate.
type SimOption func(*simConfig)

// WithMode selects the dropping policy (default NoDrop).
func WithMode(m Mode) SimOption {
	return func(c *simConfig) { c.par.Mode = m }
}

// WithNDetect selects NDetect mode with the given drop threshold:
// faults are dropped after their n-th detection.
func WithNDetect(n int) SimOption {
	return func(c *simConfig) { c.par.Mode = fsim.NDetect; c.par.N = n }
}

// WithWorkers sets the number of shard worker goroutines (default
// GOMAXPROCS). The worker count never changes results, only speed.
func WithWorkers(n int) SimOption {
	return func(c *simConfig) { c.par.Workers = n }
}

// WithStopAtCoverage stops the run after the first block in which
// total fault coverage reaches the threshold (e.g. 0.90).
func WithStopAtCoverage(cov float64) SimOption {
	return func(c *simConfig) { c.par.StopAtCoverage = cov }
}

// WithBlockWidth pins the simulation kernel's block width — the number
// of patterns one fault pass evaluates — to 64, 256 or 512. The
// default (0) picks the widest block the pattern count and mode
// justify. Like the worker count, the width never changes results,
// only speed; invalid widths are rejected by Simulate.
func WithBlockWidth(w int) SimOption {
	return func(c *simConfig) { c.par.BlockWidth = w }
}

// WithProgress registers a callback invoked after every 64-pattern
// block barrier with the run's state. It is called from the
// coordinating goroutine, never concurrently.
func WithProgress(fn func(SimProgress)) SimOption {
	return func(c *simConfig) { c.par.Progress = fn }
}

// Simulate fault-simulates every fault of fl against the vectors of ps
// under the given options (NoDrop mode over all workers by default).
// Results are bit-identical for every worker count.
//
// ctx is honored at every block barrier: a cancelled simulation stops
// within one 64-pattern block, returning the partial result together
// with ctx.Err().
func Simulate(ctx context.Context, fl *FaultList, ps *PatternSet, opts ...SimOption) (*SimResult, error) {
	var cfg simConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	if ps.Inputs() != fl.Circuit.NumInputs() {
		return nil, fmt.Errorf("adifo: pattern set has %d inputs, circuit %s has %d",
			ps.Inputs(), fl.Circuit.Name, fl.Circuit.NumInputs())
	}
	if cfg.par.Mode == fsim.NDetect && cfg.par.N <= 0 {
		return nil, fmt.Errorf("adifo: NDetect mode requires a threshold > 0 (use WithNDetect)")
	}
	switch cfg.par.BlockWidth {
	case 0, 64, 256, 512:
	default:
		return nil, fmt.Errorf("adifo: block width %d invalid; want 0 (auto), 64, 256 or 512", cfg.par.BlockWidth)
	}
	return fsim.RunParallelCtx(ctx, fl, ps, cfg.par)
}

// SizePatterns sizes a vector set the way the paper sizes U: simulate
// the candidates with fault dropping until targetCoverage of the
// faults are detected, and keep only the vectors simulated up to that
// point. Use RandomPatterns(inputs, DefaultUBudget, DefaultUSeed) and
// DefaultTargetCoverage for the published recipe.
func SizePatterns(ctx context.Context, fl *FaultList, candidates *PatternSet, targetCoverage float64) (*PatternSet, error) {
	sizing, err := Simulate(ctx, fl, candidates,
		WithMode(Drop), WithStopAtCoverage(targetCoverage))
	if err != nil {
		return nil, err
	}
	return candidates.Slice(sizing.VectorsUsed), nil
}

// Index holds the accidental detection indices of one fault list under
// one vector set U: ADI[f] = min{ ndet(u) : u detects f }, zero for
// faults U misses. Its Order method derives the six fault orders.
type Index = adi.Index

// OrderKind names one of the paper's six fault orders.
type OrderKind = adi.OrderKind

// The six orders of the paper, in the order they are introduced.
const (
	// Orig is the original listing order (the comparison baseline).
	Orig = adi.Orig
	// Incr0 is increasing ADI, zero-ADI faults last (adversarial
	// control).
	Incr0 = adi.Incr0
	// Decr is decreasing ADI, zero-ADI faults last.
	Decr = adi.Decr
	// Decr0 is zero-ADI faults first, then decreasing ADI.
	Decr0 = adi.Decr0
	// Dynm is Decr with ndet/ADI updated dynamically as faults are
	// placed — the order the paper recommends for steep coverage
	// curves (F_dynm).
	Dynm = adi.Dynm
	// Dynm0 is zero-ADI faults first, then the dynamic process — the
	// variant for minimum test-set size (F_0dynm).
	Dynm0 = adi.Dynm0
)

// AllOrders lists every OrderKind.
func AllOrders() []OrderKind { return adi.AllOrders() }

// ParseOrder maps the paper's order labels (orig, incr0, decr, 0decr,
// dynm, 0dynm) to an OrderKind.
func ParseOrder(name string) (OrderKind, error) { return cli.ParseOrder(name) }

// ComputeADI fault-simulates fl under u without dropping and derives
// the accidental detection indices. ctx cancels the underlying
// simulation at a block barrier.
func ComputeADI(ctx context.Context, fl *FaultList, u *PatternSet) (*Index, error) {
	res, err := Simulate(ctx, fl, u)
	if err != nil {
		return nil, err
	}
	return adi.FromResult(res, u), nil
}

// ADIFromResult derives the indices from an existing Simulate result
// that carries detection sets (NoDrop or NDetect mode); it errors on a
// Drop-mode result, which records no D(f). Reusing a result avoids
// simulating twice when a program needs both grading data and orders.
func ADIFromResult(res *SimResult, u *PatternSet) (*Index, error) {
	if res.Det == nil {
		return nil, fmt.Errorf("adifo: ADI requires a NoDrop or NDetect simulation result (Drop mode records no detection sets)")
	}
	return adi.FromResult(res, u), nil
}
