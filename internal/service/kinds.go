package service

import (
	"errors"
	"fmt"
	"strings"

	"github.com/eda-go/adifo/internal/adi"
	"github.com/eda-go/adifo/internal/cli"
	"github.com/eda-go/adifo/internal/fsim"
	"github.com/eda-go/adifo/internal/logic"
)

// Job kinds of the v1 wire contract. A JobSpec without a kind is a
// grade job — the only kind v1 knew before the engine became
// multi-kind, so old specs keep their meaning.
const (
	// KindGrade fault-grades a vector set: batch fault simulation
	// under a dropping policy, per-fault detection data in the result.
	KindGrade = "grade"
	// KindAtpg runs ordered test generation: the accidental detection
	// index is computed over the job's vector set U, the fault universe
	// is permuted by the requested order, and PODEM generates a test
	// set along that order (the paper's Section 4 flow).
	KindAtpg = "atpg"
	// KindADIOrder computes the accidental detection index over the
	// job's vector set U and returns one of the paper's six fault
	// orders, without generating tests.
	KindADIOrder = "adi_order"
)

// ErrUnsupportedKind is returned by Submit for a job kind the engine
// does not know, or one this server was configured not to serve. On
// the wire it is the typed "unsupported_kind" envelope code.
var ErrUnsupportedKind = errors.New("service: unsupported job kind")

// NormalizeKind maps a wire kind field to its canonical kind name: the
// empty string is the v1-compatible default, grade.
func NormalizeKind(kind string) string {
	if kind == "" {
		return KindGrade
	}
	return kind
}

// KindNames lists the job kinds the engine knows, in wire-name form.
func KindNames() []string { return []string{KindGrade, KindAtpg, KindADIOrder} }

// jobKind is one entry of the job-kind registry: the hooks a kind
// supplies to run on the shared engine (queue, worker pool,
// cancellation at barriers, progress streaming, LRU registry). The
// engine owns every state transition; a kind only validates its slice
// of the spec and produces a result payload.
type jobKind interface {
	// validate checks the kind-specific fields of a spec at submit
	// time; the circuit reference, pattern spec, worker bound and
	// shardability are validated by the engine before it is called.
	validate(spec JobSpec) error
	// shardable reports whether the kind honors JobSpec.FaultShard.
	// Only grade is shardable: its per-fault dropping decisions are
	// independent, so disjoint fault ranges merge bit-identically,
	// whereas ATPG and the dynamic orders are sequential over shared
	// ndet state.
	shardable() bool
	// run executes the job body under j.ctx and returns the
	// kind-specific result payload. Returning the context's error
	// marks the job cancelled; any other error marks it failed.
	run(s *Service, j *job) (any, error)
}

// jobKinds is the kind registry. Keys are the wire names Submit
// dispatches on.
var jobKinds = map[string]jobKind{
	KindGrade:    gradeKind{},
	KindAtpg:     atpgKind{},
	KindADIOrder: adiOrderKind{},
}

// OrderSpec selects one of the paper's six fault orders for atpg and
// adi_order jobs.
type OrderSpec struct {
	// Kind is the order label: orig, incr0, decr, 0decr, dynm or
	// 0dynm. Required — like grade's mode, the wire has no silent
	// default order.
	Kind string `json:"kind"`
}

// GenSpec tunes an atpg job's test generator; the zero value is the
// default (library default backtrack limit, zero fill seed).
type GenSpec struct {
	// FillSeed seeds the pseudo-random completion of unspecified
	// inputs; equal seeds give bit-identical test sets on every host.
	FillSeed uint64 `json:"fill_seed,omitempty"`
	// BacktrackLimit bounds PODEM's backtracks per target (0 =
	// library default).
	BacktrackLimit int `json:"backtrack_limit,omitempty"`
}

// validateOrderedSpec checks the constraints shared by the ADI-driven
// kinds (atpg, adi_order): an order spec is required and the
// grade-only knobs must be unset — these kinds simulate U without
// dropping by definition, so accepting a mode silently would lie about
// what runs.
func validateOrderedSpec(spec JobSpec) error {
	kind := NormalizeKind(spec.Kind)
	if spec.Mode != "" {
		return fmt.Errorf("mode applies only to grade jobs (%s jobs simulate U without dropping)", kind)
	}
	if spec.N != 0 {
		return fmt.Errorf("n applies only to grade jobs in ndetect mode")
	}
	if spec.StopAtCoverage != 0 {
		return fmt.Errorf("stop_at_coverage applies only to grade jobs")
	}
	if spec.Order == nil || spec.Order.Kind == "" {
		return fmt.Errorf("%s jobs require an order spec (kind orig, incr0, decr, 0decr, dynm or 0dynm)", kind)
	}
	if _, err := cli.ParseOrder(spec.Order.Kind); err != nil {
		return err
	}
	return nil
}

// prepare resolves a job's circuit through the registry and
// materializes its vector set — the prologue every kind shares.
// Fault counts and status fields are kind-dependent (a grade shard
// reports only its slice of the universe) and stay with the caller.
// A cancel that lands during circuit resolution aborts the job but
// not the registry build: the entry stays cached and consistent for
// the next submission of the same circuit.
func (s *Service) prepare(j *job) (entry *CircuitEntry, ps *logic.PatternSet, patternKey string, err error) {
	defer j.phase(PhaseRegistryBuild)()
	entry, err = s.reg.CircuitFor(j.spec)
	if err != nil {
		return nil, nil, "", err
	}
	if err := j.ctx.Err(); err != nil {
		return nil, nil, "", err
	}
	ps, patternKey, err = buildPatterns(entry.Circuit.NumInputs(), j.spec.Patterns)
	if err != nil {
		return nil, nil, "", err
	}
	return entry, ps, patternKey, nil
}

// computeIndex runs the shared first phase of the atpg and adi_order
// kinds: resolve the circuit, then derive the accidental detection
// index of its full collapsed fault universe under the job's vector
// set U. The NoDrop simulation streams per-block progress exactly as
// a grade job does and reuses the registry's good-machine cache, so
// repeat ordering requests over the same (circuit, U) pair skip
// straight to the index derivation.
func (s *Service) computeIndex(j *job) (*CircuitEntry, *adi.Index, error) {
	entry, ps, patternKey, err := s.prepare(j)
	if err != nil {
		return nil, nil, err
	}

	j.mu.Lock()
	j.status.Circuit = entry.Circuit.Name
	j.status.Faults = entry.Faults.Len()
	j.status.Vectors = ps.Len()
	j.status.Blocks = ps.Blocks()
	j.status.Active = entry.Faults.Len()
	j.mu.Unlock()

	stopSim := j.phase(PhaseSimulate)
	good := s.reg.Good(entry, patternKey, ps)
	res, err := fsim.RunParallelCtx(j.ctx, entry.Faults, ps, fsim.ParallelOptions{
		Options:    fsim.Options{Mode: fsim.NoDrop},
		Workers:    s.jobWorkers(j),
		BlockWidth: j.spec.BlockWidth,
		Compiled:   s.reg.Compiled(entry),
		Good:       good,
		Progress:   func(p fsim.Progress) { j.publish(p) },
	})
	stopSim()
	if err != nil {
		return nil, nil, err
	}
	stopOrder := j.phase(PhaseOrder)
	ix := adi.FromResult(res, ps)
	stopOrder()
	return entry, ix, nil
}

// jobWorkers resolves a job's shard worker count: the spec's override
// when set, the service default otherwise. Submit already rejected
// out-of-range values.
func (s *Service) jobWorkers(j *job) int {
	if j.spec.Workers != 0 {
		return j.spec.Workers
	}
	return s.cfg.SimWorkers
}

// vectorString renders an input vector as the wire's bit-string form
// ("0110"), the inverse of the PatternSpec.Vectors encoding.
func vectorString(v logic.Vector) string {
	b := make([]byte, len(v))
	for i, bit := range v {
		if bit != 0 {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

// unsupportedKindError builds the typed rejection for an unknown or
// disabled kind.
func unsupportedKindError(kind string, serving []string) error {
	return fmt.Errorf("%w %q (this server accepts %s)", ErrUnsupportedKind, kind, strings.Join(serving, ", "))
}
