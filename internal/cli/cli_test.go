package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/eda-go/adifo/internal/adi"
)

func TestLoadEmbedded(t *testing.T) {
	c, err := LoadCircuit("c17")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "c17" || c.NumInputs() != 5 {
		t.Fatalf("loaded %s with %d inputs", c.Name, c.NumInputs())
	}
}

func TestLoadSuiteMember(t *testing.T) {
	c, err := LoadCircuit("irs208")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumInputs() != 19 {
		t.Fatalf("irs208 inputs = %d", c.NumInputs())
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tiny.bench")
	src := "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := LoadCircuit(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumInputs() != 2 {
		t.Fatalf("inputs = %d", c.NumInputs())
	}
}

func TestLoadUnknown(t *testing.T) {
	if _, err := LoadCircuit("no-such-thing"); err == nil {
		t.Fatal("unknown reference resolved")
	}
}

func TestLoadBadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.bench")
	if err := os.WriteFile(path, []byte("not a netlist"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCircuit(path); err == nil {
		t.Fatal("malformed file parsed")
	}
}

func TestParseOrder(t *testing.T) {
	cases := map[string]adi.OrderKind{
		"orig": adi.Orig, "incr0": adi.Incr0, "decr": adi.Decr,
		"0decr": adi.Decr0, "decr0": adi.Decr0,
		"dynm": adi.Dynm, "0dynm": adi.Dynm0, "DYNM0": adi.Dynm0,
	}
	for name, want := range cases {
		got, err := ParseOrder(name)
		if err != nil || got != want {
			t.Errorf("ParseOrder(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseOrder("bogus"); err == nil || !strings.Contains(err.Error(), "unknown order") {
		t.Fatalf("bogus order accepted: %v", err)
	}
}

func TestSuiteSelectors(t *testing.T) {
	small, err := Suite("small")
	if err != nil || len(small) != 3 {
		t.Fatalf("small = %d circuits, %v", len(small), err)
	}
	full, err := Suite("full")
	if err != nil || len(full) != 14 {
		t.Fatalf("full = %d circuits, %v", len(full), err)
	}
	one, err := Suite("irs420")
	if err != nil || len(one) != 1 || one[0].Name != "irs420" {
		t.Fatalf("single = %+v, %v", one, err)
	}
	if _, err := Suite("bogus"); err == nil {
		t.Fatal("bogus suite accepted")
	}
}
