package service

import (
	"fmt"

	"github.com/eda-go/adifo/internal/fault"
	"github.com/eda-go/adifo/internal/fsim"
)

// gradeKind is the original fault-grading workload: batch simulation
// of the job's vector set under a dropping policy, optionally
// restricted to one fault shard of the collapsed universe.
type gradeKind struct{}

// shardable: dropping decisions are per-fault, so disjoint index
// ranges have no cross-fault control dependence and shard results
// merge bit-identically (the cluster coordinator relies on this).
func (gradeKind) shardable() bool { return true }

func (gradeKind) validate(spec JobSpec) error {
	if spec.Order != nil || spec.Gen != nil {
		return fmt.Errorf("order and gen specs apply only to atpg and adi_order jobs")
	}
	if spec.Mode == "" {
		// No silent default on the wire: a request must say what it
		// wants. Library callers get the NoDrop default from the adifo
		// facade's options instead.
		return fmt.Errorf("mode is required (nodrop, drop or ndetect)")
	}
	mode, err := fsim.ParseMode(spec.Mode)
	if err != nil {
		return err
	}
	if mode == fsim.NDetect && spec.N <= 0 {
		return fmt.Errorf("ndetect mode requires n > 0")
	}
	if mode != fsim.NDetect && spec.N != 0 {
		return fmt.Errorf("n is only meaningful in ndetect mode")
	}
	if fs := spec.FaultShard; fs != nil {
		if fs.Count < 1 {
			return fmt.Errorf("fault_shard count %d must be >= 1", fs.Count)
		}
		if fs.Index < 0 || fs.Index >= fs.Count {
			return fmt.Errorf("fault_shard index %d out of range [0, %d)", fs.Index, fs.Count)
		}
		if spec.StopAtCoverage > 0 {
			// The cut-off is defined on global coverage, which a shard
			// cannot observe; allowing it would silently break the
			// bit-identical merge guarantee.
			return fmt.Errorf("stop_at_coverage cannot be combined with fault_shard")
		}
	}
	return nil
}

func (gradeKind) run(s *Service, j *job) (any, error) {
	entry, ps, patternKey, err := s.prepare(j)
	if err != nil {
		return nil, err
	}
	// Re-derived, not re-validated: validate already proved it parses.
	mode, _ := fsim.ParseMode(j.spec.Mode)
	opts := fsim.Options{Mode: mode, N: j.spec.N, StopAtCoverage: j.spec.StopAtCoverage}

	// A shard job grades only its index range of the collapsed
	// universe, against the full pattern set. The sub-list shares the
	// cached entry's backing array read-only; shardLo maps shard-local
	// fault indices back to global ones in the result.
	faults, shardLo := entry.Faults, 0
	if fs := j.spec.FaultShard; fs != nil {
		lo, hi := ShardRange(entry.Faults.Len(), fs.Index, fs.Count)
		shardLo = lo
		faults = &fault.List{Circuit: entry.Circuit, Faults: entry.Faults.Faults[lo:hi]}
	}

	j.mu.Lock()
	j.status.Circuit = entry.Circuit.Name
	j.status.Faults = faults.Len()
	j.status.Vectors = ps.Len()
	j.status.Blocks = ps.Blocks()
	j.status.Active = faults.Len()
	j.mu.Unlock()

	// Early-stopping jobs (drop mode, coverage cut-off) often touch only
	// a prefix of the blocks; precomputing the full good simulation for
	// them would do strictly more work than the simulator's lazy
	// per-block path, so the cache is reserved for runs that visit
	// every block.
	stopSim := j.phase(PhaseSimulate)
	var good *fsim.Good
	if opts.Mode != fsim.Drop && opts.StopAtCoverage == 0 {
		good = s.reg.Good(entry, patternKey, ps)
	}
	res, err := fsim.RunParallelCtx(j.ctx, faults, ps, fsim.ParallelOptions{
		Options:    opts,
		Workers:    s.jobWorkers(j),
		BlockWidth: j.spec.BlockWidth,
		Compiled:   s.reg.Compiled(entry),
		Good:       good,
		Progress:   func(p fsim.Progress) { j.publish(p) },
	})
	stopSim()
	if err != nil {
		return nil, err
	}

	result := buildResult(j, entry, faults, shardLo, ps.Len(), res)
	j.mu.Lock()
	j.status.VectorsUsed = res.VectorsUsed
	j.status.Detected = result.Detected
	j.mu.Unlock()
	return result, nil
}

// buildResult assembles the wire result. faults is the graded list (a
// shard sub-list of entry.Faults for shard jobs) and shardLo maps its
// local indices back to global collapsed-universe indices, so FaultResult.F
// is always global and shard results concatenate directly.
func buildResult(j *job, entry *CircuitEntry, faults *fault.List, shardLo, vectors int, res *fsim.Result) *JobResult {
	c := entry.Circuit
	out := &JobResult{
		ID:          j.id,
		Kind:        KindGrade,
		Circuit:     c.Name,
		Fingerprint: fmt.Sprintf("%016x", entry.Fingerprint),
		Mode:        j.spec.Mode,
		Faults:      faults.Len(),
		TotalFaults: entry.Faults.Len(),
		FaultShard:  j.spec.FaultShard,
		Vectors:     vectors,
		VectorsUsed: res.VectorsUsed,
		Detected:    res.DetectedCount(),
		Coverage:    res.Coverage(),
		Ndet:        append([]int(nil), res.Ndet...),
		PerFault:    make([]FaultResult, faults.Len()),
	}
	for fi, f := range faults.Faults {
		fr := FaultResult{
			F:        shardLo + fi,
			Name:     f.Name(c),
			DetCount: res.DetCount[fi],
			FirstDet: res.FirstDet[fi],
		}
		if res.Det != nil {
			fr.Det = res.Det[fi].Indices()
		}
		out.PerFault[fi] = fr
	}
	return out
}
