// Command repro regenerates every table and figure of the paper's
// evaluation section.
//
// Usage:
//
//	repro -table 1            # the lion worked example
//	repro -table 4            # ADI spread over the suite
//	repro -table 5            # test-set sizes per fault order
//	repro -table 6            # relative run times
//	repro -table 7            # coverage-curve steepness (AVE)
//	repro -figure 1           # coverage curves for irs420
//	repro -all                # everything, in paper order
//	repro -all -suite small   # quick run on a three-circuit suite
//
// Tables 5, 6 and 7 are projections of the same generation runs; when
// more than one of them is requested the runs are executed once.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/eda-go/adifo/internal/cli"
	"github.com/eda-go/adifo/internal/experiments"
)

func main() {
	var (
		table    = flag.Int("table", 0, "table number to regenerate (1, 4, 5, 6 or 7)")
		figure   = flag.Int("figure", 0, "figure number to regenerate (1)")
		all      = flag.Bool("all", false, "regenerate every table and figure")
		ablation = flag.Bool("ablation", false, "also run the design-choice ablations")
		suiteSel = flag.String("suite", "full", "circuit suite: full, small, or one circuit name")
		fig1     = flag.String("figure1-circuit", experiments.Figure1Circuit, "circuit plotted by figure 1")
	)
	flag.Parse()

	if err := run(*table, *figure, *all, *ablation, *suiteSel, *fig1); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func run(table, figure int, all, ablation bool, suiteSel, fig1 string) error {
	suite, err := cli.Suite(suiteSel)
	if err != nil {
		return err
	}

	wantTable := func(n int) bool { return all || table == n }
	wantFigure := func(n int) bool { return all || figure == n }
	if !all && !ablation && table == 0 && figure == 0 {
		return fmt.Errorf("nothing to do: pass -table N, -figure N, -ablation or -all")
	}

	if wantTable(1) {
		_, text, err := experiments.Table1()
		if err != nil {
			return err
		}
		fmt.Println(text)
	}
	if wantTable(4) {
		start := time.Now()
		_, text, err := experiments.Table4(suite)
		if err != nil {
			return err
		}
		fmt.Println(text)
		fmt.Printf("(table 4 computed in %v)\n\n", time.Since(start).Round(time.Millisecond))
	}

	if wantTable(5) || wantTable(6) || wantTable(7) {
		start := time.Now()
		runs, err := experiments.RunSuite(suite)
		if err != nil {
			return err
		}
		if wantTable(5) {
			_, text := experiments.Table5(runs)
			fmt.Println(text)
		}
		if wantTable(6) {
			_, text := experiments.Table6(runs)
			fmt.Println(text)
		}
		if wantTable(7) {
			_, text := experiments.Table7(runs)
			fmt.Println(text)
		}
		fmt.Printf("(generation runs completed in %v)\n\n", time.Since(start).Round(time.Millisecond))
	}

	if wantFigure(1) {
		_, text, err := experiments.Figure1(fig1)
		if err != nil {
			return err
		}
		fmt.Println(text)
	}

	if ablation {
		_, text, err := experiments.Ablation(suite)
		if err != nil {
			return err
		}
		fmt.Println(text)
	}
	return nil
}
