package circuit

// Fingerprint returns a 64-bit FNV-1a hash over the structural content
// of the circuit: gate types, fanin wiring, input/output lists and the
// circuit name. Two circuits with the same fingerprint are, for cache
// purposes, the same netlist; the service registry uses it to key
// parsed circuits so repeat submissions skip parsing, levelization and
// fault collapsing. Signal names other than the circuit name do not
// contribute — renaming internal nets does not change the simulation.
func (c *Circuit) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	for i := 0; i < len(c.Name); i++ {
		h ^= uint64(c.Name[i])
		h *= prime64
	}
	mix(uint64(len(c.Gates)))
	for _, g := range c.Gates {
		mix(uint64(g.Type))
		mix(uint64(len(g.Fanin)))
		for _, f := range g.Fanin {
			mix(uint64(f))
		}
	}
	mix(uint64(len(c.Inputs)))
	for _, g := range c.Inputs {
		mix(uint64(g))
	}
	mix(uint64(len(c.Outputs)))
	for _, g := range c.Outputs {
		mix(uint64(g))
	}
	return h
}
