package journal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Reader decodes a stream of journal frames. It is deliberately
// forgiving at the tail: a crash mid-Append leaves a torn final frame
// (short header, short payload, or a payload whose CRC no longer
// matches its header), and Next reports that as ErrTruncated rather
// than an error — the well-formed prefix is the log.
type Reader struct {
	r   *bufio.Reader
	buf []byte
}

// ErrTruncated is returned by Reader.Next at the first frame that is
// torn or corrupt. It marks the end of the trustworthy prefix, not a
// failure of the reader.
var ErrTruncated = fmt.Errorf("journal: truncated or corrupt record")

// NewReader reads frames from r (which must be positioned after the
// segment magic, when reading a segment file).
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Next returns the next record. It returns io.EOF at a clean end of
// stream and ErrTruncated at a torn or corrupt frame; both mean "stop
// reading", only the latter implies a crash tore the tail.
func (d *Reader) Next() (Record, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(d.r, hdr[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, ErrTruncated // short header: torn tail
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if n > MaxRecordBytes {
		return Record{}, ErrTruncated
	}
	if cap(d.buf) < int(n) {
		d.buf = make([]byte, n)
	}
	payload := d.buf[:n]
	if _, err := io.ReadFull(d.r, payload); err != nil {
		return Record{}, ErrTruncated
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return Record{}, ErrTruncated
	}
	var rec Record
	dec := json.NewDecoder(bytes.NewReader(payload))
	if err := dec.Decode(&rec); err != nil {
		// The CRC matched, so these bytes are what was written — a
		// non-JSON payload means a writer bug, not a torn tail; still,
		// replay's contract is to stop cleanly, never to fail startup.
		return Record{}, ErrTruncated
	}
	return rec, nil
}

// ReplayResult summarizes one Replay pass.
type ReplayResult struct {
	// Records is the number of well-formed records delivered to fn.
	Records int
	// Segments is the number of segment files visited.
	Segments int
	// Truncated reports that the scan ended at a torn or corrupt
	// record instead of a clean end of log.
	Truncated bool
}

// Replay scans every segment in dir in order and calls fn for each
// well-formed record. It stops cleanly — without error — at the first
// truncated or corrupt record, since everything after a torn frame is
// untrustworthy. An error from fn aborts the scan and is returned.
// A missing directory is an empty log.
func Replay(dir string, fn func(Record) error) (ReplayResult, error) {
	var res ReplayResult
	segs, err := segments(dir)
	if err != nil {
		return res, err
	}
	for _, seg := range segs {
		truncated, err := replaySegment(seg.path, fn, &res)
		if err != nil {
			return res, err
		}
		res.Segments++
		if truncated {
			res.Truncated = true
			return res, nil
		}
	}
	return res, nil
}

// replaySegment scans one segment file. It reports torn==true when the
// segment ends at a bad frame (including a missing or wrong magic,
// which means the file never finished its header write).
func replaySegment(path string, fn func(Record) error, res *ReplayResult) (torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return false, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	var hdr [len(magic)]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil || string(hdr[:]) != magic {
		return true, nil
	}
	r := NewReader(f)
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return false, nil
		}
		if err != nil { // ErrTruncated
			return true, nil
		}
		if err := fn(rec); err != nil {
			return false, err
		}
		res.Records++
	}
}
