package tgen

import (
	"math"
	"testing"

	"github.com/eda-go/adifo/internal/adi"
	"github.com/eda-go/adifo/internal/circuit"
	"github.com/eda-go/adifo/internal/fault"
	"github.com/eda-go/adifo/internal/fsim"
	"github.com/eda-go/adifo/internal/logic"
)

const c17Bench = `
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`

func c17Faults(t testing.TB) *fault.List {
	t.Helper()
	c, err := circuit.ParseBenchString("c17", c17Bench)
	if err != nil {
		t.Fatal(err)
	}
	return fault.CollapsedUniverse(c)
}

func identityOrder(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestGenerateFullCoverageC17(t *testing.T) {
	fl := c17Faults(t)
	r := Generate(fl, identityOrder(fl.Len()), Options{Validate: true, FillSeed: 1})
	// c17 is irredundant: every collapsed fault must be detected.
	if r.Detected() != fl.Len() {
		t.Fatalf("detected %d of %d faults", r.Detected(), fl.Len())
	}
	if len(r.Redundant) != 0 || len(r.Aborted) != 0 {
		t.Fatalf("unexpected redundant=%v aborted=%v", r.Redundant, r.Aborted)
	}
	if r.Coverage() != 1.0 {
		t.Fatalf("coverage = %v", r.Coverage())
	}
	if len(r.Tests) == 0 || len(r.Tests) > fl.Len() {
		t.Fatalf("test set size %d out of range", len(r.Tests))
	}
	if len(r.TargetOf) != len(r.Tests) || len(r.Curve) != len(r.Tests) {
		t.Fatal("parallel slices out of sync")
	}
}

func TestGeneratedSetDetectsEverythingUnderResimulation(t *testing.T) {
	fl := c17Faults(t)
	r := Generate(fl, identityOrder(fl.Len()), Options{Validate: true, FillSeed: 7})
	// Re-simulate the final test set from scratch; it must detect the
	// same fault set.
	ps := logic.NewPatternSet(fl.Circuit.NumInputs())
	for _, v := range r.Tests {
		ps.Append(v)
	}
	res := fsim.Run(fl, ps, fsim.Options{Mode: fsim.Drop})
	if res.DetectedCount() != r.Detected() {
		t.Fatalf("resimulation detects %d, driver reported %d", res.DetectedCount(), r.Detected())
	}
}

func TestCurveIsMonotone(t *testing.T) {
	fl := c17Faults(t)
	r := Generate(fl, identityOrder(fl.Len()), Options{FillSeed: 3})
	prev := 0
	for i, n := range r.Curve {
		if n <= prev {
			// Every retained test must detect at least one new fault
			// (its own target at minimum).
			t.Fatalf("curve not strictly increasing at %d: %v", i, r.Curve)
		}
		prev = n
	}
}

func TestDeterminism(t *testing.T) {
	fl := c17Faults(t)
	a := Generate(fl, identityOrder(fl.Len()), Options{FillSeed: 42})
	b := Generate(fl, identityOrder(fl.Len()), Options{FillSeed: 42})
	if len(a.Tests) != len(b.Tests) {
		t.Fatal("test set size not deterministic")
	}
	for i := range a.Tests {
		if a.Tests[i].String() != b.Tests[i].String() {
			t.Fatalf("test %d differs across identical runs", i)
		}
	}
}

func TestFillSeedChangesOutcome(t *testing.T) {
	// Not a strict requirement, but with different fills the test
	// sets should not be byte-identical for every seed pair; guard
	// against the seed being ignored.
	fl := c17Faults(t)
	a := Generate(fl, identityOrder(fl.Len()), Options{FillSeed: 1})
	b := Generate(fl, identityOrder(fl.Len()), Options{FillSeed: 2})
	same := len(a.Tests) == len(b.Tests)
	if same {
		for i := range a.Tests {
			if a.Tests[i].String() != b.Tests[i].String() {
				same = false
				break
			}
		}
	}
	if same {
		t.Skip("seeds 1 and 2 coincide on this tiny circuit; acceptable")
	}
}

func TestRedundantFaultHandling(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(z)
n = NOT(a)
y = OR(a, n)
z = AND(y, b)
`
	c, err := circuit.ParseBenchString("red", src)
	if err != nil {
		t.Fatal(err)
	}
	fl := fault.CollapsedUniverse(c)
	r := Generate(fl, identityOrder(fl.Len()), Options{Validate: true})
	if len(r.Redundant) == 0 {
		t.Fatal("expected redundant faults")
	}
	if r.Detected()+len(r.Redundant) != fl.Len() {
		t.Fatalf("detected %d + redundant %d != %d faults",
			r.Detected(), len(r.Redundant), fl.Len())
	}
}

func TestAVEHandComputed(t *testing.T) {
	// Curve: test 1 detects 6 faults, test 2 detects 3, test 3
	// detects 1. AVE = (1*6 + 2*3 + 3*1) / 10 = 1.5.
	curve := []int{6, 9, 10}
	if got := AVE(curve); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("AVE = %v, want 1.5", got)
	}
}

func TestAVEEdgeCases(t *testing.T) {
	if AVE(nil) != 0 {
		t.Fatal("AVE(nil) != 0")
	}
	if AVE([]int{0}) != 0 {
		t.Fatal("AVE of zero-detection curve != 0")
	}
	// A single test detecting everything: AVE = 1 (steepest
	// possible).
	if AVE([]int{17}) != 1 {
		t.Fatal("single-test AVE != 1")
	}
}

func TestAVESteeperIsSmaller(t *testing.T) {
	steep := []int{9, 10}   // 9 faults up front
	shallow := []int{1, 10} // 1 fault up front
	if AVE(steep) >= AVE(shallow) {
		t.Fatalf("steep %v >= shallow %v", AVE(steep), AVE(shallow))
	}
}

func TestCoveragePoints(t *testing.T) {
	xs, ys := CoveragePoints([]int{5, 8, 10})
	if len(xs) != 3 || len(ys) != 3 {
		t.Fatalf("points: %v %v", xs, ys)
	}
	if xs[2] != 100 || ys[2] != 100 {
		t.Fatalf("final point must be (100,100), got (%v,%v)", xs[2], ys[2])
	}
	if math.Abs(ys[0]-50) > 1e-12 {
		t.Fatalf("first y = %v, want 50", ys[0])
	}
	if x, y := CoveragePoints(nil); x != nil || y != nil {
		t.Fatal("empty curve must give nil points")
	}
}

func TestOrderedGenerationUsesADIOrders(t *testing.T) {
	// End-to-end smoke: all six orders produce full coverage on c17
	// and valid curves.
	fl := c17Faults(t)
	u := logic.ExhaustivePatterns(fl.Circuit.NumInputs())
	ix := adi.Compute(fl, u)
	for _, kind := range adi.AllOrders() {
		r := Generate(fl, ix.Order(kind), Options{Validate: true, FillSeed: 5})
		if r.Detected() != fl.Len() {
			t.Fatalf("%v: detected %d of %d", kind, r.Detected(), fl.Len())
		}
		if r.AVE() <= 0 {
			t.Fatalf("%v: AVE = %v", kind, r.AVE())
		}
	}
}

func TestGeneratePanicsOnBadOrder(t *testing.T) {
	fl := c17Faults(t)
	cases := [][]int{
		{0, 1, 2},                            // too short
		append(identityOrder(fl.Len()-1), 0), // duplicate
	}
	for _, order := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad order did not panic")
				}
			}()
			Generate(fl, order, Options{})
		}()
	}
}

func TestStatsAccounting(t *testing.T) {
	fl := c17Faults(t)
	r := Generate(fl, identityOrder(fl.Len()), Options{FillSeed: 1})
	if r.AtpgCalls < len(r.Tests) {
		t.Fatalf("AtpgCalls %d < tests %d", r.AtpgCalls, len(r.Tests))
	}
	if r.Elapsed <= 0 {
		t.Fatal("Elapsed not recorded")
	}
}

// TestProgressCallback: the per-target progress feed is monotone,
// consistent with the final result, and its last event matches the
// run's totals.
func TestProgressCallback(t *testing.T) {
	fl := c17Faults(t)
	order := identityOrder(fl.Len())

	var events []Progress
	r := Generate(fl, order, Options{Progress: func(p Progress) { events = append(events, p) }})
	if len(events) == 0 {
		t.Fatal("no progress events")
	}
	prev := Progress{}
	for i, p := range events {
		if p.Targets != fl.Len() {
			t.Fatalf("event %d: targets %d, want %d", i, p.Targets, fl.Len())
		}
		if p.Done <= prev.Done || p.Tests < prev.Tests || p.Detected < prev.Detected || p.AtpgCalls <= prev.AtpgCalls {
			t.Fatalf("event %d not monotone: %+v after %+v", i, p, prev)
		}
		prev = p
	}
	last := events[len(events)-1]
	if last.Tests != len(r.Tests) || last.Detected != r.Detected() || last.AtpgCalls != r.AtpgCalls {
		t.Fatalf("last event %+v does not match result (%d tests, %d detected, %d calls)",
			last, len(r.Tests), r.Detected(), r.AtpgCalls)
	}
	if last.Active != fl.Len()-r.Detected()-len(r.Redundant) {
		t.Fatalf("last event active %d, want %d", last.Active, fl.Len()-r.Detected()-len(r.Redundant))
	}
}
