// Package journal is a dependency-free write-ahead log of job
// lifecycle records: an append-only sequence of length-prefixed,
// CRC-checksummed JSON payloads across rotated segment files. The job
// engine appends one record per state transition (submitted, started,
// finished) and replays the log at startup to reconstruct terminal job
// history and re-enqueue work that was queued or running at crash
// time.
//
// Durability model: Append returns only after the record (and every
// record written before it) has been fsynced. Concurrent appenders are
// group-committed — one fsync settles every record written since the
// previous one — so the per-record cost under load is a fraction of a
// disk flush. A crash can lose at most the suffix of records whose
// Append had not yet returned; it can never corrupt the prefix, and
// replay stops cleanly at the first truncated or corrupt record.
//
// On-disk format: each segment file starts with an 8-byte magic
// ("ADIWAL1\n") followed by frames of
//
//	uint32 LE payload length | uint32 LE CRC-32 (IEEE) of payload | payload
//
// Open always starts a fresh segment (numbered after the highest
// existing one), so past segments are immutable from the moment a
// process starts and a torn final frame can only ever sit at the tail
// of the newest segment.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Record types. A job's life is submitted → started → finished;
// cancellation and failure are finished records with the matching
// state, so replay needs no per-type logic to find terminal jobs.
const (
	TypeSubmitted = "submitted"
	TypeStarted   = "started"
	TypeFinished  = "finished"
)

// Record is one journal entry. Spec and Result hold the job's
// wire-level JSON bytes verbatim (see DESIGN.md: replay must serve
// byte-identical results and re-validate specs through the same wire
// path a client submission takes, so the journal records the wire
// encoding, not internal structs).
type Record struct {
	// Type is submitted, started or finished.
	Type string `json:"type"`
	// Job is the engine job id ("j42").
	Job string `json:"job"`
	// Kind is the job's canonical kind name, set on submitted records.
	Kind string `json:"kind,omitempty"`
	// Tenant and Key are the multi-tenant coordinates: Key is the
	// client-supplied idempotency key, deduplicated per tenant.
	Tenant string `json:"tenant,omitempty"`
	Key    string `json:"key,omitempty"`
	// State is the terminal state of a finished record: done, failed
	// or cancelled.
	State string `json:"state,omitempty"`
	// Error is the failure message of a finished/failed record.
	Error string `json:"error,omitempty"`
	// Trace is the job's distributed-trace id, set on submitted
	// records so a requeued job keeps its trace identity across a
	// restart.
	Trace string `json:"trace,omitempty"`
	// Spec is the submitted JobSpec's wire JSON (submitted records).
	Spec json.RawMessage `json:"spec,omitempty"`
	// Result is the terminal result payload's wire JSON
	// (finished/done records).
	Result json.RawMessage `json:"result,omitempty"`
	// At is the record's wall-clock time in Unix nanoseconds.
	At int64 `json:"at,omitempty"`
}

const (
	// magic opens every segment file; the trailing newline keeps
	// `head -c8` output readable and catches ASCII-mode mangling.
	magic = "ADIWAL1\n"
	// frameHeader is the per-record prefix: length + CRC.
	frameHeader = 8
	// MaxRecordBytes bounds a single record's payload. Reader treats
	// larger lengths as corruption — a torn length prefix must not
	// trigger a multi-gigabyte allocation.
	MaxRecordBytes = 64 << 20
	// DefaultSegmentBytes is the rotation threshold when
	// Options.SegmentBytes is zero.
	DefaultSegmentBytes = 64 << 20
)

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("journal: closed")

// Options tunes a Journal.
type Options struct {
	// SegmentBytes rotates to a new segment once the current one
	// exceeds this size (default DefaultSegmentBytes).
	SegmentBytes int64
	// NoSync skips fsync on append — records still reach the OS on
	// every Append, but a machine crash can lose them. For tests and
	// benchmarks; production leaves it false.
	NoSync bool
}

// Stats is a point-in-time snapshot of a Journal's counters, consumed
// by the service's metric registry as scrape-time functions.
type Stats struct {
	Appends       uint64
	AppendedBytes uint64
	Syncs         uint64
	SyncSeconds   float64
	Rotations     uint64
	Errors        uint64
	// Segment is the index of the segment currently being written.
	Segment int
}

// Journal is an open write-ahead log. Safe for concurrent use.
type Journal struct {
	dir  string
	opts Options

	mu      sync.Mutex
	f       *os.File
	size    int64
	seg     int
	err     error // sticky write failure: fail fast, never write a torn log
	closed  bool
	syncing bool
	waiters []chan error

	appends   atomic.Uint64
	appBytes  atomic.Uint64
	syncs     atomic.Uint64
	syncNanos atomic.Int64
	rotations atomic.Uint64
	errs      atomic.Uint64
}

// Open creates dir if needed and starts a new segment after the
// highest existing one. It never writes into old segments: they are
// replay-only history from this moment on.
func Open(dir string, opts Options) (*Journal, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	segs, err := segments(dir)
	if err != nil {
		return nil, err
	}
	next := 1
	if n := len(segs); n > 0 {
		next = segs[n-1].index + 1
	}
	j := &Journal{dir: dir, opts: opts, seg: next - 1}
	if err := j.rotateLocked(); err != nil {
		return nil, err
	}
	return j, nil
}

// Dir returns the journal's directory.
func (j *Journal) Dir() string { return j.dir }

// segmentName renders a segment index as its file name.
func segmentName(index int) string { return fmt.Sprintf("%08d.wal", index) }

type segmentFile struct {
	index int
	path  string
}

// segments lists dir's segment files in index order.
func segments(dir string) ([]segmentFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("journal: %w", err)
	}
	var out []segmentFile
	for _, e := range entries {
		var idx int
		if _, err := fmt.Sscanf(e.Name(), "%08d.wal", &idx); err != nil || segmentName(idx) != e.Name() {
			continue
		}
		out = append(out, segmentFile{index: idx, path: filepath.Join(dir, e.Name())})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].index < out[b].index })
	return out, nil
}

// rotateLocked syncs and closes the current segment (if any) and opens
// the next one. Caller holds j.mu (or is Open, before the journal is
// shared).
func (j *Journal) rotateLocked() error {
	if j.f != nil {
		if !j.opts.NoSync {
			if err := j.f.Sync(); err != nil {
				j.errs.Add(1)
				return fmt.Errorf("journal: sync %s: %w", j.f.Name(), err)
			}
		}
		if err := j.f.Close(); err != nil {
			j.errs.Add(1)
			return fmt.Errorf("journal: close %s: %w", j.f.Name(), err)
		}
		j.f = nil
		j.rotations.Add(1)
	}
	j.seg++
	path := filepath.Join(j.dir, segmentName(j.seg))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		j.errs.Add(1)
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := f.Write([]byte(magic)); err != nil {
		f.Close()
		j.errs.Add(1)
		return fmt.Errorf("journal: %w", err)
	}
	// Make the new segment's directory entry durable before anything
	// depends on records inside it.
	if !j.opts.NoSync {
		if d, err := os.Open(j.dir); err == nil {
			d.Sync()
			d.Close()
		}
	}
	j.f = f
	j.size = int64(len(magic))
	return nil
}

// EncodeFrame renders one record as its on-disk frame:
// length | CRC | JSON payload.
func EncodeFrame(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("journal: encode record: %w", err)
	}
	if len(payload) > MaxRecordBytes {
		return nil, fmt.Errorf("journal: record payload %d bytes exceeds limit %d", len(payload), MaxRecordBytes)
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeader:], payload)
	return frame, nil
}

// Append writes rec and returns once it is durable (fsynced), batching
// its flush with concurrent appenders. After a write error the journal
// is poisoned: every later Append returns the same error rather than
// risking a log with an interior hole.
func (j *Journal) Append(rec Record) error {
	ch, err := j.append(rec)
	if err != nil {
		return err
	}
	if ch == nil { // NoSync: durable enough by configuration
		return nil
	}
	return <-ch
}

// AppendAsync writes rec and schedules its fsync without waiting for
// it. Used for records whose loss a crash already tolerates (started:
// a submitted-but-unfinished job re-enqueues either way).
func (j *Journal) AppendAsync(rec Record) error {
	_, err := j.append(rec)
	return err
}

func (j *Journal) append(rec Record) (chan error, error) {
	frame, err := EncodeFrame(rec)
	if err != nil {
		j.errs.Add(1)
		return nil, err
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil, ErrClosed
	}
	if j.err != nil {
		err := j.err
		j.mu.Unlock()
		return nil, err
	}
	if j.size+int64(len(frame)) > j.opts.SegmentBytes && j.size > int64(len(magic)) {
		if err := j.rotateLocked(); err != nil {
			j.err = err
			j.mu.Unlock()
			return nil, err
		}
	}
	if _, err := j.f.Write(frame); err != nil {
		j.err = fmt.Errorf("journal: write: %w", err)
		j.errs.Add(1)
		err := j.err
		j.mu.Unlock()
		return nil, err
	}
	j.size += int64(len(frame))
	j.appends.Add(1)
	j.appBytes.Add(uint64(len(frame)))
	if j.opts.NoSync {
		j.mu.Unlock()
		return nil, nil
	}
	ch := make(chan error, 1)
	j.waiters = append(j.waiters, ch)
	if !j.syncing {
		j.syncing = true
		go j.syncLoop()
	}
	j.mu.Unlock()
	return ch, nil
}

// syncLoop is the group-commit flusher: it repeatedly takes the
// current waiter batch, fsyncs once, and settles every waiter in the
// batch. Records appended while an fsync is in flight join the next
// batch — one flusher, at most one fsync outstanding.
func (j *Journal) syncLoop() {
	for {
		j.mu.Lock()
		waiters := j.waiters
		j.waiters = nil
		if len(waiters) == 0 {
			j.syncing = false
			j.mu.Unlock()
			return
		}
		f := j.f
		j.mu.Unlock()

		start := time.Now()
		err := f.Sync()
		j.syncs.Add(1)
		j.syncNanos.Add(int64(time.Since(start)))
		if err != nil {
			err = fmt.Errorf("journal: sync: %w", err)
			j.errs.Add(1)
			j.mu.Lock()
			if j.err == nil {
				j.err = err
			}
			j.mu.Unlock()
		}
		for _, ch := range waiters {
			ch <- err
		}
	}
}

// Sync forces an fsync of the current segment, settling any
// outstanding async appends.
func (j *Journal) Sync() error {
	j.mu.Lock()
	if j.closed || j.f == nil {
		j.mu.Unlock()
		return nil
	}
	if j.err != nil {
		err := j.err
		j.mu.Unlock()
		return err
	}
	f := j.f
	j.mu.Unlock()
	if j.opts.NoSync {
		return nil
	}
	start := time.Now()
	err := f.Sync()
	j.syncs.Add(1)
	j.syncNanos.Add(int64(time.Since(start)))
	if err != nil {
		j.errs.Add(1)
	}
	return err
}

// Close fsyncs and closes the current segment. Later Appends return
// ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if j.f == nil {
		return nil
	}
	var err error
	if !j.opts.NoSync {
		err = j.f.Sync()
	}
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// Stats returns a snapshot of the journal's counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	seg := j.seg
	j.mu.Unlock()
	return Stats{
		Appends:       j.appends.Load(),
		AppendedBytes: j.appBytes.Load(),
		Syncs:         j.syncs.Load(),
		SyncSeconds:   time.Duration(j.syncNanos.Load()).Seconds(),
		Rotations:     j.rotations.Load(),
		Errors:        j.errs.Load(),
		Segment:       seg,
	}
}
