package fsim

import (
	"runtime"
	"sync"

	"github.com/eda-go/adifo/internal/fault"
	"github.com/eda-go/adifo/internal/logic"
	"github.com/eda-go/adifo/internal/sim"
)

// RunParallel is Run with the per-fault cone re-simulation spread
// across worker goroutines. Each worker owns a private engine (the
// good-machine values are shared read-only), faults are partitioned
// into contiguous chunks, and the per-vector ndet counters are merged
// after every block, so the result is bit-for-bit identical to the
// sequential Run.
//
// Only NoDrop mode is supported: it is the expensive mode (the ADI
// computation simulates every fault against every vector) and the one
// with no cross-fault control dependence. The dropping modes are
// cheap precisely because they shrink the active list, which is a
// sequential decision; parallelizing them would either change the
// drop points or serialize on the shared list.
func RunParallel(fl *fault.List, ps *logic.PatternSet, workers int) *Result {
	c := fl.Circuit
	if ps.Inputs() != c.NumInputs() {
		panic("fsim: pattern set width mismatch")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nf := fl.Len()
	if workers > nf {
		workers = nf
	}
	if workers <= 1 {
		return Run(fl, ps, Options{Mode: NoDrop})
	}

	r := &Result{
		List:     fl,
		DetCount: make([]int, nf),
		FirstDet: make([]int, nf),
		Ndet:     make([]int, ps.Len()),
		Det:      make([]*logic.Bitset, nf),
	}
	for i := range r.FirstDet {
		r.FirstDet[i] = -1
	}
	for i := range r.Det {
		r.Det[i] = logic.NewBitset(ps.Len())
	}

	gs := sim.New(c)
	engines := make([]*engine, workers)
	for w := range engines {
		engines[w] = newEngine(c, gs.Values())
	}
	// Per-worker ndet accumulators, merged per block (Ndet is the
	// only cross-fault shared state).
	ndetLocal := make([][]int, workers)
	for w := range ndetLocal {
		ndetLocal[w] = make([]int, logic.WordBits)
	}

	chunk := (nf + workers - 1) / workers
	var wg sync.WaitGroup
	for block := 0; block < ps.Blocks(); block++ {
		gs.SimulateBlock(ps, block)
		mask := ps.BlockMask(block)
		base := block * logic.WordBits

		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > nf {
				hi = nf
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				e := engines[w]
				local := ndetLocal[w]
				for i := range local {
					local[i] = 0
				}
				for fi := lo; fi < hi; fi++ {
					det := e.propagate(fl.Faults[fi]) & mask
					if det == 0 {
						continue
					}
					r.DetCount[fi] += logic.Popcount(det)
					if r.FirstDet[fi] < 0 {
						r.FirstDet[fi] = base + lowestBit(det)
					}
					r.Det[fi].OrWord(block, det)
					for d := det; d != 0; d &= d - 1 {
						local[lowestBit(d)]++
					}
				}
			}(w, lo, hi)
		}
		wg.Wait()
		for w := 0; w < workers; w++ {
			for bit, cnt := range ndetLocal[w] {
				if cnt != 0 {
					r.Ndet[base+bit] += cnt
				}
			}
		}
		r.VectorsUsed = min(base+logic.WordBits, ps.Len())
	}
	r.Ndet = r.Ndet[:r.VectorsUsed]
	return r
}
