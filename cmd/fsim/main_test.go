package main

import "testing"

func TestRunModes(t *testing.T) {
	for _, mode := range []string{"drop", "nodrop", "ndetect"} {
		if err := run("c17", 64, 1, false, mode, 3, 0, false); err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
	}
}

func TestRunExhaustiveUncollapsed(t *testing.T) {
	if err := run("lion", 0, 1, true, "nodrop", 0, 0, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadMode(t *testing.T) {
	if err := run("c17", 8, 1, false, "bogus", 0, 0, false); err == nil {
		t.Fatal("expected error for unknown mode")
	}
}
