package fsim

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"github.com/eda-go/adifo/internal/circuit"
	"github.com/eda-go/adifo/internal/fault"
	"github.com/eda-go/adifo/internal/logic"
	"github.com/eda-go/adifo/internal/sim"
)

// Good holds precomputed good-machine value words for every 64-pattern
// block of one (circuit, pattern set) pair. Computing it once and
// sharing it read-only lets repeated fault-grading runs over the same
// inputs — and all workers inside one run — skip the good simulation
// entirely; the service registry caches Good values under LRU
// eviction. The storage stays 64-pattern-wide regardless of the kernel
// block width: wide runs gather lanes from it per superblock.
type Good struct {
	c      *circuit.Circuit
	ps     *logic.PatternSet
	blocks [][]uint64
}

// ComputeGood simulates the fault-free circuit against every block of
// ps and stores the per-gate value words. It compiles c first; use
// ComputeGoodCompiled when a compiled form is already at hand.
func ComputeGood(c *circuit.Circuit, ps *logic.PatternSet) *Good {
	return ComputeGoodCompiled(circuit.Compile(c), ps)
}

// ComputeGoodCompiled is ComputeGood over an existing compiled form.
func ComputeGoodCompiled(cc *circuit.Compiled, ps *logic.PatternSet) *Good {
	if ps.Inputs() != cc.NumInputs() {
		panic(fmt.Sprintf("fsim: pattern set has %d inputs, circuit has %d", ps.Inputs(), cc.NumInputs()))
	}
	gs := sim.NewCompiled(cc)
	g := &Good{c: cc.Circuit, ps: ps, blocks: make([][]uint64, ps.Blocks())}
	for b := range g.blocks {
		gs.SimulateBlock(ps, b)
		g.blocks[b] = append([]uint64(nil), gs.Values()...)
	}
	return g
}

// Circuit returns the circuit the values were computed on.
func (g *Good) Circuit() *circuit.Circuit { return g.c }

// Patterns returns the pattern set the values were computed against.
func (g *Good) Patterns() *logic.PatternSet { return g.ps }

// Block returns the per-gate good value words of block b. Callers must
// treat the slice as read-only.
func (g *Good) Block(b int) []uint64 { return g.blocks[b] }

// Bytes returns the approximate memory footprint of the stored
// values, for capacity planning and diagnostics (the registry's LRU
// bounds entry count, not bytes; size a cache with Bytes in mind).
func (g *Good) Bytes() int { return len(g.blocks) * g.c.NumGates() * 8 }

// Progress is a per-block snapshot of a running batch simulation,
// delivered at each block barrier.
type Progress struct {
	Block       int // index of the block just finished
	Blocks      int // total blocks in the pattern set
	VectorsUsed int // vectors simulated so far
	Detected    int // faults detected at least once so far
	Active      int // faults still active after this block's drops
}

// ParallelOptions configures RunParallelWith. The embedded Options
// select the dropping policy exactly as for the sequential Run.
type ParallelOptions struct {
	Options

	// Workers is the number of simulation goroutines; <= 0 means
	// GOMAXPROCS. The worker count never changes results, only speed.
	Workers int

	// BlockWidth overrides the kernel block width in patterns: 64
	// (scalar), 256 or 512. Zero picks the widest width the pattern
	// count justifies. Any other value panics. The width never changes
	// results, only speed; runs with StopAtCoverage > 0 always execute
	// at width 64 so the early stop triggers on exactly the same block
	// as the sequential reference.
	BlockWidth int

	// Compiled, when non-nil, supplies an existing compiled form of
	// fl.Circuit (the service registry caches one per netlist
	// fingerprint); it must match the circuit structurally. When nil
	// the circuit is compiled on entry.
	Compiled *circuit.Compiled

	// Good, when non-nil, supplies precomputed good-machine values for
	// (fl.Circuit, ps); it must have been computed on exactly that
	// pair. When nil the good machine is simulated on the fly.
	Good *Good

	// Progress, when non-nil, is called after every block barrier with
	// the run's state. It is called from the coordinating goroutine,
	// never concurrently. Wide kernels simulate several 64-pattern
	// blocks per barrier; their per-block events are delivered
	// back-to-back at the barrier, in block order.
	Progress func(Progress)
}

// RunParallel is Run in NoDrop mode with the per-fault cone
// re-simulation spread across worker goroutines. Kept as the
// historical entry point; it is RunParallelWith with default options.
func RunParallel(fl *fault.List, ps *logic.PatternSet, workers int) *Result {
	return RunParallelWith(fl, ps, ParallelOptions{Workers: workers})
}

// RunParallelWith simulates every fault of fl against ps under the
// given options with a pool of workers, in any of the three modes.
// Results are bit-for-bit identical to the sequential Run: workers
// simulate one block batch independently over disjoint shards of the
// active list, then synchronize at the barrier where detections are
// merged, per-vector ndet counters are summed and the shared active
// list is compacted (drop reconciliation). Dropping decisions are
// per-fault — a fault drops when its own detection count crosses the
// mode threshold, counted in vector order — so neither the worker
// shard layout, the active-list iteration order, nor the kernel block
// width changes which vectors count; only when the bookkeeping
// happens.
//
// fl is never mutated and may be shared (cached) across concurrent
// runs; each run carries its drop state in a private fault.ActiveSet.
//
// It is RunParallelCtx without cancellation.
func RunParallelWith(fl *fault.List, ps *logic.PatternSet, po ParallelOptions) *Result {
	r, _ := RunParallelCtx(context.Background(), fl, ps, po)
	return r
}

// RunParallelCtx is RunParallelWith with cooperative cancellation: ctx
// is polled at every barrier, before the workers are dispatched for
// the next block batch, so a cancelled run stops within one batch
// (64 patterns at the scalar width, up to 512 at the widest) and leaks
// no goroutines (workers are per-batch and always joined at the
// barrier). On cancellation it returns the partial result together
// with ctx.Err(); the error is nil on a completed run.
func RunParallelCtx(ctx context.Context, fl *fault.List, ps *logic.PatternSet, po ParallelOptions) (*Result, error) {
	c := fl.Circuit
	if ps.Inputs() != c.NumInputs() {
		panic("fsim: pattern set width mismatch")
	}
	if po.Mode == NDetect && po.N <= 0 {
		panic("fsim: NDetect mode requires Options.N > 0")
	}
	// The Good cache is keyed by deterministic (circuit, pattern spec)
	// keys, so content equality of the pattern sets is the caller's
	// contract; only the cheap structural mismatches are caught here.
	if po.Good != nil && (po.Good.c != c ||
		po.Good.ps.Len() != ps.Len() || po.Good.ps.Inputs() != ps.Inputs()) {
		panic("fsim: ParallelOptions.Good computed on a different circuit or pattern set")
	}
	cc := po.Compiled
	if cc == nil {
		cc = circuit.Compile(c)
	} else if cc.Circuit != c && cc.Fingerprint != c.Fingerprint() {
		// The compiled-form cache is shared per netlist fingerprint, so
		// a structurally identical circuit under a different pointer is
		// fine; anything else is a caller bug.
		panic("fsim: ParallelOptions.Compiled compiled from a different circuit")
	}
	switch pickLanes(po, ps) {
	case 4:
		return runParallel[circuit.W4](ctx, fl, ps, po, cc)
	case 8:
		return runParallel[circuit.W8](ctx, fl, ps, po, cc)
	default:
		return runParallel[circuit.W1](ctx, fl, ps, po, cc)
	}
}

// pickLanes maps the configured block width to a lane count. The
// automatic choice (BlockWidth 0) is mode-aware: NoDrop walks every
// fault's cone for every pattern, so the widest block the pattern
// count justifies amortizes the walk 4–8×; in the dropping modes most
// faults drop early and a wide block makes them pay full-width
// propagation for patterns they never reach — measured up to 2×
// slower on the large suite circuits — so they stay scalar unless the
// caller overrides.
func pickLanes(po ParallelOptions, ps *logic.PatternSet) int {
	lanes := 0
	switch po.BlockWidth {
	case 0:
	case 64:
		lanes = 1
	case 256:
		lanes = 4
	case 512:
		lanes = 8
	default:
		panic(fmt.Sprintf("fsim: BlockWidth %d invalid (want 0, 64, 256 or 512)", po.BlockWidth))
	}
	if po.StopAtCoverage > 0 {
		// The sequential reference checks the coverage stop per
		// 64-pattern block; running scalar keeps the stopping point
		// bit-identical.
		return 1
	}
	if lanes != 0 {
		return lanes
	}
	if po.Mode != NoDrop {
		return 1
	}
	switch {
	case ps.Len() >= 512:
		return 8
	case ps.Len() >= 256:
		return 4
	default:
		return 1
	}
}

// levelOrder returns the fault indices of fl ordered by the logic
// level of the fault site (ascending, ties in fault-index order):
// neighbouring shard positions then carry cones of similar depth,
// which evens out per-shard cost and keeps the workers' level-bucket
// walks on similar footing. Pure scheduling — results are unaffected.
func levelOrder(fl *fault.List, cc *circuit.Compiled) []int {
	cnt := make([]int, cc.MaxLevel+2)
	for _, f := range fl.Faults {
		cnt[cc.Level[f.Gate]+1]++
	}
	for l := 1; l < len(cnt); l++ {
		cnt[l] += cnt[l-1]
	}
	order := make([]int, len(fl.Faults))
	for i, f := range fl.Faults {
		lvl := cc.Level[f.Gate]
		order[cnt[lvl]] = i
		cnt[lvl]++
	}
	return order
}

// runParallel is the width-generic body of RunParallelCtx. One
// iteration of the outer loop processes a superblock of Lanes()
// 64-pattern blocks: the good machine is evaluated once for the whole
// superblock, each worker walks its shard of active faults exactly
// once, and per-fault accounting iterates the detection block's lanes
// in pattern order so dropping and n-detect truncation happen at
// precisely the same vector as in the scalar reference.
func runParallel[B circuit.Block[B]](ctx context.Context, fl *fault.List, ps *logic.PatternSet, po ParallelOptions, cc *circuit.Compiled) (*Result, error) {
	var zb B
	lanes := zb.Lanes()
	nf := fl.Len()
	workers := po.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nf {
		workers = nf
	}
	if workers < 1 {
		workers = 1
	}

	r := &Result{
		List:     fl,
		DetCount: make([]int, nf),
		FirstDet: make([]int, nf),
		Ndet:     make([]int, ps.Len()),
	}
	for i := range r.FirstDet {
		r.FirstDet[i] = -1
	}
	if po.Mode == NoDrop || po.Mode == NDetect {
		r.Det = make([]*logic.Bitset, nf)
		for i := range r.Det {
			r.Det[i] = logic.NewBitset(ps.Len())
		}
	}

	// Shared good-value arena for the current superblock: the
	// coordinator refills it between barriers, all worker kernels read
	// it concurrently. Unpopulated tail lanes of the last superblock
	// stay zero — lanes are independent, so their garbage results are
	// never read (the accounting loop stops at the last real block).
	goodVals := make([]B, cc.NumGates())
	var pi, scratch []B
	if po.Good == nil {
		pi = make([]B, ps.Inputs())
		scratch = make([]B, cc.MaxFanin)
	}
	kerns := make([]*kern[B], workers)
	for w := range kerns {
		kerns[w] = newKern[B](cc, false)
		kerns[w].good = goodVals
	}

	// Per-worker accumulators, merged at the barrier. ndet is the only
	// cross-fault shared counter; the per-lane first-detection and drop
	// counts reconstruct the per-64-block progress stream, and maxDrop
	// tracks the latest block with a drop for the early-exit
	// VectorsUsed (monotone, so it needs no per-batch reset).
	ndetLocal := make([][]int, workers)
	newDetLane := make([][]int, workers)
	dropLane := make([][]int, workers)
	maxDrop := make([]int, workers)
	for w := 0; w < workers; w++ {
		ndetLocal[w] = make([]int, lanes*logic.WordBits)
		newDetLane[w] = make([]int, lanes)
		dropLane[w] = make([]int, lanes)
	}

	active := fault.NewActiveSetOrdered(nf, levelOrder(fl, cc))
	keep := make([]bool, nf) // keep[p] decided by position in the active list
	detected := 0

	blocks := ps.Blocks()
	var wg sync.WaitGroup
	for firstBlock := 0; firstBlock < blocks; firstBlock += lanes {
		if err := ctx.Err(); err != nil {
			r.Ndet = r.Ndet[:r.VectorsUsed]
			return r, err
		}
		nLanes := lanes
		if firstBlock+nLanes > blocks {
			nLanes = blocks - firstBlock
		}

		// Fill the shared good arena: gather lanes from the 64-wide
		// cache, or simulate the whole superblock in one wide pass.
		if po.Good != nil {
			for l := 0; l < nLanes; l++ {
				blk := po.Good.Block(firstBlock + l)
				if l == 0 {
					for gi, w := range blk {
						goodVals[gi] = zb.SetLane(0, w)
					}
				} else {
					for gi, w := range blk {
						goodVals[gi] = goodVals[gi].SetLane(l, w)
					}
				}
			}
		} else {
			for i := range pi {
				v := zb
				for l := 0; l < nLanes; l++ {
					v = v.SetLane(l, ps.Word(i, firstBlock+l))
				}
				pi[i] = v
			}
			simGoodInto(cc, pi, goodVals, scratch)
		}

		act := active.Indices()
		n := len(act)
		chunk := (n + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				k := kerns[w]
				local := ndetLocal[w]
				ndl := newDetLane[w]
				dl := dropLane[w]
				for p := lo; p < hi; p++ {
					fi := act[p]
					det := k.propagate(fl.Faults[fi])
					kp := true
					for l := 0; l < nLanes; l++ {
						block := firstBlock + l
						d := det.Lane(l) & ps.BlockMask(block)
						if po.Mode == NDetect && d != 0 {
							// Count detections in vector order and stop
							// exactly at the n-th, so DetCount and ndet
							// are block-size independent (same rule as
							// Run).
							d = keepLowestBits(d, po.N-r.DetCount[fi])
						}
						if d != 0 {
							r.DetCount[fi] += logic.Popcount(d)
							if r.FirstDet[fi] < 0 {
								r.FirstDet[fi] = block*logic.WordBits + lowestBit(d)
								ndl[l]++
							}
							if r.Det != nil {
								r.Det[fi].OrWord(block, d)
							}
							lb := l * logic.WordBits
							for dd := d; dd != 0; dd &= dd - 1 {
								local[lb+lowestBit(dd)]++
							}
						}
						dropped := false
						switch po.Mode {
						case Drop:
							dropped = r.DetCount[fi] > 0
						case NDetect:
							dropped = r.DetCount[fi] >= po.N
						}
						if dropped {
							// Later lanes are vectors this fault never
							// reaches in the sequential reference.
							kp = false
							dl[l]++
							if block > maxDrop[w] {
								maxDrop[w] = block
							}
							break
						}
					}
					keep[p] = kp
				}
			}(w, lo, hi)
		}
		wg.Wait()

		// Barrier: merge (and zero) the per-worker counters and
		// reconcile drops by compacting the shared list. Zeroing
		// happens here rather than in the workers because a worker
		// whose shard is empty this batch never runs, yet its
		// accumulator is still merged.
		vecBase := firstBlock * logic.WordBits
		for w := 0; w < workers; w++ {
			local := ndetLocal[w]
			for idx, cnt := range local {
				if cnt != 0 {
					r.Ndet[vecBase+idx] += cnt
					local[idx] = 0
				}
			}
		}
		if po.Mode != NoDrop {
			active.Compact(keep[:n])
		}

		// On an emptying batch the run used exactly the vectors up to
		// the last dropping block, as the sequential reference would
		// have stopped there; no fault contributes anything past its
		// own drop lane, so later lanes of this superblock are unused.
		emptied := po.Mode != NoDrop && active.Len() == 0
		lastLane := nLanes - 1
		if emptied {
			m := 0
			for w := 0; w < workers; w++ {
				if maxDrop[w] > m {
					m = maxDrop[w]
				}
			}
			lastLane = m - firstBlock
		}
		r.VectorsUsed = min((firstBlock+lastLane+1)*logic.WordBits, ps.Len())

		// Reconstruct the per-64-block progress stream from the
		// per-lane counters (and zero them for the next batch).
		dropsSoFar := 0
		for l := 0; l < nLanes; l++ {
			for w := 0; w < workers; w++ {
				detected += newDetLane[w][l]
				dropsSoFar += dropLane[w][l]
				newDetLane[w][l] = 0
				dropLane[w][l] = 0
			}
			if po.Progress != nil && l <= lastLane {
				po.Progress(Progress{
					Block:       firstBlock + l,
					Blocks:      blocks,
					VectorsUsed: min((firstBlock+l+1)*logic.WordBits, ps.Len()),
					Detected:    detected,
					Active:      n - dropsSoFar,
				})
			}
		}

		if po.StopAtCoverage > 0 &&
			float64(detected) >= po.StopAtCoverage*float64(nf) {
			break
		}
		if emptied {
			break
		}
	}
	r.Ndet = r.Ndet[:r.VectorsUsed]
	return r, nil
}
