// Steep coverage curves: the paper's second application (Section 1,
// application 2). A test set whose early vectors detect most faults
// lets you truncate the set — to fit tester memory or cut test time —
// while giving up almost no coverage, and detects defective chips
// sooner.
//
// This example generates test sets for one circuit under three
// orders, plots the coverage curves (the paper's Figure 1), and shows
// what happens when the last 25% of each test set is discarded.
//
// Run with:
//
//	go run ./examples/steepcurve
package main

import (
	"fmt"
	"log"

	"github.com/eda-go/adifo/internal/adi"
	"github.com/eda-go/adifo/internal/experiments"
	"github.com/eda-go/adifo/internal/gen"
	"github.com/eda-go/adifo/internal/logic"
	"github.com/eda-go/adifo/internal/reorder"
	"github.com/eda-go/adifo/internal/report"
	"github.com/eda-go/adifo/internal/tgen"
)

func main() {
	sc, ok := gen.SuiteByName("irs344")
	if !ok {
		log.Fatal("suite circuit missing")
	}
	setup, err := experiments.Prepare(sc)
	if err != nil {
		log.Fatal(err)
	}

	kinds := []adi.OrderKind{adi.Orig, adi.Dynm, adi.Dynm0}
	markers := map[adi.OrderKind]byte{adi.Orig: 'o', adi.Dynm: 'd', adi.Dynm0: 'z'}
	curves := map[adi.OrderKind][]int{}
	results := map[adi.OrderKind]*tgen.Result{}
	for _, kind := range kinds {
		res := tgen.Generate(setup.Faults, setup.Index.Order(kind), tgen.Options{
			FillSeed: experiments.FillSeed,
			Validate: true,
		})
		curves[kind] = res.Curve
		results[kind] = res
	}

	var series []report.Series
	for _, kind := range kinds {
		xs, ys := tgen.CoveragePoints(curves[kind])
		series = append(series, report.Series{
			Marker: markers[kind], Label: kind.String(), X: xs, Y: ys,
		})
	}
	fmt.Println(report.Plot(
		fmt.Sprintf("Fault coverage curves for %s", setup.C.Name), 64, 20, series...))

	tb := report.NewTable("Truncation: coverage after dropping the last 25% of tests",
		"order", "tests", "AVE", "full cov%", "75% cov%")
	for _, kind := range kinds {
		res := results[kind]
		curve := res.Curve
		keep := len(curve) * 3 / 4
		if keep == 0 {
			keep = 1
		}
		total := float64(setup.Faults.Len())
		tb.AddRow(kind.String(), len(curve), res.AVE(),
			100*float64(curve[len(curve)-1])/total,
			100*float64(curve[keep-1])/total)
	}
	fmt.Println(tb.String())
	fmt.Println("A lower AVE means a faulty chip is detected after fewer tests;")
	fmt.Println("the dynm order loses the least coverage when the tail is dropped.")

	// Comparison with static test-set reordering (the method of the
	// paper's reference [7]): greedily reorder each generated test
	// set so the most-detecting vectors come first. The paper's
	// argument is that ADI-ordered generation already yields a steep
	// curve without this extra pass — and that reordering an
	// ADI-generated set is steeper still than reordering an
	// arbitrarily generated one.
	tb2 := report.NewTable("Static reordering (Lin et al., the paper's [7]) on top of each order",
		"order", "AVE as generated", "AVE after reorder")
	for _, kind := range kinds {
		res := results[kind]
		ps := logic.NewPatternSet(setup.C.NumInputs())
		for _, v := range res.Tests {
			ps.Append(v)
		}
		rr := reorder.Greedy(setup.Faults, ps)
		tb2.AddRow(kind.String(), res.AVE(), tgen.AVE(rr.Curve))
	}
	fmt.Println(tb2.String())
}
