package cluster

import (
	"context"
	"strings"
	"testing"

	"github.com/eda-go/adifo/internal/service"
)

// TestClusterCallerIdempotencyKey: a caller-supplied idempotency key
// dedupes at the coordinator — the second submit answers with the
// first cluster job instead of fanning out again — and the key is
// consumed rather than forwarded (every sub-job carries a
// coordinator-minted shard key, so backends never collapse distinct
// shards into one sub-job).
func TestClusterCallerIdempotencyKey(t *testing.T) {
	urls, svcs := newBackends(t, 2)
	co, err := New(urls, Options{Logger: quiet})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	ctx := context.Background()

	spec := service.JobSpec{
		Circuit:        "c17",
		Mode:           "drop",
		IdempotencyKey: "caller-1",
		Patterns:       service.PatternSpec{Random: &service.RandomSpec{N: 256, Seed: 5}},
	}
	id1, err := co.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := co.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatalf("caller key did not dedupe: %s vs %s", id1, id2)
	}
	if _, err := co.Stream(ctx, id1, nil); err != nil {
		t.Fatal(err)
	}

	// The fan-out ran exactly once: one sub-job per shard across the
	// backends (the second submit answered from the dedupe map and
	// placed nothing), and every backend pulled at least one shard.
	shardCount := 4 * len(svcs)
	total := 0
	for i, svc := range svcs {
		jobs := svc.Jobs()
		total += len(jobs)
		if len(jobs) == 0 {
			t.Errorf("backend %d pulled no sub-jobs", i)
		}
	}
	if total != shardCount {
		t.Fatalf("cluster placed %d sub-jobs for one logical %d-shard job", total, shardCount)
	}

	// The shard keys are coordinator-minted and distinct per shard.
	shards, err := co.Shards(id1)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, sh := range shards {
		key := co.shardKey(id1, sh.Index, sh.Count, 0)
		if !strings.HasPrefix(key, "c-"+co.nonce+"-") {
			t.Errorf("shard key %q not scoped to the coordinator nonce", key)
		}
		if seen[key] {
			t.Errorf("duplicate shard key %q", key)
		}
		seen[key] = true
	}
}
