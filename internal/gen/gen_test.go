package gen

import (
	"testing"

	"github.com/eda-go/adifo/internal/circuit"
	"github.com/eda-go/adifo/internal/fault"
	"github.com/eda-go/adifo/internal/fsim"
	"github.com/eda-go/adifo/internal/irr"
	"github.com/eda-go/adifo/internal/logic"
	"github.com/eda-go/adifo/internal/prng"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Name: "d", Inputs: 12, Gates: 80, Seed: 5}
	a := circuit.BenchString(Generate(cfg))
	b := circuit.BenchString(Generate(cfg))
	if a != b {
		t.Fatal("same config produced different circuits")
	}
	cfg2 := cfg
	cfg2.Seed = 6
	if a == circuit.BenchString(Generate(cfg2)) {
		t.Fatal("different seeds produced identical circuits")
	}
}

func TestGenerateStructure(t *testing.T) {
	cfg := Config{Name: "s", Inputs: 16, Gates: 120, Seed: 9}
	c := Generate(cfg)
	st := c.ComputeStats()
	if st.Inputs != 16 || st.Gates != 120 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Outputs == 0 {
		t.Fatal("no outputs")
	}
	if st.Levels < 4 {
		t.Fatalf("circuit too shallow: %d levels", st.Levels)
	}
	// Every PI must drive something.
	for _, pi := range c.Inputs {
		if len(c.Fanout[pi]) == 0 {
			t.Fatalf("floating primary input %s", c.Gates[pi].Name)
		}
	}
	// Every non-output gate must have fanout.
	for gi := range c.Gates {
		if c.Gates[gi].Type == circuit.PI {
			continue
		}
		if len(c.Fanout[gi]) == 0 && !c.IsOutput(gi) {
			t.Fatalf("dangling gate %s", c.Gates[gi].Name)
		}
	}
}

func TestGeneratePanicsOnDegenerate(t *testing.T) {
	for _, cfg := range []Config{
		{Inputs: 1, Gates: 10},
		{Inputs: 5, Gates: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %+v did not panic", cfg)
				}
			}()
			Generate(cfg)
		}()
	}
}

func TestRandomPatternCoverageRegime(t *testing.T) {
	// The irredundant suite circuits must reach >= 90% coverage of the
	// collapsed fault set within 10k random patterns but NOT within
	// the first 32 — hard faults must exist, matching the regime the
	// paper's vector-set sizing relies on (Section 4). The raw
	// generator output is allowed to fall short: its undetectable
	// faults are removed by the irr pass before any experiment runs.
	for _, sc := range SmallSuite() {
		c, _, err := irr.Make(sc.Build(), irr.Options{})
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		fl := fault.CollapsedUniverse(c)
		ps := logic.RandomPatterns(c.NumInputs(), 10000, prng.New(77))
		res := fsim.Run(fl, ps, fsim.Options{Mode: fsim.Drop, StopAtCoverage: 0.90})
		if res.Coverage() < 0.90 {
			t.Errorf("%s: 10k random patterns reach only %.1f%% coverage",
				sc.Name, 100*res.Coverage())
		}
		early := fsim.Run(fl, ps.Slice(32), fsim.Options{Mode: fsim.Drop})
		if early.Coverage() >= 0.999 {
			t.Errorf("%s: full coverage after 32 patterns — no hard faults", sc.Name)
		}
	}
}

func TestPaperSuiteShape(t *testing.T) {
	suite := PaperSuite()
	if len(suite) != 14 {
		t.Fatalf("suite has %d circuits, want 14", len(suite))
	}
	wantInputs := map[string]int{
		"irs208": 19, "irs298": 17, "irs344": 24, "irs382": 24,
		"irs400": 24, "irs420": 35, "irs510": 25, "irs526": 24,
		"irs641": 54, "irs820": 23, "irs953": 45, "irs1196": 32,
		"irs5378": 214, "irs13207": 699,
	}
	for _, sc := range suite {
		if wantInputs[sc.Name] != sc.Inputs {
			t.Errorf("%s: inputs %d, paper says %d", sc.Name, sc.Inputs, wantInputs[sc.Name])
		}
	}
	// incr0 omitted for the two largest, as in the paper's Table 5.
	for _, sc := range suite {
		wantSkip := sc.Name == "irs5378" || sc.Name == "irs13207"
		if sc.SkipIncr0 != wantSkip {
			t.Errorf("%s: SkipIncr0 = %v", sc.Name, sc.SkipIncr0)
		}
	}
}

func TestSuiteByName(t *testing.T) {
	sc, ok := SuiteByName("irs420")
	if !ok || sc.Inputs != 35 {
		t.Fatalf("SuiteByName(irs420) = %+v, %v", sc, ok)
	}
	if _, ok := SuiteByName("nope"); ok {
		t.Fatal("unknown name resolved")
	}
}

func TestSuiteBuildsParseable(t *testing.T) {
	// Round-trip each small suite member through the .bench format.
	for _, sc := range SmallSuite() {
		c := sc.Build()
		rt, err := circuit.ParseBenchString(sc.Name, circuit.BenchString(c))
		if err != nil {
			t.Fatalf("%s: round trip failed: %v", sc.Name, err)
		}
		if rt.NumGates() != c.NumGates() {
			t.Fatalf("%s: round trip changed gate count", sc.Name)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{Inputs: 4, Gates: 4}.withDefaults()
	if cfg.XorFrac == 0 || cfg.InvFrac == 0 || cfg.WideFrac == 0 || cfg.DupFrac == 0 || cfg.ObserveFrac == 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}
