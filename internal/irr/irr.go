// Package irr makes circuits irredundant, mirroring the preprocessing
// the paper applies to its benchmarks ("we consider irredundant
// versions of their combinational logic, referred to as ircirc",
// Section 4).
//
// The classic transformation is used: if line L stuck-at-v is
// undetectable, the circuit computes the same function with L replaced
// by the constant v. The pass therefore alternates
//
//  1. classify every collapsed fault with the PODEM generator,
//  2. replace the lines of undetectable faults with constants,
//  3. propagate the constants (gate simplification) and prune logic
//     that no longer reaches an output,
//
// until no undetectable fault remains or the iteration budget is
// exhausted. Undetectable faults are applied in batch per iteration;
// batch application of interacting redundancies may perturb the
// circuit function, which is acceptable here — the suite circuits are
// synthetic stand-ins, and what the experiments require is a valid
// *irredundant* netlist, which the fixpoint iteration guarantees.
package irr

import (
	"fmt"

	"github.com/eda-go/adifo/internal/atpg"
	"github.com/eda-go/adifo/internal/circuit"
	"github.com/eda-go/adifo/internal/fault"
	"github.com/eda-go/adifo/internal/fsim"
	"github.com/eda-go/adifo/internal/logic"
	"github.com/eda-go/adifo/internal/prng"
)

// Options bounds the pass.
type Options struct {
	// MaxIters bounds the classify/rewrite iterations (default 25).
	MaxIters int
	// BacktrackLimit is handed to the ATPG (0 = its default). Faults
	// aborted by the ATPG are conservatively treated as detectable.
	BacktrackLimit int
}

// Stats reports what the pass did.
type Stats struct {
	// Iterations actually executed.
	Iterations int
	// RedundantRemoved counts the undetectable faults whose lines
	// were constant-replaced, summed over iterations.
	RedundantRemoved int
	// GatesBefore/GatesAfter are logic gate counts (PIs excluded).
	GatesBefore, GatesAfter int
	// Clean reports whether the final circuit was verified to have no
	// undetectable collapsed fault (it is false only when MaxIters ran
	// out or the ATPG aborted on some fault).
	Clean bool
}

// Make returns an irredundant version of c together with pass
// statistics. The input circuit is not modified. An error is returned
// only when the circuit degenerates (every output constant).
func Make(c *circuit.Circuit, opts Options) (*circuit.Circuit, Stats, error) {
	if opts.MaxIters <= 0 {
		opts.MaxIters = 25
	}
	if opts.BacktrackLimit <= 0 {
		// Redundancy proofs must exhaust the decision tree, which can
		// take far more backtracks than finding a test; the default
		// ATPG budget regularly aborts on random-resistant redundant
		// faults and would leave the circuit unclean. The budget is a
		// compromise: large enough to settle almost every fault on
		// the suite, small enough that a pathological proof cannot
		// stall the pass (a fault it cannot settle is conservatively
		// kept, reported via Stats.Clean=false).
		opts.BacktrackLimit = 10000
	}
	st := Stats{GatesBefore: c.ComputeStats().Gates}

	cur := c
	for iter := 0; iter < opts.MaxIters; iter++ {
		st.Iterations = iter + 1
		redundant, aborted := classify(cur, opts.BacktrackLimit)
		if len(redundant) == 0 {
			st.Clean = !aborted
			break
		}
		st.RedundantRemoved += len(redundant)
		next, err := applyConstants(cur, redundant)
		if err != nil {
			return nil, st, err
		}
		cur = next
	}
	st.GatesAfter = cur.ComputeStats().Gates
	return cur, st, nil
}

// classify returns the undetectable collapsed faults of c, plus
// whether the ATPG aborted on any fault. Random-pattern fault
// simulation prefilters the universe — a fault detected by simulation
// is trivially not redundant — so the expensive PODEM proof runs only
// on the small random-resistant remainder.
func classify(c *circuit.Circuit, backtrackLimit int) ([]fault.Fault, bool) {
	fl := fault.CollapsedUniverse(c)
	ps := logic.RandomPatterns(c.NumInputs(), prefilterPatterns, prng.New(prefilterSeed))
	res := fsim.Run(fl, ps, fsim.Options{Mode: fsim.Drop})

	g := atpg.New(c, atpg.Options{BacktrackLimit: backtrackLimit})
	var redundant []fault.Fault
	aborted := false
	for fi, f := range fl.Faults {
		if res.Detected(fi) {
			continue
		}
		switch g.Generate(f).Status {
		case atpg.Redundant:
			redundant = append(redundant, f)
		case atpg.Aborted:
			aborted = true
		}
	}
	return redundant, aborted
}

const (
	// prefilterPatterns is the random-simulation budget used to screen
	// obviously detectable faults before invoking the ATPG. Simulation
	// is orders of magnitude cheaper than a PODEM proof, so a generous
	// budget pays for itself by shrinking the ATPG workload.
	prefilterPatterns = 16384
	// prefilterSeed fixes the screening patterns; the final result is
	// seed-independent (the ATPG is the arbiter), the seed only
	// affects how much work the ATPG is left with.
	prefilterSeed = 0x1bd4
)

// constUnknown marks a line with no constant forced on it.
const constUnknown = int8(-1)

// applyConstants rewrites c with each redundant fault's line tied to
// its stuck value, simplifies, and prunes dead logic.
func applyConstants(c *circuit.Circuit, redundant []fault.Fault) (*circuit.Circuit, error) {
	n := c.NumGates()
	stemConst := make([]int8, n)
	for i := range stemConst {
		stemConst[i] = constUnknown
	}
	branchConst := make(map[circuit.Conn]int8)
	for _, f := range redundant {
		if f.Pin == fault.StemPin {
			if stemConst[f.Gate] == constUnknown {
				stemConst[f.Gate] = int8(f.SA)
			}
			// Both polarities redundant: the line is entirely
			// unobservable; either constant is valid, keep the first.
		} else {
			conn := circuit.Conn{Gate: f.Gate, Pin: f.Pin}
			if _, dup := branchConst[conn]; !dup {
				branchConst[conn] = int8(f.SA)
			}
		}
	}

	// Forward simplification. For every original gate we compute
	// either a constant value or a simplified (type, live fanin)
	// form referring to original gate ids.
	type simp struct {
		isConst bool
		val     int8
		typ     circuit.GateType
		fanin   []int
	}
	out := make([]simp, n)

	for _, gi := range c.Topo {
		g := &c.Gates[gi]
		if g.Type == circuit.PI {
			if stemConst[gi] != constUnknown {
				out[gi] = simp{isConst: true, val: stemConst[gi]}
			} else {
				out[gi] = simp{typ: circuit.PI}
			}
			continue
		}
		// Effective inputs after branch and upstream stem constants.
		var live []int
		var consts []int8
		for pin, drv := range g.Fanin {
			if v, ok := branchConst[circuit.Conn{Gate: gi, Pin: pin}]; ok {
				consts = append(consts, v)
				continue
			}
			if out[drv].isConst {
				consts = append(consts, out[drv].val)
				continue
			}
			live = append(live, drv)
		}
		s := simplifyGate(g.Type, live, consts)
		if stemConst[gi] != constUnknown {
			// The stem constant dominates whatever the gate computes.
			s = simp{isConst: true, val: stemConst[gi]}
		}
		out[gi] = simp{isConst: s.isConst, val: s.val, typ: s.typ, fanin: s.fanin}
	}

	// Live outputs.
	var liveOutputs []int
	for _, o := range c.Outputs {
		if !out[o].isConst {
			liveOutputs = append(liveOutputs, o)
		}
	}
	if len(liveOutputs) == 0 {
		return nil, fmt.Errorf("irr: circuit %q degenerated to constants", c.Name)
	}

	// Reachability from live outputs through live fanins.
	keep := make([]bool, n)
	stack := append([]int(nil), liveOutputs...)
	for len(stack) > 0 {
		gi := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if keep[gi] {
			continue
		}
		keep[gi] = true
		for _, f := range out[gi].fanin {
			if !keep[f] {
				stack = append(stack, f)
			}
		}
	}

	// Rebuild. Primary inputs are preserved even when they became
	// unobservable (floating), except that fully constant PIs are
	// dropped together with their name — a constant input is not an
	// input. Keeping floating PIs would reintroduce undetectable stem
	// faults, so they are dropped as well; the suite seeds are chosen
	// so this does not occur on the shipped benchmarks (asserted by
	// tests).
	nb := circuit.NewBuilder(c.Name)
	remap := make([]int, n)
	for i := range remap {
		remap[i] = -1
	}
	for _, gi := range c.Topo {
		if !keep[gi] {
			continue
		}
		s := out[gi]
		if s.typ == circuit.PI {
			remap[gi] = nb.AddInput(c.Gates[gi].Name)
			continue
		}
		fanin := make([]int, len(s.fanin))
		for k, f := range s.fanin {
			if remap[f] < 0 {
				return nil, fmt.Errorf("irr: internal error: gate %q uses pruned fanin", c.Gates[gi].Name)
			}
			fanin[k] = remap[f]
		}
		remap[gi] = nb.AddGate(c.Gates[gi].Name, s.typ, fanin...)
	}
	for _, o := range liveOutputs {
		nb.MarkOutput(remap[o])
	}
	return nb.Freeze()
}

// simplifyGate folds constant inputs into the gate function. live
// holds the original ids of non-constant fanins; consts the constant
// input values. It returns either a constant or a (possibly
// retyped) gate over the live fanins.
func simplifyGate(t circuit.GateType, live []int, consts []int8) (s struct {
	isConst bool
	val     int8
	typ     circuit.GateType
	fanin   []int
}) {
	gate := func(ty circuit.GateType, fanin []int) {
		s.typ, s.fanin = ty, fanin
	}
	constant := func(v int8) {
		s.isConst, s.val = true, v
	}

	switch t {
	case circuit.Buf, circuit.Not:
		inv := t == circuit.Not
		if len(consts) == 1 {
			v := consts[0]
			if inv {
				v = 1 - v
			}
			constant(v)
			return
		}
		gate(t, live)
		return

	case circuit.And, circuit.Nand, circuit.Or, circuit.Nor:
		andLike := t == circuit.And || t == circuit.Nand
		inverted := t == circuit.Nand || t == circuit.Nor
		ctrl := int8(0) // controlling constant for AND-like
		if !andLike {
			ctrl = 1
		}
		for _, v := range consts {
			if v == ctrl {
				outv := ctrl
				if inverted {
					outv = 1 - outv
				}
				constant(outv)
				return
			}
		}
		// Remaining constants are all non-controlling: drop them.
		switch len(live) {
		case 0:
			// Identity element result: AND()→1, OR()→0, inverted for
			// NAND/NOR.
			outv := int8(1)
			if !andLike {
				outv = 0
			}
			if inverted {
				outv = 1 - outv
			}
			constant(outv)
		case 1:
			if inverted {
				gate(circuit.Not, live)
			} else {
				gate(circuit.Buf, live)
			}
		default:
			gate(t, live)
		}
		return

	case circuit.Xor, circuit.Xnor:
		parity := int8(0)
		if t == circuit.Xnor {
			parity = 1
		}
		for _, v := range consts {
			parity ^= v
		}
		switch len(live) {
		case 0:
			constant(parity)
		case 1:
			if parity == 1 {
				gate(circuit.Not, live)
			} else {
				gate(circuit.Buf, live)
			}
		default:
			if parity == 1 {
				gate(circuit.Xnor, live)
			} else {
				gate(circuit.Xor, live)
			}
		}
		return
	}
	panic(fmt.Sprintf("irr: simplify %v", t))
}
