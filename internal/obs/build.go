package obs

import "runtime"

// Version is the stack's build version, surfaced by `adifod -version`,
// the adifo_build_info metric and the /v1/stats payload. Bumped once
// per released change set.
const Version = "0.7.0"

// GoVersion returns the toolchain that built the binary, the second
// label of adifo_build_info.
func GoVersion() string { return runtime.Version() }
