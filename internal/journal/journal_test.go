package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func testRecord(i int) Record {
	return Record{
		Type:   TypeSubmitted,
		Job:    "j" + string(rune('0'+i%10)),
		Kind:   "grade",
		Tenant: "acme",
		Key:    "k",
		Spec:   json.RawMessage(`{"circuit":"c17","mode":"nodrop","patterns":{"exhaustive":true}}`),
		At:     int64(1000 + i),
	}
}

func replayAll(t *testing.T, dir string) ([]Record, ReplayResult) {
	t.Helper()
	var recs []Record
	res, err := Replay(dir, func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs, res
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]Record, 0, 20)
	for i := 0; i < 20; i++ {
		r := testRecord(i)
		if err := j.Append(r); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		want = append(want, r)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, res := replayAll(t, dir)
	if res.Truncated {
		t.Fatal("clean log reported truncated")
	}
	if res.Records != len(want) {
		t.Fatalf("Records = %d, want %d", res.Records, len(want))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed records differ:\ngot  %+v\nwant %+v", got, want)
	}
	st := j.Stats()
	if st.Appends != 20 || st.Errors != 0 {
		t.Fatalf("Stats = %+v, want 20 appends, 0 errors", st)
	}
}

func TestConcurrentAppendDurable(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{}) // real fsync: exercise group commit
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := j.Append(testRecord(i)); err != nil {
				t.Errorf("Append: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, res := replayAll(t, dir)
	if len(recs) != n || res.Truncated {
		t.Fatalf("replayed %d records (truncated=%v), want %d clean", len(recs), res.Truncated, n)
	}
	st := j.Stats()
	if st.Syncs == 0 {
		t.Fatal("no fsyncs recorded")
	}
	if st.Syncs > st.Appends {
		t.Fatalf("more syncs (%d) than appends (%d): group commit not batching", st.Syncs, st.Appends)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{NoSync: true, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	const n = 30
	for i := 0; i < n; i++ {
		if err := j.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("got %d segments, want rotation to produce several", len(segs))
	}
	recs, res := replayAll(t, dir)
	if len(recs) != n || res.Truncated {
		t.Fatalf("replayed %d records (truncated=%v) across %d segments, want %d clean",
			len(recs), res.Truncated, res.Segments, n)
	}
	if j.Stats().Rotations == 0 {
		t.Fatal("no rotations counted")
	}
}

func TestReopenStartsNewSegment(t *testing.T) {
	dir := t.TempDir()
	j1, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := j1.Append(testRecord(0)); err != nil {
		t.Fatal(err)
	}
	// No Close: simulate a crash. Reopen must not touch the old
	// segment.
	j2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if j2.Stats().Segment <= j1.Stats().Segment {
		t.Fatalf("reopen segment %d not after crashed segment %d",
			j2.Stats().Segment, j1.Stats().Segment)
	}
	if err := j2.Append(testRecord(1)); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	recs, _ := replayAll(t, dir)
	if len(recs) != 2 {
		t.Fatalf("replayed %d records across reopen, want 2", len(recs))
	}
}

// TestTruncatedTail chops bytes off the final segment and checks
// replay keeps the whole prefix and stops cleanly.
func TestTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := j.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	segs, _ := segments(dir)
	path := segs[len(segs)-1].path
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation point strictly inside the last record's frame
	// must yield exactly the 4-record prefix (removing the whole frame
	// is a clean log, not a torn one).
	frame, _ := EncodeFrame(testRecord(4))
	for cut := 1; cut < len(frame); cut++ {
		if err := os.WriteFile(path, full[:len(full)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		recs, res := replayAll(t, dir)
		if len(recs) != 4 {
			t.Fatalf("cut %d: replayed %d records, want 4", cut, len(recs))
		}
		if !res.Truncated {
			t.Fatalf("cut %d: truncation not reported", cut)
		}
	}
}

// TestCorruptTail flips a payload byte of the last record: the CRC
// must reject it and replay keeps the prefix.
func TestCorruptTail(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	segs, _ := segments(dir)
	path := segs[0].path
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, res := replayAll(t, dir)
	if len(recs) != 2 || !res.Truncated {
		t.Fatalf("replayed %d records (truncated=%v), want 2 truncated", len(recs), res.Truncated)
	}
}

// TestOversizedLengthPrefix writes a frame header claiming a payload
// beyond MaxRecordBytes: the reader must treat it as corruption, not
// attempt the allocation.
func TestOversizedLengthPrefix(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(dir, Options{NoSync: true})
	j.Append(testRecord(0))
	j.Close()
	segs, _ := segments(dir)
	path := segs[0].path
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], MaxRecordBytes+1)
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	f.Write(hdr[:])
	f.Close()
	recs, res := replayAll(t, dir)
	if len(recs) != 1 || !res.Truncated {
		t.Fatalf("replayed %d records (truncated=%v), want 1 truncated", len(recs), res.Truncated)
	}
}

func TestReplayMissingDirIsEmpty(t *testing.T) {
	res, err := Replay(filepath.Join(t.TempDir(), "nope"), func(Record) error {
		t.Fatal("fn called on empty log")
		return nil
	})
	if err != nil || res.Records != 0 {
		t.Fatalf("Replay(missing) = %+v, %v; want empty, nil", res, err)
	}
}

func TestReplayFnErrorPropagates(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(dir, Options{NoSync: true})
	j.Append(testRecord(0))
	j.Close()
	boom := errors.New("boom")
	_, err := Replay(dir, func(Record) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("Replay fn error = %v, want %v", err, boom)
	}
}

func TestAppendAfterClose(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(dir, Options{NoSync: true})
	j.Close()
	if err := j.Append(testRecord(0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
}

func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	j.Append(testRecord(0))
	j.Close()
	recs, _ := replayAll(t, dir)
	if len(recs) != 1 {
		t.Fatalf("replayed %d records with a foreign file present, want 1", len(recs))
	}
}

func TestReaderStopsNotPanics(t *testing.T) {
	// Arbitrary garbage through the frame reader: never panic, always
	// terminate with EOF or ErrTruncated.
	inputs := []string{
		"", "x", strings.Repeat("\x00", 7), strings.Repeat("\xff", 64),
		"\x04\x00\x00\x00\x00\x00\x00\x00abcd",
	}
	for _, in := range inputs {
		r := NewReader(strings.NewReader(in))
		for {
			_, err := r.Next()
			if err == io.EOF || errors.Is(err, ErrTruncated) {
				break
			}
			if err != nil {
				t.Fatalf("input %q: unexpected error %v", in, err)
			}
		}
	}
}
