package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/eda-go/adifo/internal/obs"
	"github.com/eda-go/adifo/internal/obs/trace"
)

// TestHTTPTraceEndToEnd drives one grade job over the wire with a
// caller-minted traceparent and checks the whole trace surface: the
// id is visible on status and result, the flight recorder completes
// one trace whose tree is the job root with one child span per Timing
// phase, and /debug/traces serves it.
func TestHTTPTraceEndToEnd(t *testing.T) {
	s := New(Config{MaxConcurrentJobs: 2, Logger: obs.Nop()})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	const tp = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	const tid = "4bf92f3577b34da6a3ce929d0e0e4736"
	spec := JobSpec{
		Circuit:  "c17",
		Mode:     "drop",
		Patterns: PatternSpec{Random: &RandomSpec{N: 64, Seed: 1}},
	}
	body, _ := json.Marshal(spec)
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", tp)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}

	st := pollDone(t, srv, acc.ID)
	if st.State != StateDone {
		t.Fatalf("job %s: %s", acc.ID, st.Error)
	}
	if st.TraceID != tid {
		t.Errorf("status trace_id = %q, want the caller's %q", st.TraceID, tid)
	}
	var res JobResult
	if code := getJSON(t, srv.URL+"/v1/jobs/"+acc.ID+"/result", &res); code != http.StatusOK {
		t.Fatalf("result: HTTP %d", code)
	}
	if res.TraceID != tid {
		t.Errorf("result trace_id = %q, want the caller's %q", res.TraceID, tid)
	}

	// The root span ends just after the terminal status is published;
	// poll the recorder briefly.
	var td *trace.TraceData
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, ok := s.Traces().Trace(tid)
		if ok {
			td = got
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recorder never completed trace %s", tid)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if td.Root != "job.grade" || td.Kind != "grade" {
		t.Errorf("trace root = %q kind = %q, want job.grade/grade", td.Root, td.Kind)
	}
	phases := map[string]bool{}
	for _, sp := range td.Spans {
		phases[sp.Name] = true
	}
	for _, want := range []string{PhaseRegistryBuild, PhaseSimulate} {
		if !phases[want] {
			t.Errorf("trace lacks a %q phase span; spans: %v", want, phases)
		}
	}

	// The list endpoint serves it with the job's kind.
	rr := httptest.NewRecorder()
	s.Traces().Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/debug/traces", nil))
	var list struct {
		Traces []trace.TraceSummary `json:"traces"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &list); err != nil {
		t.Fatalf("list endpoint returned unparseable JSON: %v", err)
	}
	found := false
	for _, ts := range list.Traces {
		if ts.TraceID == tid && ts.Kind == "grade" && ts.Spans == len(td.Spans) {
			found = true
		}
	}
	if !found {
		t.Errorf("/debug/traces list lacks trace %s: %+v", tid, list.Traces)
	}
}

// TestSubmitMintsRootTrace: a submit with no traceparent still gets a
// trace — the engine mints a root — and the id is on the status from
// the moment the job is accepted.
func TestSubmitMintsRootTrace(t *testing.T) {
	s := New(Config{MaxConcurrentJobs: 1, Logger: obs.Nop()})
	defer s.Close()
	id, err := s.Submit(JobSpec{
		Circuit:  "c17",
		Mode:     "drop",
		Patterns: PatternSpec{Random: &RandomSpec{N: 64, Seed: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, ok := s.Status(id)
	if !ok {
		t.Fatal("job vanished")
	}
	if _, err := trace.ParseTraceID(st.TraceID); err != nil {
		t.Fatalf("status trace_id %q is not a valid minted id: %v", st.TraceID, err)
	}
}
