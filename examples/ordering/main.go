// Ordering mechanics: a step-by-step replay of the paper's Section 2
// and Section 3 worked example on the lion-style circuit — the
// ndet(u) table (Table 1), per-fault ADI values, and the first few
// placements of the dynamic order Fdynm with their ndet updates.
// Built entirely on the public adifo package.
//
// Run with:
//
//	go run ./examples/ordering
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"github.com/eda-go/adifo"
)

func main() {
	ctx := context.Background()

	c, err := adifo.LoadCircuit("lion")
	if err != nil {
		log.Fatal(err)
	}
	faults := adifo.Faults(c)
	u := adifo.ExhaustivePatterns(c.NumInputs())
	ix, err := adifo.ComputeADI(ctx, faults, u)
	if err != nil {
		log.Fatal(err)
	}

	// Table 1: ndet(u) for all 16 input vectors.
	fmt.Printf("ndet(u) for %s (%d faults, exhaustive U)\n", c.Name, faults.Len())
	tw := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "u\tndet(u)\t")
	for i := 0; i < u.Len(); i++ {
		fmt.Fprintf(tw, "%d\t%d\t\n", u.Get(i).Decimal(), ix.Ndet[i])
	}
	tw.Flush()
	fmt.Println()

	// ADI(f) = min over D(f) of ndet(u): show a few faults with their
	// detecting vectors, as in the paper's f0/f2/f15 walk-through.
	fmt.Println("ADI derivation for the first three faults:")
	for fi := 0; fi < 3; fi++ {
		var det []uint64
		ix.Det[fi].ForEach(func(uIdx int) { det = append(det, u.Get(uIdx).Decimal()) })
		fmt.Printf("  f%-3d %-14s D(f)=%v  ADI=min ndet=%d\n",
			fi, faults.Faults[fi].Name(c), det, ix.ADI[fi])
	}
	fmt.Println()

	// Replay the dynamic order construction: place the highest-ADI
	// fault, decrement ndet(u) for its detecting vectors, repeat.
	fmt.Println("First five placements of Fdynm (ndet updates applied):")
	ndet := append([]int(nil), ix.Ndet...)
	order := ix.Order(adifo.Dynm)
	for step := 0; step < 5 && step < len(order); step++ {
		fi := order[step]
		cur := 0
		ix.Det[fi].ForEach(func(uIdx int) {
			if cur == 0 || ndet[uIdx] < cur {
				cur = ndet[uIdx]
			}
		})
		fmt.Printf("  %d. f%-3d %-14s current ADI=%d\n", step+1, fi, faults.Faults[fi].Name(c), cur)
		ix.Det[fi].ForEach(func(uIdx int) { ndet[uIdx]-- })
	}
	fmt.Println("\nStatic vs dynamic head of the order:")
	fmt.Printf("  Fdecr: %v\n", head(ix.Order(adifo.Decr), 8))
	fmt.Printf("  Fdynm: %v\n", head(order, 8))
}

func head(xs []int, n int) []int {
	if len(xs) < n {
		n = len(xs)
	}
	return xs[:n]
}
