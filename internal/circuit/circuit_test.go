package circuit

import (
	"strings"
	"testing"

	"github.com/eda-go/adifo/internal/logic"
)

// buildMux returns a 2:1 mux: y = (a AND NOT(s)) OR (b AND s).
func buildMux(t *testing.T) *Circuit {
	t.Helper()
	b := NewBuilder("mux")
	a := b.AddInput("a")
	bb := b.AddInput("b")
	s := b.AddInput("s")
	ns := b.AddGate("ns", Not, s)
	t0 := b.AddGate("t0", And, a, ns)
	t1 := b.AddGate("t1", And, bb, s)
	y := b.AddGate("y", Or, t0, t1)
	b.MarkOutput(y)
	c, err := b.Freeze()
	if err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	return c
}

func TestBuilderBasics(t *testing.T) {
	c := buildMux(t)
	if c.NumInputs() != 3 || c.NumOutputs() != 1 || c.NumGates() != 7 {
		t.Fatalf("counts wrong: %d inputs, %d outputs, %d gates",
			c.NumInputs(), c.NumOutputs(), c.NumGates())
	}
	if id, ok := c.GateByName("ns"); !ok || c.Gates[id].Type != Not {
		t.Fatal("GateByName failed")
	}
	y := c.Outputs[0]
	if !c.IsOutput(y) || c.IsOutput(c.Inputs[0]) {
		t.Fatal("IsOutput wrong")
	}
}

func TestLevelsAndTopo(t *testing.T) {
	c := buildMux(t)
	for _, pi := range c.Inputs {
		if c.Level[pi] != 0 {
			t.Fatalf("PI level = %d", c.Level[pi])
		}
	}
	ns, _ := c.GateByName("ns")
	t0, _ := c.GateByName("t0")
	y, _ := c.GateByName("y")
	if c.Level[ns] != 1 || c.Level[t0] != 2 || c.Level[y] != 3 || c.MaxLevel != 3 {
		t.Fatalf("levels wrong: ns=%d t0=%d y=%d max=%d",
			c.Level[ns], c.Level[t0], c.Level[y], c.MaxLevel)
	}
	// Topological: every gate appears after its fanins.
	pos := make([]int, c.NumGates())
	for i, g := range c.Topo {
		pos[g] = i
	}
	for gi, g := range c.Gates {
		for _, f := range g.Fanin {
			if pos[f] >= pos[gi] {
				t.Fatalf("gate %d before its fanin %d in topo order", gi, f)
			}
		}
	}
}

func TestFanout(t *testing.T) {
	c := buildMux(t)
	s := c.Inputs[2]
	// s drives ns (pin 0) and t1 (pin 1).
	if len(c.Fanout[s]) != 2 {
		t.Fatalf("fanout of s = %v", c.Fanout[s])
	}
	ns, _ := c.GateByName("ns")
	t1, _ := c.GateByName("t1")
	seen := map[Conn]bool{}
	for _, fo := range c.Fanout[s] {
		seen[fo] = true
	}
	if !seen[Conn{ns, 0}] || !seen[Conn{t1, 1}] {
		t.Fatalf("fanout of s = %v", c.Fanout[s])
	}
}

func TestFreezeRejectsCycle(t *testing.T) {
	b := NewBuilder("cyc")
	a := b.AddInput("a")
	// Forward-wire a cycle by patching fanins directly, as the bench
	// parser does.
	g1 := b.addGate("g1", And, nil)
	g2 := b.addGate("g2", And, nil)
	b.c.Gates[g1].Fanin = []int{a, g2}
	b.c.Gates[g2].Fanin = []int{a, g1}
	b.MarkOutput(g2)
	if _, err := b.Freeze(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("expected cycle error, got %v", err)
	}
}

func TestFreezeRejectsBadFanin(t *testing.T) {
	b := NewBuilder("bad")
	a := b.AddInput("a")
	b.AddGate("g", Not) // NOT with zero fanins
	b.MarkOutput(a)
	if _, err := b.Freeze(); err == nil {
		t.Fatal("expected fanin arity error")
	}

	b2 := NewBuilder("bad2")
	x := b2.AddInput("x")
	b2.AddGate("n", Not, x, x) // NOT with two fanins
	b2.MarkOutput(x)
	if _, err := b2.Freeze(); err == nil {
		t.Fatal("expected max-fanin error")
	}
}

func TestFreezeRejectsDuplicateNames(t *testing.T) {
	b := NewBuilder("dup")
	b.AddInput("a")
	b.AddInput("a")
	if _, err := b.Freeze(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("expected duplicate error, got %v", err)
	}
}

func TestFreezeRejectsNoInputsOrOutputs(t *testing.T) {
	b := NewBuilder("empty")
	if _, err := b.Freeze(); err == nil {
		t.Fatal("expected error for no inputs")
	}
	b2 := NewBuilder("noout")
	b2.AddInput("a")
	if _, err := b2.Freeze(); err == nil {
		t.Fatal("expected error for no outputs")
	}
}

func TestEvalWordAllTypes(t *testing.T) {
	a, b := uint64(0b1100), uint64(0b1010)
	cases := []struct {
		t    GateType
		in   []uint64
		want uint64
	}{
		{Buf, []uint64{a}, a},
		{Not, []uint64{a}, ^a},
		{And, []uint64{a, b}, a & b},
		{Nand, []uint64{a, b}, ^(a & b)},
		{Or, []uint64{a, b}, a | b},
		{Nor, []uint64{a, b}, ^(a | b)},
		{Xor, []uint64{a, b}, a ^ b},
		{Xnor, []uint64{a, b}, ^(a ^ b)},
		{And, []uint64{a, b, 0b1111}, a & b},
		{Or, []uint64{a, b, 0}, a | b},
		{Xor, []uint64{a, b, a}, b},
	}
	for _, c := range cases {
		if got := EvalWord(c.t, c.in); got != c.want {
			t.Errorf("EvalWord(%v) = %x, want %x", c.t, got, c.want)
		}
	}
}

func TestEvalV3MatchesEvalWordOnBinary(t *testing.T) {
	types := []GateType{Buf, Not, And, Nand, Or, Nor, Xor, Xnor}
	for _, ty := range types {
		nin := 2
		if ty == Buf || ty == Not {
			nin = 1
		}
		for mask := 0; mask < 1<<uint(nin); mask++ {
			words := make([]uint64, nin)
			v3s := make([]logic.V3, nin)
			for i := 0; i < nin; i++ {
				bit := uint64(mask >> uint(i) & 1)
				words[i] = bit
				v3s[i] = logic.FromBit(uint8(bit))
			}
			wordOut := EvalWord(ty, words) & 1
			v3Out := EvalV3(ty, v3s)
			if !v3Out.IsBinary() || uint64(v3Out.Bit()) != wordOut {
				t.Errorf("%v inputs %b: EvalV3=%v EvalWord=%d", ty, mask, v3Out, wordOut)
			}
		}
	}
}

func TestEvalV3ControllingXBehaviour(t *testing.T) {
	if EvalV3(And, []logic.V3{logic.Zero, logic.X}) != logic.Zero {
		t.Fatal("AND(0,X) must be 0")
	}
	if EvalV3(Nand, []logic.V3{logic.Zero, logic.X}) != logic.One {
		t.Fatal("NAND(0,X) must be 1")
	}
	if EvalV3(Or, []logic.V3{logic.One, logic.X}) != logic.One {
		t.Fatal("OR(1,X) must be 1")
	}
	if EvalV3(Nor, []logic.V3{logic.One, logic.X}) != logic.Zero {
		t.Fatal("NOR(1,X) must be 0")
	}
	if EvalV3(Xor, []logic.V3{logic.One, logic.X}) != logic.X {
		t.Fatal("XOR(1,X) must be X")
	}
	if EvalV3(And, []logic.V3{logic.One, logic.X}) != logic.X {
		t.Fatal("AND(1,X) must be X")
	}
}

func TestControllingValue(t *testing.T) {
	cases := []struct {
		t    GateType
		v    logic.V3
		ok   bool
		outc logic.V3
	}{
		{And, logic.Zero, true, logic.Zero},
		{Nand, logic.Zero, true, logic.One},
		{Or, logic.One, true, logic.One},
		{Nor, logic.One, true, logic.Zero},
		{Xor, logic.X, false, logic.X},
		{Not, logic.X, false, logic.X},
	}
	for _, c := range cases {
		v, ok := c.t.ControllingValue()
		if ok != c.ok || (ok && v != c.v) {
			t.Errorf("%v ControllingValue = %v,%v", c.t, v, ok)
		}
		if ok && c.t.OutputOnControl() != c.outc {
			t.Errorf("%v OutputOnControl = %v, want %v", c.t, c.t.OutputOnControl(), c.outc)
		}
	}
}

func TestInverting(t *testing.T) {
	for _, ty := range []GateType{Not, Nand, Nor, Xnor} {
		if !ty.Inverting() {
			t.Errorf("%v must be inverting", ty)
		}
	}
	for _, ty := range []GateType{Buf, And, Or, Xor, PI} {
		if ty.Inverting() {
			t.Errorf("%v must not be inverting", ty)
		}
	}
}

func TestCones(t *testing.T) {
	c := buildMux(t)
	s := c.Inputs[2]
	ns, _ := c.GateByName("ns")
	t0, _ := c.GateByName("t0")
	t1, _ := c.GateByName("t1")
	y, _ := c.GateByName("y")

	cone := c.FanoutCone(s)
	want := []int{s, ns, t0, t1, y}
	if len(cone) != len(want) {
		t.Fatalf("FanoutCone(s) = %v", cone)
	}
	inCone := c.InputCone(t0)
	// t0's input cone: a, s, ns, t0.
	if len(inCone) != 4 {
		t.Fatalf("InputCone(t0) = %v", inCone)
	}
}

func TestComputeStats(t *testing.T) {
	c := buildMux(t)
	st := c.ComputeStats()
	if st.Gates != 4 || st.Inputs != 3 || st.Outputs != 1 || st.Levels != 3 {
		t.Fatalf("stats = %+v", st)
	}
	// Lines: 7 stems + 2 branches for s (fanout 2).
	if st.Lines != 9 {
		t.Fatalf("Lines = %d, want 9", st.Lines)
	}
	if st.FanoutStem != 1 || st.MaxFanout != 2 || st.MaxFanin != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestControllabilityMux(t *testing.T) {
	c := buildMux(t)
	cc := c.ComputeControllability()
	for _, pi := range c.Inputs {
		if cc.CC0[pi] != 1 || cc.CC1[pi] != 1 {
			t.Fatalf("PI controllability must be 1/1")
		}
	}
	ns, _ := c.GateByName("ns")
	if cc.CC0[ns] != 2 || cc.CC1[ns] != 2 {
		t.Fatalf("NOT controllability = %d/%d", cc.CC0[ns], cc.CC1[ns])
	}
	t0, _ := c.GateByName("t0")
	// AND: CC1 = CC1(a)+CC1(ns)+1 = 1+2+1 = 4; CC0 = min(1,2)+1 = 2.
	if cc.CC1[t0] != 4 || cc.CC0[t0] != 2 {
		t.Fatalf("AND controllability = CC0 %d / CC1 %d", cc.CC0[t0], cc.CC1[t0])
	}
}

func TestMarkOutputRangeCheck(t *testing.T) {
	b := NewBuilder("r")
	b.AddInput("a")
	b.MarkOutput(99)
	if _, err := b.Freeze(); err == nil {
		t.Fatal("expected error for out-of-range output id")
	}
}

func TestAddGatePIMisuse(t *testing.T) {
	b := NewBuilder("pi")
	b.AddGate("x", PI)
	if _, err := b.Freeze(); err == nil {
		t.Fatal("expected error for AddGate(PI)")
	}
}

func TestObservabilityMux(t *testing.T) {
	c := buildMux(t)
	cc := c.ComputeControllability()
	ob := c.ComputeObservability(cc)
	y, _ := c.GateByName("y")
	if ob.CO[y] != 0 {
		t.Fatalf("output CO = %d, want 0", ob.CO[y])
	}
	t0, _ := c.GateByName("t0")
	// Observing t0 through OR y: CO(y)=0 + CC0(t1) + 1.
	t1, _ := c.GateByName("t1")
	want := cc.CC0[t1] + 1
	if ob.CO[t0] != want {
		t.Fatalf("CO(t0) = %d, want %d", ob.CO[t0], want)
	}
	// Every gate of the mux is observable.
	for gi := range c.Gates {
		if !ob.Observable(gi) {
			t.Fatalf("gate %s unobservable", c.Gates[gi].Name)
		}
	}
	// Deeper gates cost at least as much as the output.
	s := c.Inputs[2]
	if ob.CO[s] <= 0 {
		t.Fatalf("CO(select) = %d, want positive", ob.CO[s])
	}
}

func TestObservabilityUnreachableGate(t *testing.T) {
	b := NewBuilder("dangling")
	a := b.AddInput("a")
	bb := b.AddInput("b")
	y := b.AddGate("y", And, a, bb)
	b.AddGate("dead", Or, a, bb) // no fanout, not observed
	b.MarkOutput(y)
	c, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	cc := c.ComputeControllability()
	ob := c.ComputeObservability(cc)
	dead, _ := c.GateByName("dead")
	if ob.Observable(dead) {
		t.Fatal("dangling gate must be unobservable")
	}
	if !ob.Observable(a) {
		t.Fatal("input observable through y")
	}
}

func TestObservabilityXorSidecost(t *testing.T) {
	b := NewBuilder("xo")
	a := b.AddInput("a")
	bb := b.AddInput("b")
	y := b.AddGate("y", Xor, a, bb)
	b.MarkOutput(y)
	c, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	cc := c.ComputeControllability()
	ob := c.ComputeObservability(cc)
	// Observing a through XOR costs CO(y) + min(CC0(b),CC1(b)) + 1 =
	// 0 + 1 + 1 = 2.
	if ob.CO[a] != 2 {
		t.Fatalf("CO(a) = %d, want 2", ob.CO[a])
	}
}
