package benchdata

import (
	"testing"

	"github.com/eda-go/adifo/internal/atpg"
	"github.com/eda-go/adifo/internal/fault"
	"github.com/eda-go/adifo/internal/fsim"
	"github.com/eda-go/adifo/internal/logic"
)

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("names not sorted")
		}
	}
}

func TestLoadAll(t *testing.T) {
	for _, name := range Names() {
		c, err := Load(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.NumInputs() == 0 || c.NumOutputs() == 0 {
			t.Fatalf("%s: empty interface", name)
		}
	}
}

func TestLoadUnknown(t *testing.T) {
	if _, err := Load("nope"); err == nil {
		t.Fatal("unknown circuit loaded")
	}
	if _, err := Source("nope"); err == nil {
		t.Fatal("unknown source loaded")
	}
}

func TestMustLoadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustLoad on unknown did not panic")
		}
	}()
	MustLoad("nope")
}

func TestS27ScanConversion(t *testing.T) {
	c := MustLoad("s27")
	// 4 PIs + 3 pseudo-PIs; 1 PO + 3 pseudo-POs.
	if c.NumInputs() != 7 {
		t.Fatalf("s27 inputs = %d, want 7", c.NumInputs())
	}
	if c.NumOutputs() != 4 {
		t.Fatalf("s27 outputs = %d, want 4", c.NumOutputs())
	}
	if st := c.ComputeStats(); st.Gates != 10 {
		t.Fatalf("s27 gates = %d, want 10", st.Gates)
	}
}

func TestLionShapeMatchesTable1Setting(t *testing.T) {
	c := MustLoad("lion")
	// The paper's worked example: 4 inputs, 16 vectors, F of about 40
	// collapsed faults, all detectable by exhaustive simulation.
	if c.NumInputs() != 4 {
		t.Fatalf("lion inputs = %d, want 4", c.NumInputs())
	}
	fl := fault.CollapsedUniverse(c)
	if fl.Len() < 30 || fl.Len() > 50 {
		t.Fatalf("lion collapsed faults = %d, want around 40", fl.Len())
	}
	u := logic.ExhaustivePatterns(4)
	res := fsim.Run(fl, u, fsim.Options{Mode: fsim.NoDrop})
	if res.DetectedCount() != fl.Len() {
		t.Fatalf("lion: only %d of %d faults detectable — worked example requires an irredundant core",
			res.DetectedCount(), fl.Len())
	}
}

func TestEmbeddedCircuitsAreIrredundant(t *testing.T) {
	for _, name := range Names() {
		c := MustLoad(name)
		fl := fault.CollapsedUniverse(c)
		g := atpg.New(c, atpg.Options{})
		for _, f := range fl.Faults {
			if g.Generate(f).Status == atpg.Redundant {
				t.Errorf("%s: fault %v undetectable", name, f.Name(c))
			}
		}
	}
}
