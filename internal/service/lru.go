package service

// lruCache is a small string-keyed LRU used by the registry. Recency
// is tracked with a monotonic use counter and eviction scans for the
// minimum, which is O(n) per insert-over-capacity; registry caches are
// tens of entries and evictions are rare, so the simplicity wins over
// a linked list. Not safe for concurrent use — the registry locks.
type lruCache[V any] struct {
	cap int
	seq uint64
	m   map[string]*lruItem[V]
}

type lruItem[V any] struct {
	v    V
	used uint64
}

func newLRU[V any](capacity int) *lruCache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache[V]{cap: capacity, m: make(map[string]*lruItem[V])}
}

func (c *lruCache[V]) get(key string) (V, bool) {
	if it, ok := c.m[key]; ok {
		c.seq++
		it.used = c.seq
		return it.v, true
	}
	var zero V
	return zero, false
}

// put inserts or refreshes key and reports whether another entry was
// evicted to make room (the registry counts those).
func (c *lruCache[V]) put(key string, v V) (evicted bool) {
	if it, ok := c.m[key]; ok {
		c.seq++
		it.v, it.used = v, c.seq
		return false
	}
	if len(c.m) >= c.cap {
		var oldest string
		first := true
		for k, it := range c.m {
			if first || it.used < c.m[oldest].used {
				oldest, first = k, false
			}
		}
		delete(c.m, oldest)
		evicted = true
	}
	c.seq++
	c.m[key] = &lruItem[V]{v: v, used: c.seq}
	return evicted
}

func (c *lruCache[V]) delete(key string) { delete(c.m, key) }

func (c *lruCache[V]) len() int { return len(c.m) }
