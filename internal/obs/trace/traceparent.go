package trace

import (
	"encoding/hex"
	"errors"
	"fmt"
)

// W3C Trace Context, traceparent header:
//
//	version "-" trace-id "-" parent-id "-" trace-flags
//	00      -  4bf92f3577b34da6a3ce929d0e0e4736 - 00f067aa0ba902b7 - 01
//
// All fields are lowercase hex. Parsing follows the spec's
// forward-compatibility rule: an unknown (higher) version is accepted
// as long as the first four fields parse, with any trailing
// version-specific suffix ignored; version 00 must be exactly the four
// fields. Version ff and all-zero trace or parent ids are invalid.

// traceparentLen is the exact length of a version-00 header:
// 2 + 1 + 32 + 1 + 16 + 1 + 2.
const traceparentLen = 55

var (
	errTraceparentSyntax  = errors.New("trace: malformed traceparent header")
	errTraceparentVersion = errors.New("trace: invalid traceparent version")
	errTraceparentZeroID  = errors.New("trace: traceparent carries an all-zero id")
)

// hexVal decodes one lowercase hex digit; ok is false for anything
// else (uppercase included — the spec mandates lowercase).
func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

// parseLowerHex decodes exactly len(dst)*2 lowercase hex digits from s
// into dst.
func parseLowerHex(dst []byte, s string) bool {
	if len(s) != len(dst)*2 {
		return false
	}
	for i := range dst {
		hi, ok1 := hexVal(s[2*i])
		lo, ok2 := hexVal(s[2*i+1])
		if !ok1 || !ok2 {
			return false
		}
		dst[i] = hi<<4 | lo
	}
	return true
}

// ParseTraceparent decodes a traceparent header value into a
// SpanContext. The error is one of the package's sentinel parse errors
// wrapped with position detail; callers that only care about validity
// check err != nil.
func ParseTraceparent(h string) (SpanContext, error) {
	if len(h) < traceparentLen {
		return SpanContext{}, fmt.Errorf("%w: %d bytes, want >= %d", errTraceparentSyntax, len(h), traceparentLen)
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return SpanContext{}, fmt.Errorf("%w: field separators misplaced", errTraceparentSyntax)
	}
	var version [1]byte
	if !parseLowerHex(version[:], h[0:2]) {
		return SpanContext{}, fmt.Errorf("%w: version %q", errTraceparentVersion, h[0:2])
	}
	if version[0] == 0xff {
		return SpanContext{}, fmt.Errorf("%w: ff is forbidden", errTraceparentVersion)
	}
	if version[0] == 0 && len(h) != traceparentLen {
		// Version 00 is exactly four fields; only future versions may
		// append suffixes.
		return SpanContext{}, fmt.Errorf("%w: version 00 with trailing data", errTraceparentSyntax)
	}
	if version[0] > 0 && len(h) > traceparentLen && h[traceparentLen] != '-' {
		return SpanContext{}, fmt.Errorf("%w: version %02x suffix must be dash-separated", errTraceparentSyntax, version[0])
	}
	var sc SpanContext
	if !parseLowerHex(sc.TraceID[:], h[3:35]) {
		return SpanContext{}, fmt.Errorf("%w: trace-id", errTraceparentSyntax)
	}
	if !sc.TraceID.IsValid() {
		return SpanContext{}, fmt.Errorf("%w: trace-id", errTraceparentZeroID)
	}
	if !parseLowerHex(sc.SpanID[:], h[36:52]) {
		return SpanContext{}, fmt.Errorf("%w: parent-id", errTraceparentSyntax)
	}
	if !sc.SpanID.IsValid() {
		return SpanContext{}, fmt.Errorf("%w: parent-id", errTraceparentZeroID)
	}
	var flags [1]byte
	if !parseLowerHex(flags[:], h[53:55]) {
		return SpanContext{}, fmt.Errorf("%w: trace-flags", errTraceparentSyntax)
	}
	sc.Flags = flags[0]
	return sc, nil
}

// ParseTraceID decodes a bare 32-digit lowercase-hex trace id (the
// wire form of TraceID.String) — the shape status payloads and journal
// records carry, as opposed to a full traceparent header.
func ParseTraceID(s string) (TraceID, error) {
	var t TraceID
	if !parseLowerHex(t[:], s) {
		return TraceID{}, fmt.Errorf("%w: trace-id %q", errTraceparentSyntax, s)
	}
	if !t.IsValid() {
		return TraceID{}, fmt.Errorf("%w: trace-id", errTraceparentZeroID)
	}
	return t, nil
}

// Traceparent renders the context as a version-00 traceparent header
// value. Only meaningful on contexts with valid trace and span ids —
// use the package-level Traceparent(ctx) helper, which checks.
func (sc SpanContext) Traceparent() string {
	b := make([]byte, 0, traceparentLen)
	b = append(b, '0', '0', '-')
	b = hex.AppendEncode(b, sc.TraceID[:])
	b = append(b, '-')
	b = hex.AppendEncode(b, sc.SpanID[:])
	b = append(b, '-')
	b = hex.AppendEncode(b, []byte{sc.Flags})
	return string(b)
}
