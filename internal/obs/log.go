package obs

import (
	"context"
	"io"
	"log/slog"
	"os"
)

// Logging: every component of the serving stack (service engine,
// cluster coordinator, both binaries) logs through a *slog.Logger with
// consistent key-value fields — "job", "kind", "backend", "shard" —
// instead of free-form printf lines, so one grep (or one log pipeline
// filter) follows a job across layers. The constructors here pin the
// stack's one handler configuration; components accept any
// *slog.Logger, so tests pass Nop() and embedders plug in their own
// handler.

// NewLogger returns a leveled text logger writing to w. Level may be a
// plain slog.Level or a dynamic slog.LevelVar.
func NewLogger(w io.Writer, level slog.Leveler) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// NewJSONLogger is NewLogger with JSON output, for deployments that
// ship logs to a structured pipeline.
func NewJSONLogger(w io.Writer, level slog.Leveler) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}

// Default is the stack's default logger: Info-level text on stderr.
// Components whose config carries a nil logger fall back to it, so
// diagnostics are never silently dropped.
func Default() *slog.Logger {
	return defaultLogger
}

var defaultLogger = NewLogger(os.Stderr, slog.LevelInfo)

// Nop returns a logger that discards everything — the quiet mode tests
// and benchmarks use so engine diagnostics don't pollute their output.
func Nop() *slog.Logger { return nopLogger }

var nopLogger = slog.New(nopHandler{})

// nopHandler drops every record. The standard library gained
// slog.DiscardHandler in Go 1.24; this five-liner keeps the package's
// floor at the module's own go directive rather than the newest
// stdlib.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

// Or returns l, or the package default when l is nil — the one-line
// config normalization every component shares.
func Or(l *slog.Logger) *slog.Logger {
	if l == nil {
		return Default()
	}
	return l
}
