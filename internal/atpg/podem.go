// Package atpg implements a PODEM (path-oriented decision making)
// test generator for single stuck-at faults in combinational
// circuits.
//
// The generator deliberately contains no dynamic compaction heuristics
// — no secondary target faults, no test merging — matching the
// experimental setup of the paper ("The test generation procedure we
// use does not include any dynamic compaction heuristics", Section 4).
// Compaction comes only from the order in which faults are targeted
// and from dropping faults detected by simulation of earlier tests;
// both live outside this package.
//
// # Algorithm
//
// Classic PODEM: decisions are made only on primary inputs. The search
// keeps two three-valued value assignments, the good machine and the
// faulty machine (with the target fault's line forced to its stuck
// value), maintained by event-driven forward implication with an undo
// trail (see imply.go). Objectives alternate between fault activation
// (set the fault site to the complement of the stuck value) and
// fault-effect propagation (advance the D-frontier); objectives are
// mapped to input assignments by backtracing along X-valued lines
// using SCOAP controllability to pick easy/hard branches. A backtrack
// limit bounds the search: exceeding it classifies the fault as
// aborted, exhausting the decision tree classifies it as redundant
// (undetectable).
//
// The per-decision checks are incremental: fault effects can only
// live in the fanout cone of the fault site, so detection and
// D-frontier discovery walk the effect region instead of scanning the
// netlist, and the X-path check walks only composite-X gates.
package atpg

import (
	"fmt"

	"github.com/eda-go/adifo/internal/circuit"
	"github.com/eda-go/adifo/internal/fault"
	"github.com/eda-go/adifo/internal/logic"
	"github.com/eda-go/adifo/internal/prng"
)

// Status classifies the outcome of one test generation attempt.
type Status int

const (
	// Success: a test cube detecting the fault was found.
	Success Status = iota
	// Redundant: the decision tree was exhausted; the fault is
	// undetectable.
	Redundant
	// Aborted: the backtrack limit was exceeded before a test was
	// found or the fault was proven redundant.
	Aborted
)

// String returns a short lower-case label.
func (s Status) String() string {
	switch s {
	case Success:
		return "success"
	case Redundant:
		return "redundant"
	case Aborted:
		return "aborted"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Options configures a Generator.
type Options struct {
	// BacktrackLimit bounds the search per fault; 0 selects
	// DefaultBacktrackLimit.
	BacktrackLimit int
}

// DefaultBacktrackLimit is the per-fault backtrack budget used when
// Options.BacktrackLimit is zero. The value matches the order of
// magnitude customary for combinational ATPG on the ISCAS benchmarks.
const DefaultBacktrackLimit = 1000

// Result is the outcome of one Generate call.
type Result struct {
	Status Status
	// Cube is the generated test cube over primary inputs (in
	// circuit.Inputs order): Zero, One, or X for inputs the search
	// left unassigned. Valid only when Status == Success.
	Cube []logic.V3
	// Backtracks is the number of backtracks consumed.
	Backtracks int
	// Decisions is the number of PI decisions made.
	Decisions int
}

// Generator generates tests for faults of one circuit. It is reusable
// across faults (state is reset per Generate) but not safe for
// concurrent use.
type Generator struct {
	c    *circuit.Circuit
	cc   *circuit.Controllability
	opts Options

	gval []logic.V3 // good machine
	fval []logic.V3 // faulty machine
	pi   []logic.V3 // current PI assignment

	target fault.Fault

	in []logic.V3 // scratch fanin buffer

	// implication machinery (imply.go)
	trail      []trailEntry
	buckets    [][]int
	usedLevels []int
	qmark      []uint32
	epoch      uint32

	// effect-region / X-path scratch
	emark  []uint32
	eepoch uint32
	estack []int

	stack []decision
}

type decision struct {
	input     int // index into circuit.Inputs
	value     logic.V3
	triedBoth bool
	mark      int // trail mark taken before the assignment
}

// New returns a Generator for c.
func New(c *circuit.Circuit, opts Options) *Generator {
	if opts.BacktrackLimit <= 0 {
		opts.BacktrackLimit = DefaultBacktrackLimit
	}
	maxFanin := 0
	for _, g := range c.Gates {
		if len(g.Fanin) > maxFanin {
			maxFanin = len(g.Fanin)
		}
	}
	return &Generator{
		c:       c,
		cc:      c.ComputeControllability(),
		opts:    opts,
		gval:    make([]logic.V3, c.NumGates()),
		fval:    make([]logic.V3, c.NumGates()),
		pi:      make([]logic.V3, c.NumInputs()),
		in:      make([]logic.V3, maxFanin),
		buckets: make([][]int, c.MaxLevel+1),
		qmark:   make([]uint32, c.NumGates()),
		emark:   make([]uint32, c.NumGates()),
		epoch:   1,
		eepoch:  1,
	}
}

// Circuit returns the generator's circuit.
func (g *Generator) Circuit() *circuit.Circuit { return g.c }

// Generate runs PODEM for fault f and returns the outcome.
func (g *Generator) Generate(f fault.Fault) Result {
	g.target = f
	for i := range g.pi {
		g.pi[i] = logic.X
	}
	g.stack = g.stack[:0]
	g.resetImplication()

	res := Result{}
	for {
		detected, frontier := g.exploreEffects()
		if detected {
			res.Status = Success
			res.Cube = append([]logic.V3(nil), g.pi...)
			return res
		}
		dead := false
		site := g.goodSiteValue()
		want := logic.FromBit(g.target.SA).Not()
		if site.IsBinary() {
			if site != want {
				dead = true // fault can no longer be activated
			} else if len(frontier) == 0 || !g.xPathExists(frontier) {
				dead = true // activated but unpropagatable
			}
		}
		if !dead {
			obj, ok := g.objective(frontier)
			if ok {
				input, val := g.backtrace(obj)
				mark := g.assign(input, val)
				g.stack = append(g.stack, decision{input: input, value: val, mark: mark})
				res.Decisions++
				continue
			}
			dead = true
		}
		if !g.backtrack(&res) {
			return res
		}
	}
}

// backtrack flips the most recent un-flipped decision. It returns
// false when the search is finished (res.Status set to Redundant or
// Aborted).
func (g *Generator) backtrack(res *Result) bool {
	res.Backtracks++
	if res.Backtracks > g.opts.BacktrackLimit {
		res.Status = Aborted
		return false
	}
	for len(g.stack) > 0 {
		top := &g.stack[len(g.stack)-1]
		g.undoTo(top.mark)
		if !top.triedBoth {
			top.triedBoth = true
			top.value = top.value.Not()
			g.assign(top.input, top.value)
			return true
		}
		g.pi[top.input] = logic.X
		g.stack = g.stack[:len(g.stack)-1]
	}
	res.Status = Redundant
	return false
}

// goodSiteValue returns the good-machine value of the faulty line.
func (g *Generator) goodSiteValue() logic.V3 {
	if g.target.Pin == fault.StemPin {
		return g.gval[g.target.Gate]
	}
	drv := g.c.Gates[g.target.Gate].Fanin[g.target.Pin]
	return g.gval[drv]
}

// exploreEffects walks the fault-effect region (lines whose good and
// faulty values are binary and differ — necessarily inside the fault
// site's fanout cone) and returns whether an effect has reached an
// observed output, together with the D-frontier: gates fed by an
// effect line whose own composite output is still X.
func (g *Generator) exploreEffects() (detected bool, frontier []int) {
	g.eepoch++
	g.estack = g.estack[:0]

	push := func(gate int) {
		if g.emark[gate] != g.eepoch {
			g.emark[gate] = g.eepoch
			g.estack = append(g.estack, gate)
		}
	}

	// Seed the region at the fault site.
	if isEffect(g.gval[g.target.Gate], g.fval[g.target.Gate]) {
		push(g.target.Gate)
	} else if g.target.Pin != fault.StemPin {
		// Branch fault: the effect lives on the faulted branch, which
		// is invisible in the driver's line values. The branch
		// carries an effect iff the good value of the driver is the
		// complement of the stuck value; the sink gate is then a
		// D-frontier candidate when its composite output is X.
		drv := g.c.Gates[g.target.Gate].Fanin[g.target.Pin]
		if g.gval[drv].IsBinary() && g.gval[drv] != logic.FromBit(g.target.SA) {
			if g.gval[g.target.Gate] == logic.X || g.fval[g.target.Gate] == logic.X {
				frontier = append(frontier, g.target.Gate)
			}
		}
	}

	for len(g.estack) > 0 {
		gate := g.estack[len(g.estack)-1]
		g.estack = g.estack[:len(g.estack)-1]
		if g.c.IsOutput(gate) {
			return true, nil
		}
		for _, fo := range g.c.Fanout[gate] {
			y := fo.Gate
			if g.emark[y] == g.eepoch {
				continue
			}
			if isEffect(g.gval[y], g.fval[y]) {
				push(y)
				continue
			}
			if g.gval[y] == logic.X || g.fval[y] == logic.X {
				g.emark[y] = g.eepoch
				frontier = append(frontier, y)
			}
		}
	}
	return false, frontier
}

// objective returns the next (gate, value) objective: activate the
// fault if not yet activated, otherwise advance the D-frontier.
func (g *Generator) objective(frontier []int) (obj objective, ok bool) {
	site := g.goodSiteValue()
	want := logic.FromBit(g.target.SA).Not()
	if site == logic.X {
		gate := g.target.Gate
		if g.target.Pin != fault.StemPin {
			gate = g.c.Gates[g.target.Gate].Fanin[g.target.Pin]
		}
		return objective{gate: gate, value: want}, true
	}

	// Propagation: pick the D-frontier gate closest to an output
	// (deepest level in a levelized DAG), then require a
	// non-controlling value on one of its X inputs.
	best := -1
	for _, gi := range frontier {
		if best < 0 || g.c.Level[gi] > g.c.Level[best] {
			best = gi
		}
	}
	if best < 0 {
		return objective{}, false
	}
	gate := &g.c.Gates[best]
	cv, hasCV := gate.Type.ControllingValue()
	for _, fi := range gate.Fanin {
		if g.gval[fi] != logic.X {
			continue
		}
		var v logic.V3
		if hasCV {
			v = cv.Not()
		} else {
			// XOR family: either value propagates; choose the cheaper
			// one by controllability.
			if g.cc.CC0[fi] <= g.cc.CC1[fi] {
				v = logic.Zero
			} else {
				v = logic.One
			}
		}
		return objective{gate: fi, value: v}, true
	}
	// Reconvergence case: every input of the frontier gate is binary
	// in the good machine, but some input is still X in the faulty
	// machine (its faulty value depends on an unassigned PI through
	// the fault cone). Target such a PI directly — without this the
	// search would wrongly declare a dead end and lose completeness.
	for _, fi := range gate.Fanin {
		if g.fval[fi] != logic.X {
			continue
		}
		if pi, ok := g.faultyXSource(fi); ok {
			val := logic.One
			if g.cc.CC0[pi] <= g.cc.CC1[pi] {
				val = logic.Zero
			}
			return objective{gate: pi, value: val}, true
		}
	}
	return objective{}, false
}

type objective struct {
	gate  int
	value logic.V3
}

// faultyXSource walks backwards from gate gi through faulty-machine X
// lines and returns an unassigned primary input that the X depends on.
func (g *Generator) faultyXSource(gi int) (int, bool) {
	seen := make(map[int]bool)
	var dfs func(x int) (int, bool)
	dfs = func(x int) (int, bool) {
		if seen[x] {
			return 0, false
		}
		seen[x] = true
		gt := &g.c.Gates[x]
		if gt.Type == circuit.PI {
			if g.gval[x] == logic.X {
				return x, true
			}
			return 0, false
		}
		for _, fi := range gt.Fanin {
			if g.fval[fi] != logic.X {
				continue
			}
			if pi, ok := dfs(fi); ok {
				return pi, true
			}
		}
		return 0, false
	}
	return dfs(gi)
}

// xPathExists reports whether some fault effect can still reach an
// output through composite-X lines, starting from the D-frontier.
func (g *Generator) xPathExists(frontier []int) bool {
	g.eepoch++
	g.estack = g.estack[:0]
	for _, gi := range frontier {
		if g.emark[gi] != g.eepoch {
			g.emark[gi] = g.eepoch
			g.estack = append(g.estack, gi)
		}
	}
	for len(g.estack) > 0 {
		gi := g.estack[len(g.estack)-1]
		g.estack = g.estack[:len(g.estack)-1]
		if g.c.IsOutput(gi) {
			return true
		}
		for _, fo := range g.c.Fanout[gi] {
			ng := fo.Gate
			if g.emark[ng] == g.eepoch {
				continue
			}
			if g.gval[ng] != logic.X && g.fval[ng] != logic.X {
				continue
			}
			g.emark[ng] = g.eepoch
			g.estack = append(g.estack, ng)
		}
	}
	return false
}

// backtrace maps an objective to an unassigned primary input and a
// value, walking backwards along X lines.
func (g *Generator) backtrace(obj objective) (input int, val logic.V3) {
	gate, v := obj.gate, obj.value
	for {
		gt := &g.c.Gates[gate]
		if gt.Type == circuit.PI {
			return g.c.InputIndex[gate], v
		}
		switch gt.Type {
		case circuit.Buf:
			gate = gt.Fanin[0]
		case circuit.Not:
			gate, v = gt.Fanin[0], v.Not()
		case circuit.And, circuit.Nand, circuit.Or, circuit.Nor:
			need := v
			if gt.Type.Inverting() {
				need = v.Not()
			}
			// For AND: need==1 means all inputs 1 (hard), need==0
			// means one input 0 (easy). Symmetric for OR.
			var allMust bool
			switch gt.Type {
			case circuit.And, circuit.Nand:
				allMust = need == logic.One
			case circuit.Or, circuit.Nor:
				allMust = need == logic.Zero
			}
			gate, v = g.chooseInput(gt, need, allMust), need
		case circuit.Xor, circuit.Xnor:
			need := v
			if gt.Type.Inverting() {
				need = v.Not()
			}
			// Choose the cheapest X input; its required value is the
			// parity completing the other inputs (X siblings counted
			// as 0 — a heuristic, corrected by implication).
			pick := -1
			parity := logic.Zero
			for _, fi := range gt.Fanin {
				if g.gval[fi] == logic.X {
					if pick < 0 || minCC(g.cc, fi) < minCC(g.cc, pick) {
						pick = fi
					}
				} else {
					parity = logic.Xor3(parity, g.gval[fi])
				}
			}
			if pick < 0 {
				// No X input left; fall back to the first fanin to
				// keep the walk moving (implication will expose the
				// conflict).
				pick = gt.Fanin[0]
			}
			if parity == logic.X {
				parity = logic.Zero
			}
			gate, v = pick, logic.Xor3(need, parity)
		default:
			panic(fmt.Sprintf("atpg: backtrace through %v", gt.Type))
		}
	}
}

// chooseInput picks an X-valued fanin of gt: the hardest to set when
// every input must take the value (allMust), the easiest otherwise.
func (g *Generator) chooseInput(gt *circuit.Gate, val logic.V3, allMust bool) int {
	best, bestCost := -1, 0
	for _, fi := range gt.Fanin {
		if g.gval[fi] != logic.X {
			continue
		}
		cost := g.cc.CC1[fi]
		if val == logic.Zero {
			cost = g.cc.CC0[fi]
		}
		if best < 0 || (allMust && cost > bestCost) || (!allMust && cost < bestCost) {
			best, bestCost = fi, cost
		}
	}
	if best < 0 {
		// All inputs assigned: keep walking through the first fanin;
		// the conflict, if any, surfaces via implication.
		return gt.Fanin[0]
	}
	return best
}

func minCC(cc *circuit.Controllability, g int) int {
	if cc.CC0[g] < cc.CC1[g] {
		return cc.CC0[g]
	}
	return cc.CC1[g]
}

func isEffect(gv, fv logic.V3) bool {
	return gv.IsBinary() && fv.IsBinary() && gv != fv
}

// FillRandom completes a test cube into a fully specified vector,
// assigning every X a pseudo-random bit from src. The specified bits
// are preserved.
func FillRandom(cube []logic.V3, src *prng.Source) logic.Vector {
	v := make(logic.Vector, len(cube))
	for i, val := range cube {
		switch val {
		case logic.Zero:
			v[i] = 0
		case logic.One:
			v[i] = 1
		default:
			v[i] = uint8(src.Intn(2))
		}
	}
	return v
}

// FillConstant completes a test cube with a constant bit in place of
// every X; used by tests and as a deterministic alternative to random
// fill.
func FillConstant(cube []logic.V3, bit uint8) logic.Vector {
	v := make(logic.Vector, len(cube))
	for i, val := range cube {
		switch val {
		case logic.Zero:
			v[i] = 0
		case logic.One:
			v[i] = 1
		default:
			v[i] = bit & 1
		}
	}
	return v
}
