// Command atpg runs the ordered test generation flow of the paper on
// one circuit: compute the accidental detection index from a random
// vector set, order the faults, generate tests with PODEM and fault
// dropping, and report test count, coverage and curve steepness.
//
// Usage:
//
//	atpg -circuit c17 -order dynm
//	atpg -circuit irs420 -order 0dynm -print-tests
//	atpg -circuit design.bench -order orig -backtracks 5000
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/eda-go/adifo/internal/adi"
	"github.com/eda-go/adifo/internal/cli"
	"github.com/eda-go/adifo/internal/experiments"
	"github.com/eda-go/adifo/internal/fault"
	"github.com/eda-go/adifo/internal/fsim"
	"github.com/eda-go/adifo/internal/logic"
	"github.com/eda-go/adifo/internal/prng"
	"github.com/eda-go/adifo/internal/tgen"
)

func main() {
	var (
		ref        = flag.String("circuit", "c17", "embedded name, suite name, or .bench path")
		orderName  = flag.String("order", "dynm", "fault order: orig, incr0, decr, 0decr, dynm, 0dynm")
		backtracks = flag.Int("backtracks", 0, "PODEM backtrack limit (0 = default)")
		printTests = flag.Bool("print-tests", false, "print the generated vectors")
		uSeed      = flag.Uint64("useed", experiments.USeed, "seed for the ADI vector set U")
		fillSeed   = flag.Uint64("fillseed", experiments.FillSeed, "seed for random fill of test cubes")
	)
	flag.Parse()

	if err := run(*ref, *orderName, *backtracks, *printTests, *uSeed, *fillSeed); err != nil {
		fmt.Fprintln(os.Stderr, "atpg:", err)
		os.Exit(1)
	}
}

func run(ref, orderName string, backtracks int, printTests bool, uSeed, fillSeed uint64) error {
	kind, err := cli.ParseOrder(orderName)
	if err != nil {
		return err
	}
	c, err := cli.LoadCircuit(ref)
	if err != nil {
		return err
	}
	fl := fault.CollapsedUniverse(c)

	// Size U per the paper: up to 10k random vectors, truncated at
	// ~90% coverage.
	candidates := logic.RandomPatterns(c.NumInputs(), experiments.MaxRandomVectors, prng.New(uSeed))
	sizing := fsim.Run(fl, candidates, fsim.Options{Mode: fsim.Drop, StopAtCoverage: experiments.TargetCoverage})
	u := candidates.Slice(sizing.VectorsUsed)
	ix := adi.Compute(fl, u)

	res := tgen.Generate(fl, ix.Order(kind), tgen.Options{
		BacktrackLimit: backtracks,
		FillSeed:       fillSeed,
		Validate:       true,
	})

	mn, mx := ix.MinMax()
	fmt.Printf("circuit    %s: %d inputs, %d faults\n", c.Name, c.NumInputs(), fl.Len())
	fmt.Printf("U          %d vectors (ADImin=%d ADImax=%d ratio=%.2f)\n", u.Len(), mn, mx, ix.Ratio())
	fmt.Printf("order      %v\n", kind)
	fmt.Printf("tests      %d\n", len(res.Tests))
	fmt.Printf("detected   %d (%.2f%%)\n", res.Detected(), 100*res.Coverage())
	fmt.Printf("redundant  %d\n", len(res.Redundant))
	fmt.Printf("aborted    %d\n", len(res.Aborted))
	fmt.Printf("AVE        %.3f\n", res.AVE())
	fmt.Printf("atpg calls %d, backtracks %d, elapsed %v\n", res.AtpgCalls, res.Backtracks, res.Elapsed)

	if printTests {
		for i, v := range res.Tests {
			fmt.Printf("t%-4d %s (for %s)\n", i+1, v, fl.Faults[res.TargetOf[i]].Name(c))
		}
	}
	return nil
}
