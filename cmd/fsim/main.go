// Command fsim is a stand-alone stuck-at fault simulator.
//
// Usage:
//
//	fsim -circuit c17 -n 64                     # random patterns, drop mode
//	fsim -circuit lion -exhaustive -mode nodrop # full detection statistics
//	fsim -circuit irs420 -n 10000 -stop 0.9     # size a vector set like the paper
//	fsim -circuit design.bench -mode ndetect -ndet 4
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/eda-go/adifo/internal/cli"
	"github.com/eda-go/adifo/internal/fault"
	"github.com/eda-go/adifo/internal/fsim"
	"github.com/eda-go/adifo/internal/logic"
	"github.com/eda-go/adifo/internal/prng"
)

func main() {
	var (
		ref        = flag.String("circuit", "c17", "embedded name, suite name, or .bench path")
		n          = flag.Int("n", 1024, "number of random vectors")
		seed       = flag.Uint64("seed", 1, "random vector seed")
		exhaustive = flag.Bool("exhaustive", false, "simulate all 2^inputs vectors (inputs <= 20)")
		mode       = flag.String("mode", "drop", "drop, nodrop, or ndetect")
		ndet       = flag.Int("ndet", 4, "drop threshold for -mode ndetect")
		stop       = flag.Float64("stop", 0, "stop once this fraction of faults is detected (0 = never)")
		uncollapse = flag.Bool("uncollapsed", false, "simulate the uncollapsed fault universe")
	)
	flag.Parse()

	if err := run(*ref, *n, *seed, *exhaustive, *mode, *ndet, *stop, *uncollapse); err != nil {
		fmt.Fprintln(os.Stderr, "fsim:", err)
		os.Exit(1)
	}
}

func run(ref string, n int, seed uint64, exhaustive bool, mode string, ndet int, stop float64, uncollapsed bool) error {
	c, err := cli.LoadCircuit(ref)
	if err != nil {
		return err
	}
	fl := fault.CollapsedUniverse(c)
	if uncollapsed {
		fl = fault.Universe(c)
	}

	var ps *logic.PatternSet
	if exhaustive {
		ps = logic.ExhaustivePatterns(c.NumInputs())
	} else {
		ps = logic.RandomPatterns(c.NumInputs(), n, prng.New(seed))
	}

	opts := fsim.Options{StopAtCoverage: stop}
	switch mode {
	case "drop":
		opts.Mode = fsim.Drop
	case "nodrop":
		opts.Mode = fsim.NoDrop
	case "ndetect":
		opts.Mode = fsim.NDetect
		opts.N = ndet
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}

	res := fsim.Run(fl, ps, opts)
	st := c.ComputeStats()
	fmt.Printf("circuit  %s: %d inputs, %d outputs, %d gates\n", c.Name, st.Inputs, st.Outputs, st.Gates)
	fmt.Printf("faults   %d (%s)\n", fl.Len(), map[bool]string{true: "uncollapsed", false: "collapsed"}[uncollapsed])
	fmt.Printf("vectors  %d simulated\n", res.VectorsUsed)
	fmt.Printf("detected %d (%.2f%% coverage)\n", res.DetectedCount(), 100*res.Coverage())

	if opts.Mode == fsim.NoDrop {
		// ndet(u) distribution summary.
		sorted := append([]int(nil), res.Ndet...)
		sort.Ints(sorted)
		if len(sorted) > 0 {
			fmt.Printf("ndet(u)  min=%d median=%d max=%d\n",
				sorted[0], sorted[len(sorted)/2], sorted[len(sorted)-1])
		}
	}
	return nil
}
