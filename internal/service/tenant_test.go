package service

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/eda-go/adifo/internal/obs"
)

// TestSchedulerWeightedFairness drives the stride scheduler directly:
// a weight-2 tenant is dispatched twice as often as a weight-1 tenant
// while both have work queued, and ties break deterministically.
func TestSchedulerWeightedFairness(t *testing.T) {
	limits := map[string]TenantLimit{"a": {Weight: 2}, "b": {Weight: 1}}
	sc := newScheduler()
	for i := 0; i < 6; i++ {
		sc.enqueue(sc.tenantFor("a", limits), &job{id: "a", tenant: "a"})
	}
	for i := 0; i < 3; i++ {
		sc.enqueue(sc.tenantFor("b", limits), &job{id: "b", tenant: "b"})
	}
	var got []string
	for j := sc.pop(); j != nil; j = sc.pop() {
		got = append(got, j.id)
	}
	want := "a b a a b a a b a"
	if s := strings.Join(got, " "); s != want {
		t.Fatalf("dispatch order = %q, want %q", s, want)
	}
	if sc.queued != 0 {
		t.Fatalf("queued = %d after draining, want 0", sc.queued)
	}
}

// TestSchedulerIdleTenantNoBankedCredit: a tenant that idles while
// others run re-enters at the current virtual time — it cannot bank
// credit and then monopolize the pool.
func TestSchedulerIdleTenantNoBankedCredit(t *testing.T) {
	limits := map[string]TenantLimit{}
	sc := newScheduler()
	// b runs alone for a while, advancing the virtual clock.
	for i := 0; i < 5; i++ {
		sc.enqueue(sc.tenantFor("b", limits), &job{id: "b", tenant: "b"})
		if j := sc.pop(); j == nil {
			t.Fatal("pop returned nil")
		}
	}
	// a arrives late; it must alternate with b, not run 5 in a row.
	for i := 0; i < 2; i++ {
		sc.enqueue(sc.tenantFor("a", limits), &job{id: "a", tenant: "a"})
		sc.enqueue(sc.tenantFor("b", limits), &job{id: "b", tenant: "b"})
	}
	var got []string
	for j := sc.pop(); j != nil; j = sc.pop() {
		got = append(got, j.id)
	}
	// The newcomer enters at the scheduler's base — one stride behind
	// the tenant that just dispatched — so it catches up by at most two
	// back-to-back dispatches, never the five b consumed while a was
	// absent.
	if s := strings.Join(got, " "); s != "a a b b" {
		t.Fatalf("post-idle dispatch order = %q, want \"a a b b\"", s)
	}
}

// TestAdmissionControlGlobal: MaxQueuedJobs bounds the queue across
// all tenants; the rejection is ErrOverloaded and counted.
func TestAdmissionControlGlobal(t *testing.T) {
	s := New(Config{Logger: obs.Nop(), SimWorkers: 1, MaxConcurrentJobs: 1,
		MaxQueuedJobs: 2})
	defer s.Close()
	running, err := s.Submit(slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, running, StateRunning)
	spec := JobSpec{Circuit: "c17", Mode: "drop",
		Patterns: PatternSpec{Random: &RandomSpec{N: 64, Seed: 1}}}
	var queued []string
	for i := 0; i < 2; i++ {
		id, err := s.Submit(spec)
		if err != nil {
			t.Fatalf("submit %d within bound: %v", i, err)
		}
		queued = append(queued, id)
	}
	if _, err := s.Submit(spec); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("submit past bound = %v, want ErrOverloaded", err)
	}
	if got := s.Stats().JobsRejected; got != 1 {
		t.Errorf("JobsRejected = %d, want 1", got)
	}
	_, body := httpGet(t, s.Metrics().Handler(), "/")
	if !containsLine(string(body), `adifo_jobs_rejected_total{reason="overloaded"} 1`) {
		t.Errorf("missing overloaded rejection in exposition")
	}
	s.Cancel(running)
	for _, id := range queued {
		s.Cancel(id)
	}
}

// TestAdmissionControlTenantLimit: a tenant's own MaxQueued rejects
// only that tenant; others keep submitting.
func TestAdmissionControlTenantLimit(t *testing.T) {
	s := New(Config{Logger: obs.Nop(), SimWorkers: 1, MaxConcurrentJobs: 1,
		TenantLimits: map[string]TenantLimit{"bounded": {Weight: 1, MaxQueued: 1}}})
	defer s.Close()
	running, err := s.Submit(slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, running, StateRunning)
	spec := JobSpec{Circuit: "c17", Mode: "drop", Tenant: "bounded",
		Patterns: PatternSpec{Random: &RandomSpec{N: 64, Seed: 2}}}
	first, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("first bounded submit: %v", err)
	}
	if _, err := s.Submit(spec); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second bounded submit = %v, want ErrOverloaded", err)
	}
	free := spec
	free.Tenant = "unbounded"
	freeID, err := s.Submit(free)
	if err != nil {
		t.Fatalf("other tenant rejected alongside: %v", err)
	}
	_, body := httpGet(t, s.Metrics().Handler(), "/")
	if !containsLine(string(body), `adifo_jobs_rejected_total{reason="tenant_limit"} 1`) {
		t.Errorf("missing tenant_limit rejection in exposition")
	}
	if !containsLine(string(body), `adifo_tenant_queue_depth{tenant="bounded"} 1`) {
		t.Errorf("missing bounded tenant queue depth in exposition")
	}
	s.Cancel(running)
	s.Cancel(first)
	s.Cancel(freeID)
}

// TestDrainCountsDroppedQueuedJobs: Drain cancels still-queued jobs
// and counts each drop under reason="drain" — shutdown collateral is
// visible on dashboards, not silent.
func TestDrainCountsDroppedQueuedJobs(t *testing.T) {
	s := New(Config{Logger: obs.Nop(), SimWorkers: 1, MaxConcurrentJobs: 1})
	running, err := s.Submit(slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, running, StateRunning)
	spec := JobSpec{Circuit: "c17", Mode: "drop",
		Patterns: PatternSpec{Random: &RandomSpec{N: 64, Seed: 3}}}
	var queued []string
	for i := 0; i < 3; i++ {
		id, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, id)
	}
	s.Drain()
	for _, id := range queued {
		st, ok := s.Status(id)
		if !ok {
			t.Fatalf("queued job %s vanished in drain", id)
		}
		if st.State != StateCancelled {
			t.Errorf("queued job %s state = %s after drain, want cancelled", id, st.State)
		}
	}
	_, body := httpGet(t, s.Metrics().Handler(), "/")
	if !containsLine(string(body), `adifo_jobs_rejected_total{reason="drain"} 3`) {
		t.Errorf("missing drain drops in exposition:\n%s", body)
	}
}

// TestValidateTenancyBounds: oversized or control-character tenant
// fields are rejected at submit time.
func TestValidateTenancyBounds(t *testing.T) {
	s := New(Config{Logger: obs.Nop(), SimWorkers: 1})
	defer s.Close()
	base := JobSpec{Circuit: "c17", Mode: "drop",
		Patterns: PatternSpec{Random: &RandomSpec{N: 64, Seed: 1}}}
	cases := map[string]func(*JobSpec){
		"long tenant":      func(sp *JobSpec) { sp.Tenant = strings.Repeat("x", 65) },
		"long key":         func(sp *JobSpec) { sp.IdempotencyKey = strings.Repeat("x", 257) },
		"control tenant":   func(sp *JobSpec) { sp.Tenant = "a\x00b" },
		"control idem key": func(sp *JobSpec) { sp.IdempotencyKey = "a\nb" },
	}
	for name, mutate := range cases {
		sp := base
		mutate(&sp)
		if _, err := s.Submit(sp); err == nil {
			t.Errorf("%s: submit accepted, want validation error", name)
		}
	}
	ok := base
	ok.Tenant = strings.Repeat("t", 64)
	ok.IdempotencyKey = strings.Repeat("k", 256)
	id, err := s.Submit(ok)
	if err != nil {
		t.Fatalf("boundary-length fields rejected: %v", err)
	}
	waitTerminal(t, s, id)
}

// TestSchedulerPrunesIdleTenants drives the scheduler directly through
// a long tenant churn: thousands of one-shot tenants enqueue, dispatch
// and idle, and the tenant map stays bounded by the prune window
// instead of growing with every tenant ever seen.
func TestSchedulerPrunesIdleTenants(t *testing.T) {
	limits := map[string]TenantLimit{}
	sc := newScheduler()
	pruned := 0
	sc.onPrune = func(string) { pruned++ }
	const churn = 5000
	for i := 0; i < churn; i++ {
		name := fmt.Sprintf("t%d", i)
		sc.enqueue(sc.tenantFor(name, limits), &job{id: name, tenant: name})
		if sc.pop() == nil {
			t.Fatalf("pop %d returned nil with work queued", i)
		}
		// Each enqueue+pop is one scheduler event; a tenant idles for at
		// most pruneAfter events before prune reclaims it.
		if n := len(sc.tenants); n > pruneAfter+1 {
			t.Fatalf("tenant map grew to %d entries after %d one-shot tenants (window %d)",
				n, i+1, pruneAfter)
		}
	}
	if pruned < churn-pruneAfter-1 {
		t.Fatalf("onPrune observed %d tenants, want >= %d", pruned, churn-pruneAfter-1)
	}
	// The idle-mark list drains along with the map.
	if len(sc.idle) > pruneAfter+1 {
		t.Fatalf("idle mark list holds %d entries, want <= %d", len(sc.idle), pruneAfter+1)
	}
}

// TestTenantChurnBoundedCardinality is the end-to-end churn stress: a
// stream of short-lived tenants (some cancelled mid-queue) must leave
// neither tenant-queue state nor adifo_tenant_queue_depth label series
// behind beyond the prune window. Run with -race: submits, cancels and
// the dispatcher race on the scheduler throughout.
func TestTenantChurnBoundedCardinality(t *testing.T) {
	s := New(Config{Logger: obs.Nop(), SimWorkers: 1, MaxConcurrentJobs: 4})
	defer s.Close()

	const churn = 400
	var ids []string
	for i := 0; i < churn; i++ {
		spec := JobSpec{Circuit: "c17", Mode: "drop",
			Tenant:   fmt.Sprintf("churn-%d", i),
			Patterns: PatternSpec{Random: &RandomSpec{N: 16, Seed: uint64(i)}}}
		id, err := s.Submit(spec)
		if err != nil {
			t.Fatalf("submit tenant %d: %v", i, err)
		}
		ids = append(ids, id)
		// Cancel roughly half while they may still be queued — removal
		// events must mark tenants idle exactly like dispatches do.
		if i%2 == 1 {
			s.Cancel(id)
		}
	}
	for _, id := range ids {
		waitTerminal(t, s, id)
	}

	s.mu.Lock()
	live := len(s.sched.tenants)
	s.mu.Unlock()
	// The default tenant is exempt from pruning; everything else must
	// sit within the idle window.
	if live > pruneAfter+2 {
		t.Fatalf("scheduler retains %d tenant queues after churn of %d, want <= %d",
			live, churn, pruneAfter+2)
	}

	_, body := httpGet(t, s.Metrics().Handler(), "/")
	labels := 0
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "adifo_tenant_queue_depth{") {
			labels++
		}
	}
	if labels > pruneAfter+2 {
		t.Fatalf("exposition carries %d tenant_queue_depth series after churn of %d, want <= %d",
			labels, churn, pruneAfter+2)
	}
	// And the series that do remain must all read zero — nothing is
	// queued anymore.
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "adifo_tenant_queue_depth{") && !strings.HasSuffix(line, " 0") {
			t.Errorf("non-zero queue depth after quiescence: %s", line)
		}
	}
}
