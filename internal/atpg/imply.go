package atpg

import (
	"github.com/eda-go/adifo/internal/circuit"
	"github.com/eda-go/adifo/internal/fault"
	"github.com/eda-go/adifo/internal/logic"
)

// Event-driven implication with an undo trail.
//
// Three-valued forward implication is monotone along one decision
// path: assigning a PI can only turn X lines binary, never flip a
// binary line. Each gate therefore changes at most once per
// assignment, so propagating assignments as events through a
// level-ordered queue touches only the affected cone instead of
// re-simulating the whole netlist — the difference between O(cone)
// and O(|C|) per decision dominates ATPG run time on the larger
// benchmarks. Undo is a value trail: every change is recorded and
// rolled back exactly to the decision mark on backtrack.

// trailEntry records one gate's values before a change.
type trailEntry struct {
	gate int
	g, f logic.V3
}

// resetImplication initializes both machines for a fresh fault: all
// lines X except the faulty machine's stuck line.
func (g *Generator) resetImplication() {
	for i := range g.gval {
		g.gval[i] = logic.X
		g.fval[i] = logic.X
	}
	if g.target.Pin == fault.StemPin {
		g.fval[g.target.Gate] = logic.FromBit(g.target.SA)
	} else {
		// A branch fault with every other input of the sink gate
		// already... no inputs are assigned yet, but the stuck input
		// may already determine the sink's faulty value (controlling
		// stuck value).
		g.fval[g.target.Gate] = g.evalFaulty(g.target.Gate)
	}
	g.trail = g.trail[:0]
}

// assign sets primary input index to v and propagates. It returns the
// trail mark to pass to undoTo when the decision is retracted.
func (g *Generator) assign(input int, v logic.V3) int {
	mark := len(g.trail)
	g.pi[input] = v
	gate := g.c.Inputs[input]

	ng := v
	nf := v
	if g.target.Pin == fault.StemPin && g.target.Gate == gate {
		nf = logic.FromBit(g.target.SA)
	}
	g.setAndEnqueue(gate, ng, nf)
	g.propagateEvents()
	return mark
}

// undoTo rolls the value state back to a trail mark and clears the PI
// assignment of the retracted decision (done by the caller).
func (g *Generator) undoTo(mark int) {
	for i := len(g.trail) - 1; i >= mark; i-- {
		e := g.trail[i]
		g.gval[e.gate] = e.g
		g.fval[e.gate] = e.f
	}
	g.trail = g.trail[:mark]
}

// setAndEnqueue records the old values of gate, installs the new ones
// and queues its fanout for re-evaluation.
func (g *Generator) setAndEnqueue(gate int, ng, nf logic.V3) {
	if g.gval[gate] == ng && g.fval[gate] == nf {
		return
	}
	g.trail = append(g.trail, trailEntry{gate: gate, g: g.gval[gate], f: g.fval[gate]})
	g.gval[gate] = ng
	g.fval[gate] = nf
	for _, fo := range g.c.Fanout[gate] {
		g.enqueue(fo.Gate)
	}
}

func (g *Generator) enqueue(gate int) {
	if g.qmark[gate] == g.epoch {
		return
	}
	g.qmark[gate] = g.epoch
	lvl := g.c.Level[gate]
	if len(g.buckets[lvl]) == 0 {
		g.usedLevels = append(g.usedLevels, lvl)
	}
	g.buckets[lvl] = append(g.buckets[lvl], gate)
}

// propagateEvents drains the level-ordered queue, re-evaluating each
// queued gate once.
func (g *Generator) propagateEvents() {
	for lvl := 0; lvl <= g.c.MaxLevel; lvl++ {
		bucket := g.buckets[lvl]
		if len(bucket) == 0 {
			continue
		}
		for _, gate := range bucket {
			ng := g.evalGood(gate)
			var nf logic.V3
			if g.target.Pin == fault.StemPin && g.target.Gate == gate {
				nf = logic.FromBit(g.target.SA)
			} else {
				nf = g.evalFaulty(gate)
			}
			g.setAndEnqueue(gate, ng, nf)
		}
		g.buckets[lvl] = g.buckets[lvl][:0]
	}
	// Reset the epoch bookkeeping for the next propagation wave.
	g.epoch++
	g.usedLevels = g.usedLevels[:0]
}

func (g *Generator) evalGood(gate int) logic.V3 {
	gt := &g.c.Gates[gate]
	in := g.in[:len(gt.Fanin)]
	for k, fi := range gt.Fanin {
		in[k] = g.gval[fi]
	}
	return circuit.EvalV3(gt.Type, in)
}

func (g *Generator) evalFaulty(gate int) logic.V3 {
	gt := &g.c.Gates[gate]
	in := g.in[:len(gt.Fanin)]
	for k, fi := range gt.Fanin {
		in[k] = g.fval[fi]
	}
	if g.target.Pin != fault.StemPin && g.target.Gate == gate {
		in[g.target.Pin] = logic.FromBit(g.target.SA)
	}
	return circuit.EvalV3(gt.Type, in)
}
