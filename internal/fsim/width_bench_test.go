package fsim

import (
	"strconv"
	"testing"

	"github.com/eda-go/adifo/internal/fault"
	"github.com/eda-go/adifo/internal/gen"
	"github.com/eda-go/adifo/internal/logic"
	"github.com/eda-go/adifo/internal/prng"
)

// BenchmarkWidthSweep crosses the explicit kernel block widths with
// the dropping modes on the large suite circuits: the numbers behind
// the mode-aware automatic width rule in pickLanes.
func BenchmarkWidthSweep(b *testing.B) {
	for _, name := range []string{"irs5378", "irs13207"} {
		sc, ok := gen.SuiteByName(name)
		if !ok {
			b.Fatalf("suite circuit %s missing", name)
		}
		c := sc.Build()
		fl := fault.CollapsedUniverse(c)
		ps := logic.RandomPatterns(c.NumInputs(), 1024, prng.New(sc.Seed))
		for _, mode := range []Options{{Mode: Drop}, {Mode: NoDrop}} {
			for _, width := range []int{64, 256, 512} {
				opts, w := mode, width
				b.Run(name+"/"+opts.Mode.String()+"/bw"+strconv.Itoa(w), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						RunParallelWith(fl, ps, ParallelOptions{Options: opts, Workers: 8, BlockWidth: w})
					}
				})
			}
		}
	}
}
