// Package service turns the batch library into a long-running,
// concurrent multi-kind job engine: a registry caches the artifacts
// that are expensive to derive and safe to share (parsed circuits,
// collapsed fault lists, good-machine simulations), a bounded pool
// runs jobs, and a small job API — submit, status, result, cancel,
// streaming progress — is exposed over HTTP by cmd/adifod and consumed
// by the client package. Every job carries a cancellable context:
// Cancel aborts a queued job immediately and a running job at its next
// barrier (a 64-pattern simulation block, or one ATPG target).
//
// Jobs come in kinds, dispatched through the jobKind registry: grade
// (fault grading through the sharded simulator, the original
// workload), atpg (ADI-ordered test generation) and adi_order (the
// fault order alone). All kinds share the queue, worker pool,
// cancellation, progress streaming and LRU registry machinery; each
// kind supplies validate/run/result hooks.
//
// Everything a job shares is read-only: circuits and fault lists are
// immutable after construction, good values are written once under the
// registry lock, and per-job drop state lives in a private
// fault.ActiveSet inside the simulator. Results are therefore
// bit-identical to a direct library run with equal inputs.
package service

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"github.com/eda-go/adifo/internal/fsim"
	"github.com/eda-go/adifo/internal/journal"
	"github.com/eda-go/adifo/internal/logic"
	"github.com/eda-go/adifo/internal/obs"
	"github.com/eda-go/adifo/internal/obs/trace"
	"github.com/eda-go/adifo/internal/prng"
	"github.com/eda-go/adifo/internal/tgen"
)

// Config sizes the service; zero values select sensible defaults.
type Config struct {
	// SimWorkers is the default per-job shard worker count
	// (GOMAXPROCS when 0); a job spec may override it downward.
	SimWorkers int
	// MaxConcurrentJobs bounds how many jobs simulate at once; further
	// jobs queue (default 2).
	MaxConcurrentJobs int
	// CircuitCache and GoodCache are the registry LRU capacities
	// (defaults 32 and 64 entries).
	CircuitCache int
	GoodCache    int
	// MaxRetainedJobs bounds how many finished jobs (and their
	// results) are kept for status/result queries; the oldest
	// finished jobs are evicted first, queued and running jobs are
	// never evicted (default 1024).
	MaxRetainedJobs int
	// Kinds restricts which job kinds this service accepts (nil or
	// empty = all). Submissions of other kinds are rejected with
	// ErrUnsupportedKind, so a deployment can dedicate servers to one
	// workload (e.g. grade-only backends behind a cluster
	// coordinator).
	Kinds []string
	// JournalDir, when set, enables the write-ahead job journal: every
	// lifecycle transition is appended to an append-only log under this
	// directory, and Open replays it before accepting traffic —
	// terminal jobs come back with byte-identical results, jobs that
	// were queued or running re-enqueue, and idempotency keys
	// deduplicate across the restart. Empty disables durability (the
	// pre-journal in-memory behavior).
	JournalDir string
	// JournalNoSync skips the per-append fsync (records still reach
	// the OS immediately). Tests and benchmarks only: a machine crash
	// can lose acknowledged records.
	JournalNoSync bool
	// MaxQueuedJobs bounds the total queued (accepted, not yet
	// running) jobs across all tenants; submits beyond it are rejected
	// with ErrOverloaded (default 4096, negative = unbounded).
	MaxQueuedJobs int
	// TenantLimits configures per-tenant scheduling weights and queue
	// bounds, keyed by the JobSpec.Tenant value. Tenants not listed
	// get weight 1 and no per-tenant queue bound.
	TenantLimits map[string]TenantLimit
	// Logger receives diagnostics the service cannot surface to any
	// caller, such as response-encoding failures after the status line
	// was sent. Records carry structured fields ("job", "kind") rather
	// than formatted strings. Nil selects the stack default (Info-level
	// text on stderr); tests and benchmarks pass obs.Nop() for quiet
	// runs.
	Logger *slog.Logger
}

// JobSpec is a job request. Exactly one of Circuit (a named embedded
// or synthetic circuit) and Bench (an inline .bench netlist) must be
// set. Kind selects the workload; the grade-specific fields (Mode, N,
// StopAtCoverage, FaultShard) and the order/gen sub-specs are only
// meaningful for their kinds and rejected elsewhere.
type JobSpec struct {
	// Kind is the job kind: "grade", "atpg" or "adi_order". Empty
	// means grade — the only kind the v1 wire knew originally, so old
	// specs keep their meaning unchanged.
	Kind string `json:"kind,omitempty"`
	// Tenant names the submitting tenant for fair scheduling and
	// admission control; empty is the default tenant. Additive to the
	// v1 wire.
	Tenant string `json:"tenant,omitempty"`
	// IdempotencyKey, when set, deduplicates submits per tenant: a
	// second submit with the same key returns the first submit's job
	// id instead of enqueueing again — including across a restart on a
	// journal-backed server. Additive to the v1 wire.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
	Circuit        string `json:"circuit,omitempty"`
	Bench          string `json:"bench,omitempty"`
	// Name labels an inline netlist (cosmetic; named circuits keep
	// their own name).
	Name string `json:"name,omitempty"`
	// Patterns is the vector set: the graded vectors for grade jobs,
	// the ADI vector set U for atpg and adi_order jobs.
	Patterns PatternSpec `json:"patterns"`
	// Mode is the dropping policy: "nodrop", "drop" or "ndetect".
	// Required on grade jobs — the wire contract has no silent
	// default; requests with an empty mode are rejected. Forbidden on
	// other kinds, which simulate without dropping by definition.
	Mode string `json:"mode,omitempty"`
	// N is the drop threshold for ndetect mode.
	N int `json:"n,omitempty"`
	// Order selects the fault order for atpg and adi_order jobs.
	// Required on those kinds, forbidden on grade.
	Order *OrderSpec `json:"order,omitempty"`
	// Gen tunes an atpg job's generator; optional, atpg only.
	Gen *GenSpec `json:"gen,omitempty"`
	// Workers overrides the service's shard worker count for this job
	// (0 = service default). Results never depend on it. Out-of-range
	// values (negative, or above the service's SimWorkers) are rejected
	// at submit time rather than silently clamped.
	Workers int `json:"workers,omitempty"`
	// BlockWidth pins the simulation kernel's block width in patterns
	// per fault pass: 64, 256 or 512 (0 = automatic, which picks the
	// widest block the job's pattern count and mode justify). Results
	// never depend on it. Other values are rejected at submit time.
	BlockWidth int `json:"block_width,omitempty"`
	// StopAtCoverage, when positive, stops after the first block
	// reaching that fault coverage.
	StopAtCoverage float64 `json:"stop_at_coverage,omitempty"`
	// FaultShard, when set, restricts the job to one deterministic
	// index-range shard of the collapsed fault universe, graded against
	// the full pattern set. Dropping decisions are per-fault, so
	// disjoint shards have no cross-fault control dependence and a set
	// of shard results merges bit-identically to an unsharded run (the
	// internal/cluster coordinator relies on this). Incompatible with
	// StopAtCoverage, whose cut-off depends on global coverage. Grade
	// jobs only: the other kinds are sequential over shared state and
	// reject it.
	FaultShard *FaultShard `json:"fault_shard,omitempty"`
}

// FaultShard selects shard Index of Count over the collapsed fault
// universe: the half-open index range ShardRange(faults, Index, Count).
type FaultShard struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

// ShardRange returns the half-open collapsed-fault index range
// [lo, hi) of shard index of count over n faults. The count ranges
// partition [0, n) exactly, each of size n/count or n/count+1, so the
// partition is a pure function of (n, count) — every party (service,
// cluster coordinator, tests) derives the same shards.
func ShardRange(n, index, count int) (lo, hi int) {
	return index * n / count, (index + 1) * n / count
}

// PatternSpec selects the vector set: exactly one of Random,
// Exhaustive and Vectors must be set.
type PatternSpec struct {
	Random     *RandomSpec `json:"random,omitempty"`
	Exhaustive bool        `json:"exhaustive,omitempty"`
	// Vectors are explicit input vectors as bit strings ("0110"), one
	// character per primary input.
	Vectors []string `json:"vectors,omitempty"`
}

// RandomSpec requests N uniformly random vectors from the library
// PRNG seeded with Seed, reproducible across runs and hosts.
type RandomSpec struct {
	N    int    `json:"n"`
	Seed uint64 `json:"seed"`
}

// Job states. Queued and running jobs may still change state; done,
// failed and cancelled are terminal.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// terminal reports whether a job state is final.
func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

// JobStatus is the pollable view of a job. Progress fields update at
// every barrier: a 64-pattern simulation block, or one ATPG target for
// the generation phase of atpg jobs.
type JobStatus struct {
	ID string `json:"id"`
	// Kind is the job's canonical kind name ("grade", "atpg",
	// "adi_order").
	Kind string `json:"kind,omitempty"`
	// Tenant echoes the spec's tenant (empty = default tenant).
	Tenant  string `json:"tenant,omitempty"`
	State   string `json:"state"`
	Circuit string `json:"circuit,omitempty"`
	Faults  int    `json:"faults,omitempty"`
	Vectors int    `json:"vectors,omitempty"`
	Blocks  int    `json:"blocks,omitempty"`

	BlocksDone  int `json:"blocks_done"`
	VectorsUsed int `json:"vectors_used"`
	Detected    int `json:"detected"`
	Active      int `json:"active"`

	// ATPG-phase progress of atpg jobs: targets attempted of the total
	// order, and tests generated so far.
	Targets     int `json:"targets,omitempty"`
	TargetsDone int `json:"targets_done,omitempty"`
	Tests       int `json:"tests,omitempty"`

	// FaultShard echoes the spec's shard selector for shard jobs;
	// Faults then counts only the shard's faults.
	FaultShard *FaultShard `json:"fault_shard,omitempty"`

	// Timing is the job's wall-clock record: submit/start/finish
	// timestamps, queue wait, and per-phase durations. Additive to the
	// v1 wire — servers predating it simply omit the field.
	Timing *Timing `json:"timing,omitempty"`

	// TraceID is the job's distributed-trace id (32 lowercase hex
	// digits): the caller's trace when the submit carried a traceparent
	// header, a server-minted one otherwise. Feed it to /debug/traces
	// on the server's debug listener. Additive to the v1 wire.
	TraceID string `json:"trace_id,omitempty"`

	Error string `json:"error,omitempty"`
}

// ProgressEvent is one entry of a job's streaming progress feed: one
// per 64-pattern simulation block (all kinds), and one per ATPG target
// during the generation phase of atpg jobs (Target/Targets/Tests set,
// block fields zero).
type ProgressEvent struct {
	JobID       string `json:"job_id"`
	Kind        string `json:"kind,omitempty"`
	State       string `json:"state"`
	Block       int    `json:"block"`
	Blocks      int    `json:"blocks"`
	VectorsUsed int    `json:"vectors_used"`
	Detected    int    `json:"detected"`
	Active      int    `json:"active"`

	// ATPG-phase fields: Target counts order positions attempted so
	// far, Targets is the order length, Tests the vectors generated.
	Target  int `json:"target,omitempty"`
	Targets int `json:"targets,omitempty"`
	Tests   int `json:"tests,omitempty"`
}

// JobResult is the full outcome of a grade job, matching what a
// direct library run returns. The other kinds have their own result
// payloads (AtpgResult, OrderResult), served by the same result
// endpoint and told apart by the Kind field.
type JobResult struct {
	ID          string `json:"id"`
	Kind        string `json:"kind,omitempty"`
	Circuit     string `json:"circuit"`
	Fingerprint string `json:"fingerprint"`
	Mode        string `json:"mode"`
	// Faults counts the faults this job graded (the shard size for
	// shard jobs); TotalFaults is the full collapsed universe, so shard
	// results carry everything a merge needs to validate completeness.
	Faults      int `json:"faults"`
	TotalFaults int `json:"total_faults"`
	// FaultShard echoes the spec's shard selector; nil on unsharded
	// jobs and on merged cluster results.
	FaultShard  *FaultShard `json:"fault_shard,omitempty"`
	Vectors     int         `json:"vectors"`
	VectorsUsed int         `json:"vectors_used"`
	Detected    int         `json:"detected"`
	Coverage    float64     `json:"coverage"`
	// Ndet[u] is the number of faults detected by vector u under the
	// job's dropping policy.
	Ndet []int `json:"ndet"`
	// PerFault is indexed by collapsed fault index.
	PerFault []FaultResult `json:"per_fault"`
	// Timing is the job's wall-clock record, attached by the engine at
	// the terminal transition (merged cluster results carry the merge
	// phase instead of a single server's run).
	Timing *Timing `json:"timing,omitempty"`
	// TraceID is the job's distributed-trace id, identical to the one
	// on the status. Additive to the v1 wire.
	TraceID string `json:"trace_id,omitempty"`
}

// FaultResult is the per-fault grading outcome.
type FaultResult struct {
	F        int    `json:"f"`
	Name     string `json:"name"`
	DetCount int    `json:"det_count"`
	FirstDet int    `json:"first_det"`
	// Det lists the detecting vector indices (the detection set D(f)),
	// present in nodrop and ndetect modes.
	Det []int `json:"det,omitempty"`
}

// Stats is the service-level counter snapshot.
type Stats struct {
	Registry      RegistryStats `json:"registry"`
	JobsSubmitted uint64        `json:"jobs_submitted"`
	JobsDone      uint64        `json:"jobs_done"`
	JobsFailed    uint64        `json:"jobs_failed"`
	JobsCancelled uint64        `json:"jobs_cancelled"`
	// JobsDeduped counts submits answered from the idempotency-key
	// map instead of enqueueing; JobsRejected counts submits refused
	// by admission control or drain (see the
	// adifo_jobs_rejected_total metric for the per-reason split).
	JobsDeduped  uint64 `json:"jobs_deduped"`
	JobsRejected uint64 `json:"jobs_rejected"`
	JobsRunning  int    `json:"jobs_running"`
	JobsQueued   int    `json:"jobs_queued"`
	// Workers is the server's configured per-job shard worker bound
	// (Config.SimWorkers) — a capacity hint cluster coordinators use to
	// weight placement across heterogeneous backends. Omitted by old
	// servers; 0 means unknown.
	Workers int `json:"workers,omitempty"`
	// UptimeSeconds is the service's age; Version the build version —
	// the same values the adifo_uptime_seconds and adifo_build_info
	// metrics expose.
	UptimeSeconds float64 `json:"uptime_seconds"`
	Version       string  `json:"version"`
}

// Errors returned by Submit, Result and Cancel.
var (
	ErrNotFound  = errors.New("service: job not found")
	ErrNotDone   = errors.New("service: job not finished")
	ErrCancelled = errors.New("service: job cancelled")
	ErrFinished  = errors.New("service: job already finished")
	// ErrDraining is returned by Submit once Drain has been called:
	// the service is shutting down and accepts no new jobs.
	ErrDraining = errors.New("service: draining, not accepting new jobs")
)

// Service is the concurrent fault-grading engine.
type Service struct {
	cfg    Config
	reg    *Registry
	sem    chan struct{}
	wg     sync.WaitGroup
	logger *slog.Logger

	// jnl is the write-ahead job journal, nil when Config.JournalDir
	// is unset. Appends happen outside mu: the journal has its own
	// lock and group-commits concurrent writers.
	jnl *journal.Journal

	// met holds the engine's instruments, registered on metrics; start
	// anchors the uptime gauge. now is the clock, swappable by tests
	// that pin timing values.
	metrics *obs.Registry
	met     *serviceMetrics
	start   time.Time
	now     func() time.Time

	// traces is the in-process flight recorder completed job traces
	// land in, served over /debug/traces by embedders.
	traces *trace.Recorder

	// schedCond signals the dispatcher goroutine that sched gained
	// work (or schedClosed was set). It shares mu.
	schedCond *sync.Cond

	mu          sync.Mutex
	jobs        map[string]*job
	order       []string // job ids in submission order
	sched       *scheduler
	schedClosed bool
	// idem maps tenant-scoped idempotency keys to job ids (rebuilt
	// from the journal at recovery).
	idem      map[string]string
	seq       uint64
	submitted uint64
	done      uint64
	failed    uint64
	cancelled uint64
	deduped   uint64
	rejected  uint64
	draining  bool
	// replayRecords and replayRequeued describe the recovery pass, for
	// the journal replay metrics.
	replayRecords  uint64
	replayRequeued uint64
}

type job struct {
	id   string
	spec JobSpec
	kind jobKind
	// tenant is the spec's tenant; idemKey the tenant-scoped dedupe
	// map key ("" when the spec carried no idempotency key) — kept on
	// the job so eviction can drop the map entry with it.
	tenant  string
	idemKey string

	// ctx governs the job's work; cancel is invoked by Service.Cancel
	// and aborts the run at the next barrier (simulation block or ATPG
	// target).
	ctx    context.Context
	cancel context.CancelFunc

	// tctx is the job's trace context: recorder + the trace identity
	// minted (or joined from the caller's traceparent) at submit. run()
	// replaces it with the root span's context, so phase and journal
	// spans nest under the job span. span is that root span, ended
	// exactly once by the terminal transition. Both nil on bare test
	// jobs — every consumer tolerates that.
	tctx context.Context
	span *trace.Span

	// now and met are the owning service's clock and instruments,
	// copied in at submit so the hot paths (phase stopwatches, block
	// counters) never reach back through the service.
	now func() time.Time
	met *serviceMetrics

	mu     sync.Mutex
	status JobStatus
	timing Timing
	// result is the kind-specific payload: *JobResult for grade,
	// *AtpgResult for atpg, *OrderResult for adi_order.
	result any
	// rawResult holds the journaled wire JSON of a replayed terminal
	// job's result; the result endpoint serves it verbatim so a
	// restart is byte-invisible to clients.
	rawResult []byte
	subs      []chan ProgressEvent
}

// New returns a ready service. It panics if Config.JournalDir is set
// but the journal cannot be opened or replayed — programs enabling
// durability should call Open and handle the error.
func New(cfg Config) *Service {
	s, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Open returns a ready service. With Config.JournalDir set it opens
// the write-ahead journal and replays it before returning, so by the
// time any listener accepts traffic every pre-crash terminal job
// answers result queries with byte-identical payloads and every job
// that was queued or running is queued again.
func Open(cfg Config) (*Service, error) {
	if cfg.SimWorkers <= 0 {
		cfg.SimWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxConcurrentJobs <= 0 {
		cfg.MaxConcurrentJobs = 2
	}
	if cfg.CircuitCache <= 0 {
		cfg.CircuitCache = 32
	}
	if cfg.GoodCache <= 0 {
		cfg.GoodCache = 64
	}
	if cfg.MaxRetainedJobs <= 0 {
		cfg.MaxRetainedJobs = 1024
	}
	if cfg.MaxQueuedJobs == 0 {
		cfg.MaxQueuedJobs = 4096
	}
	s := &Service{
		cfg:     cfg,
		reg:     NewRegistry(cfg.CircuitCache, cfg.GoodCache),
		sem:     make(chan struct{}, cfg.MaxConcurrentJobs),
		jobs:    make(map[string]*job),
		sched:   newScheduler(),
		idem:    make(map[string]string),
		logger:  obs.Or(cfg.Logger),
		metrics: obs.NewRegistry(),
		now:     time.Now,
	}
	s.schedCond = sync.NewCond(&s.mu)
	s.start = s.now()
	s.traces = trace.NewRecorder(trace.RecorderOptions{})
	s.met = newServiceMetrics(s.metrics, s)
	// A pruned tenant's gauge label leaves the exposition with it, so
	// /metrics cardinality tracks live tenants, not every tenant name
	// the server has ever seen.
	s.sched.onPrune = func(tenant string) {
		s.met.tenantQueueDepth.Delete(tenantLabel(tenant))
	}
	if cfg.JournalDir != "" {
		// Open before replay: the journal only ever appends to a fresh
		// segment, so the replay scan sees every pre-crash segment plus
		// an empty new one — and recovery can itself journal (a
		// replayed spec that no longer validates is recorded as
		// failed).
		jnl, err := journal.Open(cfg.JournalDir, journal.Options{NoSync: cfg.JournalNoSync})
		if err != nil {
			return nil, err
		}
		s.jnl = jnl
		if err := s.recover(cfg.JournalDir); err != nil {
			jnl.Close()
			return nil, err
		}
	}
	go s.dispatch()
	return s, nil
}

// Registry exposes the cache (stats and pre-warming).
func (s *Service) Registry() *Registry { return s.reg }

// Metrics exposes the service's metric registry, so embedders (the
// adifod debug listener, the facade) can mount its exposition handler
// elsewhere or register their own instruments alongside the engine's.
func (s *Service) Metrics() *obs.Registry { return s.metrics }

// Logger returns the service's structured logger.
func (s *Service) Logger() *slog.Logger { return s.logger }

// Traces exposes the service's trace flight recorder, so embedders
// (the adifod debug listener, the facade) can mount its /debug/traces
// handler.
func (s *Service) Traces() *trace.Recorder { return s.traces }

// validateSpec performs everything Submit checks before enqueueing —
// the common validation (circuit reference, kind dispatch, worker
// bound, pattern spec, shardability) followed by the kind's own hook —
// and resolves the spec's kind. It spawns nothing, so it is also the
// surface the wire fuzz tests drive with arbitrary decoded specs.
func (s *Service) validateSpec(spec JobSpec) (jobKind, error) {
	if _, err := CircuitKey(spec); err != nil {
		return nil, err
	}
	kindName := NormalizeKind(spec.Kind)
	k, ok := jobKinds[kindName]
	if !ok {
		return nil, unsupportedKindError(kindName, KindNames())
	}
	if !s.kindAllowed(kindName) {
		return nil, unsupportedKindError(kindName, s.cfg.Kinds)
	}
	if spec.Workers < 0 || spec.Workers > s.cfg.SimWorkers {
		return nil, fmt.Errorf("workers %d out of range [0, %d] (0 = service default)",
			spec.Workers, s.cfg.SimWorkers)
	}
	switch spec.BlockWidth {
	case 0, 64, 256, 512:
	default:
		return nil, fmt.Errorf("block_width %d invalid; want 0 (auto), 64, 256 or 512", spec.BlockWidth)
	}
	if err := validateTenancy(spec); err != nil {
		return nil, err
	}
	if err := validatePatterns(spec.Patterns); err != nil {
		return nil, err
	}
	if spec.FaultShard != nil && !k.shardable() {
		return nil, fmt.Errorf("fault_shard applies only to grade jobs, not %q", kindName)
	}
	if err := k.validate(spec); err != nil {
		return nil, err
	}
	return k, nil
}

// kindAllowed reports whether this server serves the given canonical
// kind name (Config.Kinds empty = all).
func (s *Service) kindAllowed(kindName string) bool {
	if len(s.cfg.Kinds) == 0 {
		return true
	}
	for _, k := range s.cfg.Kinds {
		if NormalizeKind(k) == kindName {
			return true
		}
	}
	return false
}

// Submit validates spec, enqueues a job on its tenant's queue and
// returns its id. The job runs asynchronously on the bounded pool;
// resolution errors (bad netlist, unknown name) surface as a failed
// job status.
//
// A spec carrying an idempotency key that an earlier accepted submit
// already used (same tenant) is not enqueued again: Submit returns the
// original job id. Admission control rejects submits with
// ErrOverloaded once the global or per-tenant queue bound is reached.
// On a journal-backed service Submit returns only after the submitted
// record is durable — an acknowledged job survives a crash.
func (s *Service) Submit(spec JobSpec) (string, error) {
	return s.SubmitContext(context.Background(), spec)
}

// SubmitContext is Submit carrying the caller's context for trace
// propagation: when ctx holds a span or a remote SpanContext (extracted
// from an incoming traceparent header), the job joins that trace;
// otherwise a fresh trace id is minted. The context's cancellation does
// NOT govern the job — jobs outlive their submit request by design and
// are aborted through Cancel.
func (s *Service) SubmitContext(ctx context.Context, spec JobSpec) (string, error) {
	k, err := s.validateSpec(spec)
	if err != nil {
		return "", err
	}

	// Phase 1 (under mu): dedupe, admission, id + idempotency-key
	// reservation, registration. The job is visible to Status and to
	// Drain's wg accounting from here on, but not yet dispatchable.
	s.mu.Lock()
	if s.draining {
		s.rejected++
		s.mu.Unlock()
		s.met.jobsRejected.With(reasonDraining).Inc()
		return "", ErrDraining
	}
	ikey := idemCacheKey(spec.Tenant, spec.IdempotencyKey)
	if ikey != "" {
		if id, ok := s.idem[ikey]; ok {
			s.deduped++
			s.mu.Unlock()
			s.met.jobsDeduped.Inc()
			return id, nil
		}
	}
	if err := s.admitLocked(spec.Tenant); err != nil {
		s.rejected++
		s.mu.Unlock()
		return "", err
	}
	s.seq++
	id := fmt.Sprintf("j%d", s.seq)
	j := s.newJob(ctx, id, spec, k)
	s.jobs[id] = j
	s.order = append(s.order, id)
	if ikey != "" {
		s.idem[ikey] = id
	}
	// Registered under the lock: a concurrent Drain either sees the
	// draining flag before this Submit passed the check above, or its
	// wg.Wait observes this job — never neither.
	s.wg.Add(1)
	s.mu.Unlock()

	// Phase 2 (no locks): make the submitted record durable. The
	// journal group-commits concurrent submitters into shared fsyncs.
	if s.jnl != nil {
		if err := s.journalSubmitted(j); err != nil {
			s.mu.Lock()
			delete(s.jobs, id)
			if ikey != "" {
				delete(s.idem, ikey)
			}
			for i, oid := range s.order {
				if oid == id {
					s.order = append(s.order[:i], s.order[i+1:]...)
					break
				}
			}
			s.mu.Unlock()
			s.wg.Done()
			return "", fmt.Errorf("service: journal: %w", err)
		}
	}

	// Phase 3 (under mu): count and enqueue; the dispatcher takes it
	// from here. A Cancel or Drain that raced phase 2 only cancelled
	// j's context — the dispatcher still dispatches it and run()
	// performs the cancelled transition.
	s.mu.Lock()
	s.submitted++
	s.enqueueLocked(j)
	s.evictOldJobsLocked()
	s.mu.Unlock()
	s.schedCond.Signal()
	return id, nil
}

// newJob builds a queued job for spec. The submit context contributes
// only the trace identity: the job joins the caller's trace when one is
// on ctx, else mints its own, and the trace id is visible on the status
// from the first poll. Caller holds s.mu (for the clock) and registers
// the returned job itself.
func (s *Service) newJob(ctx context.Context, id string, spec JobSpec, k jobKind) *job {
	jctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:      id,
		spec:    spec,
		kind:    k,
		tenant:  spec.Tenant,
		idemKey: idemCacheKey(spec.Tenant, spec.IdempotencyKey),
		ctx:     jctx,
		cancel:  cancel,
		now:     s.now,
		met:     s.met,
		timing:  Timing{SubmittedAt: s.now()},
		status: JobStatus{
			ID:         id,
			Kind:       NormalizeKind(spec.Kind),
			Tenant:     spec.Tenant,
			State:      StateQueued,
			FaultShard: spec.FaultShard,
		},
	}
	// The trace context is rooted on Background, not the submit
	// request's context: the job outlives the request.
	sc := trace.SpanContextFromContext(ctx)
	if !sc.IsValid() {
		sc = trace.SpanContext{TraceID: trace.NewTraceID(), Flags: trace.FlagSampled}
	}
	j.tctx = trace.ContextWithRemote(trace.WithRecorder(context.Background(), s.traces), sc)
	j.status.TraceID = sc.TraceID.String()
	j.status.Timing = j.timing.Snapshot()
	return j
}

// admitLocked is the admission check: reject (rather than queue
// without bound) once the global or per-tenant queued-job budget is
// spent. Caller holds s.mu and counts the rejection.
func (s *Service) admitLocked(tenant string) error {
	if s.cfg.MaxQueuedJobs > 0 && s.sched.queued >= s.cfg.MaxQueuedJobs {
		s.met.jobsRejected.With(reasonOverloaded).Inc()
		return fmt.Errorf("%w (%d jobs queued, global bound %d)",
			ErrOverloaded, s.sched.queued, s.cfg.MaxQueuedJobs)
	}
	if tl, ok := s.cfg.TenantLimits[tenant]; ok && tl.MaxQueued > 0 {
		if d := s.sched.depth(tenant); d >= tl.MaxQueued {
			s.met.jobsRejected.With(reasonTenantLimit).Inc()
			return fmt.Errorf("%w (tenant %q has %d jobs queued, bound %d)",
				ErrOverloaded, tenantLabel(tenant), d, tl.MaxQueued)
		}
	}
	return nil
}

// enqueueLocked puts j on its tenant queue and settles the queue
// gauges. Caller holds s.mu and signals schedCond after unlocking.
func (s *Service) enqueueLocked(j *job) {
	tq := s.sched.tenantFor(j.tenant, s.cfg.TenantLimits)
	s.sched.enqueue(tq, j)
	s.met.jobsSubmitted.With(j.status.Kind).Inc()
	s.met.jobsQueued.Inc()
	s.met.tenantQueueDepth.With(tenantLabel(j.tenant)).Inc()
}

// dispatch is the scheduler loop, one goroutine per service: acquire a
// pool slot, pick the next job across tenant queues by weighted fair
// order, run it. It exits when the scheduler is closed (Drain or
// Close) and all queues are empty.
func (s *Service) dispatch() {
	for {
		s.sem <- struct{}{}
		s.mu.Lock()
		for s.sched.queued == 0 && !s.schedClosed {
			s.schedCond.Wait()
		}
		if s.sched.queued == 0 {
			s.mu.Unlock()
			<-s.sem
			return
		}
		j := s.sched.pop()
		s.met.tenantQueueDepth.With(tenantLabel(j.tenant)).Dec()
		s.mu.Unlock()
		go s.run(j)
	}
}

// Status returns the current status of a job.
func (s *Service) Status(id string) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status, true
}

// Jobs returns the status of every known job in submission order.
func (s *Service) Jobs() []JobStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if st, ok := s.Status(id); ok {
			out = append(out, st)
		}
	}
	return out
}

// ResultAny returns the kind-specific outcome of a finished job —
// *JobResult for grade, *AtpgResult for atpg, *OrderResult for
// adi_order. It returns ErrNotFound for unknown ids, ErrNotDone while
// the job is queued or running, ErrCancelled for cancelled jobs, and
// the job's failure for failed jobs.
func (s *Service) ResultAny(id string) (any, error) {
	res, _, err := s.result(id)
	return res, err
}

// result returns a finished job's typed payload plus, for jobs
// replayed from the journal, the journaled wire bytes — the HTTP
// result endpoint serves those verbatim so a restart is byte-invisible
// to polling clients.
func (s *Service) result(id string) (any, []byte, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, nil, ErrNotFound
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.status.State {
	case StateDone:
		return j.result, j.rawResult, nil
	case StateFailed:
		return nil, nil, fmt.Errorf("service: job %s failed: %s", id, j.status.Error)
	case StateCancelled:
		return nil, nil, fmt.Errorf("%w (job %s)", ErrCancelled, id)
	}
	return nil, nil, ErrNotDone
}

// Result is ResultAny for grade jobs, the dominant workload; it errors
// on jobs of other kinds instead of guessing at a conversion.
func (s *Service) Result(id string) (*JobResult, error) {
	v, err := s.ResultAny(id)
	if err != nil {
		return nil, err
	}
	r, ok := v.(*JobResult)
	if !ok {
		return nil, fmt.Errorf("service: job %s is not a grade job (its result is %T); fetch it with ResultAny", id, v)
	}
	return r, nil
}

// Cancel aborts a job. A queued job transitions to cancelled
// immediately; a running job is interrupted at its next block barrier
// and transitions shortly after (poll Status or consume Subscribe to
// observe the terminal state). Cancel is idempotent on already
// cancelled jobs. It returns ErrNotFound for unknown ids and
// ErrFinished for jobs that already completed or failed; the returned
// status is the job's state as of the call.
func (s *Service) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return JobStatus{}, ErrNotFound
	}
	// Winning the dequeue makes this Cancel the owner of the terminal
	// transition: the dispatcher can no longer claim the job, so the
	// slot it would have used is never consumed.
	dequeued := s.sched.remove(j)
	if dequeued {
		s.met.tenantQueueDepth.With(tenantLabel(j.tenant)).Dec()
	}
	s.mu.Unlock()
	// Signal first: if the run goroutine is between barriers it will
	// observe the cancellation at the next one.
	j.cancel()

	if dequeued {
		s.finish(j, StateCancelled, nil, nil)
		s.wg.Done()
		j.mu.Lock()
		st := j.status
		j.mu.Unlock()
		return st, nil
	}

	j.mu.Lock()
	st := j.status
	j.mu.Unlock()
	switch st.State {
	case StateDone, StateFailed:
		return st, ErrFinished
	}
	// Cancelled already, running (stops within one block; the run
	// goroutine performs the terminal transition), or in the brief
	// submit/dispatch windows where the dispatcher will hand it to
	// run(), which observes the cancelled context immediately.
	return st, nil
}

// Subscribe returns a channel of per-block progress events for a job
// and a cancel function. The channel closes when the job reaches a
// terminal state (immediately for already-finished jobs). Events are
// advisory: a slow consumer may miss intermediate blocks but the
// channel close is always delivered.
func (s *Service) Subscribe(id string) (<-chan ProgressEvent, func(), bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, nil, false
	}
	ch := make(chan ProgressEvent, 16)
	j.mu.Lock()
	if terminal(j.status.State) {
		close(ch)
	} else {
		j.subs = append(j.subs, ch)
	}
	j.mu.Unlock()
	cancel := func() {
		j.mu.Lock()
		for i, c := range j.subs {
			if c == ch {
				// Nil the vacated tail slot so the backing array does
				// not pin the channel (and its buffered events) after
				// the subscriber is gone.
				copy(j.subs[i:], j.subs[i+1:])
				j.subs[len(j.subs)-1] = nil
				j.subs = j.subs[:len(j.subs)-1]
				break
			}
		}
		j.mu.Unlock()
	}
	return ch, cancel, true
}

// Stats returns the service counters, including the registry cache
// hit/miss counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Registry:      s.reg.Stats(),
		JobsSubmitted: s.submitted,
		JobsDone:      s.done,
		JobsFailed:    s.failed,
		JobsCancelled: s.cancelled,
		JobsDeduped:   s.deduped,
		JobsRejected:  s.rejected,
		Workers:       s.cfg.SimWorkers,
		UptimeSeconds: s.now().Sub(s.start).Seconds(),
		Version:       obs.Version,
	}
	for _, j := range s.jobs {
		j.mu.Lock()
		switch j.status.State {
		case StateRunning:
			st.JobsRunning++
		case StateQueued:
			st.JobsQueued++
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	return st
}

// Close waits for all submitted jobs to finish, then stops the
// dispatcher goroutine. Jobs submitted after Close are accepted but
// not dispatched; use Drain for an orderly shutdown that rejects them.
func (s *Service) Close() {
	s.wg.Wait()
	s.closeScheduler()
}

// Drain shuts the service down gracefully: Submit rejects new jobs
// with ErrDraining from the moment Drain is called, every queued job
// is dropped — cancelled and counted in the jobs_rejected_total
// metric's drain reason, so a shutdown's collateral is visible, not
// silent — every running job is cancelled at its next 64-pattern block
// barrier (their streams end with the cancelled status), and Drain
// returns once all job goroutines have finished and the dispatcher has
// been stopped. On a journal-backed service the drops are journaled as
// cancelled, so a restart does not resurrect them. Idempotent:
// concurrent and repeated calls all wait for the same quiescent state.
func (s *Service) Drain() {
	s.mu.Lock()
	s.draining = true
	dropped := s.sched.drainAll()
	for _, j := range dropped {
		// drainAll already deleted every non-default tenant's gauge
		// label via onPrune; decrementing those here would resurrect
		// the label at a negative value. Only the default tenant's
		// pre-created, never-pruned series still needs the decrement.
		if j.tenant == "" {
			s.met.tenantQueueDepth.With(tenantLabel("")).Dec()
		}
	}
	s.rejected += uint64(len(dropped))
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	s.met.draining.Set(1)
	for _, j := range dropped {
		s.met.jobsRejected.With(reasonDrain).Inc()
		j.cancel()
		s.finish(j, StateCancelled, nil, nil)
		s.wg.Done()
	}
	for _, id := range ids {
		// ErrFinished and ErrNotFound (evicted) are fine: the job is
		// already out of the way.
		s.Cancel(id)
	}
	s.wg.Wait()
	s.closeScheduler()
	if s.jnl != nil {
		s.jnl.Close()
	}
}

// closeScheduler stops the dispatcher goroutine once its queues are
// empty. Idempotent.
func (s *Service) closeScheduler() {
	s.mu.Lock()
	s.schedClosed = true
	s.mu.Unlock()
	s.schedCond.Broadcast()
}

// evictOldJobsLocked drops the oldest finished jobs once the retained
// set exceeds the configured bound, so a long-running server's memory
// stays proportional to MaxRetainedJobs rather than to its lifetime
// request count. Queued and running jobs are always kept. Caller
// holds s.mu.
func (s *Service) evictOldJobsLocked() {
	excess := len(s.order) - s.cfg.MaxRetainedJobs
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		done := terminal(j.status.State)
		j.mu.Unlock()
		if excess > 0 && done {
			delete(s.jobs, id)
			if j.idemKey != "" && s.idem[j.idemKey] == id {
				delete(s.idem, j.idemKey)
			}
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// run executes one dispatched job: it claims the running state, hands
// the body to the job's kind, and performs the terminal transition the
// kind's outcome calls for. The dispatcher acquired the pool slot;
// run releases it. A context error from the kind means the job was
// cancelled at a barrier; any other error fails the job. The body runs
// under pprof labels (kind, job), so CPU profiles attribute simulator
// and generator samples to the job that spent them — worker goroutines
// spawned inside inherit the labels.
func (s *Service) run(j *job) {
	defer s.wg.Done()
	defer func() {
		if p := recover(); p != nil {
			s.finish(j, StateFailed, nil, fmt.Errorf("internal error: %v", p))
		}
	}()
	defer func() { <-s.sem }()

	// A job cancelled after the dispatcher claimed it (or in the
	// submit windows before it was enqueued) reaches here with its
	// context already cancelled; transition it without working.
	if j.ctx.Err() != nil {
		s.finish(j, StateCancelled, nil, nil)
		return
	}

	// Running covers circuit resolution too: generating a synthetic
	// suite circuit can take seconds and must not look queued.
	j.mu.Lock()
	if terminal(j.status.State) {
		j.mu.Unlock()
		return
	}
	j.status.State = StateRunning
	j.timing.StartedAt = s.now()
	j.timing.QueueWaitSeconds = j.timing.StartedAt.Sub(j.timing.SubmittedAt).Seconds()
	j.status.Timing = j.timing.Snapshot()
	kind, wait := j.status.Kind, j.timing.QueueWaitSeconds
	j.mu.Unlock()
	s.met.jobsQueued.Dec()
	s.met.jobsRunning.Inc()
	s.met.queueWait.With(kind).Observe(wait)
	s.journalStarted(j)

	// The job's root span: phase and journal spans started under j.tctx
	// from here on nest beneath it, and ending it (in finish) completes
	// the trace in the flight recorder.
	tctx, span := trace.Start(j.tctx, "job."+kind, trace.Root())
	span.SetAttr("kind", kind)
	span.SetAttr("job", j.id)
	j.mu.Lock()
	j.tctx, j.span = tctx, span
	j.mu.Unlock()

	var result any
	var err error
	pprof.Do(j.ctx, pprof.Labels("kind", kind, "job", j.id), func(context.Context) {
		result, err = j.kind.run(s, j)
	})
	switch {
	case err == nil:
		s.finish(j, StateDone, result, nil)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.finish(j, StateCancelled, nil, nil)
	default:
		s.finish(j, StateFailed, nil, err)
	}
}

// finish performs a job's terminal transition — the single path every
// outcome (done, failed, cancelled-queued, cancelled-running,
// drain-dropped, panic recovery) goes through: state + timing + result
// publication under the job lock, subscriber close, metric settlement,
// the journal's finished record, and the service counters. At most one
// caller wins; later calls are no-ops, so racing finishers (a Cancel
// against the run goroutine, say) are safe.
func (s *Service) finish(j *job, state string, result any, cause error) {
	j.mu.Lock()
	if terminal(j.status.State) {
		j.mu.Unlock()
		return
	}
	j.status.State = state
	if cause != nil {
		j.status.Error = cause.Error()
	}
	if result != nil {
		j.result = result
	}
	started := j.finalizeLocked()
	kind := j.status.Kind
	run := j.timing.RunSeconds
	st := j.status
	res := j.result
	subs := j.subs
	j.subs = nil
	tctx := j.tctx
	j.mu.Unlock()
	if tctx == nil {
		tctx = context.Background()
	}

	for _, ch := range subs {
		close(ch)
	}
	s.countTerminal(kind, state, started)
	switch state {
	case StateDone:
		s.met.duration.With(kind).Observe(run)
	case StateFailed:
		s.logger.ErrorContext(tctx, "job failed", "job", j.id, "kind", kind, "err", cause)
	}
	s.journalFinished(j, st, res)
	j.endSpan(state, cause)
	s.mu.Lock()
	switch state {
	case StateDone:
		s.done++
	case StateFailed:
		s.failed++
	case StateCancelled:
		s.cancelled++
	}
	s.mu.Unlock()
}

// endSpan closes the job's root span — the last act of the terminal
// transition, so the completed trace already carries the journal's
// finished-append span. A job that never ran (cancelled while queued)
// has no root span yet; one is opened and closed on the spot so its
// trace still completes in the recorder.
func (j *job) endSpan(state string, cause error) {
	j.mu.Lock()
	span, tctx, kind := j.span, j.tctx, j.status.Kind
	j.span = nil
	j.mu.Unlock()
	if span == nil {
		if tctx == nil {
			return
		}
		_, span = trace.Start(tctx, "job."+kind, trace.Root())
		span.SetAttr("kind", kind)
		span.SetAttr("job", j.id)
	}
	span.SetAttr("state", state)
	switch {
	case cause != nil:
		span.SetStatus(trace.StatusError, cause.Error())
	case state == StateDone:
		span.SetStatus(trace.StatusOK, "")
	}
	span.End()
}

// finalizeLocked stamps the terminal timing on the job and mirrors it
// to the status and the result payload (when one exists). It reports
// whether the job had started — the caller uses that to settle the
// right occupancy gauge. Called with j.mu held, terminal state set.
func (j *job) finalizeLocked() (started bool) {
	j.timing.FinishedAt = j.now()
	started = !j.timing.StartedAt.IsZero()
	if started {
		j.timing.RunSeconds = j.timing.FinishedAt.Sub(j.timing.StartedAt).Seconds()
	}
	t := j.timing.Snapshot()
	j.status.Timing = t
	if r, ok := j.result.(timed); ok {
		r.setTiming(t)
	}
	if r, ok := j.result.(traced); ok && j.status.TraceID != "" {
		r.setTraceID(j.status.TraceID)
	}
	return started
}

// countTerminal settles the metrics of a job reaching terminal state:
// the per-kind outcome counter, and whichever occupancy gauge (running
// or queued) the job leaves.
func (s *Service) countTerminal(kind, state string, started bool) {
	s.met.jobsTotal.With(kind, state).Inc()
	if started {
		s.met.jobsRunning.Dec()
	} else {
		s.met.jobsQueued.Dec()
	}
}

// publish pushes one block-barrier progress snapshot to the status and
// to every subscriber. Sends never block: progress is advisory.
func (j *job) publish(p fsim.Progress) {
	j.met.simBlocks.Inc()
	j.mu.Lock()
	j.status.BlocksDone = p.Block + 1
	j.status.VectorsUsed = p.VectorsUsed
	j.status.Detected = p.Detected
	j.status.Active = p.Active
	ev := ProgressEvent{
		JobID:       j.id,
		Kind:        j.status.Kind,
		State:       StateRunning,
		Block:       p.Block,
		Blocks:      p.Blocks,
		VectorsUsed: p.VectorsUsed,
		Detected:    p.Detected,
		Active:      p.Active,
	}
	j.send(ev)
}

// publishGen pushes one per-target ATPG progress snapshot — the
// generation-phase analogue of publish, fired after every PODEM
// attempt.
func (j *job) publishGen(p tgen.Progress) {
	j.mu.Lock()
	j.status.TargetsDone = p.Done
	j.status.Targets = p.Targets
	j.status.Tests = p.Tests
	j.status.Detected = p.Detected
	j.status.Active = p.Active
	ev := ProgressEvent{
		JobID:    j.id,
		Kind:     j.status.Kind,
		State:    StateRunning,
		Target:   p.Done,
		Targets:  p.Targets,
		Tests:    p.Tests,
		Detected: p.Detected,
		Active:   p.Active,
	}
	j.send(ev)
}

// send delivers one event to every subscriber without blocking (a slow
// consumer misses intermediate events, never the channel close).
// Called with j.mu held; unlocks it.
func (j *job) send(ev ProgressEvent) {
	subs := append([]chan ProgressEvent(nil), j.subs...)
	j.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

func validatePatterns(spec PatternSpec) error {
	n := 0
	if spec.Random != nil {
		n++
		if spec.Random.N <= 0 {
			return fmt.Errorf("random pattern spec requires n > 0")
		}
	}
	if spec.Exhaustive {
		n++
	}
	if len(spec.Vectors) > 0 {
		n++
	}
	if n != 1 {
		return fmt.Errorf("pattern spec must set exactly one of random, exhaustive, vectors")
	}
	return nil
}

// buildPatterns materializes the vector set of a spec for a circuit
// with the given input count and returns a deterministic content key
// for the good-machine cache.
func buildPatterns(inputs int, spec PatternSpec) (*logic.PatternSet, string, error) {
	switch {
	case spec.Random != nil:
		ps := logic.RandomPatterns(inputs, spec.Random.N, prng.New(spec.Random.Seed))
		return ps, fmt.Sprintf("r:%d:%d", spec.Random.N, spec.Random.Seed), nil
	case spec.Exhaustive:
		if inputs > 20 {
			return nil, "", fmt.Errorf("exhaustive patterns limited to 20 inputs, circuit has %d", inputs)
		}
		return logic.ExhaustivePatterns(inputs), "x", nil
	case len(spec.Vectors) > 0:
		ps := logic.NewPatternSet(inputs)
		h := fnv.New64a()
		for i, s := range spec.Vectors {
			if len(s) != inputs {
				return nil, "", fmt.Errorf("vector %d has %d bits, circuit has %d inputs", i, len(s), inputs)
			}
			v := make(logic.Vector, inputs)
			for k := 0; k < len(s); k++ {
				switch s[k] {
				case '0':
				case '1':
					v[k] = 1
				default:
					return nil, "", fmt.Errorf("vector %d: invalid character %q", i, s[k])
				}
			}
			ps.Append(v)
			h.Write([]byte(s))
			h.Write([]byte{'\n'})
		}
		return ps, fmt.Sprintf("v:%016x", h.Sum64()), nil
	}
	return nil, "", fmt.Errorf("empty pattern spec")
}
