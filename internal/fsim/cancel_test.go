package fsim

import (
	"context"
	"runtime"
	"testing"
	"time"

	"github.com/eda-go/adifo/internal/benchdata"
	"github.com/eda-go/adifo/internal/fault"
	"github.com/eda-go/adifo/internal/logic"
	"github.com/eda-go/adifo/internal/prng"
)

// countingCtx reports cancellation after Err has been polled limit
// times, letting the sequential tests cancel deterministically mid-run
// without goroutines or timing.
type countingCtx struct {
	context.Context
	calls, limit int
}

func (c *countingCtx) Err() error {
	c.calls++
	if c.calls > c.limit {
		return context.Canceled
	}
	return nil
}

func c17Setup(t *testing.T, vectors int) (*fault.List, *logic.PatternSet) {
	t.Helper()
	c, err := benchdata.Load("c17")
	if err != nil {
		t.Fatal(err)
	}
	return fault.CollapsedUniverse(c), logic.RandomPatterns(c.NumInputs(), vectors, prng.New(11))
}

func TestRunContextPreCancelled(t *testing.T) {
	fl, ps := c17Setup(t, 640)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := RunContext(ctx, fl, ps, Options{Mode: NoDrop})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if r.VectorsUsed != 0 || len(r.Ndet) != 0 {
		t.Fatalf("pre-cancelled run simulated %d vectors", r.VectorsUsed)
	}
}

// TestRunContextCancelMidRun cancels a sequential run after the k-th
// block poll and checks it stops there, with a partial result whose
// counters cover exactly the simulated prefix.
func TestRunContextCancelMidRun(t *testing.T) {
	fl, ps := c17Setup(t, 640) // 10 blocks
	const after = 3
	ctx := &countingCtx{Context: context.Background(), limit: after}
	r, err := RunContext(ctx, fl, ps, Options{Mode: NoDrop})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if r.VectorsUsed != after*logic.WordBits {
		t.Fatalf("VectorsUsed = %d, want %d (stop within one block of the cancel)",
			r.VectorsUsed, after*logic.WordBits)
	}
	if len(r.Ndet) != r.VectorsUsed {
		t.Fatalf("Ndet length %d, VectorsUsed %d", len(r.Ndet), r.VectorsUsed)
	}
	// The partial prefix must agree with an uncancelled run truncated
	// to the same vectors.
	full := Run(fl, ps, Options{Mode: NoDrop})
	for u := 0; u < r.VectorsUsed; u++ {
		if r.Ndet[u] != full.Ndet[u] {
			t.Fatalf("partial ndet(%d) = %d, full run has %d", u, r.Ndet[u], full.Ndet[u])
		}
	}
	for fi := range fl.Faults {
		if fd := r.FirstDet[fi]; fd >= 0 && fd != full.FirstDet[fi] {
			t.Fatalf("partial FirstDet[%d] = %d, full run has %d", fi, fd, full.FirstDet[fi])
		}
	}
}

// TestRunParallelCtxCancelMidRun cancels a sharded run from the
// progress callback at a block barrier and checks the run stops within
// one further block, leaking no goroutines. Pinned to the scalar block
// width: the 64-pattern batch is the cancellation granularity this
// test asserts (see TestRunParallelCtxCancelWide for wide batches).
func TestRunParallelCtxCancelMidRun(t *testing.T) {
	fl, ps := c17Setup(t, 1024) // 16 blocks
	for _, workers := range []int{1, 3, 8} {
		before := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		const cancelAt = 2
		r, err := RunParallelCtx(ctx, fl, ps, ParallelOptions{
			Options:    Options{Mode: NoDrop},
			Workers:    workers,
			BlockWidth: 64,
			Progress: func(p Progress) {
				if p.Block == cancelAt {
					cancel()
				}
			},
		})
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// The cancel lands at the barrier of block cancelAt; the poll at
		// the head of the next block stops the run.
		if want := (cancelAt + 1) * logic.WordBits; r.VectorsUsed != want {
			t.Fatalf("workers=%d: VectorsUsed = %d, want %d", workers, r.VectorsUsed, want)
		}
		if len(r.Ndet) != r.VectorsUsed {
			t.Fatalf("workers=%d: Ndet length %d, VectorsUsed %d", workers, len(r.Ndet), r.VectorsUsed)
		}
		cancel()
		// Workers are joined at the block barrier, so nothing should
		// outlive the call; allow the runtime a moment to retire stacks.
		leakDeadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > before && time.Now().Before(leakDeadline) {
			time.Sleep(time.Millisecond)
		}
		if now := runtime.NumGoroutine(); now > before {
			t.Fatalf("workers=%d: goroutines %d -> %d after cancelled run", workers, before, now)
		}
	}
}

// TestRunParallelCtxCancelWide pins the cancellation granularity of
// the 512-pattern kernel: a cancel delivered during a superblock takes
// effect at the next superblock boundary, so the run stops on a
// 512-vector multiple with all progress events of the finished
// superblock delivered.
func TestRunParallelCtxCancelWide(t *testing.T) {
	fl, ps := c17Setup(t, 1024) // 16 blocks = 2 superblocks at width 512
	ctx, cancel := context.WithCancel(context.Background())
	var events []Progress
	r, err := RunParallelCtx(ctx, fl, ps, ParallelOptions{
		Options:    Options{Mode: NoDrop},
		Workers:    3,
		BlockWidth: 512,
		Progress: func(p Progress) {
			events = append(events, p)
			if p.Block == 2 {
				cancel() // mid-superblock: the batch still completes
			}
		},
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if r.VectorsUsed != 512 {
		t.Fatalf("VectorsUsed = %d, want 512 (one full superblock)", r.VectorsUsed)
	}
	if len(events) != 8 {
		t.Fatalf("got %d progress events, want 8 (all blocks of the finished superblock)", len(events))
	}
	if len(r.Ndet) != r.VectorsUsed {
		t.Fatalf("Ndet length %d, VectorsUsed %d", len(r.Ndet), r.VectorsUsed)
	}
	full := Run(fl, ps, Options{Mode: NoDrop})
	for u := 0; u < r.VectorsUsed; u++ {
		if r.Ndet[u] != full.Ndet[u] {
			t.Fatalf("partial ndet(%d) = %d, full run has %d", u, r.Ndet[u], full.Ndet[u])
		}
	}
}

// TestRunParallelCtxComplete checks the nil-error contract and result
// equality with the sequential path on an uncancelled context.
func TestRunParallelCtxComplete(t *testing.T) {
	fl, ps := c17Setup(t, 320)
	r, err := RunParallelCtx(context.Background(), fl, ps, ParallelOptions{
		Options: Options{Mode: Drop},
		Workers: 4,
	})
	if err != nil {
		t.Fatalf("uncancelled run returned %v", err)
	}
	want := Run(fl, ps, Options{Mode: Drop})
	if r.VectorsUsed != want.VectorsUsed || r.DetectedCount() != want.DetectedCount() {
		t.Fatalf("parallel ctx run diverged: %d/%d vs %d/%d",
			r.VectorsUsed, r.DetectedCount(), want.VectorsUsed, want.DetectedCount())
	}
}

func TestParseModeRejectsEmpty(t *testing.T) {
	if _, err := ParseMode(""); err == nil {
		t.Fatal("ParseMode(\"\") must be rejected; the default lives at the API boundary")
	}
	for name, want := range map[string]Mode{"nodrop": NoDrop, "drop": Drop, "ndetect": NDetect} {
		got, err := ParseMode(name)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = %v, %v", name, got, err)
		}
	}
}
