// Package cluster fans one fault-grading job out across multiple
// adifod backends. The coordinator partitions the collapsed fault
// universe into deterministic index-range shards (service.ShardRange),
// submits one sub-job per healthy backend with the wire's fault_shard
// selector set, merges the streamed per-block progress and the final
// per-shard results into a single JobResult, and retries the shard of
// a dead backend on a surviving one.
//
// The merge is bit-identical to an unsharded single-node run because
// dropping decisions are per-fault: a fault drops when its own
// detection count crosses the mode threshold, so disjoint fault shards
// have no cross-fault control dependence. Each backend grades its
// shard against the full (replicated) pattern set; per-fault counters
// concatenate, per-vector ndet counters sum, and the merged
// vectors-used is the maximum over shards — exactly the block at which
// a single run's global active list would have emptied. Patterns are
// replicated rather than split because dropping *does* depend on
// earlier vectors: pattern shards would have cross-shard control
// dependence, fault shards do not.
//
// Backend health is probed via /v1/stats; a backend that keeps failing
// (flapping) is excluded from retry placement once its consecutive
// failure count reaches Options.MaxBackendFailures.
package cluster

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/pprof"
	"sync"
	"time"

	"github.com/eda-go/adifo/internal/obs"
	"github.com/eda-go/adifo/internal/obs/trace"
	"github.com/eda-go/adifo/internal/service"
	"github.com/eda-go/adifo/internal/service/client"
)

// Options configures a Coordinator; zero values select sensible
// defaults.
type Options struct {
	// HTTPClient is used for every backend call (nil =
	// http.DefaultClient).
	HTTPClient *http.Client
	// ProbeTimeout bounds one /v1/stats health probe (default 2s).
	ProbeTimeout time.Duration
	// MaxShardRetries is how many times one shard may be resubmitted
	// after backend failures before the cluster job fails (default 3).
	MaxShardRetries int
	// MaxBackendFailures is the consecutive-failure count at which a
	// backend is considered flapping and excluded from placement until
	// a sub-job completes on it again (default 3).
	MaxBackendFailures int
	// MaxRetainedJobs bounds how many finished cluster jobs (and their
	// merged results) are kept for status/result queries, mirroring the
	// service's own retention bound; the oldest finished jobs are
	// evicted first, running jobs never (default 1024).
	MaxRetainedJobs int
	// Logger receives placement and retry diagnostics as structured
	// records with "backend", "shard" and "job" fields. Nil selects the
	// stack default (Info-level text on stderr); tests pass obs.Nop().
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.HTTPClient == nil {
		o.HTTPClient = http.DefaultClient
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	if o.MaxShardRetries <= 0 {
		o.MaxShardRetries = 3
	}
	if o.MaxBackendFailures <= 0 {
		o.MaxBackendFailures = 3
	}
	if o.MaxRetainedJobs <= 0 {
		o.MaxRetainedJobs = 1024
	}
	o.Logger = obs.Or(o.Logger)
	return o
}

// backend is one adifod server plus its health bookkeeping. failures
// counts consecutive transport-level failures; any completed sub-job
// resets it.
type backend struct {
	url string
	cl  *client.Client

	mu       sync.Mutex
	failures int
}

func (b *backend) markFailure() {
	b.mu.Lock()
	b.failures++
	b.mu.Unlock()
}

func (b *backend) markOK() {
	b.mu.Lock()
	b.failures = 0
	b.mu.Unlock()
}

// flapping reports whether the backend has hit the consecutive-failure
// threshold.
func (b *backend) flapping(max int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.failures >= max
}

// Coordinator fans grading jobs out across a fixed set of adifod
// backends. It implements the same submit/status/result/cancel/stream
// surface as the service, which is what lets the adifo facade expose
// it behind the Grader interface.
type Coordinator struct {
	opts     Options
	backends []*backend
	logger   *slog.Logger

	// metrics/met instrument the coordinator; now is the clock,
	// swappable by tests that pin timing values.
	metrics *obs.Registry
	met     *clusterMetrics
	now     func() time.Time

	// traces records the coordinator's side of every cluster job's
	// trace: the fan-out root, one span per shard attempt (including
	// reruns after backend deaths), and the merge. The sub-jobs join
	// the same trace on their backends via traceparent propagation.
	traces *trace.Recorder

	// nonce distinguishes this coordinator incarnation in the
	// idempotency keys it mints for shard sub-jobs: a restarted
	// coordinator re-placing the "same" shard must not collide with a
	// sub-job the previous incarnation left on a journal-backed backend.
	nonce string

	mu    sync.Mutex
	jobs  map[string]*cjob
	order []string
	seq   uint64
	idem  map[string]string // caller idempotency key -> cluster job id
	wg    sync.WaitGroup
}

// New returns a coordinator over the given backend base URLs (e.g.
// "http://host:8417"). At least one URL is required.
func New(urls []string, opts Options) (*Coordinator, error) {
	if len(urls) == 0 {
		return nil, errors.New("cluster: at least one backend URL is required")
	}
	opts = opts.withDefaults()
	co := &Coordinator{
		opts:    opts,
		logger:  opts.Logger,
		jobs:    make(map[string]*cjob),
		idem:    make(map[string]string),
		metrics: obs.NewRegistry(),
		now:     time.Now,
		nonce:   newNonce(),
		traces:  trace.NewRecorder(trace.RecorderOptions{}),
	}
	co.met = newClusterMetrics(co.metrics)
	seen := make(map[string]bool)
	for _, u := range urls {
		if seen[u] {
			return nil, fmt.Errorf("cluster: duplicate backend URL %s", u)
		}
		seen[u] = true
		co.backends = append(co.backends, &backend{url: u, cl: client.New(u, opts.HTTPClient)})
		// Pre-create the per-backend series so a scrape shows the full
		// backend set at zero before any probe or failure.
		co.met.probeSeconds.With(u)
		co.met.exclusions.With(u)
	}
	return co, nil
}

// Metrics exposes the coordinator's metric registry, so an embedder
// can mount its Prometheus exposition handler.
func (co *Coordinator) Metrics() *obs.Registry { return co.metrics }

// Traces exposes the coordinator's trace flight recorder, so an
// embedder can mount its /debug/traces handler.
func (co *Coordinator) Traces() *trace.Recorder { return co.traces }

// newNonce mints the coordinator incarnation nonce for shard
// idempotency keys.
func newNonce() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0"
	}
	return hex.EncodeToString(b[:])
}

// shardKey is the idempotency key of one shard placement attempt.
// Deterministic within an incarnation: if the coordinator (or the
// client under it) repeats the same placement after a lost response,
// the backend dedupes the repeat into the already-accepted sub-job —
// exactly-once per backend. The retry counter is part of the key
// because a *re-placed* shard is a new logical attempt: its rerun must
// not dedupe into the sub-job that was just declared lost.
func (co *Coordinator) shardKey(jobID string, index, count, retries int) string {
	return fmt.Sprintf("c-%s-%s-s%d.%d-r%d", co.nonce, jobID, index, count, retries)
}

// shard is one fault-range sub-job of a cluster job. backend and
// remoteID change when the shard is retried elsewhere.
type shard struct {
	index, count int

	mu       sync.Mutex
	backend  *backend
	remoteID string
	state    string // running/done/failed/cancelled from the cluster's view
	retries  int
	result   *service.JobResult
	err      error
}

func (sh *shard) placement() (*backend, string) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.backend, sh.remoteID
}

func (sh *shard) finish(state string, res *service.JobResult, err error) {
	sh.mu.Lock()
	sh.state = state
	sh.result = res
	sh.err = err
	sh.mu.Unlock()
}

// ShardStatus is the observable placement state of one shard, exposed
// for diagnostics and tests.
type ShardStatus struct {
	Index    int    `json:"index"`
	Count    int    `json:"count"`
	Backend  string `json:"backend"`
	RemoteID string `json:"remote_id"`
	State    string `json:"state"`
	Retries  int    `json:"retries"`
	Error    string `json:"error,omitempty"`
}

// cjob is one cluster-level grading job.
type cjob struct {
	id     string
	spec   service.JobSpec
	shards []*shard
	merge  *merger

	// tctx carries the job's root span (plus the coordinator's
	// recorder); shard-attempt and merge spans start under it, and
	// outbound backend calls inject its traceparent. span is that root,
	// ended once by finalize. Both are set before the shard goroutines
	// start and never reassigned.
	tctx context.Context
	span *trace.Span

	// pubMu serializes merge-and-publish pairs so merged events reach
	// subscribers in block order even when shard streams race.
	pubMu sync.Mutex

	mu        sync.Mutex
	status    service.JobStatus
	timing    service.Timing
	result    *service.JobResult
	cancelled bool
	subs      []*subscriber
}

// subscriber buffers merged progress events for one Subscribe caller
// without loss. The merged feed emits every block exactly once, so the
// queue — formally unbounded — is in fact bounded by the job's block
// count. A fixed drop-on-full channel here would lose merged blocks
// whenever a shard rerun catches up after a backend death: the merger
// then emits a burst of gap-filled blocks faster than a consumer
// goroutine is guaranteed to be scheduled.
type subscriber struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []service.ProgressEvent
	done  bool          // terminal: nothing more will be queued
	stop  chan struct{} // closed on cancel: the consumer is gone
}

func newSubscriber() *subscriber {
	sb := &subscriber{stop: make(chan struct{})}
	sb.cond = sync.NewCond(&sb.mu)
	return sb
}

// push appends one event to the queue; a no-op once the feed is
// terminal.
func (sb *subscriber) push(ev service.ProgressEvent) {
	sb.mu.Lock()
	if !sb.done {
		sb.queue = append(sb.queue, ev)
	}
	sb.mu.Unlock()
	sb.cond.Signal()
}

// finish marks the feed terminal; the pump drains what is already
// queued and then closes the consumer channel.
func (sb *subscriber) finish() {
	sb.mu.Lock()
	sb.done = true
	sb.mu.Unlock()
	sb.cond.Broadcast()
}

// next blocks until an event is queued or the feed is terminal and
// drained.
func (sb *subscriber) next() (service.ProgressEvent, bool) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	for len(sb.queue) == 0 && !sb.done {
		sb.cond.Wait()
	}
	if len(sb.queue) == 0 {
		return service.ProgressEvent{}, false
	}
	ev := sb.queue[0]
	sb.queue = sb.queue[1:]
	return ev, true
}

func (j *cjob) isCancelled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelled
}

// probe checks one backend's liveness with the configured timeout and
// records the round-trip in the per-backend probe histogram (a dead
// backend observes the timeout it cost the sweep).
func (co *Coordinator) probe(ctx context.Context, b *backend) error {
	pctx, cancel := context.WithTimeout(ctx, co.opts.ProbeTimeout)
	defer cancel()
	start := co.now()
	_, err := b.cl.Stats(pctx)
	co.met.probeSeconds.With(b.url).Observe(co.now().Sub(start).Seconds())
	return err
}

// exclude counts and logs one placement decision that passed over a
// flapping backend.
func (co *Coordinator) exclude(b *backend) {
	co.met.exclusions.With(b.url).Inc()
	co.logger.Debug("backend excluded from placement (flapping)", "backend", b.url)
}

// healthyBackends probes every backend concurrently (one ProbeTimeout
// bounds the whole sweep, not each dead backend in turn) and returns
// the live, non-flapping ones in configuration order.
func (co *Coordinator) healthyBackends(ctx context.Context) []*backend {
	ok := make([]bool, len(co.backends))
	var wg sync.WaitGroup
	for i, b := range co.backends {
		if b.flapping(co.opts.MaxBackendFailures) {
			co.exclude(b)
			continue
		}
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			if err := co.probe(ctx, b); err != nil {
				b.markFailure()
				co.logger.Warn("backend unhealthy", "backend", b.url, "err", err)
				return
			}
			ok[i] = true
		}(i, b)
	}
	wg.Wait()
	var out []*backend
	for i, b := range co.backends {
		if ok[i] {
			out = append(out, b)
		}
	}
	return out
}

// Submit partitions the fault universe across the currently healthy
// backends and submits one fault-shard sub-job per backend,
// synchronously, so spec validation errors surface here exactly as
// they do on a direct service submit. The returned id names the
// cluster job; the sub-jobs stream and merge asynchronously.
func (co *Coordinator) Submit(ctx context.Context, spec service.JobSpec) (string, error) {
	if kind := service.NormalizeKind(spec.Kind); kind != service.KindGrade {
		// Explicit, not silently degraded: fault sharding is what the
		// cluster sells, and only grade jobs have the per-fault
		// independence it needs (atpg and the dynamic orders are
		// sequential over shared ndet/drop state). Other kinds belong
		// on a single backend via the remote generator/orderer.
		return "", fmt.Errorf("cluster: %w %q: fault sharding applies only to grade jobs; submit %s jobs to a single backend",
			service.ErrUnsupportedKind, kind, kind)
	}
	if spec.FaultShard != nil {
		return "", errors.New("cluster: spec must not carry fault_shard; the coordinator assigns shards")
	}
	if spec.StopAtCoverage > 0 {
		return "", errors.New("cluster: stop_at_coverage is not supported on sharded jobs (the cut-off depends on global coverage)")
	}
	healthy := co.healthyBackends(ctx)
	if len(healthy) == 0 {
		return "", errors.New("cluster: no healthy backends")
	}
	count := len(healthy)

	// Coordinator-level idempotency: a caller key that already named a
	// cluster job answers with that job's id instead of fanning out
	// again. The caller's key is consumed here — sub-jobs carry
	// coordinator-minted shard keys instead, because the same caller key
	// on every shard would make the backends dedupe distinct shards into
	// one sub-job.
	callerKey := spec.IdempotencyKey
	spec.IdempotencyKey = ""
	co.mu.Lock()
	if callerKey != "" {
		if id, ok := co.idem[callerKey]; ok {
			co.mu.Unlock()
			return id, nil
		}
	}
	co.seq++
	id := fmt.Sprintf("c%d", co.seq)
	if callerKey != "" {
		co.idem[callerKey] = id
	}
	co.mu.Unlock()

	// A cluster job has no queue: placement starts immediately, so
	// submitted and started coincide and queue wait is zero.
	now := co.now()
	j := &cjob{
		id:     id,
		spec:   spec,
		merge:  newMerger(id, count),
		status: service.JobStatus{ID: id, Kind: service.KindGrade, State: service.StateRunning},
		timing: service.Timing{SubmittedAt: now, StartedAt: now},
	}
	// The job's root span: it joins the caller's trace when the submit
	// context carries one (a span, or a remote SpanContext from an
	// incoming traceparent), else starts a fresh trace. One trace then
	// covers the whole fan-out — every shard attempt, every backend
	// sub-job, every rerun after a death, and the merge.
	tctx := trace.WithRecorder(context.Background(), co.traces)
	if sc := trace.SpanContextFromContext(ctx); sc.IsValid() {
		tctx = trace.ContextWithRemote(tctx, sc)
	}
	j.tctx, j.span = trace.Start(tctx, "cluster.grade", trace.Root())
	j.span.SetAttr("kind", service.KindGrade)
	j.span.SetAttr("job", id)
	j.span.SetAttrInt("shards", count)
	j.status.TraceID = j.span.Context().TraceID.String()
	for i := 0; i < count; i++ {
		j.shards = append(j.shards, &shard{index: i, count: count, state: service.StateRunning})
	}

	// Synchronous placement: every shard gets a sub-job before Submit
	// returns. A validation error aborts the whole job (and cancels any
	// sub-jobs already placed); a transport error re-places the shard
	// on another healthy backend. Placement calls run under the root
	// span — the caller's deadline still governs them — so the client
	// injects the job's traceparent and every backend sub-job joins the
	// trace.
	pctx := trace.ContextWithSpan(ctx, j.span)
	for i, sh := range j.shards {
		sub := spec
		sub.FaultShard = &service.FaultShard{Index: i, Count: count}
		sub.IdempotencyKey = co.shardKey(id, i, count, 0)
		placed := false
		var lastErr error
		for attempt := 0; attempt < len(healthy); attempt++ {
			b := healthy[(i+attempt)%len(healthy)]
			if b.flapping(co.opts.MaxBackendFailures) {
				co.exclude(b)
				continue
			}
			rid, err := b.cl.Submit(pctx, sub)
			if err == nil {
				sh.mu.Lock()
				sh.backend, sh.remoteID = b, rid
				sh.mu.Unlock()
				placed = true
				break
			}
			lastErr = err
			var ae *service.APIError
			if errors.As(err, &ae) {
				// This backend refused the spec. Validation can be
				// server-local (the workers bound depends on each
				// server's core count) or transient (draining), so a
				// refusal here does not condemn the spec everywhere:
				// try the next backend, and only fail the submit when
				// no backend accepts the shard.
				co.logger.Warn("backend refused shard", "backend", b.url,
					"job", id, "shard", i, "shards", count, "err", err)
				continue
			}
			b.markFailure()
			co.logger.Warn("submitting shard failed", "backend", b.url,
				"job", id, "shard", i, "shards", count, "err", err)
		}
		if !placed {
			co.cancelSubJobs(j, nil)
			if callerKey != "" {
				co.mu.Lock()
				delete(co.idem, callerKey)
				co.mu.Unlock()
			}
			j.span.SetStatus(trace.StatusError, "placement failed")
			j.span.End()
			return "", fmt.Errorf("cluster: could not place shard %d/%d: %w", i, count, lastErr)
		}
	}

	co.mu.Lock()
	co.jobs[id] = j
	co.order = append(co.order, id)
	co.evictOldJobsLocked()
	co.mu.Unlock()

	var shardWg sync.WaitGroup
	for _, sh := range j.shards {
		shardWg.Add(1)
		co.wg.Add(1)
		go func(sh *shard) {
			defer shardWg.Done()
			defer co.wg.Done()
			pprof.Do(context.Background(),
				pprof.Labels("job", j.id, "shard", fmt.Sprintf("%d/%d", sh.index, sh.count)),
				func(context.Context) { co.runShard(j, sh) })
		}(sh)
	}
	co.wg.Add(1)
	go func() {
		defer co.wg.Done()
		shardWg.Wait()
		co.finalize(j)
	}()
	return id, nil
}

// runShard drives one shard to a terminal state: stream the sub-job,
// fetch its result, and on any transport failure retry the whole shard
// on another healthy backend (shard jobs are deterministic, so a rerun
// reproduces the exact same result). Each attempt — the original
// placement and every rerun — is one span on the cluster job's trace.
func (co *Coordinator) runShard(j *cjob, sh *shard) {
	for co.shardAttempt(j, sh) {
		co.met.shardRetries.Inc()
	}
}

// shardAttempt supervises one placement of sh until the sub-job
// terminates or is lost. It returns true when the shard was lost and a
// rerun has been placed — the caller loops; false means the shard
// reached a terminal state (sh.finish or failShard was called).
func (co *Coordinator) shardAttempt(j *cjob, sh *shard) (rerun bool) {
	b, rid := sh.placement()
	sh.mu.Lock()
	retries := sh.retries
	sh.mu.Unlock()
	ctx, span := trace.Start(j.tctx, "shard")
	span.SetAttrInt("shard", sh.index)
	span.SetAttr("backend", b.url)
	span.SetAttr("remote_id", rid)
	span.SetAttrInt("retry", retries)
	defer span.End()

	if j.isCancelled() {
		// A Cancel that raced a retry placement may have missed this
		// sub-job (cancelSubJobs snapshots placements); cancel it
		// here so the backend stops and the stream below terminates.
		cctx, cancel := context.WithTimeout(ctx, co.opts.ProbeTimeout)
		b.cl.Cancel(cctx, rid)
		cancel()
	}
	st, err := b.cl.Stream(ctx, rid, func(ev service.ProgressEvent) {
		j.pubMu.Lock()
		co.publish(j, j.merge.update(sh.index, ev))
		j.pubMu.Unlock()
	})
	if err == nil {
		switch st.State {
		case service.StateDone:
			res, rerr := b.cl.Result(ctx, rid)
			if rerr == nil {
				b.markOK()
				j.pubMu.Lock()
				j.merge.markDone(sh.index, st)
				co.publish(j, j.merge.collect())
				j.pubMu.Unlock()
				sh.finish(service.StateDone, res, nil)
				span.SetStatus(trace.StatusOK, "")
				return false
			}
			// Transport failure or a refusal (e.g. the finished job
			// was evicted before the fetch): the shared triage below
			// retries what a rerun can recover and fails the rest.
			err = rerr
		case service.StateCancelled:
			if j.isCancelled() {
				sh.finish(service.StateCancelled, nil, nil)
				return false
			}
			// The backend cancelled the sub-job on its own — a
			// graceful drain (SIGTERM) rather than our fan-out. To
			// the cluster that is a lost shard like any other death:
			// retry it on a surviving backend.
			err = fmt.Errorf("backend %s cancelled sub-job %s (draining?)", b.url, rid)
		case service.StateFailed:
			span.SetStatus(trace.StatusError, st.Error)
			co.failShard(j, sh, fmt.Errorf("backend %s: %s", b.url, st.Error))
			return false
		default:
			err = fmt.Errorf("stream of %s on %s ended in non-terminal state %q", rid, b.url, st.State)
		}
	}
	span.SetStatus(trace.StatusError, err.Error())
	var apiErr *service.APIError
	if errors.As(err, &apiErr) {
		// The backend answered but refused (job evicted, unknown id):
		// not a transport failure, retrying elsewhere cannot help a
		// spec-level refusal, but a lost job is retried like a death.
		if !errors.Is(err, service.ErrNotFound) {
			co.failShard(j, sh, err)
			return false
		}
	}
	b.markFailure()
	if j.isCancelled() {
		sh.finish(service.StateCancelled, nil, nil)
		return false
	}
	sh.mu.Lock()
	sh.retries++
	retries = sh.retries
	sh.mu.Unlock()
	if retries > co.opts.MaxShardRetries {
		co.failShard(j, sh, fmt.Errorf("shard %d/%d: %d retries exhausted, last error: %v",
			sh.index, sh.count, co.opts.MaxShardRetries, err))
		return false
	}
	co.logger.WarnContext(ctx, "shard lost, retrying elsewhere", "backend", b.url,
		"job", j.id, "shard", sh.index, "shards", sh.count, "err", err)
	if perr := co.replaceShard(ctx, j, sh, b); perr != nil {
		if j.isCancelled() {
			sh.finish(service.StateCancelled, nil, nil)
			return false
		}
		co.failShard(j, sh, fmt.Errorf("shard %d/%d: %v (after %v)", sh.index, sh.count, perr, err))
		return false
	}
	return true
}

// replaceShard resubmits sh on a healthy backend, preferring backends
// other than the one that just failed, and resets the shard's progress
// in the merger (the rerun starts from block 0 and reproduces
// identical per-block stats).
func (co *Coordinator) replaceShard(ctx context.Context, j *cjob, sh *shard, failed *backend) error {
	sub := j.spec
	sub.FaultShard = &service.FaultShard{Index: sh.index, Count: sh.count}
	sh.mu.Lock()
	retries := sh.retries
	sh.mu.Unlock()
	sub.IdempotencyKey = co.shardKey(j.id, sh.index, sh.count, retries)
	var lastErr error
	for off := 1; off <= len(co.backends); off++ {
		b := co.backends[(backendIndex(co.backends, failed)+off)%len(co.backends)]
		if b.flapping(co.opts.MaxBackendFailures) {
			co.exclude(b)
			continue
		}
		if err := co.probe(ctx, b); err != nil {
			b.markFailure()
			lastErr = err
			continue
		}
		if j.isCancelled() {
			return errors.New("job cancelled during retry placement")
		}
		rid, err := b.cl.Submit(ctx, sub)
		if err != nil {
			// A wire-level refusal is not a backend failure; only
			// transport errors count toward flapping.
			var ae *service.APIError
			if !errors.As(err, &ae) {
				b.markFailure()
			}
			lastErr = err
			continue
		}
		j.merge.reset(sh.index)
		sh.mu.Lock()
		sh.backend, sh.remoteID = b, rid
		sh.mu.Unlock()
		co.logger.InfoContext(ctx, "shard replaced", "backend", b.url,
			"job", j.id, "shard", sh.index, "shards", sh.count, "remote_id", rid)
		return nil
	}
	if lastErr == nil {
		lastErr = errors.New("all backends flapping")
	}
	return fmt.Errorf("no surviving backend accepted the shard: %v", lastErr)
}

func backendIndex(backends []*backend, b *backend) int {
	for i, x := range backends {
		if x == b {
			return i
		}
	}
	return 0
}

// failShard records a shard failure and proactively cancels the
// sibling sub-jobs so backends stop grading a job that can no longer
// complete.
func (co *Coordinator) failShard(j *cjob, sh *shard, err error) {
	sh.finish(service.StateFailed, nil, err)
	co.cancelSubJobs(j, sh)
}

// cancelSubJobs fans a cancel out to every placed sub-job except skip.
// Best-effort: already-finished sub-jobs answer ErrFinished, dead
// backends time out — neither changes the outcome.
func (co *Coordinator) cancelSubJobs(j *cjob, skip *shard) {
	for _, sh := range j.shards {
		if sh == skip {
			continue
		}
		b, rid := sh.placement()
		if b == nil || rid == "" {
			continue
		}
		go func(b *backend, rid string) {
			ctx, cancel := context.WithTimeout(context.Background(), co.opts.ProbeTimeout)
			defer cancel()
			b.cl.Cancel(ctx, rid)
		}(b, rid)
	}
}

// finalize runs once every shard goroutine has returned: it merges the
// shard results (all-done), or settles on the failed/cancelled state,
// updates the cluster status and closes every subscriber channel.
func (co *Coordinator) finalize(j *cjob) {
	state := service.StateDone
	var firstErr error
	for _, sh := range j.shards {
		sh.mu.Lock()
		shState, shErr := sh.state, sh.err
		sh.mu.Unlock()
		switch shState {
		case service.StateFailed:
			state = service.StateFailed
			if firstErr == nil {
				firstErr = shErr
			}
		case service.StateCancelled:
			if state != service.StateFailed {
				state = service.StateCancelled
			}
		}
	}
	if j.isCancelled() && state != service.StateFailed {
		state = service.StateCancelled
	}

	var merged *service.JobResult
	if state == service.StateDone {
		results := make([]*service.JobResult, len(j.shards))
		for i, sh := range j.shards {
			sh.mu.Lock()
			results[i] = sh.result
			sh.mu.Unlock()
		}
		var err error
		_, msp := trace.Start(j.tctx, "merge")
		msp.SetAttrInt("shards", len(results))
		mergeStart := co.now()
		merged, err = MergeResults(j.id, results)
		mergeDur := co.now().Sub(mergeStart)
		if err != nil {
			msp.SetStatus(trace.StatusError, err.Error())
		}
		msp.End()
		co.met.mergeSeconds.Observe(mergeDur.Seconds())
		j.mu.Lock()
		j.timing.AddPhase(service.PhaseMerge, mergeDur)
		j.mu.Unlock()
		if err != nil {
			state = service.StateFailed
			firstErr = err
		}
	}
	// The merged result is the job's only retained payload; the
	// per-shard copies would double its memory for no reader.
	for _, sh := range j.shards {
		sh.mu.Lock()
		sh.result = nil
		sh.mu.Unlock()
	}

	j.mu.Lock()
	j.status.State = state
	j.timing.FinishedAt = co.now()
	j.timing.RunSeconds = j.timing.FinishedAt.Sub(j.timing.StartedAt).Seconds()
	timing := j.timing.Snapshot()
	j.status.Timing = timing
	if merged != nil {
		// The merged result carries the cluster job's own timing — the
		// fan-out's wall clock and merge phase, not any single backend's
		// run (those are visible on the sub-jobs' own wires).
		merged.Timing = timing
		merged.TraceID = j.status.TraceID
		j.result = merged
		j.status.Circuit = merged.Circuit
		j.status.Faults = merged.Faults
		j.status.Vectors = merged.Vectors
		j.status.VectorsUsed = merged.VectorsUsed
		j.status.Detected = merged.Detected
	}
	if firstErr != nil {
		j.status.Error = firstErr.Error()
	}
	subs := j.subs
	j.subs = nil
	j.mu.Unlock()
	co.met.jobsTotal.With(state).Inc()
	// The root span ends before subscribers wake: a caller unblocked by
	// the terminal status finds the completed trace in the recorder.
	j.span.SetAttr("state", state)
	if firstErr != nil {
		j.span.SetStatus(trace.StatusError, firstErr.Error())
	} else {
		j.span.SetStatus(trace.StatusOK, "")
	}
	j.span.End()
	for _, sb := range subs {
		sb.finish()
	}
}

// publish forwards merged progress events to the cluster job's status
// and subscribers. Pushes never block — each subscriber owns a lossless
// queue its pump goroutine drains — so the merged feed stays contiguous
// even when a rerun's catch-up emits a whole job's worth of blocks in
// one burst.
func (co *Coordinator) publish(j *cjob, evs []service.ProgressEvent) {
	for _, ev := range evs {
		j.mu.Lock()
		if terminalState(j.status.State) {
			j.mu.Unlock()
			return
		}
		j.status.BlocksDone = ev.Block + 1
		j.status.Blocks = ev.Blocks
		j.status.VectorsUsed = ev.VectorsUsed
		j.status.Detected = ev.Detected
		j.status.Active = ev.Active
		subs := append([]*subscriber(nil), j.subs...)
		j.mu.Unlock()
		for _, sb := range subs {
			sb.push(ev)
		}
	}
}

func terminalState(s string) bool {
	return s == service.StateDone || s == service.StateFailed || s == service.StateCancelled
}

// evictOldJobsLocked drops the oldest finished cluster jobs once the
// retained set exceeds the configured bound, exactly as the service
// does for its own jobs. Caller holds co.mu.
func (co *Coordinator) evictOldJobsLocked() {
	excess := len(co.order) - co.opts.MaxRetainedJobs
	if excess <= 0 {
		return
	}
	kept := co.order[:0]
	for _, id := range co.order {
		j := co.jobs[id]
		j.mu.Lock()
		done := terminalState(j.status.State)
		j.mu.Unlock()
		if excess > 0 && done {
			delete(co.jobs, id)
			for key, jid := range co.idem {
				if jid == id {
					delete(co.idem, key)
				}
			}
			excess--
			continue
		}
		kept = append(kept, id)
	}
	co.order = kept
}

func (co *Coordinator) job(id string) *cjob {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.jobs[id]
}

// Status returns the merged status of a cluster job. Identity fields
// (circuit, fault count) fill in when the job completes; the progress
// fields track the merged per-block frontier while it runs.
func (co *Coordinator) Status(ctx context.Context, id string) (service.JobStatus, error) {
	j := co.job(id)
	if j == nil {
		return service.JobStatus{}, service.ErrNotFound
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status, nil
}

// Result returns the merged grading outcome of a finished cluster job,
// with the same error contract as the service: ErrNotDone while
// running, ErrCancelled after a cancel, the failure for failed jobs.
func (co *Coordinator) Result(ctx context.Context, id string) (*service.JobResult, error) {
	j := co.job(id)
	if j == nil {
		return nil, service.ErrNotFound
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.status.State {
	case service.StateDone:
		return j.result, nil
	case service.StateFailed:
		return nil, fmt.Errorf("cluster: job %s failed: %s", id, j.status.Error)
	case service.StateCancelled:
		return nil, fmt.Errorf("%w (job %s)", service.ErrCancelled, id)
	}
	return nil, service.ErrNotDone
}

// Cancel aborts a cluster job by fanning the cancel out to every
// sub-job; each backend stops at its next 64-pattern block barrier.
// Idempotent on cancelled jobs; ErrFinished after completion.
func (co *Coordinator) Cancel(ctx context.Context, id string) (service.JobStatus, error) {
	j := co.job(id)
	if j == nil {
		return service.JobStatus{}, service.ErrNotFound
	}
	j.mu.Lock()
	switch j.status.State {
	case service.StateDone, service.StateFailed:
		st := j.status
		j.mu.Unlock()
		return st, service.ErrFinished
	case service.StateCancelled:
		st := j.status
		j.mu.Unlock()
		return st, nil
	}
	j.cancelled = true
	st := j.status
	j.mu.Unlock()
	co.cancelSubJobs(j, nil)
	return st, nil
}

// Subscribe returns a channel of merged per-block progress events for
// a cluster job and a cancel function; the channel closes when the job
// reaches a terminal state (immediately for finished jobs).
func (co *Coordinator) Subscribe(id string) (<-chan service.ProgressEvent, func(), bool) {
	j := co.job(id)
	if j == nil {
		return nil, nil, false
	}
	ch := make(chan service.ProgressEvent, 16)
	j.mu.Lock()
	if terminalState(j.status.State) {
		j.mu.Unlock()
		close(ch)
		return ch, func() {}, true
	}
	sb := newSubscriber()
	j.subs = append(j.subs, sb)
	j.mu.Unlock()
	// The pump decouples the publisher from the consumer: events queue
	// losslessly in sb and flow into ch at the consumer's pace. On
	// cancel the pump abandons the queue instead of blocking forever on
	// a send nobody will receive.
	go func() {
		defer close(ch)
		for {
			ev, ok := sb.next()
			if !ok {
				return
			}
			select {
			case ch <- ev:
			case <-sb.stop:
				return
			}
		}
	}()
	var once sync.Once
	cancel := func() {
		once.Do(func() { close(sb.stop) })
		sb.finish()
		j.mu.Lock()
		for i, s := range j.subs {
			if s == sb {
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				break
			}
		}
		j.mu.Unlock()
	}
	return ch, cancel, true
}

// Stream delivers merged progress events until the cluster job reaches
// a terminal state and returns the final status. ctx aborts the
// subscription, not the job.
func (co *Coordinator) Stream(ctx context.Context, id string, fn func(service.ProgressEvent)) (service.JobStatus, error) {
	ch, cancel, ok := co.Subscribe(id)
	if !ok {
		return service.JobStatus{}, service.ErrNotFound
	}
	defer cancel()
	for {
		select {
		case <-ctx.Done():
			return service.JobStatus{}, ctx.Err()
		case ev, open := <-ch:
			if !open {
				return co.Status(ctx, id)
			}
			if fn != nil {
				fn(ev)
			}
		}
	}
}

// Shards returns the per-shard placement state of a cluster job, for
// diagnostics.
func (co *Coordinator) Shards(id string) ([]ShardStatus, error) {
	j := co.job(id)
	if j == nil {
		return nil, service.ErrNotFound
	}
	out := make([]ShardStatus, len(j.shards))
	for i, sh := range j.shards {
		sh.mu.Lock()
		st := ShardStatus{
			Index:    sh.index,
			Count:    sh.count,
			RemoteID: sh.remoteID,
			State:    sh.state,
			Retries:  sh.retries,
		}
		if sh.backend != nil {
			st.Backend = sh.backend.url
		}
		if sh.err != nil {
			st.Error = sh.err.Error()
		}
		sh.mu.Unlock()
		out[i] = st
	}
	return out, nil
}

// Stats sums the service counters of every reachable backend, fetched
// concurrently so a dead backend costs one ProbeTimeout in total, not
// per backend; it contributes nothing rather than failing the
// aggregate.
func (co *Coordinator) Stats(ctx context.Context) (service.Stats, error) {
	stats := make([]*service.Stats, len(co.backends))
	var wg sync.WaitGroup
	for i, b := range co.backends {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, co.opts.ProbeTimeout)
			defer cancel()
			st, err := b.cl.Stats(pctx)
			if err != nil {
				co.logger.Warn("fetching backend stats failed", "backend", b.url, "err", err)
				return
			}
			stats[i] = &st
		}(i, b)
	}
	wg.Wait()
	var out service.Stats
	for _, st := range stats {
		if st == nil {
			continue
		}
		out.JobsSubmitted += st.JobsSubmitted
		out.JobsDone += st.JobsDone
		out.JobsFailed += st.JobsFailed
		out.JobsCancelled += st.JobsCancelled
		out.JobsRunning += st.JobsRunning
		out.JobsQueued += st.JobsQueued
		out.Registry.CircuitHits += st.Registry.CircuitHits
		out.Registry.CircuitMisses += st.Registry.CircuitMisses
		out.Registry.CircuitEvictions += st.Registry.CircuitEvictions
		out.Registry.GoodHits += st.Registry.GoodHits
		out.Registry.GoodMisses += st.Registry.GoodMisses
		out.Registry.GoodEvictions += st.Registry.GoodEvictions
		out.Registry.Circuits += st.Registry.Circuits
		out.Registry.Goods += st.Registry.Goods
	}
	return out, nil
}

// Jobs returns the status of every cluster job in submission order.
func (co *Coordinator) Jobs() []service.JobStatus {
	co.mu.Lock()
	ids := append([]string(nil), co.order...)
	co.mu.Unlock()
	out := make([]service.JobStatus, 0, len(ids))
	for _, id := range ids {
		if st, err := co.Status(context.Background(), id); err == nil {
			out = append(out, st)
		}
	}
	return out
}

// Close waits for every submitted cluster job's orchestration to
// finish (cancel them first for a fast shutdown).
func (co *Coordinator) Close() error {
	co.wg.Wait()
	return nil
}
