// Package sim implements fault-free (good-machine) simulation of
// combinational circuits. Values are bit-parallel: one uint64 word per
// gate carries 64 test patterns at once, in the transposed layout
// produced by logic.PatternSet, so a full pattern set is simulated in
// ceil(n/64) topological passes.
//
// The fault simulator (package fsim) builds on the good values
// computed here, re-simulating only the fanout cone of each injected
// fault.
package sim

import (
	"fmt"

	"github.com/eda-go/adifo/internal/circuit"
	"github.com/eda-go/adifo/internal/logic"
)

// Simulator holds per-gate word values for one circuit. It is cheap
// to create but reusable; reuse avoids re-allocating the value array
// for every 64-pattern block. Not safe for concurrent use.
type Simulator struct {
	c   *circuit.Circuit
	val []uint64
	// scratch fanin buffer, sized to the widest gate.
	in []uint64
}

// New returns a Simulator for c.
func New(c *circuit.Circuit) *Simulator {
	maxFanin := 0
	for _, g := range c.Gates {
		if len(g.Fanin) > maxFanin {
			maxFanin = len(g.Fanin)
		}
	}
	return &Simulator{
		c:   c,
		val: make([]uint64, c.NumGates()),
		in:  make([]uint64, maxFanin),
	}
}

// Circuit returns the simulated circuit.
func (s *Simulator) Circuit() *circuit.Circuit { return s.c }

// SimulateBlock loads block b of ps into the primary inputs and
// evaluates the whole circuit in topological order. After it returns,
// Value(g) holds the good value word of every gate for the 64 patterns
// of the block.
func (s *Simulator) SimulateBlock(ps *logic.PatternSet, block int) {
	if ps.Inputs() != s.c.NumInputs() {
		panic(fmt.Sprintf("sim: pattern set has %d inputs, circuit has %d", ps.Inputs(), s.c.NumInputs()))
	}
	for i, piGate := range s.c.Inputs {
		s.val[piGate] = ps.Word(i, block)
	}
	s.evalAll()
}

// SimulateWords loads one word per primary input (pi[i] feeds
// Inputs[i]) and evaluates the circuit. It is the entry point used
// when patterns are produced on the fly rather than stored in a
// PatternSet.
func (s *Simulator) SimulateWords(pi []uint64) {
	if len(pi) != s.c.NumInputs() {
		panic(fmt.Sprintf("sim: got %d input words, circuit has %d inputs", len(pi), s.c.NumInputs()))
	}
	for i, piGate := range s.c.Inputs {
		s.val[piGate] = pi[i]
	}
	s.evalAll()
}

// SimulateVector evaluates a single fully specified vector and returns
// the output values in circuit.Outputs order.
func (s *Simulator) SimulateVector(v logic.Vector) []uint8 {
	if len(v) != s.c.NumInputs() {
		panic(fmt.Sprintf("sim: vector width %d, circuit has %d inputs", len(v), s.c.NumInputs()))
	}
	for i, piGate := range s.c.Inputs {
		s.val[piGate] = uint64(v[i] & 1)
	}
	s.evalAll()
	out := make([]uint8, s.c.NumOutputs())
	for i, og := range s.c.Outputs {
		out[i] = uint8(s.val[og] & 1)
	}
	return out
}

func (s *Simulator) evalAll() {
	c := s.c
	for _, gi := range c.Topo {
		g := &c.Gates[gi]
		if g.Type == circuit.PI {
			continue
		}
		in := s.in[:len(g.Fanin)]
		for k, f := range g.Fanin {
			in[k] = s.val[f]
		}
		s.val[gi] = circuit.EvalWord(g.Type, in)
	}
}

// Value returns the current word value of gate g (valid after a
// Simulate call).
func (s *Simulator) Value(g int) uint64 { return s.val[g] }

// Values returns the underlying value slice, indexed by gate id. The
// fault simulator reads it directly; callers must treat it as
// read-only and must not retain it across Simulate calls.
func (s *Simulator) Values() []uint64 { return s.val }

// OutputWords returns the output value words in circuit.Outputs order.
func (s *Simulator) OutputWords() []uint64 {
	out := make([]uint64, s.c.NumOutputs())
	for i, og := range s.c.Outputs {
		out[i] = s.val[og]
	}
	return out
}

// Eval is a convenience one-shot scalar evaluator used by tests and
// examples: it returns the output bits of c under vector v.
func Eval(c *circuit.Circuit, v logic.Vector) []uint8 {
	return New(c).SimulateVector(v)
}
