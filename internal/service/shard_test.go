package service

import (
	"github.com/eda-go/adifo/internal/obs"
	"strings"
	"testing"
)

// TestShardRangePartition: the shard ranges partition [0, n) exactly,
// in order, for any (n, count).
func TestShardRangePartition(t *testing.T) {
	for _, n := range []int{0, 1, 5, 22, 100, 1237} {
		for count := 1; count <= 7; count++ {
			next := 0
			for i := 0; i < count; i++ {
				lo, hi := ShardRange(n, i, count)
				if lo != next || hi < lo {
					t.Fatalf("ShardRange(%d, %d, %d) = [%d, %d), want lo %d", n, i, count, lo, hi, next)
				}
				if size := hi - lo; size != n/count && size != n/count+1 {
					t.Fatalf("ShardRange(%d, %d, %d) size %d not balanced", n, i, count, size)
				}
				next = hi
			}
			if next != n {
				t.Fatalf("shards over n=%d count=%d cover [0, %d)", n, count, next)
			}
		}
	}
}

func shardSpec(fs *FaultShard) JobSpec {
	return JobSpec{
		Circuit:    "c17",
		Mode:       "nodrop",
		Patterns:   PatternSpec{Exhaustive: true},
		FaultShard: fs,
	}
}

// TestSubmitShardValidation: malformed shard selectors and the
// incompatible stop_at_coverage combination are rejected at submit.
func TestSubmitShardValidation(t *testing.T) {
	s := New(Config{Logger: obs.Nop()})
	defer s.Close()
	if _, err := s.Submit(shardSpec(&FaultShard{Index: 0, Count: 0})); err == nil {
		t.Fatal("count 0 must be rejected")
	}
	if _, err := s.Submit(shardSpec(&FaultShard{Index: -1, Count: 2})); err == nil {
		t.Fatal("negative index must be rejected")
	}
	if _, err := s.Submit(shardSpec(&FaultShard{Index: 2, Count: 2})); err == nil {
		t.Fatal("index >= count must be rejected")
	}
	bad := shardSpec(&FaultShard{Index: 0, Count: 2})
	bad.Mode = "drop"
	bad.StopAtCoverage = 0.9
	if _, err := s.Submit(bad); err == nil {
		t.Fatal("fault_shard + stop_at_coverage must be rejected")
	}
	if _, err := s.Submit(shardSpec(&FaultShard{Index: 1, Count: 2})); err != nil {
		t.Fatalf("valid shard spec rejected: %v", err)
	}
}

// TestSubmitWorkersValidation: out-of-range worker counts are rejected
// at submit time instead of being silently clamped.
func TestSubmitWorkersValidation(t *testing.T) {
	s := New(Config{Logger: obs.Nop(), SimWorkers: 2})
	defer s.Close()
	spec := JobSpec{Circuit: "c17", Mode: "nodrop", Patterns: PatternSpec{Exhaustive: true}}

	spec.Workers = -1
	if _, err := s.Submit(spec); err == nil || !strings.Contains(err.Error(), "workers") {
		t.Fatalf("negative workers: %v, want workers range error", err)
	}
	spec.Workers = 3
	if _, err := s.Submit(spec); err == nil || !strings.Contains(err.Error(), "workers") {
		t.Fatalf("workers above SimWorkers: %v, want workers range error", err)
	}
	for _, w := range []int{0, 1, 2} {
		spec.Workers = w
		if _, err := s.Submit(spec); err != nil {
			t.Fatalf("workers %d rejected: %v", w, err)
		}
	}
}

// waitResult waits for a job's terminal state via its progress feed.
func waitResult(t *testing.T, s *Service, id string) *JobResult {
	t.Helper()
	if ch, cancel, ok := s.Subscribe(id); ok {
		for range ch {
		}
		cancel()
	}
	res, err := s.Result(id)
	if err != nil {
		t.Fatalf("job %s: %v", id, err)
	}
	return res
}

// TestShardedJobsComposeToUnsharded runs the same grading job whole
// and as 3 fault shards on one service, and checks — without the
// cluster merge layer — that the shard results compose exactly: F
// indices are global and contiguous, per-fault rows equal the
// unsharded rows, per-vector ndet sums match, and vectors-used is the
// max over shards.
func TestShardedJobsComposeToUnsharded(t *testing.T) {
	for _, mode := range []string{"nodrop", "drop", "ndetect"} {
		t.Run(mode, func(t *testing.T) {
			s := New(Config{Logger: obs.Nop(), MaxConcurrentJobs: 4})
			defer s.Close()
			spec := JobSpec{
				Circuit:  "c17",
				Mode:     mode,
				Patterns: PatternSpec{Random: &RandomSpec{N: 256, Seed: 9}},
			}
			if mode == "ndetect" {
				spec.N = 2
			}
			fullID, err := s.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			full := waitResult(t, s, fullID)
			if full.FaultShard != nil || full.Faults != full.TotalFaults {
				t.Fatalf("unsharded result unexpectedly sharded: %+v", full.FaultShard)
			}

			const count = 3
			var shards []*JobResult
			for i := 0; i < count; i++ {
				sub := spec
				sub.FaultShard = &FaultShard{Index: i, Count: count}
				id, err := s.Submit(sub)
				if err != nil {
					t.Fatal(err)
				}
				shards = append(shards, waitResult(t, s, id))
			}

			ndet := make([]int, 0)
			vectorsUsed, detected, nextF := 0, 0, 0
			for i, r := range shards {
				lo, hi := ShardRange(full.TotalFaults, i, count)
				if r.Faults != hi-lo || r.TotalFaults != full.TotalFaults {
					t.Fatalf("shard %d graded %d faults, want %d", i, r.Faults, hi-lo)
				}
				if r.Fingerprint != full.Fingerprint {
					t.Fatalf("shard %d fingerprint %s != %s", i, r.Fingerprint, full.Fingerprint)
				}
				if r.VectorsUsed > vectorsUsed {
					vectorsUsed = r.VectorsUsed
				}
				detected += r.Detected
				if len(r.Ndet) > len(ndet) {
					ndet = append(ndet, make([]int, len(r.Ndet)-len(ndet))...)
				}
				for u, v := range r.Ndet {
					ndet[u] += v
				}
				for _, fr := range r.PerFault {
					if fr.F != nextF {
						t.Fatalf("shard %d: fault index %d, want %d", i, fr.F, nextF)
					}
					want := full.PerFault[nextF]
					if fr.Name != want.Name || fr.DetCount != want.DetCount || fr.FirstDet != want.FirstDet {
						t.Fatalf("fault %d diverges: shard %+v vs full %+v", nextF, fr, want)
					}
					if len(fr.Det) != len(want.Det) {
						t.Fatalf("fault %d detection set size %d vs %d", nextF, len(fr.Det), len(want.Det))
					}
					for k := range fr.Det {
						if fr.Det[k] != want.Det[k] {
							t.Fatalf("fault %d detection set diverges at %d", nextF, k)
						}
					}
					nextF++
				}
			}
			if nextF != full.TotalFaults {
				t.Fatalf("shards cover %d of %d faults", nextF, full.TotalFaults)
			}
			if vectorsUsed != full.VectorsUsed {
				t.Fatalf("max shard vectors-used %d != unsharded %d", vectorsUsed, full.VectorsUsed)
			}
			if detected != full.Detected {
				t.Fatalf("summed detected %d != unsharded %d", detected, full.Detected)
			}
			if len(ndet) != len(full.Ndet) {
				t.Fatalf("summed ndet length %d != unsharded %d", len(ndet), len(full.Ndet))
			}
			for u := range ndet {
				if ndet[u] != full.Ndet[u] {
					t.Fatalf("ndet[%d]: summed %d != unsharded %d", u, ndet[u], full.Ndet[u])
				}
			}
		})
	}
}

// TestDrainRejectsAndCancels: Drain stops submissions with ErrDraining
// and drives running jobs to a terminal state.
func TestDrainRejectsAndCancels(t *testing.T) {
	s := New(Config{Logger: obs.Nop(), MaxConcurrentJobs: 2})
	spec := JobSpec{
		Circuit:  "c17",
		Mode:     "nodrop",
		Patterns: PatternSpec{Random: &RandomSpec{N: 1 << 15, Seed: 1}},
	}
	var ids []string
	for i := 0; i < 3; i++ { // more jobs than slots: one stays queued
		id, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	s.Drain()
	if _, err := s.Submit(spec); err != ErrDraining {
		t.Fatalf("submit after drain: %v, want ErrDraining", err)
	}
	for _, id := range ids {
		st, ok := s.Status(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st.State != StateCancelled && st.State != StateDone {
			t.Fatalf("job %s left in state %s after drain", id, st.State)
		}
	}
	// Idempotent.
	s.Drain()
}
