package fault

import (
	"strings"
	"testing"

	"github.com/eda-go/adifo/internal/circuit"
)

const c17Bench = `
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`

func parseC17(t *testing.T) *circuit.Circuit {
	t.Helper()
	c, err := circuit.ParseBenchString("c17", c17Bench)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestUniverseC17(t *testing.T) {
	c := parseC17(t)
	u := Universe(c)
	// 11 stems (5 PIs + 6 gates) + 6 branches (nets 3, 11, 16 each
	// fan out to two sinks) = 17 lines = 34 faults.
	if u.Len() != 34 {
		t.Fatalf("universe = %d faults, want 34", u.Len())
	}
}

func TestCollapseC17(t *testing.T) {
	c := parseC17(t)
	collapsed, toRep := Collapse(Universe(c))
	// The textbook equivalence-collapsed fault count for c17 is 22.
	if collapsed.Len() != 22 {
		t.Fatalf("collapsed = %d faults, want 22", collapsed.Len())
	}
	// Every universe fault maps to a valid representative, and every
	// representative maps to itself.
	u := Universe(c)
	for _, f := range u.Faults {
		r, ok := toRep[f]
		if !ok || r < 0 || r >= collapsed.Len() {
			t.Fatalf("fault %v has bad representative %d", f, r)
		}
	}
	for i, f := range collapsed.Faults {
		if toRep[f] != i {
			t.Fatalf("representative %v does not map to itself", f)
		}
	}
}

func TestCollapseEquivalenceDirections(t *testing.T) {
	// Chain: a -> NOT n -> NOT m -> output. All six faults collapse
	// into one class pair: a sa0 ≡ n sa1 ≡ m sa0 and a sa1 ≡ n sa0 ≡
	// m sa1.
	src := `
INPUT(a)
OUTPUT(m)
n = NOT(a)
m = NOT(n)
`
	c, err := circuit.ParseBenchString("chain", src)
	if err != nil {
		t.Fatal(err)
	}
	collapsed, toRep := Collapse(Universe(c))
	if collapsed.Len() != 2 {
		t.Fatalf("collapsed = %d faults, want 2", collapsed.Len())
	}
	a, _ := c.GateByName("a")
	n, _ := c.GateByName("n")
	m, _ := c.GateByName("m")
	if toRep[Fault{a, StemPin, 0}] != toRep[Fault{n, StemPin, 1}] ||
		toRep[Fault{n, StemPin, 1}] != toRep[Fault{m, StemPin, 0}] {
		t.Fatal("NOT-chain sa0 equivalence broken")
	}
	if toRep[Fault{a, StemPin, 1}] != toRep[Fault{n, StemPin, 0}] ||
		toRep[Fault{n, StemPin, 0}] != toRep[Fault{m, StemPin, 1}] {
		t.Fatal("NOT-chain sa1 equivalence broken")
	}
}

func TestCollapseAndGate(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(y)
y = AND(a, b)
`
	c, err := circuit.ParseBenchString("and2", src)
	if err != nil {
		t.Fatal(err)
	}
	collapsed, toRep := Collapse(Universe(c))
	// Universe: 3 stems * 2 = 6 faults (no fanout). a sa0 ≡ b sa0 ≡
	// y sa0 -> classes: {a0,b0,y0}, {a1}, {b1}, {y1} = 4.
	if collapsed.Len() != 4 {
		t.Fatalf("collapsed = %d faults, want 4", collapsed.Len())
	}
	a, _ := c.GateByName("a")
	b, _ := c.GateByName("b")
	y, _ := c.GateByName("y")
	if toRep[Fault{a, StemPin, 0}] != toRep[Fault{y, StemPin, 0}] ||
		toRep[Fault{b, StemPin, 0}] != toRep[Fault{y, StemPin, 0}] {
		t.Fatal("AND sa0 inputs must collapse onto output sa0")
	}
	if toRep[Fault{a, StemPin, 1}] == toRep[Fault{b, StemPin, 1}] {
		t.Fatal("AND sa1 inputs must stay distinct")
	}
}

func TestCollapseXorKeepsAll(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(y)
y = XOR(a, b)
`
	c, err := circuit.ParseBenchString("xor2", src)
	if err != nil {
		t.Fatal(err)
	}
	collapsed, _ := Collapse(Universe(c))
	if collapsed.Len() != 6 {
		t.Fatalf("collapsed = %d faults, want 6 (XOR admits no equivalences)", collapsed.Len())
	}
}

func TestBranchFaultsOnlyOnFanoutStems(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(y)
OUTPUT(z)
y = AND(a, b)
z = OR(a, b)
`
	c, err := circuit.ParseBenchString("fan", src)
	if err != nil {
		t.Fatal(err)
	}
	u := Universe(c)
	branches := 0
	for _, f := range u.Faults {
		if f.Pin != StemPin {
			branches++
		}
	}
	// a and b each fan out to 2 sinks: 4 branch sites = 8 branch
	// faults.
	if branches != 8 {
		t.Fatalf("branch faults = %d, want 8", branches)
	}
}

func TestClassesPartitionUniverse(t *testing.T) {
	c := parseC17(t)
	u := Universe(c)
	classes := Classes(u)
	total := 0
	seen := map[Fault]bool{}
	for _, cl := range classes {
		if len(cl) == 0 {
			t.Fatal("empty equivalence class")
		}
		for _, f := range cl {
			if seen[f] {
				t.Fatalf("fault %v appears in two classes", f)
			}
			seen[f] = true
		}
		total += len(cl)
	}
	if total != u.Len() {
		t.Fatalf("classes cover %d faults, universe has %d", total, u.Len())
	}
}

func TestFaultNames(t *testing.T) {
	c := parseC17(t)
	g16, _ := c.GateByName("16")
	stem := Fault{Gate: g16, Pin: StemPin, SA: 0}
	if got := stem.Name(c); got != "16 sa0" {
		t.Fatalf("stem name = %q", got)
	}
	branch := Fault{Gate: g16, Pin: 1, SA: 1}
	if got := branch.Name(c); !strings.Contains(got, "in1") || !strings.Contains(got, "sa1") {
		t.Fatalf("branch name = %q", got)
	}
	if stem.String() == "" {
		t.Fatal("String must not be empty")
	}
}

func TestUniverseDeterministic(t *testing.T) {
	c := parseC17(t)
	u1 := Universe(c)
	u2 := Universe(c)
	for i := range u1.Faults {
		if u1.Faults[i] != u2.Faults[i] {
			t.Fatal("universe enumeration is not deterministic")
		}
	}
}

func TestCollapsedUniverseMatchesCollapse(t *testing.T) {
	c := parseC17(t)
	a := CollapsedUniverse(c)
	b, _ := Collapse(Universe(c))
	if a.Len() != b.Len() {
		t.Fatal("CollapsedUniverse disagrees with Collapse")
	}
	for i := range a.Faults {
		if a.Faults[i] != b.Faults[i] {
			t.Fatal("CollapsedUniverse order disagrees with Collapse")
		}
	}
}
