// Package sim implements fault-free (good-machine) simulation of
// combinational circuits. Values are bit-parallel: one uint64 word per
// gate carries 64 test patterns at once, in the transposed layout
// produced by logic.PatternSet, so a full pattern set is simulated in
// ceil(n/64) topological passes.
//
// The simulator executes the compiled (SoA/CSR) circuit form from
// circuit.Compile: evaluation walks the levelized gate order over flat
// fanin arrays rather than per-gate structs. The fault simulator
// (package fsim) builds on the good values computed here, re-simulating
// only the fanout cone of each injected fault.
package sim

import (
	"fmt"

	"github.com/eda-go/adifo/internal/circuit"
	"github.com/eda-go/adifo/internal/logic"
)

// Simulator holds per-gate word values for one circuit. It is cheap
// to create but reusable; reuse avoids re-allocating the value array
// for every 64-pattern block. Not safe for concurrent use.
type Simulator struct {
	cc  *circuit.Compiled
	val []uint64
	// scratch fanin buffer, sized to the widest gate.
	in []uint64
}

// New returns a Simulator for c, compiling it first. Callers that
// already hold a compiled form (e.g. via the service registry) should
// use NewCompiled to skip the recompilation.
func New(c *circuit.Circuit) *Simulator {
	return NewCompiled(circuit.Compile(c))
}

// NewCompiled returns a Simulator executing an existing compiled form.
func NewCompiled(cc *circuit.Compiled) *Simulator {
	return &Simulator{
		cc:  cc,
		val: make([]uint64, cc.NumGates()),
		in:  make([]uint64, cc.MaxFanin),
	}
}

// Circuit returns the simulated circuit.
func (s *Simulator) Circuit() *circuit.Circuit { return s.cc.Circuit }

// SimulateBlock loads block b of ps into the primary inputs and
// evaluates the whole circuit in levelized order. After it returns,
// Value(g) holds the good value word of every gate for the 64 patterns
// of the block.
func (s *Simulator) SimulateBlock(ps *logic.PatternSet, block int) {
	if ps.Inputs() != s.cc.NumInputs() {
		panic(fmt.Sprintf("sim: pattern set has %d inputs, circuit has %d", ps.Inputs(), s.cc.NumInputs()))
	}
	for i, piGate := range s.cc.Inputs {
		s.val[piGate] = ps.Word(i, block)
	}
	s.evalAll()
}

// SimulateWords loads one word per primary input (pi[i] feeds
// Inputs[i]) and evaluates the circuit. It is the entry point used
// when patterns are produced on the fly rather than stored in a
// PatternSet.
func (s *Simulator) SimulateWords(pi []uint64) {
	if len(pi) != s.cc.NumInputs() {
		panic(fmt.Sprintf("sim: got %d input words, circuit has %d inputs", len(pi), s.cc.NumInputs()))
	}
	for i, piGate := range s.cc.Inputs {
		s.val[piGate] = pi[i]
	}
	s.evalAll()
}

// SimulateVector evaluates a single fully specified vector and returns
// the output values in circuit.Outputs order.
func (s *Simulator) SimulateVector(v logic.Vector) []uint8 {
	if len(v) != s.cc.NumInputs() {
		panic(fmt.Sprintf("sim: vector width %d, circuit has %d inputs", len(v), s.cc.NumInputs()))
	}
	for i, piGate := range s.cc.Inputs {
		s.val[piGate] = uint64(v[i] & 1)
	}
	s.evalAll()
	out := make([]uint8, len(s.cc.Outputs))
	for i, og := range s.cc.Outputs {
		out[i] = uint8(s.val[og] & 1)
	}
	return out
}

func (s *Simulator) evalAll() {
	cc := s.cc
	// Level 0 is exactly the PIs, whose values were just loaded.
	for _, gi := range cc.Order[cc.LevelStart[1]:] {
		lo, hi := cc.FaninStart[gi], cc.FaninStart[gi+1]
		in := s.in[:hi-lo]
		for k, f := range cc.Fanin[lo:hi] {
			in[k] = s.val[f]
		}
		s.val[gi] = circuit.EvalWord(cc.Type[gi], in)
	}
}

// Value returns the current word value of gate g (valid after a
// Simulate call).
func (s *Simulator) Value(g int) uint64 { return s.val[g] }

// Values returns the underlying value slice, indexed by gate id. The
// fault simulator reads it directly; callers must treat it as
// read-only and must not retain it across Simulate calls.
func (s *Simulator) Values() []uint64 { return s.val }

// OutputWords returns the output value words in circuit.Outputs order.
func (s *Simulator) OutputWords() []uint64 {
	out := make([]uint64, len(s.cc.Outputs))
	for i, og := range s.cc.Outputs {
		out[i] = s.val[og]
	}
	return out
}

// Eval is a convenience one-shot scalar evaluator used by tests and
// examples: it returns the output bits of c under vector v.
func Eval(c *circuit.Circuit, v logic.Vector) []uint8 {
	return New(c).SimulateVector(v)
}
