package client

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/eda-go/adifo/internal/service"
)

func newServer(t *testing.T) (*Client, *service.Service) {
	t.Helper()
	svc := service.New(service.Config{})
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		svc.Close()
		srv.Close()
	})
	return New(srv.URL, srv.Client()), svc
}

func TestClientSubmitWaitResult(t *testing.T) {
	cl, _ := newServer(t)
	ctx := context.Background()

	id, err := cl.Submit(ctx, service.JobSpec{
		Circuit:  "c17",
		Patterns: service.PatternSpec{Random: &service.RandomSpec{N: 200, Seed: 3}},
		Mode:     "drop",
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := cl.Wait(ctx, id, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateDone {
		t.Fatalf("job state %s: %s", st.State, st.Error)
	}
	res, err := cl.Result(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "drop" || res.Faults != 22 || res.Detected == 0 {
		t.Fatalf("unexpected result: %+v", res)
	}
	jobs, err := cl.Jobs(ctx)
	if err != nil || len(jobs) != 1 {
		t.Fatalf("jobs: %v, %d entries", err, len(jobs))
	}
}

func TestClientStream(t *testing.T) {
	cl, _ := newServer(t)
	ctx := context.Background()

	id, err := cl.Submit(ctx, service.JobSpec{
		Circuit:  "c17",
		Patterns: service.PatternSpec{Random: &service.RandomSpec{N: 640, Seed: 9}},
		Mode:     "nodrop",
	})
	if err != nil {
		t.Fatal(err)
	}
	var events []service.ProgressEvent
	st, err := cl.Stream(ctx, id, func(ev service.ProgressEvent) { events = append(events, ev) })
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateDone || st.ID != id {
		t.Fatalf("final status %+v", st)
	}
	for _, ev := range events {
		if ev.JobID != id {
			t.Fatalf("foreign event %+v", ev)
		}
	}
}

func TestClientStatsAfterRepeat(t *testing.T) {
	cl, _ := newServer(t)
	ctx := context.Background()
	spec := service.JobSpec{
		Circuit:  "lion",
		Patterns: service.PatternSpec{Exhaustive: true},
		Mode:     "nodrop",
	}
	for i := 0; i < 2; i++ {
		id, err := cl.Submit(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		if st, err := cl.Wait(ctx, id, time.Millisecond); err != nil || st.State != service.StateDone {
			t.Fatalf("wait: %v, %+v", err, st)
		}
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Registry.CircuitHits != 1 || st.Registry.GoodHits != 1 {
		t.Fatalf("cache counters: %+v", st.Registry)
	}
}

func TestClientErrors(t *testing.T) {
	cl, _ := newServer(t)
	ctx := context.Background()
	if _, err := cl.Status(ctx, "j999"); err == nil {
		t.Fatal("unknown job must error")
	}
	if _, err := cl.Result(ctx, "j999"); err == nil {
		t.Fatal("unknown result must error")
	}
	if _, err := cl.Submit(ctx, service.JobSpec{}); err == nil {
		t.Fatal("empty spec must error")
	}
	if _, err := cl.Stream(ctx, "j999", nil); err == nil {
		t.Fatal("unknown stream must error")
	}
}

// TestClientTypedErrors checks that non-2xx responses surface as
// *service.APIError with the machine-readable code, via errors.As.
func TestClientTypedErrors(t *testing.T) {
	cl, _ := newServer(t)
	ctx := context.Background()

	_, err := cl.Status(ctx, "j999")
	var ae *service.APIError
	if !errors.As(err, &ae) || ae.Code != service.CodeNotFound {
		t.Fatalf("status of unknown job: %v (want APIError code not_found)", err)
	}

	_, err = cl.Submit(ctx, service.JobSpec{
		Circuit:  "c17",
		Patterns: service.PatternSpec{Exhaustive: true},
		// Mode deliberately empty: the wire contract rejects it.
	})
	if !errors.As(err, &ae) || ae.Code != service.CodeInvalidRequest {
		t.Fatalf("empty-mode submit: %v (want APIError code invalid_request)", err)
	}

	_, err = cl.Cancel(ctx, "j999")
	if !errors.As(err, &ae) || ae.Code != service.CodeNotFound {
		t.Fatalf("cancel of unknown job: %v (want APIError code not_found)", err)
	}
}

// TestClientCancel cancels a finished job (deterministic) and checks
// the finished conflict comes back typed; the running-cancel path is
// covered end-to-end by the service HTTP tests.
func TestClientCancel(t *testing.T) {
	cl, _ := newServer(t)
	ctx := context.Background()
	id, err := cl.Submit(ctx, service.JobSpec{
		Circuit:  "c17",
		Patterns: service.PatternSpec{Exhaustive: true},
		Mode:     "nodrop",
	})
	if err != nil {
		t.Fatal(err)
	}
	if st, err := cl.Wait(ctx, id, time.Millisecond); err != nil || st.State != service.StateDone {
		t.Fatalf("wait: %v, %+v", err, st)
	}
	_, err = cl.Cancel(ctx, id)
	var ae *service.APIError
	if !errors.As(err, &ae) || ae.Code != service.CodeFinished {
		t.Fatalf("cancel finished job: %v (want APIError code finished)", err)
	}
}
