package fsim

import (
	"fmt"

	"github.com/eda-go/adifo/internal/circuit"
	"github.com/eda-go/adifo/internal/fault"
	"github.com/eda-go/adifo/internal/logic"
)

// Checker answers single-fault, single-vector detection queries
// against one circuit. It owns a scalar kernel bound to the compiled
// form, so repeated queries (ATPG test validation, property-test
// cross-checks) reuse all simulation storage: zero allocations per
// query in the steady state. Not safe for concurrent use.
type Checker struct {
	k  *kern[circuit.W1]
	pi []circuit.W1
}

// NewChecker returns a Checker for c, compiling it first.
func NewChecker(c *circuit.Circuit) *Checker {
	return NewCheckerCompiled(circuit.Compile(c))
}

// NewCheckerCompiled returns a Checker over an existing compiled form.
func NewCheckerCompiled(cc *circuit.Compiled) *Checker {
	return &Checker{
		k:  newKern[circuit.W1](cc, true),
		pi: make([]circuit.W1, cc.NumInputs()),
	}
}

// Detects reports whether vector v detects fault f.
func (ck *Checker) Detects(f fault.Fault, v logic.Vector) bool {
	if len(v) != len(ck.pi) {
		panic(fmt.Sprintf("fsim: vector width %d, circuit has %d inputs", len(v), len(ck.pi)))
	}
	for i, bit := range v {
		if bit != 0 {
			ck.pi[i] = 1
		} else {
			ck.pi[i] = 0
		}
	}
	ck.k.simGood(ck.pi)
	return ck.k.propagate(f)&1 != 0
}

// Detects reports whether vector v detects fault f on circuit c. It is
// a one-shot convenience wrapper that compiles c and builds a fresh
// Checker per call; loops should construct a Checker once instead.
func Detects(c *circuit.Circuit, f fault.Fault, v logic.Vector) bool {
	return NewChecker(c).Detects(f, v)
}
