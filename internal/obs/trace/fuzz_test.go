package trace

import "testing"

// FuzzTraceparent throws arbitrary bytes at the header parser: it must
// never panic, and every header it accepts must round-trip through the
// version-00 renderer back to an equal SpanContext (modulo the
// version/suffix, which the renderer normalizes to 00).
func FuzzTraceparent(f *testing.F) {
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
	f.Add("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-suffix")
	f.Add("ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00-00000000000000000000000000000000-00f067aa0ba902b7-01")
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01")
	f.Add("00-4BF92F3577B34DA6A3CE929D0E0E4736-00F067AA0BA902B7-01")
	f.Add("")
	f.Add("00-")
	f.Add("garbage")

	f.Fuzz(func(t *testing.T, h string) {
		sc, err := ParseTraceparent(h)
		if err != nil {
			return
		}
		if !sc.TraceID.IsValid() || !sc.SpanID.IsValid() {
			t.Fatalf("accepted header %q with zero id: %+v", h, sc)
		}
		rendered := sc.Traceparent()
		back, err := ParseTraceparent(rendered)
		if err != nil {
			t.Fatalf("rendered header %q does not re-parse: %v", rendered, err)
		}
		if back != sc {
			t.Fatalf("round trip %q -> %q: %+v != %+v", h, rendered, back, sc)
		}
	})
}
