package report

import (
	"strings"
	"testing"
)

func TestTableBasic(t *testing.T) {
	tb := NewTable("Table X: demo", "circuit", "tests", "ratio")
	tb.AddRow("irs208", 42, 2.8242)
	tb.AddRow("irs13207", 411, 1.26)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	if lines[0] != "Table X: demo" {
		t.Fatalf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "circuit") {
		t.Fatalf("header line = %q", lines[1])
	}
	if !strings.Contains(out, "2.82") {
		t.Fatalf("float not rendered to 2 decimals:\n%s", out)
	}
	// Columns aligned: "tests" column starts at the same offset in
	// every row.
	idx := strings.Index(lines[1], "tests")
	for _, ln := range lines[3:] {
		if len(ln) <= idx {
			t.Fatalf("row too short: %q", ln)
		}
	}
}

func TestTableNoTrailingSpaces(t *testing.T) {
	tb := NewTable("", "a", "bbbb")
	tb.AddRow("x", "y")
	for _, ln := range strings.Split(tb.String(), "\n") {
		if strings.HasSuffix(ln, " ") {
			t.Fatalf("trailing space in %q", ln)
		}
	}
}

func TestTableAddRowCells(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRowCells([]string{"1", "-"})
	if !strings.Contains(tb.String(), "-") {
		t.Fatal("pre-formatted cell lost")
	}
}

func TestPlotCorners(t *testing.T) {
	s := Series{Marker: 'o', Label: "demo", X: []float64{0, 100}, Y: []float64{0, 100}}
	out := Plot("curve", 40, 10, s)
	if !strings.Contains(out, "o - demo") {
		t.Fatalf("legend missing:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// Top grid row holds the (100,100) marker at the right edge; the
	// bottom grid row holds (0,0) at the left edge.
	var gridLines []string
	for _, ln := range lines {
		if strings.Contains(ln, "|") {
			gridLines = append(gridLines, ln)
		}
	}
	if len(gridLines) != 10 {
		t.Fatalf("grid has %d rows, want 10:\n%s", len(gridLines), out)
	}
	top, bottom := gridLines[0], gridLines[len(gridLines)-1]
	if !strings.Contains(top, "o|") {
		t.Fatalf("top-right marker missing: %q", top)
	}
	if !strings.Contains(bottom, "|o") {
		t.Fatalf("bottom-left marker missing: %q", bottom)
	}
}

func TestPlotMultipleSeries(t *testing.T) {
	a := Series{Marker: 'o', Label: "orig", X: []float64{50}, Y: []float64{50}}
	b := Series{Marker: 'd', Label: "dynm", X: []float64{25}, Y: []float64{75}}
	out := Plot("", 20, 8, a, b)
	if !strings.Contains(out, "o") || !strings.Contains(out, "d") {
		t.Fatalf("markers missing:\n%s", out)
	}
	if !strings.Contains(out, "o - orig") || !strings.Contains(out, "d - dynm") {
		t.Fatalf("legend wrong:\n%s", out)
	}
}

func TestPlotClampsOutOfRange(t *testing.T) {
	s := Series{Marker: 'x', Label: "wild", X: []float64{-50, 150}, Y: []float64{-10, 120}}
	out := Plot("", 12, 6, s)
	if !strings.Contains(out, "x") {
		t.Fatalf("clamped points missing:\n%s", out)
	}
}

func TestPlotMinimumDimensions(t *testing.T) {
	s := Series{Marker: 'o', Label: "p", X: []float64{50}, Y: []float64{50}}
	out := Plot("", 1, 1, s)
	if !strings.Contains(out, "o") {
		t.Fatal("plot with tiny dimensions must still render")
	}
}
