package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"github.com/eda-go/adifo/internal/obs"
	"testing"
)

// FuzzJobSpecValidate decodes arbitrary bytes exactly the way the
// submit handler does (strict JSON into a JobSpec) and runs the full
// submit-time validation. The engine sits behind a network boundary:
// whatever a peer sends, validation must never panic, and any spec it
// accepts must resolve to a registered kind.
func FuzzJobSpecValidate(f *testing.F) {
	f.Add([]byte(`{"circuit":"c17","mode":"nodrop","patterns":{"random":{"n":64,"seed":1}}}`))
	f.Add([]byte(`{"kind":"grade","circuit":"c17","mode":"ndetect","n":3,"patterns":{"exhaustive":true}}`))
	f.Add([]byte(`{"kind":"atpg","circuit":"lion","patterns":{"random":{"n":96,"seed":7}},"order":{"kind":"dynm"},"gen":{"fill_seed":9}}`))
	f.Add([]byte(`{"kind":"adi_order","bench":"INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n","patterns":{"exhaustive":true},"order":{"kind":"0decr"}}`))
	f.Add([]byte(`{"kind":"grade","circuit":"c17","mode":"drop","patterns":{"vectors":["01011"]},"fault_shard":{"index":1,"count":3}}`))
	f.Add([]byte(`{"kind":"nope"}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"circuit":"c17","patterns":{"random":{"n":-1,"seed":0}}}`))

	s := New(Config{Logger: obs.Nop(), SimWorkers: 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		var spec JobSpec
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if dec.Decode(&spec) != nil {
			return
		}
		k, err := s.validateSpec(spec)
		if err != nil {
			if k != nil {
				t.Fatalf("validateSpec returned both a kind and %v", err)
			}
			return
		}
		name := NormalizeKind(spec.Kind)
		if jobKinds[name] != k {
			t.Fatalf("accepted spec resolved kind %q to the wrong registry entry", name)
		}
	})
}

// FuzzErrorEnvelope decodes arbitrary bytes as the v1 error envelope
// the way the client does and checks the decoded error behaves: a
// non-empty code yields a printable error whose sentinel mapping is
// consistent, and the envelope survives a marshal/unmarshal round
// trip — the property that keeps client-side errors.Is working across
// the wire.
func FuzzErrorEnvelope(f *testing.F) {
	f.Add([]byte(`{"error":{"code":"not_found","message":"service: job not found"}}`))
	f.Add([]byte(`{"error":{"code":"unsupported_kind","message":"service: unsupported job kind \"x\""}}`))
	f.Add([]byte(`{"error":{"code":"unavailable","message":"draining"}}`))
	f.Add([]byte(`{"error":{}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))

	sentinels := map[string]error{
		CodeNotFound:        ErrNotFound,
		CodeNotDone:         ErrNotDone,
		CodeCancelled:       ErrCancelled,
		CodeFinished:        ErrFinished,
		CodeUnavailable:     ErrDraining,
		CodeUnsupportedKind: ErrUnsupportedKind,
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var env errorEnvelope
		if json.Unmarshal(data, &env) != nil {
			return
		}
		apiErr := &env.Err
		if apiErr.Code == "" {
			return
		}
		if apiErr.Error() == "" {
			t.Fatal("decoded APIError prints empty")
		}
		for code, sentinel := range sentinels {
			if got, want := errors.Is(apiErr, sentinel), apiErr.Code == code; got != want {
				t.Fatalf("code %q: errors.Is(%v) = %v, want %v", apiErr.Code, sentinel, got, want)
			}
		}
		out, err := json.Marshal(errorEnvelope{Err: *apiErr})
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		var env2 errorEnvelope
		if err := json.Unmarshal(out, &env2); err != nil || env2 != env {
			t.Fatalf("round trip changed envelope: %+v -> %+v (%v)", env, env2, err)
		}
	})
}
