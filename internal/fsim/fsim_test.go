package fsim

import (
	"testing"

	"github.com/eda-go/adifo/internal/circuit"
	"github.com/eda-go/adifo/internal/fault"
	"github.com/eda-go/adifo/internal/logic"
	"github.com/eda-go/adifo/internal/prng"
)

const c17Bench = `
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`

func parse(t testing.TB, name, src string) *circuit.Circuit {
	t.Helper()
	c, err := circuit.ParseBenchString(name, src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// naiveDetects is an independent reference: evaluate the good and the
// faulty circuit gate by gate, pattern by pattern, with the fault
// modelled by brute force.
func naiveDetects(c *circuit.Circuit, f fault.Fault, v logic.Vector) bool {
	good := naiveValues(c, f, v, false)
	bad := naiveValues(c, f, v, true)
	for _, og := range c.Outputs {
		if good[og] != bad[og] {
			return true
		}
	}
	return false
}

func naiveValues(c *circuit.Circuit, f fault.Fault, v logic.Vector, inject bool) []uint8 {
	val := make([]uint8, c.NumGates())
	for _, gi := range c.Topo {
		g := c.Gates[gi]
		var out uint8
		if g.Type == circuit.PI {
			out = v[c.InputIndex[gi]] & 1
		} else {
			in := make([]uint64, len(g.Fanin))
			for k, fi := range g.Fanin {
				in[k] = uint64(val[fi])
			}
			if inject && f.Pin != fault.StemPin && f.Gate == gi {
				in[f.Pin] = uint64(f.SA)
			}
			out = uint8(circuit.EvalWord(g.Type, in) & 1)
		}
		if inject && f.Pin == fault.StemPin && f.Gate == gi {
			out = f.SA
		}
		val[gi] = out
	}
	return val
}

func TestEngineMatchesNaiveC17Exhaustive(t *testing.T) {
	c := parse(t, "c17", c17Bench)
	fl := fault.Universe(c)
	ps := logic.ExhaustivePatterns(c.NumInputs())
	res := Run(fl, ps, Options{Mode: NoDrop})
	for fi, f := range fl.Faults {
		for u := 0; u < ps.Len(); u++ {
			want := naiveDetects(c, f, ps.Get(u))
			got := res.Det[fi].Test(u)
			if got != want {
				t.Fatalf("fault %v vector %d: engine=%v naive=%v", f.Name(c), u, got, want)
			}
		}
	}
}

func TestEngineMatchesNaiveRandomCircuit(t *testing.T) {
	// A denser hand-rolled circuit with XORs, branches and inverters.
	src := `
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(o1)
OUTPUT(o2)
n1 = NOT(a)
n2 = XOR(a, b)
n3 = NAND(n2, c)
n4 = NOR(n1, d)
n5 = OR(n3, n4)
n6 = AND(n2, n3)
o1 = XNOR(n5, n6)
o2 = AND(n4, n2)
`
	c := parse(t, "dense", src)
	fl := fault.Universe(c)
	ps := logic.ExhaustivePatterns(c.NumInputs())
	res := Run(fl, ps, Options{Mode: NoDrop})
	for fi, f := range fl.Faults {
		for u := 0; u < ps.Len(); u++ {
			want := naiveDetects(c, f, ps.Get(u))
			if got := res.Det[fi].Test(u); got != want {
				t.Fatalf("fault %v vector %d: engine=%v naive=%v", f.Name(c), u, got, want)
			}
		}
	}
}

func TestNdetConsistency(t *testing.T) {
	c := parse(t, "c17", c17Bench)
	fl := fault.Universe(c)
	ps := logic.ExhaustivePatterns(c.NumInputs())
	res := Run(fl, ps, Options{Mode: NoDrop})
	// ndet(u) must equal the column sums of the detection matrix, and
	// DetCount the row sums.
	for u := 0; u < ps.Len(); u++ {
		count := 0
		for fi := range fl.Faults {
			if res.Det[fi].Test(u) {
				count++
			}
		}
		if res.Ndet[u] != count {
			t.Fatalf("ndet(%d) = %d, column sum %d", u, res.Ndet[u], count)
		}
	}
	for fi := range fl.Faults {
		if res.DetCount[fi] != res.Det[fi].Count() {
			t.Fatalf("DetCount[%d] = %d, bitset count %d", fi, res.DetCount[fi], res.Det[fi].Count())
		}
	}
}

func TestDropModeMatchesNoDropFirstDetections(t *testing.T) {
	c := parse(t, "c17", c17Bench)
	fl := fault.Universe(c)
	ps := logic.RandomPatterns(c.NumInputs(), 200, prng.New(3))
	noDrop := Run(fl, ps, Options{Mode: NoDrop})
	drop := Run(fl, ps, Options{Mode: Drop})
	for fi := range fl.Faults {
		if noDrop.FirstDet[fi] != drop.FirstDet[fi] {
			t.Fatalf("fault %d: FirstDet no-drop %d vs drop %d",
				fi, noDrop.FirstDet[fi], drop.FirstDet[fi])
		}
		if drop.Detected(fi) && drop.DetCount[fi] == 0 {
			t.Fatalf("fault %d: detected but count 0", fi)
		}
	}
	if noDrop.DetectedCount() != drop.DetectedCount() {
		t.Fatal("drop mode changed the set of detected faults")
	}
}

func TestNDetectMode(t *testing.T) {
	c := parse(t, "c17", c17Bench)
	fl := fault.Universe(c)
	ps := logic.ExhaustivePatterns(c.NumInputs())
	const n = 3
	res := Run(fl, ps, Options{Mode: NDetect, N: n})
	noDrop := Run(fl, ps, Options{Mode: NoDrop})
	for fi := range fl.Faults {
		want := noDrop.DetCount[fi]
		if want > n {
			want = n
		}
		if res.DetCount[fi] != want {
			t.Fatalf("fault %d: NDetect count %d, want min(%d, %d)",
				fi, res.DetCount[fi], noDrop.DetCount[fi], n)
		}
		if res.FirstDet[fi] != noDrop.FirstDet[fi] {
			t.Fatalf("fault %d: NDetect FirstDet %d, no-drop %d",
				fi, res.FirstDet[fi], noDrop.FirstDet[fi])
		}
	}
}

func TestNDetectRequiresN(t *testing.T) {
	c := parse(t, "c17", c17Bench)
	fl := fault.Universe(c)
	ps := logic.ExhaustivePatterns(c.NumInputs())
	defer func() {
		if recover() == nil {
			t.Fatal("NDetect without N did not panic")
		}
	}()
	Run(fl, ps, Options{Mode: NDetect})
}

func TestStopAtCoverage(t *testing.T) {
	c := parse(t, "c17", c17Bench)
	fl := fault.Universe(c)
	ps := logic.RandomPatterns(c.NumInputs(), 64*10, prng.New(5))
	res := Run(fl, ps, Options{Mode: Drop, StopAtCoverage: 0.5})
	if res.VectorsUsed > ps.Len() || res.VectorsUsed <= 0 {
		t.Fatalf("VectorsUsed = %d", res.VectorsUsed)
	}
	if res.Coverage() < 0.5 {
		t.Fatalf("stopped at coverage %v < 0.5", res.Coverage())
	}
	if len(res.Ndet) != res.VectorsUsed {
		t.Fatalf("Ndet length %d != VectorsUsed %d", len(res.Ndet), res.VectorsUsed)
	}
}

func TestUndetectableFaultNeverDetected(t *testing.T) {
	// y = OR(a, NOT(a)) is constant 1: y sa1 is undetectable.
	src := `
INPUT(a)
INPUT(b)
OUTPUT(z)
n = NOT(a)
y = OR(a, n)
z = AND(y, b)
`
	c := parse(t, "redundant", src)
	fl := fault.Universe(c)
	ps := logic.ExhaustivePatterns(c.NumInputs())
	res := Run(fl, ps, Options{Mode: NoDrop})
	y, _ := c.GateByName("y")
	for fi, f := range fl.Faults {
		if f.Gate == y && f.Pin == fault.StemPin && f.SA == 1 {
			if res.Detected(fi) {
				t.Fatal("undetectable fault reported detected")
			}
		}
	}
}

func TestIncrementalMatchesBatch(t *testing.T) {
	c := parse(t, "c17", c17Bench)
	fl := fault.Universe(c)
	ps := logic.RandomPatterns(c.NumInputs(), 40, prng.New(9))

	inc := NewIncremental(fl)
	var order []int
	for u := 0; u < ps.Len(); u++ {
		order = append(order, inc.SimulateVector(ps.Get(u))...)
	}
	batch := Run(fl, ps, Options{Mode: Drop})

	// The set of detected faults and each first-detection index must
	// agree between the incremental and batch simulators.
	if len(order) != batch.DetectedCount() {
		t.Fatalf("incremental detected %d, batch %d", len(order), batch.DetectedCount())
	}
	if inc.Remaining() != fl.Len()-batch.DetectedCount() {
		t.Fatalf("Remaining = %d", inc.Remaining())
	}
	for fi := range fl.Faults {
		if batch.Detected(fi) == inc.Alive(fi) {
			t.Fatalf("fault %d: batch detected=%v but incremental alive=%v",
				fi, batch.Detected(fi), inc.Alive(fi))
		}
	}
}

func TestIncrementalDrop(t *testing.T) {
	c := parse(t, "c17", c17Bench)
	fl := fault.Universe(c)
	inc := NewIncremental(fl)
	n := inc.Remaining()
	inc.Drop(0)
	if inc.Remaining() != n-1 || inc.Alive(0) {
		t.Fatal("Drop did not remove the fault")
	}
	inc.Drop(0) // idempotent
	if inc.Remaining() != n-1 {
		t.Fatal("double Drop changed the count")
	}
}

func TestDetectsAgainstNaive(t *testing.T) {
	c := parse(t, "c17", c17Bench)
	fl := fault.Universe(c)
	ps := logic.ExhaustivePatterns(c.NumInputs())
	for _, f := range fl.Faults {
		for u := 0; u < ps.Len(); u++ {
			v := ps.Get(u)
			if Detects(c, f, v) != naiveDetects(c, f, v) {
				t.Fatalf("Detects disagrees with naive for %v vector %d", f.Name(c), u)
			}
		}
	}
}

func TestBranchVsStemFaultDiffer(t *testing.T) {
	// With fanout, a branch fault must affect only its own sink:
	// a feeds both AND gates; the branch fault a->y1 sa0 kills y1
	// but leaves y2 healthy, while the stem fault kills both.
	src := `
INPUT(a)
INPUT(b)
OUTPUT(y1)
OUTPUT(y2)
y1 = AND(a, b)
y2 = AND(a, b)
`
	c := parse(t, "branch", src)
	a, _ := c.GateByName("a")
	y1, _ := c.GateByName("y1")
	v := logic.Vector{1, 1}

	stem := fault.Fault{Gate: a, Pin: fault.StemPin, SA: 0}
	branch := fault.Fault{Gate: y1, Pin: 0, SA: 0}
	if !Detects(c, stem, v) || !Detects(c, branch, v) {
		t.Fatal("both faults must be detected by 11")
	}
	// Check the branch fault leaves y2 untouched: compare against a
	// naive evaluation.
	bad := naiveValues(c, branch, v, true)
	good := naiveValues(c, branch, v, false)
	y2, _ := c.GateByName("y2")
	if bad[y2] != good[y2] {
		t.Fatal("branch fault leaked to the sibling branch")
	}
	if bad[y1] == good[y1] {
		t.Fatal("branch fault had no effect on its own sink")
	}
}

func TestRunPanicsOnWidthMismatch(t *testing.T) {
	c := parse(t, "c17", c17Bench)
	fl := fault.Universe(c)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(fl, logic.NewPatternSet(2), Options{Mode: NoDrop})
}

func BenchmarkNoDropC17(b *testing.B) {
	c, err := circuit.ParseBenchString("c17", c17Bench)
	if err != nil {
		b.Fatal(err)
	}
	fl := fault.Universe(c)
	ps := logic.RandomPatterns(c.NumInputs(), 640, prng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(fl, ps, Options{Mode: NoDrop})
	}
}
