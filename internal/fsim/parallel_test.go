package fsim

import (
	"testing"

	"github.com/eda-go/adifo/internal/fault"
	"github.com/eda-go/adifo/internal/gen"
	"github.com/eda-go/adifo/internal/logic"
	"github.com/eda-go/adifo/internal/prng"
)

func TestRunParallelMatchesSequential(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		for seed := uint64(1); seed <= 3; seed++ {
			c := gen.Generate(gen.Config{Name: "p", Inputs: 10, Gates: 120, Seed: seed})
			fl := fault.CollapsedUniverse(c)
			ps := logic.RandomPatterns(c.NumInputs(), 200, prng.New(seed))

			seq := Run(fl, ps, Options{Mode: NoDrop})
			par := RunParallel(fl, ps, workers)

			if par.VectorsUsed != seq.VectorsUsed {
				t.Fatalf("workers=%d seed=%d: VectorsUsed %d vs %d",
					workers, seed, par.VectorsUsed, seq.VectorsUsed)
			}
			for fi := range fl.Faults {
				if par.DetCount[fi] != seq.DetCount[fi] {
					t.Fatalf("workers=%d seed=%d fault %d: DetCount %d vs %d",
						workers, seed, fi, par.DetCount[fi], seq.DetCount[fi])
				}
				if par.FirstDet[fi] != seq.FirstDet[fi] {
					t.Fatalf("workers=%d seed=%d fault %d: FirstDet %d vs %d",
						workers, seed, fi, par.FirstDet[fi], seq.FirstDet[fi])
				}
				for w := 0; w < (ps.Len()+63)/64; w++ {
					if par.Det[fi].WordAt(w) != seq.Det[fi].WordAt(w) {
						t.Fatalf("workers=%d seed=%d fault %d: Det word %d differs",
							workers, seed, fi, w)
					}
				}
			}
			for u := range seq.Ndet {
				if par.Ndet[u] != seq.Ndet[u] {
					t.Fatalf("workers=%d seed=%d: ndet(%d) %d vs %d",
						workers, seed, u, par.Ndet[u], seq.Ndet[u])
				}
			}
		}
	}
}

func TestRunParallelPanicsOnWidthMismatch(t *testing.T) {
	c := gen.Generate(gen.Config{Name: "p", Inputs: 4, Gates: 10, Seed: 1})
	fl := fault.CollapsedUniverse(c)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RunParallel(fl, logic.NewPatternSet(2), 2)
}

func BenchmarkRunParallel(b *testing.B) {
	c := gen.Generate(gen.Config{Name: "p", Inputs: 32, Gates: 600, Seed: 1})
	fl := fault.CollapsedUniverse(c)
	ps := logic.RandomPatterns(c.NumInputs(), 1024, prng.New(1))
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Run(fl, ps, Options{Mode: NoDrop})
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			RunParallel(fl, ps, 0)
		}
	})
}
