module github.com/eda-go/adifo

go 1.24
