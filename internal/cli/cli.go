// Package cli holds the small amount of plumbing shared by the
// command-line tools: resolving a circuit argument and parsing order
// names.
package cli

import (
	"fmt"
	"os"
	"strings"

	"github.com/eda-go/adifo/internal/adi"
	"github.com/eda-go/adifo/internal/benchdata"
	"github.com/eda-go/adifo/internal/circuit"
	"github.com/eda-go/adifo/internal/gen"
	"github.com/eda-go/adifo/internal/irr"
)

// LoadNamedCircuit resolves a circuit name without touching the
// filesystem, trying in order:
//
//  1. an embedded benchmark name (c17, s27, lion);
//  2. a synthetic suite name (irs208 … irs13207), generated and made
//     irredundant exactly as the experiments do.
//
// The fault-grading service uses it to resolve named circuits from
// requests, which must never read server-local files.
func LoadNamedCircuit(ref string) (*circuit.Circuit, error) {
	if c, err := benchdata.Load(ref); err == nil {
		return c, nil
	}
	if sc, ok := gen.SuiteByName(ref); ok {
		raw := gen.Generate(sc.Config())
		c, _, err := irr.Make(raw, irr.Options{})
		if err != nil {
			return nil, fmt.Errorf("building %s: %w", ref, err)
		}
		return c, nil
	}
	return nil, fmt.Errorf("%q is neither an embedded circuit (%v) nor a suite name", ref, benchdata.Names())
}

// LoadCircuit resolves a circuit reference like LoadNamedCircuit, with
// a final fallback to a path to a .bench file.
func LoadCircuit(ref string) (*circuit.Circuit, error) {
	if c, err := LoadNamedCircuit(ref); err == nil {
		return c, nil
	}
	f, err := os.Open(ref)
	if err != nil {
		return nil, fmt.Errorf("%q is neither an embedded circuit (%v), a suite name, nor a readable file: %w",
			ref, benchdata.Names(), err)
	}
	defer f.Close()
	return circuit.ParseBench(ref, f)
}

// ParseOrder maps the paper's order labels to adi.OrderKind.
func ParseOrder(name string) (adi.OrderKind, error) {
	switch strings.ToLower(name) {
	case "orig":
		return adi.Orig, nil
	case "incr0":
		return adi.Incr0, nil
	case "decr":
		return adi.Decr, nil
	case "0decr", "decr0":
		return adi.Decr0, nil
	case "dynm":
		return adi.Dynm, nil
	case "0dynm", "dynm0":
		return adi.Dynm0, nil
	}
	return 0, fmt.Errorf("unknown order %q (want orig, incr0, decr, 0decr, dynm or 0dynm)", name)
}

// Suite resolves a suite selector: "small", "full", or a single
// circuit name.
func Suite(sel string) ([]gen.SuiteCircuit, error) {
	switch strings.ToLower(sel) {
	case "small":
		return gen.SmallSuite(), nil
	case "full", "paper":
		return gen.PaperSuite(), nil
	}
	if sc, ok := gen.SuiteByName(sel); ok {
		return []gen.SuiteCircuit{sc}, nil
	}
	return nil, fmt.Errorf("unknown suite %q (want small, full, or a circuit name)", sel)
}
