package trace

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"
)

// endTrace runs a tiny root+child trace named kind through rec with a
// synthetic duration (the recorder trusts the SpanData timestamps).
func endTrace(rec *Recorder, kind string, d time.Duration) TraceID {
	id := NewTraceID()
	root := NewSpanID()
	start := time.Unix(1700000000, 0)
	rec.startSpan()
	rec.endSpan(id, &SpanData{
		SpanID: NewSpanID().String(), ParentSpanID: root.String(),
		Name: "phase", Start: start, End: start.Add(d / 2),
		DurationSecs: (d / 2).Seconds(),
	}, false)
	rec.startSpan()
	rec.endSpan(id, &SpanData{
		SpanID: root.String(), Name: kind, Start: start, End: start.Add(d),
		DurationSecs: d.Seconds(),
		Attrs:        []Attr{{Key: "kind", Value: kind}},
	}, true)
	return id
}

func TestRecorderCompletesOnRoot(t *testing.T) {
	rec := NewRecorder(RecorderOptions{})
	id := endTrace(rec, "grade", 10*time.Millisecond)

	td, ok := rec.Trace(id.String())
	if !ok {
		t.Fatal("completed trace not retrievable")
	}
	if td.Kind != "grade" {
		t.Errorf("Kind = %q, want grade", td.Kind)
	}
	if len(td.Spans) != 2 {
		t.Errorf("spans = %d, want 2", len(td.Spans))
	}
	if td.Spans[0].Name != "phase" && td.Spans[0].Name != td.Root {
		// spans are sorted by start; both share a start here, so just
		// assert the root name landed on the trace.
		t.Errorf("unexpected first span %q", td.Spans[0].Name)
	}
	st := rec.Stats()
	if st.SpansStarted != 2 || st.SpansFinished != 2 || st.SpansDropped != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.Traces != 1 {
		t.Errorf("Traces = %d, want 1", st.Traces)
	}
}

func TestRecorderRingEviction(t *testing.T) {
	rec := NewRecorder(RecorderOptions{Capacity: 4, SlowestPerKind: 1})
	var first TraceID
	var slowest TraceID
	for i := 0; i < 10; i++ {
		d := time.Duration(i+1) * time.Millisecond
		id := endTrace(rec, "grade", d)
		if i == 0 {
			first = id
		}
		slowest = id // durations ascend, so the last is slowest
	}
	if _, ok := rec.Trace(first.String()); ok {
		t.Error("oldest trace survived ring eviction without a slow pin")
	}
	if _, ok := rec.Trace(slowest.String()); !ok {
		t.Error("slowest trace missing")
	}
	got := rec.Traces()
	// 4 ring entries; the slowest is already in the ring (it is also
	// the newest), so no extra pinned summary.
	if len(got) != 4 {
		t.Fatalf("Traces() = %d summaries, want 4", len(got))
	}
	if got[0].TraceID != slowest.String() {
		t.Errorf("summaries not newest-first: got %s first", got[0].TraceID)
	}
}

func TestRecorderSlowestPinSurvivesRing(t *testing.T) {
	rec := NewRecorder(RecorderOptions{Capacity: 2, SlowestPerKind: 2})
	slow := endTrace(rec, "atpg", time.Second)
	for i := 0; i < 5; i++ {
		endTrace(rec, "atpg", time.Millisecond)
	}
	if _, ok := rec.Trace(slow.String()); !ok {
		t.Fatal("slowest-per-kind pin evicted by ring churn")
	}
	found := false
	for _, s := range rec.Traces() {
		if s.TraceID == slow.String() {
			found = true
		}
	}
	if !found {
		t.Error("pinned trace absent from Traces() listing")
	}
}

func TestRecorderMaxActiveEviction(t *testing.T) {
	rec := NewRecorder(RecorderOptions{MaxActive: 2})
	// Three traces accumulate spans but never see a root end.
	ids := []TraceID{NewTraceID(), NewTraceID(), NewTraceID()}
	for _, id := range ids {
		rec.startSpan()
		rec.endSpan(id, &SpanData{SpanID: NewSpanID().String(), Name: "floating"}, false)
	}
	st := rec.Stats()
	if st.SpansDropped == 0 {
		t.Error("MaxActive overflow did not count drops")
	}
}

func TestRecorderSpanCap(t *testing.T) {
	rec := NewRecorder(RecorderOptions{MaxSpansPerTrace: 3})
	id := NewTraceID()
	for i := 0; i < 10; i++ {
		rec.startSpan()
		rec.endSpan(id, &SpanData{SpanID: NewSpanID().String(), Name: fmt.Sprintf("c%d", i)}, false)
	}
	rec.startSpan()
	rec.endSpan(id, &SpanData{SpanID: NewSpanID().String(), Name: "root"}, true)
	td, ok := rec.Trace(id.String())
	if !ok {
		t.Fatal("trace missing")
	}
	if len(td.Spans) != 4 { // 3 children kept + root always kept
		t.Fatalf("spans = %d, want 4 (cap 3 + root)", len(td.Spans))
	}
	var hasRoot bool
	for _, sp := range td.Spans {
		if sp.Name == "root" {
			hasRoot = true
		}
	}
	if !hasRoot {
		t.Error("root span dropped by span cap")
	}
}

func TestTreeNesting(t *testing.T) {
	rec := NewRecorder(RecorderOptions{})
	ctx := WithRecorder(context.Background(), rec)
	rctx, root := Start(ctx, "job.grade", Root())
	c1ctx, c1 := Start(rctx, "simulate")
	_, c2 := Start(c1ctx, "inner")
	c2.End()
	c1.End()
	_, c3 := Start(rctx, "merge")
	c3.End()
	root.End()

	td, ok := rec.Trace(root.Context().TraceID.String())
	if !ok {
		t.Fatal("trace missing")
	}
	roots := td.Tree()
	if len(roots) != 1 {
		t.Fatalf("tree has %d roots, want 1", len(roots))
	}
	if len(roots[0].Children) != 2 {
		t.Fatalf("root has %d children, want 2", len(roots[0].Children))
	}
	var inner int
	for _, c := range roots[0].Children {
		if c.Name == "simulate" {
			inner = len(c.Children)
		}
	}
	if inner != 1 {
		t.Errorf("simulate has %d children, want 1", inner)
	}
}

func TestHandler(t *testing.T) {
	rec := NewRecorder(RecorderOptions{})
	id := endTrace(rec, "order", 5*time.Millisecond)

	h := rec.Handler()

	// List view.
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces", nil))
	if rr.Code != 200 {
		t.Fatalf("list status %d", rr.Code)
	}
	var list struct {
		Traces []TraceSummary `json:"traces"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &list); err != nil {
		t.Fatalf("list JSON: %v", err)
	}
	if len(list.Traces) != 1 || list.Traces[0].TraceID != id.String() {
		t.Fatalf("list = %+v", list.Traces)
	}

	// Tree view.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces/"+id.String(), nil))
	if rr.Code != 200 {
		t.Fatalf("tree status %d: %s", rr.Code, rr.Body.String())
	}
	var tree struct {
		TraceID string      `json:"trace_id"`
		Tree    []*SpanNode `json:"tree"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &tree); err != nil {
		t.Fatalf("tree JSON: %v", err)
	}
	if tree.TraceID != id.String() || len(tree.Tree) == 0 {
		t.Fatalf("tree = %+v", tree)
	}

	// Unknown id.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces/"+NewTraceID().String(), nil))
	if rr.Code != 404 {
		t.Errorf("unknown trace status %d, want 404", rr.Code)
	}
}
