package service

import (
	"github.com/eda-go/adifo/internal/obs"
)

// Terminal status label values of the adifo_jobs_total metric.
var terminalStatuses = []string{StateDone, StateFailed, StateCancelled}

// serviceMetrics bundles the engine's instruments. Hot-path updates
// are single atomic operations; everything derivable at scrape time
// (uptime, the registry's cache counters) is a *Func metric so no hot
// path pays for it twice.
type serviceMetrics struct {
	reg *obs.Registry

	jobsSubmitted *obs.CounterVec // kind
	jobsTotal     *obs.CounterVec // kind, status (terminal only)
	jobsQueued    *obs.Gauge
	jobsRunning   *obs.Gauge
	queueWait     *obs.HistogramVec // kind
	duration      *obs.HistogramVec // kind
	simBlocks     *obs.Counter
	writeErrors   *obs.Counter
	draining      *obs.Gauge
}

// newServiceMetrics registers the engine's metric families on reg and
// pre-creates every (kind, status) series, so a scrape of a fresh
// server already exposes the full catalog at zero — dashboards and the
// golden exposition test see a deterministic series set regardless of
// which kinds have run.
func newServiceMetrics(reg *obs.Registry, s *Service) *serviceMetrics {
	m := &serviceMetrics{reg: reg}

	reg.GaugeVec("adifo_build_info",
		"Build metadata; value is always 1.",
		"version", "goversion").With(obs.Version, obs.GoVersion()).Set(1)
	reg.GaugeFunc("adifo_uptime_seconds",
		"Seconds since the service was constructed.",
		func() float64 { return s.now().Sub(s.start).Seconds() })

	m.jobsSubmitted = reg.CounterVec("adifo_jobs_submitted_total",
		"Jobs accepted by Submit, by kind.", "kind")
	m.jobsTotal = reg.CounterVec("adifo_jobs_total",
		"Jobs reaching a terminal state, by kind and status.", "kind", "status")
	m.jobsQueued = reg.Gauge("adifo_jobs_queued",
		"Jobs accepted but not yet claimed by a pool slot.")
	m.jobsRunning = reg.Gauge("adifo_jobs_running",
		"Jobs currently holding a pool slot.")
	m.queueWait = reg.HistogramVec("adifo_queue_wait_seconds",
		"Time from Submit to claiming a pool slot, by kind.", nil, "kind")
	m.duration = reg.HistogramVec("adifo_job_duration_seconds",
		"Run time of completed jobs (claim to done), by kind.", nil, "kind")
	m.simBlocks = reg.Counter("adifo_sim_blocks_total",
		"64-pattern simulation blocks completed across all jobs (rate = blocks/sec).")
	m.writeErrors = reg.Counter("adifo_http_write_errors_total",
		"HTTP response bodies that failed to encode after the status line was sent.")
	m.draining = reg.Gauge("adifo_draining",
		"1 once Drain has been called, 0 before.")

	for _, kind := range KindNames() {
		m.jobsSubmitted.With(kind)
		m.queueWait.With(kind)
		m.duration.With(kind)
		for _, st := range terminalStatuses {
			m.jobsTotal.With(kind, st)
		}
	}

	// The registry cache owns its counters; expose them as scrape-time
	// functions instead of double-counting on the lookup path.
	stats := func(pick func(RegistryStats) uint64) func() uint64 {
		return func() uint64 { return pick(s.reg.Stats()) }
	}
	reg.CounterFunc("adifo_registry_circuit_hits_total",
		"Circuit cache lookups served from cache.",
		stats(func(r RegistryStats) uint64 { return r.CircuitHits }))
	reg.CounterFunc("adifo_registry_circuit_misses_total",
		"Circuit cache lookups that had to build (parse, levelize, collapse).",
		stats(func(r RegistryStats) uint64 { return r.CircuitMisses }))
	reg.CounterFunc("adifo_registry_circuit_evictions_total",
		"Circuit cache entries evicted by the LRU.",
		stats(func(r RegistryStats) uint64 { return r.CircuitEvictions }))
	reg.CounterFunc("adifo_registry_good_hits_total",
		"Good-machine cache lookups served from cache.",
		stats(func(r RegistryStats) uint64 { return r.GoodHits }))
	reg.CounterFunc("adifo_registry_good_misses_total",
		"Good-machine cache lookups that had to simulate.",
		stats(func(r RegistryStats) uint64 { return r.GoodMisses }))
	reg.CounterFunc("adifo_registry_good_evictions_total",
		"Good-machine cache entries evicted by the LRU.",
		stats(func(r RegistryStats) uint64 { return r.GoodEvictions }))
	reg.GaugeFunc("adifo_registry_circuits",
		"Circuit cache entries currently resident.",
		func() float64 { return float64(s.reg.Stats().Circuits) })
	reg.GaugeFunc("adifo_registry_goods",
		"Good-machine cache entries currently resident.",
		func() float64 { return float64(s.reg.Stats().Goods) })

	return m
}
