package logic

import (
	"math/bits"
	"testing"
	"testing/quick"

	"github.com/eda-go/adifo/internal/prng"
)

func TestVectorDecimalRoundTrip(t *testing.T) {
	for width := 1; width <= 10; width++ {
		for d := uint64(0); d < 1<<uint(width); d++ {
			v := VectorFromDecimal(d, width)
			if got := v.Decimal(); got != d {
				t.Fatalf("width %d: round trip of %d gave %d (vector %s)", width, d, got, v)
			}
		}
	}
}

func TestVectorString(t *testing.T) {
	v := Vector{0, 1, 1, 0}
	if v.String() != "0110" {
		t.Fatalf("String = %q", v.String())
	}
	if v.Decimal() != 6 {
		t.Fatalf("Decimal = %d, want 6", v.Decimal())
	}
}

func TestVectorClone(t *testing.T) {
	v := Vector{1, 0, 1}
	c := v.Clone()
	c[0] = 0
	if v[0] != 1 {
		t.Fatal("Clone aliases original storage")
	}
}

func TestAppendGetRoundTrip(t *testing.T) {
	src := prng.New(1)
	ps := NewPatternSet(9)
	var want []Vector
	for i := 0; i < 200; i++ {
		v := make(Vector, 9)
		for j := range v {
			v[j] = uint8(src.Intn(2))
		}
		want = append(want, v.Clone())
		ps.Append(v)
	}
	if ps.Len() != 200 {
		t.Fatalf("Len = %d", ps.Len())
	}
	for i, w := range want {
		got := ps.Get(i)
		if got.String() != w.String() {
			t.Fatalf("vector %d: got %s want %s", i, got, w)
		}
	}
}

func TestBitMatchesGet(t *testing.T) {
	ps := RandomPatterns(13, 150, prng.New(7))
	for i := 0; i < ps.Len(); i++ {
		v := ps.Get(i)
		for in := 0; in < ps.Inputs(); in++ {
			if ps.Bit(i, in) != v[in] {
				t.Fatalf("Bit(%d,%d) disagrees with Get", i, in)
			}
		}
	}
}

func TestBlockMask(t *testing.T) {
	ps := RandomPatterns(3, 70, prng.New(2))
	if ps.Blocks() != 2 {
		t.Fatalf("Blocks = %d, want 2", ps.Blocks())
	}
	if ps.BlockMask(0) != ^uint64(0) {
		t.Fatal("full block mask wrong")
	}
	if got := ps.BlockMask(1); got != (1<<6)-1 {
		t.Fatalf("tail mask = %x, want %x", got, (1<<6)-1)
	}
}

func TestBlockMaskExactMultiple(t *testing.T) {
	ps := RandomPatterns(3, 128, prng.New(2))
	if ps.Blocks() != 2 {
		t.Fatalf("Blocks = %d", ps.Blocks())
	}
	if ps.BlockMask(1) != ^uint64(0) {
		t.Fatal("exact-multiple tail block must be full")
	}
}

func TestRandomPatternsTailBitsClear(t *testing.T) {
	ps := RandomPatterns(5, 10, prng.New(3))
	for in := 0; in < 5; in++ {
		if w := ps.Word(in, 0); w&^((1<<10)-1) != 0 {
			t.Fatalf("input %d: bits beyond Len set: %x", in, w)
		}
	}
}

func TestExhaustivePatterns(t *testing.T) {
	ps := ExhaustivePatterns(4)
	if ps.Len() != 16 {
		t.Fatalf("Len = %d", ps.Len())
	}
	for d := 0; d < 16; d++ {
		if got := ps.Get(d).Decimal(); got != uint64(d) {
			t.Fatalf("vector %d has decimal %d", d, got)
		}
	}
}

func TestExhaustivePatternsGuard(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ExhaustivePatterns(21) did not panic")
		}
	}()
	ExhaustivePatterns(21)
}

func TestSlice(t *testing.T) {
	ps := RandomPatterns(6, 130, prng.New(5))
	sl := ps.Slice(70)
	if sl.Len() != 70 {
		t.Fatalf("Slice Len = %d", sl.Len())
	}
	for i := 0; i < 70; i++ {
		if sl.Get(i).String() != ps.Get(i).String() {
			t.Fatalf("vector %d differs after Slice", i)
		}
	}
	// Tail bits beyond 70 must be cleared in the sliced set.
	for in := 0; in < 6; in++ {
		if w := sl.Word(in, 1); w&^((1<<6)-1) != 0 {
			t.Fatalf("Slice left garbage in tail word: %x", w)
		}
	}
}

func TestAppendWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("width mismatch did not panic")
		}
	}()
	NewPatternSet(3).Append(Vector{0, 1})
}

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	if b.Any() {
		t.Fatal("fresh bitset not empty")
	}
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if b.Count() != 3 {
		t.Fatalf("Count = %d", b.Count())
	}
	if !b.Test(0) || !b.Test(64) || !b.Test(129) || b.Test(1) {
		t.Fatal("Test wrong")
	}
	b.Clear(64)
	if b.Test(64) || b.Count() != 2 {
		t.Fatal("Clear wrong")
	}
	got := b.Indices()
	if len(got) != 2 || got[0] != 0 || got[1] != 129 {
		t.Fatalf("Indices = %v", got)
	}
}

func TestBitsetClone(t *testing.T) {
	b := NewBitset(10)
	b.Set(3)
	c := b.Clone()
	c.Set(4)
	if b.Test(4) {
		t.Fatal("Clone aliases storage")
	}
	if !c.Test(3) {
		t.Fatal("Clone lost bits")
	}
}

func TestBitsetOrWord(t *testing.T) {
	b := NewBitset(128)
	b.OrWord(1, 0b101)
	if !b.Test(64) || !b.Test(66) || b.Test(65) {
		t.Fatal("OrWord placed bits wrongly")
	}
	if b.WordAt(1) != 0b101 {
		t.Fatalf("WordAt = %x", b.WordAt(1))
	}
}

func TestPopcountAgainstStdlib(t *testing.T) {
	if err := quick.Check(func(w uint64) bool {
		return popcount(w) == bits.OnesCount64(w)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTrailingZerosAgainstStdlib(t *testing.T) {
	if err := quick.Check(func(w uint64) bool {
		if w == 0 {
			return true
		}
		return trailingZeros(w) == bits.TrailingZeros64(w)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitsetForEachOrder(t *testing.T) {
	b := NewBitset(200)
	want := []int{3, 64, 65, 127, 128, 199}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestPatternSetGetOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Get did not panic")
		}
	}()
	RandomPatterns(2, 5, prng.New(1)).Get(5)
}
