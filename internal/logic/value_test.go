package logic

import "testing"

func TestV3Strings(t *testing.T) {
	cases := map[V3]string{Zero: "0", One: "1", X: "X"}
	for v, want := range cases {
		if got := v.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", uint8(v), got, want)
		}
	}
	if got := V3(9).String(); got != "V3(9)" {
		t.Errorf("invalid value String() = %q", got)
	}
}

func TestV3Not(t *testing.T) {
	if Zero.Not() != One || One.Not() != Zero || X.Not() != X {
		t.Fatal("three-valued complement wrong")
	}
}

func TestV3ZeroValueIsX(t *testing.T) {
	var v V3
	if v != X {
		t.Fatal("zero value of V3 must be X")
	}
}

func TestAnd3TruthTable(t *testing.T) {
	cases := []struct{ a, b, want V3 }{
		{Zero, Zero, Zero}, {Zero, One, Zero}, {One, Zero, Zero},
		{One, One, One},
		{Zero, X, Zero}, {X, Zero, Zero},
		{One, X, X}, {X, One, X}, {X, X, X},
	}
	for _, c := range cases {
		if got := And3(c.a, c.b); got != c.want {
			t.Errorf("And3(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestOr3TruthTable(t *testing.T) {
	cases := []struct{ a, b, want V3 }{
		{Zero, Zero, Zero}, {Zero, One, One}, {One, Zero, One},
		{One, One, One},
		{One, X, One}, {X, One, One},
		{Zero, X, X}, {X, Zero, X}, {X, X, X},
	}
	for _, c := range cases {
		if got := Or3(c.a, c.b); got != c.want {
			t.Errorf("Or3(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestXor3TruthTable(t *testing.T) {
	cases := []struct{ a, b, want V3 }{
		{Zero, Zero, Zero}, {Zero, One, One}, {One, Zero, One}, {One, One, Zero},
		{Zero, X, X}, {X, One, X}, {X, X, X},
	}
	for _, c := range cases {
		if got := Xor3(c.a, c.b); got != c.want {
			t.Errorf("Xor3(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestBitConversions(t *testing.T) {
	if FromBit(0) != Zero || FromBit(1) != One || FromBit(2) != One {
		t.Fatal("FromBit wrong")
	}
	if Zero.Bit() != 0 || One.Bit() != 1 {
		t.Fatal("Bit wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Bit on X did not panic")
		}
	}()
	X.Bit()
}

func TestCompose(t *testing.T) {
	cases := []struct {
		good, faulty V3
		want         V5
	}{
		{Zero, Zero, C0},
		{One, One, C1},
		{One, Zero, D},
		{Zero, One, DBar},
		{X, One, CX},
		{One, X, CX},
		{X, X, CX},
	}
	for _, c := range cases {
		if got := Compose(c.good, c.faulty); got != c.want {
			t.Errorf("Compose(%v,%v) = %v, want %v", c.good, c.faulty, got, c.want)
		}
	}
}

func TestV5Strings(t *testing.T) {
	cases := map[V5]string{C0: "0", C1: "1", CX: "X", D: "D", DBar: "D'"}
	for v, want := range cases {
		if got := v.String(); got != want {
			t.Errorf("V5 String() = %q, want %q", got, want)
		}
	}
	if got := V5(9).String(); got != "V5(9)" {
		t.Errorf("invalid V5 String() = %q", got)
	}
}

func TestIsFaultEffect(t *testing.T) {
	if !D.IsFaultEffect() || !DBar.IsFaultEffect() {
		t.Fatal("D/DBar must be fault effects")
	}
	if C0.IsFaultEffect() || C1.IsFaultEffect() || CX.IsFaultEffect() {
		t.Fatal("0/1/X must not be fault effects")
	}
}
