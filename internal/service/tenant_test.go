package service

import (
	"errors"
	"strings"
	"testing"

	"github.com/eda-go/adifo/internal/obs"
)

// TestSchedulerWeightedFairness drives the stride scheduler directly:
// a weight-2 tenant is dispatched twice as often as a weight-1 tenant
// while both have work queued, and ties break deterministically.
func TestSchedulerWeightedFairness(t *testing.T) {
	limits := map[string]TenantLimit{"a": {Weight: 2}, "b": {Weight: 1}}
	sc := newScheduler()
	for i := 0; i < 6; i++ {
		sc.enqueue(sc.tenantFor("a", limits), &job{id: "a", tenant: "a"})
	}
	for i := 0; i < 3; i++ {
		sc.enqueue(sc.tenantFor("b", limits), &job{id: "b", tenant: "b"})
	}
	var got []string
	for j := sc.pop(); j != nil; j = sc.pop() {
		got = append(got, j.id)
	}
	want := "a b a a b a a b a"
	if s := strings.Join(got, " "); s != want {
		t.Fatalf("dispatch order = %q, want %q", s, want)
	}
	if sc.queued != 0 {
		t.Fatalf("queued = %d after draining, want 0", sc.queued)
	}
}

// TestSchedulerIdleTenantNoBankedCredit: a tenant that idles while
// others run re-enters at the current virtual time — it cannot bank
// credit and then monopolize the pool.
func TestSchedulerIdleTenantNoBankedCredit(t *testing.T) {
	limits := map[string]TenantLimit{}
	sc := newScheduler()
	// b runs alone for a while, advancing the virtual clock.
	for i := 0; i < 5; i++ {
		sc.enqueue(sc.tenantFor("b", limits), &job{id: "b", tenant: "b"})
		if j := sc.pop(); j == nil {
			t.Fatal("pop returned nil")
		}
	}
	// a arrives late; it must alternate with b, not run 5 in a row.
	for i := 0; i < 2; i++ {
		sc.enqueue(sc.tenantFor("a", limits), &job{id: "a", tenant: "a"})
		sc.enqueue(sc.tenantFor("b", limits), &job{id: "b", tenant: "b"})
	}
	var got []string
	for j := sc.pop(); j != nil; j = sc.pop() {
		got = append(got, j.id)
	}
	// The newcomer enters at the scheduler's base — one stride behind
	// the tenant that just dispatched — so it catches up by at most two
	// back-to-back dispatches, never the five b consumed while a was
	// absent.
	if s := strings.Join(got, " "); s != "a a b b" {
		t.Fatalf("post-idle dispatch order = %q, want \"a a b b\"", s)
	}
}

// TestAdmissionControlGlobal: MaxQueuedJobs bounds the queue across
// all tenants; the rejection is ErrOverloaded and counted.
func TestAdmissionControlGlobal(t *testing.T) {
	s := New(Config{Logger: obs.Nop(), SimWorkers: 1, MaxConcurrentJobs: 1,
		MaxQueuedJobs: 2})
	defer s.Close()
	running, err := s.Submit(slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, running, StateRunning)
	spec := JobSpec{Circuit: "c17", Mode: "drop",
		Patterns: PatternSpec{Random: &RandomSpec{N: 64, Seed: 1}}}
	var queued []string
	for i := 0; i < 2; i++ {
		id, err := s.Submit(spec)
		if err != nil {
			t.Fatalf("submit %d within bound: %v", i, err)
		}
		queued = append(queued, id)
	}
	if _, err := s.Submit(spec); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("submit past bound = %v, want ErrOverloaded", err)
	}
	if got := s.Stats().JobsRejected; got != 1 {
		t.Errorf("JobsRejected = %d, want 1", got)
	}
	_, body := httpGet(t, s.Metrics().Handler(), "/")
	if !containsLine(string(body), `adifo_jobs_rejected_total{reason="overloaded"} 1`) {
		t.Errorf("missing overloaded rejection in exposition")
	}
	s.Cancel(running)
	for _, id := range queued {
		s.Cancel(id)
	}
}

// TestAdmissionControlTenantLimit: a tenant's own MaxQueued rejects
// only that tenant; others keep submitting.
func TestAdmissionControlTenantLimit(t *testing.T) {
	s := New(Config{Logger: obs.Nop(), SimWorkers: 1, MaxConcurrentJobs: 1,
		TenantLimits: map[string]TenantLimit{"bounded": {Weight: 1, MaxQueued: 1}}})
	defer s.Close()
	running, err := s.Submit(slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, running, StateRunning)
	spec := JobSpec{Circuit: "c17", Mode: "drop", Tenant: "bounded",
		Patterns: PatternSpec{Random: &RandomSpec{N: 64, Seed: 2}}}
	first, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("first bounded submit: %v", err)
	}
	if _, err := s.Submit(spec); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second bounded submit = %v, want ErrOverloaded", err)
	}
	free := spec
	free.Tenant = "unbounded"
	freeID, err := s.Submit(free)
	if err != nil {
		t.Fatalf("other tenant rejected alongside: %v", err)
	}
	_, body := httpGet(t, s.Metrics().Handler(), "/")
	if !containsLine(string(body), `adifo_jobs_rejected_total{reason="tenant_limit"} 1`) {
		t.Errorf("missing tenant_limit rejection in exposition")
	}
	if !containsLine(string(body), `adifo_tenant_queue_depth{tenant="bounded"} 1`) {
		t.Errorf("missing bounded tenant queue depth in exposition")
	}
	s.Cancel(running)
	s.Cancel(first)
	s.Cancel(freeID)
}

// TestDrainCountsDroppedQueuedJobs: Drain cancels still-queued jobs
// and counts each drop under reason="drain" — shutdown collateral is
// visible on dashboards, not silent.
func TestDrainCountsDroppedQueuedJobs(t *testing.T) {
	s := New(Config{Logger: obs.Nop(), SimWorkers: 1, MaxConcurrentJobs: 1})
	running, err := s.Submit(slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, running, StateRunning)
	spec := JobSpec{Circuit: "c17", Mode: "drop",
		Patterns: PatternSpec{Random: &RandomSpec{N: 64, Seed: 3}}}
	var queued []string
	for i := 0; i < 3; i++ {
		id, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, id)
	}
	s.Drain()
	for _, id := range queued {
		st, ok := s.Status(id)
		if !ok {
			t.Fatalf("queued job %s vanished in drain", id)
		}
		if st.State != StateCancelled {
			t.Errorf("queued job %s state = %s after drain, want cancelled", id, st.State)
		}
	}
	_, body := httpGet(t, s.Metrics().Handler(), "/")
	if !containsLine(string(body), `adifo_jobs_rejected_total{reason="drain"} 3`) {
		t.Errorf("missing drain drops in exposition:\n%s", body)
	}
}

// TestValidateTenancyBounds: oversized or control-character tenant
// fields are rejected at submit time.
func TestValidateTenancyBounds(t *testing.T) {
	s := New(Config{Logger: obs.Nop(), SimWorkers: 1})
	defer s.Close()
	base := JobSpec{Circuit: "c17", Mode: "drop",
		Patterns: PatternSpec{Random: &RandomSpec{N: 64, Seed: 1}}}
	cases := map[string]func(*JobSpec){
		"long tenant":      func(sp *JobSpec) { sp.Tenant = strings.Repeat("x", 65) },
		"long key":         func(sp *JobSpec) { sp.IdempotencyKey = strings.Repeat("x", 257) },
		"control tenant":   func(sp *JobSpec) { sp.Tenant = "a\x00b" },
		"control idem key": func(sp *JobSpec) { sp.IdempotencyKey = "a\nb" },
	}
	for name, mutate := range cases {
		sp := base
		mutate(&sp)
		if _, err := s.Submit(sp); err == nil {
			t.Errorf("%s: submit accepted, want validation error", name)
		}
	}
	ok := base
	ok.Tenant = strings.Repeat("t", 64)
	ok.IdempotencyKey = strings.Repeat("k", 256)
	id, err := s.Submit(ok)
	if err != nil {
		t.Fatalf("boundary-length fields rejected: %v", err)
	}
	waitTerminal(t, s, id)
}
