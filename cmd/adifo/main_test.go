package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"github.com/eda-go/adifo"
)

func TestCommands(t *testing.T) {
	cases := []struct{ cmd, circuit string }{
		{"stats", "c17"},
		{"faults", "c17"},
		{"adi", "lion"},
		{"order", "lion"},
	}
	for _, c := range cases {
		o := options{circuit: c.circuit, exhaustive: true, n: 100, seed: 1, order: "dynm", limit: 5}
		if err := run(c.cmd, o); err != nil {
			t.Fatalf("%s %s: %v", c.cmd, c.circuit, err)
		}
	}
}

// TestGradeInProcess drives the grade verb end to end against the
// in-process loopback server: submit, stream, result.
func TestGradeInProcess(t *testing.T) {
	o := options{circuit: "c17", mode: "nodrop", n: 128, seed: 1, limit: 3, quiet: true}
	if err := run("grade", o); err != nil {
		t.Fatalf("grade c17: %v", err)
	}
}

// TestGradeRemote drives the grade verb against one real HTTP server
// (the single -server path).
func TestGradeRemote(t *testing.T) {
	g := adifo.NewLocalGrader(adifo.GraderConfig{})
	defer g.Close()
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	o := options{circuit: "c17", mode: "nodrop", n: 128, seed: 1, limit: 2, quiet: true,
		servers: serverList{srv.URL}}
	if err := run("grade", o); err != nil {
		t.Fatalf("grade -server: %v", err)
	}
}

// TestGradeCluster drives the grade verb end to end across two real
// HTTP backends — the `adifo grade -server A -server B` path — and
// checks the sharded run against an in-process single-engine run.
func TestGradeCluster(t *testing.T) {
	mk := func() *httptest.Server {
		g := adifo.NewLocalGrader(adifo.GraderConfig{})
		srv := httptest.NewServer(g.Handler())
		t.Cleanup(func() {
			srv.Close()
			g.Close()
		})
		return srv
	}
	a, b := mk(), mk()
	o := options{circuit: "c17", mode: "drop", n: 256, seed: 3, limit: 2, quiet: true,
		servers: serverList{a.URL, b.URL}}
	if err := run("grade", o); err != nil {
		t.Fatalf("grade -server A -server B: %v", err)
	}
}

// TestGradeBenchFile checks that a .bench file path is shipped as
// inline netlist text.
func TestGradeBenchFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "toy.bench")
	src := "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	o := options{circuit: path, mode: "drop", exhaustive: true, quiet: true}
	if err := run("grade", o); err != nil {
		t.Fatalf("grade %s: %v", path, err)
	}
}

func TestOrderBadName(t *testing.T) {
	o := options{circuit: "lion", exhaustive: true, n: 100, seed: 1, order: "bogus"}
	if err := run("order", o); err == nil {
		t.Fatal("expected error for unknown order")
	}
}

func TestBadCircuit(t *testing.T) {
	o := options{circuit: "nope", n: 10, seed: 1, order: "dynm"}
	if err := run("stats", o); err != nil {
		// expected
		return
	}
	t.Fatal("expected error for unknown circuit")
}

func TestGradeBadMode(t *testing.T) {
	o := options{circuit: "c17", mode: "bogus", n: 10, seed: 1, quiet: true}
	if err := run("grade", o); err == nil {
		t.Fatal("expected error for unknown mode")
	}
}
