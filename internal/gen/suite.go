package gen

import "github.com/eda-go/adifo/internal/circuit"

// SuiteCircuit describes one member of the benchmark suite mirroring
// the paper's circuit list.
type SuiteCircuit struct {
	// Name matches the paper's row label (irs208 … irs13207).
	Name string
	// Inputs is the primary-input count reported in the paper's
	// Table 4 for this circuit.
	Inputs int
	// Gates is the synthetic gate budget, scaled to the benchmark's
	// traditional "line number" name.
	Gates int
	// Seed fixes the construction.
	Seed uint64
	// SkipIncr0 mirrors the paper's Table 5, which omits the incr0
	// column for the two largest circuits.
	SkipIncr0 bool
	// GuardFrac overrides the generator's guard-region probability
	// when non-zero. The two largest members use a light setting:
	// the paper's large benchmarks show narrow ADI spreads (ratio
	// 1.26-1.29), and dialing the random-resistant tail down both
	// matches that regime and keeps the irredundancy pass tractable.
	GuardFrac float64
}

// Config returns the generator configuration for the suite member.
func (s SuiteCircuit) Config() Config {
	return Config{Name: s.Name, Inputs: s.Inputs, Gates: s.Gates, Seed: s.Seed, GuardFrac: s.GuardFrac}
}

// Build generates the circuit.
func (s SuiteCircuit) Build() *circuit.Circuit { return Generate(s.Config()) }

// PaperSuite returns the fourteen-circuit suite standing in for the
// paper's irredundant ISCAS-89 combinational cores. Input counts copy
// the paper's Table 4; gate budgets scale with the original
// benchmark's name. Seeds are arbitrary but frozen: changing one
// invalidates EXPERIMENTS.md.
func PaperSuite() []SuiteCircuit {
	return []SuiteCircuit{
		{Name: "irs208", Inputs: 19, Gates: 104, Seed: 12208},
		{Name: "irs298", Inputs: 17, Gates: 136, Seed: 2298},
		{Name: "irs344", Inputs: 24, Gates: 164, Seed: 2344},
		{Name: "irs382", Inputs: 24, Gates: 182, Seed: 2382},
		{Name: "irs400", Inputs: 24, Gates: 192, Seed: 2400},
		{Name: "irs420", Inputs: 35, Gates: 202, Seed: 2420},
		{Name: "irs510", Inputs: 25, Gates: 236, Seed: 2510},
		{Name: "irs526", Inputs: 24, Gates: 248, Seed: 2526},
		{Name: "irs641", Inputs: 54, Gates: 294, Seed: 12641},
		{Name: "irs820", Inputs: 23, Gates: 374, Seed: 2820},
		{Name: "irs953", Inputs: 45, Gates: 440, Seed: 2953},
		{Name: "irs1196", Inputs: 32, Gates: 546, Seed: 3196},
		{Name: "irs5378", Inputs: 214, Gates: 2400, Seed: 7378, SkipIncr0: true, GuardFrac: 0.05},
		{Name: "irs13207", Inputs: 699, Gates: 5600, Seed: 29207, SkipIncr0: true, GuardFrac: 0.05},
	}
}

// SmallSuite returns the first, middle-sized members only — enough to
// exercise every experiment path in seconds. Integration tests and
// the examples use it.
func SmallSuite() []SuiteCircuit {
	full := PaperSuite()
	return []SuiteCircuit{full[0], full[1], full[5]}
}

// SuiteByName returns the named suite member.
func SuiteByName(name string) (SuiteCircuit, bool) {
	for _, s := range PaperSuite() {
		if s.Name == name {
			return s, true
		}
	}
	return SuiteCircuit{}, false
}
