package fsim

import (
	"github.com/eda-go/adifo/internal/circuit"
	"github.com/eda-go/adifo/internal/fault"
)

// kern is the width-generic PPSFP cone engine: it re-simulates
// single-fault fanout cones against one block of good values, where a
// block carries 64·Lanes() patterns (64 for W1, 256 for W4, 512 for
// W8). Every lane is an independent 64-pattern slice, so the detection
// word it computes for a given lane is identical at every width — the
// wide instantiations only amortize the per-gate queue and mark
// traffic over more patterns.
//
// All storage is arena-style and reused across faults and blocks:
// epoch-stamped value/queue marks make the per-fault reset O(1), and a
// kern performs zero allocations in the steady state (level buckets
// stop growing once the deepest cones have been walked once). Not safe
// for concurrent use; the parallel runner gives each worker its own.
type kern[B circuit.Block[B]] struct {
	cc   *circuit.Compiled
	good []B // good-machine values; shared read-only or owned (simGood)

	fval  []B      // faulty value of touched gates
	vmark []uint32 // epoch stamp: fval[g] valid iff vmark[g] == epoch
	qmark []uint32 // epoch stamp: gate already queued this fault
	epoch uint32

	buckets   [][]int32 // per-level pending gates
	usedLevel []int32   // levels with non-empty buckets this fault
	in        []B       // gathered fanin scratch, sized to the widest gate
}

// newKern returns a kernel over cc. With ownGood the kernel allocates
// its own good-value array and fills it via simGood; without, the
// caller must point good at a shared arena before propagate.
func newKern[B circuit.Block[B]](cc *circuit.Compiled, ownGood bool) *kern[B] {
	n := cc.NumGates()
	k := &kern[B]{
		cc:      cc,
		fval:    make([]B, n),
		vmark:   make([]uint32, n),
		qmark:   make([]uint32, n),
		buckets: make([][]int32, cc.MaxLevel+1),
		in:      make([]B, cc.MaxFanin),
	}
	if ownGood {
		k.good = make([]B, n)
	}
	return k
}

// simGood evaluates the good machine for the PI words pi into the
// kernel's own good array.
func (k *kern[B]) simGood(pi []B) {
	simGoodInto(k.cc, pi, k.good, k.in)
}

// simGoodInto evaluates the full circuit in levelized compiled order,
// writing the per-gate good values into out. scratch must hold at
// least cc.MaxFanin words.
func simGoodInto[B circuit.Block[B]](cc *circuit.Compiled, pi, out, scratch []B) {
	for i, piGate := range cc.Inputs {
		out[piGate] = pi[i]
	}
	// Level 0 is exactly the PIs, whose values were just loaded.
	for _, gi := range cc.Order[cc.LevelStart[1]:] {
		lo, hi := cc.FaninStart[gi], cc.FaninStart[gi+1]
		in := scratch[:hi-lo]
		for p, f := range cc.Fanin[lo:hi] {
			in[p] = out[f]
		}
		out[gi] = in[0].EvalPins(cc.Type[gi], in)
	}
}

func (k *kern[B]) enqueueFanout(g int32) {
	cc := k.cc
	for _, fo := range cc.Fanout[cc.FanoutStart[g]:cc.FanoutStart[g+1]] {
		if k.qmark[fo] == k.epoch {
			continue
		}
		k.qmark[fo] = k.epoch
		lvl := cc.Level[fo]
		if len(k.buckets[lvl]) == 0 {
			k.usedLevel = append(k.usedLevel, lvl)
		}
		k.buckets[lvl] = append(k.buckets[lvl], fo)
	}
}

// propagate injects fault f against the current good values and
// returns the detection block: bit i of lane l set iff pattern 64l+i
// of the block detects f at some observed output. The caller is
// responsible for masking each lane with its block's valid-pattern
// mask.
func (k *kern[B]) propagate(f fault.Fault) B {
	cc := k.cc
	k.epoch++
	for _, lvl := range k.usedLevel {
		k.buckets[lvl] = k.buckets[lvl][:0]
	}
	k.usedLevel = k.usedLevel[:0]

	var det, stuck B
	if f.SA == 1 {
		stuck = stuck.Not()
	}
	site := int32(f.Gate)

	var nv B
	if f.Pin == fault.StemPin {
		nv = stuck
	} else {
		// Branch fault: only the site gate sees the stuck value on pin
		// f.Pin; the driver's other fanout branches are healthy.
		lo, hi := cc.FaninStart[site], cc.FaninStart[site+1]
		in := k.in[:hi-lo]
		for p, fi := range cc.Fanin[lo:hi] {
			in[p] = k.good[fi]
		}
		in[f.Pin] = stuck
		nv = in[0].EvalPins(cc.Type[site], in)
	}
	diff := nv.Xor(k.good[site])
	if diff.IsZero() {
		return det
	}
	k.fval[site] = nv
	k.vmark[site] = k.epoch
	if cc.Output[site] {
		det = det.Or(diff)
	}
	k.enqueueFanout(site)
	// The fault site must not be re-evaluated from its fanins.
	k.qmark[site] = k.epoch

	// Level-ordered single pass: every queued gate is evaluated once,
	// after all of its (possibly faulty) fanins are final. Fanout gates
	// sit at strictly higher levels, so the snapshot of a level's
	// bucket is complete by the time the walk reaches it.
	for lvl := int(cc.Level[site]) + 1; lvl <= cc.MaxLevel; lvl++ {
		bucket := k.buckets[lvl]
		if len(bucket) == 0 {
			continue
		}
		for _, gi := range bucket {
			lo, hi := cc.FaninStart[gi], cc.FaninStart[gi+1]
			in := k.in[:hi-lo]
			for p, fi := range cc.Fanin[lo:hi] {
				if k.vmark[fi] == k.epoch {
					in[p] = k.fval[fi]
				} else {
					in[p] = k.good[fi]
				}
			}
			nv := in[0].EvalPins(cc.Type[gi], in)
			diff := nv.Xor(k.good[gi])
			if diff.IsZero() {
				// Converged back to the good value: prune.
				continue
			}
			k.fval[gi] = nv
			k.vmark[gi] = k.epoch
			if cc.Output[gi] {
				det = det.Or(diff)
			}
			k.enqueueFanout(gi)
		}
	}
	return det
}
