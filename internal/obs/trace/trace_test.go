package trace

import (
	"context"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Flags: FlagSampled}
	h := sc.Traceparent()
	if len(h) != traceparentLen {
		t.Fatalf("header %q has %d bytes, want %d", h, len(h), traceparentLen)
	}
	got, err := ParseTraceparent(h)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", h, err)
	}
	if got != sc {
		t.Fatalf("round trip: got %+v, want %+v", got, sc)
	}
}

func TestParseTraceparentSpec(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	sc, err := ParseTraceparent(valid)
	if err != nil {
		t.Fatalf("spec example rejected: %v", err)
	}
	if sc.TraceID.String() != "4bf92f3577b34da6a3ce929d0e0e4736" ||
		sc.SpanID.String() != "00f067aa0ba902b7" || !sc.Sampled() {
		t.Fatalf("spec example mis-decoded: %+v", sc)
	}

	bad := map[string]string{
		"empty":             "",
		"truncated":         valid[:40],
		"uppercase hex":     strings.ToUpper(valid),
		"version ff":        "ff" + valid[2:],
		"bad version hex":   "zz" + valid[2:],
		"zero trace id":     "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"zero parent id":    "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
		"v00 trailing":      valid + "-extra",
		"misplaced dashes":  strings.Replace(valid, "-", "_", 1),
		"bad flags":         valid[:53] + "0g",
		"short trace id":    "00-4bf92f3577b34da6a3ce929d0e0e473-000f067aa0ba902b7-01",
		"future bad suffix": "01" + valid[2:] + "x",
	}
	for name, h := range bad {
		if _, err := ParseTraceparent(h); err == nil {
			t.Errorf("%s: %q accepted, want error", name, h)
		}
	}

	// Forward compatibility: a future version with a dash-separated
	// suffix parses its first four fields.
	future := "01" + valid[2:] + "-what-ever"
	if _, err := ParseTraceparent(future); err != nil {
		t.Errorf("future version rejected: %v", err)
	}
}

func TestStartParentage(t *testing.T) {
	rec := NewRecorder(RecorderOptions{})
	ctx := WithRecorder(context.Background(), rec)

	rctx, root := Start(ctx, "root", Root())
	if !root.Context().TraceID.IsValid() || !root.Context().SpanID.IsValid() {
		t.Fatal("root span has invalid ids")
	}
	_, child := Start(rctx, "child")
	if child.Context().TraceID != root.Context().TraceID {
		t.Error("child did not inherit the trace id")
	}
	if child.parent != root.Context().SpanID {
		t.Error("child's parent is not the root span")
	}
	child.End()
	root.End()

	td, ok := rec.Trace(root.Context().TraceID.String())
	if !ok {
		t.Fatal("trace not retained after root end")
	}
	if len(td.Spans) != 2 {
		t.Fatalf("retained %d spans, want 2", len(td.Spans))
	}
}

func TestStartJoinsRemoteParent(t *testing.T) {
	remote := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Flags: FlagSampled}
	ctx := ContextWithRemote(context.Background(), remote)
	_, sp := Start(ctx, "local-root", Root())
	if sp.Context().TraceID != remote.TraceID {
		t.Error("span did not join the remote trace")
	}
	if sp.parent != remote.SpanID {
		t.Error("span's parent is not the remote span")
	}
	if sp.Context().SpanID == remote.SpanID {
		t.Error("span reused the remote span id")
	}
}

func TestNilSpanIsSafe(t *testing.T) {
	var s *Span
	s.SetAttr("k", "v")
	s.SetAttrInt("n", 1)
	s.AddEvent("e")
	s.SetStatus(StatusError, "boom")
	s.End()
	if s.Context().IsValid() {
		t.Error("nil span has a valid context")
	}
}

func TestEndIdempotentAndPostEndMutationIgnored(t *testing.T) {
	rec := NewRecorder(RecorderOptions{})
	ctx := WithRecorder(context.Background(), rec)
	_, sp := Start(ctx, "once", Root())
	sp.End()
	sp.SetAttr("late", "ignored")
	sp.End()
	st := rec.Stats()
	if st.SpansFinished != 1 {
		t.Fatalf("SpansFinished = %d, want 1 after double End", st.SpansFinished)
	}
	td, _ := rec.Trace(sp.Context().TraceID.String())
	if got := td.Spans[0].attr("late"); got != "" {
		t.Errorf("post-End attr recorded: %q", got)
	}
}

func TestTraceparentHelperRequiresSpanID(t *testing.T) {
	// A pre-minted trace id (no span) must not be injected as a
	// traceparent: zero parent-id is illegal on the wire.
	ctx := ContextWithRemote(context.Background(), SpanContext{TraceID: NewTraceID()})
	if h := Traceparent(ctx); h != "" {
		t.Errorf("Traceparent emitted %q for a span-less context", h)
	}
	ctx, sp := Start(ctx, "x")
	if h := Traceparent(ctx); h == "" {
		t.Error("Traceparent empty for a context with a live span")
	}
	sp.End()
}
