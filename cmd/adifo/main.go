// Command adifo is the Swiss-army tool of the library: circuit
// statistics, fault listing, ADI computation, fault-order inspection,
// fault grading and test generation (in-process or against an adifod
// server) on any circuit. It is built entirely on the public adifo
// package — the same surface an external Go program uses.
//
// Usage:
//
//	adifo stats  -circuit irs420
//	adifo faults -circuit c17
//	adifo adi    -circuit lion -exhaustive
//	adifo order  -circuit lion -exhaustive -order dynm
//	adifo order  -server http://localhost:8417 -circuit c17 -order dynm
//	adifo gen    -circuit c17 -order dynm -n 256
//	adifo gen    -server http://localhost:8417 -circuit my.bench -order 0dynm
//	adifo grade  -circuit c17 -mode drop -n 256
//	adifo grade  -server http://localhost:8417 -circuit my.bench
//	adifo grade  -server http://hostA:8417 -server http://hostB:8417 -circuit irs1238
//
// Repeating -server grades on a cluster: the fault universe is
// sharded across the servers, each grades its shard against the full
// pattern set, and the merged result is bit-identical to a single-node
// run. Only grade jobs shard: gen and order accept a single -server
// (ATPG and the dynamic orders are sequential over shared state).
//
// With -server, gen and order use exactly the requested vector set
// (-n random vectors or -exhaustive) as U; without it, order keeps
// its historical behavior of sizing U at the paper's target coverage.
//
// An interrupt (Ctrl-C) during grade or gen cancels the job — on the
// server (or every cluster backend) when -server is set — and the
// stream terminates with the cancelled status. A job that ends
// cancelled exits non-zero with a distinct message from one that
// failed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"github.com/eda-go/adifo"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: adifo <command> [flags]

commands:
  stats    structural statistics of a circuit
  faults   list the collapsed stuck-at fault set
  adi      compute accidental detection indices
  order    print a fault order (remotely with -server)
  gen      generate an ADI-ordered test set (remotely with -server)
  grade    fault-grade a circuit via the grading service

common flags:
  -circuit ref   embedded name (c17, s27, lion), suite name, or .bench path
  -exhaustive    use all 2^inputs vectors for U (inputs <= 20)
  -n, -seed      random vector count / seed for U
  -order k       fault order: orig, incr0, decr, 0decr, dynm, 0dynm

gen flags:
  -server url    adifod server to generate on (default: in-process)
  -fillseed s    seed for the random fill of unspecified inputs

grade flags:
  -server url    adifod server to grade on (default: in-process);
                 repeat to fault-shard the job across a cluster
  -shards-per-backend k
                 cluster over-partitioning factor: k fault shards per
                 healthy backend feed the work queue (default 4)
  -mode m        nodrop, drop or ndetect
  -ndet k        drop threshold for ndetect mode
  -block-width w simulation block width in patterns: 64, 256 or 512
                 (default 0 = the widest block the job justifies)
  -quiet         suppress per-block progress lines
`)
	os.Exit(2)
}

// options collects every flag; each verb reads the subset it needs.
type options struct {
	circuit    string
	exhaustive bool
	n          int
	seed       uint64
	order      string
	limit      int

	servers    serverList
	shardsK    int
	mode       string
	ndet       int
	blockWidth int
	fillseed   uint64
	quiet      bool
}

// serverList is the repeatable -server flag: one URL grades remotely,
// several grade on a fault-sharded cluster.
type serverList []string

func (s *serverList) String() string { return strings.Join(*s, ",") }

func (s *serverList) Set(v string) error {
	if v == "" {
		return errors.New("empty server URL")
	}
	*s = append(*s, v)
	return nil
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var o options
	fs.StringVar(&o.circuit, "circuit", "c17", "circuit reference")
	fs.BoolVar(&o.exhaustive, "exhaustive", false, "use all 2^inputs vectors")
	fs.IntVar(&o.n, "n", adifo.DefaultUBudget, "random vector budget for U")
	fs.Uint64Var(&o.seed, "seed", adifo.DefaultUSeed, "random vector seed")
	fs.StringVar(&o.order, "order", "dynm", "fault order to print")
	fs.IntVar(&o.limit, "limit", 0, "print at most this many rows (0 = all)")
	fs.Var(&o.servers, "server", "adifod server URL, repeatable for a cluster (none = grade in-process)")
	fs.IntVar(&o.shardsK, "shards-per-backend", 0, "cluster fault shards per healthy backend (0 = default)")
	fs.StringVar(&o.mode, "mode", "nodrop", "grading mode: nodrop, drop or ndetect")
	fs.IntVar(&o.ndet, "ndet", 0, "drop threshold for ndetect mode")
	fs.IntVar(&o.blockWidth, "block-width", 0, "simulation block width in patterns: 64, 256 or 512 (0 = auto)")
	fs.Uint64Var(&o.fillseed, "fillseed", adifo.DefaultFillSeed, "seed for the ATPG's random fill of unspecified inputs")
	fs.BoolVar(&o.quiet, "quiet", false, "suppress per-block progress lines")
	fs.Parse(os.Args[2:])

	if err := run(cmd, o); err != nil {
		fmt.Fprintln(os.Stderr, "adifo:", err)
		os.Exit(1)
	}
}

func run(cmd string, o options) error {
	switch cmd {
	case "grade":
		return grade(o, os.Stdout)
	case "gen":
		return gen(o, os.Stdout)
	case "order":
		if len(o.servers) > 0 {
			return orderRemote(o, os.Stdout)
		}
	}
	c, err := adifo.LoadCircuit(o.circuit)
	if err != nil {
		return err
	}
	ctx := context.Background()
	switch cmd {
	case "stats":
		st := c.ComputeStats()
		fmt.Printf("circuit   %s\n", c.Name)
		fmt.Printf("inputs    %d\n", st.Inputs)
		fmt.Printf("outputs   %d\n", st.Outputs)
		fmt.Printf("gates     %d\n", st.Gates)
		fmt.Printf("levels    %d\n", st.Levels)
		fmt.Printf("lines     %d\n", st.Lines)
		fmt.Printf("max fanin %d, max fanout %d, fanout stems %d\n",
			st.MaxFanin, st.MaxFanout, st.FanoutStem)
		fl := adifo.Faults(c)
		fmt.Printf("faults    %d collapsed (%d uncollapsed)\n", fl.Len(), adifo.AllFaults(c).Len())
		return nil

	case "faults":
		fl := adifo.Faults(c)
		for i, f := range fl.Faults {
			if o.limit > 0 && i >= o.limit {
				fmt.Printf("... (%d more)\n", fl.Len()-i)
				break
			}
			fmt.Printf("f%-4d %s\n", i, f.Name(c))
		}
		return nil

	case "adi", "order":
		fl := adifo.Faults(c)
		u, err := vectorSet(ctx, c, fl, o.exhaustive, o.n, o.seed)
		if err != nil {
			return err
		}
		ix, err := adifo.ComputeADI(ctx, fl, u)
		if err != nil {
			return err
		}
		mn, mx := ix.MinMax()
		fmt.Printf("U %d vectors; |F_U| = %d of %d faults; ADImin=%d ADImax=%d ratio=%.2f\n",
			u.Len(), ix.NumDetected(), fl.Len(), mn, mx, ix.Ratio())
		if cmd == "adi" {
			for i, f := range fl.Faults {
				if o.limit > 0 && i >= o.limit {
					fmt.Printf("... (%d more)\n", fl.Len()-i)
					break
				}
				fmt.Printf("f%-4d ADI=%-5d |D(f)|=%-5d %s\n", i, ix.ADI[i], ix.Det[i].Count(), f.Name(c))
			}
			return nil
		}
		kind, err := adifo.ParseOrder(o.order)
		if err != nil {
			return err
		}
		ord := ix.Order(kind)
		fmt.Printf("order %v:\n", kind)
		for pos, fi := range ord {
			if o.limit > 0 && pos >= o.limit {
				fmt.Printf("... (%d more)\n", len(ord)-pos)
				break
			}
			fmt.Printf("%4d: f%-4d ADI=%-5d %s\n", pos, fi, ix.ADI[fi], fl.Faults[fi].Name(c))
		}
		return nil
	}
	usage()
	return nil
}

// grade submits the circuit to a grading engine — a running adifod
// when -server is set, otherwise the in-process engine behind the same
// Grader interface — streams per-block progress and prints the result
// summary. An interrupt cancels the job.
func grade(o options, out *os.File) error {
	ctx := context.Background()

	var g adifo.Grader
	var where string
	switch len(o.servers) {
	case 0:
		g = adifo.NewLocalGrader(adifo.GraderConfig{})
		where = "in-process engine"
	case 1:
		g = adifo.NewRemoteGrader(o.servers[0], nil)
		where = o.servers[0]
	default:
		cg, err := adifo.NewClusterGrader(o.servers, adifo.ClusterOptions{
			ShardsPerBackend: o.shardsK,
		})
		if err != nil {
			return err
		}
		g = cg
		where = fmt.Sprintf("cluster of %d (%s)", len(o.servers), o.servers.String())
	}
	defer g.Close()

	spec, err := gradeSpec(o)
	if err != nil {
		return err
	}
	id, err := g.Submit(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "job %s submitted to %s\n", id, where)
	defer cancelOnInterrupt(g, id, out)()

	st, err := g.Stream(ctx, id, func(ev adifo.ProgressEvent) {
		if !o.quiet {
			fmt.Fprintf(out, "block %d/%d: %d vectors, %d detected, %d active\n",
				ev.Block+1, ev.Blocks, ev.VectorsUsed, ev.Detected, ev.Active)
		}
	})
	if err != nil {
		return err
	}
	if err := terminalError(id, st); err != nil {
		return err
	}
	res, err := g.Result(ctx, id)
	if err != nil {
		return err
	}

	if cg, ok := g.(*adifo.ClusterGrader); ok {
		if shards, err := cg.Shards(id); err == nil {
			for _, sh := range shards {
				fmt.Fprintf(out, "shard %d/%d on %s as %s (retries %d)\n",
					sh.Index, sh.Count, sh.Backend, sh.RemoteID, sh.Retries)
			}
		}
	}
	fmt.Fprintf(out, "circuit     %s (fingerprint %s)\n", res.Circuit, res.Fingerprint)
	fmt.Fprintf(out, "mode        %s\n", res.Mode)
	printTiming(out, res.Timing)
	printTrace(out, res.TraceID)
	fmt.Fprintf(out, "vectors     %d (%d simulated)\n", res.Vectors, res.VectorsUsed)
	fmt.Fprintf(out, "faults      %d, detected %d, coverage %.2f%%\n",
		res.Faults, res.Detected, 100*res.Coverage)
	for i, fr := range res.PerFault {
		if o.limit > 0 && i >= o.limit {
			fmt.Fprintf(out, "... (%d more)\n", len(res.PerFault)-i)
			break
		}
		fmt.Fprintf(out, "f%-4d det=%-5d first=%-5d %s\n", fr.F, fr.DetCount, fr.FirstDet, fr.Name)
	}
	return nil
}

// baseSpec builds the circuit and pattern parts of a job spec, shared
// by every remote verb. Precedence matches adifo.LoadCircuit: an
// embedded or suite name wins over a same-named local file, so
// `-circuit c17` always means the embedded benchmark. A non-name
// reference is read as a .bench file and shipped as inline netlist
// text (the server never touches the client's filesystem); anything
// else is passed through for the server to reject.
func baseSpec(o options) adifo.JobSpec {
	var spec adifo.JobSpec
	if data, err := os.ReadFile(o.circuit); err == nil && !adifo.IsNamedCircuit(o.circuit) {
		spec.Bench = string(data)
		spec.Name = o.circuit
	} else {
		spec.Circuit = o.circuit
	}
	if o.exhaustive {
		spec.Patterns.Exhaustive = true
	} else {
		spec.Patterns.Random = &adifo.RandomSpec{N: o.n, Seed: o.seed}
	}
	return spec
}

// gradeSpec builds a grade job spec.
func gradeSpec(o options) (adifo.JobSpec, error) {
	spec := baseSpec(o)
	spec.Mode = o.mode
	spec.N = o.ndet
	spec.BlockWidth = o.blockWidth
	return spec, nil
}

// canceller is the slice of a job front end the interrupt watcher
// needs.
type canceller interface {
	Cancel(ctx context.Context, id string) (adifo.JobStatus, error)
}

// cancelOnInterrupt installs a Ctrl-C handler that cancels job id on g
// rather than abandoning it; the progress stream then terminates with
// the cancelled status. The returned stop function uninstalls it.
func cancelOnInterrupt(g canceller, id string, out *os.File) func() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	done := make(chan struct{})
	go func() {
		select {
		case <-sig:
			// Restore default handling so a second Ctrl-C kills the
			// process even if the cancel request hangs.
			signal.Stop(sig)
			fmt.Fprintf(out, "interrupt: cancelling job %s\n", id)
			if _, err := g.Cancel(context.Background(), id); err != nil &&
				!errors.Is(err, adifo.ErrJobFinished) {
				fmt.Fprintf(out, "cancel failed: %v\n", err)
			}
		case <-done:
		}
	}()
	return func() {
		signal.Stop(sig)
		close(done)
	}
}

// terminalError maps a job's terminal status to the verb's outcome: a
// done job is success; a cancelled job and a failed job are distinct
// non-zero failures. The distinction matters to callers and scripts —
// a cancelled run was asked to stop, a failed run crashed — so the two
// must never collapse into one message.
func terminalError(id string, st adifo.JobStatus) error {
	switch st.State {
	case adifo.JobDone:
		return nil
	case adifo.JobCancelled:
		return fmt.Errorf("job %s was cancelled before completion", id)
	case adifo.JobFailed:
		return fmt.Errorf("job %s failed: %s", id, st.Error)
	}
	return fmt.Errorf("job %s ended in unexpected state %q", id, st.State)
}

// gen generates an ADI-ordered test set: in-process through the public
// library by default, or as a remote atpg job when -server is set —
// the two paths produce bit-identical test sets for equal inputs.
func gen(o options, out *os.File) error {
	kind, err := adifo.ParseOrder(o.order)
	if err != nil {
		return err
	}
	if len(o.servers) > 1 {
		return errors.New("gen accepts a single -server: ATPG jobs are sequential over shared drop state and cannot be fault-sharded across a cluster")
	}
	if len(o.servers) == 1 {
		return genRemote(o, kind, out)
	}

	ctx := context.Background()
	c, err := adifo.LoadCircuit(o.circuit)
	if err != nil {
		return err
	}
	fl := adifo.Faults(c)
	u := rawVectorSet(c, o)
	ix, err := adifo.ComputeADI(ctx, fl, u)
	if err != nil {
		return err
	}
	res, err := adifo.GenerateTests(ctx, fl, ix.Order(kind), adifo.WithFillSeed(o.fillseed))
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "circuit     %s\n", c.Name)
	fmt.Fprintf(out, "order       %v, U %d vectors\n", kind, u.Len())
	printGenSummary(out, o.limit, len(res.Tests), res.Detected(), fl.Len(), res.Coverage(),
		res.AVE(), res.AtpgCalls, res.Backtracks, func(i int) (string, int) {
			return vectorString(res.Tests[i]), res.TargetOf[i]
		})
	return nil
}

// genRemote runs the gen verb against one adifod server.
func genRemote(o options, kind adifo.OrderKind, out *os.File) error {
	ctx := context.Background()
	g := adifo.NewRemoteGenerator(o.servers[0], nil)
	defer g.Close()

	spec := baseSpec(o)
	spec.Order = &adifo.OrderSpec{Kind: kind.String()}
	spec.Gen = &adifo.GenSpec{FillSeed: o.fillseed}
	id, err := g.Submit(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "job %s submitted to %s\n", id, o.servers[0])
	defer cancelOnInterrupt(g, id, out)()

	st, err := g.Stream(ctx, id, func(ev adifo.ProgressEvent) {
		if o.quiet {
			return
		}
		if ev.Targets > 0 {
			fmt.Fprintf(out, "target %d/%d: %d tests, %d detected, %d active\n",
				ev.Target, ev.Targets, ev.Tests, ev.Detected, ev.Active)
		} else {
			fmt.Fprintf(out, "block %d/%d: %d vectors, %d detected\n",
				ev.Block+1, ev.Blocks, ev.VectorsUsed, ev.Detected)
		}
	})
	if err != nil {
		return err
	}
	if err := terminalError(id, st); err != nil {
		return err
	}
	res, err := g.Result(ctx, id)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "circuit     %s (fingerprint %s)\n", res.Circuit, res.Fingerprint)
	fmt.Fprintf(out, "order       %s, U %d vectors\n", res.Order, res.Vectors)
	printTiming(out, res.Timing)
	printTrace(out, res.TraceID)
	printGenSummary(out, o.limit, len(res.Tests), res.Detected, res.Faults, res.Coverage,
		res.AVE, res.AtpgCalls, res.Backtracks, func(i int) (string, int) {
			return res.Tests[i], res.TargetOf[i]
		})
	return nil
}

// printGenSummary renders a generation outcome — local or remote, the
// same layout — with at most limit test rows (0 = all).
func printGenSummary(out *os.File, limit, tests, detected, faults int, coverage, ave float64,
	atpgCalls, backtracks int, test func(i int) (string, int)) {
	fmt.Fprintf(out, "tests       %d, detected %d/%d (%.2f%%), AVE %.2f\n",
		tests, detected, faults, 100*coverage, ave)
	fmt.Fprintf(out, "effort      %d ATPG calls, %d backtracks\n", atpgCalls, backtracks)
	for i := 0; i < tests; i++ {
		if limit > 0 && i >= limit {
			fmt.Fprintf(out, "... (%d more)\n", tests-i)
			break
		}
		v, target := test(i)
		fmt.Fprintf(out, "t%-4d %s (for f%d)\n", i, v, target)
	}
}

// printTiming renders the server-side wall-clock record of a remote
// job: queue wait, run time, and the per-phase breakdown in pipeline
// order. Old servers send no timing; print nothing rather than zeros.
func printTiming(out *os.File, t *adifo.JobTiming) {
	if t == nil {
		return
	}
	fmt.Fprintf(out, "timing      queue %.3fs, run %.3fs\n", t.QueueWaitSeconds, t.RunSeconds)
	if len(t.Phases) == 0 {
		return
	}
	var parts []string
	for _, name := range []string{
		adifo.PhaseRegistryBuild, adifo.PhaseSimulate,
		adifo.PhaseOrder, adifo.PhaseGenerate, adifo.PhaseMerge,
	} {
		if v, ok := t.Phases[name]; ok {
			parts = append(parts, fmt.Sprintf("%s %.3fs", name, v))
		}
	}
	fmt.Fprintf(out, "phases      %s\n", strings.Join(parts, ", "))
}

// printTrace prints the job's distributed-trace id, the key into the
// server's /debug/traces flight recorder (and into log lines, which
// carry it as trace_id). Old servers send none; print nothing.
func printTrace(out *os.File, traceID string) {
	if traceID == "" {
		return
	}
	fmt.Fprintf(out, "trace       %s\n", traceID)
}

// vectorString renders a test vector as a bit string, matching the
// wire encoding of AtpgResult.Tests.
func vectorString(v adifo.Vector) string {
	b := make([]byte, len(v))
	for i, bit := range v {
		if bit != 0 {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

// rawVectorSet builds the vector set U without coverage sizing — the
// set a remote job would use for the same flags, keeping the local and
// remote gen paths bit-identical.
func rawVectorSet(c *adifo.Circuit, o options) *adifo.PatternSet {
	if o.exhaustive {
		return adifo.ExhaustivePatterns(c.NumInputs())
	}
	return adifo.RandomPatterns(c.NumInputs(), o.n, o.seed)
}

// orderRemote runs the order verb as a remote adi_order job. Unlike
// the in-process path it uses the raw requested vector set as U (no
// coverage sizing), exactly like gen.
func orderRemote(o options, out *os.File) error {
	kind, err := adifo.ParseOrder(o.order)
	if err != nil {
		return err
	}
	if len(o.servers) > 1 {
		return errors.New("order accepts a single -server: the dynamic orders are sequential over shared ndet state and cannot be fault-sharded across a cluster")
	}
	ctx := context.Background()
	or := adifo.NewRemoteOrderer(o.servers[0], nil)
	defer or.Close()

	spec := baseSpec(o)
	spec.Order = &adifo.OrderSpec{Kind: kind.String()}
	id, err := or.Submit(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "job %s submitted to %s\n", id, o.servers[0])
	defer cancelOnInterrupt(or, id, out)()

	st, err := or.Stream(ctx, id, func(ev adifo.ProgressEvent) {
		if !o.quiet {
			fmt.Fprintf(out, "block %d/%d: %d vectors, %d detected\n",
				ev.Block+1, ev.Blocks, ev.VectorsUsed, ev.Detected)
		}
	})
	if err != nil {
		return err
	}
	if err := terminalError(id, st); err != nil {
		return err
	}
	res, err := or.Result(ctx, id)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "U %d vectors; |F_U| = %d of %d faults; ADImin=%d ADImax=%d ratio=%.2f\n",
		res.Vectors, res.NumDetected, res.Faults, res.ADIMin, res.ADIMax, res.Ratio)
	printTiming(out, res.Timing)
	printTrace(out, res.TraceID)
	fmt.Fprintf(out, "order %s:\n", res.Order)
	for pos, fi := range res.Perm {
		if o.limit > 0 && pos >= o.limit {
			fmt.Fprintf(out, "... (%d more)\n", len(res.Perm)-pos)
			break
		}
		// The server is trusted but not blindly: a malformed result
		// (perm index beyond the ADI or name arrays) degrades to an
		// error, not a panic.
		if fi < 0 || fi >= len(res.ADI) {
			return fmt.Errorf("malformed order result: perm entry f%d outside ADI array of %d", fi, len(res.ADI))
		}
		name := ""
		if fi < len(res.Names) {
			name = res.Names[fi]
		}
		fmt.Fprintf(out, "%4d: f%-4d ADI=%-5d %s\n", pos, fi, res.ADI[fi], name)
	}
	return nil
}

// vectorSet builds the vector set U for the adi and order verbs: the
// exhaustive set when requested, otherwise seeded random vectors sized
// at the paper's target coverage.
func vectorSet(ctx context.Context, c *adifo.Circuit, fl *adifo.FaultList, exhaustive bool, n int, seed uint64) (*adifo.PatternSet, error) {
	if exhaustive {
		return adifo.ExhaustivePatterns(c.NumInputs()), nil
	}
	candidates := adifo.RandomPatterns(c.NumInputs(), n, seed)
	return adifo.SizePatterns(ctx, fl, candidates, adifo.DefaultTargetCoverage)
}
