package service

import (
	"errors"
	"github.com/eda-go/adifo/internal/obs"
	"reflect"
	"testing"
	"time"

	"github.com/eda-go/adifo/internal/adi"
	"github.com/eda-go/adifo/internal/logic"
	"github.com/eda-go/adifo/internal/prng"
	"github.com/eda-go/adifo/internal/tgen"
)

// waitTerminal polls a job to any terminal state (unlike the older
// waitDone helper, which treats cancelled as stuck).
func waitTerminal(t *testing.T, s *Service, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := s.Status(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if terminal(st.State) {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatus{}
}

func TestSubmitUnsupportedKind(t *testing.T) {
	s := New(Config{Logger: obs.Nop()})
	defer s.Close()
	_, err := s.Submit(JobSpec{
		Kind:     "mine_bitcoin",
		Circuit:  "c17",
		Patterns: PatternSpec{Random: &RandomSpec{N: 8, Seed: 1}},
	})
	if !errors.Is(err, ErrUnsupportedKind) {
		t.Fatalf("Submit(kind=mine_bitcoin) = %v, want ErrUnsupportedKind", err)
	}
}

// TestSubmitKindRestricted: Config.Kinds dedicates a server to a
// subset of workloads; other kinds get the same typed rejection as
// unknown ones.
func TestSubmitKindRestricted(t *testing.T) {
	s := New(Config{Logger: obs.Nop(), Kinds: []string{KindGrade}})
	defer s.Close()
	_, err := s.Submit(JobSpec{
		Kind:     KindAtpg,
		Circuit:  "c17",
		Patterns: PatternSpec{Random: &RandomSpec{N: 8, Seed: 1}},
		Order:    &OrderSpec{Kind: "dynm"},
	})
	if !errors.Is(err, ErrUnsupportedKind) {
		t.Fatalf("Submit(atpg on grade-only server) = %v, want ErrUnsupportedKind", err)
	}
	// The allowed kind still works, including via the kind-less
	// default.
	id, err := s.Submit(JobSpec{
		Circuit:  "c17",
		Mode:     "drop",
		Patterns: PatternSpec{Random: &RandomSpec{N: 8, Seed: 1}},
	})
	if err != nil {
		t.Fatalf("Submit(kind-less grade) on grade-only server: %v", err)
	}
	if st := waitTerminal(t, s, id); st.State != StateDone || st.Kind != KindGrade {
		t.Fatalf("grade job ended %q kind %q", st.State, st.Kind)
	}
}

// TestKindValidation: the kind-specific spec constraints reject
// mis-assembled specs at submit time with actionable messages.
func TestKindValidation(t *testing.T) {
	s := New(Config{Logger: obs.Nop()})
	defer s.Close()
	pat := PatternSpec{Random: &RandomSpec{N: 8, Seed: 1}}
	cases := []struct {
		name string
		spec JobSpec
	}{
		{"atpg without order", JobSpec{Kind: KindAtpg, Circuit: "c17", Patterns: pat}},
		{"atpg with empty order kind", JobSpec{Kind: KindAtpg, Circuit: "c17", Patterns: pat, Order: &OrderSpec{}}},
		{"atpg with unknown order kind", JobSpec{Kind: KindAtpg, Circuit: "c17", Patterns: pat, Order: &OrderSpec{Kind: "bogus"}}},
		{"atpg with mode", JobSpec{Kind: KindAtpg, Circuit: "c17", Patterns: pat, Mode: "drop", Order: &OrderSpec{Kind: "dynm"}}},
		{"atpg with stop_at_coverage", JobSpec{Kind: KindAtpg, Circuit: "c17", Patterns: pat, StopAtCoverage: 0.9, Order: &OrderSpec{Kind: "dynm"}}},
		{"atpg with fault_shard", JobSpec{Kind: KindAtpg, Circuit: "c17", Patterns: pat, Order: &OrderSpec{Kind: "dynm"}, FaultShard: &FaultShard{Index: 0, Count: 2}}},
		{"atpg with negative backtrack limit", JobSpec{Kind: KindAtpg, Circuit: "c17", Patterns: pat, Order: &OrderSpec{Kind: "dynm"}, Gen: &GenSpec{BacktrackLimit: -1}}},
		{"adi_order without order", JobSpec{Kind: KindADIOrder, Circuit: "c17", Patterns: pat}},
		{"adi_order with gen", JobSpec{Kind: KindADIOrder, Circuit: "c17", Patterns: pat, Order: &OrderSpec{Kind: "decr"}, Gen: &GenSpec{}}},
		{"adi_order with n", JobSpec{Kind: KindADIOrder, Circuit: "c17", Patterns: pat, N: 3, Order: &OrderSpec{Kind: "decr"}}},
		{"adi_order with fault_shard", JobSpec{Kind: KindADIOrder, Circuit: "c17", Patterns: pat, Order: &OrderSpec{Kind: "decr"}, FaultShard: &FaultShard{Index: 0, Count: 2}}},
		{"grade with order", JobSpec{Circuit: "c17", Mode: "drop", Patterns: pat, Order: &OrderSpec{Kind: "dynm"}}},
		{"grade with gen", JobSpec{Circuit: "c17", Mode: "drop", Patterns: pat, Gen: &GenSpec{FillSeed: 1}}},
	}
	for _, c := range cases {
		if _, err := s.Submit(c.spec); err == nil {
			t.Errorf("%s: Submit accepted the spec", c.name)
		} else if errors.Is(err, ErrUnsupportedKind) {
			t.Errorf("%s: got ErrUnsupportedKind (%v); want a validation error", c.name, err)
		}
	}
}

// TestADIOrderJobMatchesLibrary: an adi_order job returns exactly what
// the in-process adi computation derives, for every order kind.
func TestADIOrderJobMatchesLibrary(t *testing.T) {
	s := New(Config{Logger: obs.Nop()})
	defer s.Close()
	entry, err := s.Registry().CircuitFor(JobSpec{Circuit: "c17"})
	if err != nil {
		t.Fatal(err)
	}
	u := logic.RandomPatterns(entry.Circuit.NumInputs(), 96, prng.New(7))
	ix := adi.Compute(entry.Faults, u)

	for _, kind := range adi.AllOrders() {
		id, err := s.Submit(JobSpec{
			Kind:     KindADIOrder,
			Circuit:  "c17",
			Patterns: PatternSpec{Random: &RandomSpec{N: 96, Seed: 7}},
			Order:    &OrderSpec{Kind: kind.String()},
		})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		st := waitTerminal(t, s, id)
		if st.State != StateDone || st.Kind != KindADIOrder {
			t.Fatalf("%v: job ended %q kind %q (%s)", kind, st.State, st.Kind, st.Error)
		}
		v, err := s.ResultAny(id)
		if err != nil {
			t.Fatalf("%v: ResultAny: %v", kind, err)
		}
		res, ok := v.(*OrderResult)
		if !ok {
			t.Fatalf("%v: result is %T", kind, v)
		}
		if !reflect.DeepEqual(res.Perm, ix.Order(kind)) {
			t.Errorf("%v: remote perm diverges from library order", kind)
		}
		if !reflect.DeepEqual(res.ADI, ix.ADI) || !reflect.DeepEqual(res.Ndet, ix.Ndet) {
			t.Errorf("%v: ADI/ndet data diverges from library computation", kind)
		}
		mn, mx := ix.MinMax()
		if res.ADIMin != mn || res.ADIMax != mx || res.NumDetected != ix.NumDetected() {
			t.Errorf("%v: spread stats = (%d, %d, %d), want (%d, %d, %d)",
				kind, res.ADIMin, res.ADIMax, res.NumDetected, mn, mx, ix.NumDetected())
		}
		// Result() is the grade-typed accessor and must refuse.
		if _, err := s.Result(id); err == nil {
			t.Errorf("%v: Result() accepted a non-grade job", kind)
		}
	}
}

// TestAtpgJobMatchesLibrary: an atpg job returns a test set
// bit-identical to the in-process ADI + ordered-generation flow.
func TestAtpgJobMatchesLibrary(t *testing.T) {
	const fillSeed = 12345
	s := New(Config{Logger: obs.Nop()})
	defer s.Close()
	entry, err := s.Registry().CircuitFor(JobSpec{Circuit: "c17"})
	if err != nil {
		t.Fatal(err)
	}
	u := logic.RandomPatterns(entry.Circuit.NumInputs(), 96, prng.New(7))
	ix := adi.Compute(entry.Faults, u)

	for _, kind := range []adi.OrderKind{adi.Orig, adi.Dynm} {
		want := tgen.Generate(entry.Faults, ix.Order(kind), tgen.Options{FillSeed: fillSeed})
		id, err := s.Submit(JobSpec{
			Kind:     KindAtpg,
			Circuit:  "c17",
			Patterns: PatternSpec{Random: &RandomSpec{N: 96, Seed: 7}},
			Order:    &OrderSpec{Kind: kind.String()},
			Gen:      &GenSpec{FillSeed: fillSeed},
		})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		st := waitTerminal(t, s, id)
		if st.State != StateDone || st.Kind != KindAtpg {
			t.Fatalf("%v: job ended %q kind %q (%s)", kind, st.State, st.Kind, st.Error)
		}
		v, err := s.ResultAny(id)
		if err != nil {
			t.Fatal(err)
		}
		res, ok := v.(*AtpgResult)
		if !ok {
			t.Fatalf("%v: result is %T", kind, v)
		}
		if len(res.Tests) != len(want.Tests) {
			t.Fatalf("%v: %d tests, library generated %d", kind, len(res.Tests), len(want.Tests))
		}
		for i, v := range want.Tests {
			if res.Tests[i] != vectorString(v) {
				t.Fatalf("%v: test %d = %s, library generated %s", kind, i, res.Tests[i], vectorString(v))
			}
		}
		if !reflect.DeepEqual(res.TargetOf, want.TargetOf) || !reflect.DeepEqual(res.Curve, want.Curve) {
			t.Errorf("%v: targets/curve diverge from library run", kind)
		}
		if res.AtpgCalls != want.AtpgCalls || res.Backtracks != want.Backtracks {
			t.Errorf("%v: effort (%d calls, %d backtracks), library (%d, %d)",
				kind, res.AtpgCalls, res.Backtracks, want.AtpgCalls, want.Backtracks)
		}
		if res.Detected != want.Detected() || res.AVE != want.AVE() {
			t.Errorf("%v: detected/AVE (%d, %v), library (%d, %v)",
				kind, res.Detected, res.AVE, want.Detected(), want.AVE())
		}
	}
}

// TestAtpgProgressStream: an atpg job streams block events during the
// ADI phase and per-target events during generation, and the status
// carries the generation counters at completion.
func TestAtpgProgressStream(t *testing.T) {
	s := New(Config{Logger: obs.Nop()})
	defer s.Close()
	id, err := s.Submit(JobSpec{
		Kind:     KindAtpg,
		Circuit:  "c17",
		Patterns: PatternSpec{Random: &RandomSpec{N: 256, Seed: 3}},
		Order:    &OrderSpec{Kind: "dynm"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel, ok := s.Subscribe(id)
	if !ok {
		t.Fatal("Subscribe failed")
	}
	defer cancel()
	var blockEvents, targetEvents int
	for ev := range ch {
		if ev.Kind != KindAtpg {
			t.Fatalf("event kind %q, want %q", ev.Kind, KindAtpg)
		}
		switch {
		case ev.Targets > 0:
			targetEvents++
			if ev.Target < 1 || ev.Target > ev.Targets {
				t.Fatalf("target %d out of range [1, %d]", ev.Target, ev.Targets)
			}
		default:
			blockEvents++
		}
	}
	st := waitTerminal(t, s, id)
	if st.State != StateDone {
		t.Fatalf("job ended %q: %s", st.State, st.Error)
	}
	// A slow consumer may miss events, but with a buffered channel and
	// a fast test we expect to see both phases; the terminal status is
	// authoritative either way.
	if blockEvents == 0 && targetEvents == 0 {
		t.Fatal("saw no progress events at all")
	}
	if st.Targets == 0 || st.TargetsDone != st.Targets || st.Tests == 0 {
		t.Fatalf("final status targets=%d done=%d tests=%d; want a completed generation",
			st.Targets, st.TargetsDone, st.Tests)
	}
}

// TestAtpgJobCancel: a running atpg job cancels at a target barrier
// and reports the cancelled terminal state.
func TestAtpgJobCancel(t *testing.T) {
	s := New(Config{Logger: obs.Nop()})
	defer s.Close()
	// irs circuits take long enough to cancel reliably mid-run.
	id, err := s.Submit(JobSpec{
		Kind:     KindAtpg,
		Circuit:  "irs1238",
		Patterns: PatternSpec{Random: &RandomSpec{N: 2048, Seed: 3}},
		Order:    &OrderSpec{Kind: "orig"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cancel(id); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if st := waitTerminal(t, s, id); st.State != StateCancelled {
		t.Fatalf("job ended %q, want cancelled", st.State)
	}
	if _, err := s.ResultAny(id); !errors.Is(err, ErrCancelled) {
		t.Fatalf("ResultAny after cancel = %v, want ErrCancelled", err)
	}
}

// TestGoodCacheSharedAcrossKinds: a nodrop grade and an adi_order job
// over the same (circuit, patterns) pair share one good-machine
// simulation through the registry.
func TestGoodCacheSharedAcrossKinds(t *testing.T) {
	s := New(Config{Logger: obs.Nop()})
	defer s.Close()
	pat := PatternSpec{Random: &RandomSpec{N: 128, Seed: 9}}
	id1, err := s.Submit(JobSpec{Circuit: "c17", Mode: "nodrop", Patterns: pat})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, id1)
	id2, err := s.Submit(JobSpec{Kind: KindADIOrder, Circuit: "c17", Patterns: pat, Order: &OrderSpec{Kind: "decr"}})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, s, id2); st.State != StateDone {
		t.Fatalf("adi_order job ended %q: %s", st.State, st.Error)
	}
	reg := s.Registry().Stats()
	if reg.GoodHits == 0 {
		t.Fatalf("adi_order job missed the good cache the grade job warmed: %+v", reg)
	}
}
