package main

import "testing"

func TestCommands(t *testing.T) {
	cases := []struct{ cmd, circuit string }{
		{"stats", "c17"},
		{"faults", "c17"},
		{"adi", "lion"},
		{"order", "lion"},
	}
	for _, c := range cases {
		if err := run(c.cmd, c.circuit, true, 100, 1, "dynm", 5); err != nil {
			t.Fatalf("%s %s: %v", c.cmd, c.circuit, err)
		}
	}
}

func TestOrderBadName(t *testing.T) {
	if err := run("order", "lion", true, 100, 1, "bogus", 0); err == nil {
		t.Fatal("expected error for unknown order")
	}
}

func TestBadCircuit(t *testing.T) {
	if err := run("stats", "nope", false, 10, 1, "dynm", 0); err == nil {
		t.Fatal("expected error for unknown circuit")
	}
}
