package service

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/eda-go/adifo/internal/benchdata"
	"github.com/eda-go/adifo/internal/circuit"
	"github.com/eda-go/adifo/internal/logic"
	"github.com/eda-go/adifo/internal/prng"
)

func TestLRUEvictsOldest(t *testing.T) {
	c := newLRU[int](2)
	c.put("a", 1)
	c.put("b", 2)
	if _, ok := c.get("a"); !ok { // touch a: b is now oldest
		t.Fatal("a missing")
	}
	c.put("c", 3)
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted as least recently used")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted despite recent use")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c missing")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

func TestLRUPutOverwrites(t *testing.T) {
	c := newLRU[int](2)
	c.put("a", 1)
	c.put("a", 2)
	if v, _ := c.get("a"); v != 2 {
		t.Fatalf("a = %d, want 2", v)
	}
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
}

func TestCircuitKey(t *testing.T) {
	if _, err := CircuitKey(JobSpec{}); err == nil {
		t.Fatal("empty spec must be rejected")
	}
	if _, err := CircuitKey(JobSpec{Circuit: "c17", Bench: "x"}); err == nil {
		t.Fatal("ambiguous spec must be rejected")
	}
	k1, err := CircuitKey(JobSpec{Circuit: "c17"})
	if err != nil || k1 != "n:c17" {
		t.Fatalf("named key = %q, %v", k1, err)
	}
	kb1, _ := CircuitKey(JobSpec{Bench: benchdata.C17})
	kb2, _ := CircuitKey(JobSpec{Bench: benchdata.C17})
	if kb1 != kb2 {
		t.Fatal("equal bench text must produce equal keys")
	}
	kb3, _ := CircuitKey(JobSpec{Bench: benchdata.C17 + "\n"})
	if kb3 == kb1 {
		t.Fatal("different bench text must produce different keys")
	}
}

func TestRegistryCircuitCaching(t *testing.T) {
	r := NewRegistry(4, 4)
	spec := JobSpec{Circuit: "c17"}
	e1, err := r.CircuitFor(spec)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := r.CircuitFor(spec)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Fatal("repeat resolution did not hit the cache")
	}
	st := r.Stats()
	if st.CircuitHits != 1 || st.CircuitMisses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
	if e1.Faults.Len() != 22 {
		t.Fatalf("c17 collapsed faults = %d, want 22", e1.Faults.Len())
	}
	if e1.Fingerprint == 0 {
		t.Fatal("fingerprint not populated")
	}
}

func TestRegistryCircuitEviction(t *testing.T) {
	r := NewRegistry(1, 1)
	if _, err := r.CircuitFor(JobSpec{Circuit: "c17"}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.CircuitFor(JobSpec{Circuit: "lion"}); err != nil {
		t.Fatal(err)
	}
	// c17 was evicted: resolving it again must miss.
	if _, err := r.CircuitFor(JobSpec{Circuit: "c17"}); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.CircuitMisses != 3 || st.CircuitHits != 0 {
		t.Fatalf("stats = %+v, want 3 misses / 0 hits", st)
	}
	if st.Circuits != 1 {
		t.Fatalf("entries = %d, want 1", st.Circuits)
	}
}

func TestRegistryGoodCaching(t *testing.T) {
	r := NewRegistry(4, 4)
	e, err := r.CircuitFor(JobSpec{Circuit: "c17"})
	if err != nil {
		t.Fatal(err)
	}
	ps := logic.RandomPatterns(e.Circuit.NumInputs(), 128, prng.New(3))
	g1 := r.Good(e, "r:128:3", ps)
	g2 := r.Good(e, "r:128:3", ps)
	if g1 != g2 {
		t.Fatal("repeat good lookup did not hit the cache")
	}
	st := r.Stats()
	if st.GoodHits != 1 || st.GoodMisses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
	if g1.Bytes() <= 0 {
		t.Fatal("Bytes() must be positive")
	}
}

// TestRegistryEvictionDuringBuild races LRU eviction against an
// in-flight single-flight build: a waiter that joined the slot before
// the eviction must share the one build (no double-build), both
// callers must get a fully usable entry (no use-after-evict — the
// entry is self-contained, eviction only forgets the cache key), and a
// later lookup of the evicted key rebuilds cleanly.
func TestRegistryEvictionDuringBuild(t *testing.T) {
	r := NewRegistry(1, 1) // capacity 1: any other key evicts the slot
	var builds atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	build := func() (*circuit.Circuit, error) {
		if builds.Add(1) == 1 {
			close(started)
		}
		<-release
		return circuit.ParseBench("c17", strings.NewReader(benchdata.C17))
	}

	type outcome struct {
		entry *CircuitEntry
		err   error
	}
	results := make(chan outcome, 2)
	lookup := func() {
		e, err := r.Circuit("k", build)
		results <- outcome{e, err}
	}
	go lookup()
	<-started // the first builder is inside build(), blocked on release

	// Second caller: must join the in-flight slot (a cache hit on the
	// same sync.Once), observable as CircuitHits == 1.
	go lookup()
	deadline := time.Now().Add(5 * time.Second)
	for r.Stats().CircuitHits < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second lookup never hit the in-flight slot")
		}
		time.Sleep(time.Millisecond)
	}

	// Evict the in-flight slot while both callers wait on its build.
	if _, err := r.CircuitFor(JobSpec{Circuit: "lion"}); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Circuits != 1 {
		t.Fatalf("registry holds %d circuits, want 1 (the evictor)", st.Circuits)
	}

	close(release)
	o1, o2 := <-results, <-results
	if o1.err != nil || o2.err != nil {
		t.Fatalf("builds failed: %v, %v", o1.err, o2.err)
	}
	if o1.entry != o2.entry {
		t.Fatal("waiter did not share the single-flight build (double build or divergent entries)")
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("build ran %d times for two concurrent lookups, want 1", n)
	}
	// The evicted entry is still fully usable: it owns its circuit and
	// fault list, eviction only dropped the cache key.
	if o1.entry.Circuit == nil || o1.entry.Faults.Len() != 22 || o1.entry.Fingerprint == 0 {
		t.Fatalf("entry unusable after eviction: %+v", o1.entry)
	}

	// A fresh lookup of the evicted key is a miss and rebuilds (the
	// gate is already open, so the second build completes immediately).
	e3, err := r.Circuit("k", build)
	if err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 2 {
		t.Fatalf("rebuild after eviction ran build %d times total, want 2", builds.Load())
	}
	if e3 == o1.entry {
		t.Fatal("rebuild returned the evicted slot's entry pointer; expected a fresh slot")
	}
	if e3.Fingerprint != o1.entry.Fingerprint {
		t.Fatal("rebuild produced a divergent circuit")
	}
}

// TestRegistryCompiledCaching pins the compiled-form cache contract:
// repeat lookups share one immutable form, and because the key is the
// netlist fingerprint (not the request key), an inline submission of a
// named circuit's text shares the form compiled for the name.
func TestRegistryCompiledCaching(t *testing.T) {
	r := NewRegistry(4, 4)
	e, err := r.CircuitFor(JobSpec{Circuit: "c17"})
	if err != nil {
		t.Fatal(err)
	}
	cc1 := r.Compiled(e)
	cc2 := r.Compiled(e)
	if cc1 != cc2 {
		t.Fatal("repeat compiled lookup did not hit the cache")
	}
	if cc1.Fingerprint != e.Fingerprint {
		t.Fatal("compiled form carries the wrong fingerprint")
	}

	src, err := benchdata.Source("c17")
	if err != nil {
		t.Fatal(err)
	}
	// Name matters: the fingerprint covers the circuit name, so only a
	// same-named inline submission is the same netlist.
	e2, err := r.CircuitFor(JobSpec{Bench: src, Name: "c17"})
	if err != nil {
		t.Fatal(err)
	}
	if e2 == e {
		t.Fatal("inline and named submissions must be distinct circuit entries")
	}
	if cc3 := r.Compiled(e2); cc3 != cc1 {
		t.Fatal("structurally identical netlists must share one compiled form")
	}

	st := r.Stats()
	if st.CompiledHits != 2 || st.CompiledMisses != 1 {
		t.Fatalf("stats = %+v, want 2 compiled hits / 1 miss", st)
	}
	if st.Compiled != 1 {
		t.Fatalf("resident compiled forms = %d, want 1", st.Compiled)
	}
}

func TestRegistryBadCircuit(t *testing.T) {
	r := NewRegistry(4, 4)
	if _, err := r.CircuitFor(JobSpec{Circuit: "no-such-circuit"}); err == nil {
		t.Fatal("unknown name must fail")
	}
	if _, err := r.CircuitFor(JobSpec{Bench: "this is not a netlist"}); err == nil {
		t.Fatal("bad bench text must fail")
	}
	// Failures must not poison the cache.
	if st := r.Stats(); st.Circuits != 0 {
		t.Fatalf("failed builds cached: %+v", st)
	}
}
