package service

import (
	"github.com/eda-go/adifo/internal/journal"
	"github.com/eda-go/adifo/internal/obs"
	"github.com/eda-go/adifo/internal/obs/trace"
)

// Terminal status label values of the adifo_jobs_total metric.
var terminalStatuses = []string{StateDone, StateFailed, StateCancelled}

// Reason label values of the adifo_jobs_rejected_total metric.
const (
	// reasonDraining: Submit refused because the service is shutting
	// down.
	reasonDraining = "draining"
	// reasonOverloaded: the global queued-job bound was reached.
	reasonOverloaded = "overloaded"
	// reasonTenantLimit: the submitting tenant's own queue bound was
	// reached.
	reasonTenantLimit = "tenant_limit"
	// reasonDrain: the job was already queued when Drain dropped it —
	// the shutdown's collateral, counted rather than silent.
	reasonDrain = "drain"
)

var rejectReasons = []string{reasonDraining, reasonOverloaded, reasonTenantLimit, reasonDrain}

// serviceMetrics bundles the engine's instruments. Hot-path updates
// are single atomic operations; everything derivable at scrape time
// (uptime, the registry's cache counters) is a *Func metric so no hot
// path pays for it twice.
type serviceMetrics struct {
	reg *obs.Registry

	jobsSubmitted *obs.CounterVec // kind
	jobsTotal     *obs.CounterVec // kind, status (terminal only)
	jobsQueued    *obs.Gauge
	jobsRunning   *obs.Gauge
	queueWait     *obs.HistogramVec // kind
	duration      *obs.HistogramVec // kind
	simBlocks     *obs.Counter
	writeErrors   *obs.Counter
	draining      *obs.Gauge

	// Multi-tenant control-plane instruments: rejected submits by
	// reason, idempotency-key dedupe hits, and per-tenant queue depth.
	jobsRejected     *obs.CounterVec // reason
	jobsDeduped      *obs.Counter
	tenantQueueDepth *obs.GaugeVec // tenant
}

// newServiceMetrics registers the engine's metric families on reg and
// pre-creates every (kind, status) series, so a scrape of a fresh
// server already exposes the full catalog at zero — dashboards and the
// golden exposition test see a deterministic series set regardless of
// which kinds have run.
func newServiceMetrics(reg *obs.Registry, s *Service) *serviceMetrics {
	m := &serviceMetrics{reg: reg}

	reg.GaugeVec("adifo_build_info",
		"Build metadata; value is always 1.",
		"version", "goversion").With(obs.Version, obs.GoVersion()).Set(1)
	reg.GaugeFunc("adifo_uptime_seconds",
		"Seconds since the service was constructed.",
		func() float64 { return s.now().Sub(s.start).Seconds() })

	m.jobsSubmitted = reg.CounterVec("adifo_jobs_submitted_total",
		"Jobs accepted by Submit, by kind.", "kind")
	m.jobsTotal = reg.CounterVec("adifo_jobs_total",
		"Jobs reaching a terminal state, by kind and status.", "kind", "status")
	m.jobsQueued = reg.Gauge("adifo_jobs_queued",
		"Jobs accepted but not yet claimed by a pool slot.")
	m.jobsRunning = reg.Gauge("adifo_jobs_running",
		"Jobs currently holding a pool slot.")
	m.queueWait = reg.HistogramVec("adifo_queue_wait_seconds",
		"Time from Submit to claiming a pool slot, by kind.", nil, "kind")
	m.duration = reg.HistogramVec("adifo_job_duration_seconds",
		"Run time of completed jobs (claim to done), by kind.", nil, "kind")
	m.simBlocks = reg.Counter("adifo_sim_blocks_total",
		"64-pattern simulation blocks completed across all jobs (rate = blocks/sec).")
	m.writeErrors = reg.Counter("adifo_http_write_errors_total",
		"HTTP response bodies that failed to encode after the status line was sent.")
	m.draining = reg.Gauge("adifo_draining",
		"1 once Drain has been called, 0 before.")
	m.jobsRejected = reg.CounterVec("adifo_jobs_rejected_total",
		"Submits refused (admission control, tenant limits, drain), by reason.", "reason")
	m.jobsDeduped = reg.Counter("adifo_jobs_deduplicated_total",
		"Submits answered from the idempotency-key map instead of enqueueing.")
	m.tenantQueueDepth = reg.GaugeVec("adifo_tenant_queue_depth",
		"Jobs queued per tenant (label \"default\" is the unset tenant).", "tenant")
	for _, reason := range rejectReasons {
		m.jobsRejected.With(reason)
	}
	m.tenantQueueDepth.With(tenantLabel(""))

	for _, kind := range KindNames() {
		m.jobsSubmitted.With(kind)
		m.queueWait.With(kind)
		m.duration.With(kind)
		for _, st := range terminalStatuses {
			m.jobsTotal.With(kind, st)
		}
	}

	// The registry cache owns its counters; expose them as scrape-time
	// functions instead of double-counting on the lookup path.
	stats := func(pick func(RegistryStats) uint64) func() uint64 {
		return func() uint64 { return pick(s.reg.Stats()) }
	}
	reg.CounterFunc("adifo_registry_circuit_hits_total",
		"Circuit cache lookups served from cache.",
		stats(func(r RegistryStats) uint64 { return r.CircuitHits }))
	reg.CounterFunc("adifo_registry_circuit_misses_total",
		"Circuit cache lookups that had to build (parse, levelize, collapse).",
		stats(func(r RegistryStats) uint64 { return r.CircuitMisses }))
	reg.CounterFunc("adifo_registry_circuit_evictions_total",
		"Circuit cache entries evicted by the LRU.",
		stats(func(r RegistryStats) uint64 { return r.CircuitEvictions }))
	reg.CounterFunc("adifo_registry_good_hits_total",
		"Good-machine cache lookups served from cache.",
		stats(func(r RegistryStats) uint64 { return r.GoodHits }))
	reg.CounterFunc("adifo_registry_good_misses_total",
		"Good-machine cache lookups that had to simulate.",
		stats(func(r RegistryStats) uint64 { return r.GoodMisses }))
	reg.CounterFunc("adifo_registry_good_evictions_total",
		"Good-machine cache entries evicted by the LRU.",
		stats(func(r RegistryStats) uint64 { return r.GoodEvictions }))
	reg.CounterFunc("adifo_registry_compiled_hits_total",
		"Compiled-form cache lookups served from cache.",
		stats(func(r RegistryStats) uint64 { return r.CompiledHits }))
	reg.CounterFunc("adifo_registry_compiled_misses_total",
		"Compiled-form cache lookups that had to lower the netlist.",
		stats(func(r RegistryStats) uint64 { return r.CompiledMisses }))
	reg.CounterFunc("adifo_registry_compiled_evictions_total",
		"Compiled-form cache entries evicted by the LRU.",
		stats(func(r RegistryStats) uint64 { return r.CompiledEvictions }))
	reg.GaugeFunc("adifo_registry_circuits",
		"Circuit cache entries currently resident.",
		func() float64 { return float64(s.reg.Stats().Circuits) })
	reg.GaugeFunc("adifo_registry_goods",
		"Good-machine cache entries currently resident.",
		func() float64 { return float64(s.reg.Stats().Goods) })
	reg.GaugeFunc("adifo_registry_compiled",
		"Compiled-form cache entries currently resident.",
		func() float64 { return float64(s.reg.Stats().Compiled) })

	// Journal instruments are always registered — a deterministic
	// catalog regardless of configuration — and read zero while the
	// journal is disabled. The journal package stays dependency-free;
	// the engine lifts its Stats() snapshot into the exposition.
	jstat := func(pick func(journal.Stats) uint64) func() uint64 {
		return func() uint64 {
			if s.jnl == nil {
				return 0
			}
			return pick(s.jnl.Stats())
		}
	}
	reg.GaugeFunc("adifo_journal_enabled",
		"1 when Config.JournalDir enables the write-ahead job journal.",
		func() float64 {
			if s.jnl == nil {
				return 0
			}
			return 1
		})
	reg.CounterFunc("adifo_journal_appends_total",
		"Records appended to the job journal.",
		jstat(func(j journal.Stats) uint64 { return j.Appends }))
	reg.CounterFunc("adifo_journal_appended_bytes_total",
		"Bytes appended to the job journal (frames including headers).",
		jstat(func(j journal.Stats) uint64 { return j.AppendedBytes }))
	reg.CounterFunc("adifo_journal_syncs_total",
		"Journal fsyncs; appends/syncs is the group-commit batching factor.",
		jstat(func(j journal.Stats) uint64 { return j.Syncs }))
	reg.GaugeFunc("adifo_journal_sync_seconds_total",
		"Cumulative seconds spent in journal fsyncs.",
		func() float64 {
			if s.jnl == nil {
				return 0
			}
			return s.jnl.Stats().SyncSeconds
		})
	reg.CounterFunc("adifo_journal_rotations_total",
		"Journal segment rotations.",
		jstat(func(j journal.Stats) uint64 { return j.Rotations }))
	reg.CounterFunc("adifo_journal_errors_total",
		"Journal write, sync and encode failures.",
		jstat(func(j journal.Stats) uint64 { return j.Errors }))
	reg.GaugeFunc("adifo_journal_segment",
		"Index of the journal segment currently being written.",
		func() float64 {
			if s.jnl == nil {
				return 0
			}
			return float64(s.jnl.Stats().Segment)
		})
	reg.CounterFunc("adifo_journal_replayed_records_total",
		"Well-formed records replayed from the journal at the last startup.",
		func() uint64 { return s.replayRecords })
	reg.CounterFunc("adifo_journal_requeued_total",
		"Jobs found queued or running in the journal and re-enqueued at the last startup.",
		func() uint64 { return s.replayRequeued })

	// Trace instruments: like the journal, the tracer stays
	// dependency-free and the engine lifts its flight recorder's
	// Stats() snapshot into the exposition.
	tstat := func(pick func(trace.Stats) uint64) func() uint64 {
		return func() uint64 { return pick(s.traces.Stats()) }
	}
	reg.CounterFunc("adifo_trace_spans_started_total",
		"Spans started on the trace flight recorder.",
		tstat(func(t trace.Stats) uint64 { return t.SpansStarted }))
	reg.CounterFunc("adifo_trace_spans_finished_total",
		"Spans ended and recorded on the trace flight recorder.",
		tstat(func(t trace.Stats) uint64 { return t.SpansFinished }))
	reg.CounterFunc("adifo_trace_spans_dropped_total",
		"Spans dropped by the recorder's bounds (active-trace and per-trace span caps).",
		tstat(func(t trace.Stats) uint64 { return t.SpansDropped }))
	reg.GaugeFunc("adifo_trace_recorder_traces",
		"Completed traces currently retained by the flight recorder (ring + slowest-per-kind pins).",
		func() float64 { return float64(s.traces.Stats().Traces) })

	return m
}
