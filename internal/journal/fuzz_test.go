package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
)

// FuzzJournalRecord drives the frame codec two ways with the same
// input. First the input is treated as an arbitrary frame stream: the
// reader must terminate without panicking, stopping at EOF or the
// first bad frame. Then the input is reinterpreted as a record payload
// (via JSON) and round-tripped through EncodeFrame → Reader, with the
// fuzz bytes appended once more as a corrupt tail: the decoded record
// must equal the encoded one and the reader must stop cleanly right
// after it — the crash-recovery contract in miniature.
func FuzzJournalRecord(f *testing.F) {
	seed := func(rec Record) {
		frame, err := EncodeFrame(rec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	seed(Record{Type: TypeSubmitted, Job: "j1", Kind: "grade", Tenant: "acme", Key: "k-1",
		Spec: json.RawMessage(`{"circuit":"c17","mode":"drop","patterns":{"exhaustive":true}}`), At: 42})
	seed(Record{Type: TypeStarted, Job: "j1", At: 43})
	seed(Record{Type: TypeFinished, Job: "j1", State: "done",
		Result: json.RawMessage(`{"id":"j1","coverage":1}`), At: 44})
	seed(Record{Type: TypeFinished, Job: "j2", State: "failed", Error: "boom"})
	f.Add([]byte{})
	f.Add([]byte("ADIWAL1\n"))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		// 1) Arbitrary bytes as a frame stream: must terminate, never
		// panic, and deliver only CRC-verified records.
		r := NewReader(bytes.NewReader(data))
		for i := 0; ; i++ {
			_, err := r.Next()
			if err == io.EOF || errors.Is(err, ErrTruncated) {
				break
			}
			if err != nil {
				t.Fatalf("Next: unexpected error %v", err)
			}
			if i > len(data) {
				t.Fatalf("reader produced more records than input bytes")
			}
		}

		// 2) Round trip: build a record from the fuzz input and check
		// encode → decode identity with a corrupt tail appended.
		// JSON marshalling replaces invalid UTF-8 with U+FFFD, so string
		// fields are sanitized first — the identity below is over what a
		// writer can actually put in a record.
		rec := Record{Type: TypeSubmitted, Job: "j1", Spec: jsonClean(data)}
		if len(data) > 0 {
			rec.Tenant = strings.ToValidUTF8(string(data[:min(len(data), 32)]), "")
			rec.Key = strings.ToValidUTF8(string(data), "")
		}
		frame, err := EncodeFrame(rec)
		if err != nil {
			// Only oversized or unencodable payloads may fail; fuzz
			// inputs are bounded well under MaxRecordBytes, but invalid
			// UTF-8 strings still marshal (escaped), so an error here
			// is a real bug... unless the payload is huge.
			if len(data) < MaxRecordBytes/2 {
				t.Fatalf("EncodeFrame: %v", err)
			}
			return
		}
		stream := append(append([]byte{}, frame...), data...)
		r2 := NewReader(bytes.NewReader(stream))
		got, err := r2.Next()
		if err != nil {
			t.Fatalf("round trip Next: %v", err)
		}
		if !recordsEqual(got, rec) {
			t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, rec)
		}
		// Whatever follows the good record is either more valid frames
		// (possible: data could itself be a valid frame) or a clean
		// stop; drain defensively.
		for {
			_, err := r2.Next()
			if err == io.EOF || errors.Is(err, ErrTruncated) {
				break
			}
			if err != nil {
				t.Fatalf("tail Next: %v", err)
			}
		}
	})
}

// jsonClean returns data as a RawMessage when it is valid JSON, nil
// otherwise — Record.Spec must hold well-formed JSON or re-marshalling
// the record would fail.
func jsonClean(data []byte) json.RawMessage {
	if json.Valid(data) {
		return json.RawMessage(data)
	}
	return nil
}

// recordsEqual compares records up to JSON raw-message re-encoding
// (json.Marshal of a RawMessage compacts it, so byte equality of Spec
// is compared on compacted forms).
func recordsEqual(a, b Record) bool {
	na, nb := a, b
	na.Spec, nb.Spec = compact(a.Spec), compact(b.Spec)
	na.Result, nb.Result = compact(a.Result), compact(b.Result)
	return reflect.DeepEqual(na, nb)
}

func compact(m json.RawMessage) json.RawMessage {
	if len(m) == 0 {
		return nil
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, m); err != nil {
		return m
	}
	return buf.Bytes()
}
