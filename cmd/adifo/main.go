// Command adifo is the Swiss-army tool of the library: circuit
// statistics, fault listing, ADI computation and fault-order
// inspection on any circuit.
//
// Usage:
//
//	adifo stats  -circuit irs420
//	adifo faults -circuit c17
//	adifo adi    -circuit lion -exhaustive
//	adifo order  -circuit lion -exhaustive -order dynm
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/eda-go/adifo/internal/adi"
	"github.com/eda-go/adifo/internal/cli"
	"github.com/eda-go/adifo/internal/experiments"
	"github.com/eda-go/adifo/internal/fault"
	"github.com/eda-go/adifo/internal/fsim"
	"github.com/eda-go/adifo/internal/logic"
	"github.com/eda-go/adifo/internal/prng"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: adifo <command> [flags]

commands:
  stats    structural statistics of a circuit
  faults   list the collapsed stuck-at fault set
  adi      compute accidental detection indices
  order    print a fault order

common flags:
  -circuit ref   embedded name (c17, s27, lion), suite name, or .bench path
  -exhaustive    use all 2^inputs vectors for U (inputs <= 20)
  -n, -seed      random vector count / seed for U
`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var (
		ref        = fs.String("circuit", "c17", "circuit reference")
		exhaustive = fs.Bool("exhaustive", false, "use all 2^inputs vectors")
		n          = fs.Int("n", experiments.MaxRandomVectors, "random vector budget for U")
		seed       = fs.Uint64("seed", experiments.USeed, "random vector seed")
		orderName  = fs.String("order", "dynm", "fault order to print")
		limit      = fs.Int("limit", 0, "print at most this many rows (0 = all)")
	)
	fs.Parse(os.Args[2:])

	if err := run(cmd, *ref, *exhaustive, *n, *seed, *orderName, *limit); err != nil {
		fmt.Fprintln(os.Stderr, "adifo:", err)
		os.Exit(1)
	}
}

func run(cmd, ref string, exhaustive bool, n int, seed uint64, orderName string, limit int) error {
	c, err := cli.LoadCircuit(ref)
	if err != nil {
		return err
	}
	switch cmd {
	case "stats":
		st := c.ComputeStats()
		fmt.Printf("circuit   %s\n", c.Name)
		fmt.Printf("inputs    %d\n", st.Inputs)
		fmt.Printf("outputs   %d\n", st.Outputs)
		fmt.Printf("gates     %d\n", st.Gates)
		fmt.Printf("levels    %d\n", st.Levels)
		fmt.Printf("lines     %d\n", st.Lines)
		fmt.Printf("max fanin %d, max fanout %d, fanout stems %d\n",
			st.MaxFanin, st.MaxFanout, st.FanoutStem)
		fl := fault.CollapsedUniverse(c)
		fmt.Printf("faults    %d collapsed (%d uncollapsed)\n", fl.Len(), fault.Universe(c).Len())
		return nil

	case "faults":
		fl := fault.CollapsedUniverse(c)
		for i, f := range fl.Faults {
			if limit > 0 && i >= limit {
				fmt.Printf("... (%d more)\n", fl.Len()-i)
				break
			}
			fmt.Printf("f%-4d %s\n", i, f.Name(c))
		}
		return nil

	case "adi", "order":
		fl := fault.CollapsedUniverse(c)
		u := vectorSet(c, fl, exhaustive, n, seed)
		ix := adi.Compute(fl, u)
		mn, mx := ix.MinMax()
		fmt.Printf("U %d vectors; |F_U| = %d of %d faults; ADImin=%d ADImax=%d ratio=%.2f\n",
			u.Len(), ix.NumDetected(), fl.Len(), mn, mx, ix.Ratio())
		if cmd == "adi" {
			for i, f := range fl.Faults {
				if limit > 0 && i >= limit {
					fmt.Printf("... (%d more)\n", fl.Len()-i)
					break
				}
				fmt.Printf("f%-4d ADI=%-5d |D(f)|=%-5d %s\n", i, ix.ADI[i], ix.Det[i].Count(), f.Name(c))
			}
			return nil
		}
		kind, err := cli.ParseOrder(orderName)
		if err != nil {
			return err
		}
		ord := ix.Order(kind)
		fmt.Printf("order %v:\n", kind)
		for pos, fi := range ord {
			if limit > 0 && pos >= limit {
				fmt.Printf("... (%d more)\n", len(ord)-pos)
				break
			}
			fmt.Printf("%4d: f%-4d ADI=%-5d %s\n", pos, fi, ix.ADI[fi], fl.Faults[fi].Name(c))
		}
		return nil
	}
	usage()
	return nil
}

func vectorSet(c interface{ NumInputs() int }, fl *fault.List, exhaustive bool, n int, seed uint64) *logic.PatternSet {
	if exhaustive {
		return logic.ExhaustivePatterns(c.NumInputs())
	}
	candidates := logic.RandomPatterns(c.NumInputs(), n, prng.New(seed))
	sizing := fsim.Run(fl, candidates, fsim.Options{Mode: fsim.Drop, StopAtCoverage: experiments.TargetCoverage})
	return candidates.Slice(sizing.VectorsUsed)
}
