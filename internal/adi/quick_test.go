package adi

import (
	"sort"
	"testing"
	"testing/quick"

	"github.com/eda-go/adifo/internal/fault"
	"github.com/eda-go/adifo/internal/gen"
	"github.com/eda-go/adifo/internal/logic"
	"github.com/eda-go/adifo/internal/prng"
)

// Property: the heap pops entries in (key desc, fault asc) order for
// arbitrary inputs.
func TestQuickMaxHeapOrder(t *testing.T) {
	f := func(keysRaw []uint8) bool {
		h := newMaxHeap(len(keysRaw))
		var want []entry
		for i, k := range keysRaw {
			e := entry{key: int(k), fault: i}
			h.push(e)
			want = append(want, e)
		}
		sort.Slice(want, func(a, b int) bool {
			if want[a].key != want[b].key {
				return want[a].key > want[b].key
			}
			return want[a].fault < want[b].fault
		})
		for _, w := range want {
			if h.pop() != w {
				return false
			}
		}
		return h.len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: on arbitrary generated circuits and vector budgets, the
// core ADI invariants hold and every order is a permutation with the
// documented zero-block placement.
func TestQuickADIInvariantsOnGeneratedCircuits(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		c := gen.Generate(gen.Config{Name: "q", Inputs: 6, Gates: 45, Seed: seed})
		fl := fault.CollapsedUniverse(c)
		n := int(nRaw%60) + 4
		u := logic.RandomPatterns(c.NumInputs(), n, prng.New(seed^0xa5a5))
		ix := Compute(fl, u)

		for fi := range fl.Faults {
			switch {
			case ix.DetectedByU(fi) && ix.ADI[fi] < 1:
				return false
			case !ix.DetectedByU(fi) && ix.ADI[fi] != 0:
				return false
			}
			// ADI(f) really is the minimum ndet over D(f).
			min := 0
			ix.Det[fi].ForEach(func(uIdx int) {
				if min == 0 || ix.Ndet[uIdx] < min {
					min = ix.Ndet[uIdx]
				}
			})
			if ix.ADI[fi] != min {
				return false
			}
		}

		for _, kind := range AllOrders() {
			ord := ix.Order(kind)
			if len(ord) != fl.Len() {
				return false
			}
			seen := make([]bool, fl.Len())
			for _, fi := range ord {
				if fi < 0 || fi >= fl.Len() || seen[fi] {
					return false
				}
				seen[fi] = true
			}
		}

		// Dynamic order head equals static max (first placement sees
		// unmodified ndet).
		dyn := ix.Order(Dynm)
		if len(dyn) > 0 && ix.NumDetected() > 0 {
			first := dyn[0]
			for fi := range fl.Faults {
				if ix.ADI[fi] > ix.ADI[first] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: the lazy-heap dynamic order equals the naive quadratic
// reference on arbitrary generated circuits.
func TestQuickDynamicOrderMatchesNaiveOnGeneratedCircuits(t *testing.T) {
	f := func(seed uint64) bool {
		c := gen.Generate(gen.Config{Name: "q", Inputs: 5, Gates: 30, Seed: seed})
		fl := fault.CollapsedUniverse(c)
		u := logic.RandomPatterns(c.NumInputs(), 24, prng.New(seed^0x77))
		ix := Compute(fl, u)
		nz, _ := ix.split()
		want := naiveDynamicOrder(ix, nz)
		got := ix.dynamicOrder(nz)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
