#!/usr/bin/env bash
# Runs the serving-path benchmarks — the single-process grading service
# (BenchmarkServiceThroughput), the fault-sharded cluster path
# (BenchmarkClusterGrade) and the same cluster with one straggling
# backend (BenchmarkClusterGradeStraggler, which exercises shard
# stealing and speculation) — and writes the raw `go test -json` event
# stream to BENCH_service.json, the artifact CI uploads per commit so
# the serving-path perf trajectory is recorded over time. The gap
# between the two cluster numbers tracks the tail-latency machinery.
#
# Usage: scripts/bench_service.sh [output-file]
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_service.json}"
go test -run '^$' -bench 'BenchmarkServiceThroughput$|BenchmarkClusterGrade$|BenchmarkClusterGradeStraggler$' \
  -benchtime "${ADIFO_BENCHTIME:-5x}" -count 1 -json . > "$out"

# Fail loudly if the run did not actually benchmark anything.
grep -q 'BenchmarkServiceThroughput' "$out"
grep -q 'BenchmarkClusterGrade' "$out"
grep -q 'BenchmarkClusterGradeStraggler' "$out"
echo "wrote $out:"
grep -o '"Output":"Benchmark[^"]*ns/op[^"]*"' "$out" | sed 's/"Output":"//; s/\\n"$//' || true

# Simulator-core benchmarks: the wide-block parallel fault-grading
# kernels (BenchmarkRunParallel, the ISCAS-scale throughput number the
# compiled-core work is judged by) and the one-time netlist lowering
# cost (BenchmarkCompile, the price of a registry compiled-cache miss).
# Recorded separately as BENCH_sim.json so kernel regressions are
# visible without the serving-path noise on top.
sim_out="$(dirname "$out")/BENCH_sim.json"
go test -run '^$' -bench 'BenchmarkRunParallel$|BenchmarkCompile$' \
  -benchtime "${ADIFO_BENCHTIME:-5x}" -count 1 -json \
  ./internal/fsim ./internal/circuit > "$sim_out"
grep -q 'BenchmarkRunParallel' "$sim_out"
grep -q 'BenchmarkCompile' "$sim_out"
echo "wrote $sim_out:"
grep -o '"Output":"Benchmark[^"]*ns/op[^"]*"' "$sim_out" | sed 's/"Output":"//; s/\\n"$//' || true

# Archive a /metrics snapshot from a real adifod next to the benchmark
# stream, so each commit's artifact also records the metric catalog
# (and sanity-checks the exposition on the same runner).
scripts/smoke_metrics.sh "$(dirname "$out")/BENCH_metrics.txt"
