package irr

import (
	"testing"

	"github.com/eda-go/adifo/internal/atpg"
	"github.com/eda-go/adifo/internal/circuit"
	"github.com/eda-go/adifo/internal/fault"
	"github.com/eda-go/adifo/internal/gen"
	"github.com/eda-go/adifo/internal/logic"
	"github.com/eda-go/adifo/internal/sim"
)

func parse(t testing.TB, name, src string) *circuit.Circuit {
	t.Helper()
	c, err := circuit.ParseBenchString(name, src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// assertIrredundant checks with the ATPG that no collapsed fault of c
// is undetectable.
func assertIrredundant(t *testing.T, c *circuit.Circuit) {
	t.Helper()
	fl := fault.CollapsedUniverse(c)
	g := atpg.New(c, atpg.Options{})
	for _, f := range fl.Faults {
		if g.Generate(f).Status == atpg.Redundant {
			t.Fatalf("fault %v still undetectable", f.Name(c))
		}
	}
}

func TestMakeOnAlreadyIrredundant(t *testing.T) {
	src := `
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`
	c := parse(t, "c17", src)
	out, st, err := Make(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.RedundantRemoved != 0 || !st.Clean {
		t.Fatalf("c17 is irredundant; stats = %+v", st)
	}
	if out.ComputeStats() != c.ComputeStats() {
		t.Fatal("irredundant circuit was modified")
	}
}

func TestMakeRemovesClassicRedundancy(t *testing.T) {
	// y = OR(a, NOT(a)) is constant 1; z = AND(y, b) should simplify
	// to (a function equivalent to) BUF(b).
	src := `
INPUT(a)
INPUT(b)
OUTPUT(z)
n = NOT(a)
y = OR(a, n)
z = AND(y, b)
`
	c := parse(t, "red", src)
	out, st, err := Make(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.RedundantRemoved == 0 {
		t.Fatal("no redundancy removed")
	}
	if !st.Clean {
		t.Fatalf("not clean: %+v", st)
	}
	assertIrredundant(t, out)
	// The output must now follow b directly (z = b for both b values,
	// regardless of a if a survived).
	s := sim.New(out)
	for bv := uint8(0); bv <= 1; bv++ {
		v := make(logic.Vector, out.NumInputs())
		for i := range v {
			v[i] = bv
		}
		got := s.SimulateVector(v)
		if got[0] != bv {
			t.Fatalf("simplified circuit: z(%d...) = %d, want %d", bv, got[0], bv)
		}
	}
	if got := out.ComputeStats().Gates; got >= c.ComputeStats().Gates {
		t.Fatalf("gate count did not shrink: %d", got)
	}
}

func TestMakeXorSimplification(t *testing.T) {
	// x = XOR(a, a) is constant 0; y = XNOR(x, b) should become
	// NOT(b).
	src := `
INPUT(a)
INPUT(b)
OUTPUT(y)
x = XOR(a, a)
y = XNOR(x, b)
`
	c := parse(t, "xorred", src)
	out, st, err := Make(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Clean {
		t.Fatalf("not clean: %+v", st)
	}
	assertIrredundant(t, out)
	s := sim.New(out)
	for bv := uint8(0); bv <= 1; bv++ {
		v := make(logic.Vector, out.NumInputs())
		for i := range v {
			v[i] = bv
		}
		if got := s.SimulateVector(v)[0]; got != 1-bv {
			t.Fatalf("y(%d) = %d, want %d", bv, got, 1-bv)
		}
	}
}

func TestMakeDegenerateCircuitErrors(t *testing.T) {
	// The single output is constant: nothing testable remains.
	src := `
INPUT(a)
OUTPUT(y)
n = NOT(a)
y = OR(a, n)
`
	c := parse(t, "allconst", src)
	if _, _, err := Make(c, Options{}); err == nil {
		t.Fatal("expected degeneration error")
	}
}

func TestMakeOnGeneratedSuite(t *testing.T) {
	for _, sc := range gen.SmallSuite() {
		raw := gen.Generate(sc.Config())
		out, st, err := Make(raw, Options{})
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if !st.Clean {
			t.Fatalf("%s: pass did not converge: %+v", sc.Name, st)
		}
		assertIrredundant(t, out)
		if out.NumInputs() != raw.NumInputs() {
			t.Fatalf("%s: pass dropped primary inputs (%d -> %d); pick a new suite seed",
				sc.Name, raw.NumInputs(), out.NumInputs())
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	sc := gen.SmallSuite()[0]
	raw := gen.Generate(sc.Config())
	_, st, err := Make(raw, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations < 1 || st.GatesBefore == 0 || st.GatesAfter == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.GatesAfter > st.GatesBefore {
		t.Fatalf("gate count grew: %+v", st)
	}
}
