package cluster

import "github.com/eda-go/adifo/internal/obs"

// clusterMetrics instruments the coordinator's failure-handling
// machinery — the part of the cluster that is invisible in results
// (merges are bit-identical no matter how many retries it took) and
// therefore only observable here: probe latency per backend, shards
// re-placed after a backend death, backends excluded from placement,
// and the cost of the final merge.
type clusterMetrics struct {
	reg *obs.Registry

	probeSeconds     *obs.HistogramVec // backend
	shardRetries     *obs.Counter
	exclusions       *obs.CounterVec // backend
	mergeSeconds     *obs.Histogram
	jobsTotal        *obs.CounterVec // status (terminal only)
	shardsStolen     *obs.Counter
	shardsSpeculated *obs.Counter
	speculationWins  *obs.Counter
}

func newClusterMetrics(reg *obs.Registry) *clusterMetrics {
	m := &clusterMetrics{reg: reg}
	m.probeSeconds = reg.HistogramVec("adifo_cluster_probe_seconds",
		"Health-probe round-trip time per backend (failed probes observe the timeout).",
		nil, "backend")
	m.shardRetries = reg.Counter("adifo_cluster_shard_retries_total",
		"Shards re-placed on another backend after a loss (death, drain, eviction).")
	m.exclusions = reg.CounterVec("adifo_cluster_backend_exclusions_total",
		"Times a flapping backend was passed over during placement or probing.",
		"backend")
	m.mergeSeconds = reg.Histogram("adifo_cluster_merge_seconds",
		"Time to merge all shard results into the final JobResult.", nil)
	m.jobsTotal = reg.CounterVec("adifo_cluster_jobs_total",
		"Cluster jobs reaching a terminal state, by status.", "status")
	for _, st := range []string{"done", "failed", "cancelled"} {
		m.jobsTotal.With(st)
	}
	m.shardsStolen = reg.Counter("adifo_cluster_shards_stolen_total",
		"Shards stolen from a backlogged backend before their sub-job made progress.")
	m.shardsSpeculated = reg.Counter("adifo_cluster_shards_speculated_total",
		"Speculative duplicate attempts launched on idle backends for slow shards.")
	m.speculationWins = reg.Counter("adifo_cluster_speculation_wins_total",
		"Speculative duplicates that finished before the original attempt.")
	return m
}
