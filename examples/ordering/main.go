// Ordering mechanics: a step-by-step replay of the paper's Section 2
// and Section 3 worked example on the lion-style circuit — the
// ndet(u) table (Table 1), per-fault ADI values, and the first few
// placements of the dynamic order Fdynm with their ndet updates.
//
// Run with:
//
//	go run ./examples/ordering
package main

import (
	"fmt"
	"log"

	"github.com/eda-go/adifo/internal/adi"
	"github.com/eda-go/adifo/internal/benchdata"
	"github.com/eda-go/adifo/internal/fault"
	"github.com/eda-go/adifo/internal/logic"
	"github.com/eda-go/adifo/internal/report"
)

func main() {
	c, err := benchdata.Load("lion")
	if err != nil {
		log.Fatal(err)
	}
	faults := fault.CollapsedUniverse(c)
	u := logic.ExhaustivePatterns(c.NumInputs())
	ix := adi.Compute(faults, u)

	// Table 1: ndet(u) for all 16 input vectors.
	tb := report.NewTable(
		fmt.Sprintf("ndet(u) for %s (%d faults, exhaustive U)", c.Name, faults.Len()),
		"u", "ndet(u)")
	for i := 0; i < u.Len(); i++ {
		tb.AddRow(u.Get(i).Decimal(), ix.Ndet[i])
	}
	fmt.Println(tb.String())

	// ADI(f) = min over D(f) of ndet(u): show a few faults with their
	// detecting vectors, as in the paper's f0/f2/f15 walk-through.
	fmt.Println("ADI derivation for the first three faults:")
	for fi := 0; fi < 3; fi++ {
		var det []uint64
		ix.Det[fi].ForEach(func(uIdx int) { det = append(det, u.Get(uIdx).Decimal()) })
		fmt.Printf("  f%-3d %-14s D(f)=%v  ADI=min ndet=%d\n",
			fi, faults.Faults[fi].Name(c), det, ix.ADI[fi])
	}
	fmt.Println()

	// Replay the dynamic order construction: place the highest-ADI
	// fault, decrement ndet(u) for its detecting vectors, repeat.
	fmt.Println("First five placements of Fdynm (ndet updates applied):")
	ndet := append([]int(nil), ix.Ndet...)
	order := ix.Order(adi.Dynm)
	for step := 0; step < 5 && step < len(order); step++ {
		fi := order[step]
		cur := 0
		ix.Det[fi].ForEach(func(uIdx int) {
			if cur == 0 || ndet[uIdx] < cur {
				cur = ndet[uIdx]
			}
		})
		fmt.Printf("  %d. f%-3d %-14s current ADI=%d\n", step+1, fi, faults.Faults[fi].Name(c), cur)
		ix.Det[fi].ForEach(func(uIdx int) { ndet[uIdx]-- })
	}
	fmt.Println("\nStatic vs dynamic head of the order:")
	fmt.Printf("  Fdecr: %v\n", head(ix.Order(adi.Decr), 8))
	fmt.Printf("  Fdynm: %v\n", head(order, 8))
}

func head(xs []int, n int) []int {
	if len(xs) < n {
		n = len(xs)
	}
	return xs[:n]
}
