package circuit

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ParseBench reads a netlist in the ISCAS-89 .bench format:
//
//	# comment
//	INPUT(a)
//	OUTPUT(y)
//	y = NAND(a, b)
//	s = DFF(d)
//
// Sequential designs are converted to their full-scan combinational
// core during parsing: each DFF output becomes a pseudo primary input
// and each DFF data input becomes a pseudo primary output, mirroring
// the paper's treatment of the ISCAS-89 benchmarks. The pseudo-PIs are
// appended after the real PIs, pseudo-POs after the real POs, both in
// DFF declaration order.
//
// Gate declarations may reference signals defined later in the file;
// the parser resolves forward references after reading the whole
// description.
func ParseBench(name string, r io.Reader) (*Circuit, error) {
	type protoGate struct {
		typ   GateType
		fanin []string
		line  int
	}
	var (
		inputs   []string
		outputs  []string
		dffOrder []string // DFF output signals in declaration order
		dffData  = map[string]string{}
		gates    = map[string]protoGate{}
		order    []string // gate definition order, for stable ids
	)

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case hasPrefixFold(line, "INPUT"):
			sig, err := parseParen(line, "INPUT")
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", name, lineNo, err)
			}
			inputs = append(inputs, sig)
		case hasPrefixFold(line, "OUTPUT"):
			sig, err := parseParen(line, "OUTPUT")
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", name, lineNo, err)
			}
			outputs = append(outputs, sig)
		default:
			eq := strings.IndexByte(line, '=')
			if eq < 0 {
				return nil, fmt.Errorf("%s:%d: expected assignment, got %q", name, lineNo, line)
			}
			lhs := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			op, args, err := parseCall(rhs)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", name, lineNo, err)
			}
			if lhs == "" {
				return nil, fmt.Errorf("%s:%d: empty signal name", name, lineNo)
			}
			if strings.EqualFold(op, "DFF") {
				if len(args) != 1 {
					return nil, fmt.Errorf("%s:%d: DFF takes exactly one input", name, lineNo)
				}
				if _, dup := dffData[lhs]; dup {
					return nil, fmt.Errorf("%s:%d: duplicate definition of %q", name, lineNo, lhs)
				}
				dffOrder = append(dffOrder, lhs)
				dffData[lhs] = args[0]
				continue
			}
			typ, ok := gateTypeByName(op)
			if !ok {
				return nil, fmt.Errorf("%s:%d: unknown gate type %q", name, lineNo, op)
			}
			if _, dup := gates[lhs]; dup {
				return nil, fmt.Errorf("%s:%d: duplicate definition of %q", name, lineNo, lhs)
			}
			gates[lhs] = protoGate{typ: typ, fanin: args, line: lineNo}
			order = append(order, lhs)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %v", name, err)
	}

	b := NewBuilder(name)
	ids := map[string]int{}
	for _, sig := range inputs {
		ids[sig] = b.AddInput(sig)
	}
	// Scan conversion: DFF outputs are pseudo primary inputs.
	for _, sig := range dffOrder {
		ids[sig] = b.AddInput(sig)
	}
	// Declare logic gates in definition order; resolve fanins after
	// all ids exist (forward references are legal in .bench).
	for _, sig := range order {
		ids[sig] = b.addGate(sig, gates[sig].typ, nil)
	}
	for _, sig := range order {
		pg := gates[sig]
		fanin := make([]int, len(pg.fanin))
		for i, fs := range pg.fanin {
			id, ok := ids[fs]
			if !ok {
				return nil, fmt.Errorf("%s:%d: gate %q references undefined signal %q", name, pg.line, sig, fs)
			}
			fanin[i] = id
		}
		b.c.Gates[ids[sig]].Fanin = fanin
	}
	for _, sig := range outputs {
		id, ok := ids[sig]
		if !ok {
			return nil, fmt.Errorf("%s: OUTPUT(%s) references undefined signal", name, sig)
		}
		b.MarkOutput(id)
	}
	// Scan conversion: DFF data inputs are pseudo primary outputs.
	for _, sig := range dffOrder {
		id, ok := ids[dffData[sig]]
		if !ok {
			return nil, fmt.Errorf("%s: DFF %q references undefined signal %q", name, sig, dffData[sig])
		}
		b.MarkOutput(id)
	}
	return b.Freeze()
}

// ParseBenchString is ParseBench over an in-memory description.
func ParseBenchString(name, src string) (*Circuit, error) {
	return ParseBench(name, strings.NewReader(src))
}

// WriteBench writes the circuit in .bench format. Scan pseudo-inputs
// and pseudo-outputs are emitted as plain INPUT/OUTPUT declarations
// (the circuit is combinational by construction, so the round trip is
// stable even for designs that originated from sequential sources).
func WriteBench(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", c.Name)
	st := c.ComputeStats()
	fmt.Fprintf(bw, "# %d inputs, %d outputs, %d gates, %d levels\n",
		st.Inputs, st.Outputs, st.Gates, st.Levels)
	for _, id := range c.Inputs {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.Gates[id].Name)
	}
	for _, id := range c.Outputs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.Gates[id].Name)
	}
	for _, gi := range c.Topo {
		g := &c.Gates[gi]
		if g.Type == PI {
			continue
		}
		names := make([]string, len(g.Fanin))
		for i, f := range g.Fanin {
			names[i] = c.Gates[f].Name
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", g.Name, g.Type, strings.Join(names, ", "))
	}
	return bw.Flush()
}

// BenchString renders the circuit as a .bench description.
func BenchString(c *Circuit) string {
	var sb strings.Builder
	_ = WriteBench(&sb, c) // strings.Builder never errors
	return sb.String()
}

func hasPrefixFold(s, prefix string) bool {
	if len(s) < len(prefix) {
		return false
	}
	if !strings.EqualFold(s[:len(prefix)], prefix) {
		return false
	}
	rest := strings.TrimSpace(s[len(prefix):])
	return strings.HasPrefix(rest, "(")
}

// parseParen extracts the single argument of "KEYWORD(arg)".
func parseParen(line, keyword string) (string, error) {
	rest := strings.TrimSpace(line[len(keyword):])
	if !strings.HasPrefix(rest, "(") || !strings.HasSuffix(rest, ")") {
		return "", fmt.Errorf("malformed %s declaration %q", keyword, line)
	}
	arg := strings.TrimSpace(rest[1 : len(rest)-1])
	if arg == "" || strings.ContainsAny(arg, ",()") {
		return "", fmt.Errorf("malformed %s declaration %q", keyword, line)
	}
	return arg, nil
}

// parseCall splits "OP(a, b, c)" into the operator and argument list.
func parseCall(rhs string) (op string, args []string, err error) {
	open := strings.IndexByte(rhs, '(')
	if open < 0 || !strings.HasSuffix(rhs, ")") {
		return "", nil, fmt.Errorf("malformed gate expression %q", rhs)
	}
	op = strings.TrimSpace(rhs[:open])
	if op == "" {
		return "", nil, fmt.Errorf("malformed gate expression %q", rhs)
	}
	inner := rhs[open+1 : len(rhs)-1]
	for _, part := range strings.Split(inner, ",") {
		a := strings.TrimSpace(part)
		if a == "" {
			return "", nil, fmt.Errorf("empty argument in %q", rhs)
		}
		args = append(args, a)
	}
	if len(args) == 0 {
		return "", nil, fmt.Errorf("gate expression %q has no arguments", rhs)
	}
	return op, args, nil
}

func gateTypeByName(op string) (GateType, bool) {
	switch strings.ToUpper(op) {
	case "BUF", "BUFF":
		return Buf, true
	case "NOT", "INV":
		return Not, true
	case "AND":
		return And, true
	case "NAND":
		return Nand, true
	case "OR":
		return Or, true
	case "NOR":
		return Nor, true
	case "XOR":
		return Xor, true
	case "XNOR":
		return Xnor, true
	}
	return 0, false
}

// SortedSignalNames returns all signal names in the circuit, sorted;
// used by diagnostics and tests.
func (c *Circuit) SortedSignalNames() []string {
	names := make([]string, 0, len(c.Gates))
	for _, g := range c.Gates {
		names = append(names, g.Name)
	}
	sort.Strings(names)
	return names
}
