package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/eda-go/adifo/internal/circuit"
)

func TestRunEmitsParseableBench(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, "irs208", true); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "irs208.bench")
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	c, err := circuit.ParseBench("irs208", f)
	if err != nil {
		t.Fatalf("emitted file does not parse: %v", err)
	}
	if c.NumInputs() != 19 {
		t.Fatalf("inputs = %d", c.NumInputs())
	}
}

func TestRunBadSuite(t *testing.T) {
	if err := run(t.TempDir(), "bogus", true); err == nil {
		t.Fatal("expected error")
	}
}
