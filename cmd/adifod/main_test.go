package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/eda-go/adifo"
	"github.com/eda-go/adifo/internal/obs"
)

// slowChainBench is a deep XOR chain whose grading spans enough
// 64-pattern blocks to interrupt mid-run.
func slowChainBench() string {
	var b strings.Builder
	const inputs, chain = 16, 400
	for i := 0; i < inputs; i++ {
		fmt.Fprintf(&b, "INPUT(i%d)\n", i)
	}
	fmt.Fprintf(&b, "OUTPUT(g%d)\n", chain-1)
	fmt.Fprintf(&b, "g0 = XOR(i0, i1)\n")
	for i := 1; i < chain; i++ {
		fmt.Fprintf(&b, "g%d = XOR(g%d, i%d)\n", i, i-1, i%inputs)
	}
	return b.String()
}

// TestServeGracefulShutdown drives serve through the full signal path:
// a running job is cancelled at its next block barrier, its stream
// ends with the terminal cancelled status, new submissions are
// rejected with the typed unavailable envelope, and serve returns
// within the grace deadline.
func TestServeGracefulShutdown(t *testing.T) {
	g := adifo.NewLocalGrader(adifo.GraderConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, signalArrives := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- serve(ctx, ln, g, 30*time.Second, obs.Nop()) }()

	rg := adifo.NewRemoteGrader("http://"+ln.Addr().String(), nil)
	id, err := rg.Submit(context.Background(), adifo.JobSpec{
		Bench: slowChainBench(), Name: "slow-chain", Mode: "nodrop",
		Patterns: adifo.PatternSpec{Random: &adifo.RandomSpec{N: 1 << 16, Seed: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Keep a stream open across the shutdown: it must end with the
	// terminal cancelled status, not an aborted connection.
	firstEvent := make(chan struct{})
	var once bool
	streamDone := make(chan adifo.JobStatus, 1)
	streamErr := make(chan error, 1)
	go func() {
		st, err := rg.Stream(context.Background(), id, func(adifo.ProgressEvent) {
			if !once {
				once = true
				close(firstEvent)
			}
		})
		streamErr <- err
		streamDone <- st
	}()
	select {
	case <-firstEvent:
	case <-time.After(30 * time.Second):
		t.Fatal("job never started streaming")
	}

	signalArrives()

	// Submissions are rejected with the typed envelope as soon as the
	// drain begins.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err := rg.Submit(context.Background(), adifo.JobSpec{
			Circuit: "c17", Mode: "nodrop",
			Patterns: adifo.PatternSpec{Exhaustive: true},
		})
		if err != nil {
			var ae *adifo.APIError
			if !errors.As(err, &ae) || ae.Code != "unavailable" {
				t.Fatalf("submit during drain: %v, want APIError unavailable", err)
			}
			if !errors.Is(err, adifo.ErrGraderDraining) {
				t.Fatalf("submit during drain: %v must match ErrGraderDraining", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("submissions still accepted after the signal")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := <-streamErr; err != nil {
		t.Fatalf("stream across shutdown: %v", err)
	}
	if st := <-streamDone; st.State != adifo.JobCancelled {
		t.Fatalf("stream ended with state %q, want %q", st.State, adifo.JobCancelled)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not return after drain")
	}
}

// TestServeStopsOnListenerError: serve returns the server error when
// the listener dies without a signal.
func TestServeStopsOnListenerError(t *testing.T) {
	g := adifo.NewLocalGrader(adifo.GraderConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- serve(context.Background(), ln, g, time.Second, obs.Nop()) }()
	time.Sleep(50 * time.Millisecond)
	ln.Close()
	select {
	case err := <-serveDone:
		if err == nil {
			t.Fatal("serve returned nil after listener death")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not notice the dead listener")
	}
}

// TestParseKinds validates the -kinds flag grammar and that a
// restricted server actually rejects foreign kinds with the typed
// envelope while serving its own.
func TestParseKinds(t *testing.T) {
	if ks, err := parseKinds(""); err != nil || ks != nil {
		t.Fatalf("parseKinds(\"\") = %v, %v", ks, err)
	}
	if ks, err := parseKinds("grade, atpg"); err != nil || len(ks) != 2 {
		t.Fatalf("parseKinds(\"grade, atpg\") = %v, %v", ks, err)
	}
	if _, err := parseKinds("grade,bogus"); err == nil {
		t.Fatal("parseKinds accepted an unknown kind")
	}

	g := adifo.NewLocalGrader(adifo.GraderConfig{Kinds: []string{adifo.KindADIOrder}})
	defer g.Close()
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	ctx := context.Background()
	_, err := adifo.NewRemoteGrader(srv.URL, nil).Submit(ctx, adifo.JobSpec{
		Circuit: "c17", Mode: "drop",
		Patterns: adifo.PatternSpec{Random: &adifo.RandomSpec{N: 16, Seed: 1}},
	})
	if !errors.Is(err, adifo.ErrUnsupportedKind) {
		t.Fatalf("grade submit to adi_order-only server = %v, want ErrUnsupportedKind", err)
	}
	or := adifo.NewRemoteOrderer(srv.URL, nil)
	id, err := or.Submit(ctx, adifo.JobSpec{
		Circuit:  "c17",
		Patterns: adifo.PatternSpec{Random: &adifo.RandomSpec{N: 64, Seed: 1}},
		Order:    &adifo.OrderSpec{Kind: "decr"},
	})
	if err != nil {
		t.Fatalf("adi_order submit on its own server: %v", err)
	}
	if st, err := or.Stream(ctx, id, nil); err != nil || st.State != adifo.JobDone {
		t.Fatalf("adi_order job ended %v, %v", st.State, err)
	}
}

func TestParseTenantLimits(t *testing.T) {
	if m, err := parseTenantLimits(""); err != nil || m != nil {
		t.Fatalf("parseTenantLimits(\"\") = %v, %v", m, err)
	}
	m, err := parseTenantLimits("alice=3:100, bob=1:10, carol=2")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]adifo.TenantLimit{
		"alice": {Weight: 3, MaxQueued: 100},
		"bob":   {Weight: 1, MaxQueued: 10},
		"carol": {Weight: 2},
	}
	if len(m) != len(want) {
		t.Fatalf("parsed %d tenants, want %d", len(m), len(want))
	}
	for name, tl := range want {
		if m[name] != tl {
			t.Errorf("tenant %s = %+v, want %+v", name, m[name], tl)
		}
	}
	for _, bad := range []string{
		"alice", "alice=", "alice=0", "alice=-1", "=3", "alice=3:0",
		"alice=3:x", "alice=3,alice=1",
	} {
		if _, err := parseTenantLimits(bad); err == nil {
			t.Errorf("parseTenantLimits(%q) accepted, want error", bad)
		}
	}
}
