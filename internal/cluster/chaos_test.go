package cluster

import (
	"bufio"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/eda-go/adifo/internal/service"
)

// stragglerProxy fronts a healthy backend and slows only the stream
// endpoint, leaving probes, submits, cancels and result fetches at
// full speed — so the backend looks perfectly healthy to the
// coordinator and only its shard work drags. Stream requests come in
// two straggler shapes:
//
//   - stall (odd-numbered streams, when stall > 0): no bytes at all
//     until p.stall — the attempt shows zero progress past the
//     straggler threshold, the shape stealing exists for;
//   - hold (every other stream): every line is forwarded immediately,
//     but after the backend closes the stream the proxy keeps the
//     connection open for p.hold — the attempt can never finish
//     before the hold expires, the shape speculation exists for.
//     (Sub-jobs routinely finish before their stream attaches, so a
//     per-line delay cannot fake a slow-running attempt; pinning the
//     EOF can.)
type stragglerProxy struct {
	backend string
	hold    time.Duration
	stall   time.Duration

	mu      sync.Mutex
	streams int
}

func (p *stragglerProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	url := p.backend + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	out, err := http.NewRequestWithContext(r.Context(), r.Method, url, r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	out.Header = r.Header.Clone()
	resp, err := http.DefaultClient.Do(out)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)

	if !strings.HasSuffix(r.URL.Path, "/stream") || resp.StatusCode != http.StatusOK {
		io.Copy(w, resp.Body) //nolint:errcheck // best-effort proxy
		return
	}
	p.mu.Lock()
	n := p.streams
	p.streams++
	p.mu.Unlock()
	fl, _ := w.(http.Flusher)
	fl.Flush()

	if p.stall > 0 && n%2 == 1 {
		select {
		case <-time.After(p.stall):
		case <-r.Context().Done():
			return
		}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		w.Write(sc.Bytes())   //nolint:errcheck
		w.Write([]byte{'\n'}) //nolint:errcheck
		fl.Flush()
	}
	// Backend finished; pin the stream open so the attempt stays
	// "running" from the coordinator's point of view.
	select {
	case <-time.After(p.hold):
	case <-r.Context().Done():
	}
}

// TestClusterStragglerChaos is the tail-latency acceptance test: a
// 3-backend cluster where one backend's streams stall or never close
// must finish well under the straggler-bound wall clock, by stealing
// the zero-progress shards and speculatively duplicating held ones —
// and the merged result must stay bit-identical to an unsharded run
// in all three drop modes.
func TestClusterStragglerChaos(t *testing.T) {
	fastURLs, _ := newBackends(t, 2)
	slowURL, _ := newBackend(t)
	proxy := &stragglerProxy{
		backend: slowURL.URL,
		hold:    2 * time.Second,
		stall:   30 * time.Second,
	}
	psrv := httptest.NewServer(proxy)
	t.Cleanup(psrv.Close)

	// Straggler last, so the synchronously-placed canary shard lands on
	// a fast backend and Submit never blocks on the proxy.
	urls := append(append([]string{}, fastURLs...), psrv.URL)
	co, err := New(urls, Options{
		Logger:         quiet,
		StragglerAfter: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	// Under the race detector simulation is ~10x slower; give the
	// straggler-rescue machinery a proportionally wider (but still
	// sub-stall) wall-clock budget.
	bound := 10 * time.Second
	if raceEnabled {
		bound = 25 * time.Second
	}
	for _, mode := range []string{"nodrop", "drop", "ndetect"} {
		spec := service.JobSpec{
			Bench: slowChainBench(), Name: "slow-chain", Mode: mode,
			Patterns: service.PatternSpec{Random: &service.RandomSpec{N: 2048, Seed: 11}},
		}
		if mode == "ndetect" {
			spec.N = 3
		}
		want := canonical(t, referenceResult(t, spec))
		start := time.Now()
		res := clusterGrade(t, co, spec)
		elapsed := time.Since(start)
		if got := canonical(t, res); got != want {
			t.Fatalf("mode %s: straggler run diverges from single-node run\n got: %s\nwant: %s", mode, got, want)
		}
		// The straggler alone would hold the job for proxy.stall (30s)
		// on its stalled shards; stealing and speculation must beat
		// that bound by a wide margin.
		if elapsed > bound {
			t.Fatalf("mode %s: straggler run took %s, want well under the %s stall bound", mode, elapsed, proxy.stall)
		}
	}

	exp := scrapeRegistry(t, co.Metrics())
	if got := seriesValue(t, exp, "adifo_cluster_shards_stolen_total"); got < 1 {
		t.Errorf("shards_stolen_total = %v, want >= 1 (stalled shards must be stolen)", got)
	}
	if got := seriesValue(t, exp, "adifo_cluster_shards_speculated_total"); got < 1 {
		t.Errorf("shards_speculated_total = %v, want >= 1 (lagging shards must be duplicated)", got)
	}
	// Whether a speculative duplicate wins here is a scheduling race
	// between two attempts of comparable speed; the deterministic win
	// (and its counter) is asserted in TestClusterSpeculationLoserCancelled.
}

// TestClusterSpeculationLoserCancelled pins down the speculation
// happy path: with per-backend in-flight capped at 1, stealing is
// structurally impossible (the steal gate needs a victim with >= 2
// in-flight), so the only rescue for a shard whose stream never
// closes is a speculative duplicate on the fast backend. The
// duplicate must win (the original cannot finish before the proxy's
// hold expires), the win counter must tick, and the losing attempt
// must be superseded and its sub-job reaped on the straggler.
func TestClusterSpeculationLoserCancelled(t *testing.T) {
	fastURLs, _ := newBackends(t, 1)
	slowURL, slowSvc := newBackend(t)
	// The hold must outlast the fast backend grading every other shard
	// serially plus one duplicate re-run, so the duplicate always wins.
	hold := 6 * time.Second
	if raceEnabled {
		hold = 30 * time.Second
	}
	proxy := &stragglerProxy{
		backend: slowURL.URL,
		hold:    hold,
	}
	psrv := httptest.NewServer(proxy)
	t.Cleanup(psrv.Close)

	co, err := New([]string{fastURLs[0], psrv.URL}, Options{
		Logger:                quiet,
		StragglerAfter:        time.Second,
		ShardsPerBackend:      2,
		MaxInFlightPerBackend: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	spec := service.JobSpec{
		Bench: slowChainBench(), Name: "slow-chain", Mode: "nodrop",
		Patterns: service.PatternSpec{Random: &service.RandomSpec{N: 1024, Seed: 3}},
	}
	want := canonical(t, referenceResult(t, spec))
	if got := canonical(t, clusterGrade(t, co, spec)); got != want {
		t.Fatalf("straggler run diverges\n got: %s\nwant: %s", got, want)
	}

	exp := scrapeRegistry(t, co.Metrics())
	if got := seriesValue(t, exp, "adifo_cluster_shards_speculated_total"); got < 1 {
		t.Errorf("shards_speculated_total = %v, want >= 1", got)
	}
	if got := seriesValue(t, exp, "adifo_cluster_speculation_wins_total"); got < 1 {
		t.Errorf("speculation_wins_total = %v, want >= 1 (the held original cannot beat a fast duplicate)", got)
	}

	// Every sub-job on the straggler must reach a terminal state — the
	// cancel fan-out for superseded attempts reaps the losers. (Jobs
	// that finished on the backend before the cancel landed count as
	// done; nothing may still be running.)
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := slowSvc.Stats()
		if st.JobsRunning == 0 && st.JobsQueued == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("straggler still has %d running / %d queued sub-jobs after the cluster job finished",
				st.JobsRunning, st.JobsQueued)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
