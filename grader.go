package adifo

import (
	"context"
	"net/http"

	"github.com/eda-go/adifo/internal/service"
	"github.com/eda-go/adifo/internal/service/client"
)

// Wire types of the v1 job API, shared verbatim between the in-process
// engine, the adifod HTTP server and the remote client, so a result is
// structurally identical wherever the grading ran.
type (
	// JobSpec is a fault-grading request: a circuit (named or inline
	// .bench text), a pattern spec, and a dropping policy. Mode is
	// required — the wire contract has no silent default.
	JobSpec = service.JobSpec
	// PatternSpec selects the vector set: exactly one of Random,
	// Exhaustive and Vectors.
	PatternSpec = service.PatternSpec
	// RandomSpec requests N seeded random vectors, reproducible across
	// runs and hosts.
	RandomSpec = service.RandomSpec
	// JobStatus is the pollable view of a job.
	JobStatus = service.JobStatus
	// JobResult is the full grading outcome of a finished job.
	JobResult = service.JobResult
	// FaultResult is the per-fault slice of a JobResult.
	FaultResult = service.FaultResult
	// ProgressEvent is one entry of a job's streaming progress feed.
	ProgressEvent = service.ProgressEvent
	// GraderStats is the service-level counter snapshot, including the
	// registry cache hit/miss counters.
	GraderStats = service.Stats
	// GraderConfig sizes a local grader; zero values select sensible
	// defaults.
	GraderConfig = service.Config
	// APIError is the typed error of the v1 wire contract
	// ({"error": {"code": ..., "message": ...}}); RemoteGrader calls
	// surface it via errors.As.
	APIError = service.APIError
)

// Job states. Queued and running jobs may still change state; done,
// failed and cancelled are terminal.
const (
	JobQueued    = service.StateQueued
	JobRunning   = service.StateRunning
	JobDone      = service.StateDone
	JobFailed    = service.StateFailed
	JobCancelled = service.StateCancelled
)

// Errors returned by Grader methods (LocalGrader returns them
// directly; RemoteGrader returns *APIError with the matching code).
var (
	ErrJobNotFound  = service.ErrNotFound
	ErrJobNotDone   = service.ErrNotDone
	ErrJobCancelled = service.ErrCancelled
	ErrJobFinished  = service.ErrFinished
)

// Grader is the fault-grading engine behind one interface: submit a
// job, poll or stream it, fetch the result, cancel it. NewLocalGrader
// runs jobs in-process; NewRemoteGrader talks to a running adifod
// server. Programs written against Grader switch between embedded and
// remote grading by swapping a constructor.
type Grader interface {
	// Submit validates spec, enqueues a job and returns its id; the
	// job runs asynchronously on a bounded pool.
	Submit(ctx context.Context, spec JobSpec) (string, error)
	// Status returns the current status of a job.
	Status(ctx context.Context, id string) (JobStatus, error)
	// Result returns the grading outcome of a finished job
	// (ErrJobNotDone while it runs, ErrJobCancelled after a cancel,
	// the job's failure for failed jobs).
	Result(ctx context.Context, id string) (*JobResult, error)
	// Cancel aborts a job: a queued job transitions to cancelled
	// immediately, a running one at its next 64-pattern block barrier.
	// Idempotent on cancelled jobs; ErrJobFinished after completion.
	Cancel(ctx context.Context, id string) (JobStatus, error)
	// Stream delivers per-block progress events until the job reaches
	// a terminal state and returns the final status.
	Stream(ctx context.Context, id string, fn func(ProgressEvent)) (JobStatus, error)
	// Stats returns the engine's counters.
	Stats(ctx context.Context) (GraderStats, error)
	// Close releases the grader; a local grader waits for submitted
	// jobs to finish first.
	Close() error
}

// Interface conformance.
var (
	_ Grader = (*LocalGrader)(nil)
	_ Grader = (*RemoteGrader)(nil)
)

// LocalGrader runs grading jobs in-process: a registry caches parsed
// circuits, collapsed fault lists and good-machine simulations, and a
// bounded pool runs jobs through the sharded simulator. It is the
// engine adifod serves; Handler exposes it over HTTP.
type LocalGrader struct {
	svc *service.Service
}

// NewLocalGrader returns an in-process grading engine.
func NewLocalGrader(cfg GraderConfig) *LocalGrader {
	return &LocalGrader{svc: service.New(cfg)}
}

// Handler returns the engine's v1 HTTP+JSON API, the surface cmd/adifod
// listens on and RemoteGrader talks to.
func (g *LocalGrader) Handler() http.Handler { return g.svc.Handler() }

// Submit implements Grader.
func (g *LocalGrader) Submit(_ context.Context, spec JobSpec) (string, error) {
	return g.svc.Submit(spec)
}

// Status implements Grader.
func (g *LocalGrader) Status(_ context.Context, id string) (JobStatus, error) {
	st, ok := g.svc.Status(id)
	if !ok {
		return JobStatus{}, ErrJobNotFound
	}
	return st, nil
}

// Result implements Grader.
func (g *LocalGrader) Result(_ context.Context, id string) (*JobResult, error) {
	return g.svc.Result(id)
}

// Cancel implements Grader.
func (g *LocalGrader) Cancel(_ context.Context, id string) (JobStatus, error) {
	return g.svc.Cancel(id)
}

// Stream implements Grader: it subscribes to the job's progress feed
// and calls fn for every event until the job reaches a terminal state,
// then returns the final status. ctx aborts the subscription (not the
// job — use Cancel for that).
func (g *LocalGrader) Stream(ctx context.Context, id string, fn func(ProgressEvent)) (JobStatus, error) {
	ch, cancel, ok := g.svc.Subscribe(id)
	if !ok {
		return JobStatus{}, ErrJobNotFound
	}
	defer cancel()
	for {
		select {
		case <-ctx.Done():
			return JobStatus{}, ctx.Err()
		case ev, open := <-ch:
			if !open {
				return g.Status(ctx, id)
			}
			if fn != nil {
				fn(ev)
			}
		}
	}
}

// Stats implements Grader.
func (g *LocalGrader) Stats(_ context.Context) (GraderStats, error) {
	return g.svc.Stats(), nil
}

// Close implements Grader: it waits for all submitted jobs to finish
// (cancel them first for a fast shutdown).
func (g *LocalGrader) Close() error {
	g.svc.Close()
	return nil
}

// RemoteGrader grades on a running adifod server over the v1 HTTP+JSON
// API. Non-2xx responses surface as *APIError.
type RemoteGrader struct {
	cl *client.Client
}

// NewRemoteGrader returns a grader for the adifod server at base (e.g.
// "http://localhost:8417"). httpClient may be nil for
// http.DefaultClient.
func NewRemoteGrader(base string, httpClient *http.Client) *RemoteGrader {
	return &RemoteGrader{cl: client.New(base, httpClient)}
}

// Submit implements Grader.
func (g *RemoteGrader) Submit(ctx context.Context, spec JobSpec) (string, error) {
	return g.cl.Submit(ctx, spec)
}

// Status implements Grader.
func (g *RemoteGrader) Status(ctx context.Context, id string) (JobStatus, error) {
	return g.cl.Status(ctx, id)
}

// Result implements Grader.
func (g *RemoteGrader) Result(ctx context.Context, id string) (*JobResult, error) {
	return g.cl.Result(ctx, id)
}

// Cancel implements Grader.
func (g *RemoteGrader) Cancel(ctx context.Context, id string) (JobStatus, error) {
	return g.cl.Cancel(ctx, id)
}

// Stream implements Grader.
func (g *RemoteGrader) Stream(ctx context.Context, id string, fn func(ProgressEvent)) (JobStatus, error) {
	return g.cl.Stream(ctx, id, fn)
}

// Stats implements Grader.
func (g *RemoteGrader) Stats(ctx context.Context) (GraderStats, error) {
	return g.cl.Stats(ctx)
}

// Close implements Grader (a remote grader holds no resources).
func (g *RemoteGrader) Close() error { return nil }
