package service

import (
	"errors"
	"fmt"
)

// ErrOverloaded is returned by Submit when admission control rejects a
// job: the global queue bound or the tenant's own queue bound is
// reached. On the wire it is the typed "overloaded" envelope code with
// HTTP 429 and a Retry-After header — callers back off and resubmit
// instead of growing an unbounded queue.
var ErrOverloaded = errors.New("service: overloaded, queue is full")

// TenantLimit configures one tenant's slice of the service.
type TenantLimit struct {
	// Weight is the tenant's scheduling weight: a tenant with weight 3
	// is dispatched three jobs for every one of a weight-1 tenant when
	// both have work queued (default 1).
	Weight int
	// MaxQueued bounds the tenant's queued (not yet running) jobs;
	// submits beyond it are rejected with ErrOverloaded. 0 means no
	// per-tenant bound — only the global Config.MaxQueuedJobs applies.
	MaxQueued int
}

// tenantQueue is one tenant's FIFO plus its stride-scheduling state.
type tenantQueue struct {
	name  string
	queue []*job
	// pass is the tenant's virtual time: each dispatch advances it by
	// stride = 1/weight, so the dispatcher's pick-minimum-pass rule
	// interleaves tenants in proportion to their weights.
	pass   float64
	stride float64
	limit  int
	// idleSince is the scheduler event count at which the queue last
	// became empty; meaningful only while it is empty. It validates
	// idle marks: a tenant that re-entered and idled again carries a
	// newer mark, and the stale one is skipped.
	idleSince uint64
}

// pruneAfter is how many scheduler events (dispatches and removals) a
// tenant queue may sit empty before the scheduler drops it. The window
// keeps recent tenants' stride state intact — a tenant that was just
// dispatched re-enters at pass = base + stride, not at base, exactly
// as if it had never left — while a tenant that stays idle for a full
// window has long since been overtaken by base and re-enters at base
// either way, so dropping its queue changes nothing observable.
const pruneAfter = 64

// idleMark remembers when one tenant's queue went empty, in event
// order, so pruning pops marks FIFO instead of scanning the map.
type idleMark struct {
	tenant string
	since  uint64
}

// scheduler is the per-tenant weighted-fair queue set, replacing the
// single FIFO the engine started with. All methods are called with the
// owning Service's mu held.
type scheduler struct {
	tenants map[string]*tenantQueue
	queued  int
	// base is the pass of the most recent dispatch; tenants entering
	// (or re-entering after idling) start here, so an idle tenant
	// cannot bank virtual time and then monopolize the pool.
	base float64
	// events counts pops and removals; idle-tenant pruning is measured
	// in these events so a quiet server prunes nothing (nothing grows)
	// and a busy one prunes promptly.
	events uint64
	// idle lists empty tenant queues oldest-first; prune consumes it.
	idle []idleMark
	// onPrune, when set, observes each pruned tenant name — the
	// service deletes the tenant's queue-depth gauge label so metric
	// cardinality tracks live tenants, not all tenants ever seen.
	onPrune func(tenant string)
}

func newScheduler() *scheduler {
	return &scheduler{tenants: make(map[string]*tenantQueue)}
}

// markIdle records that tq just became empty; prune drops it if it is
// still empty a full window later.
func (sc *scheduler) markIdle(tq *tenantQueue) {
	tq.idleSince = sc.events
	sc.idle = append(sc.idle, idleMark{tenant: tq.name, since: sc.events})
}

// prune drops tenant queues that have sat empty for a full window,
// releasing the per-tenant map entry and (via onPrune) the metric
// label. The default tenant ("") is exempt: its gauge label is
// pre-created at wiring time and part of the stable exposition.
func (sc *scheduler) prune() {
	for len(sc.idle) > 0 && sc.events-sc.idle[0].since >= pruneAfter {
		m := sc.idle[0]
		sc.idle[0] = idleMark{}
		sc.idle = sc.idle[1:]
		tq, ok := sc.tenants[m.tenant]
		if !ok || len(tq.queue) > 0 || tq.idleSince != m.since || m.tenant == "" {
			continue
		}
		delete(sc.tenants, m.tenant)
		if sc.onPrune != nil {
			sc.onPrune(m.tenant)
		}
	}
	if len(sc.idle) == 0 {
		sc.idle = nil
	}
}

// tenantFor returns (creating if needed) tenant's queue, configured
// from limits.
func (sc *scheduler) tenantFor(tenant string, limits map[string]TenantLimit) *tenantQueue {
	tq, ok := sc.tenants[tenant]
	if !ok {
		tl := limits[tenant]
		w := tl.Weight
		if w <= 0 {
			w = 1
		}
		tq = &tenantQueue{name: tenant, pass: sc.base, stride: 1 / float64(w), limit: tl.MaxQueued}
		sc.tenants[tenant] = tq
	}
	return tq
}

// enqueue appends j to its tenant's queue.
func (sc *scheduler) enqueue(tq *tenantQueue, j *job) {
	if len(tq.queue) == 0 && tq.pass < sc.base {
		tq.pass = sc.base
	}
	tq.queue = append(tq.queue, j)
	sc.queued++
}

// pop dispatches the next job: the front of the non-empty tenant queue
// with the smallest pass. Returns nil when nothing is queued.
func (sc *scheduler) pop() *job {
	var best *tenantQueue
	for _, tq := range sc.tenants {
		if len(tq.queue) == 0 {
			continue
		}
		if best == nil || tq.pass < best.pass ||
			(tq.pass == best.pass && tq.name < best.name) {
			best = tq
		}
	}
	if best == nil {
		return nil
	}
	j := best.queue[0]
	best.queue[0] = nil
	best.queue = best.queue[1:]
	sc.base = best.pass
	best.pass += best.stride
	sc.queued--
	sc.events++
	if len(best.queue) == 0 {
		sc.markIdle(best)
	}
	sc.prune()
	return j
}

// remove dequeues j if it is still queued, reporting whether it was.
// The caller that wins the removal owns j's terminal transition.
func (sc *scheduler) remove(j *job) bool {
	tq, ok := sc.tenants[j.tenant]
	if !ok {
		return false
	}
	for i, q := range tq.queue {
		if q == j {
			// Shift-and-truncate, nilling the vacated tail slot like
			// pop does: the backing array must not pin the removed
			// job (its spec and result bytes) until it happens to be
			// overwritten.
			copy(tq.queue[i:], tq.queue[i+1:])
			tq.queue[len(tq.queue)-1] = nil
			tq.queue = tq.queue[:len(tq.queue)-1]
			sc.queued--
			sc.events++
			if len(tq.queue) == 0 {
				sc.markIdle(tq)
			}
			sc.prune()
			return true
		}
	}
	return false
}

// drainAll empties every tenant queue and returns the dequeued jobs in
// tenant-then-FIFO order; Drain cancels them. A draining server has no
// fairness left to preserve, so every tenant's stride state (and gauge
// label) is dropped immediately instead of waiting out the idle
// window.
func (sc *scheduler) drainAll() []*job {
	var out []*job
	for _, tq := range sc.tenants {
		out = append(out, tq.queue...)
		tq.queue = nil
	}
	sc.queued = 0
	for name := range sc.tenants {
		if name == "" {
			continue
		}
		delete(sc.tenants, name)
		if sc.onPrune != nil {
			sc.onPrune(name)
		}
	}
	sc.idle = nil
	return out
}

// depth returns tenant's queued-job count.
func (sc *scheduler) depth(tenant string) int {
	if tq, ok := sc.tenants[tenant]; ok {
		return len(tq.queue)
	}
	return 0
}

// tenantLabel renders a tenant name as its metric label value: the
// empty (unset) tenant reads "default" on dashboards.
func tenantLabel(tenant string) string {
	if tenant == "" {
		return "default"
	}
	return tenant
}

// validateTenancy checks the multi-tenant spec fields at submit time.
// Both fields are free-form client identifiers; the bounds keep them
// usable as journal payloads and metric labels.
func validateTenancy(spec JobSpec) error {
	if len(spec.Tenant) > 64 {
		return fmt.Errorf("tenant longer than 64 bytes")
	}
	if len(spec.IdempotencyKey) > 256 {
		return fmt.Errorf("idempotency_key longer than 256 bytes")
	}
	for _, field := range []struct{ name, v string }{
		{"tenant", spec.Tenant}, {"idempotency_key", spec.IdempotencyKey},
	} {
		for _, c := range field.v {
			if c < 0x20 || c == 0x7f {
				return fmt.Errorf("%s contains a control character", field.name)
			}
		}
	}
	return nil
}

// idemCacheKey builds the dedupe map key: idempotency keys are scoped
// per tenant. Empty when the spec carries no key.
func idemCacheKey(tenant, key string) string {
	if key == "" {
		return ""
	}
	return tenant + "\x00" + key
}
