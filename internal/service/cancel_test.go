package service

import (
	"errors"
	"fmt"
	"github.com/eda-go/adifo/internal/obs"
	"strings"
	"testing"
	"time"
)

// slowBench builds an XOR-chain netlist deep enough that grading it
// against many vectors takes long enough to cancel mid-run reliably
// (every fault's cone spans the rest of the chain, so propagation cost
// grows with depth), while staying cheap to parse.
func slowBench(inputs, chain int) string {
	var b strings.Builder
	for i := 0; i < inputs; i++ {
		fmt.Fprintf(&b, "INPUT(i%d)\n", i)
	}
	fmt.Fprintf(&b, "OUTPUT(g%d)\n", chain-1)
	fmt.Fprintf(&b, "g0 = XOR(i0, i1)\n")
	for i := 1; i < chain; i++ {
		fmt.Fprintf(&b, "g%d = XOR(g%d, i%d)\n", i, i-1, i%inputs)
	}
	return b.String()
}

// slowSpec is a grading job that runs for a macroscopic time (hundreds
// of 64-pattern blocks over a deep circuit).
func slowSpec() JobSpec {
	return JobSpec{
		Bench:    slowBench(16, 400),
		Name:     "slow-chain",
		Patterns: PatternSpec{Random: &RandomSpec{N: 1 << 16, Seed: 1}},
		Mode:     "nodrop",
	}
}

func waitState(t *testing.T, s *Service, id, want string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, ok := s.Status(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st.State == want {
			return st
		}
		if terminal(st.State) {
			t.Fatalf("job %s reached %s (error %q), want %s", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s waiting for %s", id, st.State, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCancelRunningJob cancels a job mid-simulation and checks it
// reaches the cancelled terminal state with its subscribers closed,
// having simulated only a prefix of the vectors.
func TestCancelRunningJob(t *testing.T) {
	s := New(Config{Logger: obs.Nop()})
	defer s.Close()
	id, err := s.Submit(slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	ch, unsub, ok := s.Subscribe(id)
	if !ok {
		t.Fatal("subscribe failed")
	}
	defer unsub()
	// Wait for the first block barrier so the job is provably running.
	if _, open := <-ch; !open {
		t.Fatal("job finished before the first progress event; slowSpec is not slow enough")
	}
	if _, err := s.Cancel(id); err != nil {
		t.Fatalf("cancel running job: %v", err)
	}
	// The subscriber channel must close (terminal transition).
	deadline := time.After(30 * time.Second)
	for {
		select {
		case _, open := <-ch:
			if !open {
				goto closed
			}
		case <-deadline:
			t.Fatal("subscriber channel not closed after cancel")
		}
	}
closed:
	st := waitState(t, s, id, StateCancelled)
	if st.VectorsUsed >= 1<<16 {
		t.Fatalf("cancelled job simulated all %d vectors", st.VectorsUsed)
	}
	if _, err := s.Result(id); !errors.Is(err, ErrCancelled) {
		t.Fatalf("Result on cancelled job = %v, want ErrCancelled", err)
	}
	// Cancel is idempotent on a cancelled job...
	if st, err := s.Cancel(id); err != nil || st.State != StateCancelled {
		t.Fatalf("repeat cancel: %+v, %v", st, err)
	}
	stats := s.Stats()
	if stats.JobsCancelled != 1 || stats.JobsRunning != 0 {
		t.Fatalf("stats after cancel: %+v", stats)
	}
}

// TestCancelQueuedJob fills the single-slot pool with a long job and
// cancels a queued one: it must reach cancelled immediately, without
// ever running, and the pool slot must go to the next submission.
func TestCancelQueuedJob(t *testing.T) {
	s := New(Config{Logger: obs.Nop(), MaxConcurrentJobs: 1})
	defer s.Close()
	blocker, err := s.Submit(slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, blocker, StateRunning)
	queued, err := s.Submit(JobSpec{
		Circuit:  "c17",
		Patterns: PatternSpec{Exhaustive: true},
		Mode:     "nodrop",
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Cancel(queued)
	if err != nil {
		t.Fatalf("cancel queued job: %v", err)
	}
	if st.State != StateCancelled {
		t.Fatalf("queued job state after cancel = %s, want cancelled immediately", st.State)
	}
	if st.VectorsUsed != 0 || st.BlocksDone != 0 {
		t.Fatalf("cancelled-while-queued job did work: %+v", st)
	}
	// Unblock the pool and check the cancelled job stays cancelled
	// (run() must not resurrect it when it reaches the slot).
	if _, err := s.Cancel(blocker); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, blocker, StateCancelled)
	s.Close()
	if st, _ := s.Status(queued); st.State != StateCancelled {
		t.Fatalf("queued job resurrected to %s", st.State)
	}
	stats := s.Stats()
	if stats.JobsCancelled != 2 || stats.JobsDone != 0 {
		t.Fatalf("stats: %+v", stats)
	}
}

// TestRegistryConsistentAfterCancelledBuild cancels a job whose
// circuit entry was (or is being) built and checks the registry still
// serves the entry to the next identical submission, which completes.
func TestRegistryConsistentAfterCancelledBuild(t *testing.T) {
	s := New(Config{Logger: obs.Nop()})
	defer s.Close()
	spec := slowSpec()
	first, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, first, StateRunning)
	if _, err := s.Cancel(first); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, first, StateCancelled)

	// Same netlist, tiny pattern set: must hit the circuit cache and
	// finish clean.
	spec.Patterns = PatternSpec{Random: &RandomSpec{N: 64, Seed: 2}}
	second, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, second, StateDone)
	st := s.Stats()
	if st.Registry.CircuitMisses != 1 || st.Registry.CircuitHits != 1 {
		t.Fatalf("registry after cancelled build: %+v, want 1 miss / 1 hit", st.Registry)
	}
}

func TestCancelErrors(t *testing.T) {
	s := New(Config{Logger: obs.Nop()})
	defer s.Close()
	if _, err := s.Cancel("j999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel unknown job = %v, want ErrNotFound", err)
	}
	id, err := s.Submit(JobSpec{
		Circuit:  "c17",
		Patterns: PatternSpec{Exhaustive: true},
		Mode:     "nodrop",
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, id, StateDone)
	if _, err := s.Cancel(id); !errors.Is(err, ErrFinished) {
		t.Fatalf("cancel finished job = %v, want ErrFinished", err)
	}
}

func TestSubmitRejectsEmptyMode(t *testing.T) {
	s := New(Config{Logger: obs.Nop()})
	defer s.Close()
	_, err := s.Submit(JobSpec{
		Circuit:  "c17",
		Patterns: PatternSpec{Exhaustive: true},
	})
	if err == nil {
		t.Fatal("empty mode must be rejected on the wire")
	}
}
