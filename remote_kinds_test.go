package adifo_test

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"github.com/eda-go/adifo"
)

// vectorBits renders a test vector the way the wire does.
func vectorBits(v adifo.Vector) string {
	b := make([]byte, len(v))
	for i, bit := range v {
		if bit != 0 {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

// TestRemoteKindsBitIdentical is the acceptance check of the
// multi-kind engine: for two circuits and all six order kinds, a
// remote adi_order job returns exactly the order the in-process
// library derives, and a remote atpg job returns a bit-identical test
// set to the in-process ComputeADI + GenerateTests flow — end to end
// over a real HTTP server.
func TestRemoteKindsBitIdentical(t *testing.T) {
	ctx := context.Background()
	g := adifo.NewLocalGrader(adifo.GraderConfig{})
	defer g.Close()
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	const uSize, uSeed, fillSeed = 96, 7, adifo.DefaultFillSeed

	for _, name := range []string{"c17", "lion"} {
		c, err := adifo.LoadCircuit(name)
		if err != nil {
			t.Fatal(err)
		}
		fl := adifo.Faults(c)
		u := adifo.RandomPatterns(c.NumInputs(), uSize, uSeed)
		ix, err := adifo.ComputeADI(ctx, fl, u)
		if err != nil {
			t.Fatal(err)
		}
		spec := adifo.JobSpec{
			Circuit:  name,
			Patterns: adifo.PatternSpec{Random: &adifo.RandomSpec{N: uSize, Seed: uSeed}},
		}

		for _, kind := range adifo.AllOrders() {
			spec := spec
			spec.Order = &adifo.OrderSpec{Kind: kind.String()}

			// adi_order: remote order == library order, exactly.
			orderer := adifo.NewRemoteOrderer(srv.URL, nil)
			oid, err := orderer.Submit(ctx, spec)
			if err != nil {
				t.Fatalf("%s/%v: order submit: %v", name, kind, err)
			}
			if st, err := orderer.Stream(ctx, oid, nil); err != nil || st.State != adifo.JobDone {
				t.Fatalf("%s/%v: order job ended %v, %v", name, kind, st.State, err)
			}
			ores, err := orderer.Result(ctx, oid)
			if err != nil {
				t.Fatalf("%s/%v: order result: %v", name, kind, err)
			}
			wantPerm := ix.Order(kind)
			if !reflect.DeepEqual(ores.Perm, wantPerm) {
				t.Errorf("%s/%v: remote order diverges from in-process order", name, kind)
			}
			if !reflect.DeepEqual(ores.ADI, ix.ADI) {
				t.Errorf("%s/%v: remote ADI values diverge", name, kind)
			}

			// atpg: remote test set == library test set, bit for bit.
			spec.Gen = &adifo.GenSpec{FillSeed: fillSeed}
			want, err := adifo.GenerateTests(ctx, fl, wantPerm, adifo.WithFillSeed(fillSeed))
			if err != nil {
				t.Fatal(err)
			}
			gen := adifo.NewRemoteGenerator(srv.URL, nil)
			gid, err := gen.Submit(ctx, spec)
			if err != nil {
				t.Fatalf("%s/%v: atpg submit: %v", name, kind, err)
			}
			if st, err := gen.Stream(ctx, gid, nil); err != nil || st.State != adifo.JobDone {
				t.Fatalf("%s/%v: atpg job ended %v, %v", name, kind, st.State, err)
			}
			gres, err := gen.Result(ctx, gid)
			if err != nil {
				t.Fatalf("%s/%v: atpg result: %v", name, kind, err)
			}
			if len(gres.Tests) != len(want.Tests) {
				t.Fatalf("%s/%v: remote generated %d tests, in-process %d",
					name, kind, len(gres.Tests), len(want.Tests))
			}
			for i, v := range want.Tests {
				if gres.Tests[i] != vectorBits(v) {
					t.Fatalf("%s/%v: test %d = %s remote, %s in-process",
						name, kind, i, gres.Tests[i], vectorBits(v))
				}
			}
			if !reflect.DeepEqual(gres.TargetOf, want.TargetOf) ||
				!reflect.DeepEqual(gres.Curve, want.Curve) {
				t.Errorf("%s/%v: targets/curve diverge from in-process run", name, kind)
			}
			if gres.AtpgCalls != want.AtpgCalls || gres.Backtracks != want.Backtracks {
				t.Errorf("%s/%v: effort diverges: remote (%d, %d), in-process (%d, %d)",
					name, kind, gres.AtpgCalls, gres.Backtracks, want.AtpgCalls, want.Backtracks)
			}
			if gres.AVE != want.AVE() || gres.Detected != want.Detected() {
				t.Errorf("%s/%v: AVE/detected diverge", name, kind)
			}
		}
	}
}

// TestRemoteKindProgress: a remote atpg job streams both simulation
// blocks and ATPG targets; the event kinds are labelled.
func TestRemoteKindProgress(t *testing.T) {
	ctx := context.Background()
	g := adifo.NewLocalGrader(adifo.GraderConfig{})
	defer g.Close()
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	// A deep XOR chain: enough faults and blocks that the job is still
	// running when the stream subscribes (c17 finishes before the HTTP
	// round trip).
	var b strings.Builder
	const inputs, chain = 12, 200
	for i := 0; i < inputs; i++ {
		fmt.Fprintf(&b, "INPUT(i%d)\n", i)
	}
	fmt.Fprintf(&b, "OUTPUT(g%d)\n", chain-1)
	fmt.Fprintf(&b, "g0 = XOR(i0, i1)\n")
	for i := 1; i < chain; i++ {
		fmt.Fprintf(&b, "g%d = XOR(g%d, i%d)\n", i, i-1, i%inputs)
	}

	gen := adifo.NewRemoteGenerator(srv.URL, nil)
	id, err := gen.Submit(ctx, adifo.JobSpec{
		Bench:    b.String(),
		Name:     "xor-chain",
		Patterns: adifo.PatternSpec{Random: &adifo.RandomSpec{N: 2048, Seed: 5}},
		Order:    &adifo.OrderSpec{Kind: "dynm"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var targetEvents int
	st, err := gen.Stream(ctx, id, func(ev adifo.ProgressEvent) {
		if ev.Kind != adifo.KindAtpg {
			t.Errorf("event kind %q, want %q", ev.Kind, adifo.KindAtpg)
		}
		if ev.Targets > 0 {
			targetEvents++
		}
	})
	if err != nil || st.State != adifo.JobDone {
		t.Fatalf("stream ended %v, %v", st.State, err)
	}
	if st.Kind != adifo.KindAtpg || st.Tests == 0 {
		t.Fatalf("final status kind=%q tests=%d", st.Kind, st.Tests)
	}
	if targetEvents == 0 {
		t.Error("saw no per-target progress events")
	}
}

// TestGraderRejectsOtherKinds: the Grader front ends submit grade jobs
// only; the kind-typed front ends refuse foreign kinds too.
func TestGraderRejectsOtherKinds(t *testing.T) {
	ctx := context.Background()
	g := adifo.NewLocalGrader(adifo.GraderConfig{})
	defer g.Close()
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	spec := adifo.JobSpec{
		Kind:     adifo.KindAtpg,
		Circuit:  "c17",
		Patterns: adifo.PatternSpec{Random: &adifo.RandomSpec{N: 8, Seed: 1}},
		Order:    &adifo.OrderSpec{Kind: "dynm"},
	}
	if _, err := g.Submit(ctx, spec); err == nil {
		t.Error("LocalGrader.Submit accepted an atpg spec")
	}
	if _, err := adifo.NewRemoteGrader(srv.URL, nil).Submit(ctx, spec); err == nil {
		t.Error("RemoteGrader.Submit accepted an atpg spec")
	}
	spec.Kind = adifo.KindGrade
	spec.Mode = "drop"
	spec.Order = nil
	if _, err := adifo.NewRemoteOrderer(srv.URL, nil).Submit(ctx, spec); err == nil {
		t.Error("RemoteOrderer.Submit accepted a grade spec")
	}
	if _, err := adifo.NewRemoteGenerator(srv.URL, nil).Submit(ctx, spec); err == nil {
		t.Error("RemoteGenerator.Submit accepted a grade spec")
	}
}

// TestUnsupportedKindOnTheWire: an unknown kind travels back as the
// typed unsupported_kind envelope and maps onto ErrUnsupportedKind.
func TestUnsupportedKindOnTheWire(t *testing.T) {
	ctx := context.Background()
	g := adifo.NewLocalGrader(adifo.GraderConfig{})
	defer g.Close()
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	// Drive the raw client via a generator whose kind check is
	// bypassed by setting the kind explicitly... the grader front ends
	// all guard, so talk to the wire through the spec's kind field on
	// a matching submitter being impossible — use the grade path with
	// a server restricted to atpg instead.
	restricted := adifo.NewLocalGrader(adifo.GraderConfig{Kinds: []string{adifo.KindAtpg}})
	defer restricted.Close()
	rsrv := httptest.NewServer(restricted.Handler())
	defer rsrv.Close()

	_, err := adifo.NewRemoteGrader(rsrv.URL, nil).Submit(ctx, adifo.JobSpec{
		Circuit:  "c17",
		Mode:     "drop",
		Patterns: adifo.PatternSpec{Random: &adifo.RandomSpec{N: 8, Seed: 1}},
	})
	if !errors.Is(err, adifo.ErrUnsupportedKind) {
		t.Fatalf("grade submit to atpg-only server = %v, want ErrUnsupportedKind", err)
	}
	var apiErr *adifo.APIError
	if !errors.As(err, &apiErr) || apiErr.Code != "unsupported_kind" {
		t.Fatalf("error code = %v, want unsupported_kind envelope", err)
	}
}
