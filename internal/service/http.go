package service

import (
	"encoding/json"
	"errors"
	"net/http"

	"github.com/eda-go/adifo/internal/obs/trace"
)

// Error codes of the v1 wire contract. Every non-2xx response carries
// exactly one of them in the error envelope.
const (
	CodeInvalidRequest  = "invalid_request"  // malformed JSON or rejected spec
	CodeNotFound        = "not_found"        // unknown job id
	CodeNotDone         = "not_done"         // result requested before the job finished
	CodeCancelled       = "cancelled"        // job was cancelled, it has no result
	CodeFinished        = "finished"         // cancel requested after the job finished
	CodeJobFailed       = "job_failed"       // the job itself failed
	CodeUnavailable     = "unavailable"      // server draining, not accepting jobs
	CodeUnsupportedKind = "unsupported_kind" // job kind unknown or disabled on this server
	CodeOverloaded      = "overloaded"       // admission control rejected the submit; retry after backoff
)

// APIError is the typed error of the v1 wire contract. Handlers send
// it as {"error": {"code": ..., "message": ...}} and the client
// package decodes it back, so callers can switch on Code with
// errors.As instead of string-matching messages.
type APIError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfter is the Retry-After header's value in seconds on
	// overloaded responses, 0 elsewhere. Transport metadata, not part
	// of the envelope body.
	RetryAfter int `json:"-"`
}

// Error implements the error interface.
func (e *APIError) Error() string { return e.Code + ": " + e.Message }

// Is maps wire codes back to the package's sentinel errors, so
// errors.Is(err, ErrNotFound) etc. hold for a decoded remote error
// exactly as they do for a local call — the Grader interface's error
// contract is implementation-independent.
func (e *APIError) Is(target error) bool {
	switch target {
	case ErrNotFound:
		return e.Code == CodeNotFound
	case ErrNotDone:
		return e.Code == CodeNotDone
	case ErrCancelled:
		return e.Code == CodeCancelled
	case ErrFinished:
		return e.Code == CodeFinished
	case ErrDraining:
		return e.Code == CodeUnavailable
	case ErrUnsupportedKind:
		return e.Code == CodeUnsupportedKind
	case ErrOverloaded:
		return e.Code == CodeOverloaded
	}
	return false
}

// errorEnvelope is the JSON shape of every non-2xx response.
type errorEnvelope struct {
	Err APIError `json:"error"`
}

// retryAfterSeconds is the Retry-After value on overloaded responses.
// A small constant: queue pressure at this scale drains in seconds,
// and jittered client retries matter more than a precise estimate.
const retryAfterSeconds = "1"

// Handler returns the HTTP+JSON API of the service, the surface
// cmd/adifod listens on and the client package talks to:
//
//	POST   /v1/jobs             submit a JobSpec (kind grade, atpg or
//	                            adi_order; empty = grade), returns
//	                            {"id": ...}
//	GET    /v1/jobs             list job statuses
//	GET    /v1/jobs/{id}        poll one job's status
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/jobs/{id}/result fetch a finished job's kind-specific
//	                            result (JobResult, AtpgResult or
//	                            OrderResult)
//	GET    /v1/jobs/{id}/stream newline-delimited JSON ProgressEvents,
//	                            one per 64-pattern block (plus one per
//	                            ATPG target for atpg jobs), until the
//	                            job reaches a terminal state (the last
//	                            line is the final JobStatus)
//	GET    /v1/stats            service and registry cache counters
//	GET    /metrics             Prometheus text exposition of the
//	                            service metrics
//	GET    /healthz             liveness probe
//
// Every non-2xx response is the error envelope
// {"error": {"code": ..., "message": ...}} with one of the Code*
// constants.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.Handle("GET /metrics", s.metrics.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// writeJSON encodes v as the response body. Encode failures cannot be
// reported to the peer (the status line is already written) but are
// not swallowed either: they reach the service's configured logger and
// the adifo_http_write_errors_total counter, so a flapping client or a
// broken payload type shows up on a dashboard, not only in logs.
func (s *Service) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.met.writeErrors.Inc()
		s.logger.Warn("encoding response body failed", "status", code, "err", err)
	}
}

func (s *Service) writeError(w http.ResponseWriter, httpCode int, apiCode string, err error) {
	s.writeJSON(w, httpCode, errorEnvelope{Err: APIError{Code: apiCode, Message: err.Error()}})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.writeError(w, http.StatusBadRequest, CodeInvalidRequest, err)
		return
	}
	// A valid incoming traceparent makes the job join the caller's
	// trace; anything else (absent header included) mints a fresh one.
	ctx := r.Context()
	if sc, err := trace.ParseTraceparent(r.Header.Get("traceparent")); err == nil {
		ctx = trace.ContextWithRemote(ctx, sc)
	}
	id, err := s.SubmitContext(ctx, spec)
	if errors.Is(err, ErrDraining) {
		s.writeError(w, http.StatusServiceUnavailable, CodeUnavailable, err)
		return
	}
	if errors.Is(err, ErrOverloaded) {
		// 429 + Retry-After: back off and resubmit — with an
		// idempotency key the retry is safe by construction.
		w.Header().Set("Retry-After", retryAfterSeconds)
		s.writeError(w, http.StatusTooManyRequests, CodeOverloaded, err)
		return
	}
	if errors.Is(err, ErrUnsupportedKind) {
		s.writeError(w, http.StatusBadRequest, CodeUnsupportedKind, err)
		return
	}
	if err != nil {
		s.writeError(w, http.StatusBadRequest, CodeInvalidRequest, err)
		return
	}
	s.writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Status(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, CodeNotFound, ErrNotFound)
		return
	}
	s.writeJSON(w, http.StatusOK, st)
}

// handleCancel aborts a job. Cancelling a queued job (or one already
// cancelled) returns its status; cancelling a running job returns the
// status as of the request, with the terminal transition following at
// the next block barrier. A job that already finished is a conflict.
func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	switch {
	case err == nil:
		s.writeJSON(w, http.StatusOK, st)
	case errors.Is(err, ErrNotFound):
		s.writeError(w, http.StatusNotFound, CodeNotFound, err)
	case errors.Is(err, ErrFinished):
		s.writeError(w, http.StatusConflict, CodeFinished, err)
	default:
		s.writeError(w, http.StatusInternalServerError, CodeJobFailed, err)
	}
}

// handleResult serves the kind-specific result payload of a finished
// job: a JobResult for grade jobs, an AtpgResult for atpg, an
// OrderResult for adi_order. Clients tell them apart by the payload's
// kind field (or the job status they already hold).
func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	res, raw, err := s.result(id)
	switch {
	case err == nil:
		if raw != nil {
			// A job replayed from the journal: serve the journaled
			// wire bytes verbatim, so the restart is byte-invisible.
			s.writeJSON(w, http.StatusOK, json.RawMessage(raw))
			return
		}
		s.writeJSON(w, http.StatusOK, res)
	case errors.Is(err, ErrNotFound):
		s.writeError(w, http.StatusNotFound, CodeNotFound, err)
	case errors.Is(err, ErrNotDone):
		s.writeError(w, http.StatusConflict, CodeNotDone, err)
	case errors.Is(err, ErrCancelled):
		s.writeError(w, http.StatusConflict, CodeCancelled, err)
	default:
		// The job itself failed.
		s.writeError(w, http.StatusUnprocessableEntity, CodeJobFailed, err)
	}
}

// handleStream writes one JSON line per block barrier as the job runs
// and a final JobStatus line when it reaches a terminal state
// (including cancellation, whose final line reads state "cancelled").
func (s *Service) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ch, cancel, ok := s.Subscribe(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, CodeNotFound, ErrNotFound)
		return
	}
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	flush()

	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-ch:
			if !open {
				if st, ok := s.Status(id); ok {
					if err := enc.Encode(st); err != nil {
						s.met.writeErrors.Inc()
						s.logger.Warn("encoding final stream status failed", "job", id, "err", err)
					}
				}
				flush()
				return
			}
			if err := enc.Encode(ev); err != nil {
				s.met.writeErrors.Inc()
				s.logger.Warn("encoding stream event failed", "job", id, "err", err)
				return
			}
			flush()
		}
	}
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.Stats())
}
