package fsim

import (
	"testing"
	"testing/quick"

	"github.com/eda-go/adifo/internal/fault"
	"github.com/eda-go/adifo/internal/gen"
	"github.com/eda-go/adifo/internal/logic"
	"github.com/eda-go/adifo/internal/prng"
)

// Property: on arbitrary generated circuits, the bit-parallel PPSFP
// engine agrees with the naive per-vector reference simulator for
// every (fault, vector) pair.
func TestQuickEngineMatchesNaiveOnGeneratedCircuits(t *testing.T) {
	f := func(seed uint64) bool {
		c := gen.Generate(gen.Config{
			Name:   "q",
			Inputs: 6,
			Gates:  40,
			Seed:   seed,
		})
		fl := fault.Universe(c)
		ps := logic.RandomPatterns(c.NumInputs(), 96, prng.New(seed^0xbeef))
		res := Run(fl, ps, Options{Mode: NoDrop})
		for fi, flt := range fl.Faults {
			for u := 0; u < ps.Len(); u++ {
				if res.Det[fi].Test(u) != naiveDetects(c, flt, ps.Get(u)) {
					t.Logf("seed %d: fault %v vector %d disagrees", seed, flt.Name(c), u)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Property: the modes agree on the detected-fault set (the dropping
// policy must never change *whether* a fault is detectable by the
// vector set, only the statistics collected).
func TestQuickModesAgreeOnDetectedSet(t *testing.T) {
	f := func(seed uint64) bool {
		c := gen.Generate(gen.Config{Name: "m", Inputs: 7, Gates: 50, Seed: seed})
		fl := fault.CollapsedUniverse(c)
		ps := logic.RandomPatterns(c.NumInputs(), 128, prng.New(seed))
		noDrop := Run(fl, ps, Options{Mode: NoDrop})
		drop := Run(fl, ps, Options{Mode: Drop})
		nDet := Run(fl, ps, Options{Mode: NDetect, N: 2})
		for fi := range fl.Faults {
			if noDrop.Detected(fi) != drop.Detected(fi) || noDrop.Detected(fi) != nDet.Detected(fi) {
				return false
			}
			if noDrop.FirstDet[fi] != drop.FirstDet[fi] || noDrop.FirstDet[fi] != nDet.FirstDet[fi] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
