package cluster

import (
	"errors"
	"fmt"
	"sync"

	"github.com/eda-go/adifo/internal/service"
)

// merger folds the per-shard progress streams into one merged
// per-block feed. A merged event for block b is emitted once every
// shard has either reported block b or finished earlier (a shard whose
// faults all dropped stops streaming early; from then on it
// contributes its final counters). Shard reruns and speculative
// duplicates replay identical per-block stats (grading is
// deterministic), so a track tolerates multiple concurrent reporters:
// replayed blocks below the frontier only fill holes, and the merged
// feed never regresses and never double-counts.
type merger struct {
	jobID string

	mu      sync.Mutex
	tracks  []shardTrack
	emitted int // merged events emitted so far (== blocks fully merged)
	blocks  int // total blocks, from the first event seen
}

type shardTrack struct {
	done       bool
	blocksDone int
	hist       map[int]blockStat
	// last is the most recent stat, used to fill gaps: progress events
	// are advisory (a slow consumer may miss blocks), so a skipped
	// block inherits the previous counters instead of merging zeros.
	last  blockStat
	final blockStat
}

type blockStat struct {
	vectorsUsed int
	detected    int
	active      int
}

func newMerger(jobID string, count int) *merger {
	m := &merger{jobID: jobID, tracks: make([]shardTrack, count)}
	for i := range m.tracks {
		m.tracks[i].hist = make(map[int]blockStat)
	}
	return m
}

// update records one progress event of shard i and returns any merged
// events that became complete.
func (m *merger) update(i int, ev service.ProgressEvent) []service.ProgressEvent {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := &m.tracks[i]
	st := blockStat{vectorsUsed: ev.VectorsUsed, detected: ev.Detected, active: ev.Active}
	if ev.Block < t.blocksDone {
		// A duplicate attempt (speculation, or a rerun after a death)
		// replaying blocks another attempt already reported. The stats
		// are bit-identical, so it may fill a gap-filled hole with the
		// authentic value, but must not touch the frontier: regressing
		// last/blocksDone would let later gap-fills inherit stale
		// counters.
		if _, ok := t.hist[ev.Block]; !ok && ev.Block >= m.emitted {
			t.hist[ev.Block] = st
		}
		return m.collectLocked()
	}
	for b := t.blocksDone; b < ev.Block; b++ {
		if _, ok := t.hist[b]; !ok {
			t.hist[b] = t.last
		}
	}
	t.hist[ev.Block] = st
	t.last = st
	t.blocksDone = ev.Block + 1
	if ev.Blocks > m.blocks {
		m.blocks = ev.Blocks
	}
	return m.collectLocked()
}

// markDone records shard i's terminal counters; the shard contributes
// them to every merged block past its own early stop.
func (m *merger) markDone(i int, st service.JobStatus) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := &m.tracks[i]
	t.done = true
	t.final = blockStat{vectorsUsed: st.VectorsUsed, detected: st.Detected, active: st.Active}
}

// collect returns any merged events that are complete but unemitted
// (used after markDone, which can complete pending blocks).
func (m *merger) collect() []service.ProgressEvent {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.collectLocked()
}

func (m *merger) collectLocked() []service.ProgressEvent {
	var out []service.ProgressEvent
	for {
		b := m.emitted
		maxDone := 0
		for i := range m.tracks {
			if m.tracks[i].blocksDone > maxDone {
				maxDone = m.tracks[i].blocksDone
			}
		}
		if b >= maxDone {
			break
		}
		var st blockStat
		complete := true
		for i := range m.tracks {
			t := &m.tracks[i]
			var c blockStat
			switch {
			case t.blocksDone > b:
				c = t.hist[b]
			case t.done:
				c = t.final
			default:
				complete = false
			}
			if !complete {
				break
			}
			st.detected += c.detected
			st.active += c.active
			if c.vectorsUsed > st.vectorsUsed {
				st.vectorsUsed = c.vectorsUsed
			}
		}
		if !complete {
			break
		}
		out = append(out, service.ProgressEvent{
			JobID:       m.jobID,
			State:       service.StateRunning,
			Block:       b,
			Blocks:      m.blocks,
			VectorsUsed: st.vectorsUsed,
			Detected:    st.detected,
			Active:      st.active,
		})
		for i := range m.tracks {
			delete(m.tracks[i].hist, b)
		}
		m.emitted++
	}
	return out
}

// MergeResults merges the per-shard results of one cluster job into
// the result an unsharded single-node run of the same spec would have
// produced, bit for bit:
//
//   - per-fault counters (DetCount, FirstDet, detection sets) are
//     shard-local facts and concatenate in fault-index order;
//   - per-vector ndet counters sum elementwise (a shard that stopped
//     early contributes zero beyond its stop — all its faults were
//     already dropped there, exactly as in the single run);
//   - vectors-used is the maximum over shards: active sets only
//     shrink, so the single run's global active list empties exactly
//     when the last shard's does.
//
// The shards must be a complete partition: one result per shard index
// 0..count-1, all with the same circuit fingerprint, mode and vector
// set. Violations return an error rather than a silently wrong merge.
func MergeResults(id string, shards []*service.JobResult) (*service.JobResult, error) {
	if len(shards) == 0 {
		return nil, errors.New("cluster: no shard results to merge")
	}
	byIndex := make([]*service.JobResult, len(shards))
	for _, r := range shards {
		if r == nil {
			return nil, errors.New("cluster: missing shard result")
		}
		if r.FaultShard == nil {
			return nil, fmt.Errorf("cluster: result %s carries no fault_shard", r.ID)
		}
		if r.FaultShard.Count != len(shards) {
			return nil, fmt.Errorf("cluster: result %s is shard %d of %d, merging %d",
				r.ID, r.FaultShard.Index, r.FaultShard.Count, len(shards))
		}
		i := r.FaultShard.Index
		if i < 0 || i >= len(shards) || byIndex[i] != nil {
			return nil, fmt.Errorf("cluster: duplicate or out-of-range shard index %d", i)
		}
		byIndex[i] = r
	}

	first := byIndex[0]
	out := &service.JobResult{
		ID:          id,
		Kind:        service.KindGrade,
		Circuit:     first.Circuit,
		Fingerprint: first.Fingerprint,
		Mode:        first.Mode,
		TotalFaults: first.TotalFaults,
		Vectors:     first.Vectors,
	}
	nextF := 0
	for i, r := range byIndex {
		if r.Fingerprint != out.Fingerprint || r.Circuit != out.Circuit {
			return nil, fmt.Errorf("cluster: shard %d graded %s/%s, shard 0 graded %s/%s",
				i, r.Circuit, r.Fingerprint, out.Circuit, out.Fingerprint)
		}
		if r.Mode != out.Mode || r.Vectors != out.Vectors || r.TotalFaults != out.TotalFaults {
			return nil, fmt.Errorf("cluster: shard %d (mode %s, %d vectors, %d total faults) does not match shard 0 (mode %s, %d vectors, %d total faults)",
				i, r.Mode, r.Vectors, r.TotalFaults, out.Mode, out.Vectors, out.TotalFaults)
		}
		lo, hi := service.ShardRange(r.TotalFaults, i, len(byIndex))
		if r.Faults != hi-lo || len(r.PerFault) != hi-lo {
			return nil, fmt.Errorf("cluster: shard %d has %d faults, want range [%d, %d)", i, r.Faults, lo, hi)
		}
		for k, fr := range r.PerFault {
			if fr.F != nextF {
				return nil, fmt.Errorf("cluster: shard %d fault %d has global index %d, want %d", i, k, fr.F, nextF)
			}
			nextF++
		}
		out.Faults += r.Faults
		out.Detected += r.Detected
		if r.VectorsUsed > out.VectorsUsed {
			out.VectorsUsed = r.VectorsUsed
		}
		if len(r.Ndet) > len(out.Ndet) {
			out.Ndet = append(out.Ndet, make([]int, len(r.Ndet)-len(out.Ndet))...)
		}
		for u, n := range r.Ndet {
			out.Ndet[u] += n
		}
		out.PerFault = append(out.PerFault, r.PerFault...)
	}
	if out.Faults != out.TotalFaults {
		return nil, fmt.Errorf("cluster: shards cover %d of %d faults", out.Faults, out.TotalFaults)
	}
	if out.Faults > 0 {
		out.Coverage = float64(out.Detected) / float64(out.Faults)
	}
	return out, nil
}
