package prng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestSeedsDecorrelate(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws out of 1000", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	s := New(0)
	if s.Uint64() == 0 && s.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck-at-zero stream")
	}
}

func TestIntnRange(t *testing.T) {
	s := New(7)
	for _, n := range []int{1, 2, 3, 10, 64, 1000} {
		for i := 0; i < 2000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnRoughlyUniform(t *testing.T) {
	s := New(99)
	const n, draws = 8, 80000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.08 {
			t.Errorf("bucket %d: got %d, want about %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(5)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(11)
	child := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("parent and child produced %d identical draws", same)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(13)
	const draws = 50000
	hits := 0
	for i := 0; i < draws; i++ {
		if s.Bool(0.25) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-0.25) > 0.02 {
		t.Fatalf("Bool(0.25) frequency = %v", got)
	}
}

func TestShuffleMatchesPermSemantics(t *testing.T) {
	s := New(21)
	vals := []int{0, 1, 2, 3, 4, 5, 6, 7}
	s.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	seen := make([]bool, len(vals))
	for _, v := range vals {
		if v < 0 || v >= len(vals) || seen[v] {
			t.Fatalf("Shuffle corrupted slice: %v", vals)
		}
		seen[v] = true
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}
