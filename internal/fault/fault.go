// Package fault implements the single stuck-at fault model on
// gate-level netlists: enumeration of the fault universe (one fault
// pair per circuit line), structural equivalence collapsing, and the
// bookkeeping types shared by the fault simulator, the ATPG and the
// ADI machinery.
//
// # Lines and fault sites
//
// A line is either a gate output stem or a fanout branch. A branch
// exists only where the driving gate has more than one fanout
// connection; a single-fanout connection is electrically the same line
// as the stem, so modelling it separately would double-count faults.
// A fault site is addressed as (gate, pin):
//
//   - pin == StemPin (-1): the stem, i.e. the output of gate;
//   - pin >= 0: the branch feeding input pin of gate (only present
//     when the driver has fanout > 1).
//
// This addressing gives the classic uncollapsed universe: for c17 it
// yields 34 faults on 17 lines, which structural equivalence
// collapsing reduces to the textbook 22.
package fault

import (
	"fmt"
	"sort"

	"github.com/eda-go/adifo/internal/circuit"
)

// StemPin is the pin value denoting a gate-output stem site.
const StemPin = -1

// Fault is a single stuck-at fault. SA is the stuck value (0 or 1).
type Fault struct {
	Gate int
	Pin  int
	SA   uint8
}

// String renders the fault in a compact human-readable form using the
// circuit's signal names, e.g. "n16 sa0" for a stem or "n22.in1 sa1"
// for a branch.
func (f Fault) String() string {
	return fmt.Sprintf("gate%d.pin%d sa%d", f.Gate, f.Pin, f.SA)
}

// Name renders the fault with signal names from c.
func (f Fault) Name(c *circuit.Circuit) string {
	g := c.Gates[f.Gate]
	if f.Pin == StemPin {
		return fmt.Sprintf("%s sa%d", g.Name, f.SA)
	}
	return fmt.Sprintf("%s.in%d sa%d", g.Name, f.Pin, f.SA)
}

// List is an ordered set of faults over one circuit. The order of
// Faults is significant: fault indices are used as bitset positions by
// the simulator and as identities by the ordering heuristics.
type List struct {
	Circuit *circuit.Circuit
	Faults  []Fault
}

// Len returns the number of faults.
func (l *List) Len() int { return len(l.Faults) }

// Universe enumerates the full uncollapsed single stuck-at fault
// universe of c in a deterministic order: for each gate in id order,
// the stem sa0/sa1 pair, then for each input pin whose driver has
// fanout > 1 the branch sa0/sa1 pair.
func Universe(c *circuit.Circuit) *List {
	var faults []Fault
	for gi := range c.Gates {
		faults = append(faults,
			Fault{Gate: gi, Pin: StemPin, SA: 0},
			Fault{Gate: gi, Pin: StemPin, SA: 1})
	}
	for gi, g := range c.Gates {
		for pin, drv := range g.Fanin {
			if len(c.Fanout[drv]) > 1 {
				faults = append(faults,
					Fault{Gate: gi, Pin: pin, SA: 0},
					Fault{Gate: gi, Pin: pin, SA: 1})
			}
		}
	}
	return &List{Circuit: c, Faults: faults}
}

// lineFault resolves the fault object on the line feeding input pin of
// gate g: the branch site when the driver fans out, otherwise the
// driver's stem site.
func lineFault(c *circuit.Circuit, g, pin int, sa uint8) Fault {
	drv := c.Gates[g].Fanin[pin]
	if len(c.Fanout[drv]) > 1 {
		return Fault{Gate: g, Pin: pin, SA: sa}
	}
	return Fault{Gate: drv, Pin: StemPin, SA: sa}
}

// Collapse reduces the list to one representative per structural
// equivalence class, preserving the original relative order of the
// representatives. The classic gate-local equivalence rules are used:
//
//	AND : input sa0 ≡ output sa0      NAND: input sa0 ≡ output sa1
//	OR  : input sa1 ≡ output sa1      NOR : input sa1 ≡ output sa0
//	BUF : input saV ≡ output saV      NOT : input saV ≡ output sa(1-V)
//
// XOR/XNOR gates admit no structural equivalences. The returned map
// sends every fault of the original universe to the index of its
// representative in the collapsed list.
func Collapse(l *List) (*List, map[Fault]int) {
	c := l.Circuit
	idx := make(map[Fault]int, len(l.Faults))
	for i, f := range l.Faults {
		idx[f] = i
	}
	uf := newUnionFind(len(l.Faults))

	merge := func(a, b Fault) {
		ia, oka := idx[a]
		ib, okb := idx[b]
		if !oka || !okb {
			// Equivalence across a site that is not in the universe
			// cannot happen by construction; guard anyway so a future
			// universe filter cannot corrupt collapsing silently.
			panic(fmt.Sprintf("fault: merging unknown site %v or %v", a, b))
		}
		uf.union(ia, ib)
	}

	for gi := range c.Gates {
		g := &c.Gates[gi]
		out0 := Fault{Gate: gi, Pin: StemPin, SA: 0}
		out1 := Fault{Gate: gi, Pin: StemPin, SA: 1}
		switch g.Type {
		case circuit.Buf:
			merge(lineFault(c, gi, 0, 0), out0)
			merge(lineFault(c, gi, 0, 1), out1)
		case circuit.Not:
			merge(lineFault(c, gi, 0, 0), out1)
			merge(lineFault(c, gi, 0, 1), out0)
		case circuit.And:
			for pin := range g.Fanin {
				merge(lineFault(c, gi, pin, 0), out0)
			}
		case circuit.Nand:
			for pin := range g.Fanin {
				merge(lineFault(c, gi, pin, 0), out1)
			}
		case circuit.Or:
			for pin := range g.Fanin {
				merge(lineFault(c, gi, pin, 1), out1)
			}
		case circuit.Nor:
			for pin := range g.Fanin {
				merge(lineFault(c, gi, pin, 1), out0)
			}
		}
	}

	// Representative = lowest original index in each class, keeping
	// the collapsed list in universe order (deterministic).
	repOf := make(map[int]int) // class root -> representative index
	for i := range l.Faults {
		root := uf.find(i)
		if r, ok := repOf[root]; !ok || i < r {
			repOf[root] = i
		}
	}
	reps := make([]int, 0, len(repOf))
	for _, r := range repOf {
		reps = append(reps, r)
	}
	sort.Ints(reps)

	collapsed := &List{Circuit: c, Faults: make([]Fault, len(reps))}
	posOf := make(map[int]int, len(reps)) // universe index -> collapsed index
	for ci, r := range reps {
		collapsed.Faults[ci] = l.Faults[r]
		posOf[r] = ci
	}
	toRep := make(map[Fault]int, len(l.Faults))
	for i, f := range l.Faults {
		toRep[f] = posOf[repOf[uf.find(i)]]
	}
	return collapsed, toRep
}

// CollapsedUniverse is the common entry point: enumerate the universe
// of c and collapse it in one call.
func CollapsedUniverse(c *circuit.Circuit) *List {
	collapsed, _ := Collapse(Universe(c))
	return collapsed
}

// Classes groups the faults of l (a universe list) into equivalence
// classes using the same rules as Collapse; exposed for tests and
// diagnostics. Each class is sorted by universe index; classes are
// sorted by their first member.
func Classes(l *List) [][]Fault {
	collapsed, toRep := Collapse(l)
	buckets := make([][]Fault, collapsed.Len())
	for _, f := range l.Faults {
		r := toRep[f]
		buckets[r] = append(buckets[r], f)
	}
	return buckets
}

// unionFind is a plain weighted quick-union with path halving.
type unionFind struct {
	parent []int
	size   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
}
