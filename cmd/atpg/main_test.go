package main

import "testing"

func TestRunC17(t *testing.T) {
	if err := run("c17", "dynm", 0, true, 1, 2); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadOrder(t *testing.T) {
	if err := run("c17", "bogus", 0, false, 1, 2); err == nil {
		t.Fatal("expected error for unknown order")
	}
}

func TestRunBadCircuit(t *testing.T) {
	if err := run("no-such-circuit", "dynm", 0, false, 1, 2); err == nil {
		t.Fatal("expected error for unknown circuit")
	}
}
