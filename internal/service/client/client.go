// Package client is the Go client of the adifod job service: it
// speaks the HTTP+JSON job API of internal/service — grade, atpg and
// adi_order kinds alike — and is what the `adifo grade`, `adifo gen
// -server` and `adifo order -server` verbs use to talk to a running
// server. All wire types are shared with the service package, so a
// client-side result is structurally identical to a direct library
// run.
package client

import (
	"bufio"
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/eda-go/adifo/internal/obs/trace"
	"github.com/eda-go/adifo/internal/service"
)

// Client talks to one adifod server.
type Client struct {
	base         string
	hc           *http.Client
	noRetryAfter bool
}

// Option configures a Client.
type Option func(*Client)

// WithoutRetryAfterWait disables Submit's wait-and-resubmit on
// "overloaded" rejections; the typed *service.APIError (with its
// RetryAfter) is returned on the first 429 instead, for callers that
// own their own backoff policy.
func WithoutRetryAfterWait() Option {
	return func(c *Client) { c.noRetryAfter = true }
}

// New returns a client for the server at base (e.g.
// "http://localhost:8417"). httpClient may be nil for
// http.DefaultClient.
func New(base string, httpClient *http.Client, opts ...Option) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	c := &Client{base: strings.TrimRight(base, "/"), hc: httpClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// decodeError turns a non-2xx response into a *service.APIError when
// the body carries the v1 error envelope, so callers can inspect the
// machine-readable code with errors.As; responses without an envelope
// (proxies, panics) degrade to a plain error with the HTTP status.
func decodeError(method, path string, resp *http.Response) error {
	var env struct {
		Err service.APIError `json:"error"`
	}
	if json.NewDecoder(resp.Body).Decode(&env) == nil && env.Err.Code != "" {
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs := parseRetryAfter(ra, time.Now()); secs > 0 {
				env.Err.RetryAfter = secs
			}
		}
		return fmt.Errorf("%s %s (HTTP %d): %w", method, path, resp.StatusCode, &env.Err)
	}
	return fmt.Errorf("%s %s: HTTP %d", method, path, resp.StatusCode)
}

// parseRetryAfter interprets both forms RFC 9110 allows for the
// Retry-After header: delta-seconds and an HTTP-date. Dates convert to
// whole seconds from now, rounding up so a sub-second wait does not
// truncate to "no wait"; past dates, non-positive deltas and
// unparseable values all read as absent (0) — a proxy-mangled header
// must degrade to the client's own backoff, not stall it.
func parseRetryAfter(v string, now time.Time) int {
	if secs, err := strconv.Atoi(v); err == nil {
		if secs > 0 {
			return secs
		}
		return 0
	}
	t, err := http.ParseTime(v)
	if err != nil {
		return 0
	}
	d := t.Sub(now)
	if d <= 0 {
		return 0
	}
	return int((d + time.Second - 1) / time.Second)
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if tp := trace.Traceparent(ctx); tp != "" {
		req.Header.Set("traceparent", tp)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return decodeError(method, path, resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// submitAttempts bounds Submit's transparent retry of transport
// failures and overload rejections, and submitBackoff spaces the
// transport-failure attempts. An "overloaded" 429 waits the server's
// Retry-After instead, capped at maxRetryAfterWait so a pathological
// header cannot stall a submit for minutes.
const (
	submitAttempts = 3
	submitBackoff  = 100 * time.Millisecond
)

// retryAfterUnit scales APIError.RetryAfter (whole seconds on the
// wire) into a wait; tests shrink both to keep the suite fast.
var (
	retryAfterUnit    = time.Second
	maxRetryAfterWait = 5 * time.Second
)

// newIdempotencyKey mints a random per-submission key. 16 random bytes
// hex-encoded: collision-free in practice, and well under the server's
// 256-byte bound.
func newIdempotencyKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; fall back to a
		// keyless (non-idempotent, non-retried) submit.
		return ""
	}
	return "auto-" + hex.EncodeToString(b[:])
}

// Submit posts a job and returns its id.
//
// A spec without an IdempotencyKey gets an auto-generated one, which
// makes the POST safe to repeat: transport failures (connection reset,
// proxy hiccup) are retried transparently up to three times, and a
// retry that lands after a first attempt the client never saw the
// answer to is deduplicated by the server into the same job id.
//
// An "overloaded" admission rejection (429) is also retried: the
// client waits the server's Retry-After (capped at maxRetryAfterWait)
// and resubmits, so a transient queue-full blip does not surface to
// every caller. Opt out with WithoutRetryAfterWait to own the backoff
// policy. Every other typed API error is returned immediately —
// retrying a spec-level refusal elsewhere cannot help.
func (c *Client) Submit(ctx context.Context, spec service.JobSpec) (string, error) {
	if spec.IdempotencyKey == "" {
		spec.IdempotencyKey = newIdempotencyKey()
	}
	retryable := spec.IdempotencyKey != ""
	var resp struct {
		ID string `json:"id"`
	}
	var err error
	for attempt := 1; ; attempt++ {
		err = c.do(ctx, http.MethodPost, "/v1/jobs", spec, &resp)
		if err == nil {
			return resp.ID, nil
		}
		if !retryable || attempt >= submitAttempts || ctx.Err() != nil {
			return "", err
		}
		wait := submitBackoff * time.Duration(attempt)
		var apiErr *service.APIError
		if errors.As(err, &apiErr) {
			if c.noRetryAfter || apiErr.Code != service.CodeOverloaded || apiErr.RetryAfter <= 0 {
				return "", err
			}
			wait = min(time.Duration(apiErr.RetryAfter)*retryAfterUnit, maxRetryAfterWait)
		}
		select {
		case <-ctx.Done():
			return "", err
		case <-time.After(wait):
		}
	}
}

// Status polls one job.
func (c *Client) Status(ctx context.Context, id string) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Cancel aborts a queued or running job and returns its status as of
// the request (a running job transitions to cancelled at its next
// block barrier; use Stream or Wait to observe the terminal state).
// Cancelling a job that already finished yields a *service.APIError
// with code "finished".
func (c *Client) Cancel(ctx context.Context, id string) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Jobs lists all jobs the server knows.
func (c *Client) Jobs(ctx context.Context) ([]service.JobStatus, error) {
	var out []service.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// Result fetches the outcome of a finished grade job. The result
// endpoint serves kind-specific payloads; use ResultAtpg and
// ResultOrder for the other kinds (a mismatched call is detected by
// the payload's kind field rather than silently mis-decoded).
func (c *Client) Result(ctx context.Context, id string) (*service.JobResult, error) {
	var res service.JobResult
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &res); err != nil {
		return nil, err
	}
	if err := checkKind(id, service.KindGrade, res.Kind); err != nil {
		return nil, err
	}
	return &res, nil
}

// ResultAtpg fetches the outcome of a finished atpg job.
func (c *Client) ResultAtpg(ctx context.Context, id string) (*service.AtpgResult, error) {
	var res service.AtpgResult
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &res); err != nil {
		return nil, err
	}
	if err := checkKind(id, service.KindAtpg, res.Kind); err != nil {
		return nil, err
	}
	return &res, nil
}

// ResultOrder fetches the outcome of a finished adi_order job.
func (c *Client) ResultOrder(ctx context.Context, id string) (*service.OrderResult, error) {
	var res service.OrderResult
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &res); err != nil {
		return nil, err
	}
	if err := checkKind(id, service.KindADIOrder, res.Kind); err != nil {
		return nil, err
	}
	return &res, nil
}

// checkKind guards a typed result decode against a job of another
// kind: JSON decoding ignores unknown fields, so without the check a
// mismatched fetch would return a zeroed struct instead of an error.
// A pre-kind server omits the field; those servers only ever grade,
// so the empty kind normalizes to grade.
func checkKind(id, want, got string) error {
	if service.NormalizeKind(got) != want {
		return fmt.Errorf("client: job %s is a %s job, not %s", id, service.NormalizeKind(got), want)
	}
	return nil
}

// Stats fetches the service counters (including the registry
// cache-hit counters).
func (c *Client) Stats(ctx context.Context) (service.Stats, error) {
	var st service.Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}

// Stream consumes a job's per-block progress feed, calling fn for
// every event until the job finishes. It returns the final status.
func (c *Client) Stream(ctx context.Context, id string, fn func(service.ProgressEvent)) (service.JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return service.JobStatus{}, err
	}
	if tp := trace.Traceparent(ctx); tp != "" {
		req.Header.Set("traceparent", tp)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return service.JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return service.JobStatus{}, decodeError(http.MethodGet, "/v1/jobs/"+id+"/stream", resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var last []byte
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		last = append(last[:0], line...)
		if fn != nil {
			var ev service.ProgressEvent
			if json.Unmarshal(line, &ev) == nil && ev.JobID != "" {
				fn(ev)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return service.JobStatus{}, err
	}
	// The last line of the stream is the terminal JobStatus.
	var st service.JobStatus
	if len(last) == 0 || json.Unmarshal(last, &st) != nil || st.ID == "" {
		return c.Status(ctx, id)
	}
	return st, nil
}

// Wait polls a job until it reaches a terminal state, with the given
// poll interval (0 means 50ms).
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (service.JobStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State == service.StateDone || st.State == service.StateFailed ||
			st.State == service.StateCancelled {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}
