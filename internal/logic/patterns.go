package logic

import (
	"fmt"
	"strings"

	"github.com/eda-go/adifo/internal/prng"
)

// Vector is a single fully specified input vector, one byte (0 or 1)
// per primary input, in circuit input order. The byte-per-bit layout
// trades memory for simple indexing; vectors are short-lived compared
// to PatternSets.
type Vector []uint8

// String renders the vector as a bit string, e.g. "0110".
func (v Vector) String() string {
	var b strings.Builder
	b.Grow(len(v))
	for _, bit := range v {
		if bit != 0 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Decimal returns the vector interpreted as a binary number with
// input 0 as the most significant bit, matching the decimal labelling
// of input vectors used in the paper's Table 1.
func (v Vector) Decimal() uint64 {
	if len(v) > 64 {
		panic("logic: Decimal on vector wider than 64 inputs")
	}
	var d uint64
	for _, bit := range v {
		d = d<<1 | uint64(bit&1)
	}
	return d
}

// VectorFromDecimal builds a width-bit vector from the decimal
// labelling used by Decimal (input 0 = most significant bit).
func VectorFromDecimal(d uint64, width int) Vector {
	v := make(Vector, width)
	for i := width - 1; i >= 0; i-- {
		v[i] = uint8(d & 1)
		d >>= 1
	}
	return v
}

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// PatternSet is a packed, immutable-size collection of input vectors.
// Bits are stored transposed — per input, one uint64 word per block of
// 64 vectors — which is exactly the layout the bit-parallel simulators
// consume, so simulation reads words straight out of the set with no
// repacking.
type PatternSet struct {
	inputs int
	n      int
	// bits[input][block] holds vectors block*64 .. block*64+63 for
	// that input, vector i at bit position i%64.
	bits [][]uint64
}

// NewPatternSet returns an empty pattern set for a circuit with the
// given number of primary inputs.
func NewPatternSet(inputs int) *PatternSet {
	if inputs < 0 {
		panic("logic: negative input count")
	}
	return &PatternSet{inputs: inputs, bits: make([][]uint64, inputs)}
}

// RandomPatterns returns a set of n uniformly random vectors drawn
// from src.
func RandomPatterns(inputs, n int, src *prng.Source) *PatternSet {
	ps := NewPatternSet(inputs)
	blocks := (n + WordBits - 1) / WordBits
	for i := 0; i < inputs; i++ {
		ps.bits[i] = make([]uint64, blocks)
		for b := 0; b < blocks; b++ {
			ps.bits[i][b] = src.Word()
		}
	}
	ps.n = n
	ps.maskTail()
	return ps
}

// ExhaustivePatterns returns all 2^inputs vectors in increasing
// decimal order (see Vector.Decimal). It panics if inputs > 20 to
// guard against accidental exponential blow-ups; the exhaustive mode
// exists for the small worked examples (e.g. the 4-input lion circuit
// of Table 1).
func ExhaustivePatterns(inputs int) *PatternSet {
	if inputs > 20 {
		panic(fmt.Sprintf("logic: ExhaustivePatterns(%d) would enumerate 2^%d vectors", inputs, inputs))
	}
	n := 1 << inputs
	ps := NewPatternSet(inputs)
	for d := 0; d < n; d++ {
		ps.Append(VectorFromDecimal(uint64(d), inputs))
	}
	return ps
}

// Inputs returns the number of primary inputs per vector.
func (ps *PatternSet) Inputs() int { return ps.inputs }

// Len returns the number of vectors in the set.
func (ps *PatternSet) Len() int { return ps.n }

// Blocks returns the number of 64-vector blocks, i.e.
// ceil(Len()/64).
func (ps *PatternSet) Blocks() int { return (ps.n + WordBits - 1) / WordBits }

// Word returns the packed word for the given input and block. Vector
// block*64+i occupies bit i. Bits beyond Len() are zero.
func (ps *PatternSet) Word(input, block int) uint64 {
	return ps.bits[input][block]
}

// BlockMask returns the valid-pattern mask for a block: bit i is set
// iff vector block*64+i exists.
func (ps *PatternSet) BlockMask(block int) uint64 {
	full := ps.n / WordBits
	if block < full {
		return ^uint64(0)
	}
	rem := ps.n % WordBits
	if block == full && rem > 0 {
		return (uint64(1) << rem) - 1
	}
	return 0
}

// Append adds one vector to the set. The vector length must equal
// Inputs().
func (ps *PatternSet) Append(v Vector) {
	if len(v) != ps.inputs {
		panic(fmt.Sprintf("logic: appending %d-bit vector to %d-input set", len(v), ps.inputs))
	}
	block, bit := ps.n/WordBits, uint(ps.n%WordBits)
	for i := 0; i < ps.inputs; i++ {
		if bit == 0 {
			ps.bits[i] = append(ps.bits[i], 0)
		}
		if v[i] != 0 {
			ps.bits[i][block] |= uint64(1) << bit
		}
	}
	ps.n++
}

// Get returns vector i as a freshly allocated Vector.
func (ps *PatternSet) Get(i int) Vector {
	if i < 0 || i >= ps.n {
		panic(fmt.Sprintf("logic: pattern index %d out of range [0,%d)", i, ps.n))
	}
	v := make(Vector, ps.inputs)
	block, bit := i/WordBits, uint(i%WordBits)
	for in := 0; in < ps.inputs; in++ {
		v[in] = uint8(ps.bits[in][block] >> bit & 1)
	}
	return v
}

// Bit returns the value of the given input in vector i.
func (ps *PatternSet) Bit(i, input int) uint8 {
	block, bit := i/WordBits, uint(i%WordBits)
	return uint8(ps.bits[input][block] >> bit & 1)
}

// Slice returns a new set holding vectors [0, n) of ps. It panics if
// n exceeds Len. The underlying words are copied, so the two sets are
// independent afterwards.
func (ps *PatternSet) Slice(n int) *PatternSet {
	if n < 0 || n > ps.n {
		panic(fmt.Sprintf("logic: Slice(%d) of %d-vector set", n, ps.n))
	}
	out := NewPatternSet(ps.inputs)
	blocks := (n + WordBits - 1) / WordBits
	for i := 0; i < ps.inputs; i++ {
		out.bits[i] = append([]uint64(nil), ps.bits[i][:blocks]...)
	}
	out.n = n
	out.maskTail()
	return out
}

// maskTail clears storage bits beyond Len so that Word never exposes
// garbage for non-existent vectors.
func (ps *PatternSet) maskTail() {
	rem := ps.n % WordBits
	if rem == 0 {
		return
	}
	blocks := ps.Blocks()
	mask := (uint64(1) << rem) - 1
	for i := range ps.bits {
		if len(ps.bits[i]) >= blocks {
			ps.bits[i][blocks-1] &= mask
		}
	}
}

// Bitset is a fixed-capacity bit set used for detection sets D(f)
// (bits indexed by vector) and fault subsets (bits indexed by fault).
type Bitset struct {
	n     int
	words []uint64
}

// NewBitset returns a bitset able to hold n bits, all clear.
func NewBitset(n int) *Bitset {
	return &Bitset{n: n, words: make([]uint64, (n+WordBits-1)/WordBits)}
}

// Len returns the capacity in bits.
func (b *Bitset) Len() int { return b.n }

// Set sets bit i.
func (b *Bitset) Set(i int) { b.words[i/WordBits] |= 1 << uint(i%WordBits) }

// Clear clears bit i.
func (b *Bitset) Clear(i int) { b.words[i/WordBits] &^= 1 << uint(i%WordBits) }

// Test reports whether bit i is set.
func (b *Bitset) Test(i int) bool {
	return b.words[i/WordBits]>>uint(i%WordBits)&1 != 0
}

// OrWord ORs a raw 64-bit word into the block'th word. Callers use it
// to merge per-block detection masks straight from the simulator.
func (b *Bitset) OrWord(block int, w uint64) { b.words[block] |= w }

// WordAt returns the block'th raw word.
func (b *Bitset) WordAt(block int) uint64 { return b.words[block] }

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += popcount(w)
	}
	return c
}

// Any reports whether any bit is set.
func (b *Bitset) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// ForEach calls fn for every set bit in increasing order.
func (b *Bitset) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			bit := trailingZeros(w)
			fn(wi*WordBits + bit)
			w &= w - 1
		}
	}
}

// Indices returns the set bits in increasing order.
func (b *Bitset) Indices() []int {
	out := make([]int, 0, b.Count())
	b.ForEach(func(i int) { out = append(out, i) })
	return out
}

// Clone returns an independent copy.
func (b *Bitset) Clone() *Bitset {
	return &Bitset{n: b.n, words: append([]uint64(nil), b.words...)}
}

// popcount returns the number of set bits in w. Hand-rolled SWAR so
// the package has no dependency on math/bits being inlined the same
// way across toolchains (and it benchmarks identically).
func popcount(w uint64) int {
	w -= (w >> 1) & 0x5555555555555555
	w = w&0x3333333333333333 + w>>2&0x3333333333333333
	w = (w + w>>4) & 0x0f0f0f0f0f0f0f0f
	return int(w * 0x0101010101010101 >> 56)
}

// trailingZeros returns the index of the lowest set bit of w; w must
// be non-zero.
func trailingZeros(w uint64) int {
	return popcount(w&-w - 1)
}

// Popcount exposes the word population count to sibling packages.
func Popcount(w uint64) int { return popcount(w) }
