// Package fsim implements stuck-at fault simulation using PPSFP
// (parallel-pattern single-fault propagation): good-machine values are
// computed once per 64-pattern block, then each fault is injected in
// turn and only its fanout cone is re-evaluated, level by level.
//
// Three modes cover everything the paper needs:
//
//   - no-drop simulation produces, for every fault f, the detection
//     set D(f) and, for every vector u, the count ndet(u) — the raw
//     material of the accidental detection index (Section 2);
//   - drop mode removes a fault at its first detection and is used to
//     size the random vector set U (simulate until ~90% coverage);
//   - n-detect mode drops a fault at its n-th detection, the cheaper
//     ndet estimator the paper mentions as an alternative.
//
// An Incremental simulator supports the ATPG flow: vectors arrive one
// at a time and every fault detected by the new vector is dropped.
package fsim

import (
	"github.com/eda-go/adifo/internal/circuit"
	"github.com/eda-go/adifo/internal/fault"
	"github.com/eda-go/adifo/internal/logic"
	"github.com/eda-go/adifo/internal/sim"
)

// engine re-simulates single-fault fanout cones against one 64-pattern
// block of good values. Epoch-stamped value/queue marks make per-fault
// reset O(1).
type engine struct {
	c    *circuit.Circuit
	good []uint64 // shared with the good simulator (read-only here)

	fval  []uint64 // faulty value of touched gates
	vmark []uint32 // epoch stamp: fval[g] valid iff vmark[g] == epoch
	qmark []uint32 // epoch stamp: gate already queued this fault
	epoch uint32

	buckets   [][]int // per-level pending gates
	usedLevel []int   // levels with non-empty buckets this fault
	in        []uint64
}

func newEngine(c *circuit.Circuit, good []uint64) *engine {
	maxFanin := 0
	for _, g := range c.Gates {
		if len(g.Fanin) > maxFanin {
			maxFanin = len(g.Fanin)
		}
	}
	return &engine{
		c:       c,
		good:    good,
		fval:    make([]uint64, c.NumGates()),
		vmark:   make([]uint32, c.NumGates()),
		qmark:   make([]uint32, c.NumGates()),
		buckets: make([][]int, c.MaxLevel+1),
		in:      make([]uint64, maxFanin),
	}
}

// value returns the faulty-machine value of gate g for the current
// fault (the good value if g is untouched).
func (e *engine) value(g int) uint64 {
	if e.vmark[g] == e.epoch {
		return e.fval[g]
	}
	return e.good[g]
}

func (e *engine) setValue(g int, v uint64) {
	e.fval[g] = v
	e.vmark[g] = e.epoch
}

func (e *engine) enqueueFanout(g int) {
	for _, fo := range e.c.Fanout[g] {
		e.enqueue(fo.Gate)
	}
}

func (e *engine) enqueue(g int) {
	if e.qmark[g] == e.epoch {
		return
	}
	e.qmark[g] = e.epoch
	lvl := e.c.Level[g]
	if len(e.buckets[lvl]) == 0 {
		e.usedLevel = append(e.usedLevel, lvl)
	}
	e.buckets[lvl] = append(e.buckets[lvl], g)
}

// propagate injects fault f against the current good values and
// returns the detection word: bit i set iff pattern i of the block
// detects f at some observed output. The caller is responsible for
// masking the word with the block's valid-pattern mask.
func (e *engine) propagate(f fault.Fault) uint64 {
	e.epoch++
	for _, lvl := range e.usedLevel {
		e.buckets[lvl] = e.buckets[lvl][:0]
	}
	e.usedLevel = e.usedLevel[:0]

	var det uint64
	stuck := uint64(0)
	if f.SA == 1 {
		stuck = ^uint64(0)
	}

	if f.Pin == fault.StemPin {
		diff := stuck ^ e.good[f.Gate]
		if diff == 0 {
			return 0
		}
		e.setValue(f.Gate, stuck)
		if e.c.IsOutput(f.Gate) {
			det |= diff
		}
		e.enqueueFanout(f.Gate)
		// The faulted stem must not be re-evaluated from its fanins.
		e.qmark[f.Gate] = e.epoch
	} else {
		// Branch fault: only gate f.Gate sees the stuck value on pin
		// f.Pin; the driver's other fanout branches are healthy.
		g := &e.c.Gates[f.Gate]
		in := e.in[:len(g.Fanin)]
		for k, fi := range g.Fanin {
			in[k] = e.good[fi]
		}
		in[f.Pin] = stuck
		nv := circuit.EvalWord(g.Type, in)
		diff := nv ^ e.good[f.Gate]
		if diff == 0 {
			return 0
		}
		e.setValue(f.Gate, nv)
		if e.c.IsOutput(f.Gate) {
			det |= diff
		}
		e.enqueueFanout(f.Gate)
		e.qmark[f.Gate] = e.epoch
	}

	// Level-ordered single pass: every queued gate is evaluated once,
	// after all of its (possibly faulty) fanins are final.
	for lvl := 0; lvl <= e.c.MaxLevel; lvl++ {
		bucket := e.buckets[lvl]
		if len(bucket) == 0 {
			continue
		}
		for _, gi := range bucket {
			g := &e.c.Gates[gi]
			in := e.in[:len(g.Fanin)]
			for k, fi := range g.Fanin {
				in[k] = e.value(fi)
			}
			nv := circuit.EvalWord(g.Type, in)
			diff := nv ^ e.good[gi]
			if diff == 0 {
				// Converged back to the good value: prune.
				continue
			}
			e.setValue(gi, nv)
			if e.c.IsOutput(gi) {
				det |= diff
			}
			e.enqueueFanout(gi)
		}
	}
	return det
}

// Detects reports whether vector v detects fault f on circuit c. It is
// a convenience single-fault, single-vector entry point built on the
// same engine as the batch simulator; the ATPG uses it to validate
// generated tests and the property tests use it as a cross-check.
func Detects(c *circuit.Circuit, f fault.Fault, v logic.Vector) bool {
	s := sim.New(c)
	words := make([]uint64, c.NumInputs())
	for i, bit := range v {
		if bit != 0 {
			words[i] = 1
		}
	}
	s.SimulateWords(words)
	e := newEngine(c, s.Values())
	return e.propagate(f)&1 != 0
}
