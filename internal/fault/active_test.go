package fault

import "testing"

func TestActiveSetCompactReset(t *testing.T) {
	a := NewActiveSet(5)
	if a.Len() != 5 || a.Universe() != 5 {
		t.Fatalf("new set: Len=%d Universe=%d", a.Len(), a.Universe())
	}
	dropped := a.Compact([]bool{true, false, true, false, true})
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
	want := []int{0, 2, 4}
	got := a.Indices()
	if len(got) != len(want) {
		t.Fatalf("Indices = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Indices = %v, want %v", got, want)
		}
	}
	a.Reset()
	if a.Len() != 5 {
		t.Fatalf("after Reset: Len = %d, want 5", a.Len())
	}
	for i, fi := range a.Indices() {
		if fi != i {
			t.Fatalf("after Reset: Indices[%d] = %d", i, fi)
		}
	}
}

func TestActiveSetSnapshotIndependent(t *testing.T) {
	a := NewActiveSet(4)
	a.Compact([]bool{true, true, false, false}) // {0, 1}
	s := a.Snapshot()
	a.Compact([]bool{false, true}) // a = {1}
	if s.Len() != 2 || s.Indices()[0] != 0 || s.Indices()[1] != 1 {
		t.Fatalf("snapshot mutated by Compact on original: %v", s.Indices())
	}
	if a.Len() != 1 || a.Indices()[0] != 1 {
		t.Fatalf("original = %v, want [1]", a.Indices())
	}
	// A snapshot taken after drops can still Reset to the full universe.
	s.Reset()
	if s.Len() != 4 {
		t.Fatalf("snapshot Reset: Len = %d, want 4", s.Len())
	}
}

func TestActiveSetEmptyUniverse(t *testing.T) {
	a := NewActiveSet(0)
	if a.Len() != 0 {
		t.Fatalf("empty universe: Len = %d", a.Len())
	}
	a.Reset()
	if a.Len() != 0 {
		t.Fatalf("empty universe after Reset: Len = %d", a.Len())
	}
}
