package fsim

import "testing"

// FuzzParseMode pins the mode name grammar: ParseMode accepts exactly
// the three canonical names, and whatever it accepts round-trips
// through Mode.String unchanged — the property the wire contract
// relies on when a JobResult echoes the spec's mode back.
func FuzzParseMode(f *testing.F) {
	f.Add("nodrop")
	f.Add("drop")
	f.Add("ndetect")
	f.Add("")
	f.Add("NODROP")
	f.Add("drop ")
	f.Fuzz(func(t *testing.T, name string) {
		m, err := ParseMode(name)
		if err != nil {
			return
		}
		if got := m.String(); got != name {
			t.Fatalf("ParseMode(%q) accepted but String() = %q; accepted names must be canonical", name, got)
		}
	})
}
