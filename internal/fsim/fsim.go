// Package fsim implements stuck-at fault simulation using PPSFP
// (parallel-pattern single-fault propagation): good-machine values are
// computed once per pattern block, then each fault is injected in turn
// and only its fanout cone is re-evaluated, level by level. The cone
// walk runs on the compiled circuit form (circuit.Compile) and is
// width-generic over the block types in internal/circuit: the
// sequential reference uses scalar 64-pattern blocks, the parallel
// runner picks 64-, 256- or 512-pattern blocks.
//
// Three modes cover everything the paper needs:
//
//   - no-drop simulation produces, for every fault f, the detection
//     set D(f) and, for every vector u, the count ndet(u) — the raw
//     material of the accidental detection index (Section 2);
//   - drop mode removes a fault at its first detection and is used to
//     size the random vector set U (simulate until ~90% coverage);
//   - n-detect mode drops a fault at its n-th detection, the cheaper
//     ndet estimator the paper mentions as an alternative.
//
// An Incremental simulator supports the ATPG flow: vectors arrive one
// at a time and every fault detected by the new vector is dropped.
package fsim

import (
	"context"
	"fmt"

	"github.com/eda-go/adifo/internal/circuit"
	"github.com/eda-go/adifo/internal/fault"
	"github.com/eda-go/adifo/internal/logic"
)

// Mode selects the dropping policy of a batch simulation run.
type Mode int

const (
	// NoDrop simulates every fault against every vector and records
	// complete detection sets D(f) and per-vector counts ndet(u).
	// This is the mode the ADI computation requires (Section 2 of the
	// paper).
	NoDrop Mode = iota
	// Drop removes a fault from consideration at its first detection.
	Drop
	// NDetect removes a fault after its n-th detection (set Options.N);
	// ndet(u) then counts only pre-drop detections, which is the
	// cheaper estimate the paper mentions as an alternative to full
	// no-drop simulation.
	NDetect
)

// String returns the canonical lower-case mode name used by the CLI
// flags and the service wire format.
func (m Mode) String() string {
	switch m {
	case NoDrop:
		return "nodrop"
	case Drop:
		return "drop"
	case NDetect:
		return "ndetect"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode maps a mode name (as produced by Mode.String) back to its
// Mode value. The empty string is rejected: defaulting is an API-layer
// decision (the adifo facade defaults to NoDrop via its option zero
// value, the service requires an explicit mode on the wire), not a
// parsing rule.
func ParseMode(name string) (Mode, error) {
	switch name {
	case "nodrop":
		return NoDrop, nil
	case "drop":
		return Drop, nil
	case "ndetect":
		return NDetect, nil
	}
	return 0, fmt.Errorf("fsim: unknown mode %q (want nodrop, drop or ndetect)", name)
}

// Options configures a batch run.
type Options struct {
	Mode Mode
	// N is the detection count at which NDetect mode drops a fault.
	N int
	// StopAtCoverage, when positive (e.g. 0.90), stops the run after
	// the first block in which total fault coverage reaches the
	// threshold. Used to size the random vector set U.
	StopAtCoverage float64
}

// Result holds everything a batch simulation learned.
type Result struct {
	List *fault.List

	// VectorsUsed is the number of vectors actually simulated (may be
	// less than the pattern set size when StopAtCoverage triggers;
	// always a multiple of 64 in that case, except on the last block).
	VectorsUsed int

	// DetCount[f] is the number of simulated vectors that detect
	// fault f (subject to the dropping policy).
	DetCount []int

	// FirstDet[f] is the index of the first vector that detects f, or
	// -1 if f was never detected.
	FirstDet []int

	// Ndet[u] is the number of faults detected by vector u (subject
	// to the dropping policy; in NoDrop mode this is the paper's
	// ndet(u)).
	Ndet []int

	// Det[f] is the detection set D(f) as a bitset over vector
	// indices. Populated in NoDrop mode and, truncated to the first n
	// detections per fault, in NDetect mode; nil in Drop mode, which
	// does not need it (the bitsets dominate memory on large runs).
	Det []*logic.Bitset
}

// Detected reports whether fault f was detected at least once.
func (r *Result) Detected(f int) bool { return r.FirstDet[f] >= 0 }

// DetectedCount returns the number of faults detected at least once.
func (r *Result) DetectedCount() int {
	n := 0
	for _, fd := range r.FirstDet {
		if fd >= 0 {
			n++
		}
	}
	return n
}

// Coverage returns the fraction of faults detected at least once.
func (r *Result) Coverage() float64 {
	if r.List.Len() == 0 {
		return 0
	}
	return float64(r.DetectedCount()) / float64(r.List.Len())
}

// Run simulates every fault of fl against the vectors of ps under the
// given options and returns the collected statistics. It is
// RunContext without cancellation.
func Run(fl *fault.List, ps *logic.PatternSet, opts Options) *Result {
	r, _ := RunContext(context.Background(), fl, ps, opts)
	return r
}

// RunContext is Run with cooperative cancellation: ctx is polled at
// every 64-pattern block boundary, so a cancelled run stops within one
// block of work. On cancellation it returns the partial result
// accumulated so far (vectors simulated before the cancelled block are
// fully accounted) together with ctx.Err(); the error is nil on a
// completed run.
//
// Run is the bit-identity reference for the whole simulator core: it
// always executes the scalar 64-pattern kernel in fault-index order,
// and every parallel/wide configuration must reproduce its result
// exactly.
func RunContext(ctx context.Context, fl *fault.List, ps *logic.PatternSet, opts Options) (*Result, error) {
	c := fl.Circuit
	if ps.Inputs() != c.NumInputs() {
		panic(fmt.Sprintf("fsim: pattern set has %d inputs, circuit has %d", ps.Inputs(), c.NumInputs()))
	}
	if opts.Mode == NDetect && opts.N <= 0 {
		panic("fsim: NDetect mode requires Options.N > 0")
	}

	nf := fl.Len()
	r := &Result{
		List:     fl,
		DetCount: make([]int, nf),
		FirstDet: make([]int, nf),
		Ndet:     make([]int, ps.Len()),
	}
	for i := range r.FirstDet {
		r.FirstDet[i] = -1
	}
	if opts.Mode == NoDrop || opts.Mode == NDetect {
		r.Det = make([]*logic.Bitset, nf)
		for i := range r.Det {
			r.Det[i] = logic.NewBitset(ps.Len())
		}
	}

	k := newKern[circuit.W1](circuit.Compile(c), true)
	pi := make([]circuit.W1, ps.Inputs())

	// active holds indices of not-yet-dropped faults; in NoDrop mode
	// it never shrinks.
	active := make([]int, nf)
	for i := range active {
		active[i] = i
	}

	for block := 0; block < ps.Blocks(); block++ {
		if err := ctx.Err(); err != nil {
			r.Ndet = r.Ndet[:r.VectorsUsed]
			return r, err
		}
		for i := range pi {
			pi[i] = circuit.W1(ps.Word(i, block))
		}
		k.simGood(pi)
		mask := ps.BlockMask(block)
		base := block * logic.WordBits

		w := 0
		for _, fi := range active {
			det := uint64(k.propagate(fl.Faults[fi])) & mask
			if opts.Mode == NDetect && det != 0 {
				// Count detections in vector order and stop exactly at
				// the n-th, so DetCount and ndet are block-size
				// independent.
				det = keepLowestBits(det, opts.N-r.DetCount[fi])
			}
			if det != 0 {
				r.DetCount[fi] += logic.Popcount(det)
				if r.FirstDet[fi] < 0 {
					r.FirstDet[fi] = base + lowestBit(det)
				}
				if r.Det != nil {
					r.Det[fi].OrWord(block, det)
				}
				for d := det; d != 0; d &= d - 1 {
					r.Ndet[base+lowestBit(d)]++
				}
			}
			keep := true
			switch opts.Mode {
			case Drop:
				keep = r.DetCount[fi] == 0
			case NDetect:
				keep = r.DetCount[fi] < opts.N
			}
			if keep {
				active[w] = fi
				w++
			}
		}
		active = active[:w]
		r.VectorsUsed = min(base+logic.WordBits, ps.Len())

		if opts.StopAtCoverage > 0 &&
			float64(r.DetectedCount()) >= opts.StopAtCoverage*float64(nf) {
			break
		}
		if len(active) == 0 && opts.Mode != NoDrop {
			break
		}
	}
	r.Ndet = r.Ndet[:r.VectorsUsed]
	return r, nil
}

// Incremental is the stateful fault simulator used inside the test
// generation loop: vectors arrive one at a time and every fault the
// new vector detects is dropped immediately, exactly the "fault
// dropping" regime of the paper's ATPG flow.
type Incremental struct {
	list  *fault.List
	k     *kern[circuit.W1]
	alive []bool
	nAliv int
	pi    []circuit.W1
}

// NewIncremental returns an Incremental simulator over the faults of
// fl, compiling the circuit first. All faults start alive.
func NewIncremental(fl *fault.List) *Incremental {
	return NewIncrementalCompiled(fl, circuit.Compile(fl.Circuit))
}

// NewIncrementalCompiled is NewIncremental over an existing compiled
// form of fl's circuit (or a structurally identical one).
func NewIncrementalCompiled(fl *fault.List, cc *circuit.Compiled) *Incremental {
	if cc.Circuit != fl.Circuit && cc.Fingerprint != fl.Circuit.Fingerprint() {
		panic("fsim: compiled form does not match the fault list's circuit")
	}
	inc := &Incremental{
		list:  fl,
		k:     newKern[circuit.W1](cc, true),
		alive: make([]bool, fl.Len()),
		nAliv: fl.Len(),
		pi:    make([]circuit.W1, cc.NumInputs()),
	}
	for i := range inc.alive {
		inc.alive[i] = true
	}
	return inc
}

// Alive reports whether fault f has not yet been detected.
func (inc *Incremental) Alive(f int) bool { return inc.alive[f] }

// Remaining returns the number of alive faults.
func (inc *Incremental) Remaining() int { return inc.nAliv }

// Drop removes fault f from consideration without a detection (used
// for faults proven redundant by the ATPG). It is a no-op when f is
// already dropped.
func (inc *Incremental) Drop(f int) {
	if inc.alive[f] {
		inc.alive[f] = false
		inc.nAliv--
	}
}

// SimulateVector simulates v against all alive faults, drops every
// fault it detects and returns the dropped fault indices in
// increasing order.
func (inc *Incremental) SimulateVector(v logic.Vector) []int {
	if len(v) != len(inc.pi) {
		panic(fmt.Sprintf("fsim: vector width %d, circuit has %d inputs", len(v), len(inc.pi)))
	}
	for i, bit := range v {
		if bit != 0 {
			inc.pi[i] = 1
		} else {
			inc.pi[i] = 0
		}
	}
	inc.k.simGood(inc.pi)

	var detected []int
	for fi, ok := range inc.alive {
		if !ok {
			continue
		}
		if inc.k.propagate(inc.list.Faults[fi])&1 != 0 {
			inc.alive[fi] = false
			inc.nAliv--
			detected = append(detected, fi)
		}
	}
	return detected
}

func lowestBit(w uint64) int {
	return logic.Popcount(w&-w - 1)
}

// keepLowestBits returns w with all but its k lowest set bits cleared.
func keepLowestBits(w uint64, k int) uint64 {
	if k <= 0 {
		return 0
	}
	out := w
	for logic.Popcount(out) > k {
		out &^= 1 << uint(highestBit(out))
	}
	return out
}

// highestBit returns the index of the highest set bit of w; w must be
// non-zero.
func highestBit(w uint64) int {
	n := 0
	for shift := 32; shift > 0; shift >>= 1 {
		if w>>uint(shift) != 0 {
			w >>= uint(shift)
			n += shift
		}
	}
	return n
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
