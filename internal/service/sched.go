package service

import (
	"errors"
	"fmt"
)

// ErrOverloaded is returned by Submit when admission control rejects a
// job: the global queue bound or the tenant's own queue bound is
// reached. On the wire it is the typed "overloaded" envelope code with
// HTTP 429 and a Retry-After header — callers back off and resubmit
// instead of growing an unbounded queue.
var ErrOverloaded = errors.New("service: overloaded, queue is full")

// TenantLimit configures one tenant's slice of the service.
type TenantLimit struct {
	// Weight is the tenant's scheduling weight: a tenant with weight 3
	// is dispatched three jobs for every one of a weight-1 tenant when
	// both have work queued (default 1).
	Weight int
	// MaxQueued bounds the tenant's queued (not yet running) jobs;
	// submits beyond it are rejected with ErrOverloaded. 0 means no
	// per-tenant bound — only the global Config.MaxQueuedJobs applies.
	MaxQueued int
}

// tenantQueue is one tenant's FIFO plus its stride-scheduling state.
type tenantQueue struct {
	name  string
	queue []*job
	// pass is the tenant's virtual time: each dispatch advances it by
	// stride = 1/weight, so the dispatcher's pick-minimum-pass rule
	// interleaves tenants in proportion to their weights.
	pass   float64
	stride float64
	limit  int
}

// scheduler is the per-tenant weighted-fair queue set, replacing the
// single FIFO the engine started with. All methods are called with the
// owning Service's mu held.
type scheduler struct {
	tenants map[string]*tenantQueue
	queued  int
	// base is the pass of the most recent dispatch; tenants entering
	// (or re-entering after idling) start here, so an idle tenant
	// cannot bank virtual time and then monopolize the pool.
	base float64
}

func newScheduler() *scheduler {
	return &scheduler{tenants: make(map[string]*tenantQueue)}
}

// tenantFor returns (creating if needed) tenant's queue, configured
// from limits.
func (sc *scheduler) tenantFor(tenant string, limits map[string]TenantLimit) *tenantQueue {
	tq, ok := sc.tenants[tenant]
	if !ok {
		tl := limits[tenant]
		w := tl.Weight
		if w <= 0 {
			w = 1
		}
		tq = &tenantQueue{name: tenant, pass: sc.base, stride: 1 / float64(w), limit: tl.MaxQueued}
		sc.tenants[tenant] = tq
	}
	return tq
}

// enqueue appends j to its tenant's queue.
func (sc *scheduler) enqueue(tq *tenantQueue, j *job) {
	if len(tq.queue) == 0 && tq.pass < sc.base {
		tq.pass = sc.base
	}
	tq.queue = append(tq.queue, j)
	sc.queued++
}

// pop dispatches the next job: the front of the non-empty tenant queue
// with the smallest pass. Returns nil when nothing is queued.
func (sc *scheduler) pop() *job {
	var best *tenantQueue
	for _, tq := range sc.tenants {
		if len(tq.queue) == 0 {
			continue
		}
		if best == nil || tq.pass < best.pass ||
			(tq.pass == best.pass && tq.name < best.name) {
			best = tq
		}
	}
	if best == nil {
		return nil
	}
	j := best.queue[0]
	best.queue[0] = nil
	best.queue = best.queue[1:]
	sc.base = best.pass
	best.pass += best.stride
	sc.queued--
	return j
}

// remove dequeues j if it is still queued, reporting whether it was.
// The caller that wins the removal owns j's terminal transition.
func (sc *scheduler) remove(j *job) bool {
	tq, ok := sc.tenants[j.tenant]
	if !ok {
		return false
	}
	for i, q := range tq.queue {
		if q == j {
			tq.queue = append(tq.queue[:i], tq.queue[i+1:]...)
			sc.queued--
			return true
		}
	}
	return false
}

// drainAll empties every tenant queue and returns the dequeued jobs in
// tenant-then-FIFO order; Drain cancels them.
func (sc *scheduler) drainAll() []*job {
	var out []*job
	for _, tq := range sc.tenants {
		out = append(out, tq.queue...)
		tq.queue = nil
	}
	sc.queued = 0
	return out
}

// depth returns tenant's queued-job count.
func (sc *scheduler) depth(tenant string) int {
	if tq, ok := sc.tenants[tenant]; ok {
		return len(tq.queue)
	}
	return 0
}

// tenantLabel renders a tenant name as its metric label value: the
// empty (unset) tenant reads "default" on dashboards.
func tenantLabel(tenant string) string {
	if tenant == "" {
		return "default"
	}
	return tenant
}

// validateTenancy checks the multi-tenant spec fields at submit time.
// Both fields are free-form client identifiers; the bounds keep them
// usable as journal payloads and metric labels.
func validateTenancy(spec JobSpec) error {
	if len(spec.Tenant) > 64 {
		return fmt.Errorf("tenant longer than 64 bytes")
	}
	if len(spec.IdempotencyKey) > 256 {
		return fmt.Errorf("idempotency_key longer than 256 bytes")
	}
	for _, field := range []struct{ name, v string }{
		{"tenant", spec.Tenant}, {"idempotency_key", spec.IdempotencyKey},
	} {
		for _, c := range field.v {
			if c < 0x20 || c == 0x7f {
				return fmt.Errorf("%s contains a control character", field.name)
			}
		}
	}
	return nil
}

// idemCacheKey builds the dedupe map key: idempotency keys are scoped
// per tenant. Empty when the spec carries no key.
func idemCacheKey(tenant, key string) string {
	if key == "" {
		return ""
	}
	return tenant + "\x00" + key
}
