// Command benchgen emits the synthetic benchmark suite as .bench
// files, so the circuits the experiments run on can be inspected,
// archived, or fed to third-party tools.
//
// Usage:
//
//	benchgen -out ./bench              # full suite, irredundant
//	benchgen -out ./bench -raw         # skip the irredundancy pass
//	benchgen -out ./bench -suite small
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/eda-go/adifo/internal/circuit"
	"github.com/eda-go/adifo/internal/cli"
	"github.com/eda-go/adifo/internal/gen"
	"github.com/eda-go/adifo/internal/irr"
)

func main() {
	var (
		out      = flag.String("out", ".", "output directory")
		suiteSel = flag.String("suite", "full", "circuit suite: full, small, or one circuit name")
		raw      = flag.Bool("raw", false, "emit the raw generator output without the irredundancy pass")
	)
	flag.Parse()

	if err := run(*out, *suiteSel, *raw); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

func run(out, suiteSel string, raw bool) error {
	suite, err := cli.Suite(suiteSel)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	for _, sc := range suite {
		c := gen.Generate(sc.Config())
		if !raw {
			var err error
			c, _, err = irr.Make(c, irr.Options{})
			if err != nil {
				return fmt.Errorf("%s: %w", sc.Name, err)
			}
		}
		path := filepath.Join(out, sc.Name+".bench")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := circuit.WriteBench(f, c); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		st := c.ComputeStats()
		fmt.Printf("%s: %d inputs, %d outputs, %d gates, %d levels -> %s\n",
			sc.Name, st.Inputs, st.Outputs, st.Gates, st.Levels, path)
	}
	return nil
}
