// Package adi implements the paper's contribution: the accidental
// detection index (ADI) and the fault orders built from it.
//
// # Definition (Section 2 of the paper)
//
// Given a circuit, a target fault set F and a vector set U, simulate
// the faults of F under U without fault dropping. For every vector
// u ∈ U let ndet(u) be the number of faults u detects, and for every
// fault f let D(f) ⊆ U be the vectors that detect f. Then
//
//	ADI(f) = min{ ndet(u) : u ∈ D(f) }   for f detected by U,
//	ADI(f) = 0                           otherwise.
//
// ADI(f) estimates (conservatively) how many faults a test generated
// for f will detect accidentally: whatever vector the ATPG produces
// for f, if it behaves like a vector of U that detects f, it detects
// at least min ndet faults. A fault f itself is counted, so
// ADI(f) >= 1 for every detected fault.
//
// # Orders (Section 3)
//
// Six orders over fault indices are provided; all are permutations of
// the full target set F (faults detected by U are deliberately NOT
// dropped — see the paper's Section 1 for the rationale):
//
//	Orig   original listing order (the comparison baseline)
//	Incr0  increasing ADI, zero-ADI faults last (adversarial control)
//	Decr   decreasing ADI, zero-ADI faults last
//	Decr0  zero-ADI faults first, then decreasing ADI
//	Dynm   like Decr but ndet/ADI are updated dynamically as faults
//	       are placed (the paper's F_dynm)
//	Dynm0  zero-ADI faults first, then the dynamic process (F_0dynm)
//
// Ties are broken by fault index, matching the worked lion example in
// the paper (among equal ADI, the earlier-listed fault is placed
// first).
package adi

import (
	"fmt"
	"sort"

	"github.com/eda-go/adifo/internal/fault"
	"github.com/eda-go/adifo/internal/fsim"
	"github.com/eda-go/adifo/internal/logic"
)

// Index holds the accidental detection indices of one fault list under
// one vector set, together with the raw detection data needed by the
// dynamic orders.
type Index struct {
	List *fault.List
	U    *logic.PatternSet

	// Ndet[u] is the number of faults detected by vector u (no
	// dropping).
	Ndet []int

	// Det[f] is D(f), the set of vectors detecting fault f.
	Det []*logic.Bitset

	// ADI[f] is the accidental detection index of fault f; zero for
	// faults not detected by U.
	ADI []int
}

// Compute fault-simulates fl under U without dropping and derives the
// accidental detection indices.
func Compute(fl *fault.List, u *logic.PatternSet) *Index {
	res := fsim.Run(fl, u, fsim.Options{Mode: fsim.NoDrop})
	return FromResult(res, u)
}

// ComputeNDetect estimates the indices from n-detection fault
// simulation instead of full no-drop simulation — the cheaper
// alternative the paper mentions ("it is also possible to use
// n-detection fault simulation to estimate ndet(u)", Section 2).
// Faults are dropped after their n-th detection, so ndet(u) counts
// only pre-drop detections and D(f) holds at most n vectors; the
// resulting indices are an under-estimate whose ordering quality is
// evaluated by the ablation benchmarks.
func ComputeNDetect(fl *fault.List, u *logic.PatternSet, n int) *Index {
	res := fsim.Run(fl, u, fsim.Options{Mode: fsim.NDetect, N: n})
	return FromResult(res, u)
}

// FromResult derives the indices from an existing simulation result
// that carries detection sets (NoDrop or NDetect mode; it panics on a
// Drop-mode result, which records no D(f)).
func FromResult(res *fsim.Result, u *logic.PatternSet) *Index {
	if res.Det == nil {
		panic("adi: FromResult requires a NoDrop or NDetect simulation result")
	}
	ix := &Index{
		List: res.List,
		U:    u,
		Ndet: append([]int(nil), res.Ndet...),
		Det:  res.Det,
		ADI:  make([]int, res.List.Len()),
	}
	for fi := range ix.ADI {
		ix.ADI[fi] = minNdet(ix.Det[fi], ix.Ndet)
	}
	return ix
}

// minNdet returns min ndet(u) over the set bits of det, or 0 when det
// is empty.
func minNdet(det *logic.Bitset, ndet []int) int {
	minV := 0
	det.ForEach(func(u int) {
		if minV == 0 || ndet[u] < minV {
			minV = ndet[u]
		}
	})
	return minV
}

// DetectedByU reports whether fault f is detected by U (i.e. belongs
// to the paper's F_U).
func (ix *Index) DetectedByU(f int) bool { return ix.Det[f].Any() }

// NumDetected returns |F_U|.
func (ix *Index) NumDetected() int {
	n := 0
	for fi := range ix.ADI {
		if ix.DetectedByU(fi) {
			n++
		}
	}
	return n
}

// MinMax returns the smallest and largest ADI over faults detected by
// U (the paper's ADImin and ADImax, Table 4). Both are zero when no
// fault is detected.
func (ix *Index) MinMax() (minADI, maxADI int) {
	for fi, a := range ix.ADI {
		if !ix.DetectedByU(fi) {
			continue
		}
		if minADI == 0 || a < minADI {
			minADI = a
		}
		if a > maxADI {
			maxADI = a
		}
	}
	return minADI, maxADI
}

// Ratio returns ADImax/ADImin (0 when undefined), the spread measure
// of the paper's Table 4.
func (ix *Index) Ratio() float64 {
	mn, mx := ix.MinMax()
	if mn == 0 {
		return 0
	}
	return float64(mx) / float64(mn)
}

// OrderKind names one of the six fault orders.
type OrderKind int

// The six orders of the paper, in the order they are introduced.
const (
	Orig OrderKind = iota
	Incr0
	Decr
	Decr0
	Dynm
	Dynm0
)

// String returns the paper's label for the order.
func (k OrderKind) String() string {
	switch k {
	case Orig:
		return "orig"
	case Incr0:
		return "incr0"
	case Decr:
		return "decr"
	case Decr0:
		return "0decr"
	case Dynm:
		return "dynm"
	case Dynm0:
		return "0dynm"
	}
	return fmt.Sprintf("OrderKind(%d)", int(k))
}

// AllOrders lists every OrderKind.
func AllOrders() []OrderKind {
	return []OrderKind{Orig, Incr0, Decr, Decr0, Dynm, Dynm0}
}

// Order returns the fault indices of ix.List permuted according to
// kind. The result is always a permutation of [0, n).
func (ix *Index) Order(kind OrderKind) []int {
	n := len(ix.ADI)
	switch kind {
	case Orig:
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	case Incr0:
		nz, z := ix.split()
		sort.SliceStable(nz, func(a, b int) bool { return ix.ADI[nz[a]] < ix.ADI[nz[b]] })
		return append(nz, z...)
	case Decr:
		nz, z := ix.split()
		sort.SliceStable(nz, func(a, b int) bool { return ix.ADI[nz[a]] > ix.ADI[nz[b]] })
		return append(nz, z...)
	case Decr0:
		nz, z := ix.split()
		sort.SliceStable(nz, func(a, b int) bool { return ix.ADI[nz[a]] > ix.ADI[nz[b]] })
		return append(z, nz...)
	case Dynm:
		nz, z := ix.split()
		dyn := ix.dynamicOrder(nz)
		return append(dyn, z...)
	case Dynm0:
		nz, z := ix.split()
		dyn := ix.dynamicOrder(nz)
		return append(z, dyn...)
	}
	panic(fmt.Sprintf("adi: unknown order kind %d", int(kind)))
}

// split partitions fault indices into (detected-by-U, zero-ADI) lists,
// both in original order.
func (ix *Index) split() (nonzero, zero []int) {
	for fi := range ix.ADI {
		if ix.DetectedByU(fi) {
			nonzero = append(nonzero, fi)
		} else {
			zero = append(zero, fi)
		}
	}
	return nonzero, zero
}

// dynamicOrder implements the paper's dynamic ordering process over
// the given faults (all detected by U): repeatedly place the fault
// with the highest current ADI, then decrement ndet(u) for every
// u ∈ D(f) of the placed fault and recompute the affected indices.
//
// The implementation is a lazy max-heap: cached keys are upper bounds
// because ndet values only decrease. A popped entry is re-keyed and
// reinserted when stale; it is accepted when its recomputed value
// still matches the cached maximum, which preserves the (ADI
// decreasing, fault index increasing) placement rule exactly while
// costing O((Σ|D(f)| + n) log n) overall.
func (ix *Index) dynamicOrder(faults []int) []int {
	ndet := append([]int(nil), ix.Ndet...)
	h := newMaxHeap(len(faults))
	for _, fi := range faults {
		h.push(entry{key: ix.ADI[fi], fault: fi})
	}
	out := make([]int, 0, len(faults))
	for h.len() > 0 {
		e := h.pop()
		cur := minNdet(ix.Det[e.fault], ndet)
		if cur != e.key {
			h.push(entry{key: cur, fault: e.fault})
			continue
		}
		out = append(out, e.fault)
		ix.Det[e.fault].ForEach(func(u int) { ndet[u]-- })
	}
	return out
}

// entry is a heap element: a fault with its cached ADI.
type entry struct {
	key   int
	fault int
}

// maxHeap orders entries by (key desc, fault asc).
type maxHeap struct {
	es []entry
}

func newMaxHeap(capHint int) *maxHeap {
	return &maxHeap{es: make([]entry, 0, capHint)}
}

func (h *maxHeap) len() int { return len(h.es) }

func (h *maxHeap) less(a, b entry) bool {
	if a.key != b.key {
		return a.key > b.key
	}
	return a.fault < b.fault
}

func (h *maxHeap) push(e entry) {
	h.es = append(h.es, e)
	i := len(h.es) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(h.es[i], h.es[p]) {
			break
		}
		h.es[i], h.es[p] = h.es[p], h.es[i]
		i = p
	}
}

func (h *maxHeap) pop() entry {
	top := h.es[0]
	last := len(h.es) - 1
	h.es[0] = h.es[last]
	h.es = h.es[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < last && h.less(h.es[l], h.es[best]) {
			best = l
		}
		if r < last && h.less(h.es[r], h.es[best]) {
			best = r
		}
		if best == i {
			break
		}
		h.es[i], h.es[best] = h.es[best], h.es[i]
		i = best
	}
	return top
}
