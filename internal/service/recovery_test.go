package service

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/eda-go/adifo/internal/journal"
	"github.com/eda-go/adifo/internal/obs"
)

// journalCfg is the base configuration of the recovery tests: a
// journal in dir, all kinds enabled, quiet logs.
func journalCfg(dir string) Config {
	return Config{Logger: obs.Nop(), SimWorkers: 2, JournalDir: dir}
}

func mustOpen(t *testing.T, cfg Config) *Service {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

// httpGet fetches path from the service's handler and returns status
// code and body bytes.
func httpGet(t *testing.T, h http.Handler, path string) (int, []byte) {
	t.Helper()
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestJournalRecoveryTerminalBytes runs one job of every kind (plus a
// failed and a cancelled one) on a journal-backed service, restarts
// the service on the same directory, and requires the replayed
// /result responses to be byte-identical to the live ones — the
// restart is invisible to a polling client.
func TestJournalRecoveryTerminalBytes(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, journalCfg(dir))

	pat := PatternSpec{Random: &RandomSpec{N: 128, Seed: 7}}
	specs := map[string]JobSpec{
		"grade": {Circuit: "c17", Mode: "drop", Patterns: pat, Tenant: "acme"},
		"atpg":  {Kind: KindAtpg, Circuit: "c17", Patterns: pat, Order: &OrderSpec{Kind: "dynm"}},
		"order": {Kind: KindADIOrder, Circuit: "c17", Patterns: pat, Order: &OrderSpec{Kind: "decr"}},
		"fail":  {Circuit: "no_such_circuit", Mode: "drop", Patterns: pat},
	}
	ids := map[string]string{}
	for name, spec := range specs {
		id, err := a.Submit(spec)
		if err != nil {
			t.Fatalf("submit %s: %v", name, err)
		}
		ids[name] = id
		waitTerminal(t, a, id)
	}
	cancelledID, err := a.Submit(slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	a.Cancel(cancelledID)
	waitTerminal(t, a, cancelledID)
	ids["cancelled"] = cancelledID

	// Snapshot the live wire responses, then stop the service.
	type snap struct {
		code   int
		result []byte
		status JobStatus
	}
	snaps := map[string]snap{}
	for name, id := range ids {
		code, body := httpGet(t, a.Handler(), "/v1/jobs/"+id+"/result")
		st, ok := a.Status(id)
		if !ok {
			t.Fatalf("status of %s vanished", id)
		}
		snaps[name] = snap{code: code, result: body, status: st}
	}
	a.Close()

	b := mustOpen(t, journalCfg(dir))
	defer b.Close()
	for name, id := range ids {
		want := snaps[name]
		code, body := httpGet(t, b.Handler(), "/v1/jobs/"+id+"/result")
		if code != want.code {
			t.Errorf("%s: replayed result status = %d, want %d", name, code, want.code)
		}
		if string(body) != string(want.result) {
			t.Errorf("%s: replayed result bytes differ\n live: %s\nreplay: %s",
				name, want.result, body)
		}
		st, ok := b.Status(id)
		if !ok {
			t.Fatalf("%s: job %s missing after replay", name, id)
		}
		if st.State != want.status.State || st.Kind != want.status.Kind ||
			st.Tenant != want.status.Tenant || st.Error != want.status.Error {
			t.Errorf("%s: replayed status = %+v, want state/kind/tenant/error of %+v",
				name, st, want.status)
		}
	}
	// Typed in-process access survives too.
	if res, _, err := b.result(ids["grade"]); err != nil {
		t.Errorf("typed result after replay: %v", err)
	} else if _, ok := res.(*JobResult); !ok {
		t.Errorf("typed result after replay is %T, want *JobResult", res)
	}
}

// TestJournalRequeueDeterminism hand-crafts a journal holding only
// submitted records — jobs that never ran — and requires the
// recovering service to run them to the exact results a fresh
// submission of the same specs produces, for every kind.
func TestJournalRequeueDeterminism(t *testing.T) {
	pat := PatternSpec{Random: &RandomSpec{N: 128, Seed: 11}}
	specs := []JobSpec{
		{Circuit: "c17", Mode: "drop", Patterns: pat},
		{Kind: KindAtpg, Circuit: "c17", Patterns: pat, Order: &OrderSpec{Kind: "dynm"}},
		{Kind: KindADIOrder, Circuit: "c17", Patterns: pat, Order: &OrderSpec{Kind: "decr"}},
	}

	dir := t.TempDir()
	jnl, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		raw, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := jnl.Append(journal.Record{
			Type: journal.TypeSubmitted,
			Job:  "j" + string(rune('1'+i)),
			Kind: NormalizeKind(spec.Kind),
			Spec: raw,
			At:   time.Now().UnixNano(),
		}); err != nil {
			t.Fatal(err)
		}
	}
	jnl.Close()

	recovered := mustOpen(t, journalCfg(dir))
	defer recovered.Close()
	control := New(Config{Logger: obs.Nop(), SimWorkers: 2})
	defer control.Close()

	// Results modulo timing: wall-clock history legitimately differs
	// between the two runs; everything else must not.
	sansTiming := func(res any) map[string]any {
		raw, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatal(err)
		}
		delete(m, "timing")
		// Trace ids are run identity, not payload: the control run is a
		// different submission, so its trace legitimately differs.
		delete(m, "trace_id")
		return m
	}
	for i, spec := range specs {
		id := "j" + string(rune('1'+i))
		st := waitTerminal(t, recovered, id)
		if st.State != StateDone {
			t.Fatalf("replayed job %s: state %s (%s), want done", id, st.State, st.Error)
		}
		cid, err := control.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if cst := waitTerminal(t, control, cid); cst.State != StateDone {
			t.Fatalf("control job %s: state %s (%s), want done", cid, cst.State, cst.Error)
		}
		got, _, err := recovered.result(id)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := control.result(cid)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sansTiming(got), sansTiming(want)) {
			t.Errorf("kind %s: replayed run diverged from control\nreplay: %#v\ncontrol: %#v",
				NormalizeKind(spec.Kind), sansTiming(got), sansTiming(want))
		}
	}
	if recovered.replayRequeued != uint64(len(specs)) {
		t.Errorf("replayRequeued = %d, want %d", recovered.replayRequeued, len(specs))
	}
}

// TestJournalIdempotencyAcrossRestart: an idempotency key used before
// a restart still answers with the original job id afterwards — the
// dedupe map is rebuilt from the journal.
func TestJournalIdempotencyAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, journalCfg(dir))
	spec := JobSpec{Circuit: "c17", Mode: "drop", Tenant: "acme", IdempotencyKey: "key-1",
		Patterns: PatternSpec{Random: &RandomSpec{N: 64, Seed: 3}}}
	id, err := a.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, a, id)
	if again, _ := a.Submit(spec); again != id {
		t.Fatalf("live dedupe returned %s, want %s", again, id)
	}
	a.Close()

	b := mustOpen(t, journalCfg(dir))
	defer b.Close()
	again, err := b.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if again != id {
		t.Fatalf("post-restart dedupe returned %s, want %s", again, id)
	}
	if got := b.Stats().JobsDeduped; got != 1 {
		t.Errorf("JobsDeduped = %d, want 1", got)
	}
	// A different tenant with the same key is a different submission.
	other := spec
	other.Tenant = "rival"
	otherID, err := b.Submit(other)
	if err != nil {
		t.Fatal(err)
	}
	if otherID == id {
		t.Fatalf("key deduped across tenants: both got %s", id)
	}
}

// TestJournalReplayUnrunnableSpec: a journaled queued job whose spec
// this server can no longer run (kind disabled) becomes a failed job
// — and the failure itself is journaled, so the next restart does not
// retry it again.
func TestJournalReplayUnrunnableSpec(t *testing.T) {
	dir := t.TempDir()
	// A journal holding only the submitted record — the process died
	// with the job still queued.
	jnl, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{Kind: KindAtpg, Circuit: "c17",
		Patterns: PatternSpec{Random: &RandomSpec{N: 64, Seed: 5}},
		Order:    &OrderSpec{Kind: "dynm"}}
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	const id = "j1"
	if err := jnl.Append(journal.Record{Type: journal.TypeSubmitted,
		Job: id, Kind: KindAtpg, Spec: raw, At: time.Now().UnixNano()}); err != nil {
		t.Fatal(err)
	}
	jnl.Close()

	// Restart with atpg disabled: the replayed spec fails validation.
	b := mustOpen(t, Config{Logger: obs.Nop(), SimWorkers: 2, JournalDir: dir,
		Kinds: []string{KindGrade}})
	st, ok := b.Status(id)
	if !ok {
		t.Fatal("replayed job missing")
	}
	if st.State != StateFailed {
		t.Fatalf("replayed unrunnable job state = %s, want failed", st.State)
	}
	if _, _, err := b.result(id); err == nil || errors.Is(err, ErrNotDone) {
		t.Fatalf("result of failed replayed job = %v, want the job failure", err)
	}
	b.Close()

	// Third incarnation: the failure was journaled, so the job is
	// still terminal — not retried.
	c := mustOpen(t, Config{Logger: obs.Nop(), SimWorkers: 2, JournalDir: dir,
		Kinds: []string{KindGrade}})
	defer c.Close()
	if st, _ := c.Status(id); st.State != StateFailed {
		t.Fatalf("third incarnation state = %s, want failed", st.State)
	}
	if c.replayRequeued != 0 {
		t.Errorf("third incarnation requeued %d jobs, want 0", c.replayRequeued)
	}
}

// TestJournalSubmitDurableBeforeAck: the submitted record of an acked
// job is already on disk — a journal reader sees it without any
// cooperation from the (still running) service.
func TestJournalSubmitDurableBeforeAck(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, journalCfg(dir))
	defer s.Close()
	id, err := s.Submit(JobSpec{Circuit: "c17", Mode: "drop",
		Patterns: PatternSpec{Random: &RandomSpec{N: 64, Seed: 9}}})
	if err != nil {
		t.Fatal(err)
	}
	var seen bool
	if _, err := journal.Replay(dir, func(rec journal.Record) error {
		if rec.Type == journal.TypeSubmitted && rec.Job == id {
			seen = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !seen {
		t.Fatalf("submitted record of %s not durable at ack time", id)
	}
	waitTerminal(t, s, id)
}

// TestJournalDisabledNoDir: without JournalDir nothing is written and
// recovery is a no-op — the pre-journal configuration keeps its exact
// behavior.
func TestJournalDisabledNoDir(t *testing.T) {
	s := New(Config{Logger: obs.Nop(), SimWorkers: 2})
	defer s.Close()
	id, err := s.Submit(JobSpec{Circuit: "c17", Mode: "drop",
		Patterns: PatternSpec{Random: &RandomSpec{N: 64, Seed: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, s, id); st.State != StateDone {
		t.Fatalf("state = %s, want done", st.State)
	}
	if s.jnl != nil {
		t.Fatal("journal open without JournalDir")
	}
}

// TestJournalMetricsExposed: the journal families read real values on
// a journal-backed service.
func TestJournalMetricsExposed(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, journalCfg(dir))
	defer s.Close()
	id, err := s.Submit(JobSpec{Circuit: "c17", Mode: "drop",
		Patterns: PatternSpec{Random: &RandomSpec{N: 64, Seed: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, id)
	_, body := httpGet(t, s.Metrics().Handler(), "/")
	for _, want := range []string{
		"adifo_journal_enabled 1",
		"adifo_journal_appends_total",
		"adifo_journal_syncs_total",
	} {
		if !containsLine(string(body), want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
	if filepath.Join(dir, "00000001.wal") == "" {
		t.Fatal("unreachable")
	}
}

// containsLine reports whether any exposition line starts with prefix.
func containsLine(body, prefix string) bool {
	for len(body) > 0 {
		i := 0
		for i < len(body) && body[i] != '\n' {
			i++
		}
		line := body[:i]
		if len(line) >= len(prefix) && line[:len(prefix)] == prefix {
			return true
		}
		if i == len(body) {
			break
		}
		body = body[i+1:]
	}
	return false
}
