package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/eda-go/adifo"
)

func TestCommands(t *testing.T) {
	cases := []struct{ cmd, circuit string }{
		{"stats", "c17"},
		{"faults", "c17"},
		{"adi", "lion"},
		{"order", "lion"},
	}
	for _, c := range cases {
		o := options{circuit: c.circuit, exhaustive: true, n: 100, seed: 1, order: "dynm", limit: 5}
		if err := run(c.cmd, o); err != nil {
			t.Fatalf("%s %s: %v", c.cmd, c.circuit, err)
		}
	}
}

// TestGradeInProcess drives the grade verb end to end against the
// in-process loopback server: submit, stream, result.
func TestGradeInProcess(t *testing.T) {
	o := options{circuit: "c17", mode: "nodrop", n: 128, seed: 1, limit: 3, quiet: true}
	if err := run("grade", o); err != nil {
		t.Fatalf("grade c17: %v", err)
	}
}

// TestGradeRemote drives the grade verb against one real HTTP server
// (the single -server path).
func TestGradeRemote(t *testing.T) {
	g := adifo.NewLocalGrader(adifo.GraderConfig{})
	defer g.Close()
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	o := options{circuit: "c17", mode: "nodrop", n: 128, seed: 1, limit: 2, quiet: true,
		servers: serverList{srv.URL}}
	if err := run("grade", o); err != nil {
		t.Fatalf("grade -server: %v", err)
	}
}

// TestGradeCluster drives the grade verb end to end across two real
// HTTP backends — the `adifo grade -server A -server B` path — and
// checks the sharded run against an in-process single-engine run.
func TestGradeCluster(t *testing.T) {
	mk := func() *httptest.Server {
		g := adifo.NewLocalGrader(adifo.GraderConfig{})
		srv := httptest.NewServer(g.Handler())
		t.Cleanup(func() {
			srv.Close()
			g.Close()
		})
		return srv
	}
	a, b := mk(), mk()
	o := options{circuit: "c17", mode: "drop", n: 256, seed: 3, limit: 2, quiet: true,
		servers: serverList{a.URL, b.URL}}
	if err := run("grade", o); err != nil {
		t.Fatalf("grade -server A -server B: %v", err)
	}
}

// TestGradeBenchFile checks that a .bench file path is shipped as
// inline netlist text.
func TestGradeBenchFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "toy.bench")
	src := "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	o := options{circuit: path, mode: "drop", exhaustive: true, quiet: true}
	if err := run("grade", o); err != nil {
		t.Fatalf("grade %s: %v", path, err)
	}
}

func TestOrderBadName(t *testing.T) {
	o := options{circuit: "lion", exhaustive: true, n: 100, seed: 1, order: "bogus"}
	if err := run("order", o); err == nil {
		t.Fatal("expected error for unknown order")
	}
}

func TestBadCircuit(t *testing.T) {
	o := options{circuit: "nope", n: 10, seed: 1, order: "dynm"}
	if err := run("stats", o); err != nil {
		// expected
		return
	}
	t.Fatal("expected error for unknown circuit")
}

func TestGradeBadMode(t *testing.T) {
	o := options{circuit: "c17", mode: "bogus", n: 10, seed: 1, quiet: true}
	if err := run("grade", o); err == nil {
		t.Fatal("expected error for unknown mode")
	}
}

// TestGenInProcess drives the gen verb end to end through the public
// library path.
func TestGenInProcess(t *testing.T) {
	o := options{circuit: "c17", n: 96, seed: 7, order: "dynm", fillseed: adifo.DefaultFillSeed, limit: 3, quiet: true}
	if err := run("gen", o); err != nil {
		t.Fatalf("gen c17: %v", err)
	}
}

// TestGenRemoteMatchesLocal drives the gen verb against a real HTTP
// server and checks the printed test rows match the in-process path —
// the CLI-level view of the bit-identical guarantee.
func TestGenRemoteMatchesLocal(t *testing.T) {
	g := adifo.NewLocalGrader(adifo.GraderConfig{})
	defer g.Close()
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	capture := func(o options) string {
		t.Helper()
		f, err := os.CreateTemp(t.TempDir(), "out")
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := gen(o, f); err != nil {
			t.Fatalf("gen: %v", err)
		}
		data, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	o := options{circuit: "c17", n: 96, seed: 7, order: "0dynm", fillseed: 11, quiet: true}
	local := capture(o)
	o.servers = serverList{srv.URL}
	remote := capture(o)

	pick := func(out string) []string {
		var rows []string
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "timing") || strings.HasPrefix(line, "trace ") {
				continue // server-side wall clock and trace id, remote-only by design
			}
			if strings.HasPrefix(line, "t") || strings.HasPrefix(line, "tests ") {
				rows = append(rows, line)
			}
		}
		return rows
	}
	lr, rr := pick(local), pick(remote)
	if len(lr) == 0 || !reflect.DeepEqual(lr, rr) {
		t.Fatalf("local and remote gen output diverge:\nlocal:\n%s\nremote:\n%s", local, remote)
	}
}

// TestOrderRemote drives the order verb against a real HTTP server.
func TestOrderRemote(t *testing.T) {
	g := adifo.NewLocalGrader(adifo.GraderConfig{})
	defer g.Close()
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	o := options{circuit: "lion", exhaustive: true, order: "dynm", limit: 5, quiet: true,
		servers: serverList{srv.URL}}
	if err := run("order", o); err != nil {
		t.Fatalf("order -server: %v", err)
	}
}

// TestGenRejectsCluster: gen must refuse multiple -server flags with
// an explanation instead of sharding an unshardable workload.
func TestGenRejectsCluster(t *testing.T) {
	o := options{circuit: "c17", n: 16, seed: 1, order: "dynm", quiet: true,
		servers: serverList{"http://a", "http://b"}}
	err := run("gen", o)
	if err == nil || !strings.Contains(err.Error(), "single -server") {
		t.Fatalf("gen with two servers = %v, want single-server error", err)
	}
}

// fakeTerminalServer is a minimal v1 server whose only job ends in
// the given terminal state: it accepts a submit, then streams one
// final status line.
func fakeTerminalServer(t *testing.T, state, errMsg string) *httptest.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintln(w, `{"id":"j1"}`)
	})
	mux.HandleFunc("GET /v1/jobs/j1/stream", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		json.NewEncoder(w).Encode(adifo.JobStatus{ID: "j1", Kind: adifo.KindGrade, State: state, Error: errMsg})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestGradeCancelledVsFailedExit: a job that ends cancelled and one
// that ends failed must both exit non-zero, with distinct messages —
// a cancelled run is not a crashed one.
func TestGradeCancelledVsFailedExit(t *testing.T) {
	cancelled := fakeTerminalServer(t, adifo.JobCancelled, "")
	failed := fakeTerminalServer(t, adifo.JobFailed, "boom")

	o := options{circuit: "c17", mode: "nodrop", n: 16, seed: 1, quiet: true}
	o.servers = serverList{cancelled.URL}
	errCancelled := run("grade", o)
	if errCancelled == nil {
		t.Fatal("grade of a cancelled job returned success")
	}
	o.servers = serverList{failed.URL}
	errFailed := run("grade", o)
	if errFailed == nil {
		t.Fatal("grade of a failed job returned success")
	}

	if !strings.Contains(errCancelled.Error(), "cancelled") {
		t.Errorf("cancelled message %q does not say cancelled", errCancelled)
	}
	if !strings.Contains(errFailed.Error(), "failed: boom") {
		t.Errorf("failed message %q does not carry the failure", errFailed)
	}
	if errCancelled.Error() == errFailed.Error() {
		t.Errorf("cancelled and failed collapse to one message: %q", errCancelled)
	}
}

// TestTerminalError pins the mapping for all terminal states.
func TestTerminalError(t *testing.T) {
	if err := terminalError("j1", adifo.JobStatus{State: adifo.JobDone}); err != nil {
		t.Fatalf("done: %v", err)
	}
	c := terminalError("j1", adifo.JobStatus{State: adifo.JobCancelled})
	f := terminalError("j1", adifo.JobStatus{State: adifo.JobFailed, Error: "x"})
	if c == nil || f == nil || c.Error() == f.Error() {
		t.Fatalf("cancelled %v and failed %v must be distinct non-nil errors", c, f)
	}
}
