package reorder

import (
	"testing"
	"testing/quick"

	"github.com/eda-go/adifo/internal/fault"
	"github.com/eda-go/adifo/internal/fsim"
	"github.com/eda-go/adifo/internal/gen"
	"github.com/eda-go/adifo/internal/logic"
	"github.com/eda-go/adifo/internal/prng"
	"github.com/eda-go/adifo/internal/tgen"
)

func setup(t testing.TB, seed uint64) (*fault.List, *logic.PatternSet) {
	t.Helper()
	c := gen.Generate(gen.Config{Name: "r", Inputs: 8, Gates: 60, Seed: seed})
	fl := fault.CollapsedUniverse(c)
	ps := logic.RandomPatterns(c.NumInputs(), 48, prng.New(seed^0xff))
	return fl, ps
}

func TestGreedyPermutation(t *testing.T) {
	fl, ps := setup(t, 3)
	r := Greedy(fl, ps)
	if len(r.Perm) != ps.Len() {
		t.Fatalf("perm length %d, want %d", len(r.Perm), ps.Len())
	}
	seen := make([]bool, ps.Len())
	for _, u := range r.Perm {
		if u < 0 || u >= ps.Len() || seen[u] {
			t.Fatalf("not a permutation: %v", r.Perm)
		}
		seen[u] = true
	}
}

func TestGreedyFirstPickIsArgmax(t *testing.T) {
	fl, ps := setup(t, 5)
	r := Greedy(fl, ps)
	// The first reordered test must be one that detects the maximum
	// number of faults.
	res := fsim.Run(fl, ps, fsim.Options{Mode: fsim.NoDrop})
	best := 0
	for u := 0; u < ps.Len(); u++ {
		if res.Ndet[u] > best {
			best = res.Ndet[u]
		}
	}
	if r.Curve[0] != best {
		t.Fatalf("first pick detects %d, max is %d", r.Curve[0], best)
	}
}

func TestGreedyCurveMonotoneAndComplete(t *testing.T) {
	fl, ps := setup(t, 7)
	r := Greedy(fl, ps)
	prev := 0
	for i, n := range r.Curve {
		if n < prev {
			t.Fatalf("curve decreases at %d: %v", i, r.Curve)
		}
		prev = n
	}
	if prev != r.Detected {
		t.Fatalf("curve ends at %d, Detected = %d", prev, r.Detected)
	}
	// Total must match an independent drop-mode simulation.
	res := fsim.Run(fl, ps, fsim.Options{Mode: fsim.Drop})
	if r.Detected != res.DetectedCount() {
		t.Fatalf("Detected = %d, reference %d", r.Detected, res.DetectedCount())
	}
}

func TestGreedyNeverFlattensCurve(t *testing.T) {
	// AVE of the greedy order must be <= AVE of the original order
	// (greedy is the optimal single-step choice; across our seeds it
	// should never lose to the identity order).
	for seed := uint64(1); seed <= 6; seed++ {
		fl, ps := setup(t, seed)
		r := Greedy(fl, ps)

		origCurve := coverageCurve(fl, ps)
		if tgen.AVE(r.Curve) > tgen.AVE(origCurve)+1e-9 {
			t.Fatalf("seed %d: greedy AVE %.3f worse than original %.3f",
				seed, tgen.AVE(r.Curve), tgen.AVE(origCurve))
		}
	}
}

// coverageCurve computes n(i) for the identity order.
func coverageCurve(fl *fault.List, ps *logic.PatternSet) []int {
	inc := fsim.NewIncremental(fl)
	var curve []int
	det := 0
	for u := 0; u < ps.Len(); u++ {
		det += len(inc.SimulateVector(ps.Get(u)))
		curve = append(curve, det)
	}
	return curve
}

func TestApply(t *testing.T) {
	_, ps := setup(t, 9)
	perm := make([]int, ps.Len())
	for i := range perm {
		perm[i] = ps.Len() - 1 - i
	}
	rev := Apply(ps, perm)
	for i := 0; i < ps.Len(); i++ {
		if rev.Get(i).String() != ps.Get(ps.Len()-1-i).String() {
			t.Fatal("Apply permuted wrongly")
		}
	}
}

func TestApplyPanicsOnBadPerm(t *testing.T) {
	_, ps := setup(t, 9)
	defer func() {
		if recover() == nil {
			t.Fatal("bad permutation accepted")
		}
	}()
	Apply(ps, []int{0})
}

func TestReverseCompactKeepsCoverage(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		fl, ps := setup(t, seed)
		keep := ReverseCompact(fl, ps)
		if len(keep) > ps.Len() {
			t.Fatalf("kept more than available")
		}
		for i := 1; i < len(keep); i++ {
			if keep[i-1] >= keep[i] {
				t.Fatalf("kept indices not in original order: %v", keep)
			}
		}
		// Compacted set must detect exactly the same faults.
		full := fsim.Run(fl, ps, fsim.Options{Mode: fsim.Drop})
		compact := fsim.Run(fl, Select(ps, keep), fsim.Options{Mode: fsim.Drop})
		if full.DetectedCount() != compact.DetectedCount() {
			t.Fatalf("seed %d: compaction lost coverage (%d -> %d)",
				seed, full.DetectedCount(), compact.DetectedCount())
		}
	}
}

func TestQuickGreedyInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		fl, ps := setup(t, seed)
		r := Greedy(fl, ps)
		// Permutation property.
		seen := make([]bool, ps.Len())
		for _, u := range r.Perm {
			if u < 0 || u >= ps.Len() || seen[u] {
				return false
			}
			seen[u] = true
		}
		// Greedy dominates the identity order prefix-wise at the
		// first position.
		orig := coverageCurve(fl, ps)
		if len(orig) > 0 && len(r.Curve) > 0 && r.Curve[0] < orig[0] {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
