package logic

import (
	"testing"
	"testing/quick"

	"github.com/eda-go/adifo/internal/prng"
)

// Property: packing any bit matrix into a PatternSet and reading it
// back is the identity.
func TestQuickPatternSetRoundTrip(t *testing.T) {
	f := func(seed uint64, widthRaw, nRaw uint8) bool {
		width := int(widthRaw%20) + 1
		n := int(nRaw%150) + 1
		src := prng.New(seed)
		ps := NewPatternSet(width)
		want := make([]Vector, n)
		for i := range want {
			v := make(Vector, width)
			for j := range v {
				v[j] = uint8(src.Intn(2))
			}
			want[i] = v
			ps.Append(v.Clone())
		}
		for i := range want {
			if ps.Get(i).String() != want[i].String() {
				return false
			}
			for j := 0; j < width; j++ {
				if ps.Bit(i, j) != want[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Word exposes exactly the bits Append stored, with tail
// bits clear.
func TestQuickPatternSetWordsMaskClean(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%130) + 1
		ps := RandomPatterns(5, n, prng.New(seed))
		last := ps.Blocks() - 1
		mask := ps.BlockMask(last)
		for in := 0; in < 5; in++ {
			if ps.Word(in, last)&^mask != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: bitset set/clear/test behave like a map[int]bool.
func TestQuickBitsetMatchesMap(t *testing.T) {
	f := func(seed uint64, nRaw uint8, opsRaw uint16) bool {
		n := int(nRaw%200) + 1
		ops := int(opsRaw % 500)
		src := prng.New(seed)
		b := NewBitset(n)
		ref := map[int]bool{}
		for i := 0; i < ops; i++ {
			idx := src.Intn(n)
			if src.Bool(0.5) {
				b.Set(idx)
				ref[idx] = true
			} else {
				b.Clear(idx)
				delete(ref, idx)
			}
		}
		if b.Count() != len(ref) {
			return false
		}
		for i := 0; i < n; i++ {
			if b.Test(i) != ref[i] {
				return false
			}
		}
		return b.Any() == (len(ref) > 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Decimal/VectorFromDecimal are inverse bijections for any
// width up to 16.
func TestQuickVectorDecimalBijection(t *testing.T) {
	f := func(d uint16, widthRaw uint8) bool {
		width := int(widthRaw%16) + 1
		val := uint64(d) & ((1 << uint(width)) - 1)
		return VectorFromDecimal(val, width).Decimal() == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
