package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the bucket assignment rule:
// Prometheus buckets are upper-inclusive (le = "less than or equal"),
// so a value exactly on a bound lands in that bound's bucket, and
// anything above the last bound lands in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{0.1, 1, 10})
	cases := []struct {
		v      float64
		bucket int
	}{
		{0, 0}, {0.05, 0}, {0.1, 0}, // on the bound: inclusive
		{0.1000001, 1}, {1, 1},
		{5, 2}, {10, 2},
		{10.5, 3}, {math.Inf(1), 3}, // past the last bound: +Inf
	}
	for i, c := range cases {
		before := h.buckets[c.bucket].Load()
		h.Observe(c.v)
		if got := h.buckets[c.bucket].Load(); got != before+1 {
			t.Errorf("case %d: Observe(%v) did not land in bucket %d", i, c.v, c.bucket)
		}
	}
	if h.Count() != uint64(len(cases)) {
		t.Errorf("Count = %d, want %d", h.Count(), len(cases))
	}
}

// TestHistogramExpositionCumulative checks that the rendered _bucket
// lines are cumulative and end in +Inf == _count, the invariant every
// Prometheus consumer assumes.
func TestHistogramExpositionCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_seconds", "test", []float64{1, 2})
	for _, v := range []float64{0.5, 1.5, 1.7, 99} {
		h.Observe(v)
	}
	out := scrape(t, r)
	for _, want := range []string{
		`t_seconds_bucket{le="1"} 1`,
		`t_seconds_bucket{le="2"} 3`,
		`t_seconds_bucket{le="+Inf"} 4`,
		`t_seconds_sum 102.7`,
		`t_seconds_count 4`,
		`# TYPE t_seconds histogram`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func scrape(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Add(3)
	g := r.Gauge("depth", "queue depth")
	g.Set(2)
	g.Inc()
	g.Dec()
	g.Dec()
	v := r.CounterVec("jobs_total", "jobs", "kind", "status")
	v.With("grade", "done").Add(7)
	v.With("atpg", "failed").Inc()
	r.GaugeFunc("up_seconds", "uptime", func() float64 { return 1.5 })
	r.CounterFunc("hits_total", "cache hits", func() uint64 { return 42 })
	bi := r.GaugeVec("build_info", "build", "version")
	bi.With(`weird"v\1`).Set(1)

	out := scrape(t, r)
	for _, want := range []string{
		"# HELP reqs_total requests\n# TYPE reqs_total counter\nreqs_total 3",
		"depth 1",
		`jobs_total{kind="grade",status="done"} 7`,
		`jobs_total{kind="atpg",status="failed"} 1`,
		"up_seconds 1.5",
		"hits_total 42",
		`build_info{version="weird\"v\\1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestExpositionLinesWellFormed runs every line of a populated
// registry through the same shape check the CI scrape step applies:
// HELP/TYPE comments or `name{labels} value` samples, nothing else.
func TestExpositionLinesWellFormed(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a").Inc()
	hv := r.HistogramVec("lat_seconds", "latency", nil, "kind")
	hv.With("grade").Observe(0.2)
	r.GaugeVec("info", "i", "version", "goversion").With("0.6.0", GoVersion()).Set(1)

	for _, line := range strings.Split(strings.TrimRight(scrape(t, r), "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("sample line %q is not `series value`", line)
			continue
		}
		name := fields[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Errorf("unbalanced label braces in %q", line)
			}
			name = name[:i]
		}
		for _, ch := range name {
			if !(ch == '_' || ch >= 'a' && ch <= 'z' || ch >= 'A' && ch <= 'Z' || ch >= '0' && ch <= '9') {
				t.Errorf("bad metric name in %q", line)
				break
			}
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Gauge("x_total", "x again")
}

// TestVecConcurrency hammers one family from many goroutines — the
// pattern of per-kind counters updated by concurrent jobs — and checks
// nothing is lost (run under -race in CI).
func TestVecConcurrency(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("ops_total", "ops", "kind")
	h := r.Histogram("obs_seconds", "obs", []float64{0.5})
	g := r.Gauge("g", "g")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			kind := []string{"grade", "atpg", "adi_order"}[w%3]
			for i := 0; i < per; i++ {
				v.With(kind).Inc()
				h.Observe(float64(i%2) * 0.9)
				g.Inc()
			}
		}(w)
	}
	wg.Wait()
	total := uint64(0)
	for _, k := range []string{"grade", "atpg", "adi_order"} {
		total += v.With(k).Value()
	}
	if total != workers*per {
		t.Errorf("counter lost updates: %d, want %d", total, workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram lost updates: %d, want %d", h.Count(), workers*per)
	}
	if g.Value() != workers*per {
		t.Errorf("gauge lost updates: %v, want %d", g.Value(), workers*per)
	}
}

func TestNopLoggerDiscards(t *testing.T) {
	// Must not panic and must report disabled at every level.
	l := Nop()
	l.Info("dropped", "k", "v")
	l.Error("dropped too")
	if h := l.Handler(); h.Enabled(t.Context(), 12) {
		t.Error("nop handler claims to be enabled")
	}
	if Or(nil) == nil || Or(l) != l {
		t.Error("Or normalization broken")
	}
}
