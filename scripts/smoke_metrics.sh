#!/usr/bin/env bash
# Observability smoke test: boots a real adifod, runs one job of every
# kind over the wire, scrapes GET /metrics from both the public and the
# -debug-addr listener, and fails on malformed exposition lines or
# missing required series. CI runs this on every push; it is the check
# that the metrics surface a dashboard would scrape actually exists on
# a released binary, not just in unit tests.
#
# Usage: scripts/smoke_metrics.sh [metrics-snapshot-file]
#   If a snapshot file is given, the final /metrics body is written
#   there (bench_service.sh uses this to archive a snapshot next to
#   its benchmark artifact).
set -euo pipefail
cd "$(dirname "$0")/.."

snapshot="${1:-}"
addr=127.0.0.1:8471
debug=127.0.0.1:8472
base="http://$addr"

go build -o /tmp/adifod-smoke ./cmd/adifod

/tmp/adifod-smoke -version | grep -q '^adifod ' || {
  echo "adifod -version output malformed" >&2; exit 1
}

/tmp/adifod-smoke -addr "$addr" -debug-addr "$debug" -log-level warn &
daemon=$!
trap 'kill "$daemon" 2>/dev/null || true' EXIT

for _ in $(seq 1 50); do
  curl -fsS "$base/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -fsS "$base/healthz" >/dev/null

# One job per kind, driven to completion through the public wire.
submit() {
  curl -fsS -X POST -H 'Content-Type: application/json' -d "$1" "$base/v1/jobs" | jq -r .id
}
wait_done() {
  local id=$1 state
  for _ in $(seq 1 100); do
    state=$(curl -fsS "$base/v1/jobs/$id" | jq -r .state)
    case "$state" in
      done) return 0 ;;
      failed|cancelled) echo "job $id ended $state" >&2; return 1 ;;
    esac
    sleep 0.1
  done
  echo "job $id never finished" >&2
  return 1
}

grade=$(submit '{"circuit":"c17","mode":"nodrop","patterns":{"random":{"n":256,"seed":1}}}')
atpg=$(submit '{"kind":"atpg","circuit":"c17","patterns":{"random":{"n":96,"seed":2}},"order":{"kind":"dynm"}}')
order=$(submit '{"kind":"adi_order","circuit":"c17","patterns":{"random":{"n":96,"seed":3}},"order":{"kind":"orig"}}')
wait_done "$grade"
wait_done "$atpg"
wait_done "$order"

# Results must carry the per-phase timing record and a trace id, and
# every trace id must resolve on the flight recorder: the list view
# knows the job's kind, the per-trace view serves a non-empty span
# tree rooted in the job span.
for id in "$grade" "$atpg" "$order"; do
  result=$(curl -fsS "$base/v1/jobs/$id/result")
  phases=$(echo "$result" | jq -r '.timing.phases | keys | join(",")')
  [ -n "$phases" ] || { echo "job $id result has no timing.phases" >&2; exit 1; }
  tid=$(echo "$result" | jq -r '.trace_id')
  echo "$tid" | grep -qE '^[0-9a-f]{32}$' || {
    echo "job $id result trace_id malformed: $tid" >&2; exit 1
  }
  kind=$(echo "$result" | jq -r '.kind // "grade"')
  curl -fsS "http://$debug/debug/traces" \
    | jq -e --arg tid "$tid" --arg kind "$kind" \
        '.traces[] | select(.trace_id == $tid) | select(.kind == $kind)' >/dev/null || {
    echo "trace $tid ($kind) missing from /debug/traces list" >&2; exit 1
  }
  curl -fsS "http://$debug/debug/traces/$tid" \
    | jq -e --arg tid "$tid" --arg kind "$kind" \
        '.trace_id == $tid and .root == ("job." + $kind) and (.tree | length) == 1 and .spans >= 2' >/dev/null || {
    echo "trace $tid tree view malformed" >&2; exit 1
  }
done
curl -fsS "$base/v1/stats" | jq -e '.uptime_seconds > 0 and .version != ""' >/dev/null

metrics=$(mktemp)
curl -fsS "$base/metrics" > "$metrics"

# Grammar check: every line is a comment or `name[{labels}] value`.
bad=$(grep -vE '^(#|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$)' "$metrics" || true)
if [ -n "$bad" ]; then
  echo "malformed exposition lines:" >&2
  echo "$bad" >&2
  exit 1
fi

# Required series: the catalog a capacity-planning dashboard consumes.
for series in \
  'adifo_build_info{' \
  'adifo_uptime_seconds ' \
  'adifo_jobs_submitted_total{kind="grade"}' \
  'adifo_jobs_total{kind="grade",status="done"} 1' \
  'adifo_jobs_total{kind="atpg",status="done"} 1' \
  'adifo_jobs_total{kind="adi_order",status="done"} 1' \
  'adifo_jobs_queued ' \
  'adifo_jobs_running ' \
  'adifo_queue_wait_seconds_bucket{kind="grade",le="+Inf"}' \
  'adifo_job_duration_seconds_bucket{kind="atpg",le="+Inf"}' \
  'adifo_sim_blocks_total ' \
  'adifo_registry_circuit_hits_total ' \
  'adifo_registry_good_misses_total ' \
  'adifo_http_write_errors_total ' \
  'adifo_draining 0' \
  'adifo_jobs_rejected_total{reason="overloaded"} 0' \
  'adifo_jobs_deduplicated_total ' \
  'adifo_tenant_queue_depth{tenant="default"}' \
  'adifo_journal_enabled 0' \
  'adifo_journal_appends_total 0' \
  'adifo_trace_spans_started_total ' \
  'adifo_trace_spans_finished_total ' \
  'adifo_trace_spans_dropped_total 0' \
  'adifo_trace_recorder_traces ' \
; do
  grep -qF "$series" "$metrics" || {
    echo "required series missing from /metrics: $series" >&2
    exit 1
  }
done

# The debug listener serves the same exposition plus pprof. (Buffer
# the body: grep -q on a pipe would close it early and trip pipefail.)
dbg=$(mktemp)
curl -fsS "http://$debug/metrics" > "$dbg"
grep -qF 'adifo_build_info{' "$dbg"
curl -fsS "http://$debug/debug/pprof/cmdline" >/dev/null

if [ -n "$snapshot" ]; then
  cp "$metrics" "$snapshot"
  echo "metrics snapshot written to $snapshot"
fi
echo "observability smoke: OK ($(grep -cv '^#' "$metrics") series)"
