package circuit

// This file defines the bit-parallel value words the simulation
// kernels are generic over. A block carries one bit per pattern across
// W = 64·Lanes() patterns; every lane is an independent 64-pattern
// slice, so widening a kernel never changes what any individual lane
// computes — it only amortizes the per-gate walk (queue pushes, mark
// checks, branch mispredictions) over more patterns.
//
// The kernels gather a gate's fanin values into a scratch slice first
// (plain straight-line code, specialized per width by the compiler's
// shape stenciling) and then evaluate with one EvalPins call, so the
// inner loop performs no indirect calls and the fixed-size lane loops
// inside each width's operations unroll.

// Block is the constraint satisfied by the simulation word types. The
// type parameter B is always the implementing type itself (W1, W4 or
// W8), so operations stay concrete under instantiation.
type Block[B any] interface {
	W1 | W4 | W8

	// Lanes is the number of 64-pattern lanes (1, 4 or 8).
	Lanes() int
	// Lane extracts lane l; SetLane returns a copy with lane l replaced.
	Lane(l int) uint64
	SetLane(l int, w uint64) B

	Not() B
	Or(B) B
	Xor(B) B
	And(B) B
	IsZero() bool

	// EvalPins evaluates a gate of type t over its gathered fanin
	// values in pin order. t must be combinational (not PI); in must
	// hold at least one pin. Semantics match EvalWord lane-wise.
	EvalPins(t GateType, in []B) B
}

// W1 is the scalar 64-pattern block: the bit-identity reference width.
type W1 uint64

// W4 and W8 are 256- and 512-pattern blocks. Lane l of the array holds
// patterns [64l, 64l+64).
type (
	W4 [4]uint64
	W8 [8]uint64
)

func (W1) Lanes() int                   { return 1 }
func (v W1) Lane(int) uint64            { return uint64(v) }
func (v W1) SetLane(_ int, w uint64) W1 { return W1(w) }
func (v W1) Not() W1                    { return ^v }
func (v W1) Or(w W1) W1                 { return v | w }
func (v W1) Xor(w W1) W1                { return v ^ w }
func (v W1) And(w W1) W1                { return v & w }
func (v W1) IsZero() bool               { return v == 0 }

func (W4) Lanes() int          { return 4 }
func (v W4) Lane(l int) uint64 { return v[l] }
func (v W4) SetLane(l int, w uint64) W4 {
	v[l] = w
	return v
}

func (v W4) Not() W4 {
	for i := range v {
		v[i] = ^v[i]
	}
	return v
}

func (v W4) Or(w W4) W4 {
	for i := range v {
		v[i] |= w[i]
	}
	return v
}

func (v W4) Xor(w W4) W4 {
	for i := range v {
		v[i] ^= w[i]
	}
	return v
}

func (v W4) And(w W4) W4 {
	for i := range v {
		v[i] &= w[i]
	}
	return v
}

func (v W4) IsZero() bool { return v[0]|v[1]|v[2]|v[3] == 0 }

func (W8) Lanes() int          { return 8 }
func (v W8) Lane(l int) uint64 { return v[l] }
func (v W8) SetLane(l int, w uint64) W8 {
	v[l] = w
	return v
}

func (v W8) Not() W8 {
	for i := range v {
		v[i] = ^v[i]
	}
	return v
}

func (v W8) Or(w W8) W8 {
	for i := range v {
		v[i] |= w[i]
	}
	return v
}

func (v W8) Xor(w W8) W8 {
	for i := range v {
		v[i] ^= w[i]
	}
	return v
}

func (v W8) And(w W8) W8 {
	for i := range v {
		v[i] &= w[i]
	}
	return v
}

func (v W8) IsZero() bool {
	return v[0]|v[1]|v[2]|v[3]|v[4]|v[5]|v[6]|v[7] == 0
}

// The EvalPins bodies below are hand-specialized per width rather than
// shared through a generic fold: a generic implementation routes every
// ^/&/| through a non-inlined shape-dictionary method call, which
// profiles as ~20% of a fault-grading run. Keeping native operators
// (W1) and plain fixed-index array statements (W4/W8) inside each
// switch arm leaves exactly one call per gate evaluation.

func (W1) EvalPins(t GateType, in []W1) W1 {
	v := in[0]
	switch t {
	case Buf:
	case Not:
		v = ^v
	case And, Nand:
		for _, w := range in[1:] {
			v &= w
		}
		if t == Nand {
			v = ^v
		}
	case Or, Nor:
		for _, w := range in[1:] {
			v |= w
		}
		if t == Nor {
			v = ^v
		}
	case Xor, Xnor:
		for _, w := range in[1:] {
			v ^= w
		}
		if t == Xnor {
			v = ^v
		}
	default:
		panic("circuit: eval of non-combinational gate type")
	}
	return v
}

func (W4) EvalPins(t GateType, in []W4) W4 {
	v := in[0]
	switch t {
	case Buf:
	case Not:
		v[0], v[1], v[2], v[3] = ^v[0], ^v[1], ^v[2], ^v[3]
	case And, Nand:
		for i := 1; i < len(in); i++ {
			w := &in[i]
			v[0] &= w[0]
			v[1] &= w[1]
			v[2] &= w[2]
			v[3] &= w[3]
		}
		if t == Nand {
			v[0], v[1], v[2], v[3] = ^v[0], ^v[1], ^v[2], ^v[3]
		}
	case Or, Nor:
		for i := 1; i < len(in); i++ {
			w := &in[i]
			v[0] |= w[0]
			v[1] |= w[1]
			v[2] |= w[2]
			v[3] |= w[3]
		}
		if t == Nor {
			v[0], v[1], v[2], v[3] = ^v[0], ^v[1], ^v[2], ^v[3]
		}
	case Xor, Xnor:
		for i := 1; i < len(in); i++ {
			w := &in[i]
			v[0] ^= w[0]
			v[1] ^= w[1]
			v[2] ^= w[2]
			v[3] ^= w[3]
		}
		if t == Xnor {
			v[0], v[1], v[2], v[3] = ^v[0], ^v[1], ^v[2], ^v[3]
		}
	default:
		panic("circuit: eval of non-combinational gate type")
	}
	return v
}

func (W8) EvalPins(t GateType, in []W8) W8 {
	v := in[0]
	switch t {
	case Buf:
	case Not:
		v = v.Not()
	case And, Nand:
		for i := 1; i < len(in); i++ {
			w := &in[i]
			v[0] &= w[0]
			v[1] &= w[1]
			v[2] &= w[2]
			v[3] &= w[3]
			v[4] &= w[4]
			v[5] &= w[5]
			v[6] &= w[6]
			v[7] &= w[7]
		}
		if t == Nand {
			v = v.Not()
		}
	case Or, Nor:
		for i := 1; i < len(in); i++ {
			w := &in[i]
			v[0] |= w[0]
			v[1] |= w[1]
			v[2] |= w[2]
			v[3] |= w[3]
			v[4] |= w[4]
			v[5] |= w[5]
			v[6] |= w[6]
			v[7] |= w[7]
		}
		if t == Nor {
			v = v.Not()
		}
	case Xor, Xnor:
		for i := 1; i < len(in); i++ {
			w := &in[i]
			v[0] ^= w[0]
			v[1] ^= w[1]
			v[2] ^= w[2]
			v[3] ^= w[3]
			v[4] ^= w[4]
			v[5] ^= w[5]
			v[6] ^= w[6]
			v[7] ^= w[7]
		}
		if t == Xnor {
			v = v.Not()
		}
	default:
		panic("circuit: eval of non-combinational gate type")
	}
	return v
}
