// Command adifod serves the concurrent fault-grading API over
// HTTP+JSON: POST a circuit (named or inline .bench) plus a pattern
// spec to /v1/jobs, poll or stream the job, cancel it with DELETE
// /v1/jobs/{id}, fetch per-fault detection sets and ndet counts from
// /v1/jobs/{id}/result. Parsed circuits, collapsed fault lists and
// good-machine simulations are cached with LRU eviction, so repeat
// submissions of the same circuit skip straight to fault grading;
// /v1/stats exposes the cache counters. Every non-2xx response is the
// v1 error envelope {"error": {"code": ..., "message": ...}}.
//
// The server is the public adifo.LocalGrader behind its Handler; a Go
// program embedding the engine gets the identical API from
// adifo.NewLocalGrader directly.
//
// Usage:
//
//	adifod -addr :8417 -jobs 4 -workers 8
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"github.com/eda-go/adifo"
)

func main() {
	var (
		addr         = flag.String("addr", ":8417", "listen address")
		jobs         = flag.Int("jobs", 0, "max concurrent grading jobs (0 = default)")
		workers      = flag.Int("workers", 0, "shard workers per job (0 = GOMAXPROCS)")
		circuitCache = flag.Int("circuit-cache", 0, "circuit registry LRU capacity (0 = default)")
		goodCache    = flag.Int("good-cache", 0, "good-machine cache LRU capacity (0 = default)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "adifod: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}

	g := adifo.NewLocalGrader(adifo.GraderConfig{
		SimWorkers:        *workers,
		MaxConcurrentJobs: *jobs,
		CircuitCache:      *circuitCache,
		GoodCache:         *goodCache,
	})
	log.Printf("adifod listening on %s", *addr)
	if err := http.ListenAndServe(*addr, g.Handler()); err != nil {
		log.Fatalf("adifod: %v", err)
	}
}
