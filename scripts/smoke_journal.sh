#!/usr/bin/env bash
# Durability smoke test: boots a real adifod with -journal-dir, runs a
# job to completion, leaves more jobs in flight, SIGKILLs the process
# (no drain, no goodbye), restarts it on the same journal, and checks
# that (a) the finished job's /result bytes are identical across the
# crash, (b) the in-flight jobs rerun to completion under their
# original ids, and (c) an idempotency key used before the crash still
# dedupes after it. This is the check that the write-ahead journal
# survives a real kill -9 of a released binary, not just an in-process
# test double.
#
# Usage: scripts/smoke_journal.sh
#   JOURNAL_DIR overrides the journal directory (CI sets it to a
#   workspace path so a failing run's journal is uploaded as an
#   artifact for offline replay).
set -euo pipefail
cd "$(dirname "$0")/.."

addr=127.0.0.1:8473
base="http://$addr"
keep_dir=1
if [ -z "${JOURNAL_DIR:-}" ]; then
  JOURNAL_DIR=$(mktemp -d)
  keep_dir=0
fi
mkdir -p "$JOURNAL_DIR"

go build -o /tmp/adifod-journal-smoke ./cmd/adifod

daemon=
start_daemon() {
  /tmp/adifod-journal-smoke -addr "$addr" -journal-dir "$JOURNAL_DIR" \
    -jobs 1 -tenant-limits 'smoke=2:64' -log-level warn &
  daemon=$!
  for _ in $(seq 1 100); do
    curl -fsS "$base/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "adifod did not come up" >&2
  return 1
}
cleanup() {
  kill "$daemon" 2>/dev/null || true
  [ "$keep_dir" = 0 ] && rm -rf "$JOURNAL_DIR"
}
trap cleanup EXIT

submit() {
  curl -fsS -X POST -H 'Content-Type: application/json' -d "$1" "$base/v1/jobs" | jq -r .id
}
state_of() {
  curl -fsS "$base/v1/jobs/$1" | jq -r .state
}
wait_done() {
  local id=$1 state
  for _ in $(seq 1 300); do
    state=$(state_of "$id")
    case "$state" in
      done) return 0 ;;
      failed|cancelled) echo "job $id ended $state" >&2; return 1 ;;
    esac
    sleep 0.1
  done
  echo "job $id never finished" >&2
  return 1
}

start_daemon

# One job driven to completion before the crash; its result bytes are
# the durability oracle.
fast=$(submit '{"circuit":"c17","mode":"drop","tenant":"smoke","idempotency_key":"smoke-fast","patterns":{"random":{"n":256,"seed":1}}}')
wait_done "$fast"
pre=$(mktemp)
curl -fsS "$base/v1/jobs/$fast/result" > "$pre"

# Jobs of every kind left in flight (the single -jobs slot keeps most
# of them queued), then a SIGKILL mid-workload.
grade=$(submit '{"circuit":"c17","mode":"nodrop","tenant":"smoke","patterns":{"random":{"n":4096,"seed":2}}}')
atpg=$(submit '{"kind":"atpg","circuit":"c17","patterns":{"random":{"n":96,"seed":3}},"order":{"kind":"dynm"}}')
order=$(submit '{"kind":"adi_order","circuit":"c17","patterns":{"random":{"n":96,"seed":4}},"order":{"kind":"orig"}}')

kill -9 "$daemon"
wait "$daemon" 2>/dev/null || true

start_daemon

# (a) The finished job answers byte-identically across the crash.
post=$(mktemp)
curl -fsS "$base/v1/jobs/$fast/result" > "$post"
cmp -s "$pre" "$post" || {
  echo "result bytes of $fast changed across the crash:" >&2
  diff "$pre" "$post" >&2 || true
  exit 1
}

# (b) In-flight jobs recover under their original ids and finish.
wait_done "$grade"
wait_done "$atpg"
wait_done "$order"

# (c) The idempotency key still names the pre-crash job.
dup=$(submit '{"circuit":"c17","mode":"drop","tenant":"smoke","idempotency_key":"smoke-fast","patterns":{"random":{"n":256,"seed":1}}}')
[ "$dup" = "$fast" ] || {
  echo "idempotency key lost across crash: resubmit got $dup, want $fast" >&2
  exit 1
}

# The journal shows up in the exposition and on disk.
metrics=$(mktemp)
curl -fsS "$base/metrics" > "$metrics"
grep -qF 'adifo_journal_enabled 1' "$metrics" || {
  echo "adifo_journal_enabled not 1 on a journal-backed server" >&2
  exit 1
}
replayed=$(grep -E '^adifo_journal_replayed_records_total ' "$metrics" | awk '{print $2}')
[ "${replayed:-0}" -gt 0 ] || {
  echo "adifo_journal_replayed_records_total is $replayed after a restart with history" >&2
  exit 1
}
ls "$JOURNAL_DIR"/*.wal >/dev/null || {
  echo "no journal segments in $JOURNAL_DIR" >&2
  exit 1
}

echo "journal smoke: OK (replayed $replayed records; segments: $(ls "$JOURNAL_DIR" | grep -c '\.wal$'))"
