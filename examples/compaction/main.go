// Compaction: the paper's first application (Section 1, application
// 1). Generating tests for high-ADI faults first makes every early
// vector pay for many faults, shrinking the final test set without
// any dynamic compaction machinery in the ATPG itself.
//
// This example runs the full flow of the paper's Table 5 on one
// synthetic benchmark and compares all six fault orders.
//
// Run with:
//
//	go run ./examples/compaction
package main

import (
	"fmt"
	"log"

	"github.com/eda-go/adifo/internal/adi"
	"github.com/eda-go/adifo/internal/experiments"
	"github.com/eda-go/adifo/internal/gen"
	"github.com/eda-go/adifo/internal/report"
	"github.com/eda-go/adifo/internal/tgen"
)

func main() {
	// Build irs298 the way the experiments do: generate, make
	// irredundant, size U at ~90% random-pattern coverage, compute
	// the ADI.
	sc, ok := gen.SuiteByName("irs298")
	if !ok {
		log.Fatal("suite circuit missing")
	}
	setup, err := experiments.Prepare(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d inputs, %d faults, |U|=%d\n",
		setup.C.Name, setup.C.NumInputs(), setup.Faults.Len(), setup.U.Len())

	tb := report.NewTable("Test-set size by fault order",
		"order", "tests", "coverage%", "AVE", "atpg calls")
	for _, kind := range adi.AllOrders() {
		res := tgen.Generate(setup.Faults, setup.Index.Order(kind), tgen.Options{
			FillSeed: experiments.FillSeed,
			Validate: true,
		})
		tb.AddRow(kind.String(), len(res.Tests), 100*res.Coverage(), res.AVE(), res.AtpgCalls)
	}
	fmt.Println(tb.String())
	fmt.Println("Expected shape (paper, Table 5): 0dynm smallest, dynm close,")
	fmt.Println("orig larger, incr0 largest — ADI ordering is doing the compaction.")
}
