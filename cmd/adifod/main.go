// Command adifod serves the concurrent multi-kind job API over
// HTTP+JSON: POST a circuit (named or inline .bench) plus a pattern
// spec to /v1/jobs — kind "grade" (fault grading, the default for
// kind-less specs), "atpg" (ADI-ordered test generation) or
// "adi_order" (the fault order alone) — poll or stream the job,
// cancel it with DELETE /v1/jobs/{id}, fetch the kind-specific result
// from /v1/jobs/{id}/result. Parsed circuits, collapsed fault lists
// and good-machine simulations are cached with LRU eviction and
// shared across kinds, so an adi_order request after a nodrop grade
// of the same (circuit, patterns) pair skips the simulation entirely;
// /v1/stats exposes the cache counters. Every non-2xx response is the
// v1 error envelope {"error": {"code": ..., "message": ...}};
// submissions of unknown kinds — or kinds disabled with -kinds — get
// the typed "unsupported_kind" code.
//
// -kinds dedicates the server to a subset of workloads, e.g.
// `-kinds grade` for backends behind a cluster coordinator (which
// fault-shards grade jobs only) or `-kinds atpg,adi_order` for an
// ordering/generation tier.
//
// -journal-dir enables the write-ahead job journal: every accepted
// job is durable before the submit is acknowledged, and a restarted
// server replays the journal before listening — finished jobs answer
// with byte-identical results, interrupted ones rerun. -max-queue
// bounds the queue (excess submits get the typed 429 "overloaded"
// envelope with Retry-After), and -tenant-limits gives named tenants
// weighted-fair scheduling slices and per-tenant queue bounds, e.g.
// `-tenant-limits alice=3:100,bob=1:10` (weight[:maxqueued]).
// Specs carry the tenant in "tenant" and an optional
// "idempotency_key" that makes retried submits collapse into one job,
// across restarts included.
//
// The server is the public adifo.LocalGrader behind its Handler; a Go
// program embedding the engine gets the identical API from
// adifo.NewLocalGrader directly. Several adifod processes form a
// scale-out cluster behind adifo.NewClusterGrader (or `adifo grade`
// with repeated -server flags), which fault-shards every job across
// them.
//
// On SIGINT or SIGTERM the server shuts down gracefully: new
// submissions are rejected with the "unavailable" error envelope
// (HTTP 503), running jobs are cancelled at their next 64-pattern
// block barrier, progress streams end with the terminal cancelled
// status, and the HTTP server drains within the -grace deadline.
//
// Observability: the job API itself serves GET /metrics (Prometheus
// text exposition of the engine's counters, gauges and latency
// histograms). -debug-addr starts a second, internal-only listener
// with the same /metrics plus net/http/pprof under /debug/pprof/ —
// CPU profiles label samples with the running job's kind and id, so a
// flamegraph attributes simulator time per workload. Logs are
// structured key-value records (-log-level debug|info|warn|error).
//
// Usage:
//
//	adifod -addr :8417 -jobs 4 -workers 8 -grace 10s -kinds grade,atpg \
//	       -debug-addr 127.0.0.1:8418 -log-level info
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/eda-go/adifo"
	"github.com/eda-go/adifo/internal/obs"
)

func main() {
	var (
		addr         = flag.String("addr", ":8417", "listen address")
		debugAddr    = flag.String("debug-addr", "", "internal listen address for /metrics and /debug/pprof/ (empty = disabled)")
		jobs         = flag.Int("jobs", 0, "max concurrent jobs (0 = default)")
		workers      = flag.Int("workers", 0, "shard workers per job (0 = GOMAXPROCS)")
		circuitCache = flag.Int("circuit-cache", 0, "circuit registry LRU capacity (0 = default)")
		goodCache    = flag.Int("good-cache", 0, "good-machine cache LRU capacity (0 = default)")
		grace        = flag.Duration("grace", 10*time.Second, "graceful shutdown deadline after SIGINT/SIGTERM")
		kindsFlag    = flag.String("kinds", "", "comma-separated job kinds to serve (grade,atpg,adi_order; empty = all)")
		journalDir   = flag.String("journal-dir", "", "directory for the write-ahead job journal (empty = no durability); on restart the journal is replayed before the listener opens")
		maxQueue     = flag.Int("max-queue", 0, "max queued jobs before submits are rejected with the 429 overloaded envelope (0 = default 4096, negative = unbounded)")
		tenantsFlag  = flag.String("tenant-limits", "", "per-tenant weight and queue bound, e.g. alice=3:100,bob=1:10 (weight[:maxqueued]); unlisted tenants get weight 1, no bound")
		logLevel     = flag.String("log-level", "info", "minimum log level (debug, info, warn, error)")
		version      = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Printf("adifod %s %s\n", adifo.Version, obs.GoVersion())
		return
	}
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "adifod: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}
	kinds, err := parseKinds(*kindsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adifod: %v\n", err)
		os.Exit(2)
	}
	tenantLimits, err := parseTenantLimits(*tenantsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adifod: %v\n", err)
		os.Exit(2)
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "adifod: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, level)

	g, err := adifo.OpenLocalGrader(adifo.GraderConfig{
		SimWorkers:        *workers,
		MaxConcurrentJobs: *jobs,
		CircuitCache:      *circuitCache,
		GoodCache:         *goodCache,
		Kinds:             kinds,
		Logger:            logger,
		JournalDir:        *journalDir,
		MaxQueuedJobs:     *maxQueue,
		TenantLimits:      tenantLimits,
	})
	if err != nil {
		logger.Error("engine startup failed", "err", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			logger.Error("debug listen failed", "addr", *debugAddr, "err", err)
			os.Exit(1)
		}
		logger.Info("debug listener up", "addr", dln.Addr().String())
		go http.Serve(dln, debugMux(g))
	}

	served := "all"
	if len(kinds) > 0 {
		served = strings.Join(kinds, ",")
	}
	logger.Info("adifod listening", "addr", ln.Addr().String(),
		"kinds", served, "version", adifo.Version)
	if err := serve(ctx, ln, g, *grace, logger); err != nil {
		logger.Error("server failed", "err", err)
		os.Exit(1)
	}
	logger.Info("drained, bye")
}

// debugMux is the internal-only debug surface: the same Prometheus
// exposition the job API serves, the trace flight recorder, plus
// net/http/pprof. It is never mounted on the public listener —
// profile endpoints can stall a process and belong behind the
// firewall.
func debugMux(g *adifo.LocalGrader) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", g.MetricsHandler())
	mux.Handle("GET /debug/traces", g.TracesHandler())
	mux.Handle("GET /debug/traces/{id}", g.TracesHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// parseKinds splits the -kinds flag into the engine's kind names,
// validating each against the registry so a typo fails at startup
// instead of silently rejecting every job of the intended kind.
func parseKinds(s string) ([]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	known := map[string]bool{}
	for _, k := range adifo.JobKindNames() {
		known[k] = true
	}
	var kinds []string
	for _, k := range strings.Split(s, ",") {
		k = strings.TrimSpace(k)
		if !known[k] {
			return nil, fmt.Errorf("unknown job kind %q in -kinds (want a subset of %s)",
				k, strings.Join(adifo.JobKindNames(), ","))
		}
		kinds = append(kinds, k)
	}
	return kinds, nil
}

// parseTenantLimits parses the -tenant-limits flag: comma-separated
// name=weight[:maxqueued] entries, e.g. "alice=3:100,bob=1:10".
func parseTenantLimits(s string) (map[string]adifo.TenantLimit, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	limits := make(map[string]adifo.TenantLimit)
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, val, ok := strings.Cut(entry, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("bad -tenant-limits entry %q (want name=weight[:maxqueued])", entry)
		}
		if _, dup := limits[name]; dup {
			return nil, fmt.Errorf("duplicate tenant %q in -tenant-limits", name)
		}
		weightStr, queueStr, hasQueue := strings.Cut(val, ":")
		var tl adifo.TenantLimit
		w, err := strconv.Atoi(strings.TrimSpace(weightStr))
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad weight in -tenant-limits entry %q (want a positive integer)", entry)
		}
		tl.Weight = w
		if hasQueue {
			q, err := strconv.Atoi(strings.TrimSpace(queueStr))
			if err != nil || q <= 0 {
				return nil, fmt.Errorf("bad maxqueued in -tenant-limits entry %q (want a positive integer)", entry)
			}
			tl.MaxQueued = q
		}
		limits[name] = tl
	}
	return limits, nil
}

// serve runs the job API on ln until ctx is cancelled (the signal
// arrived), then shuts down gracefully: the engine drains first —
// Submit starts rejecting with the typed 503 envelope, queued jobs
// cancel immediately, running jobs cancel at their next block barrier,
// streams close with the terminal status — and the HTTP server then
// has until the grace deadline to finish in-flight responses.
func serve(ctx context.Context, ln net.Listener, g *adifo.LocalGrader, grace time.Duration, logger *slog.Logger) error {
	srv := &http.Server{Handler: g.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Info("signal received, draining", "deadline", grace.String())
	sctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	done := make(chan struct{})
	go func() {
		// Drain rejects new submissions and waits for every job
		// goroutine; job cancellation closes the progress streams, which
		// lets Shutdown below complete instead of hanging on them.
		g.Drain()
		close(done)
	}()
	select {
	case <-done:
	case <-sctx.Done():
		// Jobs did not reach a barrier in time; fall through and let
		// Shutdown's deadline force the issue.
	}
	if err := srv.Shutdown(sctx); err != nil {
		srv.Close()
		return fmt.Errorf("graceful shutdown incomplete: %w", err)
	}
	return nil
}
