package obs

import (
	"context"
	"io"
	"log/slog"
	"os"

	"github.com/eda-go/adifo/internal/obs/trace"
)

// Logging: every component of the serving stack (service engine,
// cluster coordinator, both binaries) logs through a *slog.Logger with
// consistent key-value fields — "job", "kind", "backend", "shard" —
// instead of free-form printf lines, so one grep (or one log pipeline
// filter) follows a job across layers. The constructors here pin the
// stack's one handler configuration; components accept any
// *slog.Logger, so tests pass Nop() and embedders plug in their own
// handler.

// NewLogger returns a leveled text logger writing to w. Level may be a
// plain slog.Level or a dynamic slog.LevelVar. Records logged through
// the context-aware methods (InfoContext etc.) under a traced context
// carry trace_id and span_id, so one grep correlates logs with the
// /debug/traces flight recorder.
func NewLogger(w io.Writer, level slog.Leveler) *slog.Logger {
	return slog.New(WithTrace(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level})))
}

// NewJSONLogger is NewLogger with JSON output, for deployments that
// ship logs to a structured pipeline.
func NewJSONLogger(w io.Writer, level slog.Leveler) *slog.Logger {
	return slog.New(WithTrace(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level})))
}

// WithTrace wraps a slog handler so every record handled under a traced
// context gains trace_id and span_id attributes. Records logged without
// a span on the context pass through unchanged.
func WithTrace(h slog.Handler) slog.Handler {
	if _, ok := h.(traceHandler); ok {
		return h
	}
	return traceHandler{h}
}

type traceHandler struct{ slog.Handler }

func (t traceHandler) Handle(ctx context.Context, r slog.Record) error {
	if sc := trace.SpanContextFromContext(ctx); sc.IsValid() {
		r.AddAttrs(slog.String("trace_id", sc.TraceID.String()))
		if sc.SpanID.IsValid() {
			r.AddAttrs(slog.String("span_id", sc.SpanID.String()))
		}
	}
	return t.Handler.Handle(ctx, r)
}

func (t traceHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return traceHandler{t.Handler.WithAttrs(attrs)}
}

func (t traceHandler) WithGroup(name string) slog.Handler {
	return traceHandler{t.Handler.WithGroup(name)}
}

// Default is the stack's default logger: Info-level text on stderr.
// Components whose config carries a nil logger fall back to it, so
// diagnostics are never silently dropped.
func Default() *slog.Logger {
	return defaultLogger
}

var defaultLogger = NewLogger(os.Stderr, slog.LevelInfo)

// Nop returns a logger that discards everything — the quiet mode tests
// and benchmarks use so engine diagnostics don't pollute their output.
func Nop() *slog.Logger { return nopLogger }

var nopLogger = slog.New(nopHandler{})

// nopHandler drops every record. The standard library gained
// slog.DiscardHandler in Go 1.24; this five-liner keeps the package's
// floor at the module's own go directive rather than the newest
// stdlib.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

// Or returns l, or the package default when l is nil — the one-line
// config normalization every component shares.
func Or(l *slog.Logger) *slog.Logger {
	if l == nil {
		return Default()
	}
	return l
}
