package adifo

import (
	"context"
	"fmt"

	"github.com/eda-go/adifo/internal/reorder"
	"github.com/eda-go/adifo/internal/tgen"
)

// TestResult collects everything one test-generation run produced: the
// test set in generation order, per-test targets, the cumulative fault
// coverage curve, redundant/aborted fault classifications and ATPG
// effort counters.
type TestResult = tgen.Result

// genConfig wraps the generator options; the zero value — default
// backtrack limit, zero fill seed, no validation — is the default.
type genConfig struct {
	opts tgen.Options
}

// GenOption configures GenerateTests.
type GenOption func(*genConfig)

// WithFillSeed seeds the pseudo-random completion of unspecified
// inputs. Runs with equal seeds and equal orders are bit-for-bit
// reproducible; DefaultFillSeed is the paper's value.
func WithFillSeed(seed uint64) GenOption {
	return func(c *genConfig) { c.opts.FillSeed = seed }
}

// WithValidate cross-checks every generated vector against the fault
// simulator: the targeted fault must be among the faults the vector
// drops.
func WithValidate(v bool) GenOption {
	return func(c *genConfig) { c.opts.Validate = v }
}

// WithBacktrackLimit bounds the PODEM generator's backtracks per
// target (0 = default).
func WithBacktrackLimit(n int) GenOption {
	return func(c *genConfig) { c.opts.BacktrackLimit = n }
}

// GenerateTests runs ordered test generation over fl — PODEM per
// fault, random fill, fault dropping by simulation, no dynamic
// compaction — exactly the paper's experimental flow where the fault
// order is the only lever. order must be a permutation of
// [0, fl.Len()), typically Index.Order(kind).
//
// ctx is polled before every ATPG target: a cancelled run returns the
// tests generated so far, with a consistent coverage curve, together
// with ctx.Err().
func GenerateTests(ctx context.Context, fl *FaultList, order []int, opts ...GenOption) (*TestResult, error) {
	var cfg genConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	if err := checkPermutation(order, fl.Len()); err != nil {
		return nil, err
	}
	return tgen.GenerateContext(ctx, fl, order, cfg.opts)
}

// checkPermutation validates a fault order at the facade boundary, so
// external callers get an error instead of the internal panic.
func checkPermutation(order []int, n int) error {
	if len(order) != n {
		return fmt.Errorf("adifo: order has %d entries, fault list has %d", len(order), n)
	}
	seen := make([]bool, n)
	for _, fi := range order {
		if fi < 0 || fi >= n || seen[fi] {
			return fmt.Errorf("adifo: order is not a permutation of [0,%d)", n)
		}
		seen[fi] = true
	}
	return nil
}

// AVE computes the paper's steepness metric from a cumulative coverage
// curve (curve[i] = faults detected by the first i+1 tests): the
// expected number of tests applied until a faulty chip is detected.
// Lower is steeper.
func AVE(curve []int) float64 { return tgen.AVE(curve) }

// CoveragePoints converts a cumulative curve into (tests %, coverage
// %) pairs normalized the way Figure 1 of the paper plots them.
func CoveragePoints(curve []int) (xs, ys []float64) {
	return tgen.CoveragePoints(curve)
}

// ReorderResult is the outcome of a static test-set reordering.
type ReorderResult = reorder.Result

// ReorderGreedy reorders an existing test set so the most-detecting
// vectors come first (the static method of the paper's reference [7],
// Lin et al.), for comparison against ADI-ordered generation.
func ReorderGreedy(fl *FaultList, ps *PatternSet) *ReorderResult {
	return reorder.Greedy(fl, ps)
}
