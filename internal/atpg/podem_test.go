package atpg

import (
	"fmt"
	"testing"

	"github.com/eda-go/adifo/internal/circuit"
	"github.com/eda-go/adifo/internal/fault"
	"github.com/eda-go/adifo/internal/fsim"
	"github.com/eda-go/adifo/internal/logic"
	"github.com/eda-go/adifo/internal/prng"
)

const c17Bench = `
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`

func parse(t testing.TB, name, src string) *circuit.Circuit {
	t.Helper()
	c, err := circuit.ParseBenchString(name, src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// exhaustiveDetectable computes, by brute force, whether each fault is
// detectable at all.
func exhaustiveDetectable(c *circuit.Circuit, fl *fault.List) []bool {
	ps := logic.ExhaustivePatterns(c.NumInputs())
	res := fsim.Run(fl, ps, fsim.Options{Mode: fsim.Drop})
	out := make([]bool, fl.Len())
	for i := range out {
		out[i] = res.Detected(i)
	}
	return out
}

func TestPodemC17AllFaults(t *testing.T) {
	c := parse(t, "c17", c17Bench)
	fl := fault.Universe(c)
	gen := New(c, Options{})
	detectable := exhaustiveDetectable(c, fl)
	for fi, f := range fl.Faults {
		res := gen.Generate(f)
		if !detectable[fi] {
			if res.Status != Redundant {
				t.Fatalf("undetectable fault %v: status %v", f.Name(c), res.Status)
			}
			continue
		}
		if res.Status != Success {
			t.Fatalf("detectable fault %v: status %v", f.Name(c), res.Status)
		}
		// Any completion of the cube must detect the fault — check
		// the two constant fills, which bracket the fill space.
		for _, bit := range []uint8{0, 1} {
			v := FillConstant(res.Cube, bit)
			if !fsim.Detects(c, f, v) {
				t.Fatalf("fault %v: cube %v filled with %d does not detect", f.Name(c), res.Cube, bit)
			}
		}
	}
}

func TestPodemFindsRedundancy(t *testing.T) {
	// y = OR(a, NOT(a)) is constant 1: y sa1 undetectable, and so is
	// z's AND input from y stuck at 1.
	src := `
INPUT(a)
INPUT(b)
OUTPUT(z)
n = NOT(a)
y = OR(a, n)
z = AND(y, b)
`
	c := parse(t, "red", src)
	fl := fault.Universe(c)
	gen := New(c, Options{})
	detectable := exhaustiveDetectable(c, fl)
	for fi, f := range fl.Faults {
		res := gen.Generate(f)
		switch {
		case detectable[fi] && res.Status != Success:
			t.Fatalf("detectable %v classified %v", f.Name(c), res.Status)
		case !detectable[fi] && res.Status != Redundant:
			t.Fatalf("undetectable %v classified %v", f.Name(c), res.Status)
		}
	}
}

func TestPodemBranchFaults(t *testing.T) {
	// Fanout with reconvergence — exercises branch-fault activation
	// and propagation, including the D-frontier special case.
	src := `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
n1 = NAND(a, b)
n2 = NAND(b, c)
y = NAND(n1, n2)
`
	cc := parse(t, "reconv", src)
	fl := fault.Universe(cc)
	gen := New(cc, Options{})
	detectable := exhaustiveDetectable(cc, fl)
	branchTested := 0
	for fi, f := range fl.Faults {
		res := gen.Generate(f)
		if detectable[fi] {
			if res.Status != Success {
				t.Fatalf("fault %v: %v", f.Name(cc), res.Status)
			}
			v := FillConstant(res.Cube, 0)
			if !fsim.Detects(cc, f, v) {
				t.Fatalf("fault %v: generated vector %s misses", f.Name(cc), v)
			}
			if f.Pin != fault.StemPin {
				branchTested++
			}
		} else if res.Status != Redundant {
			t.Fatalf("fault %v: %v", f.Name(cc), res.Status)
		}
	}
	if branchTested == 0 {
		t.Fatal("test circuit exercised no branch faults")
	}
}

func TestPodemXorCircuit(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(p)
x1 = XOR(a, b)
x2 = XNOR(c, d)
p = XOR(x1, x2)
`
	cc := parse(t, "xor", src)
	fl := fault.Universe(cc)
	gen := New(cc, Options{})
	for _, f := range fl.Faults {
		res := gen.Generate(f)
		// Every fault in a pure XOR tree is detectable.
		if res.Status != Success {
			t.Fatalf("fault %v: %v", f.Name(cc), res.Status)
		}
		if !fsim.Detects(cc, f, FillConstant(res.Cube, 1)) {
			t.Fatalf("fault %v: vector misses", f.Name(cc))
		}
	}
}

// randomCircuit builds a deterministic random layered netlist for
// property-style testing.
func randomCircuit(t testing.TB, seed uint64, inputs, gates int) *circuit.Circuit {
	t.Helper()
	src := prng.New(seed)
	b := circuit.NewBuilder(fmt.Sprintf("rand%d", seed))
	var ids []int
	for i := 0; i < inputs; i++ {
		ids = append(ids, b.AddInput(fmt.Sprintf("i%d", i)))
	}
	types := []circuit.GateType{circuit.And, circuit.Nand, circuit.Or, circuit.Nor, circuit.Xor, circuit.Not, circuit.Buf}
	for i := 0; i < gates; i++ {
		ty := types[src.Intn(len(types))]
		nin := 2
		if ty == circuit.Not || ty == circuit.Buf {
			nin = 1
		}
		fanin := make([]int, nin)
		for k := range fanin {
			fanin[k] = ids[src.Intn(len(ids))]
		}
		ids = append(ids, b.AddGate(fmt.Sprintf("g%d", i), ty, fanin...))
	}
	// Observe the last few gates so most of the circuit is sensitizable.
	for k := 0; k < 3; k++ {
		b.MarkOutput(ids[len(ids)-1-k])
	}
	c, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPodemRandomCircuitsAgreeWithExhaustive(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		c := randomCircuit(t, seed, 8, 25)
		fl := fault.CollapsedUniverse(c)
		gen := New(c, Options{})
		detectable := exhaustiveDetectable(c, fl)
		for fi, f := range fl.Faults {
			res := gen.Generate(f)
			if detectable[fi] {
				if res.Status != Success {
					t.Fatalf("seed %d fault %v: %v (detectable)", seed, f.Name(c), res.Status)
				}
				if !fsim.Detects(c, f, FillConstant(res.Cube, 0)) ||
					!fsim.Detects(c, f, FillConstant(res.Cube, 1)) {
					t.Fatalf("seed %d fault %v: cube completion misses", seed, f.Name(c))
				}
			} else if res.Status == Success {
				t.Fatalf("seed %d fault %v: success on undetectable fault", seed, f.Name(c))
			}
		}
	}
}

func TestFillRandomPreservesAssignments(t *testing.T) {
	cube := []logic.V3{logic.One, logic.X, logic.Zero, logic.X}
	src := prng.New(4)
	for i := 0; i < 50; i++ {
		v := FillRandom(cube, src)
		if v[0] != 1 || v[2] != 0 {
			t.Fatalf("fill overwrote specified bits: %v", v)
		}
		if v[1] > 1 || v[3] > 1 {
			t.Fatalf("fill produced non-binary value: %v", v)
		}
	}
}

func TestFillConstant(t *testing.T) {
	cube := []logic.V3{logic.One, logic.X, logic.Zero}
	if got := FillConstant(cube, 0); got.String() != "100" {
		t.Fatalf("FillConstant 0 = %s", got)
	}
	if got := FillConstant(cube, 1); got.String() != "110" {
		t.Fatalf("FillConstant 1 = %s", got)
	}
}

func TestBacktrackLimitAborts(t *testing.T) {
	// A redundancy proof needs the search to exhaust the decision
	// tree; with a one-backtrack budget PODEM must abort instead of
	// claiming redundancy.
	src := `
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(z)
n = NOT(a)
y = OR(a, n)
m1 = AND(b, c)
m2 = OR(m1, d)
z = AND(y, m2)
`
	cc := parse(t, "abort", src)
	y, _ := cc.GateByName("y")
	f := fault.Fault{Gate: y, Pin: fault.StemPin, SA: 1}

	full := New(cc, Options{}).Generate(f)
	if full.Status != Redundant {
		t.Fatalf("with full budget: %v, want redundant", full.Status)
	}
	limited := New(cc, Options{BacktrackLimit: 1}).Generate(f)
	if limited.Status != Aborted {
		t.Fatalf("with 1-backtrack budget: %v, want aborted", limited.Status)
	}
}

func TestStatusString(t *testing.T) {
	if Success.String() != "success" || Redundant.String() != "redundant" || Aborted.String() != "aborted" {
		t.Fatal("status labels wrong")
	}
	if Status(9).String() == "" {
		t.Fatal("unknown status label empty")
	}
}

func TestGeneratorReusableAcrossFaults(t *testing.T) {
	c := parse(t, "c17", c17Bench)
	fl := fault.Universe(c)
	gen := New(c, Options{})
	// Run twice over the fault list; results must be identical.
	first := make([]Status, fl.Len())
	for fi, f := range fl.Faults {
		first[fi] = gen.Generate(f).Status
	}
	for fi, f := range fl.Faults {
		if got := gen.Generate(f).Status; got != first[fi] {
			t.Fatalf("fault %d: status changed across reuse: %v vs %v", fi, got, first[fi])
		}
	}
}

func BenchmarkPodemC17(b *testing.B) {
	c := parse(b, "c17", c17Bench)
	fl := fault.Universe(c)
	gen := New(c, Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range fl.Faults {
			gen.Generate(f)
		}
	}
}
