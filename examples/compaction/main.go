// Compaction: the paper's first application (Section 1, application
// 1). Generating tests for high-ADI faults first makes every early
// vector pay for many faults, shrinking the final test set without
// any dynamic compaction machinery in the ATPG itself.
//
// This example runs the full flow of the paper's Table 5 on one
// synthetic benchmark and compares all six fault orders, preparing the
// circuit with the paper's published recipe (10,000 candidate vectors
// truncated at ~90% fault coverage) through the public adifo package.
//
// Run with:
//
//	go run ./examples/compaction
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"github.com/eda-go/adifo"
)

func main() {
	ctx := context.Background()

	// Build irs298 the way the experiments do: LoadCircuit generates
	// the synthetic netlist and applies the irredundancy pass.
	c, err := adifo.LoadCircuit("irs298")
	if err != nil {
		log.Fatal(err)
	}
	faults := adifo.Faults(c)

	// Size U per the paper's recipe: start from the default candidate
	// budget and keep only the prefix that reaches ~90% coverage.
	candidates := adifo.RandomPatterns(c.NumInputs(), adifo.DefaultUBudget, adifo.DefaultUSeed)
	u, err := adifo.SizePatterns(ctx, faults, candidates, adifo.DefaultTargetCoverage)
	if err != nil {
		log.Fatal(err)
	}
	index, err := adifo.ComputeADI(ctx, faults, u)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d inputs, %d faults, |U|=%d\n",
		c.Name, c.NumInputs(), faults.Len(), u.Len())

	fmt.Println("Test-set size by fault order")
	tw := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "order\ttests\tcoverage%\tAVE\tatpg calls\t")
	for _, kind := range adifo.AllOrders() {
		res, err := adifo.GenerateTests(ctx, faults, index.Order(kind),
			adifo.WithFillSeed(adifo.DefaultFillSeed), adifo.WithValidate(true))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.2f\t%d\t\n",
			kind, len(res.Tests), 100*res.Coverage(), res.AVE(), res.AtpgCalls)
	}
	tw.Flush()
	fmt.Println("Expected shape (paper, Table 5): 0dynm smallest, dynm close,")
	fmt.Println("orig larger, incr0 largest — ADI ordering is doing the compaction.")
}
