// Facade tests: drive the whole pipeline — load, simulate, ADI,
// order, generate, grade locally and remotely, cancel — through
// exported adifo identifiers only, exactly as a program outside the
// module would (this file is package adifo_test and imports nothing
// from internal/).
package adifo_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/eda-go/adifo"
	"github.com/eda-go/adifo/internal/obs"
)

func TestFacadePipeline(t *testing.T) {
	ctx := context.Background()

	c, err := adifo.LoadCircuit("c17")
	if err != nil {
		t.Fatal(err)
	}
	faults := adifo.Faults(c)
	if faults.Len() != 22 {
		t.Fatalf("c17 collapsed faults = %d, want 22", faults.Len())
	}
	if all := adifo.AllFaults(c); all.Len() <= faults.Len() {
		t.Fatalf("uncollapsed %d vs collapsed %d", all.Len(), faults.Len())
	}

	u := adifo.ExhaustivePatterns(c.NumInputs())
	ix, err := adifo.ComputeADI(ctx, faults, u)
	if err != nil {
		t.Fatal(err)
	}
	mn, mx := ix.MinMax()
	if mn <= 0 || mx < mn {
		t.Fatalf("degenerate ADI range [%d, %d]", mn, mx)
	}

	for _, kind := range adifo.AllOrders() {
		order := ix.Order(kind)
		res, err := adifo.GenerateTests(ctx, faults, order,
			adifo.WithFillSeed(adifo.DefaultFillSeed), adifo.WithValidate(true))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.Coverage() != 1.0 {
			t.Fatalf("%v: coverage %.3f, want 1.0 on c17", kind, res.Coverage())
		}
	}

	// Round-trip an order label through ParseOrder.
	kind, err := adifo.ParseOrder("0dynm")
	if err != nil || kind != adifo.Dynm0 {
		t.Fatalf("ParseOrder(0dynm) = %v, %v", kind, err)
	}
}

func TestFacadeSimulateOptions(t *testing.T) {
	ctx := context.Background()
	c, err := adifo.LoadCircuit("lion")
	if err != nil {
		t.Fatal(err)
	}
	faults := adifo.Faults(c)
	ps := adifo.RandomPatterns(c.NumInputs(), 640, adifo.DefaultUSeed)

	// Default mode is NoDrop: detection sets are present.
	noDrop, err := adifo.Simulate(ctx, faults, ps)
	if err != nil {
		t.Fatal(err)
	}
	if noDrop.Det == nil {
		t.Fatal("default Simulate must record detection sets (NoDrop)")
	}
	// The ADI can be derived from an existing NoDrop result.
	if _, err := adifo.ADIFromResult(noDrop, ps); err != nil {
		t.Fatal(err)
	}

	var progressCalls int
	dropped, err := adifo.Simulate(ctx, faults, ps,
		adifo.WithMode(adifo.Drop),
		adifo.WithWorkers(2),
		adifo.WithProgress(func(p adifo.SimProgress) { progressCalls++ }))
	if err != nil {
		t.Fatal(err)
	}
	if progressCalls == 0 {
		t.Fatal("progress callback never fired")
	}
	if dropped.Det != nil {
		t.Fatal("Drop mode must not record detection sets")
	}
	if _, err := adifo.ADIFromResult(dropped, ps); err == nil {
		t.Fatal("ADIFromResult must reject a Drop-mode result")
	}

	// A pinned kernel block width changes speed, never results.
	wide, err := adifo.Simulate(ctx, faults, ps, adifo.WithBlockWidth(512))
	if err != nil {
		t.Fatal(err)
	}
	if wide.DetectedCount() != noDrop.DetectedCount() || wide.VectorsUsed != noDrop.VectorsUsed {
		t.Fatalf("block width changed results: %d/%d vs %d/%d",
			wide.DetectedCount(), wide.VectorsUsed, noDrop.DetectedCount(), noDrop.VectorsUsed)
	}

	// Option validation surfaces as errors, not panics.
	if _, err := adifo.Simulate(ctx, faults, ps, adifo.WithMode(adifo.NDetect)); err == nil {
		t.Fatal("NDetect without a threshold must error")
	}
	if _, err := adifo.Simulate(ctx, faults, ps, adifo.WithBlockWidth(100)); err == nil {
		t.Fatal("invalid block width must error")
	}
	bad := adifo.RandomPatterns(c.NumInputs()+1, 64, 1)
	if _, err := adifo.Simulate(ctx, faults, bad); err == nil {
		t.Fatal("input-width mismatch must error")
	}
	if _, err := adifo.GenerateTests(ctx, faults, []int{0, 0}); err == nil {
		t.Fatal("non-permutation order must error")
	}
	if _, err := adifo.ParseMode(""); err == nil {
		t.Fatal("empty mode string must be rejected")
	}
}

func TestFacadeSimulateCancel(t *testing.T) {
	c, err := adifo.LoadCircuit("c17")
	if err != nil {
		t.Fatal(err)
	}
	faults := adifo.Faults(c)
	ps := adifo.RandomPatterns(c.NumInputs(), 1024, 7)
	ctx, cancel := context.WithCancel(context.Background())
	res, err := adifo.Simulate(ctx, faults, ps,
		adifo.WithProgress(func(p adifo.SimProgress) {
			if p.Block == 1 {
				cancel()
			}
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.VectorsUsed == 0 || res.VectorsUsed >= ps.Len() {
		t.Fatalf("cancelled run simulated %d of %d vectors", res.VectorsUsed, ps.Len())
	}
	cancel()
}

// slowChainBench builds a deep XOR chain whose grading takes long
// enough to cancel mid-run.
func slowChainBench() string {
	var b strings.Builder
	const inputs, chain = 16, 400
	for i := 0; i < inputs; i++ {
		fmt.Fprintf(&b, "INPUT(i%d)\n", i)
	}
	fmt.Fprintf(&b, "OUTPUT(g%d)\n", chain-1)
	fmt.Fprintf(&b, "g0 = XOR(i0, i1)\n")
	for i := 1; i < chain; i++ {
		fmt.Fprintf(&b, "g%d = XOR(g%d, i%d)\n", i, i-1, i%inputs)
	}
	return b.String()
}

// gradeAndCancel drives the Grader contract shared by the local and
// remote implementations: grade a small job to completion, then cancel
// a slow one mid-run and watch its stream end with JobCancelled.
func gradeAndCancel(t *testing.T, g adifo.Grader) {
	t.Helper()
	ctx := context.Background()

	id, err := g.Submit(ctx, adifo.JobSpec{
		Circuit:  "c17",
		Patterns: adifo.PatternSpec{Random: &adifo.RandomSpec{N: 320, Seed: 3}},
		Mode:     "nodrop",
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := g.Stream(ctx, id, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != adifo.JobDone {
		t.Fatalf("job state %s: %s", st.State, st.Error)
	}
	res, err := g.Result(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check the service result against a direct library run
	// through the facade.
	c, err := adifo.ParseBenchString("c17", adifo.BenchString(mustLoad(t, "c17")))
	if err != nil {
		t.Fatal(err)
	}
	faults := adifo.Faults(c)
	ps := adifo.RandomPatterns(c.NumInputs(), 320, 3)
	direct, err := adifo.Simulate(ctx, faults, ps)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected != direct.DetectedCount() || res.Faults != faults.Len() {
		t.Fatalf("grader result %d/%d diverges from direct run %d/%d",
			res.Detected, res.Faults, direct.DetectedCount(), faults.Len())
	}

	// Cancel a slow job mid-run.
	slow, err := g.Submit(ctx, adifo.JobSpec{
		Bench:    slowChainBench(),
		Name:     "slow-chain",
		Patterns: adifo.PatternSpec{Random: &adifo.RandomSpec{N: 1 << 16, Seed: 1}},
		Mode:     "nodrop",
	})
	if err != nil {
		t.Fatal(err)
	}
	cancelled := false
	st, err = g.Stream(ctx, slow, func(ev adifo.ProgressEvent) {
		if !cancelled {
			cancelled = true
			if _, err := g.Cancel(ctx, slow); err != nil {
				t.Errorf("cancel: %v", err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != adifo.JobCancelled {
		t.Fatalf("stream of cancelled job ended with %q, want %q", st.State, adifo.JobCancelled)
	}
	if _, err := g.Result(ctx, slow); err == nil {
		t.Fatal("result of a cancelled job must error")
	}
	stats, err := g.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.JobsCancelled != 1 || stats.JobsDone != 1 {
		t.Fatalf("grader stats: %+v", stats)
	}
}

func mustLoad(t *testing.T, ref string) *adifo.Circuit {
	t.Helper()
	c, err := adifo.LoadCircuit(ref)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestLocalGrader(t *testing.T) {
	g := adifo.NewLocalGrader(adifo.GraderConfig{})
	defer g.Close()
	gradeAndCancel(t, g)
}

func TestRemoteGrader(t *testing.T) {
	// The remote grader talks to a real HTTP server backed by the
	// local engine — the same wiring as adifod.
	local := adifo.NewLocalGrader(adifo.GraderConfig{})
	defer local.Close()
	srv := httptest.NewServer(local.Handler())
	defer srv.Close()
	g := adifo.NewRemoteGrader(srv.URL, srv.Client())
	defer g.Close()
	gradeAndCancel(t, g)
}

// clusterOf spins up n adifod-equivalent backends and a ClusterGrader
// over them, all through the public API.
func clusterOf(t *testing.T, n int) *adifo.ClusterGrader {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		local := adifo.NewLocalGrader(adifo.GraderConfig{})
		srv := httptest.NewServer(local.Handler())
		t.Cleanup(func() {
			srv.Close()
			local.Close()
		})
		urls[i] = srv.URL
	}
	g, err := adifo.NewClusterGrader(urls, adifo.ClusterOptions{Logger: obs.Nop()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return g
}

// TestClusterGraderParity: a ClusterGrader over three backends returns
// the identical result a LocalGrader computes in one process, through
// the Grader interface consumers already use.
func TestClusterGraderParity(t *testing.T) {
	ctx := context.Background()
	spec := adifo.JobSpec{
		Circuit:  "c17",
		Mode:     "ndetect",
		N:        4,
		Patterns: adifo.PatternSpec{Random: &adifo.RandomSpec{N: 448, Seed: 11}},
	}

	local := adifo.NewLocalGrader(adifo.GraderConfig{})
	defer local.Close()
	wantID, err := local.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := local.Stream(ctx, wantID, nil); err != nil || st.State != adifo.JobDone {
		t.Fatalf("local stream: %+v, %v", st, err)
	}
	want, err := local.Result(ctx, wantID)
	if err != nil {
		t.Fatal(err)
	}

	g := clusterOf(t, 3)
	id, err := g.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	// A small job can finish before the stream subscribes, so events
	// are not asserted here; the merged-stream shape is covered by the
	// cluster package tests.
	st, err := g.Stream(ctx, id, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != adifo.JobDone {
		t.Fatalf("cluster job %s: %s", st.State, st.Error)
	}
	got, err := g.Result(ctx, id)
	if err != nil {
		t.Fatal(err)
	}

	norm := func(r *adifo.JobResult) string {
		cp := *r
		cp.ID = "X"
		cp.Timing = nil // wall-clock, never identical between runs
		cp.TraceID = "" // run identity, never identical between runs
		b, err := json.Marshal(&cp)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if norm(got) != norm(want) {
		t.Fatalf("cluster result diverges from local run\n got: %s\nwant: %s", norm(got), norm(want))
	}

	// 4 work-queue shards per healthy backend (the coordinator's
	// default over-partitioning factor).
	shards, err := g.Shards(id)
	if err != nil || len(shards) != 12 {
		t.Fatalf("shards: %v, %v", shards, err)
	}

	// Cancel flow across the cluster: a slow job cancelled mid-run ends
	// its merged stream with the cancelled status.
	slow, err := g.Submit(ctx, adifo.JobSpec{
		Bench:    slowChainBench(),
		Name:     "slow-chain",
		Patterns: adifo.PatternSpec{Random: &adifo.RandomSpec{N: 1 << 16, Seed: 1}},
		Mode:     "nodrop",
	})
	if err != nil {
		t.Fatal(err)
	}
	cancelled := false
	st, err = g.Stream(ctx, slow, func(ev adifo.ProgressEvent) {
		if !cancelled {
			cancelled = true
			if _, err := g.Cancel(ctx, slow); err != nil {
				t.Errorf("cancel: %v", err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != adifo.JobCancelled {
		t.Fatalf("cancelled cluster stream ended with %q", st.State)
	}
	if _, err := g.Result(ctx, slow); !errors.Is(err, adifo.ErrJobCancelled) {
		t.Fatalf("result of cancelled cluster job: %v, want ErrJobCancelled", err)
	}
}

// TestRemoteGraderTypedError checks the remote error path surfaces the
// wire envelope as *adifo.APIError.
func TestRemoteGraderTypedError(t *testing.T) {
	local := adifo.NewLocalGrader(adifo.GraderConfig{})
	defer local.Close()
	srv := httptest.NewServer(local.Handler())
	defer srv.Close()
	g := adifo.NewRemoteGrader(srv.URL, srv.Client())
	defer g.Close()

	ctx := context.Background()
	_, err := g.Status(ctx, "j999")
	var ae *adifo.APIError
	if !errors.As(err, &ae) || ae.Code != "not_found" {
		t.Fatalf("remote status of unknown job: %v, want APIError not_found", err)
	}
	// The sentinel contract holds across implementations: a decoded
	// wire error matches the same errors.Is targets as a local call.
	if !errors.Is(err, adifo.ErrJobNotFound) {
		t.Fatalf("remote error %v must match ErrJobNotFound via errors.Is", err)
	}
	id, err := g.Submit(ctx, adifo.JobSpec{
		Circuit:  "c17",
		Patterns: adifo.PatternSpec{Exhaustive: true},
		Mode:     "nodrop",
	})
	if err != nil {
		t.Fatal(err)
	}
	if st, err := g.Stream(ctx, id, nil); err != nil || st.State != adifo.JobDone {
		t.Fatalf("stream: %+v, %v", st, err)
	}
	if _, err := g.Cancel(ctx, id); !errors.Is(err, adifo.ErrJobFinished) {
		t.Fatalf("remote cancel of finished job: %v, want ErrJobFinished via errors.Is", err)
	}
	if _, err := g.Result(ctx, "j999"); !errors.Is(err, adifo.ErrJobNotFound) {
		t.Fatalf("remote result of unknown job: %v, want ErrJobNotFound", err)
	}
}

// TestLocalGraderErrors checks the local implementation returns the
// exported sentinel errors.
func TestLocalGraderErrors(t *testing.T) {
	g := adifo.NewLocalGrader(adifo.GraderConfig{})
	defer g.Close()
	ctx := context.Background()
	if _, err := g.Status(ctx, "j999"); !errors.Is(err, adifo.ErrJobNotFound) {
		t.Fatalf("status: %v, want ErrJobNotFound", err)
	}
	if _, err := g.Cancel(ctx, "j999"); !errors.Is(err, adifo.ErrJobNotFound) {
		t.Fatalf("cancel: %v, want ErrJobNotFound", err)
	}
	id, err := g.Submit(ctx, adifo.JobSpec{
		Circuit:  "c17",
		Patterns: adifo.PatternSpec{Exhaustive: true},
		Mode:     "nodrop",
	})
	if err != nil {
		t.Fatal(err)
	}
	if st, err := g.Stream(ctx, id, nil); err != nil || st.State != adifo.JobDone {
		t.Fatalf("stream: %+v, %v", st, err)
	}
	if _, err := g.Cancel(ctx, id); !errors.Is(err, adifo.ErrJobFinished) {
		t.Fatalf("cancel finished: %v, want ErrJobFinished", err)
	}
}

// TestFacadeSizePatterns reproduces the paper's U-sizing recipe
// through the facade and checks the truncation actually happened.
func TestFacadeSizePatterns(t *testing.T) {
	ctx := context.Background()
	c := mustLoad(t, "lion")
	faults := adifo.Faults(c)
	candidates := adifo.RandomPatterns(c.NumInputs(), 4096, adifo.DefaultUSeed)
	u, err := adifo.SizePatterns(ctx, faults, candidates, adifo.DefaultTargetCoverage)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() == 0 || u.Len() >= candidates.Len() {
		t.Fatalf("sized U has %d of %d vectors", u.Len(), candidates.Len())
	}
	if u.Len()%64 != 0 {
		t.Fatalf("sizing must cut at a block boundary, got %d", u.Len())
	}
}

// TestGenerateTestsCancel checks cancellation mid-generation returns a
// consistent partial test set.
func TestGenerateTestsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := mustLoad(t, "c17")
	faults := adifo.Faults(c)
	u := adifo.ExhaustivePatterns(c.NumInputs())
	ix, err := adifo.ComputeADI(ctx, faults, u)
	if err != nil {
		t.Fatal(err)
	}
	// Cancel after a tick: generation on c17 is fast, so instead use a
	// pre-cancelled context for determinism.
	cancel()
	res, err := adifo.GenerateTests(ctx, faults, ix.Order(adifo.Dynm))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res.Tests) != 0 || len(res.Curve) != 0 {
		t.Fatalf("pre-cancelled generation produced %d tests", len(res.Tests))
	}
}
