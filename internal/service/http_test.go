package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"github.com/eda-go/adifo/internal/obs"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/eda-go/adifo/internal/benchdata"
	"github.com/eda-go/adifo/internal/circuit"
	"github.com/eda-go/adifo/internal/fault"
	"github.com/eda-go/adifo/internal/fsim"
	"github.com/eda-go/adifo/internal/logic"
	"github.com/eda-go/adifo/internal/prng"
)

func postJob(t *testing.T, srv *httptest.Server, spec JobSpec) string {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.ID
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func pollDone(t *testing.T, srv *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var st JobStatus
		if code := getJSON(t, srv.URL+"/v1/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("status: HTTP %d", code)
		}
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck: %+v", id, st)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestHTTPEndToEnd is the acceptance flow: POST a .bench netlist plus
// a pattern set, poll the job, retrieve per-fault detection sets and
// ndet counts, and check them against a direct library run; then
// resubmit the identical request and verify the registry cache hits
// via the exposed counters.
func TestHTTPEndToEnd(t *testing.T) {
	s := New(Config{Logger: obs.Nop()})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	spec := JobSpec{
		Bench:    benchdata.C17,
		Name:     "c17-inline",
		Patterns: PatternSpec{Random: &RandomSpec{N: 300, Seed: 42}},
		Mode:     "nodrop",
	}
	id := postJob(t, srv, spec)
	if st := pollDone(t, srv, id); st.State != StateDone {
		t.Fatalf("job failed: %s", st.Error)
	}

	var res JobResult
	if code := getJSON(t, srv.URL+"/v1/jobs/"+id+"/result", &res); code != http.StatusOK {
		t.Fatalf("result: HTTP %d", code)
	}

	// Direct library run on the same inputs.
	c, err := circuit.ParseBench("c17-inline", strings.NewReader(benchdata.C17))
	if err != nil {
		t.Fatal(err)
	}
	fl := fault.CollapsedUniverse(c)
	ps := logic.RandomPatterns(c.NumInputs(), 300, prng.New(42))
	want := fsim.Run(fl, ps, fsim.Options{Mode: fsim.NoDrop})

	if res.Faults != fl.Len() || res.Detected != want.DetectedCount() || res.VectorsUsed != want.VectorsUsed {
		t.Fatalf("summary mismatch: %+v", res)
	}
	for u := range want.Ndet {
		if res.Ndet[u] != want.Ndet[u] {
			t.Fatalf("ndet(%d) = %d, want %d", u, res.Ndet[u], want.Ndet[u])
		}
	}
	for fi := range fl.Faults {
		wantIdx := want.Det[fi].Indices()
		got := res.PerFault[fi].Det
		if len(got) != len(wantIdx) {
			t.Fatalf("fault %d: detection set size %d, want %d", fi, len(got), len(wantIdx))
		}
		for k := range wantIdx {
			if got[k] != wantIdx[k] {
				t.Fatalf("fault %d: det[%d] = %d, want %d", fi, k, got[k], wantIdx[k])
			}
		}
	}

	// Repeat submission of the identical request: both caches must hit.
	var before, after Stats
	getJSON(t, srv.URL+"/v1/stats", &before)
	id2 := postJob(t, srv, spec)
	if st := pollDone(t, srv, id2); st.State != StateDone {
		t.Fatalf("repeat job failed: %s", st.Error)
	}
	getJSON(t, srv.URL+"/v1/stats", &after)
	if after.Registry.CircuitHits != before.Registry.CircuitHits+1 {
		t.Fatalf("circuit cache hits %d -> %d, want +1", before.Registry.CircuitHits, after.Registry.CircuitHits)
	}
	if after.Registry.GoodHits != before.Registry.GoodHits+1 {
		t.Fatalf("good cache hits %d -> %d, want +1", before.Registry.GoodHits, after.Registry.GoodHits)
	}
	if after.Registry.CircuitMisses != before.Registry.CircuitMisses {
		t.Fatalf("unexpected circuit miss on repeat submission")
	}

	// Both jobs land on identical results.
	var res2 JobResult
	getJSON(t, srv.URL+"/v1/jobs/"+id2+"/result", &res2)
	if res2.Detected != res.Detected || res2.Fingerprint != res.Fingerprint {
		t.Fatalf("repeat run diverged: %+v vs %+v", res2, res)
	}
}

func TestHTTPStream(t *testing.T) {
	s := New(Config{Logger: obs.Nop()})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	id := postJob(t, srv, JobSpec{
		Circuit:  "c17",
		Patterns: PatternSpec{Random: &RandomSpec{N: 640, Seed: 5}},
		Mode:     "nodrop",
	})
	resp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: HTTP %d", resp.StatusCode)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if s := strings.TrimSpace(sc.Text()); s != "" {
			lines = append(lines, s)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("empty stream")
	}
	// The last line is the terminal status.
	var st JobStatus
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &st); err != nil {
		t.Fatalf("final line %q: %v", lines[len(lines)-1], err)
	}
	if st.ID != id || st.State != StateDone {
		t.Fatalf("final status %+v", st)
	}
	// Preceding lines are progress events.
	for _, line := range lines[:len(lines)-1] {
		var ev ProgressEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil || ev.JobID != id {
			t.Fatalf("bad progress line %q (%v)", line, err)
		}
	}
}

func TestHTTPErrors(t *testing.T) {
	s := New(Config{Logger: obs.Nop()})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	if code := getJSON(t, srv.URL+"/v1/jobs/j999", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job status: HTTP %d", code)
	}
	if code := getJSON(t, srv.URL+"/v1/jobs/j999/result", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job result: HTTP %d", code)
	}
	if code := getJSON(t, srv.URL+"/v1/jobs/j999/stream", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job stream: HTTP %d", code)
	}

	// Malformed submissions are rejected with 400.
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: HTTP %d", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(`{"circuit":"c17"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing patterns: HTTP %d", resp.StatusCode)
	}

	// A job that fails during resolution reports 422 on result.
	id := postJob(t, srv, JobSpec{
		Circuit:  "no-such-circuit",
		Patterns: PatternSpec{Random: &RandomSpec{N: 8, Seed: 1}},
		Mode:     "nodrop",
	})
	if st := pollDone(t, srv, id); st.State != StateFailed {
		t.Fatalf("want failed, got %+v", st)
	}
	if code := getJSON(t, srv.URL+"/v1/jobs/"+id+"/result", nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("failed job result: HTTP %d", code)
	}

	// Health and list endpoints respond.
	if code := getJSON(t, srv.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", code)
	}
	var jobs []JobStatus
	if code := getJSON(t, srv.URL+"/v1/jobs", &jobs); code != http.StatusOK || len(jobs) == 0 {
		t.Fatalf("list: HTTP %d, %d jobs", code, len(jobs))
	}
}

// decodeEnvelope reads the v1 error envelope off a response.
func decodeEnvelope(t *testing.T, resp *http.Response) APIError {
	t.Helper()
	defer resp.Body.Close()
	var env struct {
		Err APIError `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("response is not the error envelope: %v", err)
	}
	if env.Err.Code == "" || env.Err.Message == "" {
		t.Fatalf("incomplete envelope: %+v", env.Err)
	}
	return env.Err
}

func doDelete(t *testing.T, url string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestHTTPErrorEnvelope checks that every error path speaks the typed
// {"error": {"code", "message"}} contract.
func TestHTTPErrorEnvelope(t *testing.T) {
	s := New(Config{Logger: obs.Nop()})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/jobs/j999")
	if err != nil {
		t.Fatal(err)
	}
	if ae := decodeEnvelope(t, resp); ae.Code != CodeNotFound {
		t.Fatalf("unknown job code %q, want %q", ae.Code, CodeNotFound)
	}

	resp, err = http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"circuit":"c17","patterns":{"exhaustive":true}}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty mode: HTTP %d, want 400", resp.StatusCode)
	}
	if ae := decodeEnvelope(t, resp); ae.Code != CodeInvalidRequest {
		t.Fatalf("empty mode code %q, want %q", ae.Code, CodeInvalidRequest)
	}

	if resp := doDelete(t, srv.URL+"/v1/jobs/j999"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("delete unknown: HTTP %d", resp.StatusCode)
	} else if ae := decodeEnvelope(t, resp); ae.Code != CodeNotFound {
		t.Fatalf("delete unknown code %q", ae.Code)
	}
}

// TestHTTPCancel drives the acceptance flow: DELETE a running job,
// watch its stream terminate with a cancelled status, and check the
// conflict envelopes for result-after-cancel and cancel-after-done.
func TestHTTPCancel(t *testing.T) {
	s := New(Config{Logger: obs.Nop()})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	id := postJob(t, srv, slowSpec())

	// Open the stream first so the terminal line is observed.
	streamResp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	sc := bufio.NewScanner(streamResp.Body)
	// First line: the job is running.
	if !sc.Scan() {
		t.Fatal("stream closed before first event")
	}

	resp := doDelete(t, srv.URL+"/v1/jobs/"+id)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel running job: HTTP %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Drain the stream; the final line must be a cancelled JobStatus.
	lines := []string{strings.TrimSpace(sc.Text())}
	for sc.Scan() {
		if l := strings.TrimSpace(sc.Text()); l != "" {
			lines = append(lines, l)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &st); err != nil {
		t.Fatalf("final stream line %q: %v", lines[len(lines)-1], err)
	}
	if st.ID != id || st.State != StateCancelled {
		t.Fatalf("stream terminal status %+v, want cancelled", st)
	}

	// Result of a cancelled job is a conflict with code "cancelled".
	resp, err = http.Get(srv.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result after cancel: HTTP %d, want 409", resp.StatusCode)
	}
	if ae := decodeEnvelope(t, resp); ae.Code != CodeCancelled {
		t.Fatalf("result after cancel code %q, want %q", ae.Code, CodeCancelled)
	}

	// Repeat DELETE is idempotent.
	resp = doDelete(t, srv.URL+"/v1/jobs/"+id)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat cancel: HTTP %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Cancelling a finished job is a conflict with code "finished".
	done := postJob(t, srv, JobSpec{
		Circuit:  "c17",
		Patterns: PatternSpec{Exhaustive: true},
		Mode:     "nodrop",
	})
	if st := pollDone(t, srv, done); st.State != StateDone {
		t.Fatalf("job failed: %s", st.Error)
	}
	resp = doDelete(t, srv.URL+"/v1/jobs/"+done)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel finished job: HTTP %d, want 409", resp.StatusCode)
	}
	if ae := decodeEnvelope(t, resp); ae.Code != CodeFinished {
		t.Fatalf("cancel finished code %q, want %q", ae.Code, CodeFinished)
	}
}
