package service

import (
	"fmt"

	"github.com/eda-go/adifo/internal/cli"
	"github.com/eda-go/adifo/internal/tgen"
)

// atpgKind runs ordered test generation remotely: ADI over the job's
// vector set U, one of the paper's six fault orders, then PODEM along
// that order with random fill and fault dropping by simulation —
// bit-identical to an in-process adi.Compute + tgen.Generate run with
// equal inputs. Progress streams per ATPG target the way grade
// streams per 64-pattern block.
type atpgKind struct{}

// shardable: test generation is sequential over shared drop state (a
// test generated for one fault drops faults everywhere in the order),
// so fault ranges cannot be generated independently and merged.
func (atpgKind) shardable() bool { return false }

func (atpgKind) validate(spec JobSpec) error {
	if err := validateOrderedSpec(spec); err != nil {
		return err
	}
	if spec.Gen != nil && spec.Gen.BacktrackLimit < 0 {
		return fmt.Errorf("gen backtrack_limit must be >= 0 (0 = library default)")
	}
	return nil
}

func (atpgKind) run(s *Service, j *job) (any, error) {
	entry, ix, err := s.computeIndex(j)
	if err != nil {
		return nil, err
	}
	// Validated at submit.
	kind, _ := cli.ParseOrder(j.spec.Order.Kind)
	stopOrder := j.phase(PhaseOrder)
	order := ix.Order(kind)
	stopOrder()

	var gspec GenSpec
	if j.spec.Gen != nil {
		gspec = *j.spec.Gen
	}
	j.mu.Lock()
	j.status.Targets = len(order)
	j.mu.Unlock()

	stopGen := j.phase(PhaseGenerate)
	gres, err := tgen.GenerateContext(j.ctx, entry.Faults, order, tgen.Options{
		FillSeed:       gspec.FillSeed,
		BacktrackLimit: gspec.BacktrackLimit,
		Progress:       func(p tgen.Progress) { j.publishGen(p) },
	})
	stopGen()
	if err != nil {
		return nil, err
	}

	out := &AtpgResult{
		ID:          j.id,
		Kind:        KindAtpg,
		Circuit:     entry.Circuit.Name,
		Fingerprint: fmt.Sprintf("%016x", entry.Fingerprint),
		Order:       kind.String(),
		Faults:      entry.Faults.Len(),
		Vectors:     ix.U.Len(),
		TargetOf:    append([]int(nil), gres.TargetOf...),
		Curve:       append([]int(nil), gres.Curve...),
		Redundant:   append([]int(nil), gres.Redundant...),
		Aborted:     append([]int(nil), gres.Aborted...),
		AtpgCalls:   gres.AtpgCalls,
		Backtracks:  gres.Backtracks,
		Detected:    gres.Detected(),
		Coverage:    gres.Coverage(),
		AVE:         gres.AVE(),
	}
	out.Tests = make([]string, len(gres.Tests))
	for i, v := range gres.Tests {
		out.Tests[i] = vectorString(v)
	}

	j.mu.Lock()
	j.status.TargetsDone = len(order)
	j.status.Tests = len(out.Tests)
	j.status.Detected = out.Detected
	j.mu.Unlock()
	return out, nil
}

// AtpgResult is the outcome of an atpg job: the generated test set in
// generation order (as wire bit strings), the per-test targets, the
// cumulative coverage curve and the generator's effort counters —
// field for field what an in-process generation run returns.
type AtpgResult struct {
	ID          string `json:"id"`
	Kind        string `json:"kind"`
	Circuit     string `json:"circuit"`
	Fingerprint string `json:"fingerprint"`
	// Order is the canonical label of the fault order that was used.
	Order string `json:"order"`
	// Faults is the collapsed fault universe size; Vectors is |U|, the
	// ADI vector set size.
	Faults  int `json:"faults"`
	Vectors int `json:"vectors"`
	// Tests is the generated test set as bit strings ("0110"), one
	// character per primary input, in generation order.
	Tests []string `json:"tests"`
	// TargetOf[i] is the fault index test i was generated for.
	TargetOf []int `json:"target_of"`
	// Curve[i] is the number of faults detected by the first i+1
	// tests.
	Curve []int `json:"curve"`
	// Redundant and Aborted list fault indices classified as
	// undetectable / abandoned by the ATPG.
	Redundant []int `json:"redundant,omitempty"`
	Aborted   []int `json:"aborted,omitempty"`
	// AtpgCalls counts PODEM invocations; Backtracks sums their
	// backtrack counts.
	AtpgCalls  int `json:"atpg_calls"`
	Backtracks int `json:"backtracks"`
	// Detected, Coverage and AVE summarize the test set: faults
	// detected, fraction of the universe, and the paper's steepness
	// metric (lower is steeper).
	Detected int     `json:"detected"`
	Coverage float64 `json:"coverage"`
	AVE      float64 `json:"ave"`
	// Timing is the job's wall-clock record, attached by the engine at
	// the terminal transition.
	Timing *Timing `json:"timing,omitempty"`
	// TraceID is the job's distributed-trace id, identical to the one
	// on the status. Additive to the v1 wire.
	TraceID string `json:"trace_id,omitempty"`
}
