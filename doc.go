// Package adifo reproduces Pomeranz & Reddy, "The Accidental Detection
// Index as a Fault Ordering Heuristic for Full-Scan Circuits" (DATE
// 2005), as a complete Go library, and exposes the whole pipeline —
// no-drop fault simulation, the accidental detection index, the six
// fault orders, and ordered test generation — as a stable public
// facade over the internal packages.
//
// # The pipeline
//
// The typical flow, each step one exported call:
//
//	c, err := adifo.LoadCircuit("c17")            // embedded, suite, or .bench path
//	faults := adifo.Faults(c)                     // collapsed stuck-at universe
//	u := adifo.ExhaustivePatterns(c.NumInputs())  // or RandomPatterns + SizePatterns
//	ix, err := adifo.ComputeADI(ctx, faults, u)   // the paper's ADI
//	order := ix.Order(adifo.Dynm)                 // one of the six orders
//	res, err := adifo.GenerateTests(ctx, faults, order,
//		adifo.WithFillSeed(adifo.DefaultFillSeed))
//
// Batch fault grading with explicit control over the dropping policy,
// shard workers and per-block progress goes through Simulate:
//
//	sim, err := adifo.Simulate(ctx, faults, u,
//		adifo.WithMode(adifo.Drop),
//		adifo.WithWorkers(8),
//		adifo.WithProgress(func(p adifo.SimProgress) { ... }))
//
// Every long-running entry point takes a context.Context and stops
// within one 64-pattern block (simulation) or one ATPG target (test
// generation) of a cancellation. Simulate and GenerateTests return the
// partial result accumulated so far alongside the context's error;
// derived helpers (ComputeADI, SizePatterns) return a nil result on
// cancellation, since a partial index or sizing is not meaningful.
//
// # The grading service
//
// Grader abstracts the concurrent fault-grading engine behind one
// interface with three implementations: NewLocalGrader runs jobs
// in-process (and can serve them over HTTP via its Handler),
// NewRemoteGrader talks to a running adifod server, and
// NewClusterGrader fans each job out across several adifod servers as
// deterministic fault shards whose merged result is bit-identical to
// a single-node run. All speak the same job API — Submit, Status,
// Result, Cancel, Stream — over the same wire types, so a program can
// switch between embedded, remote and cluster grading by swapping a
// constructor.
//
// The implementation lives under internal/ and is not importable;
// everything an external consumer needs is exported here. See
// README.md for the architecture overview, cmd/ for the command-line
// tools, and examples/ for runnable walk-throughs built exclusively on
// this public API. The top-level bench_test.go regenerates the paper's
// tables and figure via `go test -bench`.
package adifo
