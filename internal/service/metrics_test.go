package service

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"regexp"
	"runtime/pprof"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/eda-go/adifo/internal/obs"
)

// runOneOfEachKind drives one job of every kind to done, so every
// pre-registered series has been exercised at least once.
func runOneOfEachKind(t *testing.T, s *Service) {
	t.Helper()
	specs := []JobSpec{
		{Circuit: "c17", Mode: "nodrop", Patterns: PatternSpec{Random: &RandomSpec{N: 128, Seed: 1}}},
		{Kind: KindAtpg, Circuit: "c17", Patterns: PatternSpec{Random: &RandomSpec{N: 96, Seed: 2}}, Order: &OrderSpec{Kind: "dynm"}},
		{Kind: KindADIOrder, Circuit: "c17", Patterns: PatternSpec{Random: &RandomSpec{N: 96, Seed: 3}}, Order: &OrderSpec{Kind: "orig"}},
	}
	for _, spec := range specs {
		id, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if st := waitTerminal(t, s, id); st.State != StateDone {
			t.Fatalf("%s job ended %s: %s", st.Kind, st.State, st.Error)
		}
	}
}

// scrapeText GETs /metrics through the real HTTP mux and returns the
// exposition body.
func scrapeText(t *testing.T, s *Service) string {
	t.Helper()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type %q is not the text exposition format", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

var (
	goversionRe = regexp.MustCompile(`goversion="[^"]*"`)
	versionRe   = regexp.MustCompile(`version="[^"]*"`)
)

// normalizeExposition keeps every structural byte of the exposition —
// family order, HELP and TYPE lines, series names, label sets — and
// replaces only what legitimately varies between runs: sample values,
// and the build_info version labels.
func normalizeExposition(text string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
			out = append(out, line)
		default:
			i := strings.LastIndexByte(line, ' ')
			series := goversionRe.ReplaceAllString(line[:i], `goversion="GO"`)
			series = versionRe.ReplaceAllString(series, `version="V"`)
			out = append(out, series+" V")
		}
	}
	return strings.Join(out, "\n")
}

// TestMetricsExpositionGolden pins the /metrics catalog: after one job
// of each kind, the scrape must expose exactly the golden set of
// families and series (names, types, help, labels, bucket boundaries),
// in the same order. Values are normalized away — the catalog is the
// contract, the numbers are the payload. Regenerate with -update.
func TestMetricsExpositionGolden(t *testing.T) {
	s := New(Config{Logger: obs.Nop(), SimWorkers: 2})
	defer s.Close()
	runOneOfEachKind(t, s)
	got := normalizeExposition(scrapeText(t, s))
	checkGolden(t, "metrics_v1.txt", []byte(got))
}

// metricValue sums the values of all sample lines whose series name
// (with labels) starts with prefix.
func metricValue(t *testing.T, text, prefix string) float64 {
	t.Helper()
	sum, found := 0.0, false
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") || !strings.HasPrefix(line, prefix) {
			continue
		}
		rest := line[len(prefix):]
		// Exact series only: the next byte must terminate the name.
		if rest[0] != ' ' && rest[0] != '{' {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", line, err)
		}
		sum += v
		found = true
	}
	if !found {
		t.Fatalf("no series matching %q in exposition", prefix)
	}
	return sum
}

// TestMetricsCountJobs: the job counters and occupancy gauges track a
// known workload exactly.
func TestMetricsCountJobs(t *testing.T) {
	s := New(Config{Logger: obs.Nop(), SimWorkers: 2})
	defer s.Close()
	runOneOfEachKind(t, s)

	// A failed job (bad circuit, fails at run) and a cancelled one.
	failID, err := s.Submit(JobSpec{Circuit: "no-such-circuit", Mode: "nodrop",
		Patterns: PatternSpec{Random: &RandomSpec{N: 64, Seed: 4}}})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, failID)
	cancelID, err := s.Submit(slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, cancelID, StateRunning)
	if _, err := s.Cancel(cancelID); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, cancelID)

	text := scrapeText(t, s)
	for series, want := range map[string]float64{
		`adifo_jobs_submitted_total{kind="grade"}`:          3, // incl. failed + cancelled
		`adifo_jobs_submitted_total{kind="atpg"}`:           1,
		`adifo_jobs_submitted_total{kind="adi_order"}`:      1,
		`adifo_jobs_total{kind="grade",status="done"}`:      1,
		`adifo_jobs_total{kind="grade",status="failed"}`:    1,
		`adifo_jobs_total{kind="grade",status="cancelled"}`: 1,
		`adifo_jobs_total{kind="atpg",status="done"}`:       1,
		`adifo_jobs_total{kind="adi_order",status="done"}`:  1,
		`adifo_jobs_queued`:                                 0,
		`adifo_jobs_running`:                                0,
		`adifo_queue_wait_seconds_count{kind="grade"}`:      3,
		`adifo_job_duration_seconds_count{kind="grade"}`:    1, // done jobs only
		`adifo_build_info`:                                  1,
		`adifo_draining`:                                    0,
	} {
		if got := metricValue(t, text, series); got != want {
			t.Errorf("%s = %v, want %v", series, got, want)
		}
	}
	if got := metricValue(t, text, "adifo_sim_blocks_total"); got < 1 {
		t.Errorf("adifo_sim_blocks_total = %v, want >= 1", got)
	}
	if got := metricValue(t, text, "adifo_uptime_seconds"); got <= 0 {
		t.Errorf("adifo_uptime_seconds = %v, want > 0", got)
	}
}

// TestTimingAllKinds: every kind's status and result carry the timing
// record, with the phases that kind actually runs.
func TestTimingAllKinds(t *testing.T) {
	s := New(Config{Logger: obs.Nop(), SimWorkers: 2})
	defer s.Close()

	cases := []struct {
		spec   JobSpec
		phases []string
	}{
		{
			JobSpec{Circuit: "c17", Mode: "nodrop", Patterns: PatternSpec{Random: &RandomSpec{N: 128, Seed: 1}}},
			[]string{PhaseRegistryBuild, PhaseSimulate},
		},
		{
			JobSpec{Kind: KindAtpg, Circuit: "c17", Patterns: PatternSpec{Random: &RandomSpec{N: 96, Seed: 2}}, Order: &OrderSpec{Kind: "dynm"}},
			[]string{PhaseRegistryBuild, PhaseSimulate, PhaseOrder, PhaseGenerate},
		},
		{
			JobSpec{Kind: KindADIOrder, Circuit: "c17", Patterns: PatternSpec{Random: &RandomSpec{N: 96, Seed: 3}}, Order: &OrderSpec{Kind: "orig"}},
			[]string{PhaseRegistryBuild, PhaseSimulate, PhaseOrder},
		},
	}
	for _, c := range cases {
		kind := NormalizeKind(c.spec.Kind)
		id, err := s.Submit(c.spec)
		if err != nil {
			t.Fatal(err)
		}
		st := waitTerminal(t, s, id)
		if st.State != StateDone {
			t.Fatalf("%s job ended %s: %s", kind, st.State, st.Error)
		}
		if st.Timing == nil {
			t.Fatalf("%s status has no timing", kind)
		}
		tm := st.Timing
		if tm.SubmittedAt.IsZero() || tm.StartedAt.IsZero() || tm.FinishedAt.IsZero() {
			t.Fatalf("%s timing has zero timestamps: %+v", kind, tm)
		}
		if tm.StartedAt.Before(tm.SubmittedAt) || tm.FinishedAt.Before(tm.StartedAt) {
			t.Fatalf("%s timestamps out of order: %+v", kind, tm)
		}
		if tm.QueueWaitSeconds < 0 || tm.RunSeconds <= 0 {
			t.Fatalf("%s durations implausible: queue %v run %v", kind, tm.QueueWaitSeconds, tm.RunSeconds)
		}
		for _, ph := range c.phases {
			if _, ok := tm.Phases[ph]; !ok {
				t.Errorf("%s timing lacks phase %q: %v", kind, ph, tm.Phases)
			}
		}
		if len(tm.Phases) != len(c.phases) {
			t.Errorf("%s recorded phases %v, want exactly %v", kind, tm.Phases, c.phases)
		}

		// The result must carry the same record.
		v, err := s.ResultAny(id)
		if err != nil {
			t.Fatal(err)
		}
		var rt *Timing
		switch r := v.(type) {
		case *JobResult:
			rt = r.Timing
		case *AtpgResult:
			rt = r.Timing
		case *OrderResult:
			rt = r.Timing
		default:
			t.Fatalf("%s result is %T", kind, v)
		}
		if rt == nil || !rt.FinishedAt.Equal(tm.FinishedAt) {
			t.Fatalf("%s result timing %+v does not match status %+v", kind, rt, tm)
		}
	}
}

// TestTimingDeterministicClock pins the arithmetic with a stepped fake
// clock at the unit level: phase stopwatches accumulate, finalize
// computes the run duration and attaches the snapshot to the result.
func TestTimingDeterministicClock(t *testing.T) {
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	tick := 0
	clock := func() time.Time { // every call advances one second
		tick++
		return base.Add(time.Duration(tick-1) * time.Second)
	}
	j := &job{id: "t1", now: clock}
	j.timing.SubmittedAt = clock() // t=0
	j.timing.StartedAt = clock()   // t=1
	j.timing.QueueWaitSeconds = j.timing.StartedAt.Sub(j.timing.SubmittedAt).Seconds()

	stop := j.phase(PhaseSimulate) // starts t=2
	stop()                         // stops t=3: 1s
	stop = j.phase(PhaseOrder)     // t=4
	stop()                         // t=5: 1s
	stop = j.phase(PhaseOrder)     // t=6
	stop()                         // t=7: accumulates to 2s

	res := &JobResult{ID: "t1"}
	j.result = res
	j.mu.Lock()
	j.finalizeLocked() // t=8
	j.mu.Unlock()

	tm := res.Timing
	if tm == nil {
		t.Fatal("finalize did not attach timing to the result")
	}
	if tm.QueueWaitSeconds != 1 {
		t.Errorf("queue wait %v, want 1s", tm.QueueWaitSeconds)
	}
	if tm.RunSeconds != 7 { // t=8 - t=1
		t.Errorf("run %v, want 7s", tm.RunSeconds)
	}
	if tm.Phases[PhaseSimulate] != 1 || tm.Phases[PhaseOrder] != 2 {
		t.Errorf("phases %v, want simulate 1s, order 2s (accumulated)", tm.Phases)
	}
	// The snapshot is independent of the job's live record.
	j.timing.AddPhase(PhaseSimulate, time.Second)
	if tm.Phases[PhaseSimulate] != 1 {
		t.Error("result timing aliases the job's live phase map")
	}
}

// TestPprofLabelsOnRunningJob: the engine runs every job under pprof
// labels, so any profile taken mid-run — CPU, goroutine — attributes
// its samples to (kind, job). The goroutine profile makes that
// assertable without sampling flakiness.
func TestPprofLabelsOnRunningJob(t *testing.T) {
	s := New(Config{Logger: obs.Nop(), SimWorkers: 2})
	defer s.Close()
	id, err := s.Submit(slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, id, StateRunning)
	defer s.Cancel(id)

	deadline := time.Now().Add(5 * time.Second)
	for {
		var buf bytes.Buffer
		if err := pprof.Lookup("goroutine").WriteTo(&buf, 1); err != nil {
			t.Fatal(err)
		}
		prof := buf.String()
		if strings.Contains(prof, `"kind":"grade"`) && strings.Contains(prof, `"job":"`+id+`"`) {
			return
		}
		if st, _ := s.Status(id); st.State != StateRunning {
			t.Fatalf("job left running state (%s) before labels were observed", st.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("no goroutine labeled kind=grade job=%s found in profile:\n%s", id, prof)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
