// Steep coverage curves: the paper's second application (Section 1,
// application 2). A test set whose early vectors detect most faults
// lets you truncate the set — to fit tester memory or cut test time —
// while giving up almost no coverage, and detects defective chips
// sooner.
//
// This example generates test sets for one circuit under three
// orders, plots the coverage curves (the paper's Figure 1), and shows
// what happens when the last 25% of each test set is discarded. Built
// entirely on the public adifo package.
//
// Run with:
//
//	go run ./examples/steepcurve
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strings"
	"text/tabwriter"

	"github.com/eda-go/adifo"
)

func main() {
	ctx := context.Background()

	c, err := adifo.LoadCircuit("irs344")
	if err != nil {
		log.Fatal(err)
	}
	faults := adifo.Faults(c)
	candidates := adifo.RandomPatterns(c.NumInputs(), adifo.DefaultUBudget, adifo.DefaultUSeed)
	u, err := adifo.SizePatterns(ctx, faults, candidates, adifo.DefaultTargetCoverage)
	if err != nil {
		log.Fatal(err)
	}
	index, err := adifo.ComputeADI(ctx, faults, u)
	if err != nil {
		log.Fatal(err)
	}

	kinds := []adifo.OrderKind{adifo.Orig, adifo.Dynm, adifo.Dynm0}
	markers := map[adifo.OrderKind]byte{adifo.Orig: 'o', adifo.Dynm: 'd', adifo.Dynm0: 'z'}
	results := map[adifo.OrderKind]*adifo.TestResult{}
	for _, kind := range kinds {
		res, err := adifo.GenerateTests(ctx, faults, index.Order(kind),
			adifo.WithFillSeed(adifo.DefaultFillSeed), adifo.WithValidate(true))
		if err != nil {
			log.Fatal(err)
		}
		results[kind] = res
	}

	fmt.Printf("Fault coverage curves for %s\n", c.Name)
	var series []curve
	for _, kind := range kinds {
		xs, ys := adifo.CoveragePoints(results[kind].Curve)
		series = append(series, curve{marker: markers[kind], label: kind.String(), xs: xs, ys: ys})
	}
	fmt.Println(plot(64, 20, series))

	fmt.Println("Truncation: coverage after dropping the last 25% of tests")
	tw := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "order\ttests\tAVE\tfull cov%\t75% cov%\t")
	for _, kind := range kinds {
		res := results[kind]
		keep := len(res.Curve) * 3 / 4
		if keep == 0 {
			keep = 1
		}
		total := float64(faults.Len())
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.2f\t%.2f\t\n",
			kind, len(res.Curve), res.AVE(),
			100*float64(res.Curve[len(res.Curve)-1])/total,
			100*float64(res.Curve[keep-1])/total)
	}
	tw.Flush()
	fmt.Println("A lower AVE means a faulty chip is detected after fewer tests;")
	fmt.Println("the dynm order loses the least coverage when the tail is dropped.")
	fmt.Println()

	// Comparison with static test-set reordering (the method of the
	// paper's reference [7]): greedily reorder each generated test
	// set so the most-detecting vectors come first. The paper's
	// argument is that ADI-ordered generation already yields a steep
	// curve without this extra pass — and that reordering an
	// ADI-generated set is steeper still than reordering an
	// arbitrarily generated one.
	fmt.Println("Static reordering (Lin et al., the paper's [7]) on top of each order")
	tw2 := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw2, "order\tAVE as generated\tAVE after reorder\t")
	for _, kind := range kinds {
		res := results[kind]
		ps := adifo.NewPatternSet(c.NumInputs())
		for _, v := range res.Tests {
			ps.Append(v)
		}
		rr := adifo.ReorderGreedy(faults, ps)
		fmt.Fprintf(tw2, "%s\t%.2f\t%.2f\t\n", kind, res.AVE(), adifo.AVE(rr.Curve))
	}
	tw2.Flush()
}

// curve is one plotted series of (x%, y%) points.
type curve struct {
	marker byte
	label  string
	xs, ys []float64
}

// plot renders the series on a w×h character grid, both axes running
// 0-100% — a minimal stand-in for the paper's Figure 1.
func plot(w, h int, series []curve) string {
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for _, s := range series {
		for i := range s.xs {
			col := int(s.xs[i] / 100 * float64(w-1))
			row := h - 1 - int(s.ys[i]/100*float64(h-1))
			if col >= 0 && col < w && row >= 0 && row < h {
				grid[row][col] = s.marker
			}
		}
	}
	var b strings.Builder
	b.WriteString("coverage%\n")
	for _, row := range grid {
		b.WriteString("  |")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("  +" + strings.Repeat("-", w) + "> tests%\n")
	for _, s := range series {
		fmt.Fprintf(&b, "  %c = %s\n", s.marker, s.label)
	}
	return b.String()
}
