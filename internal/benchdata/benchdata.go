// Package benchdata embeds a handful of small benchmark netlists in
// .bench format. They serve three purposes: unit-test fixtures with
// known structure, demonstration circuits for the examples, and the
// worked Table-1 example of the paper (a lion-FSM-style 4-input
// circuit; the original MCNC lion netlist is not redistributable, so
// a hand-written next-state network of the same shape stands in —
// see DESIGN.md).
package benchdata

import (
	"fmt"
	"sort"

	"github.com/eda-go/adifo/internal/circuit"
)

// C17 is the classic 5-input, 6-NAND ISCAS-85 toy circuit (its
// structure is public domain and reproduced in every testing
// textbook).
const C17 = `# c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`

// S27 is the smallest ISCAS-89 sequential benchmark (4 inputs, 3
// flip-flops, 10 gates); parsing it exercises the full-scan
// conversion, after which it has 7 inputs and 4 outputs.
const S27 = `# s27
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
`

// Lion is a 2-input, 2-state-bit Moore-style FSM combinational core
// in the spirit of the MCNC lion benchmark used for the paper's
// Table 1: 4 inputs after scan conversion, 16 possible input vectors,
// and a collapsed fault count in the low forties. The next-state and
// output logic is hand-written; the worked example only needs a small
// 4-input circuit whose every fault is detectable by the exhaustive
// vector set.
const Lion = `# lion-style FSM combinational core
INPUT(x1)
INPUT(x0)
OUTPUT(out)
s1 = DFF(n1)
s0 = DFF(n0)
a = XOR(x1, s0)
b = NAND(x0, s0)
c = NOR(x1, s0)
d = AND(s1, x0)
n1 = NOR(a, d)
n0 = NAND(b, a)
e = OR(c, d)
out = AND(e, b)
`

// all maps names to sources.
var all = map[string]string{
	"c17":  C17,
	"s27":  S27,
	"lion": Lion,
}

// Names returns the embedded circuit names, sorted.
func Names() []string {
	names := make([]string, 0, len(all))
	for n := range all {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Source returns the raw .bench text of the named circuit.
func Source(name string) (string, error) {
	src, ok := all[name]
	if !ok {
		return "", fmt.Errorf("benchdata: unknown circuit %q (have %v)", name, Names())
	}
	return src, nil
}

// Load parses the named embedded circuit (with full-scan conversion
// for the sequential ones).
func Load(name string) (*circuit.Circuit, error) {
	src, err := Source(name)
	if err != nil {
		return nil, err
	}
	return circuit.ParseBenchString(name, src)
}

// MustLoad is Load for tests and examples where a parse failure is a
// programming error.
func MustLoad(name string) *circuit.Circuit {
	c, err := Load(name)
	if err != nil {
		panic(err)
	}
	return c
}
