package adifo

import (
	"context"
	"fmt"
	"net/http"

	"github.com/eda-go/adifo/internal/service"
	"github.com/eda-go/adifo/internal/service/client"
)

// Job kinds of the v1 wire contract. A JobSpec without a kind is a
// grade job, so specs written against the original grade-only wire
// keep their meaning.
const (
	// KindGrade fault-grades a vector set (the Grader workload).
	KindGrade = service.KindGrade
	// KindAtpg runs ADI-ordered test generation remotely (the
	// RemoteGenerator workload).
	KindAtpg = service.KindAtpg
	// KindADIOrder computes an ADI fault order remotely (the
	// RemoteOrderer workload).
	KindADIOrder = service.KindADIOrder
)

// JobKindNames lists every job kind the engine knows, in wire-name
// form.
func JobKindNames() []string { return service.KindNames() }

// Wire types of the multi-kind job API, shared verbatim with the
// engine and the adifod server.
type (
	// OrderSpec selects one of the paper's six fault orders for atpg
	// and adi_order jobs (kind: orig, incr0, decr, 0decr, dynm,
	// 0dynm). Required on those kinds — like grade's mode, the wire
	// has no silent default order.
	OrderSpec = service.OrderSpec
	// GenSpec tunes an atpg job's test generator (fill seed,
	// backtrack limit); the zero value is the default.
	GenSpec = service.GenSpec
	// AtpgResult is the outcome of an atpg job: the generated test
	// set as bit strings, per-test targets, the coverage curve and
	// the generator's effort counters.
	AtpgResult = service.AtpgResult
	// OrderResult is the outcome of an adi_order job: the fault order
	// plus the ADI data it was derived from.
	OrderResult = service.OrderResult
)

// ErrUnsupportedKind is returned by Submit for a job kind the engine
// does not know or a server was configured not to serve; on the wire
// it is the typed "unsupported_kind" envelope code.
var ErrUnsupportedKind = service.ErrUnsupportedKind

// checkKind validates that a spec submitted through a kind-typed
// front end carries that kind (or none, which is filled in), so a
// spec built for one workload cannot silently run as another.
func checkKind(spec *JobSpec, want string) error {
	switch spec.Kind {
	case "":
		spec.Kind = want
	case want:
	default:
		return fmt.Errorf("adifo: spec has kind %q, this submitter runs %q jobs", spec.Kind, want)
	}
	return nil
}

// RemoteGenerator runs ATPG jobs on a running adifod server over the
// v1 HTTP+JSON API: the server computes the accidental detection
// index over the spec's vector set U, orders the fault universe by
// the spec's order kind, and generates a test set along that order —
// bit-identical to an in-process ComputeADI + GenerateTests run with
// equal inputs. Stream delivers per-block progress during the ADI
// simulation and per-target progress during generation. Non-2xx
// responses surface as *APIError.
type RemoteGenerator struct {
	cl *client.Client
}

// NewRemoteGenerator returns a generator for the adifod server at
// base (e.g. "http://localhost:8417"). httpClient may be nil for
// http.DefaultClient.
func NewRemoteGenerator(base string, httpClient *http.Client) *RemoteGenerator {
	return &RemoteGenerator{cl: client.New(base, httpClient)}
}

// Submit posts an atpg job and returns its id. An empty spec kind is
// filled in; any other kind is rejected.
func (g *RemoteGenerator) Submit(ctx context.Context, spec JobSpec) (string, error) {
	if err := checkKind(&spec, KindAtpg); err != nil {
		return "", err
	}
	return g.cl.Submit(ctx, spec)
}

// Status polls one job.
func (g *RemoteGenerator) Status(ctx context.Context, id string) (JobStatus, error) {
	return g.cl.Status(ctx, id)
}

// Result fetches the outcome of a finished atpg job.
func (g *RemoteGenerator) Result(ctx context.Context, id string) (*AtpgResult, error) {
	return g.cl.ResultAtpg(ctx, id)
}

// Cancel aborts a job: queued immediately, running at its next
// barrier (a 64-pattern simulation block, or one ATPG target).
func (g *RemoteGenerator) Cancel(ctx context.Context, id string) (JobStatus, error) {
	return g.cl.Cancel(ctx, id)
}

// Stream delivers progress events until the job reaches a terminal
// state and returns the final status.
func (g *RemoteGenerator) Stream(ctx context.Context, id string, fn func(ProgressEvent)) (JobStatus, error) {
	return g.cl.Stream(ctx, id, fn)
}

// Stats returns the server's counters.
func (g *RemoteGenerator) Stats(ctx context.Context) (GraderStats, error) {
	return g.cl.Stats(ctx)
}

// Close releases the generator (a remote generator holds no
// resources).
func (g *RemoteGenerator) Close() error { return nil }

// RemoteOrderer computes ADI fault orders on a running adifod server:
// the server simulates the spec's vector set U without dropping,
// derives the accidental detection indices and returns the requested
// order with the underlying ADI data — bit-identical to an in-process
// ComputeADI + Index.Order run with equal inputs. Non-2xx responses
// surface as *APIError.
type RemoteOrderer struct {
	cl *client.Client
}

// NewRemoteOrderer returns an orderer for the adifod server at base.
// httpClient may be nil for http.DefaultClient.
func NewRemoteOrderer(base string, httpClient *http.Client) *RemoteOrderer {
	return &RemoteOrderer{cl: client.New(base, httpClient)}
}

// Submit posts an adi_order job and returns its id. An empty spec
// kind is filled in; any other kind is rejected.
func (o *RemoteOrderer) Submit(ctx context.Context, spec JobSpec) (string, error) {
	if err := checkKind(&spec, KindADIOrder); err != nil {
		return "", err
	}
	return o.cl.Submit(ctx, spec)
}

// Status polls one job.
func (o *RemoteOrderer) Status(ctx context.Context, id string) (JobStatus, error) {
	return o.cl.Status(ctx, id)
}

// Result fetches the outcome of a finished adi_order job.
func (o *RemoteOrderer) Result(ctx context.Context, id string) (*OrderResult, error) {
	return o.cl.ResultOrder(ctx, id)
}

// Cancel aborts a job: queued immediately, running at its next
// 64-pattern block barrier.
func (o *RemoteOrderer) Cancel(ctx context.Context, id string) (JobStatus, error) {
	return o.cl.Cancel(ctx, id)
}

// Stream delivers per-block progress events until the job reaches a
// terminal state and returns the final status.
func (o *RemoteOrderer) Stream(ctx context.Context, id string, fn func(ProgressEvent)) (JobStatus, error) {
	return o.cl.Stream(ctx, id, fn)
}

// Stats returns the server's counters.
func (o *RemoteOrderer) Stats(ctx context.Context) (GraderStats, error) {
	return o.cl.Stats(ctx)
}

// Close releases the orderer (a remote orderer holds no resources).
func (o *RemoteOrderer) Close() error { return nil }
