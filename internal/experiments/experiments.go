// Package experiments reproduces every table and figure of the
// paper's evaluation (Section 4). Each experiment has one entry point
// returning both structured rows (asserted on by tests and benches)
// and formatted text in the paper's layout (quoted by EXPERIMENTS.md
// and printed by cmd/repro).
//
// The mapping to the paper is:
//
//	Table1  — ndet(u) for all 16 vectors of the lion worked example
//	Table4  — vector-set size and ADI min/max/ratio per circuit
//	Table5  — test-set sizes for orig/dynm/0dynm/incr0
//	Table6  — test-generation run times relative to orig
//	Table7  — AVE steepness relative to orig
//	Figure1 — fault coverage curves for irs420 under three orders
//
// Tables 5, 6 and 7 are different projections of the same generation
// runs; RunSuite executes the runs once and the per-table formatters
// slice them.
package experiments

import (
	"fmt"

	"github.com/eda-go/adifo/internal/adi"
	"github.com/eda-go/adifo/internal/benchdata"
	"github.com/eda-go/adifo/internal/circuit"
	"github.com/eda-go/adifo/internal/fault"
	"github.com/eda-go/adifo/internal/fsim"
	"github.com/eda-go/adifo/internal/gen"
	"github.com/eda-go/adifo/internal/irr"
	"github.com/eda-go/adifo/internal/logic"
	"github.com/eda-go/adifo/internal/prng"
	"github.com/eda-go/adifo/internal/report"
	"github.com/eda-go/adifo/internal/tgen"
)

// Fixed seeds: the experiments are a pure function of these.
const (
	// USeed draws the candidate random vector set U.
	USeed = 0xADF0
	// FillSeed drives the ATPG's random fill of unspecified inputs.
	FillSeed = 0xF111
	// MaxRandomVectors is the initial size of U before truncation
	// ("We initially include in U 10,000 random input vectors").
	MaxRandomVectors = 10000
	// TargetCoverage is the truncation threshold for U ("until
	// approximately 90% of the circuit faults are detected").
	TargetCoverage = 0.90
)

// Setup is one prepared suite circuit: the irredundant netlist, its
// collapsed fault list, the sized vector set U and the accidental
// detection indices.
type Setup struct {
	Suite  gen.SuiteCircuit
	C      *circuit.Circuit
	Faults *fault.List
	U      *logic.PatternSet
	Index  *adi.Index
}

// Prepare builds the suite circuit, applies the irredundancy pass,
// sizes U per the paper's recipe and computes the ADI.
func Prepare(sc gen.SuiteCircuit) (*Setup, error) {
	raw := gen.Generate(sc.Config())
	c, _, err := irr.Make(raw, irr.Options{})
	if err != nil {
		return nil, fmt.Errorf("prepare %s: %w", sc.Name, err)
	}
	fl := fault.CollapsedUniverse(c)

	// Size U: simulate up to MaxRandomVectors with fault dropping,
	// stopping once TargetCoverage of the faults are detected; keep
	// only the vectors simulated up to that point.
	candidates := logic.RandomPatterns(c.NumInputs(), MaxRandomVectors, prng.New(USeed))
	sizing := fsim.Run(fl, candidates, fsim.Options{Mode: fsim.Drop, StopAtCoverage: TargetCoverage})
	u := candidates.Slice(sizing.VectorsUsed)

	return &Setup{
		Suite:  sc,
		C:      c,
		Faults: fl,
		U:      u,
		Index:  adi.Compute(fl, u),
	}, nil
}

// Run is the per-order generation result of one circuit.
type Run struct {
	Kind   adi.OrderKind
	Result *tgen.Result
}

// CircuitRuns bundles a prepared circuit with its generation runs.
type CircuitRuns struct {
	Setup *Setup
	Runs  map[adi.OrderKind]*tgen.Result
}

// table5Orders are the orders the paper reports in Tables 5-7.
func table5Orders(sc gen.SuiteCircuit) []adi.OrderKind {
	kinds := []adi.OrderKind{adi.Orig, adi.Dynm, adi.Dynm0}
	if !sc.SkipIncr0 {
		kinds = append(kinds, adi.Incr0)
	}
	return kinds
}

// RunCircuit executes test generation for the paper's order set on
// one prepared circuit.
func RunCircuit(setup *Setup) *CircuitRuns {
	cr := &CircuitRuns{Setup: setup, Runs: map[adi.OrderKind]*tgen.Result{}}
	for _, kind := range table5Orders(setup.Suite) {
		order := setup.Index.Order(kind)
		cr.Runs[kind] = tgen.Generate(setup.Faults, order, tgen.Options{
			FillSeed: FillSeed,
			Validate: true,
		})
	}
	return cr
}

// RunSuite prepares and runs every circuit of the given suite.
func RunSuite(suite []gen.SuiteCircuit) ([]*CircuitRuns, error) {
	var out []*CircuitRuns
	for _, sc := range suite {
		setup, err := Prepare(sc)
		if err != nil {
			return nil, err
		}
		out = append(out, RunCircuit(setup))
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------------

// Table1Row is one (vector, ndet) pair of the worked example.
type Table1Row struct {
	U    uint64 // decimal label of the input vector
	Ndet int
}

// Table1 computes ndet(u) for every input vector of the embedded
// lion-style circuit under the exhaustive vector set, exactly the
// quantity tabulated in the paper's Table 1, plus the resulting ADI
// spread for context.
func Table1() ([]Table1Row, string, error) {
	c, err := benchdata.Load("lion")
	if err != nil {
		return nil, "", err
	}
	fl := fault.CollapsedUniverse(c)
	u := logic.ExhaustivePatterns(c.NumInputs())
	ix := adi.Compute(fl, u)

	rows := make([]Table1Row, u.Len())
	for i := range rows {
		rows[i] = Table1Row{U: u.Get(i).Decimal(), Ndet: ix.Ndet[i]}
	}

	tb := report.NewTable(
		fmt.Sprintf("Table 1: Input vectors of lion (%d collapsed faults)", fl.Len()),
		"u", "ndet(u)")
	for _, r := range rows {
		tb.AddRow(r.U, r.Ndet)
	}
	mn, mx := ix.MinMax()
	text := tb.String() + fmt.Sprintf("ADImin=%d ADImax=%d\n", mn, mx)
	return rows, text, nil
}

// ---------------------------------------------------------------------------
// Table 4
// ---------------------------------------------------------------------------

// Table4Row mirrors one row of the paper's Table 4.
type Table4Row struct {
	Circuit string
	Inputs  int
	Vectors int // |U| after truncation
	ADIMin  int
	ADIMax  int
	Ratio   float64
	Faults  int // collapsed fault count (extra context column)
}

// Table4 computes the ADI spread table over the given suite.
func Table4(suite []gen.SuiteCircuit) ([]Table4Row, string, error) {
	var rows []Table4Row
	for _, sc := range suite {
		setup, err := Prepare(sc)
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, table4Row(setup))
	}
	return rows, FormatTable4(rows), nil
}

func table4Row(setup *Setup) Table4Row {
	mn, mx := setup.Index.MinMax()
	return Table4Row{
		Circuit: setup.Suite.Name,
		Inputs:  setup.C.NumInputs(),
		Vectors: setup.U.Len(),
		ADIMin:  mn,
		ADIMax:  mx,
		Ratio:   setup.Index.Ratio(),
		Faults:  setup.Faults.Len(),
	}
}

// FormatTable4 renders rows in the paper's layout.
func FormatTable4(rows []Table4Row) string {
	tb := report.NewTable("Table 4: Accidental detection index",
		"circuit", "inp", "vec", "min", "max", "ratio", "faults")
	for _, r := range rows {
		tb.AddRow(r.Circuit, r.Inputs, r.Vectors, r.ADIMin, r.ADIMax, r.Ratio, r.Faults)
	}
	return tb.String()
}

// ---------------------------------------------------------------------------
// Tables 5, 6, 7 (shared runs)
// ---------------------------------------------------------------------------

// Table5Row mirrors one row of the paper's Table 5 (test-set sizes).
type Table5Row struct {
	Circuit string
	Orig    int
	Dynm    int
	Dynm0   int
	Incr0   int // -1 when omitted, as in the paper
}

// Table5 extracts test-set sizes from the runs.
func Table5(runs []*CircuitRuns) ([]Table5Row, string) {
	var rows []Table5Row
	for _, cr := range runs {
		row := Table5Row{
			Circuit: cr.Setup.Suite.Name,
			Orig:    len(cr.Runs[adi.Orig].Tests),
			Dynm:    len(cr.Runs[adi.Dynm].Tests),
			Dynm0:   len(cr.Runs[adi.Dynm0].Tests),
			Incr0:   -1,
		}
		if r, ok := cr.Runs[adi.Incr0]; ok {
			row.Incr0 = len(r.Tests)
		}
		rows = append(rows, row)
	}
	return rows, FormatTable5(rows)
}

// FormatTable5 renders rows plus the average line of the paper.
func FormatTable5(rows []Table5Row) string {
	tb := report.NewTable("Table 5: Test generation (test-set sizes)",
		"circuit", "orig", "dynm", "0dynm", "incr0")
	sumO, sumD, sumZ, n := 0, 0, 0, 0
	for _, r := range rows {
		incr0 := "-"
		if r.Incr0 >= 0 {
			incr0 = fmt.Sprint(r.Incr0)
		}
		tb.AddRowCells([]string{r.Circuit, fmt.Sprint(r.Orig), fmt.Sprint(r.Dynm), fmt.Sprint(r.Dynm0), incr0})
		sumO += r.Orig
		sumD += r.Dynm
		sumZ += r.Dynm0
		n++
	}
	if n > 0 {
		tb.AddRowCells([]string{"average",
			fmt.Sprintf("%.1f", float64(sumO)/float64(n)),
			fmt.Sprintf("%.1f", float64(sumD)/float64(n)),
			fmt.Sprintf("%.1f", float64(sumZ)/float64(n)),
			"-"})
	}
	return tb.String()
}

// Table6Row mirrors one row of the paper's Table 6 (relative run
// times).
type Table6Row struct {
	Circuit string
	Dynm    float64 // RT_dynm / RT_orig
	Dynm0   float64 // RT_0dynm / RT_orig
}

// Table6 extracts relative run times from the runs.
func Table6(runs []*CircuitRuns) ([]Table6Row, string) {
	var rows []Table6Row
	for _, cr := range runs {
		base := cr.Runs[adi.Orig].Elapsed.Seconds()
		if base <= 0 {
			base = 1e-9
		}
		rows = append(rows, Table6Row{
			Circuit: cr.Setup.Suite.Name,
			Dynm:    cr.Runs[adi.Dynm].Elapsed.Seconds() / base,
			Dynm0:   cr.Runs[adi.Dynm0].Elapsed.Seconds() / base,
		})
	}
	return rows, FormatTable6(rows)
}

// FormatTable6 renders rows plus the average line.
func FormatTable6(rows []Table6Row) string {
	tb := report.NewTable("Table 6: Relative run times (t.gen / t.gen orig)",
		"circuit", "orig", "dynm", "0dynm")
	var sd, sz float64
	for _, r := range rows {
		tb.AddRow(r.Circuit, 1.0, r.Dynm, r.Dynm0)
		sd += r.Dynm
		sz += r.Dynm0
	}
	if len(rows) > 0 {
		n := float64(len(rows))
		tb.AddRow("average", 1.0, sd/n, sz/n)
	}
	return tb.String()
}

// Table7Row mirrors one row of the paper's Table 7 (steepness).
type Table7Row struct {
	Circuit string
	Dynm    float64 // AVE_dynm / AVE_orig
	Dynm0   float64 // AVE_0dynm / AVE_orig
}

// Table7 extracts normalized AVE values from the runs.
func Table7(runs []*CircuitRuns) ([]Table7Row, string) {
	var rows []Table7Row
	for _, cr := range runs {
		base := cr.Runs[adi.Orig].AVE()
		if base <= 0 {
			base = 1e-9
		}
		rows = append(rows, Table7Row{
			Circuit: cr.Setup.Suite.Name,
			Dynm:    cr.Runs[adi.Dynm].AVE() / base,
			Dynm0:   cr.Runs[adi.Dynm0].AVE() / base,
		})
	}
	return rows, FormatTable7(rows)
}

// FormatTable7 renders rows plus the average line.
func FormatTable7(rows []Table7Row) string {
	tb := report.NewTable("Table 7: Steepness of fault coverage curves (AVE / AVE orig)",
		"circuit", "orig", "dynm", "0dynm")
	var sd, sz float64
	for _, r := range rows {
		tb.AddRow(r.Circuit, 1.0, r.Dynm, r.Dynm0)
		sd += r.Dynm
		sz += r.Dynm0
	}
	if len(rows) > 0 {
		n := float64(len(rows))
		tb.AddRow("average", 1.0, sd/n, sz/n)
	}
	return tb.String()
}

// ---------------------------------------------------------------------------
// Figure 1
// ---------------------------------------------------------------------------

// Figure1Circuit is the circuit plotted in the paper's Figure 1.
const Figure1Circuit = "irs420"

// Figure1 renders the fault coverage curves of the named circuit (by
// default Figure1Circuit) for the orig, dynm and 0dynm orders, using
// the paper's o/d/z markers. It returns the three curves and the
// ASCII plot.
func Figure1(name string) (map[adi.OrderKind][]int, string, error) {
	sc, ok := gen.SuiteByName(name)
	if !ok {
		return nil, "", fmt.Errorf("experiments: unknown suite circuit %q", name)
	}
	setup, err := Prepare(sc)
	if err != nil {
		return nil, "", err
	}
	cr := RunCircuit(setup)
	curves := map[adi.OrderKind][]int{
		adi.Orig:  cr.Runs[adi.Orig].Curve,
		adi.Dynm:  cr.Runs[adi.Dynm].Curve,
		adi.Dynm0: cr.Runs[adi.Dynm0].Curve,
	}
	return curves, FormatFigure1(name, curves), nil
}

// FormatFigure1 renders the three curves as an ASCII plot.
func FormatFigure1(name string, curves map[adi.OrderKind][]int) string {
	mk := func(kind adi.OrderKind, marker byte) report.Series {
		xs, ys := tgen.CoveragePoints(curves[kind])
		return report.Series{Marker: marker, Label: kind.String(), X: xs, Y: ys}
	}
	return report.Plot(
		fmt.Sprintf("Figure 1: Fault coverage curve for %s", name),
		64, 20,
		mk(adi.Orig, 'o'), mk(adi.Dynm, 'd'), mk(adi.Dynm0, 'z'))
}
