package service

import (
	"encoding/json"
	"errors"
	"net/http"
)

// Handler returns the HTTP+JSON API of the service, the surface
// cmd/adifod listens on and the client package talks to:
//
//	POST /v1/jobs             submit a JobSpec, returns {"id": ...}
//	GET  /v1/jobs             list job statuses
//	GET  /v1/jobs/{id}        poll one job's status
//	GET  /v1/jobs/{id}/result fetch a finished job's JobResult
//	GET  /v1/jobs/{id}/stream newline-delimited JSON ProgressEvents,
//	                          one per 64-pattern block, until the job
//	                          finishes (the last line is the final
//	                          JobStatus)
//	GET  /v1/stats            service and registry cache counters
//	GET  /healthz             liveness probe
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id, err := s.Submit(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Status(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	res, err := s.Result(id)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, res)
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrNotDone):
		writeError(w, http.StatusConflict, err)
	default:
		// The job itself failed.
		writeError(w, http.StatusUnprocessableEntity, err)
	}
}

// handleStream writes one JSON line per block barrier as the job runs
// and a final JobStatus line when it reaches a terminal state.
func (s *Service) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ch, cancel, ok := s.Subscribe(id)
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	flush()

	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-ch:
			if !open {
				if st, ok := s.Status(id); ok {
					enc.Encode(st)
				}
				flush()
				return
			}
			enc.Encode(ev)
			flush()
		}
	}
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
