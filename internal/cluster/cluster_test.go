package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/eda-go/adifo/internal/obs"
	"github.com/eda-go/adifo/internal/service"
	"github.com/eda-go/adifo/internal/service/client"
)

// quiet suppresses service/coordinator log chatter in tests.
var quiet = obs.Nop()

// scrapeRegistry renders reg as text exposition.
func scrapeRegistry(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	var buf strings.Builder
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// seriesValue sums the sample values of every series whose name (with
// labels) starts with prefix at a name boundary.
func seriesValue(t *testing.T, text, prefix string) float64 {
	t.Helper()
	sum, found := 0.0, false
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") || !strings.HasPrefix(line, prefix) {
			continue
		}
		if rest := line[len(prefix):]; rest[0] != ' ' && rest[0] != '{' {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", line, err)
		}
		sum += v
		found = true
	}
	if !found {
		t.Fatalf("no series matching %q in exposition", prefix)
	}
	return sum
}

// newBackend spins up one in-process adifod-equivalent: a service
// behind a real HTTP server.
func newBackend(t *testing.T) (*httptest.Server, *service.Service) {
	t.Helper()
	svc := service.New(service.Config{MaxConcurrentJobs: 4, Logger: quiet})
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return srv, svc
}

func newBackends(t *testing.T, n int) ([]string, []*service.Service) {
	t.Helper()
	urls := make([]string, n)
	svcs := make([]*service.Service, n)
	for i := 0; i < n; i++ {
		srv, svc := newBackend(t)
		urls[i] = srv.URL
		svcs[i] = svc
	}
	return urls, svcs
}

// referenceResult grades spec unsharded on a fresh single backend,
// through the same HTTP+JSON path the cluster uses, and returns the
// result.
func referenceResult(t *testing.T, spec service.JobSpec) *service.JobResult {
	t.Helper()
	srv, _ := newBackend(t)
	cl := client.New(srv.URL, nil)
	ctx := context.Background()
	id, err := cl.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("reference submit: %v", err)
	}
	st, err := cl.Stream(ctx, id, nil)
	if err != nil {
		t.Fatalf("reference stream: %v", err)
	}
	if st.State != service.StateDone {
		t.Fatalf("reference job %s: %s", st.State, st.Error)
	}
	res, err := cl.Result(ctx, id)
	if err != nil {
		t.Fatalf("reference result: %v", err)
	}
	return res
}

// canonical marshals a result with its job id masked, so results from
// different engines compare bit-for-bit on everything that matters.
func canonical(t *testing.T, r *service.JobResult) string {
	t.Helper()
	cp := *r
	cp.ID = "X"
	cp.Timing = nil // wall-clock, differs between runs by construction
	cp.TraceID = "" // run identity, not payload — differs between runs
	b, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func clusterGrade(t *testing.T, co *Coordinator, spec service.JobSpec) *service.JobResult {
	t.Helper()
	ctx := context.Background()
	id, err := co.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("cluster submit: %v", err)
	}
	lastBlock := -1
	st, err := co.Stream(ctx, id, func(ev service.ProgressEvent) {
		if ev.Block != lastBlock+1 {
			t.Errorf("merged stream skipped from block %d to %d", lastBlock, ev.Block)
		}
		lastBlock = ev.Block
	})
	if err != nil {
		t.Fatalf("cluster stream: %v", err)
	}
	if st.State != service.StateDone {
		t.Fatalf("cluster job %s: %s", st.State, st.Error)
	}
	res, err := co.Result(ctx, id)
	if err != nil {
		t.Fatalf("cluster result: %v", err)
	}
	return res
}

// TestClusterBitIdentical is the acceptance matrix: the cluster-merged
// result over 2, 3 and 4 backends must be bit-identical to a
// single-backend unsharded run in all three modes.
func TestClusterBitIdentical(t *testing.T) {
	specs := []service.JobSpec{
		{Circuit: "c17", Mode: "nodrop",
			Patterns: service.PatternSpec{Random: &service.RandomSpec{N: 320, Seed: 7}}},
		{Circuit: "c17", Mode: "drop",
			Patterns: service.PatternSpec{Random: &service.RandomSpec{N: 320, Seed: 7}}},
		{Circuit: "c17", Mode: "ndetect", N: 3,
			Patterns: service.PatternSpec{Random: &service.RandomSpec{N: 320, Seed: 7}}},
		{Circuit: "lion", Mode: "nodrop",
			Patterns: service.PatternSpec{Exhaustive: true}},
	}
	for _, n := range []int{2, 3, 4} {
		for _, spec := range specs {
			name := fmt.Sprintf("%d-backends/%s-%s", n, spec.Circuit, spec.Mode)
			t.Run(name, func(t *testing.T) {
				want := canonical(t, referenceResult(t, spec))
				urls, _ := newBackends(t, n)
				co, err := New(urls, Options{Logger: quiet})
				if err != nil {
					t.Fatal(err)
				}
				defer co.Close()
				res := clusterGrade(t, co, spec)
				if got := canonical(t, res); got != want {
					t.Fatalf("cluster result diverges from single-node run\n got: %s\nwant: %s", got, want)
				}
				// The work queue over-partitions: ShardsPerBackend (default
				// 4) shards per healthy backend, and on an all-healthy run
				// every shard completes its single attempt with no steals
				// or speculation.
				shards, err := co.Shards("c1")
				if err != nil || len(shards) != 4*n {
					t.Fatalf("shards: %v, %v (want %d)", shards, err, 4*n)
				}
				for _, sh := range shards {
					if sh.State != service.StateDone || sh.Retries != 0 || sh.Attempts != 1 {
						t.Fatalf("shard %+v not cleanly done", sh)
					}
				}
			})
		}
	}
}

// slowChainBench is a deep XOR chain whose grading spans enough blocks
// to interrupt mid-run.
func slowChainBench() string {
	var b strings.Builder
	const inputs, chain = 16, 400
	for i := 0; i < inputs; i++ {
		fmt.Fprintf(&b, "INPUT(i%d)\n", i)
	}
	fmt.Fprintf(&b, "OUTPUT(g%d)\n", chain-1)
	fmt.Fprintf(&b, "g0 = XOR(i0, i1)\n")
	for i := 1; i < chain; i++ {
		fmt.Fprintf(&b, "g%d = XOR(g%d, i%d)\n", i, i-1, i%inputs)
	}
	return b.String()
}

// dyingBackend speaks just enough of the v1 wire to accept one shard,
// stream one block, and then die for good — the deterministic stand-in
// for a backend killed mid-job.
type dyingBackend struct {
	mu      sync.Mutex
	dead    bool
	submits int
}

func (d *dyingBackend) isDead() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dead
}

func (d *dyingBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if d.isDead() {
		panic(http.ErrAbortHandler)
	}
	switch {
	case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs":
		d.mu.Lock()
		d.submits++
		d.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintln(w, `{"id":"z1"}`)
	case strings.HasSuffix(r.URL.Path, "/stream"):
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, `{"job_id":"z1","state":"running","block":0,"blocks":1,"vectors_used":64,"detected":0,"active":1}`)
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		d.mu.Lock()
		d.dead = true
		d.mu.Unlock()
		panic(http.ErrAbortHandler)
	case r.URL.Path == "/v1/stats":
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{}`)
	default:
		panic(http.ErrAbortHandler)
	}
}

// TestClusterBackendDeathMidJob kills one of three backends after it
// has started streaming its shard; the shard must be retried on a
// surviving backend and the merged result must still be bit-identical
// to the single-node run.
func TestClusterBackendDeathMidJob(t *testing.T) {
	spec := service.JobSpec{
		Bench: slowChainBench(), Name: "slow-chain", Mode: "nodrop",
		Patterns: service.PatternSpec{Random: &service.RandomSpec{N: 2048, Seed: 5}},
	}
	want := canonical(t, referenceResult(t, spec))

	urls, _ := newBackends(t, 2)
	dying := &dyingBackend{}
	dsrv := httptest.NewServer(dying)
	defer dsrv.Close()

	co, err := New(append(urls, dsrv.URL), Options{Logger: quiet})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	res := clusterGrade(t, co, spec)
	if got := canonical(t, res); got != want {
		t.Fatalf("result after backend death diverges\n got: %s\nwant: %s", got, want)
	}
	if !dying.isDead() {
		t.Fatal("the dying backend never received its shard")
	}
	shards, err := co.Shards("c1")
	if err != nil {
		t.Fatal(err)
	}
	retried := 0
	for _, sh := range shards {
		if sh.Backend == dsrv.URL {
			t.Fatalf("shard %d still resides on the dead backend", sh.Index)
		}
		retried += sh.Retries
	}
	if retried == 0 {
		t.Fatal("no shard was retried despite a backend death")
	}

	// The incident must be visible on the observability surface too:
	// the re-placement counter matches the per-shard retry totals, the
	// merged result records when the fan-out ran and what the merge
	// cost, and the terminal counter settled on done.
	exp := scrapeRegistry(t, co.Metrics())
	if got := seriesValue(t, exp, "adifo_cluster_shard_retries_total"); got != float64(retried) {
		t.Errorf("adifo_cluster_shard_retries_total = %v, shards report %d retries", got, retried)
	}
	if got := seriesValue(t, exp, `adifo_cluster_jobs_total{status="done"}`); got != 1 {
		t.Errorf(`adifo_cluster_jobs_total{status="done"} = %v, want 1`, got)
	}
	if got := seriesValue(t, exp, "adifo_cluster_merge_seconds_count"); got != 1 {
		t.Errorf("adifo_cluster_merge_seconds_count = %v, want 1", got)
	}
	if res.Timing == nil {
		t.Fatal("merged result carries no timing")
	}
	if _, ok := res.Timing.Phases[service.PhaseMerge]; !ok {
		t.Errorf("merged result timing lacks the merge phase: %v", res.Timing.Phases)
	}
	if res.Timing.RunSeconds <= 0 || res.Timing.FinishedAt.IsZero() {
		t.Errorf("merged result timing implausible: %+v", res.Timing)
	}
}

// TestClusterFlappingExcluded marks a backend as flapping after its
// first failure (MaxBackendFailures=1) and checks that the next job is
// sharded over the survivors only.
func TestClusterFlappingExcluded(t *testing.T) {
	spec := service.JobSpec{
		Circuit: "c17", Mode: "nodrop",
		Patterns: service.PatternSpec{Random: &service.RandomSpec{N: 192, Seed: 2}},
	}
	want := canonical(t, referenceResult(t, spec))

	urls, _ := newBackends(t, 2)
	dying := &dyingBackend{}
	dsrv := httptest.NewServer(dying)
	defer dsrv.Close()

	co, err := New([]string{urls[0], urls[1], dsrv.URL}, Options{Logger: quiet, MaxBackendFailures: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	if got := canonical(t, clusterGrade(t, co, spec)); got != want {
		t.Fatalf("first job diverges\n got: %s\nwant: %s", got, want)
	}

	// The dying backend is now flapping: the next job must be sharded
	// across the two survivors only, without probing timeouts.
	id, err := co.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := co.Stream(context.Background(), id, nil); err != nil || st.State != service.StateDone {
		t.Fatalf("second job: %+v, %v", st, err)
	}
	shards, err := co.Shards(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 8 {
		t.Fatalf("second job used %d shards, want 8 (4 per survivor, flapping backend excluded)", len(shards))
	}
	for _, sh := range shards {
		if sh.Backend == dsrv.URL {
			t.Fatalf("shard %d placed on the flapping backend", sh.Index)
		}
	}
	res, err := co.Result(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if got := canonical(t, res); got != want {
		t.Fatalf("second job diverges\n got: %s\nwant: %s", got, want)
	}

	// Every skip of the flapping backend — during placement and during
	// probing — lands on its exclusion counter.
	exp := scrapeRegistry(t, co.Metrics())
	series := `adifo_cluster_backend_exclusions_total{backend="` + dsrv.URL + `"}`
	if got := seriesValue(t, exp, series); got < 1 {
		t.Errorf("%s = %v, want >= 1", series, got)
	}
}

// TestClusterBackendDrainRetries: a backend cancelling a sub-job on
// its own (a graceful drain, not our fan-out) is a lost shard, not a
// cluster-level cancel — the shard is rerun elsewhere and the merged
// result still matches the single-node run.
func TestClusterBackendDrainRetries(t *testing.T) {
	spec := service.JobSpec{
		Bench: slowChainBench(), Name: "slow-chain", Mode: "nodrop",
		Patterns: service.PatternSpec{Random: &service.RandomSpec{N: 8192, Seed: 5}},
	}
	want := canonical(t, referenceResult(t, spec))

	urls, svcs := newBackends(t, 2)
	co, err := New(urls, Options{Logger: quiet})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	ctx := context.Background()
	id, err := co.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Cancel backend 1's sub-job directly, exactly what its Drain()
	// would do on SIGTERM. Only the canary is guaranteed placed when
	// Submit returns — the dispatch loops place the rest — so poll
	// until a shard lands on backend 1.
	drained := -1
	deadline := time.Now().Add(5 * time.Second)
	for drained < 0 {
		if time.Now().After(deadline) {
			t.Fatal("no shard placed on backend 1")
		}
		shards, err := co.Shards(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, sh := range shards {
			if sh.Backend == urls[1] && sh.RemoteID != "" && sh.State == service.StateRunning {
				if _, err := svcs[1].Cancel(sh.RemoteID); err != nil {
					// The sub-job can finish between the Shards snapshot
					// and the cancel — small shards are quick. Try the
					// next running one.
					if errors.Is(err, service.ErrFinished) || errors.Is(err, service.ErrNotFound) {
						continue
					}
					t.Fatalf("backend-side cancel: %v", err)
				}
				drained = sh.Index
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
	}

	st, err := co.Stream(ctx, id, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateDone {
		t.Fatalf("cluster job after backend drain: %s (%s), want done", st.State, st.Error)
	}
	res, err := co.Result(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if got := canonical(t, res); got != want {
		t.Fatalf("result after backend drain diverges\n got: %s\nwant: %s", got, want)
	}
	shards, _ := co.Shards(id)
	if shards[drained].Retries == 0 {
		t.Fatalf("drained shard %d was not retried: %+v", drained, shards[drained])
	}
}

// TestClusterCancel fans a cancel out to every sub-job and the merged
// stream ends with the cancelled status.
func TestClusterCancel(t *testing.T) {
	urls, svcs := newBackends(t, 3)
	co, err := New(urls, Options{Logger: quiet})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	ctx := context.Background()
	id, err := co.Submit(ctx, service.JobSpec{
		Bench: slowChainBench(), Name: "slow-chain", Mode: "nodrop",
		Patterns: service.PatternSpec{Random: &service.RandomSpec{N: 1 << 16, Seed: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	cancelled := false
	st, err := co.Stream(ctx, id, func(ev service.ProgressEvent) {
		if !cancelled {
			cancelled = true
			if _, err := co.Cancel(ctx, id); err != nil {
				t.Errorf("cancel: %v", err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateCancelled {
		t.Fatalf("stream of cancelled cluster job ended with %q", st.State)
	}
	if _, err := co.Result(ctx, id); !errors.Is(err, service.ErrCancelled) {
		t.Fatalf("result of cancelled job: %v, want ErrCancelled", err)
	}
	// Cancel is idempotent; a second cancel reports the state without
	// error.
	if st, err := co.Cancel(ctx, id); err != nil || st.State != service.StateCancelled {
		t.Fatalf("second cancel: %+v, %v", st, err)
	}
	// Every backend saw its sub-job cancelled.
	deadline := time.Now().Add(5 * time.Second)
	for _, svc := range svcs {
		for {
			if svc.Stats().JobsCancelled >= 1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("backend never observed the fanned-out cancel")
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// TestClusterSubmitValidation: spec errors surface synchronously, like
// a direct service submit.
func TestClusterSubmitValidation(t *testing.T) {
	urls, _ := newBackends(t, 2)
	co, err := New(urls, Options{Logger: quiet})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	ctx := context.Background()

	if _, err := co.Submit(ctx, service.JobSpec{Circuit: "c17",
		Patterns: service.PatternSpec{Exhaustive: true}}); err == nil {
		t.Fatal("missing mode must be rejected")
	}
	if _, err := co.Submit(ctx, service.JobSpec{Circuit: "c17", Mode: "nodrop",
		Patterns:   service.PatternSpec{Exhaustive: true},
		FaultShard: &service.FaultShard{Index: 0, Count: 2}}); err == nil {
		t.Fatal("caller-supplied fault_shard must be rejected")
	}
	if _, err := co.Submit(ctx, service.JobSpec{Circuit: "c17", Mode: "drop",
		Patterns:       service.PatternSpec{Exhaustive: true},
		StopAtCoverage: 0.5}); err == nil {
		t.Fatal("stop_at_coverage must be rejected on a cluster")
	}

	// No backends at all: every backend down fails the submit.
	down, err := New([]string{"http://127.0.0.1:1"}, Options{Logger: quiet, ProbeTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := down.Submit(ctx, service.JobSpec{Circuit: "c17", Mode: "nodrop",
		Patterns: service.PatternSpec{Exhaustive: true}}); err == nil {
		t.Fatal("submit with no healthy backends must fail")
	}
}

func TestClusterErrorsContract(t *testing.T) {
	urls, _ := newBackends(t, 2)
	co, err := New(urls, Options{Logger: quiet})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	ctx := context.Background()
	if _, err := co.Status(ctx, "c99"); !errors.Is(err, service.ErrNotFound) {
		t.Fatalf("status: %v, want ErrNotFound", err)
	}
	if _, err := co.Result(ctx, "c99"); !errors.Is(err, service.ErrNotFound) {
		t.Fatalf("result: %v, want ErrNotFound", err)
	}
	if _, err := co.Cancel(ctx, "c99"); !errors.Is(err, service.ErrNotFound) {
		t.Fatalf("cancel: %v, want ErrNotFound", err)
	}
	id, err := co.Submit(ctx, service.JobSpec{Circuit: "c17", Mode: "nodrop",
		Patterns: service.PatternSpec{Exhaustive: true}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co.Result(ctx, id); err != nil && !errors.Is(err, service.ErrNotDone) {
		t.Fatalf("result of running job: %v, want nil-or-ErrNotDone", err)
	}
	if st, err := co.Stream(ctx, id, nil); err != nil || st.State != service.StateDone {
		t.Fatalf("stream: %+v, %v", st, err)
	}
	if _, err := co.Cancel(ctx, id); !errors.Is(err, service.ErrFinished) {
		t.Fatalf("cancel finished: %v, want ErrFinished", err)
	}
	if len(co.Jobs()) != 1 {
		t.Fatalf("jobs = %d, want 1", len(co.Jobs()))
	}
	st, err := co.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.JobsDone != 8 { // 4 shards per backend, one attempt each
		t.Fatalf("summed backend stats JobsDone = %d, want 8", st.JobsDone)
	}
	if st.Workers <= 0 {
		t.Fatalf("summed backend stats Workers = %d, want > 0 (capacity hints feed placement)", st.Workers)
	}
}

// TestMergeResultsValidation: a broken shard set must error, never
// silently merge wrong.
func TestMergeResultsValidation(t *testing.T) {
	mk := func(i, count, total int) *service.JobResult {
		lo, hi := service.ShardRange(total, i, count)
		r := &service.JobResult{
			Circuit: "c", Fingerprint: "f", Mode: "nodrop",
			Faults: hi - lo, TotalFaults: total, Vectors: 64, VectorsUsed: 64,
			FaultShard: &service.FaultShard{Index: i, Count: count},
			Ndet:       make([]int, 64),
		}
		for f := lo; f < hi; f++ {
			r.PerFault = append(r.PerFault, service.FaultResult{F: f})
		}
		return r
	}
	good := []*service.JobResult{mk(0, 2, 10), mk(1, 2, 10)}
	if m, err := MergeResults("c1", good); err != nil || m.Faults != 10 || m.FaultShard != nil {
		t.Fatalf("good merge: %+v, %v", m, err)
	}
	if _, err := MergeResults("c1", nil); err == nil {
		t.Fatal("empty merge must fail")
	}
	if _, err := MergeResults("c1", []*service.JobResult{mk(0, 2, 10), mk(0, 2, 10)}); err == nil {
		t.Fatal("duplicate shard index must fail")
	}
	if _, err := MergeResults("c1", []*service.JobResult{mk(0, 3, 10), mk(1, 3, 10)}); err == nil {
		t.Fatal("incomplete shard count must fail")
	}
	bad := mk(1, 2, 10)
	bad.Fingerprint = "other"
	if _, err := MergeResults("c1", []*service.JobResult{mk(0, 2, 10), bad}); err == nil {
		t.Fatal("fingerprint mismatch must fail")
	}
	unsharded := mk(0, 1, 10)
	unsharded.FaultShard = nil
	if _, err := MergeResults("c1", []*service.JobResult{unsharded}); err == nil {
		t.Fatal("shardless result must fail")
	}
}

// TestClusterRejectsNonGradeKinds: the coordinator shards grade jobs
// only; atpg and adi_order specs (and unknown kinds) are rejected at
// submit with the typed unsupported-kind error, not silently run on
// one backend with wrong semantics.
func TestClusterRejectsNonGradeKinds(t *testing.T) {
	urls, _ := newBackends(t, 2)
	co, err := New(urls, Options{Logger: quiet})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	pat := service.PatternSpec{Random: &service.RandomSpec{N: 16, Seed: 1}}
	for _, spec := range []service.JobSpec{
		{Kind: service.KindAtpg, Circuit: "c17", Patterns: pat, Order: &service.OrderSpec{Kind: "dynm"}},
		{Kind: service.KindADIOrder, Circuit: "c17", Patterns: pat, Order: &service.OrderSpec{Kind: "decr"}},
		{Kind: "mystery", Circuit: "c17", Patterns: pat},
	} {
		if _, err := co.Submit(context.Background(), spec); !errors.Is(err, service.ErrUnsupportedKind) {
			t.Errorf("Submit(kind %q) = %v, want ErrUnsupportedKind", spec.Kind, err)
		}
	}
	// The kind-less default still shards as a grade job.
	id, err := co.Submit(context.Background(), service.JobSpec{Circuit: "c17", Mode: "drop", Patterns: pat})
	if err != nil {
		t.Fatalf("kind-less grade submit: %v", err)
	}
	if st, err := co.Stream(context.Background(), id, nil); err != nil || st.State != service.StateDone {
		t.Fatalf("cluster grade job ended %v, %v", st.State, err)
	}
}
