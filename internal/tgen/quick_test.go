package tgen

import (
	"testing"
	"testing/quick"

	"github.com/eda-go/adifo/internal/fault"
	"github.com/eda-go/adifo/internal/fsim"
	"github.com/eda-go/adifo/internal/gen"
	"github.com/eda-go/adifo/internal/logic"
	"github.com/eda-go/adifo/internal/prng"
)

// Property: for arbitrary generated circuits and arbitrary fault
// orders, the flow's bookkeeping is self-consistent and the final
// test set, re-simulated from scratch, detects exactly the faults the
// driver reported.
func TestQuickGenerateSelfConsistent(t *testing.T) {
	f := func(seed uint64) bool {
		c := gen.Generate(gen.Config{Name: "q", Inputs: 7, Gates: 45, Seed: seed})
		fl := fault.CollapsedUniverse(c)
		order := prng.New(seed ^ 0x5eed).Perm(fl.Len())
		r := Generate(fl, order, Options{FillSeed: seed, Validate: true})

		// Curve strictly increasing, final value == Detected().
		prev := 0
		for _, n := range r.Curve {
			if n <= prev {
				return false
			}
			prev = n
		}
		if prev != r.Detected() {
			return false
		}
		// Accounting: detected + redundant + aborted-or-missed == all.
		if r.Detected()+len(r.Redundant) > fl.Len() {
			return false
		}
		// Resimulation agreement.
		ps := logic.NewPatternSet(c.NumInputs())
		for _, v := range r.Tests {
			ps.Append(v)
		}
		if ps.Len() > 0 {
			res := fsim.Run(fl, ps, fsim.Options{Mode: fsim.Drop})
			if res.DetectedCount() != r.Detected() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
