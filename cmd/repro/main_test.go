package main

import "testing"

func TestRunTable1(t *testing.T) {
	if err := run(1, 0, false, false, "small", "irs298"); err != nil {
		t.Fatal(err)
	}
}

func TestRunFigure1SmallCircuit(t *testing.T) {
	if err := run(0, 1, false, false, "small", "irs298"); err != nil {
		t.Fatal(err)
	}
}

func TestRunNothingSelected(t *testing.T) {
	if err := run(0, 0, false, false, "small", "irs298"); err == nil {
		t.Fatal("expected error when nothing selected")
	}
}

func TestRunBadSuite(t *testing.T) {
	if err := run(1, 0, false, false, "bogus", "irs298"); err == nil {
		t.Fatal("expected error for bogus suite")
	}
}

func TestRunBadFigureCircuit(t *testing.T) {
	if err := run(0, 1, false, false, "small", "bogus"); err == nil {
		t.Fatal("expected error for bogus figure circuit")
	}
}
