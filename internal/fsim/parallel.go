package fsim

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"github.com/eda-go/adifo/internal/circuit"
	"github.com/eda-go/adifo/internal/fault"
	"github.com/eda-go/adifo/internal/logic"
	"github.com/eda-go/adifo/internal/sim"
)

// Good holds precomputed good-machine value words for every 64-pattern
// block of one (circuit, pattern set) pair. Computing it once and
// sharing it read-only lets repeated fault-grading runs over the same
// inputs — and all workers inside one run — skip the good simulation
// entirely; the service registry caches Good values under LRU
// eviction.
type Good struct {
	c      *circuit.Circuit
	ps     *logic.PatternSet
	blocks [][]uint64
}

// ComputeGood simulates the fault-free circuit against every block of
// ps and stores the per-gate value words.
func ComputeGood(c *circuit.Circuit, ps *logic.PatternSet) *Good {
	if ps.Inputs() != c.NumInputs() {
		panic(fmt.Sprintf("fsim: pattern set has %d inputs, circuit has %d", ps.Inputs(), c.NumInputs()))
	}
	gs := sim.New(c)
	g := &Good{c: c, ps: ps, blocks: make([][]uint64, ps.Blocks())}
	for b := range g.blocks {
		gs.SimulateBlock(ps, b)
		g.blocks[b] = append([]uint64(nil), gs.Values()...)
	}
	return g
}

// Circuit returns the circuit the values were computed on.
func (g *Good) Circuit() *circuit.Circuit { return g.c }

// Patterns returns the pattern set the values were computed against.
func (g *Good) Patterns() *logic.PatternSet { return g.ps }

// Block returns the per-gate good value words of block b. Callers must
// treat the slice as read-only.
func (g *Good) Block(b int) []uint64 { return g.blocks[b] }

// Bytes returns the approximate memory footprint of the stored
// values, for capacity planning and diagnostics (the registry's LRU
// bounds entry count, not bytes; size a cache with Bytes in mind).
func (g *Good) Bytes() int { return len(g.blocks) * g.c.NumGates() * 8 }

// Progress is a per-block snapshot of a running batch simulation,
// delivered at each block barrier.
type Progress struct {
	Block       int // index of the block just finished
	Blocks      int // total blocks in the pattern set
	VectorsUsed int // vectors simulated so far
	Detected    int // faults detected at least once so far
	Active      int // faults still active after this block's drops
}

// ParallelOptions configures RunParallelWith. The embedded Options
// select the dropping policy exactly as for the sequential Run.
type ParallelOptions struct {
	Options

	// Workers is the number of simulation goroutines; <= 0 means
	// GOMAXPROCS. The worker count never changes results, only speed.
	Workers int

	// Good, when non-nil, supplies precomputed good-machine values for
	// (fl.Circuit, ps); it must have been computed on exactly that
	// pair. When nil the good machine is simulated on the fly.
	Good *Good

	// Progress, when non-nil, is called after every block barrier with
	// the run's state. It is called from the coordinating goroutine,
	// never concurrently.
	Progress func(Progress)
}

// RunParallel is Run in NoDrop mode with the per-fault cone
// re-simulation spread across worker goroutines. Kept as the
// historical entry point; it is RunParallelWith with default options.
func RunParallel(fl *fault.List, ps *logic.PatternSet, workers int) *Result {
	return RunParallelWith(fl, ps, ParallelOptions{Workers: workers})
}

// RunParallelWith simulates every fault of fl against ps under the
// given options with a pool of workers, in any of the three modes.
// Results are bit-for-bit identical to the sequential Run: workers
// simulate one 64-pattern block independently over disjoint shards of
// the active list, then synchronize at the block barrier where
// detections are merged, per-vector ndet counters are summed and the
// shared active list is compacted (drop reconciliation). Dropping
// decisions are per-fault — a fault drops when its own detection count
// crosses the mode threshold — so deferring the list shrink to the
// barrier changes nothing about which vectors count, only when the
// bookkeeping happens.
//
// fl is never mutated and may be shared (cached) across concurrent
// runs; each run carries its drop state in a private fault.ActiveSet.
//
// It is RunParallelCtx without cancellation.
func RunParallelWith(fl *fault.List, ps *logic.PatternSet, po ParallelOptions) *Result {
	r, _ := RunParallelCtx(context.Background(), fl, ps, po)
	return r
}

// RunParallelCtx is RunParallelWith with cooperative cancellation: ctx
// is polled at every block barrier, before the workers are dispatched
// for the next block, so a cancelled run stops within one 64-pattern
// block of work and leaks no goroutines (workers are per-block and
// always joined at the barrier). On cancellation it returns the
// partial result together with ctx.Err(); the error is nil on a
// completed run.
func RunParallelCtx(ctx context.Context, fl *fault.List, ps *logic.PatternSet, po ParallelOptions) (*Result, error) {
	c := fl.Circuit
	if ps.Inputs() != c.NumInputs() {
		panic("fsim: pattern set width mismatch")
	}
	if po.Mode == NDetect && po.N <= 0 {
		panic("fsim: NDetect mode requires Options.N > 0")
	}
	// The Good cache is keyed by deterministic (circuit, pattern spec)
	// keys, so content equality of the pattern sets is the caller's
	// contract; only the cheap structural mismatches are caught here.
	if po.Good != nil && (po.Good.c != c ||
		po.Good.ps.Len() != ps.Len() || po.Good.ps.Inputs() != ps.Inputs()) {
		panic("fsim: ParallelOptions.Good computed on a different circuit or pattern set")
	}
	workers := po.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nf := fl.Len()
	if workers > nf {
		workers = nf
	}
	if workers < 1 {
		workers = 1
	}

	r := &Result{
		List:     fl,
		DetCount: make([]int, nf),
		FirstDet: make([]int, nf),
		Ndet:     make([]int, ps.Len()),
	}
	for i := range r.FirstDet {
		r.FirstDet[i] = -1
	}
	if po.Mode == NoDrop || po.Mode == NDetect {
		r.Det = make([]*logic.Bitset, nf)
		for i := range r.Det {
			r.Det[i] = logic.NewBitset(ps.Len())
		}
	}

	var gs *sim.Simulator
	if po.Good == nil {
		gs = sim.New(c)
	}
	engines := make([]*engine, workers)
	for w := range engines {
		engines[w] = newEngine(c, nil)
	}
	// Per-worker accumulators, merged at the block barrier: ndet is
	// the only cross-fault shared counter, newDet feeds the running
	// detected count used by StopAtCoverage and Progress.
	ndetLocal := make([][]int, workers)
	for w := range ndetLocal {
		ndetLocal[w] = make([]int, logic.WordBits)
	}
	newDet := make([]int, workers)

	active := fault.NewActiveSet(nf)
	keep := make([]bool, nf) // keep[p] decided by position in the active list
	detected := 0

	var wg sync.WaitGroup
	for block := 0; block < ps.Blocks(); block++ {
		if err := ctx.Err(); err != nil {
			r.Ndet = r.Ndet[:r.VectorsUsed]
			return r, err
		}
		var goodVals []uint64
		if po.Good != nil {
			goodVals = po.Good.Block(block)
		} else {
			gs.SimulateBlock(ps, block)
			goodVals = gs.Values()
		}
		mask := ps.BlockMask(block)
		base := block * logic.WordBits

		act := active.Indices()
		n := len(act)
		chunk := (n + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				e := engines[w]
				e.good = goodVals
				local := ndetLocal[w]
				nd := 0
				for p := lo; p < hi; p++ {
					fi := act[p]
					det := e.propagate(fl.Faults[fi]) & mask
					if po.Mode == NDetect && det != 0 {
						// Count detections in vector order and stop
						// exactly at the n-th, so DetCount and ndet are
						// block-size independent (same rule as Run).
						det = keepLowestBits(det, po.N-r.DetCount[fi])
					}
					if det != 0 {
						r.DetCount[fi] += logic.Popcount(det)
						if r.FirstDet[fi] < 0 {
							r.FirstDet[fi] = base + lowestBit(det)
							nd++
						}
						if r.Det != nil {
							r.Det[fi].OrWord(block, det)
						}
						for d := det; d != 0; d &= d - 1 {
							local[lowestBit(d)]++
						}
					}
					switch po.Mode {
					case NoDrop:
						keep[p] = true
					case Drop:
						keep[p] = r.DetCount[fi] == 0
					case NDetect:
						keep[p] = r.DetCount[fi] < po.N
					}
				}
				newDet[w] = nd
			}(w, lo, hi)
		}
		wg.Wait()

		// Block barrier: merge (and zero) the per-worker counters, fold
		// in newly detected faults and reconcile drops by compacting
		// the shared list. Zeroing happens here rather than in the
		// workers because a worker whose shard is empty this block
		// never runs, yet its accumulator is still merged.
		for w := 0; w < workers; w++ {
			local := ndetLocal[w]
			for bit, cnt := range local {
				if cnt != 0 {
					r.Ndet[base+bit] += cnt
					local[bit] = 0
				}
			}
			detected += newDet[w]
			newDet[w] = 0
		}
		if po.Mode != NoDrop {
			active.Compact(keep[:n])
		}
		r.VectorsUsed = min(base+logic.WordBits, ps.Len())

		if po.Progress != nil {
			po.Progress(Progress{
				Block:       block,
				Blocks:      ps.Blocks(),
				VectorsUsed: r.VectorsUsed,
				Detected:    detected,
				Active:      active.Len(),
			})
		}
		if po.StopAtCoverage > 0 &&
			float64(detected) >= po.StopAtCoverage*float64(nf) {
			break
		}
		if active.Len() == 0 && po.Mode != NoDrop {
			break
		}
	}
	r.Ndet = r.Ndet[:r.VectorsUsed]
	return r, nil
}
