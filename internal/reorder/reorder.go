// Package reorder implements static test-set reordering for steep
// fault-coverage curves — the method of Lin, Rajski, Pomeranz & Reddy,
// "On Static Test Compaction and Test Pattern Ordering for Scan
// Designs" (ITC 2001), which the ADI paper cites as reference [7] and
// compares against for its second application.
//
// Given an existing test set, the greedy reordering repeatedly picks
// the vector that detects the largest number of still-undetected
// faults ("tests that detect larger numbers of faults appear earlier
// in the reordered test set"). The ADI paper's point is that ordering
// the *fault targets* during generation gets most of this benefit for
// free; this package provides the post-hoc alternative so the two can
// be compared (see the steepcurve example and the reordering ablation
// benchmark).
//
// The package also provides reverse-order static compaction, the
// classic companion transformation: simulate the test set in reverse
// order with fault dropping and discard vectors that detect nothing
// new. It is used to strip redundant vectors before reordering.
package reorder

import (
	"fmt"

	"github.com/eda-go/adifo/internal/fault"
	"github.com/eda-go/adifo/internal/fsim"
	"github.com/eda-go/adifo/internal/logic"
)

// Result describes one reordering.
type Result struct {
	// Perm maps new position -> original test index.
	Perm []int
	// Curve[i] is the number of faults detected by the first i+1
	// reordered tests.
	Curve []int
	// Detected is the total number of faults the set detects.
	Detected int
}

// Greedy reorders the tests of ps so that each position is occupied
// by the vector detecting the most still-undetected faults of fl,
// ties broken by original position. Fully dominated vectors (no new
// detections) keep their relative order at the tail.
//
// The detection matrix comes from one no-drop simulation, so the cost
// is one PPSFP pass plus O(k²) bitset scans for k tests — fine for
// the test-set sizes ATPG produces.
func Greedy(fl *fault.List, ps *logic.PatternSet) *Result {
	k := ps.Len()
	res := fsim.Run(fl, ps, fsim.Options{Mode: fsim.NoDrop})

	// detBy[u] = set of faults vector u detects.
	detBy := make([]*logic.Bitset, k)
	for u := 0; u < k; u++ {
		detBy[u] = logic.NewBitset(fl.Len())
	}
	for fi := range fl.Faults {
		res.Det[fi].ForEach(func(u int) { detBy[u].Set(fi) })
	}

	remaining := logic.NewBitset(fl.Len())
	for fi := range fl.Faults {
		if res.Detected(fi) {
			remaining.Set(fi)
		}
	}
	total := remaining.Count()

	used := make([]bool, k)
	out := &Result{Detected: total}
	covered := 0
	for len(out.Perm) < k {
		best, bestNew := -1, -1
		for u := 0; u < k; u++ {
			if used[u] {
				continue
			}
			newDet := countAnd(detBy[u], remaining)
			if newDet > bestNew {
				best, bestNew = u, newDet
			}
		}
		if bestNew == 0 {
			// Everything still detectable is covered; append the
			// dominated tail in original order.
			for u := 0; u < k; u++ {
				if !used[u] {
					out.Perm = append(out.Perm, u)
					out.Curve = append(out.Curve, covered)
				}
			}
			break
		}
		used[best] = true
		out.Perm = append(out.Perm, best)
		covered += bestNew
		out.Curve = append(out.Curve, covered)
		detBy[best].ForEach(func(fi int) { remaining.Clear(fi) })
	}
	return out
}

// countAnd returns |a ∩ b| without materializing the intersection.
func countAnd(a, b *logic.Bitset) int {
	n := 0
	words := (a.Len() + logic.WordBits - 1) / logic.WordBits
	for w := 0; w < words; w++ {
		n += logic.Popcount(a.WordAt(w) & b.WordAt(w))
	}
	return n
}

// Apply materializes a permutation of ps as a new pattern set.
func Apply(ps *logic.PatternSet, perm []int) *logic.PatternSet {
	if len(perm) != ps.Len() {
		panic(fmt.Sprintf("reorder: permutation length %d for %d tests", len(perm), ps.Len()))
	}
	out := logic.NewPatternSet(ps.Inputs())
	for _, u := range perm {
		out.Append(ps.Get(u))
	}
	return out
}

// ReverseCompact performs reverse-order static compaction: simulate
// the tests from last to first with fault dropping and keep only the
// vectors that detect at least one new fault. The kept indices are
// returned in their original relative order. Reverse order is the
// classic choice because late ATPG vectors target hard faults and
// tend to be essential, while early vectors are often covered by the
// rest of the set.
func ReverseCompact(fl *fault.List, ps *logic.PatternSet) []int {
	inc := fsim.NewIncremental(fl)
	var keep []int
	for u := ps.Len() - 1; u >= 0; u-- {
		if len(inc.SimulateVector(ps.Get(u))) > 0 {
			keep = append(keep, u)
		}
	}
	// keep is in reverse order; flip it.
	for i, j := 0, len(keep)-1; i < j; i, j = i+1, j-1 {
		keep[i], keep[j] = keep[j], keep[i]
	}
	return keep
}

// Select materializes a subset of ps given by indices (in the given
// order).
func Select(ps *logic.PatternSet, idx []int) *logic.PatternSet {
	out := logic.NewPatternSet(ps.Inputs())
	for _, u := range idx {
		out.Append(ps.Get(u))
	}
	return out
}
