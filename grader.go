package adifo

import (
	"context"
	"net/http"

	"github.com/eda-go/adifo/internal/cluster"
	"github.com/eda-go/adifo/internal/obs"
	"github.com/eda-go/adifo/internal/service"
	"github.com/eda-go/adifo/internal/service/client"
)

// Version is the adifo stack's build version, the value `adifod
// -version` prints and the adifo_build_info metric carries.
const Version = obs.Version

// Wire types of the v1 job API, shared verbatim between the in-process
// engine, the adifod HTTP server and the remote client, so a result is
// structurally identical wherever the grading ran.
type (
	// JobSpec is a fault-grading request: a circuit (named or inline
	// .bench text), a pattern spec, and a dropping policy. Mode is
	// required — the wire contract has no silent default.
	JobSpec = service.JobSpec
	// PatternSpec selects the vector set: exactly one of Random,
	// Exhaustive and Vectors.
	PatternSpec = service.PatternSpec
	// RandomSpec requests N seeded random vectors, reproducible across
	// runs and hosts.
	RandomSpec = service.RandomSpec
	// JobStatus is the pollable view of a job.
	JobStatus = service.JobStatus
	// JobResult is the full grading outcome of a finished job.
	JobResult = service.JobResult
	// FaultResult is the per-fault slice of a JobResult.
	FaultResult = service.FaultResult
	// ProgressEvent is one entry of a job's streaming progress feed.
	ProgressEvent = service.ProgressEvent
	// GraderStats is the service-level counter snapshot, including the
	// registry cache hit/miss counters.
	GraderStats = service.Stats
	// GraderConfig sizes a local grader; zero values select sensible
	// defaults.
	GraderConfig = service.Config
	// APIError is the typed error of the v1 wire contract
	// ({"error": {"code": ..., "message": ...}}); RemoteGrader calls
	// surface it via errors.As.
	APIError = service.APIError
	// FaultShard is the wire's optional shard selector: a job carrying
	// it grades only shard Index of Count of the collapsed fault
	// universe, against the full pattern set. ClusterGrader assigns
	// these automatically; set it by hand only to drive your own
	// fan-out.
	FaultShard = service.FaultShard
	// ClusterOptions configures a ClusterGrader; zero values select
	// sensible defaults.
	ClusterOptions = cluster.Options
	// ClusterShardStatus is the per-shard placement state of a cluster
	// job (backend URL, remote sub-job id, retries).
	ClusterShardStatus = cluster.ShardStatus
	// JobTiming is the per-job wall-clock record on statuses and
	// results: submit/start/finish timestamps, queue wait, and the
	// per-phase duration map (registry_build, simulate, order,
	// generate, merge).
	JobTiming = service.Timing
)

// Phase names of JobTiming.Phases: each kind records the pipeline
// stages it actually ran.
const (
	PhaseRegistryBuild = service.PhaseRegistryBuild
	PhaseSimulate      = service.PhaseSimulate
	PhaseOrder         = service.PhaseOrder
	PhaseGenerate      = service.PhaseGenerate
	PhaseMerge         = service.PhaseMerge
)

// Job states. Queued and running jobs may still change state; done,
// failed and cancelled are terminal.
const (
	JobQueued    = service.StateQueued
	JobRunning   = service.StateRunning
	JobDone      = service.StateDone
	JobFailed    = service.StateFailed
	JobCancelled = service.StateCancelled
)

// Errors returned by Grader methods (LocalGrader returns them
// directly; RemoteGrader returns *APIError with the matching code).
var (
	ErrJobNotFound  = service.ErrNotFound
	ErrJobNotDone   = service.ErrNotDone
	ErrJobCancelled = service.ErrCancelled
	ErrJobFinished  = service.ErrFinished
	// ErrGraderDraining is returned by Submit while the engine is
	// shutting down gracefully (LocalGrader.Drain, or an adifod server
	// that received SIGINT/SIGTERM).
	ErrGraderDraining = service.ErrDraining
	// ErrGraderOverloaded is returned by Submit when admission control
	// rejects the job: the global queued-job bound
	// (GraderConfig.MaxQueuedJobs) or the submitting tenant's own bound
	// (GraderConfig.TenantLimits) is reached. Back off and resubmit —
	// with an idempotency key the retry is safe by construction.
	ErrGraderOverloaded = service.ErrOverloaded
)

// TenantLimit configures one tenant's scheduling weight and queue
// bound in GraderConfig.TenantLimits.
type TenantLimit = service.TenantLimit

// Grader is the fault-grading engine behind one interface: submit a
// job, poll or stream it, fetch the result, cancel it. NewLocalGrader
// runs jobs in-process; NewRemoteGrader talks to a running adifod
// server. Programs written against Grader switch between embedded and
// remote grading by swapping a constructor.
type Grader interface {
	// Submit validates spec, enqueues a job and returns its id; the
	// job runs asynchronously on a bounded pool.
	Submit(ctx context.Context, spec JobSpec) (string, error)
	// Status returns the current status of a job.
	Status(ctx context.Context, id string) (JobStatus, error)
	// Result returns the grading outcome of a finished job
	// (ErrJobNotDone while it runs, ErrJobCancelled after a cancel,
	// the job's failure for failed jobs).
	Result(ctx context.Context, id string) (*JobResult, error)
	// Cancel aborts a job: a queued job transitions to cancelled
	// immediately, a running one at its next 64-pattern block barrier.
	// Idempotent on cancelled jobs; ErrJobFinished after completion.
	Cancel(ctx context.Context, id string) (JobStatus, error)
	// Stream delivers per-block progress events until the job reaches
	// a terminal state and returns the final status.
	Stream(ctx context.Context, id string, fn func(ProgressEvent)) (JobStatus, error)
	// Stats returns the engine's counters.
	Stats(ctx context.Context) (GraderStats, error)
	// Close releases the grader; a local grader waits for submitted
	// jobs to finish first.
	Close() error
}

// Interface conformance.
var (
	_ Grader = (*LocalGrader)(nil)
	_ Grader = (*RemoteGrader)(nil)
	_ Grader = (*ClusterGrader)(nil)
)

// LocalGrader runs grading jobs in-process: a registry caches parsed
// circuits, collapsed fault lists and good-machine simulations, and a
// bounded pool runs jobs through the sharded simulator. It is the
// engine adifod serves; Handler exposes it over HTTP.
type LocalGrader struct {
	svc *service.Service
}

// NewLocalGrader returns an in-process grading engine. It panics when
// the configured journal directory cannot be opened or replayed; use
// OpenLocalGrader to handle that as an error.
func NewLocalGrader(cfg GraderConfig) *LocalGrader {
	return &LocalGrader{svc: service.New(cfg)}
}

// OpenLocalGrader returns an in-process grading engine, surfacing
// journal open/replay failures as errors. With
// GraderConfig.JournalDir set, every accepted job is made durable in
// a write-ahead journal before Submit returns, and construction
// replays the journal: finished jobs come back queryable with
// byte-identical results, jobs that were queued or running when the
// process died re-enqueue and rerun. Recovery completes before
// OpenLocalGrader returns, so a caller that wires Handler to a
// listener afterwards never serves a partially recovered view.
func OpenLocalGrader(cfg GraderConfig) (*LocalGrader, error) {
	svc, err := service.Open(cfg)
	if err != nil {
		return nil, err
	}
	return &LocalGrader{svc: svc}, nil
}

// Handler returns the engine's v1 HTTP+JSON API, the surface cmd/adifod
// listens on and RemoteGrader talks to.
func (g *LocalGrader) Handler() http.Handler { return g.svc.Handler() }

// MetricsHandler returns the engine's Prometheus text exposition
// endpoint on its own, for embedders that mount metrics on a separate
// (internal) listener; Handler already serves it at GET /metrics.
func (g *LocalGrader) MetricsHandler() http.Handler { return g.svc.Metrics().Handler() }

// TracesHandler returns the engine's trace flight recorder, mountable
// at /debug/traces: a JSON list of recently retained traces (plus the
// slowest jobs per kind) and a per-trace span tree at
// /debug/traces/{trace_id}. adifod mounts it on the -debug-addr
// listener.
func (g *LocalGrader) TracesHandler() http.Handler { return g.svc.Traces().Handler() }

// Submit implements Grader. Graders run grade jobs; specs of other
// kinds are rejected here rather than failing later at Result (use
// NewRemoteGenerator for atpg, NewRemoteOrderer for adi_order — the
// engine behind Handler serves all kinds).
func (g *LocalGrader) Submit(_ context.Context, spec JobSpec) (string, error) {
	if err := checkKind(&spec, KindGrade); err != nil {
		return "", err
	}
	return g.svc.Submit(spec)
}

// Status implements Grader.
func (g *LocalGrader) Status(_ context.Context, id string) (JobStatus, error) {
	st, ok := g.svc.Status(id)
	if !ok {
		return JobStatus{}, ErrJobNotFound
	}
	return st, nil
}

// Result implements Grader.
func (g *LocalGrader) Result(_ context.Context, id string) (*JobResult, error) {
	return g.svc.Result(id)
}

// Cancel implements Grader.
func (g *LocalGrader) Cancel(_ context.Context, id string) (JobStatus, error) {
	return g.svc.Cancel(id)
}

// Stream implements Grader: it subscribes to the job's progress feed
// and calls fn for every event until the job reaches a terminal state,
// then returns the final status. ctx aborts the subscription (not the
// job — use Cancel for that).
func (g *LocalGrader) Stream(ctx context.Context, id string, fn func(ProgressEvent)) (JobStatus, error) {
	ch, cancel, ok := g.svc.Subscribe(id)
	if !ok {
		return JobStatus{}, ErrJobNotFound
	}
	defer cancel()
	for {
		select {
		case <-ctx.Done():
			return JobStatus{}, ctx.Err()
		case ev, open := <-ch:
			if !open {
				return g.Status(ctx, id)
			}
			if fn != nil {
				fn(ev)
			}
		}
	}
}

// Stats implements Grader.
func (g *LocalGrader) Stats(_ context.Context) (GraderStats, error) {
	return g.svc.Stats(), nil
}

// Close implements Grader: it waits for all submitted jobs to finish
// (cancel them first for a fast shutdown).
func (g *LocalGrader) Close() error {
	g.svc.Close()
	return nil
}

// Drain shuts the engine down gracefully: from the moment it is
// called Submit rejects new jobs with an ErrGraderDraining error,
// queued jobs are cancelled immediately, running jobs are cancelled at
// their next 64-pattern block barrier (streams end with the cancelled
// status), and Drain returns once every job goroutine has finished.
// adifod calls this on SIGINT/SIGTERM before shutting its HTTP server
// down.
func (g *LocalGrader) Drain() { g.svc.Drain() }

// RemoteGrader grades on a running adifod server over the v1 HTTP+JSON
// API. Non-2xx responses surface as *APIError.
type RemoteGrader struct {
	cl *client.Client
}

// NewRemoteGrader returns a grader for the adifod server at base (e.g.
// "http://localhost:8417"). httpClient may be nil for
// http.DefaultClient.
func NewRemoteGrader(base string, httpClient *http.Client) *RemoteGrader {
	return &RemoteGrader{cl: client.New(base, httpClient)}
}

// Submit implements Grader. Like LocalGrader, it submits grade jobs
// only; use NewRemoteGenerator / NewRemoteOrderer for the other
// kinds.
func (g *RemoteGrader) Submit(ctx context.Context, spec JobSpec) (string, error) {
	if err := checkKind(&spec, KindGrade); err != nil {
		return "", err
	}
	return g.cl.Submit(ctx, spec)
}

// Status implements Grader.
func (g *RemoteGrader) Status(ctx context.Context, id string) (JobStatus, error) {
	return g.cl.Status(ctx, id)
}

// Result implements Grader.
func (g *RemoteGrader) Result(ctx context.Context, id string) (*JobResult, error) {
	return g.cl.Result(ctx, id)
}

// Cancel implements Grader.
func (g *RemoteGrader) Cancel(ctx context.Context, id string) (JobStatus, error) {
	return g.cl.Cancel(ctx, id)
}

// Stream implements Grader.
func (g *RemoteGrader) Stream(ctx context.Context, id string, fn func(ProgressEvent)) (JobStatus, error) {
	return g.cl.Stream(ctx, id, fn)
}

// Stats implements Grader.
func (g *RemoteGrader) Stats(ctx context.Context) (GraderStats, error) {
	return g.cl.Stats(ctx)
}

// Close implements Grader (a remote grader holds no resources).
func (g *RemoteGrader) Close() error { return nil }

// ClusterGrader fans every grading job out across multiple adifod
// backends: the collapsed fault universe is partitioned into many more
// deterministic index-range shards than backends (ShardsPerBackend per
// healthy backend), the shards feed a work queue that each backend
// pulls from as it has capacity, and the streamed progress and final
// results are merged into a single JobResult that is bit-identical to
// an unsharded single-node run. A backend that dies mid-job has its
// shards retried on survivors; shards stuck behind a straggler are
// stolen or speculatively duplicated on idle backends (first terminal
// result wins — determinism makes duplicates safe). Health is probed
// via /v1/stats and flapping backends are excluded. Cancel fans out to
// every sub-job.
type ClusterGrader struct {
	co *cluster.Coordinator
}

// NewClusterGrader returns a grader that shards every job across the
// adifod servers at the given base URLs (e.g. "http://host:8417"). At
// least one URL is required; with exactly one, the cluster degrades to
// a remote grader with retry.
func NewClusterGrader(urls []string, opts ClusterOptions) (*ClusterGrader, error) {
	co, err := cluster.New(urls, opts)
	if err != nil {
		return nil, err
	}
	return &ClusterGrader{co: co}, nil
}

// Submit implements Grader: it places the first fault shard
// synchronously (so validation errors surface here), queues the rest
// for the per-backend dispatch loops, and returns the cluster job id.
func (g *ClusterGrader) Submit(ctx context.Context, spec JobSpec) (string, error) {
	return g.co.Submit(ctx, spec)
}

// Status implements Grader with the merged view of all shards.
func (g *ClusterGrader) Status(ctx context.Context, id string) (JobStatus, error) {
	return g.co.Status(ctx, id)
}

// Result implements Grader: the merged result of every shard,
// bit-identical to an unsharded run.
func (g *ClusterGrader) Result(ctx context.Context, id string) (*JobResult, error) {
	return g.co.Result(ctx, id)
}

// Cancel implements Grader by fanning the cancel out to every sub-job.
func (g *ClusterGrader) Cancel(ctx context.Context, id string) (JobStatus, error) {
	return g.co.Cancel(ctx, id)
}

// Stream implements Grader: merged per-block events, one per block
// once every shard has passed it.
func (g *ClusterGrader) Stream(ctx context.Context, id string, fn func(ProgressEvent)) (JobStatus, error) {
	return g.co.Stream(ctx, id, fn)
}

// Stats implements Grader by summing the counters of every reachable
// backend.
func (g *ClusterGrader) Stats(ctx context.Context) (GraderStats, error) {
	return g.co.Stats(ctx)
}

// Shards exposes the per-shard placement of a cluster job (which
// backend holds which fault range, how often it was retried).
func (g *ClusterGrader) Shards(id string) ([]ClusterShardStatus, error) {
	return g.co.Shards(id)
}

// MetricsHandler returns the coordinator's Prometheus text exposition
// endpoint: per-backend probe latency, shard retries, flapping
// exclusions and merge time.
func (g *ClusterGrader) MetricsHandler() http.Handler { return g.co.Metrics().Handler() }

// TracesHandler returns the coordinator's trace flight recorder,
// mountable at /debug/traces. A cluster trace covers the whole
// fan-out: the root span, one span per shard attempt (reruns after a
// backend death included) and the merge.
func (g *ClusterGrader) TracesHandler() http.Handler { return g.co.Traces().Handler() }

// Close implements Grader: it waits for the orchestration of every
// submitted cluster job to finish.
func (g *ClusterGrader) Close() error { return g.co.Close() }
